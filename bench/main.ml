(* Benchmark harness: regenerates every evaluation artifact of the paper
   (see DESIGN.md §5 for the experiment index).

   E6  Fig. 7        — t1/t2/t1+t2 vs |H| at 0%/50%/100% insertions
   E7  Fig. 7 (cmp)  — ours vs the SDT-like and ABT-like baselines
   E8  §5.2          — asymptotic scaling checks (incl. Undo O(|H|²))
   E9  §1 motivation — optimistic vs central-lock responsiveness
   E10 ablation      — security-hole rates with each mechanism disabled

   A bechamel micro-benchmark section (one Test.make per experiment
   family) closes the run with OLS per-operation estimates.

   Run everything: dune exec bench/main.exe
   Run one section: dune exec bench/main.exe -- fig7 *)

open Dce_ot
open Dce_core
module C = Controller
module Obs = Dce_obs

let adm = 0
let user = 1
let bystander = 98
let remote = 99

(* Telemetry (--metrics / --trace FILE, parsed in [main]).  The registry
   starts disabled and the sink null, so an uninstrumented run pays one
   branch per decision point — the property the <5% overhead criterion
   in DESIGN.md leans on.

   A bench trace concatenates every sim run of the selected sections
   into one stream; that is fine for timelines and metric tables, but
   bin/trace.exe's causality audit assumes a single session, so run it
   on single-run traces (replay --seed N) rather than on multi-run
   sections like ablation. *)

let metrics = Obs.Metrics.create ~enabled:false ()
let sink = ref Obs.Trace.null

(* A second, always-enabled registry feeding the machine-readable
   BENCH_<section>.json artifacts, so the perf trajectory is tracked
   across revisions without opting into --metrics.  It only receives
   observations from the bench harness itself (t1/t2 timings, netd
   transport metrics), never from inside the measured controllers, so
   it cannot perturb what is being measured. *)
let bench_metrics = Obs.Metrics.create ()

let json_of_summary (s : Obs.Metrics.summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int s.count);
      ("sum", Obs.Json.Int s.sum);
      ("min", Obs.Json.Int s.min);
      ("max", Obs.Json.Int s.max);
      ("median", Obs.Json.Float s.p50);
      ("p95", Obs.Json.Float s.p95);
      ("p99", Obs.Json.Float s.p99);
    ]

(* Write BENCH_<section>.json from whatever the section observed into
   [bench_metrics], then clear the registry for the next section. *)
let write_bench_json section =
  let hists =
    List.filter (fun (_, (s : Obs.Metrics.summary)) -> s.count > 0)
      (Obs.Metrics.histograms bench_metrics)
  in
  let counters =
    List.filter (fun (_, v) -> v > 0) (Obs.Metrics.counters bench_metrics)
  in
  (if hists <> [] || counters <> [] then begin
     let file = Printf.sprintf "BENCH_%s.json" section in
     let json =
       Obs.Json.Obj
         [
           ("section", Obs.Json.String section);
           ("counters", Obs.Json.Obj (List.map (fun (n, v) -> (n, Obs.Json.Int v)) counters));
           ( "histograms",
             Obs.Json.Obj (List.map (fun (n, s) -> (n, json_of_summary s)) hists) );
         ]
     in
     let oc = open_out file in
     output_string oc (Obs.Json.to_string json);
     output_char oc '\n';
     close_out oc;
     Printf.printf "wrote %s\n" file
   end);
  Obs.Metrics.reset bench_metrics

(* ----- timing helpers (wall clock) ----- *)

let now = Unix.gettimeofday

let time_once f =
  let t0 = now () in
  ignore (Sys.opaque_identity (f ()));
  (now () -. t0) *. 1_000. (* ms *)

let median_ms ?(reps = 5) ?hist f =
  let xs =
    List.init reps (fun _ ->
        let ms = time_once f in
        (match hist with
         | Some h -> Obs.Metrics.observe h (int_of_float (ms *. 1e6))
         | None -> ());
        ms)
  in
  List.nth (List.sort compare xs) (reps / 2)

(* min over reps: the stable estimator for a single-point ratio — a GC
   pause or a scheduling blip inflates the median of a small sample but
   never deflates the min *)
let min_ms ?(reps = 5) f =
  List.fold_left Float.min Float.infinity (List.init reps (fun _ -> time_once f))

let budget_ms = 100.

let flag ms = if ms <= budget_ms then " " else "*"

(* ----- deterministic op streams ----- *)

let rng = ref (Dce_sim.Rng.of_int 2009)

let rand n =
  let x, r = Dce_sim.Rng.int !rng n in
  rng := r;
  x

let letter () = Char.chr (97 + rand 26)

(* a random operation in visible coordinates, honouring the mix *)
let random_op ~ins_pct doc =
  let n = Tdoc.visible_length doc in
  if n = 0 || rand 100 < ins_pct then Tdoc.ins_visible doc (rand (n + 1)) (letter ())
  else if rand 2 = 0 then Tdoc.del_visible doc (rand n)
  else Tdoc.up_visible doc (rand n) (Char.uppercase_ascii (letter ()))

(* ----- the measured site -----

   A session state shaped like the paper's experiment: a policy with
   redundant authorizations (the paper: "we suppose that the policy is
   not optimized"), an administrative log with irrelevant grants and
   revocations (so remote checks really scan L), and a cooperative log
   of |H| requests with the requested insertion percentage. *)

let base_policy =
  let redundant =
    List.concat
      (List.init 12 (fun _ ->
           [
             Auth.grant [ Subject.User bystander ] [ Docobj.Whole ] [ Right.Update ];
             Auth.grant [ Subject.User bystander ] [ Docobj.zone 0 10 ] [ Right.Delete ];
           ]))
  in
  Policy.make
    ~users:[ adm; user; bystander; remote ]
    (redundant @ [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ])

let initial_text = String.init 12_000 (fun i -> Char.chr (97 + (i mod 26)))

(* admin traffic that loads L without concerning [user] or [remote] *)
let admin_noise = 40

let loaded_admin_requests () =
  let a =
    C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy:base_policy
      (Tdoc.of_string initial_text)
  in
  let rec go a acc i =
    if i = admin_noise then List.rev acc
    else
      let op =
        if i mod 2 = 0 then
          Admin_op.Add_auth
            (0, Auth.grant [ Subject.User bystander ] [ Docobj.Whole ] [ Right.Insert ])
        else
          Admin_op.Add_auth
            (0, Auth.deny [ Subject.User bystander ] [ Docobj.Whole ] [ Right.Insert ])
      in
      match C.admin_update a op with
      | Ok (a, m) -> go a (m :: acc) (i + 1)
      | Error e -> failwith e
  in
  go a [] 0

(* Build [user]'s controller with measurement snapshots at each |H|
   checkpoint. *)
let build_site ~ins_pct ~checkpoints =
  let c =
    C.create ~eq:Char.equal ~site:user ~admin:adm ~policy:base_policy ~trace:!sink
      (Tdoc.of_string initial_text)
  in
  let c = List.fold_left (fun c m -> fst (C.receive c m)) c (loaded_admin_requests ()) in
  let max_size = List.fold_left max 0 checkpoints in
  let snapshots = ref [] in
  let rec go c i =
    if List.mem i checkpoints then snapshots := (i, c) :: !snapshots;
    if i >= max_size then ()
    else
      let op = random_op ~ins_pct (C.document c) in
      match C.generate c op with
      | c, C.Accepted _ -> go c (i + 1)
      | _, C.Denied r -> failwith ("bench build: denied: " ^ r)
  in
  go c 0;
  List.rev !snapshots

(* the remote insert request whose processing Fig. 7 measures: concurrent
   with the receiver's whole log *)
let remote_insert serial =
  Request.make ~site:remote ~serial ~op:(Op.ins ~pr:remote 0 'z') ~ctx:Vclock.empty
    ~policy_version:0 ~flag:Request.Tentative ()

let h_t1 = Obs.Metrics.histogram bench_metrics "bench.t1_ns"
let h_t2 = Obs.Metrics.histogram bench_metrics "bench.t2_ns"

let measure_t1 c =
  median_ms ~hist:h_t1 (fun () ->
      match C.generate c (Tdoc.ins_visible (C.document c) 0 'z') with
      | _, C.Accepted _ -> ()
      | _, C.Denied r -> failwith r)

let measure_t2 c = median_ms ~hist:h_t2 (fun () -> C.receive c (C.Coop (remote_insert 1)))

(* ----- core: engine scaling baseline -----

   The perf trajectory of the replication engine itself: local
   generation, remote integration, retroactive undo and snapshot
   encode/decode on documents of n model cells under logs of |H|
   requests.  Every (n, |H|) point lands in BENCH_core.json as a
   latency histogram plus an ops/s counter keyed by the point, so later
   perf PRs diff against this baseline point-by-point.

   The n=100k integration point is additionally measured against the
   pre-stat-tree reference implementation (Tdoc_ref: flat cell array,
   O(n) apply; the log side replays the old whole-log transform fold).
   Both sides run in the same process in the same run, so the resulting
   core.integrate_speedup_n100k_x counter is machine-portable — CI
   gates on it rather than on raw nanoseconds. *)

let core_policy =
  Policy.make
    ~users:[ adm; user; remote ]
    [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]

(* a user site over an n-cell document with |H| = h random local edits
   (tentative: [user] is not the administrator) *)
let build_core_site ~n ~h =
  let text = String.init n (fun i -> Char.chr (97 + (i mod 26))) in
  let c =
    C.create ~eq:Char.equal ~site:user ~admin:adm ~policy:core_policy
      (Tdoc.of_string text)
  in
  let rec go c i =
    if i = h then c
    else
      match C.generate c (random_op ~ins_pct:50 (C.document c)) with
      | c, C.Accepted _ -> go c (i + 1)
      | _, C.Denied r -> failwith ("core bench build: denied: " ^ r)
  in
  go c 0

let size_label n =
  if n >= 1000 && n mod 1000 = 0 then string_of_int (n / 1000) ^ "k"
  else string_of_int n

let core_point ~n ~h c =
  let point = Printf.sprintf "n%s_h%s" (size_label n) (size_label h) in
  let hist what = Obs.Metrics.histogram bench_metrics
      (Printf.sprintf "core.%s_ns.%s" what point)
  in
  let per_s what ms =
    Obs.Metrics.add
      (Obs.Metrics.counter bench_metrics (Printf.sprintf "core.%s_per_s.%s" what point))
      (int_of_float (1000. /. Float.max ms 1e-9))
  in
  let t_gen =
    median_ms ~hist:(hist "generate") (fun () ->
        match C.generate c (Tdoc.ins_visible (C.document c) 0 'z') with
        | _, C.Accepted _ -> ()
        | _, C.Denied r -> failwith r)
  in
  per_s "generate" t_gen;
  let t_recv =
    median_ms ~hist:(hist "integrate") (fun () ->
        ignore (C.receive c (C.Coop (remote_insert 1))))
  in
  per_s "integrate" t_recv;
  (* retroactively cancel the most recent request, document effect
     included (what one enforce step per request costs) *)
  let last_id = { Request.site = user; serial = h } in
  let t_undo =
    median_ms ~hist:(hist "undo") (fun () ->
        match Oplog.undo ~cancel_version:1 last_id (C.oplog c) with
        | Some (op, _) -> ignore (Tdoc.apply ~eq:Char.equal (C.document c) op)
        | None -> failwith "core bench: undo target missing")
  in
  per_s "undo" t_undo;
  let blob = Dce_wire.Proto.Char_proto.encode_state (C.dump c) in
  let t_enc =
    median_ms ~hist:(hist "snapshot_encode") (fun () ->
        ignore (Dce_wire.Proto.Char_proto.encode_state (C.dump c)))
  in
  per_s "snapshot_encode" t_enc;
  let t_dec =
    median_ms ~hist:(hist "snapshot_decode") (fun () ->
        match Dce_wire.Proto.Char_proto.decode_state blob with
        | Ok _ -> ()
        | Error e -> failwith e)
  in
  per_s "snapshot_decode" t_dec;
  Printf.printf "%8s %8s %11.4f %11.4f %11.4f %11.3f %11.3f\n" (size_label n)
    (size_label h) t_gen t_recv t_undo t_enc t_dec

(* new stack vs the pre-change representation, same run: integrate one
   remote insert at n=100k.  The reference side replays the old code
   path's dominant work — transform against the whole log (the old
   separation moves nothing for an empty-context request), then an O(n)
   array-copying document apply. *)
let core_speedup c =
  let q = remote_insert 1 in
  let arr = Tdoc_ref.of_tdoc (C.document c) in
  let log_ops = Oplog.ops (C.oplog c) in
  (* both sides measured from the same freshly compacted heap, so the
     ratio does not depend on what the surrounding points allocated *)
  Gc.compact ();
  let t_new = min_ms ~reps:15 (fun () -> ignore (C.receive c (C.Coop q))) in
  let t_ref =
    min_ms ~reps:15 (fun () ->
        let op =
          List.fold_left (fun op o -> Transform.it op o) q.Request.op log_ops
        in
        ignore (Tdoc_ref.apply ~eq:Char.equal arr op))
  in
  let speedup = t_ref /. Float.max t_new 1e-9 in
  let put k v = Obs.Metrics.add (Obs.Metrics.counter bench_metrics k) v in
  put "core.integrate_new_ns_n100k" (int_of_float (t_new *. 1e6));
  put "core.integrate_ref_ns_n100k" (int_of_float (t_ref *. 1e6));
  put "core.integrate_speedup_n100k_x" (int_of_float speedup);
  Printf.printf
    "integrate @ n=100k: new %.4f ms, array/list reference %.3f ms  (%.0fx)\n"
    t_new t_ref speedup

(* ----- steady state: the stability protocol flattening the |H| cliff -----

   A two-site session where the peer beacons its delivery clock back and
   the measured site compacts every [steady_compact_every] generations —
   the regime the live beacon protocol creates for every session.  Total
   history |H| keeps growing, the live window does not, so generation
   cost must stay flat: the gate requires the |H|=10k point to hold at
   least half of the |H|=100 throughput at the same n.  (The
   never-compacted baseline above collapses by ~300x between the same
   two points.) *)

let steady_compact_every = 100

(* only the two live participants: a registered user that never sends
   traffic nor a beacon pins the stability frontier at zero, which is
   exactly the cliff the beacon protocol removes for LIVE groups *)
let steady_policy =
  Policy.make ~users:[ adm; user ]
    [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]

let build_steady_site ~n ~h =
  let text = String.init n (fun i -> Char.chr (97 + (i mod 26))) in
  let mk site =
    C.create ~eq:Char.equal ~site ~admin:adm ~policy:steady_policy
      (Tdoc.of_string text)
  in
  (* the measured site is the administrator: its requests are born
     valid, so the stable prefix is actually droppable (a tentative
     backlog stays pinned until validation no matter what the frontier
     says) *)
  let a = ref (mk adm) in
  let b = ref (mk user) in
  for i = 1 to h do
    (match C.generate !a (random_op ~ins_pct:50 (C.document !a)) with
     | a', C.Accepted m ->
       a := a';
       b := fst (C.receive !b m)
     | _, C.Denied r -> failwith ("steady bench build: denied: " ^ r));
    if i mod steady_compact_every = 0 then begin
      let clock, version = C.beacon !b in
      a := C.compact (C.receive_beacon !a ~peer:user ~clock ~version);
      let clock, version = C.beacon !a in
      b := C.compact (C.receive_beacon !b ~peer:adm ~clock ~version)
    end
  done;
  !a

(* a compacted-window generate is sub-microsecond: time batches on the
   monotonic ns clock and keep the best batch (same rationale as
   [min_ms]), recording per-op ns in the histogram *)
let batch_ns ?(batches = 5) ?(iters = 500) ~hist f =
  let best = ref max_int in
  for _ = 1 to batches do
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to iters do
      f ()
    done;
    let per_op = max 1 ((Obs.Clock.now_ns () - t0) / iters) in
    Obs.Metrics.observe hist per_op;
    if per_op < !best then best := per_op
  done;
  !best

let run_steady () =
  Printf.printf
    "== core: steady state under the stability protocol (compact every %d) ==\n"
    steady_compact_every;
  Printf.printf "%8s %8s %11s %11s %9s\n" "n" "|H|" "gen(ns)" "gen/s" "window";
  let points = [ (1_000, 100); (1_000, 10_000); (100_000, 100); (100_000, 10_000) ] in
  let rates =
    List.map
      (fun (n, h) ->
        let c = build_steady_site ~n ~h in
        let point = Printf.sprintf "n%s_h%s" (size_label n) (size_label h) in
        let hist =
          Obs.Metrics.histogram bench_metrics ("core.steady_generate_ns." ^ point)
        in
        let t_ns =
          batch_ns ~hist (fun () ->
              match C.generate c (Tdoc.ins_visible (C.document c) 0 'z') with
              | _, C.Accepted _ -> ()
              | _, C.Denied r -> failwith r)
        in
        let per_s = 1_000_000_000 / t_ns in
        Obs.Metrics.add
          (Obs.Metrics.counter bench_metrics ("core.steady_generate_per_s." ^ point))
          per_s;
        Printf.printf "%8s %8s %11d %11d %9d\n" (size_label n) (size_label h) t_ns
          per_s (C.window_len c);
        ((n, h), per_s))
      points
  in
  (* the machine-portable cliff gate: worst |H|=10k / |H|=100 ratio *)
  let pct =
    List.fold_left
      (fun acc ((n, h), r10k) ->
        if h = 10_000 then min acc (100 * r10k / max (List.assoc (n, 100) rates) 1)
        else acc)
      max_int rates
  in
  Obs.Metrics.add (Obs.Metrics.counter bench_metrics "core.steady_h10k_vs_h100_pct") pct;
  Printf.printf "steady |H|=10k holds %d%% of the |H|=100 throughput (gate: >= 50)\n" pct

(* ----- delta catch-up vs the full snapshot ----- *)

let run_delta_sync () =
  let n = 1_000 and h = 2_000 and lag = 50 in
  let text = String.init n (fun i -> Char.chr (97 + (i mod 26))) in
  let mk site =
    C.create ~eq:Char.equal ~site ~admin:adm ~policy:core_policy (Tdoc.of_string text)
  in
  (* the joiner integrates all but the last [lag] requests, then parks —
     the rejoining-laptop shape the hub's Attach_at answers *)
  let donor = ref (mk adm) in
  let joiner = ref (mk user) in
  for i = 1 to h do
    match C.generate !donor (random_op ~ins_pct:50 (C.document !donor)) with
    | d, C.Accepted m ->
      donor := d;
      if i <= h - lag then joiner := fst (C.receive !joiner m)
    | _, C.Denied r -> failwith ("delta bench build: denied: " ^ r)
  done;
  let full_blob = Dce_wire.Proto.Char_proto.encode_state (C.dump !donor) in
  let d =
    match C.delta_since !donor ~clock:(C.clock !joiner) ~version:(C.version !joiner) with
    | Some d -> d
    | None -> failwith "delta bench: donor unexpectedly compacted past the joiner"
  in
  let delta_blob = Dce_wire.Proto.Char_proto.encode_delta d in
  let t_full =
    median_ms ~hist:(Obs.Metrics.histogram bench_metrics "core.fullsync_ns") (fun () ->
        match Dce_wire.Proto.Char_proto.decode_state full_blob with
        | Error e -> failwith e
        | Ok st -> (
          match C.load ~eq:Char.equal st with
          | Error e -> failwith e
          | Ok dn -> ignore (C.catch_up !joiner dn)))
  in
  let t_delta =
    median_ms ~hist:(Obs.Metrics.histogram bench_metrics "core.deltasync_ns") (fun () ->
        match Dce_wire.Proto.Char_proto.decode_delta delta_blob with
        | Error e -> failwith e
        | Ok d -> (
          match C.apply_delta !joiner d with
          | Ok _ -> ()
          | Error e -> failwith e))
  in
  (* the delta path must really reconstruct the donor's state *)
  (match C.apply_delta !joiner d with
   | Error e -> failwith ("delta bench: " ^ e)
   | Ok (j, _) ->
     let fp = Dce_wire.Proto.content_fingerprint Dce_wire.Proto.char_codec in
     if fp j <> fp !donor then
       failwith "delta bench: fingerprint mismatch after delta catch-up");
  let pct = 100 * String.length delta_blob / max 1 (String.length full_blob) in
  let put k v = Obs.Metrics.add (Obs.Metrics.counter bench_metrics k) v in
  put "core.fullsync_bytes" (String.length full_blob);
  put "core.deltasync_bytes" (String.length delta_blob);
  put "core.delta_vs_full_pct" pct;
  Printf.printf
    "catch-up after %d missed of %d ops: full %d B / %.3f ms, delta %d B / %.3f ms  \
     (%d%% of full bytes; gate: <= 10)\n"
    lag h (String.length full_blob) t_full (String.length delta_blob) t_delta pct

let run_core ~quick () =
  Printf.printf "== core: engine scaling baseline%s ==\n"
    (if quick then " (quick)" else "");
  Printf.printf "%8s %8s %11s %11s %11s %11s %11s\n" "n" "|H|" "gen(ms)"
    "integ(ms)" "undo(ms)" "enc(ms)" "dec(ms)";
  let points =
    if quick then [ (1_000, 100); (100_000, 100) ]
    else
      List.concat_map
        (fun n -> List.map (fun h -> (n, h)) [ 100; 1_000; 10_000 ])
        [ 1_000; 10_000; 100_000 ]
  in
  let site100k =
    List.fold_left
      (fun acc (n, h) ->
        let c = build_core_site ~n ~h in
        core_point ~n ~h c;
        if n = 100_000 && h = 100 then Some c else acc)
      None points
  in
  (match site100k with
   | Some c -> core_speedup c
   | None -> failwith "core bench: n=100k |H|=100 point missing");
  print_newline ();
  run_steady ();
  run_delta_sync ();
  print_newline ()

(* ----- E6: Fig. 7 ----- *)

let fig7_checkpoints = [ 1000; 2000; 3000; 4000; 5000; 6000; 7000; 8000; 9000 ]

let run_fig7 () =
  Printf.printf
    "== E6 / Fig.7: processing time of insert requests (budget %.0f ms; '*' = over) ==\n"
    budget_ms;
  Printf.printf "%7s %8s %10s %10s %10s\n" "INS%" "|H|" "t1 (ms)" "t2 (ms)" "t1+t2";
  List.iter
    (fun ins_pct ->
      let snaps = build_site ~ins_pct ~checkpoints:fig7_checkpoints in
      List.iter
        (fun (size, c) ->
          let t1 = measure_t1 c in
          let t2 = measure_t2 c in
          Printf.printf "%7d %8d %10.3f %10.3f %9.3f%s\n" ins_pct size t1 t2 (t1 +. t2)
            (flag (t1 +. t2)))
        snaps;
      print_newline ())
    [ 0; 50; 100 ]

(* ----- E7: baseline comparison ----- *)

(* histories for the baselines: half insertions, half deletions, already
   in canonical order *)
let baseline_history size =
  let ins = size / 2 in
  let reqs = ref [] in
  let ctx = ref Vclock.empty in
  for i = 1 to ins do
    reqs :=
      Request.make ~site:user ~serial:i
        ~op:(Op.ins ~pr:user (rand (i + 10)) (letter ()))
        ~ctx:!ctx ~policy_version:0 ~flag:Request.Valid ()
      :: !reqs;
    ctx := Vclock.tick !ctx user
  done;
  for i = ins + 1 to size do
    reqs :=
      Request.make ~site:user ~serial:i ~op:(Op.del (rand 10) 'x') ~ctx:!ctx
        ~policy_version:0 ~flag:Request.Valid ()
      :: !reqs;
    ctx := Vclock.tick !ctx user
  done;
  List.rev !reqs

let run_baselines () =
  Printf.printf "== E7 / Fig.7 comparison: time to integrate one remote insert (ms) ==\n";
  Printf.printf "%8s %12s %12s %12s\n" "|H|" "ours" "SDT-like" "ABT-like";
  let sizes = [ 250; 500; 1000; 2000; 4000 ] in
  let ours = build_site ~ins_pct:50 ~checkpoints:sizes in
  List.iter
    (fun size ->
      let t_ours = measure_t2 (List.assoc size ours) in
      let history = baseline_history size in
      let sdt =
        Dce_baseline.Sdt_like.preload
          (Dce_baseline.Sdt_like.create ~site:2 initial_text)
          history
      in
      let q = remote_insert 1 in
      let t_sdt = median_ms ~reps:3 (fun () -> Dce_baseline.Sdt_like.receive sdt q) in
      let abt =
        Dce_baseline.Abt_like.preload
          (Dce_baseline.Abt_like.create ~site:2 initial_text)
          (List.map (fun (r : char Request.t) -> r.Request.op) history)
      in
      let t_abt = median_ms ~reps:3 (fun () -> Dce_baseline.Abt_like.receive abt q) in
      Printf.printf "%8d %11.3f%s %11.3f%s %11.3f%s\n" size t_ours (flag t_ours) t_sdt
        (flag t_sdt) t_abt (flag t_abt))
    sizes;
  print_newline ()

(* ----- E8: asymptotic scaling ----- *)

let run_complexity () =
  Printf.printf "== E8 / par.5.2: scaling checks ==\n";
  let snaps = build_site ~ins_pct:50 ~checkpoints:[ 2000; 4000; 8000 ] in
  let t n = measure_t2 (List.assoc n snaps) in
  let t2000 = t 2000 and t4000 = t 4000 and t8000 = t 8000 in
  Printf.printf
    "receive: t2(2k)=%.3f ms, t2(4k)=%.3f ms, t2(8k)=%.3f ms  (ratios %.2f, %.2f; linear => ~2)\n"
    t2000 t4000 t8000 (t4000 /. t2000) (t8000 /. t4000);
  Printf.printf "undo of n tentative requests after a revocation (O(n^2) worst case):\n";
  Printf.printf "%8s %12s\n" "n" "time (ms)";
  List.iter
    (fun n ->
      let c =
        C.create ~eq:Char.equal ~site:user ~admin:adm ~policy:base_policy
          (Tdoc.of_string "seed")
      in
      let rec fill c i =
        if i = n then c
        else
          match C.generate c (Op.ins (rand (i + 4)) (letter ())) with
          | c, C.Accepted _ -> fill c (i + 1)
          | _, C.Denied r -> failwith r
      in
      let c = fill c 0 in
      let revoke =
        {
          Admin_op.admin = adm;
          version = 1;
          op =
            Admin_op.Add_auth
              (0, Auth.deny [ Subject.User user ] [ Docobj.Whole ] [ Right.Insert ]);
          ctx = Vclock.empty;
        }
      in
      let ms = median_ms ~reps:3 (fun () -> C.receive c (C.Admin revoke)) in
      Printf.printf "%8d %12.3f\n" n ms)
    [ 250; 500; 1000; 2000 ];
  print_newline ()

(* ----- E9: optimistic vs central lock ----- *)

let run_latency () =
  Printf.printf "== E9 / par.1 motivation: user-perceived check latency ==\n";
  let c = List.assoc 1000 (build_site ~ins_pct:50 ~checkpoints:[ 1000 ]) in
  let n_reps = 200 in
  let t0 = now () in
  for _ = 1 to n_reps do
    match C.generate c (Tdoc.ins_visible (C.document c) 0 'z') with
    | _, C.Accepted _ -> ()
    | _, C.Denied r -> failwith r
  done;
  let optimistic_ms = (now () -. t0) *. 1000. /. float_of_int n_reps in
  Printf.printf
    "optimistic (this paper): %.3f ms per operation (local check, |H|=1000)\n"
    optimistic_ms;
  Printf.printf "central lock server:\n%10s %8s %12s %8s %8s %10s\n" "rtt(ms)" "clients"
    "mean(ms)" "p95" "max" "busy";
  List.iter
    (fun rtt ->
      List.iter
        (fun clients ->
          let cfg =
            {
              Dce_baseline.Central_lock.clients;
              rtt;
              check_cost = 5;
              op_interval = (100, 400);
              duration = 60_000;
            }
          in
          let s = Dce_baseline.Central_lock.simulate cfg ~seed:1 in
          Printf.printf "%10d %8d %12.1f %8d %8d %9.0f%%\n" rtt clients
            s.Dce_baseline.Central_lock.mean_response
            s.Dce_baseline.Central_lock.p95_response
            s.Dce_baseline.Central_lock.max_response
            (100. *. s.Dce_baseline.Central_lock.server_utilization))
        [ 2; 10; 50 ])
    [ 25; 50; 100; 200 ];
  print_newline ()

(* ----- E10: ablation ----- *)

let run_ablation () =
  Printf.printf
    "== E10 / ablation: sessions with security holes, 50 random adversarial runs ==\n";
  let seeds = List.init 50 (fun i -> 1000 + i) in
  (* few users, fast-toggling administrator, high latency variance: the
     regime where stale requests race revocations and re-grants *)
  let profile =
    {
      Dce_sim.Workload.with_admin with
      users = 2;
      duration = 2_500;
      edit_interval = (10, 60);
      admin_interval = Some (20, 80);
      revoke_bias = 0.5;
      latency = Dce_sim.Net.Uniform (20, 400);
    }
  in
  let count features =
    List.fold_left
      (fun bad seed ->
        match Dce_sim.Runner.run ~features ~sink:!sink ~metrics profile ~seed with
        | r ->
          if
            Dce_sim.Convergence.ok
              (Dce_sim.Convergence.check r.Dce_sim.Runner.controllers)
          then bad
          else bad + 1
        | exception _ -> bad + 1)
      0 seeds
  in
  let variants =
    [
      ("secure (all mechanisms)", C.secure);
      ("no retroactive undo", { C.secure with C.retroactive_undo = false });
      ("no interval check", { C.secure with C.interval_check = false });
      ("no validation", { C.secure with C.validation = false });
      ("naive (none)", C.naive);
    ]
  in
  Printf.printf "%-28s %s\n" "variant" "holes / runs";
  List.iter
    (fun (name, f) -> Printf.printf "%-28s %d / %d\n" name (count f) (List.length seeds))
    variants;
  print_newline ()

(* ----- extras: extension ablations beyond the paper ----- *)

let run_extras () =
  Printf.printf "== extras: policy scaling and log garbage collection ==\n";
  (* first-match check cost vs policy size *)
  Printf.printf "policy first-match check vs |P| (microseconds per check):\n";
  Printf.printf "%8s %12s\n" "|P|" "us/check";
  List.iter
    (fun n ->
      let p =
        Policy.make
          ~users:[ adm; user; bystander ]
          (List.init n (fun _ ->
               Auth.deny [ Subject.User bystander ] [ Docobj.Whole ] [ Right.Update ])
          @ [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ])
      in
      let reps = 2000 in
      let t0 = now () in
      for _ = 1 to reps do
        ignore
          (Sys.opaque_identity
             (Policy.check p ~user ~right:Right.Insert ~pos:(Some 3)))
      done;
      Printf.printf "%8d %12.2f\n" (n + 1)
        ((now () -. t0) *. 1e6 /. float_of_int reps))
    [ 10; 100; 1000 ];
  (* log GC: live entries and serialized bytes with/without *)
  Printf.printf
    "log GC over a 10s adversarial session (seed 11; per-site live entries / state KiB):\n";
  let profile =
    {
      Dce_sim.Workload.with_admin with
      users = 3;
      duration = 10_000;
      edit_interval = (15, 80);
      latency = Dce_sim.Net.Uniform (5, 120);
    }
  in
  List.iter
    (fun (label, compact_every) ->
      let r =
        Dce_sim.Runner.run ~sink:!sink ~metrics { profile with compact_every } ~seed:11
      in
      let entries =
        List.map
          (fun c -> Oplog.live_length (C.oplog c))
          r.Dce_sim.Runner.controllers
      in
      let kib =
        List.fold_left
          (fun acc c ->
            acc
            + String.length (Dce_wire.Proto.Char_proto.encode_state (C.dump c)))
          0 r.Dce_sim.Runner.controllers
        / 1024
      in
      Printf.printf "%-12s entries=[%s]  state=%d KiB\n" label
        (String.concat ";" (List.map string_of_int entries))
        kib)
    [ ("no GC", None); ("GC every 8", Some 8) ];
  print_newline ()

(* ----- netd: loopback transport throughput ----- *)

(* Two measurements.  First the transport alone: a pair of framed
   connections over a socketpair, one flooding frames at the other,
   which isolates framing + splitter + non-blocking socket handling
   from the controller.  Then the full stack: a relay and two sites
   over loopback TCP, one site generating a burst of edits, timed until
   both sites (and the admin's validations) have quiesced.  Transport
   metrics (netd.* counters, flush latency) land in [bench_metrics] and
   therefore in BENCH_netd.json. *)

let run_netd_raw () =
  Printf.printf "raw framed-connection throughput (socketpair, single thread):\n";
  Printf.printf "%12s %10s %12s %12s\n" "payload" "frames" "frames/s" "MiB/s";
  let tele = Dce_netd.Tele.make ~metrics:bench_metrics () in
  List.iter
    (fun (payload_bytes, frames) ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let tx =
        Dce_netd.Conn.create ~max_outbox:(64 * 1024 * 1024) ~tele ~peer:"bench-tx" a
      in
      let rx = Dce_netd.Conn.create ~tele ~peer:"bench-rx" b in
      let payload = String.make payload_bytes 'm' in
      let t0 = now () in
      let sent = ref 0 and received = ref 0 and stalled = ref 0 in
      while !received < frames && !stalled < 1_000_000 do
        if !sent < frames && Dce_netd.Conn.outbox_bytes tx < 1 lsl 20 then begin
          Dce_netd.Conn.send tx payload;
          incr sent
        end;
        Dce_netd.Conn.handle_writable tx;
        match Dce_netd.Conn.handle_readable rx with
        | [] -> incr stalled
        | ps ->
          stalled := 0;
          received := !received + List.length ps
      done;
      let dt = now () -. t0 in
      if !received < frames then failwith "netd bench: transfer stalled";
      Printf.printf "%10d B %10d %12.0f %12.1f\n" payload_bytes frames
        (float_of_int frames /. dt)
        (float_of_int (frames * payload_bytes) /. dt /. (1024. *. 1024.));
      Dce_netd.Conn.shutdown tx;
      Dce_netd.Conn.shutdown rx)
    [ (64, 20_000); (1024, 10_000); (8192, 2_000) ]

(* a minimal relay endpoint: snapshot -> rejoin, message -> receive,
   emitted validations -> back on the wire (same shape as p2pedit) *)
type bench_ep = {
  bclient : Dce_netd.Client.t;
  bsite : int;
  mutable bctrl : char C.t option;
}

let bench_ep_step ep =
  List.iter
    (fun ev ->
      match ev with
      | Dce_netd.Client.Snapshot blob -> (
        match Dce_wire.Proto.Char_proto.decode_state blob with
        | Error e -> failwith e
        | Ok state -> (
          match C.load ~eq:Char.equal state with
          | Error e -> failwith e
          | Ok donor -> ep.bctrl <- Some (C.rejoin ~site:ep.bsite donor)))
      | Dce_netd.Client.Message blob -> (
        match Dce_wire.Proto.Char_proto.decode_message blob with
        | Error e -> failwith e
        | Ok m ->
          let c, emitted = C.receive (Option.get ep.bctrl) m in
          ep.bctrl <- Some c;
          List.iter
            (fun m' ->
              Dce_netd.Client.send ep.bclient
                (Dce_wire.Proto.Char_proto.encode_message m'))
            emitted)
      | Dce_netd.Client.Gave_up r -> failwith ("netd bench: client gave up: " ^ r)
      | _ -> ())
    (Dce_netd.Client.step ~timeout_ms:0 ep.bclient)

let run_netd_session () =
  Printf.printf "end-to-end hub session (loopback TCP, hub + admin + editor):\n";
  let factory _doc =
    let policy =
      Policy.make ~users:[ adm; user ]
        [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
    in
    Ok
      ( C.create ~eq:Char.equal ~site:1_000_000 ~admin:adm ~policy
          (Tdoc.of_string "seed"),
        None )
  in
  let hub =
    Dce_hub.Hub.create ~metrics:bench_metrics ~codec:Dce_wire.Proto.char_codec
      ~factory ~docs:[ "main" ] ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Dce_hub.Hub.shutdown hub) @@ fun () ->
  let port = Dce_hub.Hub.port hub in
  let mk site =
    {
      bclient =
        Dce_netd.Client.create ~metrics:bench_metrics ~host:"127.0.0.1" ~port ~site ();
      bsite = site;
      bctrl = None;
    }
  in
  let ep_admin = mk adm and ep_user = mk user in
  let eps = [ ep_admin; ep_user ] in
  let pump_until cond =
    let rec go i =
      if cond () then ()
      else if i > 2_000_000 then failwith "netd bench: session stalled"
      else begin
        Dce_hub.Hub.step ~timeout_ms:1 hub;
        List.iter bench_ep_step eps;
        go (i + 1)
      end
    in
    go 0
  in
  pump_until (fun () -> ep_admin.bctrl <> None && ep_user.bctrl <> None);
  let edits = 400 in
  let settled ep =
    match ep.bctrl with
    | None -> false
    | Some c ->
      Tdoc.visible_length (C.document c) = 4 + edits
      && C.tentative c = [] && C.pending_coop c = 0
  in
  let t0 = now () in
  for _ = 1 to edits do
    let c = Option.get ep_user.bctrl in
    (match C.generate c (Tdoc.ins_visible (C.document c) 0 (letter ())) with
     | c, C.Accepted m ->
       ep_user.bctrl <- Some c;
       Dce_netd.Client.send ep_user.bclient
         (Dce_wire.Proto.Char_proto.encode_message m)
     | _, C.Denied r -> failwith r);
    (* keep the loop turning so the outbox drains as we go *)
    Dce_hub.Hub.step hub;
    List.iter bench_ep_step eps
  done;
  pump_until (fun () -> List.for_all settled eps);
  let dt = now () -. t0 in
  Printf.printf
    "%d edits generated, relayed, validated and integrated in %.3f s (%.0f edits/s)\n"
    edits dt
    (float_of_int edits /. dt);
  List.iter (fun ep -> Dce_netd.Client.close ep.bclient) eps

let run_netd () =
  Printf.printf "== netd: loopback transport throughput ==\n";
  run_netd_raw ();
  run_netd_session ();
  print_newline ()

(* ----- hub: multi-document scaling -----

   One hub process hosting D independent sessions, two real TCP
   clients per document (admin + editor).  Two figures per
   configuration: aggregate relayed throughput with every document
   active concurrently (frames/s), and the fan-out latency of a single
   quiet edit — send at the user endpoint, integrated at the admin
   endpoint — sampled serially on a few documents.  D = 1 is the
   single-session baseline; 8 and 64 show what the session registry
   and the poll-based event loop cost as the document count grows. *)

let run_hub_docs ~quick ndocs =
  let doc_name d = Printf.sprintf "doc%02d" d in
  let factory _doc =
    let policy =
      Policy.make ~users:[ adm; user ]
        [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
    in
    Ok
      ( C.create ~eq:Char.equal ~site:1_000_000 ~admin:adm ~policy
          (Tdoc.of_string "seed"),
        None )
  in
  let hub =
    Dce_hub.Hub.create
      ~config:{ Dce_hub.Hub.default_config with Dce_hub.Hub.default_doc = doc_name 0 }
      ~metrics:bench_metrics ~codec:Dce_wire.Proto.char_codec ~factory
      ~docs:(List.init ndocs doc_name) ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Dce_hub.Hub.shutdown hub) @@ fun () ->
  let port = Dce_hub.Hub.port hub in
  let mk site doc =
    {
      bclient =
        Dce_netd.Client.create ~metrics:bench_metrics ~doc ~host:"127.0.0.1"
          ~port ~site ();
      bsite = site;
      bctrl = None;
    }
  in
  let groups =
    List.init ndocs (fun d ->
        let doc = doc_name d in
        (doc, mk adm doc, mk user doc))
  in
  let eps = List.concat_map (fun (_, a, u) -> [ a; u ]) groups in
  let pump_until cond =
    let rec go i =
      if cond () then ()
      else if i > 4_000_000 then failwith "hub bench: session stalled"
      else begin
        Dce_hub.Hub.step ~timeout_ms:1 hub;
        List.iter bench_ep_step eps;
        go (i + 1)
      end
    in
    go 0
  in
  pump_until (fun () -> List.for_all (fun ep -> ep.bctrl <> None) eps);
  let len ep =
    match ep.bctrl with
    | None -> 0
    | Some c -> Tdoc.visible_length (C.document c)
  in
  let send_edit ep =
    let c = Option.get ep.bctrl in
    match C.generate c (Tdoc.ins_visible (C.document c) 0 (letter ())) with
    | c', C.Accepted m ->
      ep.bctrl <- Some c';
      Dce_netd.Client.send ep.bclient (Dce_wire.Proto.Char_proto.encode_message m)
    | _, C.Denied r -> failwith r
  in
  (* fan-out latency, one quiet edit at a time on a sample of docs *)
  let fan_h =
    Obs.Metrics.histogram bench_metrics
      (Printf.sprintf "hub.docs%d.fanout_ns" ndocs)
  in
  let samples = min ndocs 8 in
  List.iteri
    (fun i (_, ep_a, ep_u) ->
      if i < samples then begin
        let target = len ep_a + 1 in
        let t0 = Obs.Clock.now_ns () in
        send_edit ep_u;
        pump_until (fun () -> len ep_a >= target);
        Obs.Metrics.observe fan_h (Obs.Clock.now_ns () - t0)
      end)
    groups;
  (* aggregate throughput: every document active at once *)
  let edits_per_doc = max 4 ((if quick then 256 else 1024) / ndocs) in
  let expected =
    List.map (fun (doc, ep_a, _) -> (doc, len ep_a + edits_per_doc)) groups
  in
  let settled () =
    List.for_all2
      (fun (_, ep_a, ep_u) (_, want) ->
        List.for_all
          (fun ep ->
            match ep.bctrl with
            | None -> false
            | Some c ->
              Tdoc.visible_length (C.document c) = want
              && C.tentative c = [] && C.pending_coop c = 0)
          [ ep_a; ep_u ])
      groups expected
  in
  let t0 = now () in
  for _ = 1 to edits_per_doc do
    List.iter (fun (_, _, ep_u) -> send_edit ep_u) groups;
    Dce_hub.Hub.step hub;
    List.iter bench_ep_step eps
  done;
  pump_until settled;
  let dt = now () -. t0 in
  let total = ndocs * edits_per_doc in
  let frames_per_s = int_of_float (float_of_int total /. Float.max dt 1e-9) in
  Obs.Metrics.add
    (Obs.Metrics.counter bench_metrics
       (Printf.sprintf "hub.docs%d.frames_per_s" ndocs))
    frames_per_s;
  Obs.Metrics.add
    (Obs.Metrics.counter bench_metrics (Printf.sprintf "hub.docs%d.docs" ndocs))
    ndocs;
  let fan = Obs.Metrics.summary fan_h in
  Printf.printf
    "%3d doc(s): %5d edits relayed in %.3f s (%6d frames/s), fan-out p50 %.2f ms \
     (%d sample(s))\n%!"
    ndocs total dt frames_per_s
    (fan.Obs.Metrics.p50 /. 1e6)
    samples;
  List.iter (fun ep -> Dce_netd.Client.close ep.bclient) eps

let run_hub ~quick () =
  Printf.printf "== hub: multi-document scaling (frames/s, fan-out latency) ==\n";
  List.iter (run_hub_docs ~quick) [ 1; 8; 64 ];
  print_newline ()

(* ----- model checker throughput ----- *)

(* Explorer performance on the standard bounded scenarios: raw state
   throughput, the leverage of the two reduction mechanisms (state-cache
   hit rate, sleep-set skips) and the search profile (peak in-flight
   messages, depth).  The check.* counters accumulate across scenarios
   via [bench_metrics]; per-scenario derived figures land under a
   per-scenario prefix.  All of it reaches BENCH_check.json. *)

let run_check () =
  Printf.printf "== check: model-checker state throughput ==\n";
  Printf.printf "%-26s %10s %10s %9s %8s %9s %10s\n" "scenario" "states" "distinct"
    "dedup%" "sleep" "frontier" "states/s";
  let scenarios =
    [
      ("s3c2a1", Dce_check.Scenario.make ~sites:3 ~coop:2 ~admin_ops:1 ());
      ("s3c2a2x", Dce_check.Scenario.make ~mixed:true ~sites:3 ~coop:2 ~admin_ops:2 ());
      ("s3c3a1", Dce_check.Scenario.make ~sites:3 ~coop:3 ~admin_ops:1 ());
    ]
  in
  List.iter
    (fun (name, scenario) ->
      let outcome, s = Dce_check.Explore.run ~metrics:bench_metrics scenario in
      (match outcome with
       | Dce_check.Explore.Exhausted -> ()
       | Dce_check.Explore.Found v ->
         failwith ("check bench: unexpected violation: " ^ v.Dce_check.Explore.detail)
       | Dce_check.Explore.Capped -> failwith "check bench: state cap hit");
      let states_per_s =
        int_of_float
          (float_of_int s.Dce_check.Explore.states
          /. Float.max s.Dce_check.Explore.elapsed_s 1e-6)
      in
      let dedup_permille =
        1000 * s.Dce_check.Explore.dedup_hits / max 1 s.Dce_check.Explore.states
      in
      let put k v =
        Obs.Metrics.add (Obs.Metrics.counter bench_metrics ("check." ^ name ^ "." ^ k)) v
      in
      put "states" s.Dce_check.Explore.states;
      put "states_per_s" states_per_s;
      put "dedup_hit_permille" dedup_permille;
      put "peak_inflight" s.Dce_check.Explore.peak_inflight;
      put "max_depth" s.Dce_check.Explore.max_depth;
      put "frontiers" s.Dce_check.Explore.frontiers;
      Printf.printf "%-26s %10d %10d %8.1f%% %8d %9d %10d\n" name
        s.Dce_check.Explore.states s.Dce_check.Explore.distinct
        (float_of_int dedup_permille /. 10.)
        s.Dce_check.Explore.sleep_skips s.Dce_check.Explore.frontiers states_per_s)
    scenarios;
  (* exhaustive enumerator sweep rate *)
  let t0 = now () in
  let o = Dce_check.Enum.tp2 () in
  let dt = now () -. t0 in
  (match o.Dce_check.Enum.failed with
   | Some c -> failwith ("check bench: TP2 counterexample: " ^ c)
   | None -> ());
  let cases_per_s = int_of_float (float_of_int o.Dce_check.Enum.cases /. Float.max dt 1e-6) in
  Obs.Metrics.add
    (Obs.Metrics.counter bench_metrics "check.enum.tp2_cases")
    o.Dce_check.Enum.cases;
  Obs.Metrics.add
    (Obs.Metrics.counter bench_metrics "check.enum.tp2_cases_per_s")
    cases_per_s;
  Printf.printf "enum TP2: %d cases over %d docs in %.2f s (%d cases/s)\n"
    o.Dce_check.Enum.cases o.Dce_check.Enum.docs dt cases_per_s;
  print_newline ()

(* ----- store: WAL append throughput and recovery latency ----- *)

(* The two questions the durability design turns on: what each fsync
   policy costs per appended record (the write path runs on every
   journaled input), and how recovery time grows with log length (the
   snapshot cadence is exactly the knob that bounds it).  Records are
   real journal entries — an encoded [Generated] insert — so append
   throughput includes the codec, and the recovery figures replay them
   through a live controller, not just the frame scan.  Everything
   lands in BENCH_store.json. *)

let rec bench_rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> bench_rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let run_store () =
  Printf.printf "== store: WAL append throughput and recovery latency ==\n";
  let module Wal = Dce_store.Wal in
  let module Store = Dce_store.Store in
  let module Persist = Dce_store.Persist in
  let scratch name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dce-bench-store-%d-%s" (Unix.getpid ()) name)
  in
  let put k v = Obs.Metrics.add (Obs.Metrics.counter bench_metrics ("store." ^ k)) v in
  (* a representative journal record: one encoded cooperative insert *)
  let record =
    Persist.encode_record Dce_wire.Proto.char_codec (Persist.Generated (Op.ins 0 'q'))
  in
  Printf.printf "WAL append (record payload = %d bytes before framing):\n"
    (String.length record);
  Printf.printf "%14s %10s %12s %10s\n" "fsync" "records" "records/s" "MiB/s";
  List.iter
    (fun (policy, n) ->
      let dir = scratch "wal" in
      bench_rm_rf dir;
      Unix.mkdir dir 0o755;
      let w =
        match Wal.openfile ~fsync:policy (Filename.concat dir "bench.log") with
        | Ok (w, _) -> w
        | Error e -> failwith e
      in
      let t0 = now () in
      for _ = 1 to n do
        Wal.append w record
      done;
      Wal.close w;
      let dt = Float.max (now () -. t0) 1e-9 in
      let per_s = float_of_int n /. dt in
      let label = Store.fsync_policy_to_string policy in
      put ("append." ^ label ^ ".records_per_s") (int_of_float per_s);
      Printf.printf "%14s %10d %12.0f %10.1f\n" label n per_s
        (float_of_int (n * String.length record) /. dt /. (1024. *. 1024.));
      bench_rm_rf dir)
    [ (Wal.Always, 2_000); (Wal.Interval 64, 50_000); (Wal.Never, 50_000) ];
  (* recovery: journal n controller inputs into one generation, then
     time a cold [Persist.opendir] — snapshot load plus full replay *)
  Printf.printf "recovery (snapshot + replay of n journaled edits):\n";
  Printf.printf "%10s %12s %12s\n" "n" "recover ms" "records/s";
  let config =
    { Store.fsync = Wal.Never; snapshot_every = max_int; keep_generations = 2 }
  in
  let policy = Policy.make ~users:[ 0; 1 ] [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ] in
  let open_journal dir =
    match
      Persist.opendir ~config ~eq:Char.equal ~codec:Dce_wire.Proto.char_codec dir
    with
    | Ok v -> v
    | Error e -> failwith e
  in
  List.iter
    (fun n ->
      let dir = scratch (Printf.sprintf "recover-%d" n) in
      bench_rm_rf dir;
      let j, _ = open_journal dir in
      let c =
        ref (C.create ~eq:Char.equal ~site:0 ~admin:0 ~policy (Tdoc.of_string "seed"))
      in
      (match Persist.checkpoint j !c with Ok () -> () | Error e -> failwith e);
      for i = 1 to n do
        let op = Op.ins (i mod 4) 'k' in
        (match C.generate !c op with
         | c', C.Accepted _ -> c := c'
         | _, C.Denied e -> failwith e);
        Persist.record j (Persist.Generated op)
      done;
      Persist.close j;
      let ms =
        min_ms ~reps:3 (fun () ->
            let j, r = open_journal dir in
            Persist.close j;
            match r.Persist.controller with
            | Some _ when r.Persist.replayed = n -> ()
            | _ -> failwith "store bench: recovery came back wrong")
      in
      let per_s = float_of_int n /. (ms /. 1_000.) in
      put (Printf.sprintf "recover.%d.ms" n) (int_of_float (Float.max ms 1.));
      put (Printf.sprintf "recover.%d.records_per_s" n) (int_of_float per_s);
      Printf.printf "%10d %12.1f %12.0f\n" n ms per_s;
      bench_rm_rf dir)
    [ 512; 2_048; 8_192 ];
  (* checkpoint cost at the default cadence's scale: serialize, write
     atomically, prune — what a site pays every [snapshot_every] inputs *)
  let dir = scratch "checkpoint" in
  bench_rm_rf dir;
  let j, _ = open_journal dir in
  let c =
    ref (C.create ~eq:Char.equal ~site:0 ~admin:0 ~policy (Tdoc.of_string initial_text))
  in
  (match Persist.checkpoint j !c with Ok () -> () | Error e -> failwith e);
  let ms =
    median_ms ~reps:5 (fun () ->
        match Persist.checkpoint j !c with Ok () -> () | Error e -> failwith e)
  in
  let state_kib =
    String.length (Dce_wire.Proto.Char_proto.encode_state (C.dump !c)) / 1024
  in
  put "checkpoint.ms" (int_of_float (Float.max ms 1.));
  put "checkpoint.state_kib" state_kib;
  Printf.printf "checkpoint (%d KiB state): %.1f ms\n" state_kib ms;
  Persist.close j;
  bench_rm_rf dir;
  print_newline ()

(* ----- analysis: indexed decision engine vs the flat first-match scan -----

   ROADMAP item 4 asks what an indexed policy representation buys over
   the linear first-match scan once |P| stops being toy-sized.  The
   decision-domain engine of lib/analysis is that index: this section
   builds it over generated policies of |P| ∈ {1k, 10k, 100k} rules
   (fixed vocabulary: 128 users, 8 groups, zones within a 10k-position
   document, the paper's mix of user-, group- and any-subject rules,
   ~20% restrictive) and measures build cost, per-check latency of both
   paths — asserting they agree on every sampled access first — and the
   analyzer's full lint pass.  The speedup lands in BENCH_analysis.json
   as analysis.check_speedup_pNNN_x; CI gates on the 10k point. *)

let analysis_user_pool = 128

let analysis_policy ~rules =
  let users = List.init analysis_user_pool (fun i -> i) in
  let groups =
    List.init 8 (fun g ->
        (Printf.sprintf "g%d" g, List.filter (fun u -> u mod 8 = g) users))
  in
  let auths =
    List.init rules (fun _ ->
        let subjects =
          match rand 50 with
          | 0 -> [ Subject.Any ]
          | x when x < 5 -> [ Subject.Group (Printf.sprintf "g%d" (rand 8)) ]
          | _ -> [ Subject.User (rand analysis_user_pool) ]
        in
        let objects =
          match rand 8 with
          | 0 -> [ Docobj.Whole ]
          | 1 | 2 -> [ Docobj.Element (rand 10_000) ]
          | _ ->
            let lo = rand 10_000 in
            [ Docobj.zone lo (lo + rand 512) ]
        in
        let rights = [ Right.of_index (rand Right.count) ] in
        let make = if rand 5 = 0 then Auth.deny else Auth.grant in
        make subjects objects rights)
  in
  Policy.make ~users ~groups auths

let run_analysis ~quick () =
  let module An = Dce_analysis in
  Printf.printf "== analysis: indexed policy checks vs flat first-match scan ==\n";
  Printf.printf "%8s %8s %8s %10s %12s %12s %9s\n" "|P|" "classes" "segs"
    "build(ms)" "flat(ns)" "engine(ns)" "speedup";
  let sizes = if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  List.iter
    (fun n ->
      let p = analysis_policy ~rules:n in
      let label = "p" ^ size_label n in
      let put k v =
        Obs.Metrics.add
          (Obs.Metrics.counter bench_metrics (Printf.sprintf "analysis.%s.%s" label k))
          v
      in
      let build_ms =
        min_ms ~reps:(if n >= 100_000 then 1 else 3) (fun () -> An.Engine.build p)
      in
      let engine, _ = An.Engine.build p in
      let queries =
        Array.init 4096 (fun _ ->
            ( rand (analysis_user_pool + 16),
              Right.of_index (rand Right.count),
              if rand 20 = 0 then None else Some (rand 12_000) ))
      in
      Array.iter
        (fun (user, right, pos) ->
          if An.Engine.check engine ~user ~right ~pos <> Policy.check p ~user ~right ~pos
          then failwith "analysis bench: engine disagrees with the flat scan")
        queries;
      let flat_reps = if n >= 100_000 then 64 else 1024 in
      let t_flat =
        min_ms ~reps:3 (fun () ->
            for i = 0 to flat_reps - 1 do
              let user, right, pos = queries.(i) in
              ignore (Sys.opaque_identity (Policy.check p ~user ~right ~pos))
            done)
      in
      let flat_ns = t_flat *. 1e6 /. float_of_int flat_reps in
      let t_engine =
        min_ms ~reps:3 (fun () ->
            Array.iter
              (fun (user, right, pos) ->
                ignore (Sys.opaque_identity (An.Engine.check engine ~user ~right ~pos)))
              queries)
      in
      let engine_ns = t_engine *. 1e6 /. float_of_int (Array.length queries) in
      let speedup = flat_ns /. Float.max engine_ns 1e-9 in
      put "build_ms" (int_of_float (Float.max build_ms 1.));
      put "flat_check_ns" (int_of_float flat_ns);
      put "engine_check_ns" (int_of_float (Float.max engine_ns 1.));
      Obs.Metrics.add
        (Obs.Metrics.counter bench_metrics
           (Printf.sprintf "analysis.check_speedup_%s_x" label))
        (int_of_float speedup);
      Printf.printf "%8s %8d %8d %10.1f %12.0f %12.1f %8.0fx\n" (size_label n)
        (An.Classes.count (An.Engine.classes engine))
        (An.Engine.seg_count engine) build_ms flat_ns engine_ns speedup)
    sizes;
  (* the full analyzer pass (engine + findings + witness validation) on
     the 10k-rule policy: what `dcepolicy lint` costs at that size *)
  let p = analysis_policy ~rules:10_000 in
  let lint_ms = min_ms ~reps:3 (fun () -> An.Analyze.run p) in
  let r = An.Analyze.run p in
  let n_err = List.length (An.Analyze.errors r)
  and n_warn = List.length (An.Analyze.warnings r)
  and n_ref = List.length (An.Analyze.refuted r) in
  if n_ref > 0 then failwith "analysis bench: refuted findings";
  let put k v = Obs.Metrics.add (Obs.Metrics.counter bench_metrics ("analysis." ^ k)) v in
  put "lint_p10k.ms" (int_of_float (Float.max lint_ms 1.));
  put "lint_p10k.errors" n_err;
  put "lint_p10k.warnings" n_warn;
  Printf.printf "full lint @ |P|=10k: %.1f ms (%d error(s), %d warning(s), 0 refuted)\n"
    lint_ms n_err n_warn;
  print_newline ()

(* ----- bechamel micro-benchmarks ----- *)

let run_micro () =
  Printf.printf "== micro (bechamel, OLS per-run estimates) ==\n";
  let open Bechamel in
  let c3000 = List.assoc 3000 (build_site ~ins_pct:50 ~checkpoints:[ 3000 ]) in
  let q = remote_insert 1 in
  let history = baseline_history 250 in
  let sdt =
    Dce_baseline.Sdt_like.preload (Dce_baseline.Sdt_like.create ~site:2 initial_text)
      history
  in
  let abt =
    Dce_baseline.Abt_like.preload
      (Dce_baseline.Abt_like.create ~site:2 initial_text)
      (List.map (fun (r : char Request.t) -> r.Request.op) history)
  in
  let policy_pos = Some 3 in
  let tests =
    [
      Test.make ~name:"generate |H|=3000"
        (Staged.stage (fun () ->
             match C.generate c3000 (Op.ins 0 'z') with
             | _, C.Accepted _ -> ()
             | _, C.Denied r -> failwith r));
      Test.make ~name:"receive |H|=3000"
        (Staged.stage (fun () -> ignore (C.receive c3000 (C.Coop q))));
      Test.make ~name:"policy check (|P|=25)"
        (Staged.stage (fun () ->
             ignore (Policy.check base_policy ~user ~right:Right.Insert ~pos:policy_pos)));
      Test.make ~name:"admin interval check (|L|=40)"
        (Staged.stage (fun () ->
             ignore
               (Admin_log.first_denial (C.admin_log c3000) ~from_version:0 ~user
                  ~right:Right.Insert ~pos:policy_pos)));
      Test.make ~name:"sdt-like receive |H|=250"
        (Staged.stage (fun () -> ignore (Dce_baseline.Sdt_like.receive sdt q)));
      Test.make ~name:"abt-like receive |H|=250"
        (Staged.stage (fun () -> ignore (Dce_baseline.Abt_like.receive abt q)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name est ->
          let ns = match Analyze.OLS.estimates est with Some [ e ] -> e | _ -> nan in
          Printf.printf "%-32s %12.1f ns/run  (r2=%s)\n" name ns
            (match Analyze.OLS.r_square est with
             | Some r -> Printf.sprintf "%.3f" r
             | None -> "-"))
        ols)
    tests;
  print_newline ()

(* ----- obs: the export plane itself -----

   What a scrape costs the scraped process: rendering the exposition,
   and what the scraper pays to parse and fold it back into a registry
   (loadgen's merge path).  The registry is shaped like a live
   daemon's: a few dozen counters, a handful of gauges, four populated
   histograms. *)

let run_obs () =
  let put k v = Obs.Metrics.add (Obs.Metrics.counter bench_metrics ("obs." ^ k)) v in
  let live = Obs.Metrics.create () in
  for i = 0 to 31 do
    Obs.Metrics.add (Obs.Metrics.counter live (Printf.sprintf "counter.%d" i))
      ((i * 1013) + 1)
  done;
  for i = 0 to 7 do
    Obs.Metrics.set (Obs.Metrics.gauge live (Printf.sprintf "gauge.%d" i)) (i * 37)
  done;
  for i = 0 to 3 do
    let h = Obs.Metrics.histogram live (Printf.sprintf "hist.%d" i) in
    for k = 1 to 2000 do
      Obs.Metrics.observe h (k * 611 mod 1_000_000)
    done
  done;
  let time iters f =
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = max 1 (Obs.Clock.now_ns () - t0) in
    (dt / iters, iters * 1_000_000_000 / dt)
  in
  let expo = ref "" in
  let render_ns, render_per_s =
    time 500 (fun () -> expo := Obs.Export.exposition ~process_stats:false live)
  in
  put "exposition_ns" render_ns;
  put "exposition_per_s" render_per_s;
  put "exposition_bytes" (String.length !expo);
  let parsed = ref (Obs.Export.parse_exposition !expo) in
  let parse_ns, parse_per_s =
    time 500 (fun () -> parsed := Obs.Export.parse_exposition !expo)
  in
  put "parse_ns" parse_ns;
  put "parse_per_s" parse_per_s;
  let merge_ns, merge_per_s =
    time 500 (fun () ->
        let m2 = Obs.Metrics.create () in
        Obs.Export.merge_into m2 !parsed)
  in
  put "merge_ns" merge_ns;
  put "merge_per_s" merge_per_s;
  let snap_ns, snap_per_s = time 2000 (fun () -> ignore (Obs.Export.snapshot live)) in
  put "snapshot_ns" snap_ns;
  put "snapshot_per_s" snap_per_s;
  Printf.printf
    "obs: exposition %d B; render %d ns, parse %d ns, merge %d ns, snapshot %d \
     ns per call\n\n"
    (String.length !expo) render_ns parse_ns merge_ns snap_ns

let () =
  let trace_file = ref None in
  let quick = ref false in
  let rec parse section = function
    | [] -> section
    | "--metrics" :: rest ->
      Obs.Metrics.set_enabled metrics true;
      Dce_wire.Codec.set_metrics (Some metrics);
      parse section rest
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse section rest
    | "--quick" :: rest ->
      quick := true;
      parse section rest
    | w :: rest -> parse (Some w) rest
  in
  let which = parse None (List.tl (Array.to_list Sys.argv)) in
  let run name f =
    match which with
    | Some w when w <> name -> ()
    | _ ->
      rng := Dce_sim.Rng.of_int 2009;
      f ();
      write_bench_json name
  in
  let all () =
    run "core" (run_core ~quick:!quick);
    run "fig7" run_fig7;
    run "baselines" run_baselines;
    run "complexity" run_complexity;
    run "latency" run_latency;
    run "ablation" run_ablation;
    run "extras" run_extras;
    run "netd" run_netd;
    run "hub" (run_hub ~quick:!quick);
    run "check" run_check;
    run "store" run_store;
    run "analysis" (run_analysis ~quick:!quick);
    run "micro" run_micro;
    run "obs" run_obs
  in
  (match !trace_file with
   | None -> all ()
   | Some path ->
     Obs.Trace.with_file path (fun s ->
         sink := s;
         Fun.protect ~finally:(fun () -> sink := Obs.Trace.null) all);
     Printf.printf "trace written to %s\n" path);
  if Obs.Metrics.enabled metrics then
    Format.printf "== telemetry (histogram summaries) ==@.%a@." Obs.Metrics.pp metrics
