(* Tests for the observability layer: histogram maths, ring buffers,
   JSONL round-trips, the causality audit, and the guarantee the runner
   leans on — its stats are the trace stream, not counts kept alongside
   it. *)

open Dce_ot
module Obs = Dce_obs
module M = Obs.Metrics
module T = Obs.Trace

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ----- metrics ----- *)

let metrics_tests =
  [
    Alcotest.test_case "counters count" `Quick (fun () ->
        let m = M.create () in
        let c = M.counter m "x" in
        M.incr c;
        M.add c 41;
        Alcotest.(check int) "value" 42 (M.value c);
        Alcotest.(check int) "same name same cell" 42 (M.value (M.counter m "x"));
        M.reset m;
        Alcotest.(check int) "reset" 0 (M.value c));
    Alcotest.test_case "disabled registry is inert" `Quick (fun () ->
        let m = M.create ~enabled:false () in
        let c = M.counter m "x" and h = M.histogram m "h" in
        M.incr c;
        M.observe h 5;
        Alcotest.(check int) "counter untouched" 0 (M.value c);
        Alcotest.(check int) "histogram untouched" 0 (M.summary h).M.count;
        M.set_enabled m true;
        M.incr c;
        Alcotest.(check int) "re-enabled" 1 (M.value c));
    Alcotest.test_case "small values are exact" `Quick (fun () ->
        let m = M.create () in
        let h = M.histogram m "h" in
        List.iter (M.observe h) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
        let s = M.summary h in
        Alcotest.(check int) "count" 8 s.M.count;
        Alcotest.(check int) "sum" 28 s.M.sum;
        Alcotest.(check int) "min" 0 s.M.min;
        Alcotest.(check int) "max" 7 s.M.max;
        (* values 0..7 have their own buckets: percentiles are exact
           (ceil-rank: the 4th smallest of eight values is 3) *)
        Alcotest.(check (float 0.0)) "p50" 3.0 (M.percentile h 50.);
        Alcotest.(check (float 0.0)) "p100" 7.0 (M.percentile h 100.));
    Alcotest.test_case "percentile error is bounded" `Quick (fun () ->
        let m = M.create () in
        let h = M.histogram m "h" in
        for v = 1 to 10_000 do
          M.observe h v
        done;
        List.iter
          (fun p ->
            let exact = p /. 100. *. 10_000. in
            let est = M.percentile h p in
            let rel = Float.abs (est -. exact) /. exact in
            if rel > 0.125 then
              Alcotest.failf "p%.0f: estimate %.1f vs exact %.1f (rel %.3f)" p est
                exact rel)
          [ 50.; 90.; 95.; 99. ]);
    Alcotest.test_case "negative observations clamp to zero" `Quick (fun () ->
        let m = M.create () in
        let h = M.histogram m "h" in
        M.observe h (-5);
        let s = M.summary h in
        Alcotest.(check int) "min" 0 s.M.min;
        Alcotest.(check int) "count" 1 s.M.count);
    Alcotest.test_case "empty histogram summarizes safely" `Quick (fun () ->
        let m = M.create () in
        let h = M.histogram m "h" in
        let s = M.summary h in
        Alcotest.(check int) "count" 0 s.M.count;
        Alcotest.(check bool) "p50 nan" true (Float.is_nan s.M.p50));
  ]

(* ----- trace sinks ----- *)

let clk n = Vclock.of_list [ (0, n) ]

let emit_n sink n =
  for i = 1 to n do
    T.emit sink ~site:0 ~clock:(clk i) ~version:0
      (T.Generate { request = { Request.site = 0; serial = i }; valid = false })
  done

let serial_of e =
  match e.T.kind with
  | T.Generate { request; _ } -> request.Request.serial
  | _ -> -1

let sink_tests =
  [
    Alcotest.test_case "null sink is disabled" `Quick (fun () ->
        Alcotest.(check bool) "enabled" false (T.enabled T.null);
        emit_n T.null 3 (* and does not blow up *));
    Alcotest.test_case "ring keeps the most recent events in order" `Quick
      (fun () ->
        let r = T.ring ~capacity:4 in
        emit_n (T.ring_sink r) 10;
        let evs = T.ring_events r in
        Alcotest.(check (list int)) "last four, oldest first" [ 7; 8; 9; 10 ]
          (List.map serial_of evs);
        Alcotest.(check bool) "seq increases" true
          (List.sort compare (List.map (fun e -> e.T.seq) evs)
          = List.map (fun e -> e.T.seq) evs));
    Alcotest.test_case "ring below capacity returns everything" `Quick (fun () ->
        let r = T.ring ~capacity:8 in
        emit_n (T.ring_sink r) 3;
        Alcotest.(check int) "three events" 3 (List.length (T.ring_events r)));
    Alcotest.test_case "tee reaches both sinks" `Quick (fun () ->
        let a = ref 0 and b = ref 0 in
        let s = T.tee (T.callback (fun _ -> incr a)) (T.callback (fun _ -> incr b)) in
        emit_n s 5;
        Alcotest.(check (pair int int)) "both" (5, 5) (!a, !b));
    Alcotest.test_case "count_into tallies per kind" `Quick (fun () ->
        let m = M.create () in
        emit_n (T.count_into m) 4;
        Alcotest.(check int) "trace.generate" 4 (M.value (M.counter m "trace.generate")));
  ]

(* ----- JSONL round-trips ----- *)

let all_kinds =
  let id = { Request.site = 2; serial = 7 } in
  [
    T.Generate { request = id; valid = true };
    T.Check_local { granted = false };
    T.Broadcast { targets = 3; coop = true };
    T.Receive { coop = false; dup = true };
    T.Interval_recheck { request = id; from_version = 1; to_version = 4; denied_at = Some 2 };
    T.Interval_recheck { request = id; from_version = 0; to_version = 0; denied_at = None };
    T.Retroactive_undo { request = id; cancel_version = 3 };
    T.Validate id;
    T.Invalidate { request = id; cancel_version = 5 };
    T.Deliver { request = id; gen_version = 1; valid = false };
    T.Admin_apply { op = "AddAuth(0, <{s1}, {Doc}, {iR}, ->)"; restrictive = true };
  ]

let event_of_kind i kind =
  {
    T.seq = i;
    t_ns = 1_000_000 + i;
    site = i mod 3;
    clock = Vclock.of_list [ (0, i); (1, 2 * i) ];
    version = i;
    kind;
  }

let check_event_equal msg (a : T.event) (b : T.event) =
  Alcotest.(check int) (msg ^ " seq") a.T.seq b.T.seq;
  Alcotest.(check int) (msg ^ " t_ns") a.T.t_ns b.T.t_ns;
  Alcotest.(check int) (msg ^ " site") a.T.site b.T.site;
  Alcotest.(check bool) (msg ^ " clock") true (Vclock.equal a.T.clock b.T.clock);
  Alcotest.(check int) (msg ^ " version") a.T.version b.T.version;
  Alcotest.(check bool) (msg ^ " kind") true (a.T.kind = b.T.kind)

let json_tests =
  [
    Alcotest.test_case "every kind survives a JSON round-trip" `Quick (fun () ->
        List.iteri
          (fun i kind ->
            let e = event_of_kind i kind in
            match T.of_json (T.to_json e) with
            | Ok e' -> check_event_equal (T.kind_name kind) e e'
            | Error msg -> Alcotest.failf "%s: %s" (T.kind_name kind) msg)
          all_kinds);
    Alcotest.test_case "json text round-trips through the parser" `Quick (fun () ->
        List.iteri
          (fun i kind ->
            let e = event_of_kind i kind in
            let text = Obs.Json.to_string (T.to_json e) in
            match Obs.Json.of_string text with
            | Error msg -> Alcotest.failf "parse: %s" msg
            | Ok j -> (
              match T.of_json j with
              | Ok e' -> check_event_equal (T.kind_name kind) e e'
              | Error msg -> Alcotest.failf "decode: %s" msg))
          all_kinds);
    Alcotest.test_case "file round-trip via with_file/read_file" `Quick (fun () ->
        let path = Filename.temp_file "dce_obs" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            T.with_file path (fun s -> emit_n s 6);
            match T.read_file path with
            | Error msg -> Alcotest.fail msg
            | Ok evs ->
              Alcotest.(check int) "count" 6 (List.length evs);
              Alcotest.(check (list int)) "serials" [ 1; 2; 3; 4; 5; 6 ]
                (List.map serial_of evs)));
    Alcotest.test_case "malformed line is a located error" `Quick (fun () ->
        let path = Filename.temp_file "dce_obs" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "not json\n";
            close_out oc;
            match T.read_file path with
            | Ok _ -> Alcotest.fail "expected an error"
            | Error msg ->
              Alcotest.(check bool) "mentions the line" true (contains msg "line 1")));
  ]

(* ----- causality audit ----- *)

let audit_tests =
  [
    Alcotest.test_case "a clean sim trace audits clean" `Quick (fun () ->
        let r = T.ring ~capacity:100_000 in
        let _ =
          Dce_sim.Runner.run ~sink:(T.ring_sink r) Dce_sim.Workload.with_admin ~seed:3
        in
        let evs = T.ring_events r in
        Alcotest.(check bool) "trace is non-trivial" true (List.length evs > 100);
        match Obs.Audit.causality evs with
        | [] -> ()
        | v :: _ -> Alcotest.failf "unexpected violation: %s" v);
    Alcotest.test_case "clock regression is flagged" `Quick (fun () ->
        let id = { Request.site = 1; serial = 1 } in
        let ev seq clock kind = { T.seq; t_ns = seq; site = 0; clock; version = 0; kind } in
        let evs =
          [
            ev 1 (clk 5) (T.Check_local { granted = true });
            ev 2 (clk 4) (T.Check_local { granted = true });
            ev 3 (clk 6) (T.Generate { request = id; valid = false });
          ]
        in
        Alcotest.(check bool) "violations found" true (Obs.Audit.causality evs <> []));
    Alcotest.test_case "serial regression is flagged" `Quick (fun () ->
        let deliver serial =
          T.Deliver
            { request = { Request.site = 1; serial }; gen_version = 0; valid = false }
        in
        let clock n = Vclock.of_list [ (1, n) ] in
        let evs =
          [
            { T.seq = 1; t_ns = 1; site = 0; clock = clock 2; version = 0; kind = deliver 2 };
            { T.seq = 2; t_ns = 2; site = 0; clock = clock 2; version = 0; kind = deliver 1 };
          ]
        in
        Alcotest.(check bool) "violations found" true (Obs.Audit.causality evs <> []));
  ]

(* ----- the runner's stats ARE the trace ----- *)

let runner_tests =
  [
    Alcotest.test_case "stats match the metrics registry and the oplog" `Quick
      (fun () ->
        let m = M.create () in
        let r = Dce_sim.Runner.run ~metrics:m Dce_sim.Workload.with_admin ~seed:7 in
        let stats = r.Dce_sim.Runner.stats in
        Alcotest.(check int) "invalidated counter"
          stats.Dce_sim.Runner.invalidated
          (M.value (M.counter m "controller.invalidated"));
        Alcotest.(check int) "validated counter"
          stats.Dce_sim.Runner.validated
          (M.value (M.counter m "controller.validated"));
        Alcotest.(check int) "delivered counter"
          stats.Dce_sim.Runner.messages_delivered
          (M.value (M.counter m "net.delivered"));
        (* and both agree with ground truth: site 0's final log flags *)
        let site0 = List.hd r.Dce_sim.Runner.controllers in
        let reqs = Dce_ot.Oplog.requests (Dce_core.Controller.oplog site0) in
        let invalid =
          List.length
            (List.filter (fun q -> q.Request.flag = Request.Invalid) reqs)
        in
        let valid =
          List.length (List.filter (fun q -> q.Request.flag = Request.Valid) reqs)
        in
        Alcotest.(check int) "invalidated = invalid-flagged requests" invalid
          stats.Dce_sim.Runner.invalidated;
        Alcotest.(check int) "validated = valid-flagged requests" valid
          stats.Dce_sim.Runner.validated);
  ]

(* ----- the export plane: gauges, exposition, snapshots ----- *)

let export_tests =
  [
    Alcotest.test_case "gauges hold the last set level" `Quick (fun () ->
        let m = M.create () in
        let g = M.gauge m "depth" in
        M.set g 7;
        M.set g 3;
        Alcotest.(check int) "last set wins" 3 (M.gauge_value g);
        Alcotest.(check int) "same name same cell" 3 (M.gauge_value (M.gauge m "depth"));
        Alcotest.(check (list (pair string int))) "listing" [ ("depth", 3) ]
          (M.gauges m);
        M.reset m;
        Alcotest.(check int) "reset zeroes" 0 (M.gauge_value g));
    Alcotest.test_case "disabled gauges are inert" `Quick (fun () ->
        let m = M.create ~enabled:false () in
        let g = M.gauge m "depth" in
        M.set g 9;
        Alcotest.(check int) "no-op" 0 (M.gauge_value g));
    Alcotest.test_case "exposition escapes names, sorts, and is stable" `Quick
      (fun () ->
        let m = M.create () in
        M.incr (M.counter m "netd.frames_in");
        M.add (M.counter m "a.b-c") 2;
        M.set (M.gauge m "9lives") 9;
        M.observe (M.histogram m "lat.ns") 5;
        let d = M.dump m in
        Alcotest.(check string) "two dumps byte-identical" d (M.dump m);
        List.iter
          (fun frag ->
            Alcotest.(check bool) ("contains " ^ frag) true (contains d frag))
          [
            "# TYPE netd_frames_in counter\nnetd_frames_in 1\n";
            "# TYPE a_b_c counter\na_b_c 2\n";
            "# TYPE _9lives gauge\n_9lives 9\n";
            "# TYPE lat_ns histogram\n";
            "lat_ns_bucket{le=\"5\"} 1\n";
            "lat_ns_bucket{le=\"+Inf\"} 1\n";
            "lat_ns_sum 5\n";
            "lat_ns_count 1\n";
          ];
        (* families come out sorted by name *)
        let idx frag =
          let rec go i =
            if i + String.length frag > String.length d then -1
            else if String.sub d i (String.length frag) = frag then i
            else go (i + 1)
          in
          go 0
        in
        Alcotest.(check bool) "a_b_c before netd_frames_in" true
          (idx "a_b_c 2" < idx "netd_frames_in 1"));
    Alcotest.test_case "observe_n replays buckets exactly" `Quick (fun () ->
        let m = M.create () in
        let h = M.histogram m "h" in
        List.iter (M.observe h) [ 0; 1; 5; 9; 123; 123; 4096; 100_000 ];
        let m2 = M.create () in
        let h2 = M.histogram m2 "h" in
        List.iter (fun (v, n) -> M.observe_n h2 v n) (M.buckets h);
        Alcotest.(check (list (pair int int))) "same buckets" (M.buckets h)
          (M.buckets h2);
        Alcotest.(check int) "same count" (M.summary h).M.count
          (M.summary h2).M.count);
    Alcotest.test_case "parse_exposition/merge_into round-trips a registry"
      `Quick (fun () ->
        let m = M.create () in
        M.add (M.counter m "c.x") 5;
        M.set (M.gauge m "g.y") 11;
        let h = M.histogram m "lat" in
        List.iter (M.observe h) [ 3; 70; 900; 60_000 ];
        let p = Obs.Export.parse_exposition (M.dump m) in
        let m2 = M.create () in
        Obs.Export.merge_into m2 p;
        Obs.Export.merge_into m2 p;
        (* merged twice: counters add, gauges sum, histograms double *)
        Alcotest.(check int) "counters add" 10 (M.value (M.counter m2 "c_x"));
        Alcotest.(check int) "gauges sum" 22 (M.gauge_value (M.gauge m2 "g_y"));
        let s = M.summary (M.histogram m2 "lat") in
        Alcotest.(check int) "histogram count" 8 s.M.count;
        Alcotest.(check bool) "p95 finite" true (Float.is_finite s.M.p95));
    Alcotest.test_case "labeled series round-trip dump/parse/merge" `Quick
      (fun () ->
        let m = M.create () in
        let frames d = M.with_label "hub.frames" ~key:"doc" ~value:d in
        M.add (M.counter m (frames "alpha")) 7;
        M.add (M.counter m (frames "beta")) 2;
        M.set (M.gauge m (M.with_label "hub.members" ~key:"doc" ~value:"alpha")) 3;
        let h = M.histogram m (M.with_label "fan.ns" ~key:"doc" ~value:"alpha") in
        List.iter (M.observe h) [ 10; 200; 3000 ];
        let d = M.dump m in
        List.iter
          (fun frag ->
            Alcotest.(check bool) ("contains " ^ frag) true (contains d frag))
          [
            (* one TYPE line per bare family, one series line per label *)
            "# TYPE hub_frames counter\n";
            "hub_frames{doc=\"alpha\"} 7\n";
            "hub_frames{doc=\"beta\"} 2\n";
            "hub_members{doc=\"alpha\"} 3\n";
            (* [le] rides after the existing labels on histogram buckets *)
            "fan_ns_bucket{doc=\"alpha\",le=";
            "fan_ns_sum{doc=\"alpha\"} 3210\n";
            "fan_ns_count{doc=\"alpha\"} 3\n";
          ];
        Alcotest.(check string) "labeled dump is stable" d (M.dump m);
        (* a scrape of the dump merges back into the same labeled series *)
        let p = Obs.Export.parse_exposition d in
        let m2 = M.create () in
        Obs.Export.merge_into m2 p;
        let back base doc =
          M.value (M.counter m2 (M.with_label base ~key:"doc" ~value:doc))
        in
        Alcotest.(check int) "alpha counter survives" 7 (back "hub_frames" "alpha");
        Alcotest.(check int) "beta counter survives" 2 (back "hub_frames" "beta");
        Alcotest.(check int) "labeled gauge survives" 3
          (M.gauge_value
             (M.gauge m2 (M.with_label "hub_members" ~key:"doc" ~value:"alpha")));
        let s =
          M.summary
            (M.histogram m2 (M.with_label "fan_ns" ~key:"doc" ~value:"alpha"))
        in
        Alcotest.(check int) "labeled histogram count survives" 3 s.M.count);
    Alcotest.test_case "snapshot counter deltas" `Quick (fun () ->
        let m = M.create () in
        let c = M.counter m "ops" in
        M.add c 3;
        let s1 = Obs.Export.snapshot m in
        M.add c 4;
        M.incr (M.counter m "fresh");
        let s2 = Obs.Export.snapshot m in
        Alcotest.(check (list (pair string int))) "increases since s1"
          [ ("fresh", 1); ("ops", 4) ]
          (Obs.Export.counter_deltas s1 s2));
    Alcotest.test_case "trace timestamps follow the injected clock" `Quick
      (fun () ->
        (* small offset: runs before the clock suite, whose bases are
           larger — the global monotone clamp must keep growing *)
        let base = Unix.gettimeofday () +. 0.02 in
        Obs.Clock.set_source (Some (fun () -> base));
        Fun.protect ~finally:(fun () -> Obs.Clock.set_source None) @@ fun () ->
        let r = T.ring ~capacity:4 in
        let sink = T.ring_sink r in
        T.emit sink ~site:0 ~clock:Vclock.empty ~version:0
          (T.Check_local { granted = true });
        T.emit sink ~site:0 ~clock:Vclock.empty ~version:0
          (T.Check_local { granted = false });
        match T.ring_events r with
        | [ e1; e2 ] ->
          let base_ns = int_of_float (base *. 1e9) in
          Alcotest.(check bool) "stamped from the source" true
            (abs (e1.T.t_ns - base_ns) < 10_000_000);
          Alcotest.(check bool) "strictly ordered" true (e1.T.t_ns < e2.T.t_ns)
        | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  ]

(* ----- clock: monotone clamp and test injection ----- *)

(* Fake sources start slightly ahead of the real clock: the monotone
   clamp never rewinds below a value already handed out, so a source in
   the past would read as frozen.  Keeping the offset small means the
   real clock catches up within a fraction of a second once restored. *)
let clock_tests =
  [
    Alcotest.test_case "an injected source drives both clocks" `Quick (fun () ->
        let base = Unix.gettimeofday () +. 0.05 in
        let now = ref base in
        Obs.Clock.set_source (Some (fun () -> !now));
        Fun.protect ~finally:(fun () -> Obs.Clock.set_source None) @@ fun () ->
        let a = Obs.Clock.now_ms () in
        now := base +. 0.005;
        let b = Obs.Clock.now_ms () in
        Alcotest.(check (float 0.01)) "advanced by the source step" 5.0 (b -. a));
    Alcotest.test_case "a backwards step freezes the ms clock, never rewinds it"
      `Quick (fun () ->
        let base = Unix.gettimeofday () +. 0.1 in
        let now = ref base in
        Obs.Clock.set_source (Some (fun () -> !now));
        Fun.protect ~finally:(fun () -> Obs.Clock.set_source None) @@ fun () ->
        let a = Obs.Clock.now_ms () in
        now := base -. 0.02;
        (* NTP stepped the wall clock back *)
        let b = Obs.Clock.now_ms () in
        Alcotest.(check (float 0.0001)) "no time elapsed" a b;
        now := base +. 0.03;
        let c = Obs.Clock.now_ms () in
        Alcotest.(check bool) "resumes once real time catches up" true (c > b));
    Alcotest.test_case "now_ns is strictly increasing even when the source is frozen"
      `Quick (fun () ->
        let base = Unix.gettimeofday () +. 0.15 in
        Obs.Clock.set_source (Some (fun () -> base));
        Fun.protect ~finally:(fun () -> Obs.Clock.set_source None) @@ fun () ->
        let a = Obs.Clock.now_ns () in
        let b = Obs.Clock.now_ns () in
        let c = Obs.Clock.now_ns () in
        Alcotest.(check bool) "distinct and ordered" true (a < b && b < c));
    Alcotest.test_case "set_source None restores a live clock" `Quick (fun () ->
        Obs.Clock.set_source None;
        let a = Obs.Clock.now_ms () in
        let b = Obs.Clock.now_ms () in
        Alcotest.(check bool) "still monotone" true (b >= a));
  ]

let () =
  Alcotest.run "dce_obs"
    [
      ("metrics", metrics_tests);
      ("sinks", sink_tests);
      ("jsonl", json_tests);
      ("audit", audit_tests);
      ("runner stats", runner_tests);
      ("export", export_tests);
      ("clock", clock_tests);
    ]
