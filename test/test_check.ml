(* Tests for the bounded model checker (lib/check): the secure protocol
   exhausts green at small bounds, each disabled mechanism surfaces its
   paper figure's hole, counterexamples shrink to short replayable
   traces, and the schedule codec round-trips. *)

open Dce_check
module Controller = Dce_core.Controller

let secure = Controller.secure

let no_retro = { Controller.secure with Controller.retroactive_undo = false }
let no_interval = { Controller.secure with Controller.interval_check = false }
let no_validation = { Controller.secure with Controller.validation = false }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let run ?max_states scenario = Explore.run ?max_states scenario

let expect_found name (outcome, _stats) =
  match outcome with
  | Explore.Found v -> v
  | Explore.Exhausted -> Alcotest.failf "%s: expected a violation, exhausted green" name
  | Explore.Capped -> Alcotest.failf "%s: state cap hit before any violation" name

let scenario_tests =
  [
    Alcotest.test_case "scripts deal every action exactly once" `Quick (fun () ->
        let s = Scenario.make ~sites:3 ~coop:3 ~admin_ops:1 () in
        Alcotest.(check int) "total actions" 4 (Scenario.total_actions s);
        Alcotest.(check int) "sites" 3 (List.length s.Scenario.sites);
        (* round-robin: user 1 gets ops 0 and 2, user 2 gets op 1 *)
        Alcotest.(check int) "user 1 script" 2
          (List.length (List.assoc 1 s.Scenario.scripts));
        Alcotest.(check int) "user 2 script" 1
          (List.length (List.assoc 2 s.Scenario.scripts)));
    Alcotest.test_case "controllers share document, policy and admin" `Quick (fun () ->
        let s = Scenario.make ~sites:3 ~coop:2 ~admin_ops:1 () in
        let cs = Scenario.controllers s in
        Alcotest.(check int) "three controllers" 3 (List.length cs);
        List.iter
          (fun (u, c) ->
            Alcotest.(check int) "site id" u (Controller.site c);
            Alcotest.(check int) "admin is site 0" 0 (Controller.admin c);
            Alcotest.(check string) "initial text" s.Scenario.initial
              (Dce_ot.Tdoc.visible_string (Controller.document c)))
          cs);
  ]

let explore_tests =
  [
    Alcotest.test_case "secure 3 sites / 2 ops / 1 revocation exhausts green" `Quick
      (fun () ->
        let s = Scenario.make ~features:secure ~sites:3 ~coop:2 ~admin_ops:1 () in
        let outcome, stats = run s in
        (match outcome with
         | Explore.Exhausted -> ()
         | Explore.Found v -> Alcotest.failf "violation: %s" v.Explore.detail
         | Explore.Capped -> Alcotest.fail "capped");
        Alcotest.(check bool) "explored states" true (stats.Explore.states > 100);
        Alcotest.(check bool) "checked frontiers" true (stats.Explore.frontiers > 0);
        Alcotest.(check bool) "state cache hits" true (stats.Explore.dedup_hits > 0);
        Alcotest.(check bool) "sleep sets pruned" true (stats.Explore.sleep_skips > 0));
    Alcotest.test_case "secure 3 sites / 3 ops / 1 revocation exhausts green" `Slow
      (fun () ->
        let s = Scenario.make ~features:secure ~sites:3 ~coop:3 ~admin_ops:1 () in
        match run s with
        | Explore.Exhausted, _ -> ()
        | Explore.Found v, _ -> Alcotest.failf "violation: %s" v.Explore.detail
        | Explore.Capped, _ -> Alcotest.fail "capped");
    Alcotest.test_case "secure mixed edits / revoke+regrant exhausts green" `Slow
      (fun () ->
        let s =
          Scenario.make ~features:secure ~mixed:true ~sites:3 ~coop:2 ~admin_ops:2 ()
        in
        match run s with
        | Explore.Exhausted, _ -> ()
        | Explore.Found v, _ -> Alcotest.failf "violation: %s" v.Explore.detail
        | Explore.Capped, _ -> Alcotest.fail "capped");
    Alcotest.test_case "compaction interleaved with delivery exhausts green" `Quick
      (fun () ->
        (* beacon + compact woven after every action: the explorer
           interleaves window GC with every delivery order, and the
           compaction-tolerant oracles must stay green at each frontier *)
        let s =
          Scenario.make ~features:secure ~stability:1 ~sites:2 ~coop:2 ~admin_ops:1 ()
        in
        let outcome, stats = run s in
        (match outcome with
         | Explore.Exhausted -> ()
         | Explore.Found v -> Alcotest.failf "violation: %s" v.Explore.detail
         | Explore.Capped -> Alcotest.fail "capped");
        Alcotest.(check bool) "checked frontiers" true (stats.Explore.frontiers > 100);
        Alcotest.(check bool) "sleep sets still prune" true
          (stats.Explore.sleep_skips > 0);
        (* the same scripts replay deterministically with beacons drained
           like any other message *)
        let r = Explore.replay s [ Explore.Act 0; Explore.Act 1; Explore.Act 1 ] in
        Alcotest.(check (option string)) "drained run green" None r.Explore.violation);
    Alcotest.test_case "state cap yields Capped, not a wrong verdict" `Quick (fun () ->
        let s = Scenario.make ~features:secure ~sites:3 ~coop:2 ~admin_ops:1 () in
        match run ~max_states:50 s with
        | Explore.Capped, stats ->
          Alcotest.(check bool) "stopped at the cap" true (stats.Explore.states <= 51)
        | _ -> Alcotest.fail "expected Capped");
  ]

let hole_tests =
  [
    Alcotest.test_case "no retroactive undo: Fig. 2 hole, shrunk to <= 6 messages"
      `Quick (fun () ->
        let s = Scenario.make ~features:no_retro ~sites:3 ~coop:2 ~admin_ops:1 () in
        let v = expect_found "no-retro" (run s) in
        let minimal = Shrink.minimize s v.Explore.schedule in
        Alcotest.(check bool) "minimal schedule still fails" true
          (Shrink.fails s minimal);
        let r = Explore.replay s minimal in
        (match r.Explore.violation with
         | None -> Alcotest.fail "replay of the minimal schedule does not violate"
         | Some _ -> ());
        Alcotest.(check bool)
          (Printf.sprintf "at most 6 messages (got %d)" r.Explore.messages)
          true (r.Explore.messages <= 6);
        (* the printed trace is replayable: text -> events -> same verdict *)
        let printed = Explore.schedule_to_string r.Explore.executed in
        (match Explore.schedule_of_string printed with
         | Error e -> Alcotest.failf "printed trace does not parse: %s" e
         | Ok events ->
           Alcotest.(check bool) "round-trips" true (events = r.Explore.executed);
           let r' = Explore.replay s events in
           Alcotest.(check (option string)) "same diagnosis on replay"
             r.Explore.violation r'.Explore.violation));
    Alcotest.test_case "no interval check: Fig. 3 hole" `Quick (fun () ->
        let s = Scenario.make ~features:no_interval ~sites:3 ~coop:2 ~admin_ops:2 () in
        ignore (expect_found "no-interval" (run s)));
    Alcotest.test_case
      "interval + retro off: accepted-illegal caught by the security oracle alone"
      `Quick (fun () ->
        let features =
          { Controller.secure with
            Controller.retroactive_undo = false;
            interval_check = false
          }
        in
        let s = Scenario.make ~features ~sites:3 ~coop:2 ~admin_ops:2 () in
        let v = expect_found "no-retro+no-interval" (run s) in
        Alcotest.(check bool)
          (Printf.sprintf "security oracle fired (%s)" v.Explore.detail)
          true
          (contains v.Explore.detail "accepted-illegal");
        (* the point: every replicated-state oracle is green — only the
           ground-truth legality check sees this hole *)
        Alcotest.(check bool) "convergence oracles all hold" true
          (Dce_sim.Convergence.ok v.Explore.report));
    Alcotest.test_case "no validation: Fig. 4 hole (work stuck tentative)" `Quick
      (fun () ->
        let s = Scenario.make ~features:no_validation ~sites:3 ~coop:2 ~admin_ops:1 () in
        let v = expect_found "no-validation" (run s) in
        Alcotest.(check bool)
          (Printf.sprintf "tentative work named (%s)" v.Explore.detail)
          true
          (contains v.Explore.detail "tentative"));
  ]

let replay_tests =
  [
    Alcotest.test_case "schedule codec round-trips" `Quick (fun () ->
        let events =
          [ Explore.Act 0;
            Explore.Act 2;
            Explore.Dlv (1, Explore.Madmin 3);
            Explore.Dlv (0, Explore.Mcoop { Dce_ot.Request.site = 2; serial = 11 })
          ]
        in
        match Explore.schedule_of_string (Explore.schedule_to_string events) with
        | Ok events' -> Alcotest.(check bool) "equal" true (events = events')
        | Error e -> Alcotest.failf "parse error: %s" e);
    Alcotest.test_case "bad schedules are rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match Explore.schedule_of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ "x1"; "d1"; "d1:z9"; "g"; "d1:c2" ]);
    Alcotest.test_case "replay skips disabled events and reports them" `Quick
      (fun () ->
        let s = Scenario.make ~features:secure ~sites:3 ~coop:2 ~admin_ops:1 () in
        let r =
          Explore.replay s
            [ Explore.Act 9; Explore.Act 1; Explore.Dlv (2, Explore.Madmin 7) ]
        in
        Alcotest.(check int) "two skipped" 2 r.Explore.skipped;
        (* one act, its two deliveries, then the admin's validation's two *)
        Alcotest.(check int) "one executed + drain" 5 (List.length r.Explore.executed);
        Alcotest.(check (option string)) "drained run is green" None
          r.Explore.violation);
    Alcotest.test_case "full in-order replay of a secure scenario is green" `Quick
      (fun () ->
        let s = Scenario.make ~features:secure ~sites:3 ~coop:2 ~admin_ops:1 () in
        (* acts only; drain delivers everything in creation order *)
        let r = Explore.replay s [ Explore.Act 0; Explore.Act 1; Explore.Act 2 ] in
        Alcotest.(check (option string)) "green" None r.Explore.violation;
        Alcotest.(check int) "no skips" 0 r.Explore.skipped;
        Alcotest.(check bool) "messages flowed" true (r.Explore.messages >= 3));
  ]

let shrink_tests =
  [
    Alcotest.test_case "minimize returns a failing subsequence, 1-minimal" `Quick
      (fun () ->
        let s = Scenario.make ~features:no_retro ~sites:3 ~coop:2 ~admin_ops:1 () in
        let v = expect_found "no-retro" (run s) in
        let minimal = Shrink.minimize s v.Explore.schedule in
        Alcotest.(check bool) "subsequence fails" true (Shrink.fails s minimal);
        Alcotest.(check bool) "no longer than the original" true
          (List.length minimal <= List.length v.Explore.schedule);
        (* 1-minimality: dropping any single event loses the violation *)
        List.iteri
          (fun i _ ->
            let without = List.filteri (fun j _ -> j <> i) minimal in
            if Shrink.fails s without then
              Alcotest.failf "dropping event %d still fails: not 1-minimal" i)
          minimal);
    Alcotest.test_case "minimize is the identity on green schedules" `Quick (fun () ->
        let s = Scenario.make ~features:secure ~sites:3 ~coop:2 ~admin_ops:1 () in
        let sched = [ Explore.Act 0; Explore.Act 1 ] in
        Alcotest.(check bool) "unchanged" true (Shrink.minimize s sched = sched));
  ]

let crash_tests =
  [
    Alcotest.test_case "crash + recover exhausts green" `Quick (fun () ->
        let s = Scenario.make ~features:secure ~crash:1 ~sites:2 ~coop:2 ~admin_ops:1 () in
        match run s with
        | Explore.Exhausted, st ->
          Alcotest.(check bool) "explored something" true (st.Explore.states > 50)
        | Explore.Found v, _ -> Alcotest.failf "violation: %s" v.Explore.detail
        | Explore.Capped, _ -> Alcotest.fail "capped");
    Alcotest.test_case "crash interleaved with beacons and compaction" `Quick (fun () ->
        let s =
          Scenario.make ~features:secure ~stability:2 ~crash:1 ~sites:2 ~coop:2
            ~admin_ops:1 ()
        in
        match run s with
        | Explore.Exhausted, _ -> ()
        | Explore.Found v, _ -> Alcotest.failf "violation: %s" v.Explore.detail
        | Explore.Capped, _ -> Alcotest.fail "capped");
    Alcotest.test_case "no-clamp mutant is caught and shrinks" `Quick (fun () ->
        let s =
          Scenario.make ~features:secure ~stability:1 ~crash:1 ~sites:2 ~coop:2
            ~admin_ops:1 ()
        in
        let v =
          expect_found "no-clamp" (Explore.run ~mutant:Explore.No_clamp s)
        in
        Alcotest.(check bool)
          "durability oracle named" true
          (contains v.Explore.detail "durability invariant");
        let minimal = Shrink.minimize ~mutant:Explore.No_clamp s v.Explore.schedule in
        Alcotest.(check bool)
          "minimal schedule still fails under the mutant" true
          (Shrink.fails ~mutant:Explore.No_clamp s minimal);
        Alcotest.(check bool)
          "the production discipline passes the same schedule" false
          (Shrink.fails s minimal));
    Alcotest.test_case "crash scenario weaves the pair into non-admin scripts" `Quick
      (fun () ->
        let s = Scenario.make ~crash:1 ~sites:3 ~coop:2 ~admin_ops:1 () in
        Alcotest.(check bool) "persist set" true (s.Scenario.persist <> None);
        List.iter
          (fun (u, script) ->
            let crashes =
              List.length
                (List.filter (function Scenario.Crash -> true | _ -> false) script)
            in
            if u = 0 then Alcotest.(check int) "admin never crashes" 0 crashes
            else Alcotest.(check int) "one crash per site" 1 crashes)
          s.Scenario.scripts);
  ]

let enum_tests =
  [
    Alcotest.test_case "TP1 exhaustive at default bounds" `Quick (fun () ->
        let o = Enum.tp1 () in
        (match o.Enum.failed with Some c -> Alcotest.fail c | None -> ());
        Alcotest.(check bool) "swept a real space" true (o.Enum.cases > 1000));
    Alcotest.test_case "TP2 exhaustive at default bounds" `Quick (fun () ->
        let o = Enum.tp2 () in
        (match o.Enum.failed with Some c -> Alcotest.fail c | None -> ());
        Alcotest.(check bool) "swept a real space" true (o.Enum.cases > 10_000));
    Alcotest.test_case "IT/ET inversion exhaustive at default bounds" `Quick (fun () ->
        let o = Enum.inversion () in
        match o.Enum.failed with Some c -> Alcotest.fail c | None -> ());
  ]

let () =
  Alcotest.run "dce_check"
    [ ("scenario", scenario_tests);
      ("explore", explore_tests);
      ("holes", hole_tests);
      ("replay", replay_tests);
      ("shrink", shrink_tests);
      ("crash", crash_tests);
      ("enum", enum_tests)
    ]
