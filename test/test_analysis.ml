(* Tests for the static policy analyzer (lib/analysis).

   The load-bearing properties are oracle comparisons against the flat
   first-match scan of Policy.check/explain: the indexed engine must
   agree on every access, the liveness verdicts (shadowing) must agree
   with brute-force enumeration, and the semantic diff must flag exactly
   the accesses whose decision changed.  Generated policies keep every
   positional bound below 10, so probing positions 0..9 plus one point
   beyond every zone (and the no-position access) covers every region of
   the decision domain. *)

open Dce_core
module An = Dce_analysis

let samples =
  None :: List.map (fun p -> Some p) [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 1000 ]

let universe = [ 0; 1; 2; 3; 4; 5 ]

(* ----- Iset ----- *)

let iset_tests =
  let open An.Iset in
  let check_eq name a b = Alcotest.(check bool) name true (equal a b) in
  [
    Alcotest.test_case "canonical form coalesces" `Quick (fun () ->
        check_eq "adjacent" (union (range 0 (Some 3)) (range 4 (Some 6))) (range 0 (Some 6));
        check_eq "overlapping" (union (range 0 (Some 5)) (range 3 (Some 8))) (range 0 (Some 8));
        check_eq "unbounded swallows" (union (range 2 None) (range 5 (Some 9))) (range 2 None);
        Alcotest.(check bool) "disjoint stays split" false
          (equal (union (point 0) (point 2)) (range 0 (Some 2))));
    Alcotest.test_case "inter / diff / subset" `Quick (fun () ->
        check_eq "inter" (inter (range 0 (Some 5)) (range 3 None)) (range 3 (Some 5));
        check_eq "diff punches a hole"
          (diff full (range 3 (Some 5)))
          (union (range 0 (Some 2)) (range 6 None));
        check_eq "diff to empty" (diff (range 3 (Some 5)) full) empty;
        Alcotest.(check bool) "subset" true (subset (point 4) (range 3 (Some 5)));
        Alcotest.(check bool) "not subset" false (subset (range 3 (Some 6)) (range 3 (Some 5)));
        Alcotest.(check bool) "mem" true (mem 9 (range 2 None));
        Alcotest.(check bool) "min_elt" true (min_elt (union (point 7) (point 3)) = Some 3));
    Alcotest.test_case "invalid range rejected" `Quick (fun () ->
        try
          ignore (range 5 (Some 2));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

(* ----- finding selectors ----- *)

let find_kind report pred =
  List.find_opt (fun (f : An.Findings.t) -> pred f.kind) report.An.Analyze.findings

let confirmed (f : An.Findings.t option) =
  match f with Some f -> f.status = An.Findings.Confirmed | None -> false

(* ----- unit findings: the two cases from the issue ----- *)

let shadowed_grant () =
  (* P0 blanket-denies deletion, so the later grant can never fire. *)
  let p =
    Policy.make ~users:[ 0; 1 ]
      [
        Auth.deny [ Subject.Any ] [ Docobj.Whole ] [ Right.Delete ];
        Auth.grant [ Subject.User 1 ] [ Docobj.zone 2 6 ] [ Right.Delete ];
      ]
  in
  let r = An.Analyze.run p in
  let shadowed =
    find_kind r (function
      | An.Findings.Shadowed { rule = 1; by = 0 } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "P1 shadowed by P0, confirmed" true (confirmed shadowed);
  (match shadowed with
   | Some { witness = Some w; _ } ->
     Alcotest.(check bool) "witness replays to deny" false
       (Policy.check p ~user:w.user ~right:w.right ~pos:w.pos)
   | _ -> Alcotest.fail "shadowing finding carries no witness");
  Alcotest.(check int) "no refuted findings" 0 (List.length (An.Analyze.refuted r));
  Alcotest.(check bool) "it is an error" true (An.Analyze.errors r <> [])

let order_sensitive_conflict () =
  (* P0 grants the group everything, P1 denies one member a zone:
     under first-match P1 is dead, but swapping the two changes real
     decisions — the definition of an order-sensitive conflict. *)
  let auth0 = Auth.grant [ Subject.Group "eng" ] [ Docobj.Whole ] [ Right.Insert ]
  and auth1 = Auth.deny [ Subject.User 2 ] [ Docobj.zone 3 9 ] [ Right.Insert ] in
  let p = Policy.make ~users:[ 0; 1; 2 ] ~groups:[ ("eng", [ 1; 2 ]) ] [ auth0; auth1 ] in
  let r = An.Analyze.run p in
  let conflict =
    find_kind r (function
      | An.Findings.Conflict { earlier = 0; later = 1 } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "P0/P1 conflict, confirmed" true (confirmed conflict);
  match conflict with
  | Some { witness = Some w; _ } ->
    let swapped =
      Policy.make ~users:[ 0; 1; 2 ] ~groups:[ ("eng", [ 1; 2 ]) ] [ auth1; auth0 ]
    in
    Alcotest.(check bool) "witness decision flips when the pair is swapped" true
      (Policy.check p ~user:w.user ~right:w.right ~pos:w.pos
      <> Policy.check swapped ~user:w.user ~right:w.right ~pos:w.pos)
  | _ -> Alcotest.fail "conflict finding carries no witness"

let subsumed_rule () =
  let p =
    Policy.make ~users:[ 0; 1 ]
      [
        Auth.grant [ Subject.Any ] [ Docobj.Whole ] [ Right.Read ];
        Auth.grant [ Subject.User 1 ] [ Docobj.zone 0 5 ] [ Right.Read ];
      ]
  in
  let r = An.Analyze.run p in
  Alcotest.(check bool) "P1 subsumed by P0" true
    (confirmed
       (find_kind r (function
          | An.Findings.Subsumed { rule = 1; by = 0 } -> true
          | _ -> false)))

let never_matches () =
  let p =
    Policy.make ~users:[ 0; 1 ]
      [ Auth.grant [ Subject.User 1 ] [ Docobj.Element (-1) ] [ Right.Read ] ]
  in
  let r = An.Analyze.run p in
  Alcotest.(check bool) "structurally empty rule flagged" true
    (confirmed
       (find_kind r (function
          | An.Findings.Never_matches { rule = 0 } -> true
          | _ -> false)))

(* ----- del_user / del_obj retention (documented semantics) ----- *)

let deletion_retains_references () =
  let p =
    Policy.make ~users:[ 0; 1; 2 ] ~objects:[ ("intro", Docobj.zone 0 9) ]
      [
        Auth.grant [ Subject.User 2 ] [ Docobj.Whole ] [ Right.Insert ];
        Auth.grant [ Subject.Any ] [ Docobj.Named "intro" ] [ Right.Update ];
        Auth.grant [ Subject.Any ] [ Docobj.Whole ] [ Right.Read ];
      ]
  in
  let p = Result.get_ok (Policy.del_user p 2) in
  let p = Result.get_ok (Policy.del_obj p "intro") in
  (* the authorization list is untouched: indices keep their meaning for
     concurrent Add_auth/Del_auth requests *)
  Alcotest.(check int) "auth list untouched" 3 (Policy.auth_count p);
  Alcotest.(check bool) "deleted user denied before P is consulted" true
    (Policy.explain p ~user:2 ~right:Right.Insert ~pos:(Some 0) = Policy.Unregistered);
  Alcotest.(check bool) "unresolvable object matches nothing" false
    (Policy.check p ~user:1 ~right:Right.Update ~pos:(Some 3));
  let r = An.Analyze.run p in
  Alcotest.(check bool) "dangling user lint" true
    (confirmed
       (find_kind r (function
          | An.Findings.Dangling_user { rule = 0; user = 2 } -> true
          | _ -> false)));
  Alcotest.(check bool) "dangling object lint" true
    (confirmed
       (find_kind r (function
          | An.Findings.Dangling_object { rule = 1; name = "intro" } -> true
          | _ -> false)));
  (* the emptied rules are explained by the dangling lints: warnings,
     not never-matches errors *)
  Alcotest.(check int) "retention produces warnings only" 0
    (List.length (An.Analyze.errors r))

(* ----- random policies ----- *)

let gen_policy =
  let open QCheck2.Gen in
  let* included = array_size (return 5) bool in
  let users =
    match List.filteri (fun i _ -> included.(i)) [ 0; 1; 2; 3; 4 ] with
    | [] -> [ 0 ]
    | us -> us
  in
  let* g0 = list_size (int_range 0 3) (oneofl users) in
  let* g1 = list_size (int_range 0 3) (oneofl users) in
  let groups = [ ("g0", List.sort_uniq compare g0); ("g1", List.sort_uniq compare g1) ] in
  let* objects =
    oneofl [ []; [ ("intro", Docobj.zone 0 4) ]; [ ("intro", Docobj.Element 7) ] ]
  in
  let gen_subject =
    oneof
      [
        return Subject.Any;
        (let* u = int_range 0 5 in
         return (Subject.User u));
        (let* g = oneofl [ "g0"; "g1"; "ghost" ] in
         return (Subject.Group g));
      ]
  in
  let gen_object =
    oneof
      [
        return Docobj.Whole;
        (let* e = int_range 0 7 in
         return (Docobj.Element e));
        (let* lo = int_range 0 7 in
         let* hi = int_range lo 7 in
         return (Docobj.zone lo hi));
        (let* n = oneofl [ "intro"; "ghost" ] in
         return (Docobj.Named n));
      ]
  in
  let gen_auth =
    let* subjects = list_size (int_range 1 2) gen_subject in
    let* objs = list_size (int_range 1 2) gen_object in
    let* mask = int_range 1 15 in
    let rights = List.filter (fun r -> mask land (1 lsl Right.index r) <> 0) Right.all in
    let* restrictive = bool in
    return (if restrictive then Auth.deny subjects objs rights else Auth.grant subjects objs rights)
  in
  let* auths = list_size (int_range 0 6) gen_auth in
  return (Policy.make ~users ~groups ~objects auths)

let print_policy p = An.Policy_file.print_policy p

let qtest ?(count = 200) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

let property_tests =
  [
    qtest "indexed engine agrees with the flat scan" gen_policy print_policy (fun p ->
        let engine, _ = An.Engine.build p in
        List.for_all
          (fun user ->
            List.for_all
              (fun right ->
                List.for_all
                  (fun pos ->
                    An.Engine.check engine ~user ~right ~pos
                    = Policy.check p ~user ~right ~pos)
                  samples)
              Right.all)
          universe);
    qtest "liveness verdicts agree with brute-force enumeration" gen_policy print_policy
      (fun p ->
        let r = An.Analyze.run p in
        let brute_live i =
          List.exists
            (fun user ->
              List.exists
                (fun right ->
                  List.exists
                    (fun pos -> Policy.explain p ~user ~right ~pos = Policy.Matched i)
                    samples)
                Right.all)
            universe
        in
        Array.for_all
          (fun (f : An.Engine.fate) -> brute_live f.rule = (f.live <> None))
          r.fates
        && List.for_all
             (fun (f : An.Findings.t) ->
               match f.kind with
               | An.Findings.Shadowed { rule; _ }
               | An.Findings.Subsumed { rule; _ }
               | An.Findings.Never_matches { rule } -> not (brute_live rule)
               | _ -> true)
             r.findings);
    qtest "every finding's witness survives replay (none refuted)" gen_policy
      print_policy (fun p -> An.Analyze.refuted (An.Analyze.run p) = []);
    qtest "semantic diff flags exactly the changed accesses" ~count:150
      QCheck2.Gen.(
        let* a = gen_policy in
        let* b = gen_policy in
        return (a, b))
      (fun (a, b) -> print_policy a ^ "--- vs ---\n" ^ print_policy b)
      (fun (a, b) ->
        let changes = An.Diff.policies a b in
        List.for_all
          (fun user ->
            List.for_all
              (fun right ->
                List.for_all
                  (fun pos ->
                    An.Diff.affects changes ~user ~right ~pos
                    = (Policy.check a ~user ~right ~pos
                      <> Policy.check b ~user ~right ~pos))
                  samples)
              Right.all)
          universe);
    qtest "policy file round-trips" ~count:150 gen_policy print_policy (fun p ->
        match An.Policy_file.parse (print_policy p) with
        | Error _ -> false
        | Ok pf -> (
          match An.Policy_file.final_policy pf with
          | Error _ -> false
          | Ok p' ->
            List.for_all
              (fun user ->
                List.for_all
                  (fun right ->
                    List.for_all
                      (fun pos ->
                        Policy.check p ~user ~right ~pos = Policy.check p' ~user ~right ~pos)
                      samples)
                  Right.all)
              universe));
  ]

(* ----- diff on a concrete revocation ----- *)

let diff_revocation () =
  let base =
    Policy.make ~users:[ 0; 1; 2 ] ~groups:[ ("eng", [ 1; 2 ]) ]
      [
        Auth.grant [ Subject.Group "eng" ] [ Docobj.Whole ] [ Right.Insert; Right.Delete ];
        Auth.grant [ Subject.Any ] [ Docobj.Whole ] [ Right.Read ];
      ]
  in
  let revoked =
    Policy.make ~users:[ 0; 1; 2 ] ~groups:[ ("eng", [ 1; 2 ]) ]
      [
        Auth.deny [ Subject.User 2 ] [ Docobj.zone 0 4 ] [ Right.Insert ];
        Auth.grant [ Subject.Group "eng" ] [ Docobj.Whole ] [ Right.Insert; Right.Delete ];
        Auth.grant [ Subject.Any ] [ Docobj.Whole ] [ Right.Read ];
      ]
  in
  let changes = An.Diff.policies base revoked in
  Alcotest.(check bool) "u2 loses insert in the zone" true
    (An.Diff.affects changes ~user:2 ~right:Right.Insert ~pos:(Some 3));
  Alcotest.(check bool) "u2 keeps insert outside it" false
    (An.Diff.affects changes ~user:2 ~right:Right.Insert ~pos:(Some 5));
  Alcotest.(check bool) "u1 untouched" false
    (An.Diff.affects changes ~user:1 ~right:Right.Insert ~pos:(Some 3));
  Alcotest.(check bool) "reads untouched" false
    (An.Diff.affects changes ~user:2 ~right:Right.Read ~pos:(Some 3))

(* ----- the committed example files ----- *)

let example path = Filename.concat "../examples/policies" path

let examples_lint () =
  match An.Policy_file.load (example "wiki.dcep") with
  | Error e -> Alcotest.fail e
  | Ok pf ->
    let p = Result.get_ok (An.Policy_file.final_policy pf) in
    let r = An.Analyze.run p in
    Alcotest.(check int) "wiki.dcep is clean" 0
      (List.length (An.Analyze.errors r) + List.length (An.Analyze.warnings r));
    (match An.Policy_file.load (example "shadowed.dcep") with
     | Error e -> Alcotest.fail e
     | Ok pf ->
       let p = Result.get_ok (An.Policy_file.final_policy pf) in
       let r = An.Analyze.run p in
       Alcotest.(check bool) "shadowed.dcep has confirmed errors" true
         (An.Analyze.errors r <> [])
       ;
       Alcotest.(check int) "and no refuted findings" 0
         (List.length (An.Analyze.refuted r)))

let examples_trajectory () =
  match An.Policy_file.load (example "storm.dcep") with
  | Error e -> Alcotest.fail e
  | Ok pf -> (
    match An.Policy_file.log_of pf with
    | Error e -> Alcotest.fail e
    | Ok log ->
      let steps = An.Diff.trajectory log in
      Alcotest.(check int) "one diff per administrative step" (List.length pf.steps)
        (List.length steps);
      (* the first step denies u3 deletion everywhere *)
      (match steps with
       | (_, changes) :: _ ->
         Alcotest.(check bool) "first step revokes u3's delete" true
           (An.Diff.affects changes ~user:3 ~right:Right.Delete ~pos:(Some 0))
       | [] -> Alcotest.fail "empty trajectory");
      (* every step's diff agrees with checking the two versions *)
      List.iteri
        (fun i (_, changes) ->
          let before = Option.get (Admin_log.policy_at log i)
          and after = Option.get (Admin_log.policy_at log (i + 1)) in
          List.iter
            (fun user ->
              List.iter
                (fun right ->
                  List.iter
                    (fun pos ->
                      Alcotest.(check bool) "trajectory diff is exact"
                        (Policy.check before ~user ~right ~pos
                        <> Policy.check after ~user ~right ~pos)
                        (An.Diff.affects changes ~user ~right ~pos))
                    samples)
                Right.all)
            universe)
        steps)

let () =
  Alcotest.run "dce_analysis"
    [
      ("iset", iset_tests);
      ( "findings",
        [
          Alcotest.test_case "shadowed grant is reported with a witness" `Quick
            shadowed_grant;
          Alcotest.test_case "order-sensitive conflict: swapping flips the witness"
            `Quick order_sensitive_conflict;
          Alcotest.test_case "pure redundancy is reported as subsumption" `Quick
            subsumed_rule;
          Alcotest.test_case "never-matching rule is flagged" `Quick never_matches;
          Alcotest.test_case "del_user/del_obj retain references; lint flags them"
            `Quick deletion_retains_references;
        ] );
      ("properties", property_tests);
      ( "diff",
        [
          Alcotest.test_case "revocation blast radius is exact" `Quick diff_revocation;
        ] );
      ( "examples",
        [
          Alcotest.test_case "committed examples lint as documented" `Quick
            examples_lint;
          Alcotest.test_case "storm trajectory is exact at every step" `Quick
            examples_trajectory;
        ] );
    ]
