(* Tests for the multi-document hub: document-name hygiene, the
   poll-based event loop (including the select() FD_SETSIZE cliff it
   exists to avoid), multi-doc isolation over real TCP, raw-socket
   multiplexing with attach/detach, v1/v2 interop on the default
   document, hostile attach frames, and two-hub federation with a late
   joiner snapshotting from the leaf. *)

open Dce_ot
open Dce_core
module Netd = Dce_netd
module Hub = Dce_hub.Hub
module Upstream = Dce_hub.Upstream
module Evloop = Dce_hub.Evloop
module Doc_name = Dce_hub.Doc_name
module Codec = Dce_wire.Codec
module Proto = Dce_wire.Proto
module Obs = Dce_obs

(* ----- document names ----- *)

let doc_name_tests =
  [
    Alcotest.test_case "accepts fs/metric/wire-safe names" `Quick (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check bool) (Printf.sprintf "valid %S" n) true
              (Doc_name.valid n))
          [ "main"; "a"; "notes-2024"; "team.docs"; "A_b.C-d"; String.make 64 'x' ]);
    Alcotest.test_case "rejects hostile names" `Quick (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check bool) (Printf.sprintf "invalid %S" n) false
              (Doc_name.valid n))
          [
            "";
            String.make 65 'x';
            "../evil";
            "a/b";
            "a b";
            ".hidden";
            "-flag";
            "caf\xc3\xa9";
            "a\nb";
            "doc\x00";
          ]);
  ]

(* ----- evloop ----- *)

let evloop_tests =
  [
    Alcotest.test_case "readiness on a socketpair" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect ~finally:(fun () -> Unix.close a; Unix.close b) @@ fun () ->
        (* nothing to read yet: only write readiness *)
        let rd, wr = Evloop.wait ~timeout_ms:0 ~read:[ a ] ~write:[ a ] () in
        Alcotest.(check bool) "no read readiness on a quiet socket" true (rd = []);
        Alcotest.(check bool) "write readiness on an empty buffer" true (wr = [ a ]);
        ignore (Unix.write_substring b "x" 0 1);
        let rd, _ = Evloop.wait ~timeout_ms:100 ~read:[ a; b ] ~write:[] () in
        Alcotest.(check bool) "readable end reported" true (List.memq a rd);
        Alcotest.(check bool) "quiet end not reported" false (List.memq b rd));
    Alcotest.test_case "timeout expires on quiet fds" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect ~finally:(fun () -> Unix.close a; Unix.close b) @@ fun () ->
        let t0 = Unix.gettimeofday () in
        let rd, wr = Evloop.wait ~timeout_ms:60 ~read:[ a; b ] ~write:[] () in
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "nothing ready" true (rd = [] && wr = []);
        Alcotest.(check bool) "waited for the timeout" true (dt >= 0.03));
    Alcotest.test_case "duplicate fds are reported once" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect ~finally:(fun () -> Unix.close a; Unix.close b) @@ fun () ->
        ignore (Unix.write_substring b "x" 0 1);
        let rd, _ = Evloop.wait ~timeout_ms:100 ~read:[ a; a; a ] ~write:[] () in
        Alcotest.(check int) "one entry" 1 (List.length rd));
    Alcotest.test_case "survives >1024 fds (select's FD_SETSIZE cliff)" `Quick
      (fun () ->
        (* allocate pipes until the read set alone passes FD_SETSIZE;
           select() would refuse or corrupt beyond 1024, poll() must
           not.  When the fd ulimit forbids it, log a skip. *)
        let pipes = ref [] in
        let failed = ref None in
        (try
           while List.length !pipes < 600 do
             pipes := Unix.pipe ~cloexec:true () :: !pipes
           done
         with Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
           failed := Some "fd ulimit");
        Fun.protect ~finally:(fun () ->
            List.iter
              (fun (r, w) ->
                (try Unix.close r with Unix.Unix_error _ -> ());
                try Unix.close w with Unix.Unix_error _ -> ())
              !pipes)
        @@ fun () ->
        match !failed with
        | Some why ->
          Printf.printf "SKIP: cannot allocate >1024 fds here (%s)\n%!" why
        | None ->
          let reads = List.map fst !pipes in
          let high =
            List.fold_left (fun acc fd -> max acc (Obj.magic fd : int)) 0 reads
          in
          Alcotest.(check bool) "an fd beyond FD_SETSIZE is in the set" true
            (high >= 1024);
          let target_r, target_w = List.nth !pipes 17 in
          ignore (Unix.write_substring target_w "y" 0 1);
          let rd, _ = Evloop.wait ~timeout_ms:1000 ~read:reads ~write:[] () in
          Alcotest.(check bool) "the one readable pipe is found" true
            (List.memq target_r rd);
          Alcotest.(check int) "and only that one" 1 (List.length rd));
  ]

(* ----- loopback helpers ----- *)

let relay_site = 1_000_000

let mk_controller ~site text =
  let policy =
    Policy.make ~users:[ 0; 1; 2 ]
      [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  Controller.create ~eq:Char.equal ~site ~admin:0 ~policy ~trace:Obs.Trace.null
    (Tdoc.of_string text)

let mk_hub ?metrics ?(docs = [ "main" ]) ?(hub_id = 0) ?upstream ?(auto_create = false)
    ?beacon_ms ?compact_ms ?(port = 0) () =
  let config = { Hub.default_config with Hub.hub_id; auto_create } in
  let config =
    match beacon_ms with None -> config | Some b -> { config with Hub.beacon_ms = b }
  in
  let config =
    match compact_ms with None -> config | Some c -> { config with Hub.compact_ms = c }
  in
  Hub.create ~config ?metrics ?upstream ~codec:Proto.char_codec
    ~factory:(fun _doc -> Ok (mk_controller ~site:(relay_site + hub_id) "abc", None))
    ~docs ~port ()

type endpoint = {
  client : Netd.Client.t;
  site : int;
  mutable ctrl : char Controller.t option;
  mutable snapshots : int;
  mutable got_msgs : int;
}

let on_event ep = function
  | Netd.Client.Snapshot blob -> (
    match Proto.Char_proto.decode_state blob with
    | Error e -> Alcotest.failf "site %d: bad snapshot: %s" ep.site e
    | Ok state -> (
      match Controller.load ~eq:Char.equal state with
      | Error e -> Alcotest.failf "site %d: snapshot rejected: %s" ep.site e
      | Ok donor ->
        ep.snapshots <- ep.snapshots + 1;
        (match ep.ctrl with
         | None -> ep.ctrl <- Some (Controller.rejoin ~site:ep.site donor)
         | Some mine ->
           (* a mid-session resync (e.g. after a federation heal): keep
              local state and re-broadcast what the group lacks, like
              p2pedit does *)
           let mine, out = Controller.catch_up mine donor in
           ep.ctrl <- Some mine;
           List.iter
             (fun m ->
               Netd.Client.send ep.client (Proto.Char_proto.encode_message m))
             out)))
  | Netd.Client.Message blob -> (
    match Proto.Char_proto.decode_message blob with
    | Error e -> Alcotest.failf "site %d: bad message: %s" ep.site e
    | Ok m ->
      ep.got_msgs <- ep.got_msgs + 1;
      let c = Option.get ep.ctrl in
      let c, emitted = Controller.receive c m in
      ep.ctrl <- Some c;
      List.iter
        (fun m' -> Netd.Client.send ep.client (Proto.Char_proto.encode_message m'))
        emitted)
  | Netd.Client.Beacon blob -> (
    (* absorb the hub's aggregate gossip like a real editor would *)
    match Proto.decode_frontier blob with
    | Error e -> Alcotest.failf "site %d: bad frontier: %s" ep.site e
    | Ok entries -> (
      match ep.ctrl with
      | None -> ()
      | Some c ->
        ep.ctrl <-
          Some
            (List.fold_left
               (fun c (b : Proto.beacon) ->
                 Controller.receive_beacon c ~peer:b.Proto.b_site
                   ~clock:b.Proto.b_clock ~version:b.Proto.b_version)
               c entries)))
  | Netd.Client.Delta blob -> (
    match Proto.Char_proto.decode_delta blob with
    | Error e -> Alcotest.failf "site %d: bad delta: %s" ep.site e
    | Ok d -> (
      match ep.ctrl with
      | None -> Alcotest.failf "site %d: delta before any local state" ep.site
      | Some mine -> (
        match Controller.apply_delta mine d with
        | Error e -> Alcotest.failf "site %d: delta rejected: %s" ep.site e
        | Ok (mine, out) ->
          ep.snapshots <- ep.snapshots + 1;
          ep.ctrl <- Some mine;
          List.iter
            (fun m ->
              Netd.Client.send ep.client (Proto.Char_proto.encode_message m))
            out)))
  | Netd.Client.Connected | Netd.Client.Disconnected _ | Netd.Client.Reconnecting _ ->
    ()
  | Netd.Client.Gave_up reason -> Alcotest.failf "site %d gave up: %s" ep.site reason

let mk_endpoint ?doc ?heartbeat_ms ?resume ~port ~site () =
  let config =
    {
      Netd.Client.default_config with
      Netd.Client.backoff_base_ms = 5;
      backoff_max_ms = 50;
      max_attempts = Some 100;
    }
  in
  let config =
    match heartbeat_ms with
    | None -> config
    | Some h -> { config with Netd.Client.heartbeat_ms = h }
  in
  let ep =
    {
      client =
        Netd.Client.create ~config ~seed:site ?doc ?resume ~host:"127.0.0.1" ~port
          ~site ();
      site;
      ctrl = None;
      snapshots = 0;
      got_msgs = 0;
    }
  in
  (* stamp traces — and, on v2, the periodic stability beacon — from the
     live controller once one exists *)
  Netd.Client.set_stamp ep.client (fun () ->
      match ep.ctrl with
      | Some c -> (Controller.clock c, Controller.version c)
      | None -> (Dce_ot.Vclock.empty, 0));
  ep

let ep_step ep = List.iter (on_event ep) (Netd.Client.step ~timeout_ms:0 ep.client)

let pump_until ?(max_rounds = 8000) hubs eps cond =
  let rec go i =
    cond ()
    ||
    if i >= max_rounds then false
    else begin
      List.iter (fun h -> Hub.step ~timeout_ms:1 h) hubs;
      List.iter ep_step eps;
      go (i + 1)
    end
  in
  go 0

let require name ok = if not ok then Alcotest.failf "timeout waiting for %s" name

let doc_of ep =
  match ep.ctrl with
  | Some c -> Tdoc.visible_string (Controller.document c)
  | None -> "<not joined>"

let settled ep =
  match ep.ctrl with
  | None -> false
  | Some c ->
    Controller.tentative c = []
    && Controller.pending_coop c = 0
    && Controller.pending_admin c = 0

let edit ep pos ch =
  let c = Option.get ep.ctrl in
  match Controller.generate c (Tdoc.ins_visible (Controller.document c) pos ch) with
  | c, Controller.Accepted m ->
    ep.ctrl <- Some c;
    Netd.Client.send ep.client (Proto.Char_proto.encode_message m)
  | _, Controller.Denied r -> Alcotest.failf "site %d denied: %s" ep.site r

let hub_doc ?doc hub = Tdoc.visible_string (Controller.document (Hub.controller ?doc hub))

(* ----- multi-doc isolation ----- *)

let isolation_test () =
  let metrics = Obs.Metrics.create () in
  let hub = mk_hub ~metrics ~docs:[ "alpha"; "beta" ] () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let port = Hub.port hub in
  (* alpha hosts sites 0 and 1; beta hosts its own site 1 — same user
     id, unrelated session *)
  let a0 = mk_endpoint ~doc:"alpha" ~port ~site:0 () in
  let a1 = mk_endpoint ~doc:"alpha" ~port ~site:1 () in
  let b1 = mk_endpoint ~doc:"beta" ~port ~site:1 () in
  let eps = [ a0; a1; b1 ] in
  require "all joined"
    (pump_until [ hub ] eps (fun () -> List.for_all (fun e -> e.ctrl <> None) eps));
  Alcotest.(check (list int)) "alpha members" [ 0; 1 ]
    (Hub.connected_sites ~doc:"alpha" hub);
  Alcotest.(check (list int)) "beta members" [ 1 ]
    (Hub.connected_sites ~doc:"beta" hub);
  edit a1 0 'x';
  edit a1 1 'y';
  require "alpha converged"
    (pump_until [ hub ] eps (fun () ->
         doc_of a0 = "xyabc" && doc_of a1 = "xyabc" && settled a0 && settled a1));
  (* isolation: beta saw nothing — not the hub copy, not the member *)
  Alcotest.(check string) "beta hub copy untouched" "abc" (hub_doc ~doc:"beta" hub);
  Alcotest.(check string) "beta member untouched" "abc" (doc_of b1);
  Alcotest.(check int) "no frame ever reached the beta member" 0 b1.got_msgs;
  (* and the reverse direction *)
  edit b1 3 'z';
  require "beta converged"
    (pump_until [ hub ] eps (fun () -> hub_doc ~doc:"beta" hub = "abcz"));
  Alcotest.(check string) "alpha hub copy untouched by beta" "xyabc"
    (hub_doc ~doc:"alpha" hub);
  Alcotest.(check string) "alpha members untouched by beta" "xyabc" (doc_of a0);
  (* per-doc labeled metrics carry the member counts *)
  let g =
    List.assoc
      (Obs.Metrics.with_label "hub.members" ~key:"doc" ~value:"alpha")
      (Obs.Metrics.gauges metrics)
  in
  Alcotest.(check int) "alpha member gauge" 2 g;
  List.iter (fun ep -> Netd.Client.close ep.client) eps

(* ----- raw-socket multiplexing: one socket, two docs ----- *)

let send_payload fd s =
  let framed = Codec.frame s in
  ignore (Unix.write_substring fd framed 0 (String.length framed))

(* read frames off a raw socket until [stop] says enough or the server
   hangs up; the hub is stepped while we wait *)
let drain_frames hub fd ~rounds stop =
  let sp = Netd.Splitter.create () in
  let buf = Bytes.create 4096 in
  let got = ref [] in
  let eof = ref false in
  Unix.set_nonblock fd;
  let rec go i =
    if i < rounds && (not !eof) && not (stop !got) then begin
      Hub.step ~timeout_ms:1 hub;
      (match Unix.read fd buf 0 (Bytes.length buf) with
       | 0 -> eof := true
       | n -> Netd.Splitter.feed sp buf ~off:0 ~len:n
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
         eof := true);
      let rec pull () =
        match Netd.Splitter.next sp with
        | Ok (Some p) -> (
          match Netd.Relay_proto.decode p with
          | Ok m ->
            got := !got @ [ m ];
            pull ()
          | Error e -> Alcotest.failf "undecodable frame from hub: %s" e)
        | Ok None -> ()
        | Error e -> Alcotest.failf "corrupt stream from hub: %s" e
      in
      pull ();
      go (i + 1)
    end
  in
  go 0;
  (!got, !eof)

let multiplex_test () =
  let hub = mk_hub ~docs:[ "alpha"; "beta" ] () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Hub.port hub));
  send_payload fd
    (Netd.Relay_proto.encode (Netd.Relay_proto.Attach { doc = "alpha"; site = 2 }));
  send_payload fd
    (Netd.Relay_proto.encode (Netd.Relay_proto.Attach { doc = "beta"; site = 2 }));
  let is_snapshot d = function
    | Netd.Relay_proto.Doc_snapshot { doc; _ } -> doc = d
    | _ -> false
  in
  let got, eof =
    drain_frames hub fd ~rounds:2000 (fun got ->
        List.exists (is_snapshot "alpha") got && List.exists (is_snapshot "beta") got)
  in
  Alcotest.(check bool) "still connected" false eof;
  Alcotest.(check bool) "snapshot for each attached doc" true
    (List.exists (is_snapshot "alpha") got && List.exists (is_snapshot "beta") got);
  Alcotest.(check (list int)) "one socket, member of both docs" [ 2 ]
    (Hub.connected_sites ~doc:"alpha" hub);
  Alcotest.(check (list int)) "…and beta" [ 2 ] (Hub.connected_sites ~doc:"beta" hub);
  (* an edit into alpha through the shared socket *)
  let donor = Controller.rejoin ~site:2 (Hub.controller ~doc:"alpha" hub) in
  let msg =
    match
      Controller.generate donor (Tdoc.ins_visible (Controller.document donor) 0 'm')
    with
    | _, Controller.Accepted m -> Proto.Char_proto.encode_message m
    | _, Controller.Denied r -> Alcotest.failf "donor denied: %s" r
  in
  send_payload fd
    (Netd.Relay_proto.encode
       (Netd.Relay_proto.Doc_msg { doc = "alpha"; origin = 0; msg }));
  let applied () = hub_doc ~doc:"alpha" hub = "mabc" in
  let _, eof = drain_frames hub fd ~rounds:2000 (fun _ -> applied ()) in
  Alcotest.(check bool) "edit applied to alpha" true (applied ());
  Alcotest.(check bool) "still connected after the edit" false eof;
  Alcotest.(check string) "beta isolated from the mux edit" "abc"
    (hub_doc ~doc:"beta" hub);
  (* detach from alpha; the beta attachment must survive *)
  send_payload fd
    (Netd.Relay_proto.encode (Netd.Relay_proto.Detach { doc = "alpha" }));
  let detached () = Hub.connected_sites ~doc:"alpha" hub = [] in
  let _, eof = drain_frames hub fd ~rounds:2000 (fun _ -> detached ()) in
  Alcotest.(check bool) "alpha detached" true (detached ());
  Alcotest.(check bool) "socket survives the detach" false eof;
  Alcotest.(check (list int)) "beta attachment survives" [ 2 ]
    (Hub.connected_sites ~doc:"beta" hub);
  (* a message for the now-unattached doc is a protocol violation *)
  send_payload fd
    (Netd.Relay_proto.encode
       (Netd.Relay_proto.Doc_msg { doc = "alpha"; origin = 0; msg }));
  let _, eof = drain_frames hub fd ~rounds:2000 (fun _ -> false) in
  Alcotest.(check bool) "message after detach drops the peer" true eof

(* ----- v1/v2 interop on the default document ----- *)

let interop_test () =
  let hub = mk_hub () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let port = Hub.port hub in
  (* ep_old speaks the original single-doc protocol (no --doc), ep_new
     attaches to "main" explicitly; they must share the session *)
  let ep_old = mk_endpoint ~port ~site:0 () in
  let ep_new = mk_endpoint ~doc:"main" ~port ~site:1 () in
  let eps = [ ep_old; ep_new ] in
  require "both joined"
    (pump_until [ hub ] eps (fun () -> List.for_all (fun e -> e.ctrl <> None) eps));
  Alcotest.(check (list int)) "one session, both dialects" [ 0; 1 ]
    (Hub.connected_sites hub);
  edit ep_old 0 'o';
  require "v1 edit reaches the v2 member"
    (pump_until [ hub ] eps (fun () -> doc_of ep_new = "oabc"));
  edit ep_new 4 'n';
  require "v2 edit reaches the v1 member"
    (pump_until [ hub ] eps (fun () ->
         doc_of ep_old = "oabcn" && doc_of ep_new = "oabcn"
         && List.for_all settled eps));
  Alcotest.(check string) "hub copy agrees" "oabcn" (hub_doc hub);
  List.iter (fun ep -> Netd.Client.close ep.client) eps

(* ----- hostile attach frames ----- *)

let hostile_attach_test () =
  let hub = mk_hub ~docs:[ "main" ] () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let connect_raw () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Hub.port hub));
    fd
  in
  let dropped fd =
    let _, eof = drain_frames hub fd ~rounds:2000 (fun _ -> false) in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    eof
  in
  (* a traversal name must never reach the filesystem or the registry *)
  let fd = connect_raw () in
  send_payload fd
    (Netd.Relay_proto.encode
       (Netd.Relay_proto.Attach { doc = "../../etc/passwd"; site = 1 }));
  Alcotest.(check bool) "path traversal attach dropped" true (dropped fd);
  (* unknown doc without auto-create *)
  let fd = connect_raw () in
  send_payload fd
    (Netd.Relay_proto.encode (Netd.Relay_proto.Attach { doc = "nosuch"; site = 1 }));
  Alcotest.(check bool) "unknown doc attach dropped" true (dropped fd);
  (* oversized name *)
  let fd = connect_raw () in
  send_payload fd
    (Netd.Relay_proto.encode
       (Netd.Relay_proto.Attach { doc = String.make 400 'a'; site = 1 }));
  Alcotest.(check bool) "oversized doc name dropped" true (dropped fd);
  (* a malformed attach envelope: tag 'A' with a truncated body *)
  let fd = connect_raw () in
  send_payload fd "A\x05";
  Alcotest.(check bool) "malformed attach envelope dropped" true (dropped fd);
  (* v1 greeting then a v2 attach on the same socket *)
  let fd = connect_raw () in
  send_payload fd (Netd.Relay_proto.encode (Netd.Relay_proto.Hello { site = 1 }));
  send_payload fd
    (Netd.Relay_proto.encode (Netd.Relay_proto.Attach { doc = "main"; site = 1 }));
  Alcotest.(check bool) "attach after hello dropped" true (dropped fd);
  (* after all of it, an honest member still gets served *)
  let ep = mk_endpoint ~doc:"main" ~port:(Hub.port hub) ~site:2 () in
  require "honest client joins after abuse"
    (pump_until [ hub ] [ ep ] (fun () -> ep.ctrl <> None));
  Alcotest.(check string) "and sees the document" "abc" (doc_of ep);
  Alcotest.(check int) "hostile attaches never became sessions" 1
    (List.length (Hub.docs hub));
  Netd.Client.close ep.client

(* ----- federation: home + leaf, late joiner from the leaf ----- *)

let federation_test () =
  let home_metrics = Obs.Metrics.create () in
  let home = mk_hub ~metrics:home_metrics ~hub_id:1 () in
  Fun.protect ~finally:(fun () -> Hub.shutdown home) @@ fun () ->
  let leaf =
    mk_hub ~hub_id:2 ~upstream:("127.0.0.1", Hub.port home) ()
  in
  Fun.protect ~finally:(fun () -> Hub.shutdown leaf) @@ fun () ->
  let hubs = [ home; leaf ] in
  (* the admin joins the home hub, a user joins the leaf *)
  let ep0 = mk_endpoint ~doc:"main" ~port:(Hub.port home) ~site:0 () in
  let ep2 = mk_endpoint ~doc:"main" ~port:(Hub.port leaf) ~site:2 () in
  let eps = [ ep0; ep2 ] in
  require "members joined and the leaf linked up"
    (pump_until hubs eps (fun () ->
         ep0.ctrl <> None && ep2.ctrl <> None && Hub.upstream_connected leaf));
  (* the leaf presents its hosted site at the home hub *)
  Alcotest.(check (list int)) "home sees admin + leaf" [ 0; relay_site + 2 ]
    (Hub.connected_sites home);
  (* edits from both ends of the topology *)
  edit ep2 0 'l';
  require "leaf edit crosses up to the home member"
    (pump_until hubs eps (fun () -> doc_of ep0 = "labc"));
  edit ep0 4 'h';
  let fingerprint hub = Proto.content_fingerprint Proto.char_codec (Hub.controller hub) in
  let ok =
    pump_until hubs eps (fun () ->
        doc_of ep0 = "labch" && doc_of ep2 = "labch"
        && List.for_all settled eps
        && fingerprint home = fingerprint leaf)
  in
  if not ok then
    Printf.printf
      "DIAG ep0=%S ep2=%S settled0=%b settled2=%b home=%S leaf=%S fh=%s fl=%s \
       snaps2=%d msgs2=%d leaf_sites=%s up=%b\n%!"
      (doc_of ep0) (doc_of ep2) (settled ep0) (settled ep2) (hub_doc home)
      (hub_doc leaf) (fingerprint home) (fingerprint leaf) ep2.snapshots
      ep2.got_msgs
      (String.concat "," (List.map string_of_int (Hub.connected_sites leaf)))
      (Hub.upstream_connected leaf);
  require "home edit crosses down, everything settles" ok;
  (* the two hosted replicas sit at different sites, so convergence is
     checked on the site-independent content fingerprint *)
  Alcotest.(check string) "federated replicas converged" (fingerprint home)
    (fingerprint leaf);
  Alcotest.(check string) "home replica content" "labch" (hub_doc home);
  Alcotest.(check string) "leaf replica content" "labch" (hub_doc leaf);
  (* a late joiner attaches to the LEAF and must bootstrap from the
     leaf's snapshot — no round trip to the home hub *)
  let ep1 = mk_endpoint ~doc:"main" ~port:(Hub.port leaf) ~site:1 () in
  let eps = ep1 :: eps in
  require "late joiner boots from the leaf"
    (pump_until hubs eps (fun () -> ep1.ctrl <> None));
  Alcotest.(check string) "late joiner caught up from the leaf snapshot" "labch"
    (doc_of ep1);
  edit ep1 0 'z';
  require "late joiner's edit reaches every replica"
    (pump_until hubs eps (fun () ->
         doc_of ep0 = "zlabch" && doc_of ep2 = "zlabch"
         && List.for_all settled eps
         && fingerprint home = fingerprint leaf));
  (* convergence oracle over the three real member controllers *)
  let report =
    Dce_sim.Convergence.check (List.map (fun ep -> Option.get ep.ctrl) eps)
  in
  if not (Dce_sim.Convergence.ok report) then
    Alcotest.failf "convergence violated: %s"
      (Format.asprintf "%a" Dce_sim.Convergence.pp report);
  (* a 2-node graph has no cycle, so the loop guard never fired *)
  Alcotest.(check int) "no loop drops at the home hub" 0
    (try List.assoc "hub.loop_drops" (Obs.Metrics.counters home_metrics)
     with Not_found -> 0);
  List.iter (fun ep -> Netd.Client.close ep.client) eps

(* ----- upstream: reconnect storm ----- *)

(* A bare-socket stand-in for the home hub: the test accepts the leaf's
   federation link, decodes the frames it sends, and slams the door on a
   script — the [Upstream] state machine on the other end must survive
   the storm without ever duplicating an attach, must buffer (bounded)
   while the link is down, and must come back [Healthy] with an empty
   buffer once a session finally sticks. *)
let upstream_storm_test () =
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.set_nonblock lfd;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 16;
  let port =
    match Unix.getsockname lfd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  Fun.protect ~finally:(fun () ->
      try Unix.close lfd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let config =
    {
      Upstream.default_config with
      Upstream.backoff_base_ms = 1;
      backoff_max_ms = 4;
      max_buffer = 200;
    }
  in
  let up =
    Upstream.create ~config ~seed:7 ~host:"127.0.0.1" ~port ~site:relay_site ()
  in
  Fun.protect ~finally:(fun () -> Upstream.close up) @@ fun () ->
  Upstream.attach up ~doc:"main";
  (* a second attach for the same doc must stay a single attach *)
  Upstream.attach up ~doc:"main";
  let buf = Bytes.create 4096 in
  let accept_session () =
    let rec go n =
      if n > 5_000 then Alcotest.fail "upstream never reconnected";
      ignore (Upstream.step ~timeout_ms:1 up);
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        fd
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> go (n + 1)
    in
    go 0
  in
  (* pump for a fixed window and return every frame the leaf sent *)
  let drain_session fd ~rounds =
    let data = Buffer.create 256 in
    let msgs = ref [] in
    let pos = ref 0 in
    for _ = 1 to rounds do
      ignore (Upstream.step ~timeout_ms:1 up);
      (match Unix.read fd buf 0 (Bytes.length buf) with
       | 0 -> ()
       | k -> Buffer.add_subbytes data buf 0 k
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
         -> ());
      let rec parse () =
        match Codec.unframe_prefix (Buffer.contents data) ~pos:!pos with
        | Ok (payload, next) ->
          pos := next;
          (match Netd.Relay_proto.decode payload with
           | Ok m -> msgs := m :: !msgs
           | Error e -> Alcotest.failf "bad frame from the leaf: %s" e);
          parse ()
        | Error Codec.Truncated -> ()
        | Error (Codec.Corrupt e) -> Alcotest.failf "corrupt frame: %s" e
      in
      parse ()
    done;
    List.rev !msgs
  in
  let count p msgs = List.length (List.filter p msgs) in
  let is_attach = function
    | Netd.Relay_proto.Attach { doc = "main"; _ } -> true
    | _ -> false
  in
  let is_doc_msg = function Netd.Relay_proto.Doc_msg _ -> true | _ -> false in
  for cycle = 1 to 5 do
    let fd = accept_session () in
    let msgs = drain_session fd ~rounds:40 in
    Alcotest.(check int)
      (Printf.sprintf "cycle %d: exactly one attach per session" cycle)
      1 (count is_attach msgs);
    (* slam the door mid-session *)
    Unix.close fd;
    let rec until_down n =
      if n > 5_000 then Alcotest.fail "upstream never noticed the hangup";
      if Upstream.connected up then begin
        ignore (Upstream.step ~timeout_ms:1 up);
        until_down (n + 1)
      end
    in
    until_down 0;
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d: degraded while down" cycle)
      true
      (match Upstream.health up with
       | Upstream.Degraded _ -> true
       | Upstream.Healthy -> false);
    (* local traffic while the link is down buffers, bounded: 10 sends
       of ~27 bytes each against a 200-byte cap must overflow *)
    for i = 1 to 10 do
      Upstream.send up ~doc:"main" ~origin:2 (Printf.sprintf "op-%d-%d" cycle i)
    done;
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d: buffer stays under its bound" cycle)
      true
      (Upstream.buffered_bytes up <= config.Upstream.max_buffer)
  done;
  Alcotest.(check bool) "the overflow was counted, not leaked" true
    (Upstream.buffer_dropped up > 0);
  (* a session that finally sticks: one attach, the backlog flushes
     behind it, and the leaf reports healthy with an empty buffer *)
  let fd = accept_session () in
  let msgs = drain_session fd ~rounds:60 in
  Alcotest.(check int) "sticky session: exactly one attach" 1 (count is_attach msgs);
  Alcotest.(check bool) "the backlog flushed behind the attach" true
    (count is_doc_msg msgs > 0);
  Alcotest.(check int) "no buffered bytes leak across reconnects" 0
    (Upstream.buffered_bytes up);
  Alcotest.(check bool) "healthy again" true (Upstream.health up = Upstream.Healthy);
  Alcotest.(check bool) "connected" true (Upstream.connected up);
  Unix.close fd

(* ----- federation: partition, degraded local progress, heal ----- *)

let json_status = function
  | Obs.Json.Obj fields -> (
    match List.assoc_opt "status" fields with
    | Some (Obs.Json.String s) -> s
    | _ -> "?")
  | _ -> "?"

(* The home hub dies mid-session.  The leaf must report itself degraded
   (a probe on /healthz would turn non-200) while its local members keep
   editing, and a fresh home on the same port — which knows nothing of
   the partition-era edits — must reconverge through the snapshot
   healing path. *)
let degraded_heal_test () =
  let home = mk_hub ~hub_id:1 () in
  let home_port = Hub.port home in
  let leaf = mk_hub ~hub_id:2 ~upstream:("127.0.0.1", home_port) () in
  Fun.protect ~finally:(fun () -> Hub.shutdown leaf) @@ fun () ->
  let ep0 = mk_endpoint ~doc:"main" ~port:home_port ~site:0 () in
  let ep2 = mk_endpoint ~doc:"main" ~port:(Hub.port leaf) ~site:2 () in
  let eps = [ ep0; ep2 ] in
  require "everyone linked"
    (pump_until [ home; leaf ] eps (fun () ->
         ep0.ctrl <> None && ep2.ctrl <> None && Hub.upstream_connected leaf));
  edit ep2 0 'a';
  require "pre-partition convergence"
    (pump_until [ home; leaf ] eps (fun () ->
         doc_of ep0 = "aabc" && doc_of ep2 = "aabc" && List.for_all settled eps));
  Alcotest.(check string) "healthy before the cut" "ok"
    (json_status (Hub.healthz leaf ()));
  (* the partition: the home hub dies; ep0 is deliberately not stepped
     while the home is gone, like a member whose laptop sees the same
     outage *)
  Hub.shutdown home;
  require "leaf notices and degrades"
    (pump_until [ leaf ] [ ep2 ] (fun () ->
         match Hub.upstream_health leaf with
         | Some (Upstream.Degraded _) -> true
         | _ -> false));
  Alcotest.(check string) "healthz degraded during the partition" "degraded"
    (json_status (Hub.healthz leaf ()));
  (* local members keep editing against the degraded leaf *)
  edit ep2 0 'b';
  require "leaf-local progress during the partition"
    (pump_until [ leaf ] [ ep2 ] (fun () -> doc_of ep2 = "baabc"));
  (* heal: a fresh home hub on the same port, which has only the seed
     document — the partition-era history must survive the snapshot
     exchange in both directions *)
  let home2 = mk_hub ~hub_id:1 ~port:home_port () in
  Fun.protect ~finally:(fun () -> Hub.shutdown home2) @@ fun () ->
  let fingerprint hub =
    Proto.content_fingerprint Proto.char_codec (Hub.controller hub)
  in
  let ok =
    pump_until ~max_rounds:20_000 [ home2; leaf ] eps (fun () ->
        Hub.upstream_connected leaf
        && doc_of ep0 = "baabc" && doc_of ep2 = "baabc"
        && List.for_all settled eps
        && fingerprint home2 = fingerprint leaf)
  in
  if not ok then
    Printf.printf
      "DIAG up=%b ep0=%S ep2=%S settled0=%b settled2=%b home2=%S leaf=%S fh=%s \
       fl=%s snaps0=%d snaps2=%d leaf_health=%s\n%!"
      (Hub.upstream_connected leaf)
      (doc_of ep0) (doc_of ep2) (settled ep0) (settled ep2) (hub_doc home2)
      (hub_doc leaf) (fingerprint home2) (fingerprint leaf) ep0.snapshots
      ep2.snapshots
      (match Hub.upstream_health leaf with
       | Some Upstream.Healthy -> "healthy"
       | Some (Upstream.Degraded { reason; _ }) -> "degraded: " ^ reason
       | None -> "none");
  require "leaf relinks and the partition edits reach the new home" ok;
  Alcotest.(check string) "healthz healthy after the heal" "ok"
    (json_status (Hub.healthz leaf ()));
  let report =
    Dce_sim.Convergence.check (List.map (fun ep -> Option.get ep.ctrl) eps)
  in
  if not (Dce_sim.Convergence.ok report) then
    Alcotest.failf "convergence violated after heal: %s"
      (Format.asprintf "%a" Dce_sim.Convergence.pp report);
  List.iter (fun ep -> Netd.Client.close ep.client) eps

(* ----- delta catch-up: resume inside the hosted window ----- *)

let delta_resume_test () =
  let metrics = Obs.Metrics.create () in
  let hub = mk_hub ~metrics () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let port = Hub.port hub in
  let ep0 = mk_endpoint ~doc:"main" ~port ~site:0 () in
  let ep1 = mk_endpoint ~doc:"main" ~port ~site:1 () in
  let eps = [ ep0; ep1 ] in
  require "both joined"
    (pump_until [ hub ] eps (fun () -> List.for_all (fun e -> e.ctrl <> None) eps));
  edit ep0 0 'x';
  edit ep1 3 'y';
  require "both converged"
    (pump_until [ hub ] eps (fun () ->
         doc_of ep0 = doc_of ep1 && List.for_all settled eps));
  (* ep1 goes away holding its state — a laptop lid closing *)
  let parked = Option.get ep1.ctrl in
  Netd.Client.close ep1.client;
  (* the session moves on without it *)
  edit ep0 0 'z';
  require "the survivor settles alone"
    (pump_until [ hub ] [ ep0 ] (fun () -> settled ep0));
  (* resume presenting the parked clock: the hub has never compacted,
     so the state transfer must be the missed suffix, not a snapshot *)
  let resume () = Some (Controller.clock parked, Controller.version parked) in
  let ep1b = mk_endpoint ~doc:"main" ~resume ~port ~site:1 () in
  ep1b.ctrl <- Some parked;
  let eps = [ ep0; ep1b ] in
  require "resumed client catches up via the delta"
    (pump_until [ hub ] eps (fun () ->
         doc_of ep1b = doc_of ep0 && List.for_all settled eps));
  Alcotest.(check int) "the hub answered with a delta" 1
    (try List.assoc "hub.deltas" (Obs.Metrics.counters metrics) with Not_found -> 0);
  Alcotest.(check string) "hub copy agrees" (doc_of ep0) (hub_doc hub);
  List.iter (fun ep -> Netd.Client.close ep.client) eps

(* ----- delta catch-up: resume behind the compaction cut ----- *)

let snapshot_fallback_test () =
  let metrics = Obs.Metrics.create () in
  (* aggressive stability cadence so the hub compacts within the test *)
  let hub = mk_hub ~metrics ~beacon_ms:5 ~compact_ms:5 () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let port = Hub.port hub in
  (* every policy user participates and beacons fast, so the hub's
     stable frontier can cover the whole group's edits *)
  let ep0 = mk_endpoint ~doc:"main" ~heartbeat_ms:5 ~port ~site:0 () in
  let ep1 = mk_endpoint ~doc:"main" ~heartbeat_ms:5 ~port ~site:1 () in
  let ep2 = mk_endpoint ~doc:"main" ~heartbeat_ms:5 ~port ~site:2 () in
  let eps = [ ep0; ep1; ep2 ] in
  require "all joined"
    (pump_until [ hub ] eps (fun () -> List.for_all (fun e -> e.ctrl <> None) eps));
  edit ep1 0 'a';
  require "first edit converges"
    (pump_until [ hub ] eps (fun () ->
         List.for_all (fun e -> doc_of e = "aabc") eps && List.for_all settled eps));
  (* the resurrection point: ep1's state before the next round of edits *)
  let stale = Option.get ep1.ctrl in
  edit ep0 0 'b';
  edit ep2 0 'c';
  (* keep everyone — ep1 included — live and beaconing until the hub's
     compaction cut moves past the stale clock *)
  let cut_past_stale () =
    not
      (Dce_ot.Vclock.leq
         (Controller.compacted_upto (Hub.controller hub))
         (Controller.clock stale))
    && Dce_ot.Vclock.leq (Controller.clock stale)
         (Controller.compacted_upto (Hub.controller hub))
  in
  require "hub compacts past the stale clock" (pump_until [ hub ] eps cut_past_stale);
  let converged = doc_of ep0 in
  Netd.Client.close ep1.client;
  (* resurrect site 1 from the stale state: the hosted log no longer
     covers its clock, so the hub must fall back to a full snapshot *)
  let resume () = Some (Controller.clock stale, Controller.version stale) in
  let ep1b = mk_endpoint ~doc:"main" ~heartbeat_ms:5 ~resume ~port ~site:1 () in
  ep1b.ctrl <- Some stale;
  let eps = [ ep0; ep1b; ep2 ] in
  require "stale resume falls back to a snapshot and converges"
    (pump_until [ hub ] eps (fun () ->
         doc_of ep1b = converged && doc_of ep0 = converged
         && List.for_all settled eps));
  Alcotest.(check int) "no delta was served" 0
    (try List.assoc "hub.deltas" (Obs.Metrics.counters metrics) with Not_found -> 0);
  Alcotest.(check int) "the resurrected site resynced from one snapshot" 1
    ep1b.snapshots;
  List.iter (fun ep -> Netd.Client.close ep.client) eps

let () =
  Alcotest.run "dce_hub"
    [
      ("doc_name", doc_name_tests);
      ("evloop", evloop_tests);
      ( "loopback",
        [
          Alcotest.test_case "two docs on one hub never leak frames" `Quick
            isolation_test;
          Alcotest.test_case "one socket multiplexes attach/detach over two docs"
            `Quick multiplex_test;
          Alcotest.test_case "v1 and v2 clients interoperate on the default doc"
            `Quick interop_test;
          Alcotest.test_case "hostile attach frames drop the peer, not the hub"
            `Quick hostile_attach_test;
        ] );
      ( "federation",
        [
          Alcotest.test_case
            "home + leaf converge; late joiner snapshots from the leaf" `Quick
            federation_test;
          Alcotest.test_case
            "upstream survives a reconnect storm: one attach, no leaked bytes"
            `Quick upstream_storm_test;
          Alcotest.test_case
            "partition degrades the leaf; heal reconverges via snapshots" `Quick
            degraded_heal_test;
        ] );
      ( "stability",
        [
          Alcotest.test_case "resume inside the window is served a delta" `Quick
            delta_resume_test;
          Alcotest.test_case
            "resume behind the compaction cut falls back to a snapshot" `Quick
            snapshot_fallback_test;
        ] );
    ]
