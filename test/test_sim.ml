(* Tests for the simulator, and the repository's strongest evidence: the
   randomized end-to-end security property — any workload, any delivery
   schedule, the session converges with a uniformly enforced policy. *)

open Dce_sim

(* ----- Rng ----- *)

let rng_tests =
  [
    Alcotest.test_case "deterministic across runs" `Quick (fun () ->
        let take n r =
          let rec go acc r n =
            if n = 0 then List.rev acc
            else
              let x, r = Rng.int r 1000 in
              go (x :: acc) r (n - 1)
          in
          go [] r n
        in
        Alcotest.(check (list int))
          "same seed same stream"
          (take 20 (Rng.of_int 42))
          (take 20 (Rng.of_int 42));
        Alcotest.(check bool) "different seeds differ" true
          (take 20 (Rng.of_int 42) <> take 20 (Rng.of_int 43)));
    Alcotest.test_case "int respects bound" `Quick (fun () ->
        let r = ref (Rng.of_int 7) in
        for _ = 1 to 1000 do
          let x, r' = Rng.int !r 13 in
          r := r';
          if x < 0 || x >= 13 then Alcotest.fail "out of bounds"
        done);
    Alcotest.test_case "in_range inclusive" `Quick (fun () ->
        let seen = Array.make 3 false in
        let r = ref (Rng.of_int 1) in
        for _ = 1 to 200 do
          let x, r' = Rng.in_range !r 5 7 in
          r := r';
          seen.(x - 5) <- true
        done;
        Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen));
    Alcotest.test_case "weighted zero-weight never picked" `Quick (fun () ->
        let r = ref (Rng.of_int 5) in
        for _ = 1 to 200 do
          let v, r' = Rng.weighted !r [ (0, `Never); (5, `Often) ] in
          r := r';
          if v = `Never then Alcotest.fail "picked zero weight"
        done);
    Alcotest.test_case "split decorrelates" `Quick (fun () ->
        let a, b = Rng.split (Rng.of_int 9) in
        let xa, _ = Rng.int a 1_000_000 and xb, _ = Rng.int b 1_000_000 in
        Alcotest.(check bool) "distinct streams" true (xa <> xb));
  ]

(* ----- Net ----- *)

let net_tests =
  [
    Alcotest.test_case "broadcast reaches everyone but the source" `Quick (fun () ->
        let n = Net.create ~latency:(Net.Fixed 10) ~sites:[ 0; 1; 2 ] () in
        let n, _ = Net.broadcast n (Rng.of_int 1) ~now:0 ~src:1 "hello" in
        Alcotest.(check int) "two copies" 2 (Net.in_flight n);
        let rec drain acc n =
          match Net.pop n with
          | None -> List.rev acc
          | Some ((t, dst, _), n) -> drain ((t, dst) :: acc) n
        in
        Alcotest.(check (list (pair int int))) "deliveries" [ (10, 0); (10, 2) ] (drain [] n));
    Alcotest.test_case "pop yields time order" `Quick (fun () ->
        let n = Net.create ~latency:(Net.Uniform (1, 100)) ~sites:[ 0; 1 ] () in
        let rng = Rng.of_int 3 in
        let n, rng = Net.send n rng ~now:0 ~src:0 ~dst:1 "a" in
        let n, rng = Net.send n rng ~now:0 ~src:0 ~dst:1 "b" in
        let n, _ = Net.send n rng ~now:0 ~src:0 ~dst:1 "c" in
        let rec drain acc n =
          match Net.pop n with
          | None -> List.rev acc
          | Some ((t, _, _), n) -> drain (t :: acc) n
        in
        let times = drain [] n in
        Alcotest.(check (list int)) "sorted" (List.sort compare times) times);
    Alcotest.test_case "fifo links never reorder" `Quick (fun () ->
        let n = Net.create ~fifo:true ~latency:(Net.Uniform (1, 100)) ~sites:[ 0; 1 ] () in
        let rng = ref (Rng.of_int 11) in
        let net = ref n in
        for i = 1 to 20 do
          let n', r' = Net.send !net !rng ~now:i ~src:0 ~dst:1 i in
          net := n';
          rng := r'
        done;
        let rec drain acc n =
          match Net.pop n with
          | None -> List.rev acc
          | Some ((_, _, m), n) -> drain (m :: acc) n
        in
        let msgs = drain [] !net in
        Alcotest.(check (list int)) "in order" (List.init 20 (fun i -> i + 1)) msgs);
    Alcotest.test_case "partition heal floods everything at now" `Quick (fun () ->
        let n = Net.create ~latency:(Net.Fixed 1000) ~sites:[ 0; 1 ] () in
        let n, _ = Net.send n (Rng.of_int 1) ~now:0 ~src:0 ~dst:1 "m" in
        let n = Net.partition_heal n ~now:5 in
        (match Net.pop n with
         | Some ((5, 1, "m"), _) -> ()
         | _ -> Alcotest.fail "expected immediate delivery"));
  ]

(* ----- Runner + Convergence: the end-to-end security property ----- *)

let quiescent_and_secure ?policy profile seed =
  let r = Runner.run ?policy profile ~seed in
  let report = Convergence.check r.Runner.controllers in
  if not (Convergence.ok report) then
    Alcotest.failf "seed %d violates the oracles:@.%a@.diagnosis: %a@.stats:@.%a" seed
      Convergence.pp report Convergence.pp_diff r.Runner.controllers Runner.pp_stats
      r.Runner.stats

let runner_tests =
  [
    Alcotest.test_case "quiet session converges (no admin)" `Quick (fun () ->
        for seed = 0 to 19 do
          quiescent_and_secure Workload.default seed
        done);
    Alcotest.test_case "sessions with an active administrator stay secure" `Slow
      (fun () ->
        for seed = 0 to 99 do
          quiescent_and_secure Workload.with_admin seed
        done);
    Alcotest.test_case "high latency variance (heavy reordering)" `Slow (fun () ->
        let p =
          { Workload.with_admin with latency = Net.Uniform (1, 500); users = 4 }
        in
        for seed = 100 to 149 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "fifo links also converge" `Quick (fun () ->
        let p = { Workload.with_admin with fifo = true } in
        for seed = 0 to 19 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "insert-only workload (paper's 100% INS)" `Quick (fun () ->
        let p = { Workload.with_admin with op_mix = Workload.mix 1 0 0 } in
        for seed = 0 to 19 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "delete-heavy workload" `Quick (fun () ->
        let p = { Workload.with_admin with op_mix = Workload.mix 1 5 1 } in
        for seed = 0 to 19 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "sessions with log compaction under fire stay secure" `Slow
      (fun () ->
        let p = { Workload.with_admin with compact_every = Some 5 } in
        for seed = 200 to 279 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "compaction equivalence: same final documents" `Quick (fun () ->
        (* the same seed with and without compaction must produce the
           same final visible documents *)
        let base = Workload.with_admin in
        let compacted = { base with compact_every = Some 3 } in
        for seed = 300 to 319 do
          let plain = Runner.run base ~seed in
          let gc = Runner.run compacted ~seed in
          List.iter2
            (fun a b ->
              Alcotest.(check string)
                (Printf.sprintf "seed %d" seed)
                (Dce_ot.Tdoc.visible_string (Dce_core.Controller.document a))
                (Dce_ot.Tdoc.visible_string (Dce_core.Controller.document b)))
            plain.Runner.controllers gc.Runner.controllers;
          (* and compaction must actually bite on at least some runs *)
          ignore
            (List.exists
               (fun c ->
                 Dce_ot.Oplog.live_length (Dce_core.Controller.oplog c)
                 < Dce_ot.Oplog.length (Dce_core.Controller.oplog c))
               gc.Runner.controllers)
        done);
    Alcotest.test_case "compaction actually shrinks logs" `Quick (fun () ->
        let p =
          { Workload.with_admin with compact_every = Some 3; duration = 3_000 }
        in
        let r = Runner.run p ~seed:77 in
        let total_live =
          List.fold_left
            (fun acc c -> acc + Dce_ot.Oplog.live_length (Dce_core.Controller.oplog c))
            0 r.Runner.controllers
        in
        let total_requests = r.Runner.stats.Runner.edits_generated in
        Alcotest.(check bool)
          (Printf.sprintf "live %d < generated %d x sites" total_live total_requests)
          true
          (total_live < total_requests * List.length r.Runner.controllers));
    Alcotest.test_case "sessions with administrative handoff stay secure" `Slow
      (fun () ->
        let p = { Workload.with_admin with handoff_prob = 0.3 } in
        for seed = 400 to 479 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "handoff + compaction + heavy reordering" `Slow (fun () ->
        let p =
          {
            Workload.with_admin with
            handoff_prob = 0.25;
            compact_every = Some 4;
            latency = Net.Uniform (1, 400);
            users = 4;
          }
        in
        for seed = 500 to 559 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "partition-like extreme delays still converge" `Quick (fun () ->
        (* every message is delayed far beyond the editing horizon, so the
           whole session's traffic floods in at once, maximally stale *)
        let p =
          {
            Workload.with_admin with
            latency = Net.Uniform (5_000, 9_000);
            duration = 1_000;
          }
        in
        for seed = 600 to 629 do
          quiescent_and_secure p seed
        done);
    Alcotest.test_case "duplicated traffic is harmless" `Quick (fun () ->
        (* replay every message twice through a hand-driven session *)
        let open Dce_core in
        let policy =
          Policy.make ~users:[ 0; 1; 2 ]
            [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
        in
        let mk site =
          Controller.create ~eq:Char.equal ~site ~admin:0
            ~policy (Dce_ot.Tdoc.of_string "base")
        in
        let cs = ref [ (0, mk 0); (1, mk 1); (2, mk 2) ] in
        let set u c = cs := List.map (fun (v, c') -> if v = u then (v, c) else (v, c')) !cs in
        let rec deliver_twice src m =
          List.iter
            (fun (u, _) ->
              if u <> src then begin
                let c, out1 = Controller.receive (List.assoc u !cs) m in
                set u c;
                let c, out2 = Controller.receive (List.assoc u !cs) m in
                set u c;
                Alcotest.(check int) "duplicate emitted nothing" 0 (List.length out2);
                List.iter (deliver_twice u) out1
              end)
            !cs
        in
        let gen u op =
          match Controller.generate (List.assoc u !cs) op with
          | c, Controller.Accepted m ->
            set u c;
            deliver_twice u m
          | _, Controller.Denied r -> Alcotest.fail r
        in
        gen 1 (Dce_ot.Op.ins 0 'x');
        gen 2 (Dce_ot.Op.ins 5 'y');
        (match
           Controller.admin_update (List.assoc 0 !cs) (Admin_op.Add_user 9)
         with
         | Ok (c, m) ->
           set 0 c;
           deliver_twice 0 m;
           deliver_twice 0 m
         | Error e -> Alcotest.fail e);
        let docs = List.map (fun (_, c) -> Controller.document c) !cs in
        Alcotest.(check string) "content" "xbasey"
          (Dce_ot.Tdoc.visible_string (List.hd docs));
        Alcotest.(check bool) "equal" true
          (List.for_all
             (Dce_ot.Tdoc.equal_model Char.equal (List.hd docs))
             docs));
    Alcotest.test_case "restrictive administrator actually invalidates work" `Quick
      (fun () ->
        (* an aggressive revoker on a busy session must invalidate some
           requests across seeds, or the test harness is vacuous *)
        let p =
          {
            Workload.with_admin with
            admin_interval = Some (50, 150);
            revoke_bias = 0.8;
            duration = 3_000;
          }
        in
        let total_invalidated = ref 0 in
        for seed = 0 to 9 do
          let r = Runner.run p ~seed in
          total_invalidated := !total_invalidated + r.Runner.stats.Runner.invalidated
        done;
        Alcotest.(check bool) "some requests were invalidated" true
          (!total_invalidated > 0));
    Alcotest.test_case "stats are coherent" `Quick (fun () ->
        let r = Runner.run Workload.with_admin ~seed:7 in
        let s = r.Runner.stats in
        Alcotest.(check bool) "edits happened" true (s.Runner.edits_generated > 0);
        Alcotest.(check bool) "admin acted" true (s.Runner.admin_requests > 0);
        Alcotest.(check bool) "flags partition requests" true
          (s.Runner.invalidated + s.Runner.validated
           = List.length
               (Dce_ot.Oplog.requests
                  (Dce_core.Controller.oplog (List.hd r.Runner.controllers)))));
    Alcotest.test_case "a crashed and restarted site still converges" `Quick
      (fun () ->
        let p = { Workload.with_admin with duration = 600 } in
        for seed = 0 to 9 do
          let crashes =
            [ { Runner.site = 2; at = 150; restart_at = 350 } ]
          in
          let r = Runner.run ~crashes p ~seed in
          Alcotest.(check int)
            (Printf.sprintf "seed %d: injection fired" seed)
            1 r.Runner.stats.Runner.crashes;
          let report = Convergence.check r.Runner.controllers in
          if not (Convergence.ok report) then
            Alcotest.failf "seed %d diverged after crash/restart:@.%a@.%a" seed
              Convergence.pp report Convergence.pp_diff r.Runner.controllers
        done);
    Alcotest.test_case "even the administrator may crash" `Quick (fun () ->
        let p = { Workload.with_admin with duration = 800 } in
        for seed = 20 to 27 do
          let crashes =
            [ { Runner.site = 0; at = 200; restart_at = 400 };
              { Runner.site = 1; at = 300; restart_at = 500 }
            ]
          in
          let r = Runner.run ~crashes p ~seed in
          Alcotest.(check int)
            (Printf.sprintf "seed %d: both injections fired" seed)
            2 r.Runner.stats.Runner.crashes;
          let report = Convergence.check r.Runner.controllers in
          if not (Convergence.ok report) then
            Alcotest.failf "seed %d diverged after admin crash:@.%a@.%a" seed
              Convergence.pp report Convergence.pp_diff r.Runner.controllers
        done);
  ]

(* ----- Convergence: degenerate groups and diagnosis ----- *)

let convergence_tests =
  let mk site text =
    Dce_core.Controller.create ~eq:Char.equal ~site ~admin:0
      ~policy:
        (Dce_core.Policy.make ~users:[ 0; 1 ]
           [ Dce_core.Auth.grant [ Dce_core.Subject.Any ] [ Dce_core.Docobj.Whole ]
               Dce_core.Right.all ])
      (Dce_ot.Tdoc.of_string text)
  in
  [
    Alcotest.test_case "empty group is trivially convergent" `Quick (fun () ->
        let report = Convergence.check [] in
        Alcotest.(check bool) "ok" true (Convergence.ok report);
        Alcotest.(check bool) "no diagnosis" true (Convergence.explain [] = None));
    Alcotest.test_case "single site is trivially convergent" `Quick (fun () ->
        let c = mk 0 "abc" in
        let report = Convergence.check [ c ] in
        Alcotest.(check bool) "ok" true (Convergence.ok report);
        Alcotest.(check bool) "no diagnosis" true (Convergence.explain [ c ] = None));
    Alcotest.test_case "identical sites: all oracles hold, no diagnosis" `Quick
      (fun () ->
        let cs = [ mk 0 "abc"; mk 1 "abc" ] in
        Alcotest.(check bool) "ok" true (Convergence.ok (Convergence.check cs));
        Alcotest.(check bool) "no diagnosis" true (Convergence.explain cs = None));
    Alcotest.test_case "diverged documents are named, with the differing cell" `Quick
      (fun () ->
        let cs = [ mk 0 "abc"; mk 1 "axc" ] in
        let report = Convergence.check cs in
        Alcotest.(check bool) "documents disagree" false (Convergence.ok report);
        match Convergence.explain cs with
        | None -> Alcotest.fail "expected a diagnosis"
        | Some d ->
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            m = 0 || go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "names the site pair (%s)" d)
            true
            (contains d "sites 0 and 1");
          Alcotest.(check bool)
            (Printf.sprintf "names the differing fragment (%s)" d)
            true
            (contains d "documents differ"));
  ]

let () =
  Alcotest.run "dce_sim"
    [ ("rng", rng_tests);
      ("net", net_tests);
      ("runner", runner_tests);
      ("convergence", convergence_tests)
    ]
