(* Array-based reference tombstone document: the pre-stat-tree
   representation (flat ['e cell array], O(n) apply and coordinate
   scans), kept in the test tree as a differential-testing oracle for
   [Dce_ot.Tdoc] and as the before-side baseline of the core bench.
   Operates on the public [Tdoc.cell] records so states can be compared
   and converted directly. *)

open Dce_ot

type 'e t = 'e Tdoc.cell array

let fresh_cell elt = { Tdoc.elt; writes = []; hidden = 0 }

let of_list l = Array.of_list (List.map fresh_cell l)

let of_string s = of_list (List.init (String.length s) (String.get s))

let of_cells cells = Array.of_list cells

let model_length = Array.length

let content = Tdoc.content

let history (c : _ Tdoc.cell) =
  c.Tdoc.elt :: List.map (fun w -> w.Tdoc.value) c.Tdoc.writes

let visible_length d =
  Array.fold_left (fun n (c : _ Tdoc.cell) -> if c.Tdoc.hidden = 0 then n + 1 else n) 0 d

let cell (d : 'e t) i = d.(i)

let visible_list d =
  Array.fold_right
    (fun (c : _ Tdoc.cell) acc -> if c.Tdoc.hidden = 0 then content c :: acc else acc)
    d []

let visible_string d =
  let b = Buffer.create (Array.length d) in
  Array.iter
    (fun (c : _ Tdoc.cell) -> if c.Tdoc.hidden = 0 then Buffer.add_char b (content c))
    d;
  Buffer.contents b

let model_list = Array.to_list

let to_tdoc d = Tdoc.of_cells (model_list d)

let of_tdoc d = of_cells (Tdoc.model_list d)

let model_of_visible (d : 'e t) v =
  if v < 0 then invalid_arg "Tdoc_ref.model_of_visible: negative position";
  let n = Array.length d in
  let rec go i seen =
    if seen = v && (i >= n || d.(i).Tdoc.hidden = 0) then i
    else if i >= n then invalid_arg "Tdoc_ref.model_of_visible: beyond visible length"
    else go (i + 1) (if d.(i).Tdoc.hidden = 0 then seen + 1 else seen)
  in
  go 0 0

let visible_of_model (d : 'e t) m =
  if m < 0 then invalid_arg "Tdoc_ref.visible_of_model: negative position";
  let m = min m (Array.length d) in
  let count = ref 0 in
  for i = 0 to m - 1 do
    if d.(i).Tdoc.hidden = 0 then incr count
  done;
  !count

let conflict fmt = Format.kasprintf (fun s -> raise (Document.Edit_conflict s)) fmt

let check_history ~eq ~what ~pos c expected =
  if not (List.exists (eq expected) (history c)) then
    conflict "%s at model position %d: element never present in the cell" what pos

let apply ?(eq = ( = )) (d : 'e t) op =
  let n = Array.length d in
  let in_range what pos =
    if pos < 0 || pos >= n then
      invalid_arg (Printf.sprintf "Tdoc_ref.apply: %s position %d out of range" what pos)
  in
  let update_cell pos f =
    let d' = Array.copy d in
    d'.(pos) <- f d.(pos);
    d'
  in
  match op with
  | Op.Nop -> d
  | Op.Ins { pos; elt; _ } ->
    if pos < 0 || pos > n then invalid_arg "Tdoc_ref.apply: Ins position out of range";
    Array.init (n + 1) (fun i ->
        if i < pos then d.(i) else if i = pos then fresh_cell elt else d.(i - 1))
  | Op.Del { pos; elt } ->
    in_range "Del" pos;
    check_history ~eq ~what:"Del" ~pos d.(pos) elt;
    update_cell pos (fun c -> { c with Tdoc.hidden = c.Tdoc.hidden + 1 })
  | Op.Undel { pos; elt } ->
    in_range "Undel" pos;
    check_history ~eq ~what:"Undel" ~pos d.(pos) elt;
    if d.(pos).Tdoc.hidden = 0 then invalid_arg "Tdoc_ref.apply: Undel of a visible cell";
    update_cell pos (fun c -> { c with Tdoc.hidden = c.Tdoc.hidden - 1 })
  | Op.Up { pos; before; after; tag } ->
    in_range "Up" pos;
    check_history ~eq ~what:"Up" ~pos d.(pos) before;
    if
      List.exists (fun w -> Op.compare_tag w.Tdoc.wtag tag = 0) d.(pos).Tdoc.writes
    then conflict "Up at model position %d: duplicate write tag" pos;
    update_cell pos (fun c ->
        {
          c with
          Tdoc.writes =
            { Tdoc.wtag = tag; value = after; retracted = 0 } :: c.Tdoc.writes;
        })
  | Op.Unup { pos; tag; _ } ->
    in_range "Unup" pos;
    if
      not
        (List.exists (fun w -> Op.compare_tag w.Tdoc.wtag tag = 0) d.(pos).Tdoc.writes)
    then conflict "Unup at model position %d: unknown write tag" pos;
    update_cell pos (fun c ->
        {
          c with
          Tdoc.writes =
            List.map
              (fun w ->
                if Op.compare_tag w.Tdoc.wtag tag = 0 then
                  { w with Tdoc.retracted = w.Tdoc.retracted + 1 }
                else w)
              c.Tdoc.writes;
        })

let apply_all ?eq d ops = List.fold_left (fun d o -> apply ?eq d o) d ops

let ins_visible ?pr d v elt = Op.ins ?pr (model_of_visible d v) elt

let visible_cell_pos (d : 'e t) v =
  let m = model_of_visible d v in
  if m >= Array.length d || d.(m).Tdoc.hidden <> 0 then
    invalid_arg "Tdoc_ref: no visible cell at this position";
  m

let del_visible (d : 'e t) v =
  let m = visible_cell_pos d v in
  Op.del m (content d.(m))

let up_visible ?tag (d : 'e t) v after =
  let m = visible_cell_pos d v in
  Op.up ?tag m (content d.(m)) after
