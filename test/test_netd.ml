(* Tests for the TCP transport: incremental frame splitting (fed one
   byte at a time, against hostile corruption), backoff scheduling, the
   hub envelope, connection backpressure over a real socketpair, and
   a full loopback session — hub plus three endpoints over real TCP,
   with a late joiner and a kicked-and-reconnecting client — checked
   against the same convergence oracle the simulator uses, and against
   an in-process replay of the same scenario. *)

open Dce_ot
open Dce_core
open Dce_netd
module Hub = Dce_hub.Hub
module Codec = Dce_wire.Codec
module Proto = Dce_wire.Proto
module Obs = Dce_obs
open Helpers

(* ----- Codec.unframe_prefix: truncated vs corrupt ----- *)

let prefix_tests =
  [
    qtest "every strict prefix of a frame is Truncated, never Corrupt" ~count:200
      QCheck2.Gen.(string_size (int_range 0 200))
      (Printf.sprintf "%S")
      (fun payload ->
        let framed = Codec.frame payload in
        let whole =
          Codec.unframe_prefix framed ~pos:0 = Ok (payload, String.length framed)
        in
        whole
        && List.for_all
             (fun i ->
               Codec.unframe_prefix (String.sub framed 0 i) ~pos:0
               = Error Codec.Truncated)
             (List.init (String.length framed) Fun.id));
    Alcotest.test_case "bad magic is Corrupt immediately" `Quick (fun () ->
        (match Codec.unframe_prefix "XCE1whatever" ~pos:0 with
         | Error (Codec.Corrupt _) -> ()
         | _ -> Alcotest.fail "expected Corrupt");
        (* even a 1-byte prefix that can never become the magic *)
        match Codec.unframe_prefix "Q" ~pos:0 with
        | Error (Codec.Corrupt _) -> ()
        | _ -> Alcotest.fail "expected Corrupt on wrong first byte");
    Alcotest.test_case "oversized declared payload is Corrupt before buffering" `Quick
      (fun () ->
        let framed = Codec.frame (String.make 100 'a') in
        match Codec.unframe_prefix ~max_payload:10 framed ~pos:0 with
        | Error (Codec.Corrupt _) -> ()
        | _ -> Alcotest.fail "expected Corrupt");
    Alcotest.test_case "frames decode mid-string at pos" `Quick (fun () ->
        let framed = Codec.frame "hello" in
        let s = "xy" ^ framed ^ "rest" in
        match Codec.unframe_prefix s ~pos:2 with
        | Ok ("hello", n) ->
          Alcotest.(check int) "consumed" (2 + String.length framed) n
        | _ -> Alcotest.fail "expected payload at offset");
  ]

(* ----- splitter ----- *)

let random_payloads rng n =
  List.init n (fun _ ->
      let len = QCheck2.Gen.generate1 ~rand:rng QCheck2.Gen.(int_range 0 300) in
      QCheck2.Gen.generate1 ~rand:rng QCheck2.Gen.(string_size (return len)))

let feed_byte_at_a_time sp stream =
  let got = ref [] in
  let error = ref None in
  String.iter
    (fun c ->
      Splitter.feed_string sp (String.make 1 c);
      let rec drain () =
        if !error = None then
          match Splitter.next sp with
          | Ok None -> ()
          | Ok (Some p) ->
            got := p :: !got;
            drain ()
          | Error e -> error := Some e
      in
      drain ())
    stream;
  (List.rev !got, !error)

let splitter_tests =
  [
    qtest "byte-at-a-time splitting yields exactly unframe's payloads" ~count:60
      QCheck2.Gen.(int_range 1 12)
      string_of_int
      (fun n ->
        let rng = Random.State.make [| n; 77 |] in
        let payloads = random_payloads rng n in
        let stream = String.concat "" (List.map Codec.frame payloads) in
        (* the oracle: each whole frame through the one-shot decoder *)
        List.iter
          (fun p -> assert (Codec.unframe (Codec.frame p) = Ok p))
          payloads;
        let got, error = feed_byte_at_a_time (Splitter.create ()) stream in
        error = None && got = payloads);
    qtest "single corrupted byte: no wrong payload ever comes out" ~count:120
      QCheck2.Gen.(pair (int_range 1 8) (int_range 0 10_000))
      (fun (n, k) -> Printf.sprintf "n=%d k=%d" n k)
      (fun (n, k) ->
        let rng = Random.State.make [| n; k; 13 |] in
        let payloads = random_payloads rng n in
        let stream = String.concat "" (List.map Codec.frame payloads) in
        let pos = k mod String.length stream in
        let b = Bytes.of_string stream in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
        let got, error = feed_byte_at_a_time (Splitter.create ()) (Bytes.to_string b) in
        (* connection-drop semantics: everything delivered must be an
           honest prefix, and the stream must not have yielded all N
           payloads as if nothing happened (either the splitter flagged
           corruption, or it is stalled waiting for bytes that a real
           connection would never complete) *)
        let rec is_prefix xs ys =
          match (xs, ys) with
          | [], _ -> true
          | x :: xs, y :: ys -> x = y && is_prefix xs ys
          | _ :: _, [] -> false
        in
        is_prefix got payloads
        && (error <> None || List.length got < List.length payloads));
    Alcotest.test_case "corruption is sticky: honest frames after it are refused" `Quick
      (fun () ->
        let sp = Splitter.create () in
        Splitter.feed_string sp "NOT A FRAME";
        (match Splitter.next sp with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected corrupt");
        Splitter.feed_string sp (Codec.frame "honest");
        match Splitter.next sp with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "splitter must stay dead after corruption");
    Alcotest.test_case "zero-length payloads split correctly" `Quick (fun () ->
        let sp = Splitter.create () in
        Splitter.feed_string sp (Codec.frame "" ^ Codec.frame "" ^ Codec.frame "x");
        let rec drain acc =
          match Splitter.next sp with
          | Ok (Some p) -> drain (p :: acc)
          | Ok None -> List.rev acc
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check (list string)) "payloads" [ ""; ""; "x" ] (drain []));
    Alcotest.test_case "oversized frame is refused before its payload arrives" `Quick
      (fun () ->
        let sp = Splitter.create ~max_payload:16 () in
        let framed = Codec.frame (String.make 1000 'z') in
        (* header only — the declared length alone must kill it *)
        Splitter.feed_string sp (String.sub framed 0 12);
        match Splitter.next sp with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected refusal from the declared length");
  ]

(* ----- backoff ----- *)

let backoff_tests =
  [
    Alcotest.test_case "delays grow geometrically, jittered, capped" `Quick (fun () ->
        let b = Backoff.create ~base_ms:100 ~max_ms:2000 ~seed:42 () in
        let delays = List.init 10 (fun _ -> Backoff.next b) in
        List.iteri
          (fun i d ->
            let cap = min 2000 (100 * (1 lsl i)) in
            Alcotest.(check bool)
              (Printf.sprintf "attempt %d in [cap/2,cap]" i)
              true
              (d >= cap / 2 && d <= cap))
          delays;
        Backoff.reset b;
        let d = Backoff.next b in
        Alcotest.(check bool) "reset back to base" true (d >= 50 && d <= 100));
    Alcotest.test_case "seeded backoff is deterministic" `Quick (fun () ->
        let mk () =
          let b = Backoff.create ~base_ms:100 ~max_ms:2000 ~seed:7 () in
          List.init 6 (fun _ -> Backoff.next b)
        in
        Alcotest.(check (list int)) "same draws" (mk ()) (mk ()));
  ]

(* ----- relay envelope ----- *)

let envelope_tests =
  [
    Alcotest.test_case "envelope roundtrips" `Quick (fun () ->
        List.iter
          (fun m ->
            match Relay_proto.decode (Relay_proto.encode m) with
            | Ok m' -> Alcotest.(check bool) (Relay_proto.label m) true (m = m')
            | Error e -> Alcotest.fail e)
          [
            Relay_proto.Hello { site = 3 };
            Relay_proto.Welcome { relay_site = 1_000_000; heartbeat_ms = 5000 };
            Relay_proto.Snapshot "blob\x00\xff";
            Relay_proto.Msg "";
            Relay_proto.Ping;
            Relay_proto.Pong;
            Relay_proto.Bye "reason";
          ]);
    qtest "hostile envelope bytes never raise" ~count:500
      QCheck2.Gen.(string_size (int_range 0 40))
      (Printf.sprintf "%S")
      (fun s ->
        match Relay_proto.decode s with Ok _ -> true | Error _ -> true);
  ]

(* ----- connection backpressure over a socketpair ----- *)

let conn_tests =
  [
    Alcotest.test_case "outbox overflow disconnects instead of buffering forever"
      `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let tele = Tele.make () in
        let conn = Conn.create ~max_outbox:4096 ~tele ~peer:"test" a in
        (* nobody reads [b]; the kernel buffer plus our outbox bound
           must eventually trip the overflow policy *)
        let payload = String.make 1024 'q' in
        let rec spam i =
          if i > 10_000 then ()
          else if Conn.alive conn then begin
            Conn.send conn payload;
            Conn.handle_writable conn;
            spam (i + 1)
          end
        in
        spam 0;
        (match Conn.closed_reason conn with
         | Some Conn.Overflow -> ()
         | r ->
           Alcotest.failf "expected Overflow, got %s"
             (match r with None -> "alive" | Some r -> Conn.reason_string r));
        Conn.shutdown conn;
        Unix.close b);
    Alcotest.test_case "partial writes resume cleanly" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let tele = Tele.make () in
        let sender = Conn.create ~max_outbox:(32 * 1024 * 1024) ~tele ~peer:"tx" a in
        let receiver = Conn.create ~tele ~peer:"rx" b in
        let payload = String.make 300_000 'p' in
        Conn.send sender payload;
        let got = ref [] in
        let rounds = ref 0 in
        while !got = [] && !rounds < 10_000 do
          incr rounds;
          Conn.handle_writable sender;
          got := Conn.handle_readable receiver
        done;
        Alcotest.(check bool) "payload intact" true (!got = [ payload ]);
        Conn.shutdown sender;
        Conn.shutdown receiver);
    Alcotest.test_case "peer slamming the connection shut mid-flush is Eof" `Quick
      (fun () ->
        (* without this the kernel delivers SIGPIPE and kills the
           process before EPIPE can ever surface — the daemons install
           the same handler at startup *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let tele = Tele.make () in
        let conn = Conn.create ~max_outbox:(32 * 1024 * 1024) ~tele ~peer:"slam" a in
        Unix.close b;
        let payload = String.make 65_536 'x' in
        let rounds = ref 0 in
        while Conn.alive conn && !rounds < 1_000 do
          incr rounds;
          Conn.send conn payload;
          Conn.handle_writable conn
        done;
        (match Conn.closed_reason conn with
         | Some Conn.Eof -> ()
         | Some r -> Alcotest.failf "expected Eof, got %s" (Conn.reason_string r)
         | None -> Alcotest.fail "connection survived writing into a closed peer");
        Conn.shutdown conn);
    Alcotest.test_case "idle timers run on the injected clock" `Quick (fun () ->
        (* the fake source starts slightly ahead of the real clock (the
           monotone clamp would otherwise freeze it) and is advanced by
           hand — no sleeping *)
        let base = Unix.gettimeofday () +. 0.05 in
        let now = ref base in
        Obs.Clock.set_source (Some (fun () -> !now));
        Fun.protect ~finally:(fun () -> Obs.Clock.set_source None) @@ fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let tele = Tele.make () in
        let sender = Conn.create ~tele ~peer:"tx" a in
        let receiver = Conn.create ~tele ~peer:"rx" b in
        let t0_send = Conn.last_send_ms sender in
        let t0_recv = Conn.last_recv_ms receiver in
        now := base +. 0.007;
        Conn.send sender "ping";
        Conn.handle_writable sender;
        ignore (Conn.handle_readable receiver);
        Alcotest.(check (float 0.01))
          "send stamped 7 fake milliseconds later" 7.0
          (Conn.last_send_ms sender -. t0_send);
        Alcotest.(check (float 0.01))
          "receive stamped 7 fake milliseconds later" 7.0
          (Conn.last_recv_ms receiver -. t0_recv);
        Conn.shutdown sender;
        Conn.shutdown receiver);
  ]

(* ----- loopback integration: 3 sites over real TCP ----- *)

let relay_site = 1_000_000

let mk_controller ~site ~trace text =
  let policy =
    Policy.make ~users:[ 0; 1; 2 ]
      [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  Controller.create ~eq:Char.equal ~site ~admin:0 ~policy ~trace
    (Tdoc.of_string text)

(* a single-document hub, every doc a fresh "abc" session *)
let mk_hub ?config ?metrics ?(docs = [ "main" ]) ?upstream ?hub_id () =
  let config =
    match (config, hub_id) with
    | Some c, _ -> c
    | None, Some id -> { Hub.default_config with Hub.hub_id = id }
    | None, None -> Hub.default_config
  in
  Hub.create ~config ?metrics ?upstream ~codec:Proto.char_codec
    ~factory:(fun _doc ->
      Ok (mk_controller ~site:relay_site ~trace:Obs.Trace.null "abc", None))
    ~docs ~port:0 ()

type endpoint = {
  client : Client.t;
  site : int;
  mutable ctrl : char Controller.t option;
  mutable snapshots : int;
  mutable reconnect_events : int;
}

let on_event ep = function
  | Client.Snapshot blob -> (
    match Proto.Char_proto.decode_state blob with
    | Error e -> Alcotest.failf "site %d: bad snapshot: %s" ep.site e
    | Ok state -> (
      match Controller.load ~eq:Char.equal state with
      | Error e -> Alcotest.failf "site %d: snapshot rejected: %s" ep.site e
      | Ok donor ->
        ep.snapshots <- ep.snapshots + 1;
        ep.ctrl <- Some (Controller.rejoin ~site:ep.site donor)))
  | Client.Message blob -> (
    match Proto.Char_proto.decode_message blob with
    | Error e -> Alcotest.failf "site %d: bad message: %s" ep.site e
    | Ok m ->
      let c = Option.get ep.ctrl in
      let c, emitted = Controller.receive c m in
      ep.ctrl <- Some c;
      List.iter
        (fun m' -> Client.send ep.client (Proto.Char_proto.encode_message m'))
        emitted)
  | Client.Beacon _ | Client.Delta _ ->
    (* these endpoints never present a resume point and don't compact;
       stability traffic is exercised in test_hub *)
    ()
  | Client.Reconnecting _ -> ep.reconnect_events <- ep.reconnect_events + 1
  | Client.Connected | Client.Disconnected _ -> ()
  | Client.Gave_up reason -> Alcotest.failf "site %d gave up: %s" ep.site reason

let mk_endpoint ~port ~site =
  let config =
    {
      Client.default_config with
      Client.backoff_base_ms = 5;
      backoff_max_ms = 50;
      max_attempts = Some 100;
    }
  in
  { client = Client.create ~config ~seed:site ~host:"127.0.0.1" ~port ~site ();
    site;
    ctrl = None;
    snapshots = 0;
    reconnect_events = 0;
  }

let ep_step ep = List.iter (on_event ep) (Client.step ~timeout_ms:0 ep.client)

let pump_until ?(max_rounds = 4000) hub eps cond =
  let rec go i =
    cond ()
    ||
    if i >= max_rounds then false
    else begin
      Hub.step ~timeout_ms:1 hub;
      List.iter ep_step eps;
      go (i + 1)
    end
  in
  go 0

let require name ok = if not ok then Alcotest.failf "timeout waiting for %s" name

let doc ep =
  match ep.ctrl with
  | Some c -> Tdoc.visible_string (Controller.document c)
  | None -> "<not joined>"

let settled ep =
  match ep.ctrl with
  | None -> false
  | Some c ->
    Controller.tentative c = []
    && Controller.pending_coop c = 0
    && Controller.pending_admin c = 0

let edit ep pos ch =
  let c = Option.get ep.ctrl in
  match Controller.generate c (Tdoc.ins_visible (Controller.document c) pos ch) with
  | c, Controller.Accepted m ->
    ep.ctrl <- Some c;
    Client.send ep.client (Proto.Char_proto.encode_message m)
  | _, Controller.Denied r -> Alcotest.failf "site %d denied: %s" ep.site r

let try_update ep pos ch =
  let c = Option.get ep.ctrl in
  match Controller.generate c (Tdoc.up_visible (Controller.document c) pos ch) with
  | c, Controller.Accepted m ->
    ep.ctrl <- Some c;
    Client.send ep.client (Proto.Char_proto.encode_message m);
    true
  | _, Controller.Denied _ -> false

let admin_op ep op =
  let c = Option.get ep.ctrl in
  match Controller.admin_update c op with
  | Ok (c, m) ->
    ep.ctrl <- Some c;
    Client.send ep.client (Proto.Char_proto.encode_message m)
  | Error e -> Alcotest.failf "admin error: %s" e

(* The same scenario, replayed through in-process controllers with
   immediate delivery — the oracle for the networked final state. *)
let inprocess_replay () =
  let c0 = ref (mk_controller ~site:0 ~trace:Obs.Trace.null "abc") in
  let c1 = ref (mk_controller ~site:1 ~trace:Obs.Trace.null "abc") in
  let c2 = ref (mk_controller ~site:2 ~trace:Obs.Trace.null "abc") in
  let cells = [ (0, c0); (1, c1); (2, c2) ] in
  let rec deliver src msgs =
    List.iter
      (fun m ->
        List.iter
          (fun (s, cell) ->
            if s <> src then begin
              let c, emitted = Controller.receive !cell m in
              cell := c;
              deliver s emitted
            end)
          cells)
      msgs
  in
  let gen cell site op =
    match Controller.generate !cell op with
    | c, Controller.Accepted m ->
      cell := c;
      deliver site [ m ]
    | _, Controller.Denied r -> failwith r
  in
  gen c1 1 (Tdoc.ins_visible (Controller.document !c1) 0 'x');
  (match
     Controller.admin_update !c0
       (Admin_op.Add_auth
          (0, Auth.deny [ Subject.User 2 ] [ Docobj.Whole ] [ Right.Update ]))
   with
   | Ok (c, m) ->
     c0 := c;
     deliver 0 [ m ]
   | Error e -> failwith e);
  gen c2 2 (Tdoc.ins_visible (Controller.document !c2) 3 'z');
  gen c1 1 (Tdoc.ins_visible (Controller.document !c1) 1 'y');
  Tdoc.visible_string (Controller.document !c0)

let integration_test () =
  let metrics = Obs.Metrics.create () in
  let config = { Hub.default_config with Hub.heartbeat_ms = 200 } in
  let hub = mk_hub ~config ~metrics () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let port = Hub.port hub in
  (* admin and site 1 join a fresh session *)
  let ep0 = mk_endpoint ~port ~site:0 in
  let ep1 = mk_endpoint ~port ~site:1 in
  let eps = [ ep0; ep1 ] in
  require "initial join"
    (pump_until hub eps (fun () -> ep0.ctrl <> None && ep1.ctrl <> None));
  Alcotest.(check (list int)) "both connected" [ 0; 1 ] (Hub.connected_sites hub);

  (* a user edit propagates and gets validated by the admin *)
  edit ep1 0 'x';
  require "edit propagated and validated"
    (pump_until hub eps (fun () ->
         doc ep0 = "xabc" && doc ep1 = "xabc" && settled ep0 && settled ep1));

  (* the admin restricts site 2's update right; the policy change
     reaches every connected site.  (Versions are compared relatively:
     validations are administrative events too, so the count is higher
     than the number of explicit policy edits.) *)
  admin_op ep0
    (Admin_op.Add_auth
       (0, Auth.deny [ Subject.User 2 ] [ Docobj.Whole ] [ Right.Update ]));
  let target_version = Controller.version (Option.get ep0.ctrl) in
  require "restriction everywhere"
    (pump_until hub eps (fun () ->
         (match ep1.ctrl with
          | Some b -> Controller.version b >= target_version
          | None -> false)));

  (* site 2 joins late, purely from the relay snapshot *)
  let ep2 = mk_endpoint ~port ~site:2 in
  let eps = [ ep0; ep1; ep2 ] in
  require "late join" (pump_until hub eps (fun () -> ep2.ctrl <> None));
  Alcotest.(check string) "late joiner caught up from snapshot" "xabc" (doc ep2);
  Alcotest.(check bool) "late joiner sees the restriction" true
    (Controller.version (Option.get ep2.ctrl) >= target_version);
  (* ...and the restriction binds its local checks *)
  Alcotest.(check bool) "denied update locally" false (try_update ep2 0 'Q');

  (* the late joiner can still insert *)
  edit ep2 3 'z';
  require "late joiner's edit propagated"
    (pump_until hub eps (fun () ->
         doc ep0 = "xabzc" && doc ep1 = "xabzc" && doc ep2 = "xabzc"));

  (* kick site 1: its client must reconnect with backoff and resync *)
  require "settled before kick"
    (pump_until hub eps (fun () -> List.for_all settled eps));
  let snapshots_before = ep1.snapshots in
  Alcotest.(check bool) "kick found the connection" true (Hub.kick hub ~site:1);
  require "reconnected with a fresh snapshot"
    (pump_until hub eps (fun () ->
         ep1.snapshots > snapshots_before && Client.connected ep1.client));
  Alcotest.(check bool) "reconnect went through backoff" true
    (ep1.reconnect_events > 0);

  (* the reconnected site keeps editing: serial numbering must have
     resumed (Controller.rejoin), or every peer would drop this as a
     duplicate *)
  edit ep1 1 'y';
  require "post-reconnect edit propagated"
    (pump_until hub eps (fun () ->
         doc ep0 = "xyabzc" && doc ep1 = "xyabzc" && doc ep2 = "xyabzc"
         && List.for_all settled eps));

  (* the paper's convergence oracle over the three real controllers *)
  let ctrls = List.map (fun ep -> Option.get ep.ctrl) [ ep0; ep1; ep2 ] in
  let report = Dce_sim.Convergence.check ctrls in
  if not (Dce_sim.Convergence.ok report) then
    Alcotest.failf "convergence violated: %s"
      (Format.asprintf "%a" Dce_sim.Convergence.pp report);

  (* the hub's own hosted copy agrees *)
  Alcotest.(check string) "hub copy agrees" "xyabzc"
    (Tdoc.visible_string (Controller.document (Hub.controller hub)));

  (* and the networked outcome equals the in-process replay *)
  Alcotest.(check string) "identical to the in-process replay"
    (inprocess_replay ()) (doc ep0);

  (* transport counters saw the lifecycle *)
  let counter name = List.assoc ("netd." ^ name) (Obs.Metrics.counters metrics) in
  Alcotest.(check bool) "bytes flowed" true
    (counter "bytes_in" > 0 && counter "bytes_out" > 0);
  Alcotest.(check bool) "frames flowed" true
    (counter "frames_in" > 0 && counter "frames_out" > 0);
  Alcotest.(check bool) "reconnect counted" true (counter "reconnects" >= 1);
  Alcotest.(check int) "snapshots served: 0,1 join; 2 late; 1 resync" 4
    (counter "snapshots");
  List.iter (fun ep -> Client.close ep.client) [ ep0; ep1; ep2 ]

(* a hostile peer: raw bytes at the relay must never crash it *)
let hostile_peer_test () =
  let metrics = Obs.Metrics.create () in
  let hub = mk_hub ~metrics () in
  Fun.protect ~finally:(fun () -> Hub.shutdown hub) @@ fun () ->
  let connect_raw () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Hub.port hub));
    fd
  in
  let wait_eof fd =
    (* the hub must close a corrupt connection; EOF is the proof *)
    let rec go i =
      if i > 2000 then false
      else begin
        Hub.step ~timeout_ms:1 hub;
        match Unix.select [ fd ] [] [] 0.001 with
        | [ _ ], _, _ ->
          let n = Unix.read fd (Bytes.create 256) 0 256 in
          if n = 0 then true else go (i + 1)
        | _ -> go (i + 1)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> true
      end
    in
    go 0
  in
  (* garbage that is not even a frame *)
  let fd = connect_raw () in
  ignore (Unix.write_substring fd "total garbage \x00\xff\x13" 0 17);
  Alcotest.(check bool) "garbage stream dropped" true (wait_eof fd);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* a valid frame whose payload is not a valid envelope *)
  let fd = connect_raw () in
  let framed = Codec.frame "\xffnot an envelope" in
  ignore (Unix.write_substring fd framed 0 (String.length framed));
  Alcotest.(check bool) "bad envelope dropped" true (wait_eof fd);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* a truncated frame is NOT an error: the relay waits patiently *)
  let fd = connect_raw () in
  let framed = Codec.frame (String.make 500 'x') in
  ignore (Unix.write_substring fd framed 0 40);
  for _ = 1 to 50 do
    Hub.step ~timeout_ms:1 hub
  done;
  let still_open =
    match Unix.select [ fd ] [] [] 0.01 with
    | [ _ ], _, _ -> Unix.read fd (Bytes.create 16) 0 16 > 0 (* ping, perhaps *)
    | _ -> true (* nothing to read: still connected *)
  in
  Alcotest.(check bool) "truncated frame waits, not drops" true still_open;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* a well-framed Hello then a well-encoded Msg that is semantically
     invalid for the hosted session (edit far beyond the document):
     applying it must drop the peer, never the daemon *)
  let fd = connect_raw () in
  let send_payload s =
    let framed = Codec.frame s in
    ignore (Unix.write_substring fd framed 0 (String.length framed))
  in
  send_payload (Relay_proto.encode (Relay_proto.Hello { site = 2 }));
  let donor = mk_controller ~site:2 ~trace:Obs.Trace.null "abcdefghij" in
  let bad_msg =
    match
      Controller.generate donor (Tdoc.ins_visible (Controller.document donor) 9 'Z')
    with
    | _, Controller.Accepted m -> Proto.Char_proto.encode_message m
    | _, Controller.Denied r -> Alcotest.failf "donor edit denied: %s" r
  in
  send_payload (Relay_proto.encode (Relay_proto.Msg bad_msg));
  Alcotest.(check bool) "semantically invalid message dropped" true (wait_eof fd);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* after all that abuse, an honest client still gets served *)
  let ep = mk_endpoint ~port:(Hub.port hub) ~site:1 in
  require "honest client joins after abuse"
    (pump_until hub [ ep ] (fun () -> ep.ctrl <> None));
  Alcotest.(check string) "and sees the document" "abc" (doc ep);
  Alcotest.(check bool) "framing errors counted" true
    (List.assoc "netd.framing_errors" (Obs.Metrics.counters metrics) >= 1);
  Client.close ep.client

(* max_attempts bounds the number of failed connection attempts exactly *)
let gives_up_after_max_attempts () =
  (* find a loopback port with no listener: bind, read it back, close *)
  let probe = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind probe (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname probe with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close probe;
  let config =
    {
      Client.default_config with
      Client.backoff_base_ms = 1;
      backoff_max_ms = 2;
      max_attempts = Some 3;
    }
  in
  let c = Client.create ~config ~seed:42 ~host:"127.0.0.1" ~port ~site:1 () in
  let disconnects = ref 0 and gave_up = ref 0 in
  let rec go i =
    if i < 10_000 && not (Client.stopped c) then begin
      List.iter
        (function
          | Client.Disconnected _ -> incr disconnects
          | Client.Gave_up _ -> incr gave_up
          | _ -> ())
        (Client.step ~timeout_ms:1 c);
      go (i + 1)
    end
  in
  go 0;
  Alcotest.(check bool) "stopped" true (Client.stopped c);
  Alcotest.(check int) "exactly max_attempts failed attempts" 3 !disconnects;
  Alcotest.(check int) "gave up once" 1 !gave_up

(* ----- admin socket: scraping a live session ----- *)

let find_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = needle then Some i
    else go (i + 1)
  in
  go 0

(* The admin server is single-threaded and shares the caller's loop, so
   the scrape drives [Admin.step] itself between non-blocking reads. *)
let http_scrape admin path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Admin.port admin));
  let req = "GET " ^ path ^ " HTTP/1.1\r\n\r\n" in
  ignore (Unix.write_substring fd req 0 (String.length req));
  Unix.set_nonblock fd;
  let b = Buffer.create 1024 in
  let buf = Bytes.create 4096 in
  let rec go rounds =
    if rounds > 2000 then Alcotest.failf "scraping %s timed out" path;
    Admin.step admin;
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b buf 0 n;
      go (rounds + 1)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Unix.sleepf 0.001;
      go (rounds + 1)
  in
  go 0;
  Buffer.contents b

let admin_scrape_test () =
  let metrics = Obs.Metrics.create () in
  let hub = mk_hub ~metrics () in
  let admin =
    Admin.create ~metrics
      ~healthz:(fun () -> Obs.Json.Obj [ ("status", Obs.Json.String "ok") ])
      ~sessions:(fun () ->
        Obs.Json.Obj
          [
            ( "sites",
              Obs.Json.List
                (List.map (fun s -> Obs.Json.Int s) (Hub.connected_sites hub)) );
          ])
      ~port:0 ()
  in
  Fun.protect ~finally:(fun () ->
      Admin.close admin;
      Hub.shutdown hub)
  @@ fun () ->
  let port = Hub.port hub in
  let ep0 = mk_endpoint ~port ~site:0 in
  let ep1 = mk_endpoint ~port ~site:1 in
  let ep2 = mk_endpoint ~port ~site:2 in
  let eps = [ ep0; ep1; ep2 ] in
  require "all three joined"
    (pump_until hub eps (fun () -> List.for_all (fun e -> e.ctrl <> None) eps));
  edit ep1 0 'x';
  edit ep2 0 'y';
  require "edits settled"
    (pump_until hub eps (fun () ->
         List.for_all settled eps && doc ep0 = doc ep1 && doc ep1 = doc ep2));
  (* /metrics: a parseable exposition with live transport counters *)
  let raw = http_scrape admin "/metrics" in
  Alcotest.(check bool) "200" true (find_sub raw "HTTP/1.1 200" = Some 0);
  let body =
    match find_sub raw "\r\n\r\n" with
    | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
    | None -> Alcotest.fail "no body"
  in
  let p = Obs.Export.parse_exposition body in
  let counter name =
    try List.assoc name p.Obs.Export.p_counters with Not_found -> 0
  in
  Alcotest.(check bool) "netd_frames_in is live" true (counter "netd_frames_in" > 0);
  Alcotest.(check bool) "netd_bytes_out is live" true (counter "netd_bytes_out" > 0);
  (* /healthz and /sessions serve the callbacks' JSON *)
  let hz = http_scrape admin "/healthz" in
  Alcotest.(check bool) "healthz ok" true (find_sub hz "\"status\":\"ok\"" <> None);
  let ss = http_scrape admin "/sessions" in
  Alcotest.(check bool) "sessions lists the sites" true
    (find_sub ss "\"sites\":[0,1,2]" <> None);
  (* unknown routes 404 without killing the server *)
  let nf = http_scrape admin "/nope" in
  Alcotest.(check bool) "404" true (find_sub nf "404" <> None);
  let again = http_scrape admin "/healthz" in
  Alcotest.(check bool) "server survives" true (find_sub again "200" <> None)

let client_tests =
  [
    Alcotest.test_case "max_attempts failed connects, then Gave_up" `Quick
      gives_up_after_max_attempts;
  ]

let () =
  Alcotest.run "dce_netd"
    [
      ("unframe_prefix", prefix_tests);
      ("splitter", splitter_tests);
      ("backoff", backoff_tests);
      ("envelope", envelope_tests);
      ("conn", conn_tests);
      ("client", client_tests);
      ( "loopback",
        [
          Alcotest.test_case "3 sites over TCP: edit/deny/late-join/reconnect" `Quick
            integration_test;
          Alcotest.test_case "hostile and truncated streams never crash the hub"
            `Quick hostile_peer_test;
          Alcotest.test_case "admin socket scrapes a live 3-site session" `Quick
            admin_scrape_test;
        ] );
    ]
