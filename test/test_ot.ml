(* Tests for the OT substrate: operations, documents, transformation
   (TP1/TP2/inversion), logs, undo, and multi-site convergence of the
   plain engine. *)

open Dce_ot
open Helpers

(* ----- Op ----- *)

let test_inverse_cancels =
  qtest "inverse cancels the operation (visible projection)" ~count:500
    QCheck2.Gen.(gen_tdoc >>= fun d -> gen_valid_op ~pr:1 d >>= fun o -> return (d, o))
    (fun (d, o) -> Format.asprintf "doc=%s op=%a" (show_tdoc d) pp_char_op o)
    (fun (doc, o) ->
      let doc' = Tdoc.apply doc o in
      Tdoc.equal_visible Char.equal doc (Tdoc.apply doc' (Op.inverse o)))

let op_unit_tests =
  [
    Alcotest.test_case "ins builds" `Quick (fun () ->
        Alcotest.check op_testable "ins" (Op.Ins { pos = 2; elt = 'x'; pr = 1 })
          (Op.ins ~pr:1 2 'x'));
    Alcotest.test_case "negative position rejected" `Quick (fun () ->
        Alcotest.check_raises "ins" (Invalid_argument "Op.ins: negative position")
          (fun () -> ignore (Op.ins (-1) 'x')));
    Alcotest.test_case "inverse of up retracts its write" `Quick (fun () ->
        let tag = { Op.stamp = 4; site = 3 } in
        Alcotest.check op_testable "inv" (Op.unup ~tag 1 'b')
          (Op.inverse (Op.up ~tag 1 'a' 'b'));
        Alcotest.check op_testable "inv inv re-adds" (Op.up ~tag 1 'b' 'b')
          (Op.inverse (Op.unup ~tag 1 'b')));
    Alcotest.test_case "inverse of ins hides, of del shows" `Quick (fun () ->
        Alcotest.check op_testable "ins" (Op.del 4 'z') (Op.inverse (Op.ins 4 'z'));
        Alcotest.check op_testable "del" (Op.undel 4 'z') (Op.inverse (Op.del 4 'z'));
        Alcotest.check op_testable "undel" (Op.del 4 'z') (Op.inverse (Op.undel 4 'z')));
    Alcotest.test_case "nop predicates" `Quick (fun () ->
        Alcotest.(check bool) "is_nop" true (Op.is_nop Op.Nop);
        Alcotest.(check bool) "pos none" true (Op.pos Op.Nop = None));
    Alcotest.test_case "with_stamp" `Quick (fun () ->
        (match Op.with_stamp ~site:7 ~stamp:9 (Op.ins 0 'a') with
         | Op.Ins { pr; _ } -> Alcotest.(check int) "ins pr" 7 pr
         | _ -> Alcotest.fail "ins expected");
        (match Op.with_stamp ~site:7 ~stamp:9 (Op.up 0 'a' 'b') with
         | Op.Up { tag; _ } ->
           Alcotest.(check int) "stamp" 9 tag.Op.stamp;
           Alcotest.(check int) "site" 7 tag.Op.site
         | _ -> Alcotest.fail "up expected");
        Alcotest.check op_testable "del unchanged" (Op.del 0 'a')
          (Op.with_stamp ~site:7 ~stamp:9 (Op.del 0 'a')));
  ]

(* ----- Tdoc ----- *)

let tdoc_unit_tests =
  [
    Alcotest.test_case "of_string / visible_string roundtrip" `Quick (fun () ->
        Alcotest.(check string) "roundtrip" "hello"
          (Tdoc.visible_string (Tdoc.of_string "hello")));
    Alcotest.test_case "del hides instead of removing" `Quick (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abc") (Op.del 1 'b') in
        Alcotest.(check string) "visible" "ac" (Tdoc.visible_string d);
        Alcotest.(check int) "model keeps the cell" 3 (Tdoc.model_length d);
        Alcotest.(check int) "hidden" 1 (Tdoc.cell d 1).Tdoc.hidden);
    Alcotest.test_case "undel restores" `Quick (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abc") (Op.del 1 'b') in
        let d = Tdoc.apply d (Op.undel 1 'b') in
        Alcotest.(check string) "visible" "abc" (Tdoc.visible_string d));
    Alcotest.test_case "stacked deletions need as many undels" `Quick (fun () ->
        let d = Tdoc.of_string "x" in
        let d = Tdoc.apply d (Op.del 0 'x') in
        let d = Tdoc.apply d (Op.del 0 'x') in
        let d = Tdoc.apply d (Op.undel 0 'x') in
        Alcotest.(check string) "still hidden" "" (Tdoc.visible_string d);
        let d = Tdoc.apply d (Op.undel 0 'x') in
        Alcotest.(check string) "restored" "x" (Tdoc.visible_string d));
    Alcotest.test_case "undel of a visible cell rejected" `Quick (fun () ->
        (try
           ignore (Tdoc.apply (Tdoc.of_string "a") (Op.undel 0 'a'));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "element expectation checked" `Quick (fun () ->
        (try
           ignore (Tdoc.apply (Tdoc.of_string "abc") (Op.del 1 'z'));
           Alcotest.fail "expected Edit_conflict"
         with Document.Edit_conflict _ -> ()));
    Alcotest.test_case "visible coordinates skip tombstones" `Quick (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abc") (Op.del 0 'a') in
        (* visible "bc"; visible pos 1 is 'c' at model pos 2 *)
        Alcotest.(check int) "model_of_visible" 2 (Tdoc.model_of_visible d 1);
        Alcotest.check op_testable "del_visible" (Op.del 2 'c') (Tdoc.del_visible d 1);
        let tag = { Op.stamp = 1; site = 9 } in
        Alcotest.check op_testable "up_visible" (Op.up ~tag 2 'c' 'X')
          (Tdoc.up_visible ~tag d 1 'X');
        Alcotest.(check int) "visible_of_model" 1 (Tdoc.visible_of_model d 2));
    Alcotest.test_case "insertion at the end lands after trailing cells" `Quick
      (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "ab") (Op.del 1 'b') in
        Alcotest.check op_testable "append" (Op.ins ~pr:1 2 'z')
          (Tdoc.ins_visible ~pr:1 d 1 'z'));
    Alcotest.test_case "up rewrites content in place" `Quick (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abc") (Op.up 2 'c' 'C') in
        Alcotest.(check string) "visible" "abC" (Tdoc.visible_string d));
  ]

(* Boundary contracts of the coordinate translations: model_of_visible
   is strict on both ends; visible_of_model is strict on negatives and
   clamps past the model length (a transformed generation-context
   position may point past a shorter context's end). *)
let tdoc_boundary_tests =
  let expect_invalid name f =
    try
      ignore (f ());
      Alcotest.fail (name ^ ": expected Invalid_argument")
    with Invalid_argument _ -> ()
  in
  [
    Alcotest.test_case "model_of_visible rejects negatives and overshoot" `Quick
      (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abc") (Op.del 1 'b') in
        expect_invalid "negative" (fun () -> Tdoc.model_of_visible d (-1));
        Alcotest.(check int) "at visible_length" 3
          (Tdoc.model_of_visible d (Tdoc.visible_length d));
        expect_invalid "beyond" (fun () ->
            Tdoc.model_of_visible d (Tdoc.visible_length d + 1)));
    Alcotest.test_case "model_of_visible on an all-hidden document" `Quick (fun () ->
        let d = Tdoc.apply_all (Tdoc.of_string "ab") [ Op.del 0 'a'; Op.del 1 'b' ] in
        Alcotest.(check int) "visible empty" 0 (Tdoc.visible_length d);
        Alcotest.(check int) "0 maps to model end" 2 (Tdoc.model_of_visible d 0);
        expect_invalid "beyond" (fun () -> Tdoc.model_of_visible d 1));
    Alcotest.test_case "visible_of_model rejects negatives" `Quick (fun () ->
        let d = Tdoc.of_string "abc" in
        expect_invalid "negative" (fun () -> Tdoc.visible_of_model d (-1));
        expect_invalid "negative on empty" (fun () ->
            Tdoc.visible_of_model Tdoc.empty (-1)));
    Alcotest.test_case "visible_of_model clamps past the model length" `Quick
      (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abc") (Op.del 2 'c') in
        Alcotest.(check int) "at model_length" 2 (Tdoc.visible_of_model d 3);
        Alcotest.(check int) "one past" 2 (Tdoc.visible_of_model d 4);
        Alcotest.(check int) "far past" 2 (Tdoc.visible_of_model d 1000);
        Alcotest.(check int) "empty doc clamps to 0"
          0 (Tdoc.visible_of_model Tdoc.empty 5));
    Alcotest.test_case "visible_of_model at interior boundaries" `Quick (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abc") (Op.del 0 'a') in
        Alcotest.(check int) "0" 0 (Tdoc.visible_of_model d 0);
        Alcotest.(check int) "after tombstone" 0 (Tdoc.visible_of_model d 1);
        Alcotest.(check int) "after first visible" 1 (Tdoc.visible_of_model d 2);
        Alcotest.(check int) "whole model" 2 (Tdoc.visible_of_model d 3));
  ]

(* ----- Stree (the stat tree underneath Tdoc and Oplog) ----- *)

(* differential model: a plain list with the same measure *)
let stree_tests =
  let measure x = x land 1 in
  let gen_list = QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 100)) in
  let print_list l = Format.asprintf "%a" Fmt.(Dump.list int) l in
  [
    qtest "of_list/to_list roundtrip, length and weight" ~count:500 gen_list
      print_list (fun l ->
        let t = Stree.of_list ~measure l in
        Stree.to_list t = l
        && Stree.length t = List.length l
        && Stree.weight t = List.fold_left (fun a x -> a + measure x) 0 l);
    qtest "insert agrees with list insertion" ~count:500
      QCheck2.Gen.(
        gen_list >>= fun l ->
        int_range 0 (List.length l) >>= fun i ->
        int_range 0 100 >>= fun x -> return (l, i, x))
      (fun (l, i, x) -> Format.asprintf "%s i=%d x=%d" (print_list l) i x)
      (fun (l, i, x) ->
        let t = Stree.insert ~measure (Stree.of_list ~measure l) i x in
        let expect = List.filteri (fun j _ -> j < i) l @ (x :: List.filteri (fun j _ -> j >= i) l) in
        Stree.to_list t = expect && Stree.length t = List.length l + 1);
    qtest "set/update/get agree with the list model" ~count:500
      QCheck2.Gen.(
        gen_list >>= fun l ->
        if l = [] then return None
        else
          int_range 0 (List.length l - 1) >>= fun i ->
          int_range 0 100 >>= fun x -> return (Some (l, i, x)))
      (function
        | None -> "empty"
        | Some (l, i, x) -> Format.asprintf "%s i=%d x=%d" (print_list l) i x)
      (function
        | None -> true
        | Some (l, i, x) ->
          let t = Stree.of_list ~measure l in
          Stree.get t i = List.nth l i
          && Stree.to_list (Stree.set ~measure t i x)
             = List.mapi (fun j y -> if j = i then x else y) l
          && Stree.to_list (Stree.update ~measure t i (fun y -> y + 1))
             = List.mapi (fun j y -> if j = i then y + 1 else y) l);
    qtest "set_range agrees with element-wise set" ~count:500
      QCheck2.Gen.(
        gen_list >>= fun l ->
        let n = List.length l in
        int_range 0 n >>= fun pos ->
        int_range 0 (n - pos) >>= fun len ->
        list_size (return len) (int_range 0 100) >>= fun xs ->
        return (l, pos, xs))
      (fun (l, pos, xs) ->
        Format.asprintf "%s pos=%d xs=%s" (print_list l) pos (print_list xs))
      (fun (l, pos, xs) ->
        let t0 = Stree.of_list ~measure l in
        let t = Stree.set_range ~measure t0 ~pos (Array.of_list xs) in
        let expect =
          List.mapi
            (fun j y ->
              if j >= pos && j < pos + List.length xs then List.nth xs (j - pos)
              else y)
            l
        in
        Stree.to_list t = expect
        && Stree.weight t = List.fold_left (fun a x -> a + measure x) 0 expect
        && Stree.length t = List.length l);
    qtest "rank is the prefix measure sum; select inverts it" ~count:500 gen_list
      print_list (fun l ->
        let t = Stree.of_list ~measure l in
        let arr = Array.of_list l in
        let n = Array.length arr in
        let naive_rank i =
          let s = ref 0 in
          for j = 0 to i - 1 do
            s := !s + measure arr.(j)
          done;
          !s
        in
        List.for_all (fun i -> Stree.rank t i = naive_rank i) (List.init (n + 1) Fun.id)
        && List.for_all
             (fun k ->
               let i = Stree.select t k in
               Stree.rank t i = k && measure arr.(i) = 1)
             (List.init (Stree.weight t) Fun.id));
    qtest "fold_range is the sublist fold; fold_nonzero filters" ~count:500
      QCheck2.Gen.(
        gen_list >>= fun l ->
        let n = List.length l in
        int_range 0 n >>= fun pos ->
        int_range 0 (n - pos) >>= fun len -> return (l, pos, len))
      (fun (l, pos, len) -> Format.asprintf "%s [%d,+%d)" (print_list l) pos len)
      (fun (l, pos, len) ->
        let t = Stree.of_list ~measure l in
        List.rev (Stree.fold_range (fun acc x -> x :: acc) [] t ~pos ~len)
        = List.filteri (fun j _ -> j >= pos && j < pos + len) l
        && List.rev (Stree.fold_nonzero (fun acc x -> x :: acc) [] t)
           = List.filter (fun x -> measure x <> 0) l);
    qtest "prefix_length stops at the first failure" ~count:500 gen_list print_list
      (fun l ->
        let p x = x mod 3 <> 0 in
        let t = Stree.of_list ~measure l in
        let rec naive = function x :: rest when p x -> 1 + naive rest | _ -> 0 in
        Stree.prefix_length p t = naive l);
    qtest "random append/insert sequences stay balanced enough to agree"
      ~count:200
      QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 1000) (int_range 0 100)))
      (fun ops -> Format.asprintf "%d ops" (List.length ops))
      (fun ops ->
        let t, l =
          List.fold_left
            (fun (t, l) (at, x) ->
              let i = at mod (Stree.length t + 1) in
              ( Stree.insert ~measure t i x,
                List.filteri (fun j _ -> j < i) l
                @ (x :: List.filteri (fun j _ -> j >= i) l) ))
            (Stree.empty, []) ops
        in
        Stree.to_list t = l);
  ]

(* ----- Tdoc vs the array-based reference oracle ----- *)

(* A start state and a random op/undo sequence: each step is a valid op
   on the current document, sometimes followed immediately by its
   inverse (the document-level undo primitive). *)
let gen_doc_op_seq =
  let open QCheck2.Gen in
  gen_tdoc >>= fun d0 ->
  int_range 0 25 >>= fun n ->
  let rec steps doc acc k =
    if k = 0 then return (d0, List.rev acc)
    else
      gen_valid_op ~pr:1 doc >>= fun op ->
      bool >>= fun undo_too ->
      let ops = if undo_too then [ op; Op.inverse op ] else [ op ] in
      steps (Tdoc.apply_all doc ops) (List.rev_append ops acc) (k - 1)
  in
  steps d0 [] n

let print_doc_op_seq (d0, ops) =
  Format.asprintf "%s then @[%a@]" (show_tdoc d0)
    Fmt.(list ~sep:semi pp_char_op)
    ops

let differential_tests =
  [
    qtest "tree and array documents agree on every projection" ~count:1000
      gen_doc_op_seq print_doc_op_seq (fun (d0, ops) ->
        let cells = Tdoc.model_list d0 in
        let tree = Tdoc.apply_all (Tdoc.of_cells cells) ops in
        let arr = Tdoc_ref.apply_all (Tdoc_ref.of_cells cells) ops in
        Tdoc.visible_string tree = Tdoc_ref.visible_string arr
        && Tdoc.model_list tree = Tdoc_ref.model_list arr
        && Tdoc.model_length tree = Tdoc_ref.model_length arr
        && Tdoc.visible_length tree = Tdoc_ref.visible_length arr);
    qtest "tree and array documents agree on coordinate translations" ~count:500
      gen_doc_op_seq print_doc_op_seq (fun (d0, ops) ->
        let cells = Tdoc.model_list d0 in
        let tree = Tdoc.apply_all (Tdoc.of_cells cells) ops in
        let arr = Tdoc_ref.apply_all (Tdoc_ref.of_cells cells) ops in
        let vl = Tdoc.visible_length tree and ml = Tdoc.model_length tree in
        List.for_all
          (fun v -> Tdoc.model_of_visible tree v = Tdoc_ref.model_of_visible arr v)
          (List.init (vl + 1) Fun.id)
        && List.for_all
             (fun m -> Tdoc.visible_of_model tree m = Tdoc_ref.visible_of_model arr m)
             (List.init (ml + 2) Fun.id))
      (* ml+1 exercises the documented clamp *);
    qtest "tree and array documents build identical visible-coordinate ops"
      ~count:500 gen_doc_op_seq print_doc_op_seq (fun (d0, ops) ->
        let cells = Tdoc.model_list d0 in
        let tree = Tdoc.apply_all (Tdoc.of_cells cells) ops in
        let arr = Tdoc_ref.apply_all (Tdoc_ref.of_cells cells) ops in
        let vl = Tdoc.visible_length tree in
        List.for_all
          (fun v ->
            Op.equal Char.equal
              (Tdoc.ins_visible ~pr:1 tree v 'q')
              (Tdoc_ref.ins_visible ~pr:1 arr v 'q'))
          (List.init (vl + 1) Fun.id)
        && List.for_all
             (fun v ->
               Op.equal Char.equal (Tdoc.del_visible tree v)
                 (Tdoc_ref.del_visible arr v)
               &&
               let tag = { Op.stamp = 999; site = 1 } in
               Op.equal Char.equal
                 (Tdoc.up_visible ~tag tree v 'Q')
                 (Tdoc_ref.up_visible ~tag arr v 'Q'))
             (List.init vl Fun.id));
  ]

(* ----- plain Document (positional; used by baselines) ----- *)

let doc_unit_tests =
  let open Document in
  let string_doc = Str.of_string and doc_string = Str.to_string in
  [
    Alcotest.test_case "apply ins/del/up" `Quick (fun () ->
        let d = string_doc "abc" in
        Alcotest.(check string) "ins" "axbc" (doc_string (Str.apply d (Op.ins 1 'x')));
        Alcotest.(check string) "del" "ac" (doc_string (Str.apply d (Op.del 1 'b')));
        Alcotest.(check string) "up" "aXc" (doc_string (Str.apply d (Op.up 1 'b' 'X')));
        Alcotest.(check string) "nop" "abc" (doc_string (Str.apply d Op.Nop)));
    Alcotest.test_case "del checks expected element" `Quick (fun () ->
        (try
           ignore (Str.apply (string_doc "abc") (Op.del 1 'z'));
           Alcotest.fail "expected Edit_conflict"
         with Edit_conflict _ -> ()));
    Alcotest.test_case "out of bounds" `Quick (fun () ->
        (try
           ignore (Str.apply (string_doc "ab") (Op.ins 5 'x'));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "gap buffer grows" `Quick (fun () ->
        let d = ref (Gap_doc.empty ()) in
        for i = 0 to 99 do
          d := Gap_doc.apply !d (Op.ins i 'x')
        done;
        Alcotest.(check int) "length" 100 (Gap_doc.length !d));
    Alcotest.test_case "gap buffer edits far apart" `Quick (fun () ->
        let d = Gap_doc.of_list (List.init 50 (fun i -> Char.chr (97 + (i mod 26)))) in
        let d = Gap_doc.apply d (Op.ins 0 'A') in
        let d = Gap_doc.apply d (Op.ins 51 'Z') in
        let d = Gap_doc.apply d (Op.del 25 (Gap_doc.get d 25)) in
        Alcotest.(check int) "length" 51 (Gap_doc.length d);
        Alcotest.(check char) "front" 'A' (Gap_doc.get d 0);
        Alcotest.(check char) "back" 'Z' (Gap_doc.get d 50));
  ]

let test_doc_impl_equivalence =
  qtest "gap buffer agrees with array document" ~count:500
    QCheck2.Gen.(
      let gen_plain =
        map
          (fun s -> Document.Str.of_string s)
          (string_size ~gen:gen_char (int_range 0 12))
      in
      let gen_plain_op d =
        let n = Document.Array_doc.length d in
        let ins = map2 (fun p e -> Op.ins p e) (int_range 0 n) gen_char in
        if n = 0 then ins
        else
          oneof
            [
              ins;
              (int_range 0 (n - 1) >|= fun p -> Op.del p (Document.Array_doc.get d p));
              ( pair (int_range 0 (n - 1)) gen_char >|= fun (p, e) ->
                Op.up p (Document.Array_doc.get d p) e );
            ]
      in
      gen_plain >>= fun d ->
      let rec ops_on d acc n =
        if n = 0 then return (List.rev acc)
        else
          gen_plain_op d >>= fun o ->
          ops_on (Document.Str.apply d o) (o :: acc) (n - 1)
      in
      int_range 0 20 >>= fun n ->
      ops_on d [] n >>= fun ops -> return (d, ops))
    (fun (d, ops) ->
      Format.asprintf "doc=%S ops=[%a]" (Document.Str.to_string d)
        (Format.pp_print_list pp_char_op) ops)
    (fun (doc, ops) ->
      let arr = Document.Array_doc.apply_all ~eq:Char.equal doc ops in
      let gap =
        Document.Gap_doc.apply_all ~eq:Char.equal
          (Document.Gap_doc.of_list (Document.Array_doc.to_list doc))
          ops
      in
      Document.Array_doc.to_list arr = Document.Gap_doc.to_list gap)

(* ----- Transform ----- *)

(* TP1: both execution orders of two concurrent operations converge (on
   the full model, not just the visible projection). *)
let test_tp1 =
  qtest "TP1 convergence" ~count:5000 gen_doc_two_ops print_doc_two_ops
    (fun (doc, o1, o2) ->
      let left = Tdoc.apply (Tdoc.apply doc o1) (Transform.it o2 o1) in
      let right = Tdoc.apply (Tdoc.apply doc o2) (Transform.it o1 o2) in
      Tdoc.equal_model Char.equal left right)

(* TP2: transforming against the two equivalent orders of a concurrent
   pair yields the same operation.  This is the property positional OT
   cannot have and the tombstone rules do. *)
let test_tp2 =
  qtest "TP2" ~count:5000 gen_doc_three_ops print_doc_three_ops
    (fun (_, o1, o2, o3) ->
      let via12 = Transform.it_list o3 [ o1; Transform.it o2 o1 ] in
      let via21 = Transform.it_list o3 [ o2; Transform.it o1 o2 ] in
      Op.equal Char.equal via12 via21)

(* Three concurrent operations converge under all six integration
   orders. *)
let test_three_way_convergence =
  qtest "3 concurrent ops converge in all orders" ~count:3000 gen_doc_three_ops
    print_doc_three_ops
    (fun (doc, o1, o2, o3) ->
      let integrate doc ops =
        List.fold_left
          (fun (doc, done_) o ->
            let o' = Transform.it_list o done_ in
            (Tdoc.apply doc o', done_ @ [ o' ]))
          (doc, []) ops
        |> fst
      in
      let perms =
        [ [o1;o2;o3]; [o1;o3;o2]; [o2;o1;o3]; [o2;o3;o1]; [o3;o1;o2]; [o3;o2;o1] ]
      in
      match List.map (integrate doc) perms with
      | ref :: rest -> List.for_all (Tdoc.equal_model Char.equal ref) rest
      | [] -> assert false)

let test_et_inverts_it =
  qtest "et inverts it on concurrent pairs" ~count:5000 gen_doc_two_ops
    print_doc_two_ops
    (fun (_, o1, o2) ->
      let o1' = Transform.it o1 o2 in
      Op.equal Char.equal o1' (Transform.it (Transform.et o1' o2) o2))

(* Transposition as used by Canonize: a deletion/update/undeletion
   followed by an insertion can always be swapped without changing the
   combined effect. *)
let gen_canonize_pair =
  let open QCheck2.Gen in
  let rec nonempty () =
    gen_tdoc >>= fun doc ->
    if Tdoc.model_length doc = 0 then nonempty () else return doc
  in
  nonempty () >>= fun doc ->
  gen_valid_non_ins_op ~pr:1 doc >>= fun first ->
  let doc' = Tdoc.apply doc first in
  map2 (fun p e -> (doc, first, Op.ins ~pr:2 p e))
    (int_range 0 (Tdoc.model_length doc'))
    gen_char

let test_canonize_transpose =
  qtest "canonize transposition preserves effect" ~count:5000 gen_canonize_pair
    (fun (doc, first, ins) ->
      Format.asprintf "doc=%s first=%a then=%a" (show_tdoc doc) pp_char_op first
        pp_char_op ins)
    (fun (doc, first, ins) ->
      let direct = Tdoc.apply (Tdoc.apply doc first) ins in
      let ins' = Transform.et ins first in
      let first' = Transform.it first ins' in
      let swapped = Tdoc.apply (Tdoc.apply doc ins') first' in
      Tdoc.equal_model Char.equal direct swapped)

let transform_unit_tests =
  [
    Alcotest.test_case "paper Fig.1: Del shifts after concurrent Ins" `Quick (fun () ->
        (* "efecte": site 1 inserts 'f' at (0-based) 1, site 2 deletes the
           trailing 'e' at 5.  IT(Del, Ins) = Del 6; both sides see
           "effect". *)
        let doc = Tdoc.of_string "efecte" in
        let o1 = Op.ins ~pr:1 1 'f' in
        let o2 = Op.del 5 'e' in
        Alcotest.check op_testable "transformed del" (Op.del 6 'e') (Transform.it o2 o1);
        let s1 = Tdoc.apply (Tdoc.apply doc o1) (Transform.it o2 o1) in
        let s2 = Tdoc.apply (Tdoc.apply doc o2) (Transform.it o1 o2) in
        Alcotest.(check string) "site1" "effect" (Tdoc.visible_string s1);
        Alcotest.(check string) "site2" "effect" (Tdoc.visible_string s2));
    Alcotest.test_case "ins/ins tie broken by priority" `Quick (fun () ->
        let hi = Op.ins ~pr:2 3 'a' and lo = Op.ins ~pr:1 3 'b' in
        Alcotest.check op_testable "high shifts" (Op.ins ~pr:2 4 'a') (Transform.it hi lo);
        Alcotest.check op_testable "low stays" lo (Transform.it lo hi));
    Alcotest.test_case "concurrent del/del of one element stack" `Quick (fun () ->
        let d = Op.del 2 'x' in
        Alcotest.check op_testable "unchanged" d (Transform.it d d));
    Alcotest.test_case "ins unaffected by concurrent del" `Quick (fun () ->
        let i = Op.ins ~pr:1 3 'q' in
        Alcotest.check op_testable "same" i (Transform.it i (Op.del 1 'x'));
        Alcotest.check op_testable "same" i (Transform.it i (Op.del 3 'x')));
    Alcotest.test_case "up/up conflict: greatest tag wins in either order" `Quick
      (fun () ->
        let w = Op.up ~tag:{ Op.stamp = 1; site = 2 } 1 'x' 'a' in
        let l = Op.up ~tag:{ Op.stamp = 1; site = 1 } 1 'x' 'b' in
        (* transformation leaves both unchanged; the register resolves *)
        Alcotest.check op_testable "w" w (Transform.it w l);
        Alcotest.check op_testable "l" l (Transform.it l w);
        let d = Tdoc.of_string "yxz" in
        let one = Tdoc.apply (Tdoc.apply d w) l in
        let other = Tdoc.apply (Tdoc.apply d l) w in
        Alcotest.(check string) "converge" "yaz" (Tdoc.visible_string one);
        Alcotest.(check bool) "same model" true (Tdoc.equal_model Char.equal one other));
    Alcotest.test_case "later write beats earlier write causally" `Quick (fun () ->
        (* a sequential overwrite from a site with a smaller id still
           wins, because its Lamport stamp is larger *)
        let d = Tdoc.of_string "x" in
        let d = Tdoc.apply d (Op.up ~tag:{ Op.stamp = 5; site = 9 } 0 'x' 'K') in
        let d = Tdoc.apply d (Op.up ~tag:{ Op.stamp = 6; site = 1 } 0 'K' 'T') in
        Alcotest.(check string) "latest wins" "T" (Tdoc.visible_string d));
    Alcotest.test_case "retracting the winning write reveals the loser" `Quick
      (fun () ->
        let wtag = { Op.stamp = 1; site = 2 } and ltag = { Op.stamp = 1; site = 1 } in
        let d = Tdoc.of_string "x" in
        let d = Tdoc.apply d (Op.up ~tag:ltag 0 'x' 'K') in
        let d = Tdoc.apply d (Op.up ~tag:wtag 0 'x' 'T') in
        Alcotest.(check string) "winner shown" "T" (Tdoc.visible_string d);
        let d = Tdoc.apply d (Op.unup ~tag:wtag 0 'T') in
        Alcotest.(check string) "loser revealed" "K" (Tdoc.visible_string d);
        let d = Tdoc.apply d (Op.unup ~tag:ltag 0 'K') in
        Alcotest.(check string) "initial revealed" "x" (Tdoc.visible_string d));
    Alcotest.test_case "del of a concurrently updated element still applies" `Quick
      (fun () ->
        let del = Op.del 1 'x' in
        Alcotest.check op_testable "unchanged" del
          (Transform.it del (Op.up ~tag:{ Op.stamp = 1; site = 2 } 1 'x' 'y'));
        (* the history check accepts the stale expected element *)
        let d = Tdoc.apply (Tdoc.of_string "axc")
            (Op.up ~tag:{ Op.stamp = 1; site = 2 } 1 'x' 'y') in
        let d = Tdoc.apply d del in
        Alcotest.(check string) "hidden" "ac" (Tdoc.visible_string d));
    Alcotest.test_case "it against nop is identity" `Quick (fun () ->
        let o = Op.ins 2 'q' in
        Alcotest.check op_testable "id" o (Transform.it o Op.Nop);
        Alcotest.check op_testable "nop" Op.Nop (Transform.it Op.Nop o));
    Alcotest.test_case "undel transforms like del" `Quick (fun () ->
        Alcotest.check op_testable "shifted by ins" (Op.undel 4 'u')
          (Transform.it (Op.undel 3 'u') (Op.ins ~pr:1 2 'z'));
        Alcotest.check op_testable "unshifted" (Op.undel 1 'u')
          (Transform.it (Op.undel 1 'u') (Op.ins ~pr:1 2 'z')));
  ]

(* ----- Vclock ----- *)

let vclock_tests =
  let open Vclock in
  [
    Alcotest.test_case "tick and get" `Quick (fun () ->
        let c = tick (tick empty 1) 1 in
        Alcotest.(check int) "site1" 2 (get c 1);
        Alcotest.(check int) "site2" 0 (get c 2));
    Alcotest.test_case "leq and concurrency" `Quick (fun () ->
        let a = of_list [ (1, 2) ] and b = of_list [ (1, 2); (2, 1) ] in
        Alcotest.(check bool) "a<=b" true (leq a b);
        Alcotest.(check bool) "b<=a" false (leq b a);
        let c = of_list [ (2, 3) ] in
        Alcotest.(check bool) "a||c" true (concurrent a c));
    Alcotest.test_case "merge is pointwise max" `Quick (fun () ->
        let a = of_list [ (1, 2); (2, 5) ] and b = of_list [ (1, 4); (3, 1) ] in
        Alcotest.(check (list (pair int int)))
          "merged"
          [ (1, 4); (2, 5); (3, 1) ]
          (to_list (merge a b)));
    Alcotest.test_case "empty leq everything" `Quick (fun () ->
        Alcotest.(check bool) "empty" true (leq empty (of_list [ (9, 9) ])));
    Alcotest.test_case "dominates_event" `Quick (fun () ->
        let c = of_list [ (1, 3) ] in
        Alcotest.(check bool) "covered" true (dominates_event c ~site:1 ~count:3);
        Alcotest.(check bool) "not covered" false (dominates_event c ~site:1 ~count:4);
        Alcotest.(check bool) "zero" true (dominates_event c ~site:7 ~count:0));
  ]

(* ----- Cursor ----- *)

let cursor_tests =
  [
    Alcotest.test_case "position shifts in visible coordinates" `Quick (fun () ->
        let d = Tdoc.of_string "abcdef" in
        Alcotest.(check int) "ins before" 4 (Cursor.transform_position d 3 (Op.ins 1 'x'));
        Alcotest.(check int) "ins at (right bias)" 4
          (Cursor.transform_position d 3 (Op.ins 3 'x'));
        Alcotest.(check int) "ins at (left bias)" 3
          (Cursor.transform_position_left_biased d 3 (Op.ins 3 'x'));
        Alcotest.(check int) "del before" 2
          (Cursor.transform_position d 3 (Op.del 1 'b'));
        Alcotest.(check int) "del after" 3 (Cursor.transform_position d 3 (Op.del 5 'f'));
        Alcotest.(check int) "up" 3 (Cursor.transform_position d 3 (Op.up 3 'd' 'D')));
    Alcotest.test_case "tombstones do not move cursors" `Quick (fun () ->
        (* "a(b)cdef": model pos 1 hidden; visible "acdef" *)
        let d = Tdoc.apply (Tdoc.of_string "abcdef") (Op.del 1 'b') in
        (* hiding the tombstone again moves nothing *)
        Alcotest.(check int) "stacked hide" 3
          (Cursor.transform_position d 3 (Op.del 1 'b'));
        (* a deletion beyond the tombstone maps to its visible slot *)
        Alcotest.(check int) "del maps through tombstone" 2
          (Cursor.transform_position d 3 (Op.del 2 'c'));
        (* revealing the tombstone inserts a visible element at slot 1 *)
        Alcotest.(check int) "undel reveals" 4
          (Cursor.transform_position d 3 (Op.undel 1 'b')));
    Alcotest.test_case "selection keeps orientation" `Quick (fun () ->
        let d = Tdoc.of_string "abcdef" in
        let s = { Cursor.anchor = 2; focus = 5 } in
        let s' = Cursor.transform_selection d s (Op.ins 3 'x') in
        Alcotest.(check int) "anchor" 2 s'.Cursor.anchor;
        Alcotest.(check int) "focus" 6 s'.Cursor.focus);
    Alcotest.test_case "transform_through folds with the evolving document" `Quick
      (fun () ->
        (* Ins at 0 pushes the cursor to 4; the deletion behind it (model
           position 6 after the insert) leaves it alone *)
        let d = Tdoc.of_string "abcdef" in
        Alcotest.(check int) "through" 4
          (Cursor.transform_through d 3 [ Op.ins 0 'a'; Op.del 6 'f' ]));
  ]

(* ----- Engine: multi-site convergence ----- *)

module E = Engine

type net = {
  mutable sites : char E.t array;
  mutable in_flight : (int * char Request.t) list; (* destination, request *)
}

let mk_net n init =
  {
    sites = Array.init n (fun i -> E.create ~eq:Char.equal ~site:(i + 1) (Tdoc.of_string init));
    in_flight = [];
  }

let net_generate net i op =
  let e, q = E.generate net.sites.(i) op in
  net.sites.(i) <- e;
  for j = 0 to Array.length net.sites - 1 do
    if j <> i then net.in_flight <- (j, q) :: net.in_flight
  done

let net_deliver_nth net k =
  let rec take i acc = function
    | [] -> None
    | m :: rest when i = 0 -> Some (m, List.rev_append acc rest)
    | m :: rest -> take (i - 1) (m :: acc) rest
  in
  match take k [] net.in_flight with
  | None -> ()
  | Some ((dest, q), rest) ->
    net.in_flight <- rest;
    net.sites.(dest) <- E.receive net.sites.(dest) q

let net_flush net =
  while net.in_flight <> [] do
    net_deliver_nth net 0
  done

let net_converged net =
  let d0 = E.document net.sites.(0) in
  Array.for_all (fun s -> Tdoc.equal_model Char.equal d0 (E.document s)) net.sites
  && Array.for_all (fun s -> E.pending s = 0) net.sites

(* Drive a random interleaving: the integer stream decides, at each step,
   whether to generate a fresh local op at a random site (in visible
   coordinates, as a user would) or deliver a random in-flight message. *)
let run_random_session ~sites ~ops_budget stream init =
  let net = mk_net sites init in
  let budget = ref ops_budget in
  let stream = ref stream in
  let next () =
    match !stream with
    | [] -> 0
    | x :: rest ->
      stream := rest;
      abs x
  in
  let step () =
    let can_gen = !budget > 0 in
    let can_deliver = net.in_flight <> [] in
    match (can_gen, can_deliver) with
    | false, false -> false
    | _ ->
      let gen_now = can_gen && ((not can_deliver) || next () mod 2 = 0) in
      if gen_now then begin
        let i = next () mod sites in
        let doc = E.document net.sites.(i) in
        let n = Tdoc.visible_length doc in
        let op =
          match (if n = 0 then 0 else next () mod 3) with
          | 0 -> Tdoc.ins_visible doc (next () mod (n + 1)) (Char.chr (97 + (next () mod 26)))
          | 1 -> Tdoc.del_visible doc (next () mod n)
          | _ -> Tdoc.up_visible doc (next () mod n) (Char.chr (65 + (next () mod 26)))
        in
        net_generate net i op;
        decr budget;
        true
      end
      else begin
        net_deliver_nth net (next () mod List.length net.in_flight);
        true
      end
  in
  while step () do
    ()
  done;
  net_flush net;
  net

let test_engine_convergence sites =
  qtest
    (Printf.sprintf "%d-site random sessions converge" sites)
    ~count:(if sites <= 2 then 800 else 500)
    QCheck2.Gen.(
      pair
        (string_size ~gen:gen_char (int_range 0 8))
        (list_size (int_range 20 200) (int_range 0 1_000_000)))
    (fun (init, stream) ->
      Printf.sprintf "init=%S stream=[%s]" init
        (String.concat ";" (List.map string_of_int stream)))
    (fun (init, stream) ->
      let net = run_random_session ~sites ~ops_budget:10 stream init in
      net_converged net)

let engine_unit_tests =
  [
    Alcotest.test_case "two sites, figure-1 exchange" `Quick (fun () ->
        let net = mk_net 2 "efecte" in
        net_generate net 0 (Op.ins 1 'f');
        net_generate net 1 (Op.del 5 'e');
        net_flush net;
        Alcotest.(check bool) "converged" true (net_converged net);
        Alcotest.(check string) "effect" "effect"
          (Tdoc.visible_string (E.document net.sites.(0))));
    Alcotest.test_case "duplicate delivery ignored" `Quick (fun () ->
        let a = E.create ~eq:Char.equal ~site:1 (Tdoc.of_string "ab") in
        let b = E.create ~eq:Char.equal ~site:2 (Tdoc.of_string "ab") in
        let _, q = E.generate a (Op.ins 0 'x') in
        let b = E.receive b q in
        let b = E.receive b q in
        Alcotest.(check string) "applied once" "xab"
          (Tdoc.visible_string (E.document b)));
    Alcotest.test_case "out-of-order delivery buffers" `Quick (fun () ->
        let a = E.create ~eq:Char.equal ~site:1 Tdoc.empty in
        let b = E.create ~eq:Char.equal ~site:2 Tdoc.empty in
        let a, q1 = E.generate a (Op.ins 0 'x') in
        let a, q2 = E.generate a (Op.ins 1 'y') in
        let b = E.receive b q2 in
        Alcotest.(check int) "buffered" 1 (E.pending b);
        Alcotest.(check string) "not applied" "" (Tdoc.visible_string (E.document b));
        let b = E.receive b q1 in
        Alcotest.(check int) "drained" 0 (E.pending b);
        Alcotest.(check string) "both applied" "xy" (Tdoc.visible_string (E.document b));
        Alcotest.(check string) "a" "xy" (Tdoc.visible_string (E.document a)));
    Alcotest.test_case "concurrent deletes of one element converge" `Quick (fun () ->
        let net = mk_net 3 "abc" in
        net_generate net 0 (Op.del 1 'b');
        net_generate net 1 (Op.del 1 'b');
        net_generate net 2 (Op.ins 3 'd');
        net_flush net;
        Alcotest.(check bool) "converged" true (net_converged net);
        Alcotest.(check string) "result" "acd"
          (Tdoc.visible_string (E.document net.sites.(0))));
  ]

(* ----- Oplog ----- *)

let mk_req ?(site = 1) ?(serial = 1) ?(v = 0) ?(flag = Request.Valid) ~ctx op =
  Request.make ~site ~serial ~op ~ctx ~policy_version:v ~flag ()

let oplog_tests =
  [
    Alcotest.test_case "append_local keeps canonical form" `Quick (fun () ->
        let h = Oplog.empty in
        let h = Oplog.append_local (mk_req ~serial:1 ~ctx:Vclock.empty (Op.ins 0 'a')) h in
        let h =
          Oplog.append_local
            (mk_req ~serial:2 ~ctx:(Vclock.of_list [ (1, 1) ]) (Op.del 0 'a'))
            h
        in
        let h =
          Oplog.append_local
            (mk_req ~serial:3 ~ctx:(Vclock.of_list [ (1, 2) ]) (Op.ins 1 'b'))
            h
        in
        Alcotest.(check bool) "canonical" true (Oplog.is_canonical h);
        Alcotest.(check int) "length" 3 (Oplog.length h));
    Alcotest.test_case "replaying a canonized local log reproduces the doc" `Quick
      (fun () ->
        let doc0 = Tdoc.of_string "hello" in
        let shapes = [ `Del 0; `Ins (0, 'H'); `Del 3; `Ins (4, 'O'); `Ins (5, '!') ] in
        let _, h, doc =
          List.fold_left
            (fun (i, h, doc) shape ->
              let op =
                match shape with
                | `Del v -> Tdoc.del_visible doc v
                | `Ins (v, c) -> Tdoc.ins_visible doc v c
              in
              let ctx = Vclock.of_list [ (1, i) ] in
              let q = mk_req ~serial:(i + 1) ~ctx op in
              (i + 1, Oplog.append_local q h, Tdoc.apply doc op))
            (0, Oplog.empty, doc0) shapes
        in
        let replayed = Tdoc.apply_all doc0 (Oplog.ops h) in
        Alcotest.check tdoc_testable "replay" doc replayed);
    Alcotest.test_case "undo of the last request restores the visible state" `Quick
      (fun () ->
        let doc0 = Tdoc.of_string "abc" in
        let q = mk_req ~serial:1 ~flag:Request.Tentative ~ctx:Vclock.empty (Op.ins 1 'x') in
        let h = Oplog.append_local q Oplog.empty in
        let doc1 = Tdoc.apply doc0 q.Request.op in
        (match Oplog.undo ~cancel_version:1 q.Request.id h with
         | None -> Alcotest.fail "undo failed"
         | Some (op, h') ->
           Alcotest.check tdoc_visible_testable "restored" doc0 (Tdoc.apply doc1 op);
           Alcotest.(check bool) "flagged invalid" true
             (match Oplog.find q.Request.id h' with
              | Some r -> r.Request.flag = Request.Invalid
              | None -> false);
           Alcotest.(check bool) "second undo refused" true
             (Oplog.undo ~cancel_version:1 q.Request.id h' = None)));
    Alcotest.test_case "undo in the middle cancels only that request" `Quick (fun () ->
        (* site 1 types "abc" by three inserts, then the middle insert is
           undone: "ac" remains, and replaying the log agrees. *)
        let doc0 = Tdoc.empty in
        let ops = [ Op.ins 0 'a'; Op.ins 1 'b'; Op.ins 2 'c' ] in
        let _, h, doc =
          List.fold_left
            (fun (i, h, doc) op ->
              let ctx = Vclock.of_list [ (1, i) ] in
              let q = mk_req ~serial:(i + 1) ~flag:Request.Tentative ~ctx op in
              (i + 1, Oplog.append_local q h, Tdoc.apply doc op))
            (0, Oplog.empty, doc0) ops
        in
        match Oplog.undo ~cancel_version:1 { Request.site = 1; serial = 2 } h with
        | None -> Alcotest.fail "undo failed"
        | Some (op, h') ->
          let doc' = Tdoc.apply doc op in
          Alcotest.(check string) "b hidden" "ac" (Tdoc.visible_string doc');
          Alcotest.check tdoc_testable "replay agrees" doc'
            (Tdoc.apply_all doc0 (Oplog.ops h')));
    Alcotest.test_case "append_rejected has no visible effect" `Quick (fun () ->
        (* a remote request is denied: it enters the log as tombstones *)
        let doc0 = Tdoc.of_string "abc" in
        let q = mk_req ~site:2 ~serial:1 ~flag:Request.Tentative ~ctx:Vclock.empty
            (Op.ins 1 'z')
        in
        let (op1, op2), h = Oplog.append_rejected ~cancel_version:1 q Oplog.empty in
        let doc = Tdoc.apply (Tdoc.apply doc0 op1) op2 in
        Alcotest.(check string) "visible unchanged" "abc" (Tdoc.visible_string doc);
        Alcotest.(check int) "model grew" 4 (Tdoc.model_length doc);
        Alcotest.(check bool) "flagged invalid" true
          (match Oplog.find q.Request.id h with
           | Some r -> r.Request.flag = Request.Invalid
           | None -> false));
    Alcotest.test_case "broadcast_form records direct dependency" `Quick (fun () ->
        let q1 = mk_req ~serial:1 ~ctx:Vclock.empty (Op.ins 0 'a') in
        let h = Oplog.append_local q1 Oplog.empty in
        let q2 = mk_req ~serial:2 ~ctx:(Vclock.of_list [ (1, 1) ]) (Op.ins 1 'b') in
        let q2' = Oplog.broadcast_form q2 h in
        Alcotest.(check bool) "dep set" true
          (match q2'.Request.dep with
           | Some d -> Request.id_equal d q1.Request.id
           | None -> false));
    Alcotest.test_case "set_flag validates a tentative request" `Quick (fun () ->
        let q = mk_req ~serial:1 ~flag:Request.Tentative ~ctx:Vclock.empty (Op.ins 0 'a') in
        let h = Oplog.append_local q Oplog.empty in
        Alcotest.(check int) "one tentative" 1 (List.length (Oplog.tentative_requests h));
        let h = Oplog.set_flag q.Request.id Request.Valid h in
        Alcotest.(check int) "none tentative" 0
          (List.length (Oplog.tentative_requests h)));
  ]

let () =
  Alcotest.run "dce_ot"
    [
      ("op", op_unit_tests @ [ test_inverse_cancels ]);
      ("stree", stree_tests);
      ("tdoc", tdoc_unit_tests @ tdoc_boundary_tests);
      ("tdoc-differential", differential_tests);
      ("document", doc_unit_tests @ [ test_doc_impl_equivalence ]);
      ( "transform",
        transform_unit_tests
        @ [
            test_tp1;
            test_tp2;
            test_three_way_convergence;
            test_et_inverts_it;
            test_canonize_transpose;
          ] );
      ("vclock", vclock_tests);
      ("cursor", cursor_tests);
      ("oplog", oplog_tests);
      ( "engine",
        engine_unit_tests @ [ test_engine_convergence 2; test_engine_convergence 3 ] );
    ]
