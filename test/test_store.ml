(* Tests for the durable store: WAL torn-tail recovery, atomic snapshot
   generations, the combined store's fallback rules, and the controller
   journal — up to the property the subsystem exists for: kill the
   process at any point, reopen the directory, and the recovered
   controller fingerprints identical to the one that died.  The last
   group also pins the contrast the design documents: [rejoin] loses
   the tentative edit that never reached the wire, the journal does
   not. *)

open Dce_core
module Tdoc = Dce_ot.Tdoc
module Codec = Dce_wire.Codec
module Proto = Dce_wire.Proto
module Wal = Dce_store.Wal
module Snapshot = Dce_store.Snapshot
module Store = Dce_store.Store
module Persist = Dce_store.Persist
module Rng = Dce_sim.Rng
module Convergence = Dce_sim.Convergence
open Helpers

(* ----- scratch directories and fault injection ----- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dce-store-test-%d-%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

(* Every test owns a scratch directory and removes it however it exits. *)
let in_dir f () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let frame_len payload = String.length (Codec.frame payload)

let file_size path = (Unix.stat path).Unix.st_size

let truncate_by path n =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (max 0 (file_size path - n));
  Unix.close fd

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5a));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let wal_path dir gen = Filename.concat dir (Printf.sprintf "wal-%010d.log" gen)

let snap_path dir gen = Filename.concat dir (Snapshot.filename gen)

(* ----- Wal ----- *)

let wal_tests =
  [
    Alcotest.test_case "round-trips records under every fsync policy" `Quick
      (in_dir (fun dir ->
           List.iter
             (fun policy ->
               let path = Filename.concat dir "wal.log" in
               (try Sys.remove path with Sys_error _ -> ());
               let w, r0 = ok_exn "open" (Wal.openfile ~fsync:policy path) in
               Alcotest.(check (list string)) "fresh log is empty" [] r0.Wal.records;
               let records = [ "alpha"; ""; String.make 2000 'z' ] in
               List.iter (Wal.append w) records;
               Alcotest.(check int) "records_written" 3 (Wal.records_written w);
               Wal.close w;
               Wal.close w;
               (* close is idempotent *)
               let w, r = ok_exn "reopen" (Wal.openfile ~fsync:policy path) in
               Alcotest.(check (list string)) "replayed oldest first" records r.Wal.records;
               Alcotest.(check int) "clean tail" 0 r.Wal.truncated_bytes;
               Alcotest.(check int)
                 "valid_bytes is the whole file" (file_size path) r.Wal.valid_bytes;
               Wal.close w)
             [ Wal.Always; Wal.Interval 2; Wal.Never ]));
    Alcotest.test_case "torn tail is dropped and appending continues" `Quick
      (in_dir (fun dir ->
           let path = Filename.concat dir "wal.log" in
           let records = List.init 5 (Printf.sprintf "record-%d") in
           let w, _ = ok_exn "open" (Wal.openfile path) in
           List.iter (Wal.append w) records;
           Wal.close w;
           (* rip off part of the last frame, as a crash mid-write would *)
           truncate_by path 3;
           let w, r = ok_exn "reopen torn" (Wal.openfile path) in
           Alcotest.(check (list string))
             "longest valid prefix survives"
             [ "record-0"; "record-1"; "record-2"; "record-3" ]
             r.Wal.records;
           Alcotest.(check int)
             "exactly the torn frame is gone"
             (frame_len "record-4" - 3)
             r.Wal.truncated_bytes;
           Wal.append w "record-5";
           Wal.close w;
           let w, r = ok_exn "reopen again" (Wal.openfile path) in
           Alcotest.(check (list string))
             "appends after truncation land cleanly"
             [ "record-0"; "record-1"; "record-2"; "record-3"; "record-5" ]
             r.Wal.records;
           Alcotest.(check int) "clean this time" 0 r.Wal.truncated_bytes;
           Wal.close w));
    Alcotest.test_case "mid-file corruption truncates from the bad frame on" `Quick
      (in_dir (fun dir ->
           let path = Filename.concat dir "wal.log" in
           let records = List.init 5 (Printf.sprintf "record-%d") in
           let w, _ = ok_exn "open" (Wal.openfile path) in
           List.iter (Wal.append w) records;
           Wal.close w;
           (* flip a byte inside the third record's frame: everything
              from there on is untrusted and must go *)
           let off = frame_len "record-0" + frame_len "record-1" + 4 in
           flip_byte path off;
           let w, r = ok_exn "reopen corrupt" (Wal.openfile path) in
           Alcotest.(check (list string))
             "records before the corruption survive"
             [ "record-0"; "record-1" ]
             r.Wal.records;
           Alcotest.(check bool) "tail dropped" true (r.Wal.truncated_bytes > 0);
           Alcotest.(check int)
             "file physically truncated to the valid prefix"
             (frame_len "record-0" + frame_len "record-1")
             (file_size path);
           Wal.close w));
    Alcotest.test_case "a file of pure garbage recovers to empty" `Quick
      (in_dir (fun dir ->
           let path = Filename.concat dir "wal.log" in
           let oc = open_out_bin path in
           output_string oc "this was never a frame, not even close";
           close_out oc;
           let size = file_size path in
           let w, r = ok_exn "open garbage" (Wal.openfile path) in
           Alcotest.(check (list string)) "nothing salvaged" [] r.Wal.records;
           Alcotest.(check int) "everything dropped" size r.Wal.truncated_bytes;
           Wal.append w "first real record";
           Wal.close w;
           let w, r = ok_exn "reopen" (Wal.openfile path) in
           Alcotest.(check (list string))
             "log usable afterwards" [ "first real record" ] r.Wal.records;
           Wal.close w));
  ]

(* ----- Wal: adversarial recovery property ----- *)

(* Cumulative end offset of each record's frame, oldest first. *)
let frame_ends records =
  List.rev
    (snd
       (List.fold_left
          (fun (off, acc) r ->
            let e = off + frame_len r in
            (e, e :: acc))
          (0, []) records))

(* How many whole frames fit in the first [size] bytes. *)
let fit_count records size =
  List.length (List.filter (fun e -> e <= size) (frame_ends records))

let take k l = List.filteri (fun i _ -> i < k) l

(* Longest-valid-prefix semantics under layered damage: write a batch,
   tear the tail, recover and append a second batch, then flip a byte
   {e inside} the surviving prefix and tear the tail again — a
   double-torn file with mid-prefix corruption.  Whatever the damage,
   [Wal.openfile] must recover exactly the frames before the first
   damaged byte, physically truncate the file to that prefix, and
   accept appends on top of it. *)
let adversarial_recovery_runs (batch1, batch2, tear1, flip, tear2) =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "wal.log" in
  let w, _ = ok_exn "open" (Wal.openfile path) in
  List.iter (Wal.append w) batch1;
  Wal.close w;
  (* first torn tail: rip up to one frame's worth off the end *)
  let last1 = List.nth batch1 (List.length batch1 - 1) in
  truncate_by path (tear1 mod frame_len last1);
  let keep1 = fit_count batch1 (file_size path) in
  let w, r = ok_exn "reopen after tear 1" (Wal.openfile path) in
  Alcotest.(check (list string))
    "first tear: longest valid prefix" (take keep1 batch1) r.Wal.records;
  List.iter (Wal.append w) batch2;
  Wal.close w;
  let survivors = take keep1 batch1 @ batch2 in
  let nsurv = List.length survivors in
  (* corruption inside the prefix, not just the tail: flip one byte of
     a uniformly chosen surviving frame *)
  let ends = frame_ends survivors in
  let fidx = flip mod nsurv in
  let fstart = if fidx = 0 then 0 else List.nth ends (fidx - 1) in
  let flen = List.nth ends fidx - fstart in
  flip_byte path (fstart + (flip / nsurv mod flen));
  (* second torn tail on top of the flip *)
  let lastr = List.nth survivors (nsurv - 1) in
  truncate_by path (tear2 mod frame_len lastr);
  (* recovery must stop at the first damaged byte: the flipped frame or
     the torn tail, whichever comes first *)
  let expect = min fidx (fit_count survivors (file_size path)) in
  let w, r = ok_exn "reopen after flip + tear 2" (Wal.openfile path) in
  Alcotest.(check (list string))
    "double tear + flip: longest valid prefix" (take expect survivors)
    r.Wal.records;
  Alcotest.(check int)
    "valid_bytes is exactly the kept prefix"
    (List.fold_left (fun a rec_ -> a + frame_len rec_) 0 (take expect survivors))
    r.Wal.valid_bytes;
  Alcotest.(check int)
    "file physically truncated to the valid prefix" r.Wal.valid_bytes
    (file_size path);
  (* the recovered log is a working log *)
  Wal.append w "post-damage";
  Wal.close w;
  let w, r = ok_exn "final reopen" (Wal.openfile path) in
  Alcotest.(check (list string))
    "appends after recovery land cleanly"
    (take expect survivors @ [ "post-damage" ])
    r.Wal.records;
  Alcotest.(check int) "final file is clean" 0 r.Wal.truncated_bytes;
  Wal.close w;
  true

let wal_adversarial_tests =
  let gen =
    QCheck2.Gen.(
      let record = string_size ~gen:(char_range 'a' 'z') (int_bound 40) in
      let batch = list_size (int_range 1 6) record in
      tup5 batch batch (int_bound 10_000) (int_bound 1_000_000) (int_bound 10_000))
  in
  let print (b1, b2, t1, flip, t2) =
    let show b = String.concat ";" (List.map (Printf.sprintf "%S") b) in
    Printf.sprintf "batch1=[%s] batch2=[%s] tear1=%d flip=%d tear2=%d" (show b1)
      (show b2) t1 flip t2
  in
  [
    qtest "double-torn, mid-prefix-corrupted logs recover the longest valid prefix"
      ~count:120 gen print adversarial_recovery_runs;
  ]

(* ----- Snapshot ----- *)

let snapshot_tests =
  [
    Alcotest.test_case "write, load, latest, generations" `Quick
      (in_dir (fun dir ->
           ok_exn "write 1" (Snapshot.write ~dir ~gen:1 "one");
           ok_exn "write 3" (Snapshot.write ~dir ~gen:3 "three");
           ok_exn "write 7" (Snapshot.write ~dir ~gen:7 "seven");
           Alcotest.(check (list int)) "ascending" [ 1; 3; 7 ] (Snapshot.generations ~dir ());
           Alcotest.(check string) "load one gen" "three" (ok_exn "load" (Snapshot.load ~dir ~gen:3 ()));
           (match Snapshot.load_latest ~dir () with
            | Some (7, "seven") -> ()
            | Some (g, _) -> Alcotest.failf "latest picked generation %d" g
            | None -> Alcotest.fail "no snapshot found");
           match Snapshot.load ~dir ~gen:5 () with
           | Error _ -> ()
           | Ok _ -> Alcotest.fail "loaded a generation that does not exist"));
    Alcotest.test_case "a corrupt newest snapshot falls back to the previous" `Quick
      (in_dir (fun dir ->
           ok_exn "write 3" (Snapshot.write ~dir ~gen:3 "three");
           ok_exn "write 7" (Snapshot.write ~dir ~gen:7 "seven");
           flip_byte (snap_path dir 7) (file_size (snap_path dir 7) / 2);
           (match Snapshot.load_latest ~dir () with
            | Some (3, "three") -> ()
            | _ -> Alcotest.fail "expected fallback to generation 3");
           (* a torn (half-written-then-renamed-by-hand) file too *)
           truncate_by (snap_path dir 3) 2;
           Alcotest.(check bool)
             "nothing valid left" true (Snapshot.load_latest ~dir () = None)));
    Alcotest.test_case "prune keeps the newest, never fewer than two" `Quick
      (in_dir (fun dir ->
           List.iter
             (fun g -> ok_exn "write" (Snapshot.write ~dir ~gen:g (string_of_int g)))
             [ 1; 2; 3; 4; 5 ];
           Snapshot.prune ~dir ~keep:3 ();
           Alcotest.(check (list int)) "three newest" [ 3; 4; 5 ] (Snapshot.generations ~dir ());
           Snapshot.prune ~dir ~keep:1 ();
           Alcotest.(check (list int))
             "the fallback pair is untouchable" [ 4; 5 ] (Snapshot.generations ~dir ())));
  ]

(* ----- Store ----- *)

let cfg ?(fsync = Wal.Never) ?(snapshot_every = 1024) ?(keep_generations = 2) () =
  { Store.fsync; snapshot_every; keep_generations }

let store_tests =
  [
    Alcotest.test_case "an empty directory opens at generation zero" `Quick
      (in_dir (fun dir ->
           let s, r = ok_exn "open" (Store.opendir ~config:(cfg ()) dir) in
           Alcotest.(check int) "generation" 0 r.Store.generation;
           Alcotest.(check bool) "no snapshot" true (r.Store.snapshot = None);
           Alcotest.(check (list string)) "no records" [] r.Store.wal_records;
           Store.append s "a";
           Store.append s "b";
           Store.close s;
           let s, r = ok_exn "reopen" (Store.opendir ~config:(cfg ()) dir) in
           Alcotest.(check (list string)) "replayed" [ "a"; "b" ] r.Store.wal_records;
           Alcotest.(check int) "still generation zero" 0 r.Store.generation;
           Store.close s));
    Alcotest.test_case "checkpoint cuts a generation; recovery resumes from it" `Quick
      (in_dir (fun dir ->
           let config = cfg ~snapshot_every:3 () in
           let s, _ = ok_exn "open" (Store.opendir ~config dir) in
           List.iter (Store.append s) [ "a"; "b" ];
           Alcotest.(check bool) "not yet due" false (Store.should_checkpoint s);
           Store.append s "c";
           Alcotest.(check bool) "due after snapshot_every" true (Store.should_checkpoint s);
           ok_exn "checkpoint" (Store.checkpoint s "SNAP-ONE");
           Alcotest.(check int) "new generation" 1 (Store.generation s);
           Alcotest.(check int) "fresh log" 0 (Store.records_since_checkpoint s);
           List.iter (Store.append s) [ "d"; "e" ];
           Store.close s;
           let s, r = ok_exn "reopen" (Store.opendir ~config dir) in
           Alcotest.(check int) "recovered generation" 1 r.Store.generation;
           Alcotest.(check bool) "snapshot back" true (r.Store.snapshot = Some "SNAP-ONE");
           Alcotest.(check (list string))
             "only the records since the cut" [ "d"; "e" ] r.Store.wal_records;
           Store.close s));
    Alcotest.test_case "corrupt newest snapshot falls back to generation g-1 and its log"
      `Quick
      (in_dir (fun dir ->
           let config = cfg () in
           let s, _ = ok_exn "open" (Store.opendir ~config dir) in
           List.iter (Store.append s) [ "a"; "b" ];
           ok_exn "checkpoint 1" (Store.checkpoint s "S1");
           List.iter (Store.append s) [ "c"; "d" ];
           ok_exn "checkpoint 2" (Store.checkpoint s "S2");
           Store.append s "e";
           Store.close s;
           (* checkpoint 2 must have reaped wal-0 (two newer snapshots
              supersede it) but kept wal-1, the fallback's replay log *)
           Alcotest.(check bool) "wal-0 reaped" false (Sys.file_exists (wal_path dir 0));
           Alcotest.(check bool) "wal-1 kept" true (Sys.file_exists (wal_path dir 1));
           flip_byte (snap_path dir 2) (file_size (snap_path dir 2) / 2);
           let s, r = ok_exn "reopen" (Store.opendir ~config dir) in
           Alcotest.(check int) "fell back one generation" 1 r.Store.generation;
           Alcotest.(check bool) "previous snapshot" true (r.Store.snapshot = Some "S1");
           Alcotest.(check (list string))
             "replays that generation's records — exactly the state at checkpoint 2"
             [ "c"; "d" ] r.Store.wal_records;
           Store.close s));
    Alcotest.test_case "checkpoint clears a stale next-generation log" `Quick
      (in_dir (fun dir ->
           (* a previous life may have left wal-1 behind (fallback
              recovery ran from generation 0); its records are not part
              of snapshot 1 and must not resurface after the cut *)
           let s, _ = ok_exn "open" (Store.opendir ~config:(cfg ()) dir) in
           let stale, _ = ok_exn "stale wal" (Wal.openfile (wal_path dir 1)) in
           Wal.append stale "ghost from a previous life";
           Wal.close stale;
           Store.append s "real";
           ok_exn "checkpoint" (Store.checkpoint s "S1");
           Store.close s;
           let s, r = ok_exn "reopen" (Store.opendir ~config:(cfg ()) dir) in
           Alcotest.(check (list string)) "no ghost records" [] r.Store.wal_records;
           Alcotest.(check bool) "snapshot intact" true (r.Store.snapshot = Some "S1");
           Store.close s));
  ]

(* ----- Persist: the controller journal ----- *)

let policy_for users =
  Policy.make ~users [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]

let mk_ctrl ?(users = [ 0; 1; 2 ]) ~site text =
  Controller.create ~eq:Char.equal ~site ~admin:0 ~policy:(policy_for users)
    (Tdoc.of_string text)

let fp c = Proto.fingerprint Proto.char_codec c

let open_journal ?(config = cfg ()) dir =
  Persist.opendir ~config ~eq:Char.equal ~codec:Proto.char_codec dir

let gen_accept c op =
  match Controller.generate c op with
  | c, Controller.Accepted m -> (c, m)
  | _, Controller.Denied e -> Alcotest.failf "edit denied: %s" e

let persist_tests =
  [
    Alcotest.test_case "a fresh store refuses records before the first checkpoint"
      `Quick
      (in_dir (fun dir ->
           let j, r = ok_exn "open" (open_journal dir) in
           Alcotest.(check bool) "no controller yet" true (r.Persist.controller = None);
           let c = mk_ctrl ~site:0 "ab" in
           let op = Tdoc.ins_visible (Controller.document c) 0 'x' in
           (match Persist.record j (Persist.Generated op) with
            | () -> Alcotest.fail "recorded onto a store with no base snapshot"
            | exception Invalid_argument _ -> ());
           ok_exn "checkpoint" (Persist.checkpoint j c);
           Persist.record j (Persist.Generated op);
           Persist.close j));
    Alcotest.test_case "log records without any snapshot refuse to open" `Quick
      (in_dir (fun dir ->
           (* not constructible through Persist (record is gated on the
              checkpoint) — build the broken layout with the raw store *)
           let s, _ = ok_exn "open raw" (Store.opendir dir) in
           Store.append s "orphan";
           Store.close s;
           match open_journal dir with
           | Error _ -> ()
           | Ok (j, _) ->
             Persist.close j;
             Alcotest.fail "opened a log that has no snapshot to replay onto"));
    Alcotest.test_case "replay is fingerprint-exact across all three record kinds"
      `Quick
      (in_dir (fun dir ->
           let j, _ = ok_exn "open" (open_journal dir) in
           let c0 = ref (mk_ctrl ~site:0 "base") in
           let c1 = ref (mk_ctrl ~site:1 "base") in
           ok_exn "checkpoint" (Persist.checkpoint j !c0);
           let live_emitted = ref [] in
           (* Generated: the administrator's own edit *)
           let op = Tdoc.ins_visible (Controller.document !c0) 0 'a' in
           let c, m = gen_accept !c0 op in
           c0 := c;
           Persist.record j (Persist.Generated op);
           live_emitted := !live_emitted @ [ m ];
           (* Admin_cmd: a restrictive authorization *)
           let aop =
             Admin_op.Add_auth
               (0, Auth.deny [ Subject.User 2 ] [ Docobj.Whole ] [ Right.Delete ])
           in
           (match Controller.admin_update !c0 aop with
            | Ok (c, m) ->
              c0 := c;
              Persist.record j (Persist.Admin_cmd aop);
              live_emitted := !live_emitted @ [ m ]
            | Error e -> Alcotest.failf "admin_update: %s" e);
           (* Received: another site's edit, which the administrator
              validates on arrival *)
           let op1 = Tdoc.ins_visible (Controller.document !c1) 0 'b' in
           let c, m1 = gen_accept !c1 op1 in
           c1 := c;
           let c, out = Controller.receive !c0 m1 in
           c0 := c;
           Persist.record j (Persist.Received m1);
           live_emitted := !live_emitted @ out;
           Alcotest.(check bool) "the arrival was validated" true (out <> []);
           let live = fp !c0 in
           Persist.close j;
           let j, r = ok_exn "reopen" (open_journal dir) in
           (match r.Persist.controller with
            | None -> Alcotest.fail "no controller recovered"
            | Some c -> Alcotest.(check string) "exact replay" live (fp c));
           Alcotest.(check int) "all records replayed" 3 r.Persist.replayed;
           let enc = List.map (Proto.encode_message Proto.char_codec) in
           Alcotest.(check (list string))
             "replay re-emits the live broadcasts, in order"
             (enc !live_emitted)
             (enc r.Persist.emitted);
           Persist.close j));
    Alcotest.test_case
      "checkpoint cadence prunes generations; a corrupt snapshot costs nothing" `Quick
      (in_dir (fun dir ->
           let config = cfg ~snapshot_every:2 () in
           let j, _ = ok_exn "open" (open_journal ~config dir) in
           let c0 = ref (mk_ctrl ~site:0 "") in
           ok_exn "checkpoint" (Persist.checkpoint j !c0);
           for _ = 1 to 2 do
             for _ = 1 to 2 do
               let op =
                 Tdoc.ins_visible (Controller.document !c0)
                   (Tdoc.visible_length (Controller.document !c0))
                   'k'
               in
               let c, _m = gen_accept !c0 op in
               c0 := c;
               Persist.record j (Persist.Generated op)
             done;
             Alcotest.(check bool)
               "cadence reached" true
               (ok_exn "maybe" (Persist.maybe_checkpoint j !c0))
           done;
           Alcotest.(check int) "three generations cut" 3 (Persist.generation j);
           Alcotest.(check (list int))
             "only two snapshots retained" [ 2; 3 ] (Snapshot.generations ~dir ());
           Alcotest.(check bool) "wal-1 reaped" false (Sys.file_exists (wal_path dir 1));
           let live = fp !c0 in
           Persist.close j;
           (* kill the newest snapshot: recovery must fall back to
              snapshot 2 plus wal-2 — whose records end exactly where
              snapshot 3 was cut, so the state is still bit-identical *)
           flip_byte (snap_path dir 3) (file_size (snap_path dir 3) / 2);
           let j, r = ok_exn "reopen" (open_journal ~config dir) in
           Alcotest.(check int) "fell back a generation" 2 (Persist.generation j);
           Alcotest.(check int) "replayed that generation's log" 2 r.Persist.replayed;
           (match r.Persist.controller with
            | None -> Alcotest.fail "no controller recovered"
            | Some c ->
              Alcotest.(check string) "fallback is still exact" live (fp c));
           Persist.close j));
  ]

(* ----- recovery: the end-to-end properties ----- *)

(* Deterministic pseudo-random session driver shared by the property
   tests: one admin site (journaled) and one plain peer, messages held
   in explicit queues so a test controls exactly what is in flight. *)
let letter k = Char.chr (Char.code 'a' + (k mod 26))

let random_op rand c =
  let doc = Controller.document c in
  let n = Tdoc.visible_length doc in
  if n = 0 then Tdoc.ins_visible doc 0 (letter (rand 26))
  else
    match rand 10 with
    | 0 | 1 | 2 -> Tdoc.del_visible doc (rand n)
    | 3 | 4 -> Tdoc.up_visible doc (rand n) (Char.uppercase_ascii (letter (rand 26)))
    | _ -> Tdoc.ins_visible doc (rand (n + 1)) (letter (rand 26))

let crash_replay_runs (seed, events) =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = cfg ~fsync:Wal.Never ~snapshot_every:7 () in
  let rng = ref (Rng.of_int seed) in
  let rand n =
    let v, r = Rng.int !rng n in
    rng := r;
    v
  in
  let j, r0 = ok_exn "open" (open_journal ~config dir) in
  if r0.Persist.controller <> None then Alcotest.fail "fresh store not empty";
  let c0 = ref (mk_ctrl ~users:[ 0; 1 ] ~site:0 "seed") in
  let c1 = ref (mk_ctrl ~users:[ 0; 1 ] ~site:1 "seed") in
  ok_exn "checkpoint" (Persist.checkpoint j !c0);
  let to0 = Queue.create () and to1 = Queue.create () in
  let step () =
    match rand 5 with
    | 0 | 1 ->
      let op = random_op rand !c0 in
      (match Controller.generate !c0 op with
       | c, Controller.Accepted m ->
         c0 := c;
         Persist.record j (Persist.Generated op);
         Queue.add m to1
       | c, Controller.Denied _ -> c0 := c)
    | 2 ->
      let op = random_op rand !c1 in
      (match Controller.generate !c1 op with
       | c, Controller.Accepted m ->
         c1 := c;
         Queue.add m to0
       | c, Controller.Denied _ -> c1 := c)
    | 3 ->
      let negatives =
        Controller.policy !c0 |> Policy.auths
        |> List.mapi (fun i a -> (i, a))
        |> List.filter (fun (_, a) -> Auth.is_restrictive a)
      in
      let aop =
        if negatives = [] || rand 10 < 6 then
          Admin_op.Add_auth
            ( 0,
              Auth.deny [ Subject.User 1 ] [ Docobj.Whole ]
                [ List.nth [ Right.Insert; Right.Delete; Right.Update ] (rand 3) ] )
        else
          let i, _ = List.nth negatives (rand (List.length negatives)) in
          Admin_op.Del_auth i
      in
      (match Controller.admin_update !c0 aop with
       | Ok (c, m) ->
         c0 := c;
         Persist.record j (Persist.Admin_cmd aop);
         Queue.add m to1
       | Error _ -> ())
    | _ ->
      if not (Queue.is_empty to0) then begin
        let m = Queue.take to0 in
        let c, out = Controller.receive !c0 m in
        c0 := c;
        Persist.record j (Persist.Received m);
        List.iter (fun m -> Queue.add m to1) out
      end
      else if not (Queue.is_empty to1) then begin
        let m = Queue.take to1 in
        let c, out = Controller.receive !c1 m in
        c1 := c;
        List.iter (fun m -> Queue.add m to0) out
      end
  in
  for _ = 1 to events do
    step ();
    ignore (ok_exn "maybe_checkpoint" (Persist.maybe_checkpoint j !c0))
  done;
  let live = fp !c0 in
  Persist.close j;
  let j, r = ok_exn "reopen" (open_journal ~config dir) in
  Persist.close j;
  match r.Persist.controller with
  | None -> false
  | Some c -> fp c = live

let recovery_tests =
  [
    qtest "crash at any point, reopen, fingerprint-identical state" ~count:40
      QCheck2.Gen.(pair (int_bound 99999) (int_bound 45))
      (fun (seed, events) -> Printf.sprintf "seed %d, crash after %d events" seed events)
      crash_replay_runs;
    Alcotest.test_case "torn-tail recovery plus catch-up reconverges the group" `Quick
      (in_dir (fun dir ->
           let config = cfg ~snapshot_every:100 () in
           let j = ref (fst (ok_exn "open" (open_journal ~config dir))) in
           let sites =
             [| ref (mk_ctrl ~site:0 "base");
                ref (mk_ctrl ~site:1 "base");
                ref (mk_ctrl ~site:2 "base")
             |]
           in
           ok_exn "checkpoint" (Persist.checkpoint !j !(sites.(2)));
           (* immediate full-mesh propagation, journaling site 2 *)
           let rec bcast ~from msgs =
             List.iter
               (fun m ->
                 Array.iteri
                   (fun i c ->
                     if i <> from then begin
                       let c', out = Controller.receive !c m in
                       c := c';
                       if i = 2 then Persist.record !j (Persist.Received m);
                       bcast ~from:i out
                     end)
                   sites)
               msgs
           in
           let edit i ch =
             let c = sites.(i) in
             let op = Tdoc.ins_visible (Controller.document !c) 0 ch in
             let c', m = gen_accept !c op in
             c := c';
             if i = 2 then Persist.record !j (Persist.Generated op);
             bcast ~from:i [ m ]
           in
           edit 2 'x';
           edit 0 'y';
           edit 1 'z';
           edit 2 'w';
           Alcotest.(check bool)
             "session converged before the crash" true
             (Convergence.ok (Convergence.check (List.map ( ! ) (Array.to_list sites))));
           (* kill -9 site 2 and tear its log the way a crash would *)
           let gen = Persist.generation !j in
           Persist.close !j;
           truncate_by (wal_path dir gen) 7;
           let j2, r = ok_exn "reopen torn" (open_journal ~config dir) in
           j := j2;
           Alcotest.(check bool) "tail was dropped" true (r.Persist.truncated_bytes > 0);
           let victim =
             match r.Persist.controller with
             | Some c -> c
             | None -> Alcotest.fail "recovery lost the controller entirely"
           in
           (* reconnect: catch up from a donor that has seen everything,
              then let the returned re-broadcasts settle *)
           let caught, out = Controller.catch_up victim !(sites.(0)) in
           sites.(2) := caught;
           ok_exn "post-catch-up checkpoint" (Persist.checkpoint !j caught);
           bcast ~from:2 out;
           let all = List.map ( ! ) (Array.to_list sites) in
           let report = Convergence.check all in
           if not (Convergence.ok report) then
             Alcotest.failf "recovered session diverged:@.%a@.%a" Convergence.pp report
               Convergence.pp_diff all;
           Persist.close !j));
    Alcotest.test_case
      "donor compacted past a resurrected joiner: full-snapshot fallback converges"
      `Quick
      (in_dir (fun dir ->
           let module Vclock = Dce_ot.Vclock in
           (* Site 2 checkpoints early, then keeps editing without its
              journal seeing any of it (a crash that loses the WAL tail).
              The survivors exchange stability beacons and compact past
              that stale cut; the resurrected site must then be served by
              the degraded catch-up path — adopt the donor's snapshot,
              re-feed its own unacked work — and still converge. *)
           let j = ref (fst (ok_exn "open" (open_journal dir))) in
           let c0 = ref (mk_ctrl ~site:0 "base") in
           let c1 = ref (mk_ctrl ~site:1 "base") in
           let c2 = ref (mk_ctrl ~site:2 "base") in
           let all = [ (0, c0); (1, c1); (2, c2) ] in
           let rec bcast ~from msgs =
             List.iter
               (fun m ->
                 List.iter
                   (fun (i, c) ->
                     if i <> from then begin
                       let c', out = Controller.receive !c m in
                       c := c';
                       bcast ~from:i out
                     end)
                   all)
               msgs
           in
           let edit i ch =
             let c = List.assoc i all in
             let c', m = gen_accept !c (Tdoc.ins_visible (Controller.document !c) 0 ch) in
             c := c';
             bcast ~from:i [ m ]
           in
           (* the durable cut: site 2 has seen nothing yet *)
           ok_exn "early checkpoint" (Persist.checkpoint !j !c2);
           edit 2 'x';
           edit 0 'y';
           edit 1 'z';
           edit 2 'w';
           (* survivors absorb everyone's beacons (site 2 was still up
              when it last beaconed) and compact: the session is
              quiescent, so the frontier reaches the full clock *)
           List.iter
             (fun (i, c) ->
               List.iter
                 (fun (p, pc) ->
                   if p <> i then
                     let clock, version = Controller.beacon !pc in
                     c := Controller.receive_beacon !c ~peer:p ~clock ~version)
                 all;
               c := Controller.compact !c)
             all;
           Alcotest.(check int) "donor window emptied" 0 (Controller.window_len !c0);
           (* kill -9 site 2; resurrect it from the stale journal *)
           Persist.close !j;
           let j2, r = ok_exn "reopen" (open_journal dir) in
           j := j2;
           let victim =
             match r.Persist.controller with
             | Some c -> c
             | None -> Alcotest.fail "no controller recovered"
           in
           Alcotest.(check string) "resurrected state predates everything" "base"
             (Tdoc.visible_string (Controller.document victim));
           Alcotest.(check bool) "donor really compacted past the joiner" false
             (Vclock.leq (Controller.compacted_upto !c0) (Controller.clock victim));
           (* catch up from the compacted donor: the suffix it would need
              is gone, so the fallback adopts the donor's full state *)
           let caught, out = Controller.catch_up victim !c0 in
           c2 := caught;
           ok_exn "post-fallback checkpoint" (Persist.checkpoint !j caught);
           bcast ~from:2 out;
           let final = [ !c0; !c1; !c2 ] in
           let report = Convergence.check final in
           if not (Convergence.ok report) then
             Alcotest.failf "fallback diverged:@.%a@.%a" Convergence.pp report
               Convergence.pp_diff final;
           Alcotest.(check string) "document adopted"
             (Tdoc.visible_string (Controller.document !c0))
             (Tdoc.visible_string (Controller.document !c2));
           Persist.close !j));
    Alcotest.test_case "checkpoint_clock tracks the durable cut" `Quick
      (in_dir (fun dir ->
           let j, r = ok_exn "open" (open_journal dir) in
           Alcotest.(check bool) "fresh store has no durable cut" true
             (r.Persist.controller = None && Persist.checkpoint_clock j = None);
           let c = mk_ctrl ~site:2 "ab" in
           ok_exn "checkpoint" (Persist.checkpoint j c);
           Alcotest.(check bool) "cut is the snapshot clock" true
             (Persist.checkpoint_clock j = Some (Controller.clock c));
           let c', _ = gen_accept c (Tdoc.ins_visible (Controller.document c) 0 'k') in
           ok_exn "checkpoint 2" (Persist.checkpoint j c');
           Alcotest.(check bool) "cut advances with the snapshot" true
             (Persist.checkpoint_clock j = Some (Controller.clock c'));
           Persist.close j;
           (* reopen: the cut is the recovered snapshot's clock, before
              WAL replay *)
           let j, _ = ok_exn "reopen" (open_journal dir) in
           Alcotest.(check bool) "cut survives reopen" true
             (Persist.checkpoint_clock j = Some (Controller.clock c'));
           Persist.close j));
    Alcotest.test_case "rejoin loses the unsent edit; the journal does not" `Quick
      (in_dir (fun dir ->
           let j, _ = ok_exn "open" (open_journal dir) in
           let c0 = ref (mk_ctrl ~site:0 "ab") in
           let c2 = ref (mk_ctrl ~site:2 "ab") in
           ok_exn "checkpoint" (Persist.checkpoint j !c2);
           (* site 2 types 'Z'; the process dies before the message
              reaches the wire *)
           let op = Tdoc.ins_visible (Controller.document !c2) 0 'Z' in
           let c, _unsent = gen_accept !c2 op in
           c2 := c;
           Persist.record j (Persist.Generated op);
           (* the documented snapshot-rejoin path: bootstrap from the
              donor's state — the tentative edit is simply gone *)
           let rejoined = Controller.rejoin ~site:2 !c0 in
           Alcotest.(check string)
             "rejoin forgets the edit" "ab"
             (Tdoc.visible_string (Controller.document rejoined));
           Alcotest.(check int)
             "nothing tentative survives rejoin" 0
             (List.length (Controller.tentative rejoined));
           (* the durable path: replay the journal, catch up, and the
              request goes back onto the wire *)
           Persist.close j;
           let j, r = ok_exn "reopen" (open_journal dir) in
           let recovered =
             match r.Persist.controller with
             | Some c -> c
             | None -> Alcotest.fail "no controller recovered"
           in
           Alcotest.(check string)
             "the journal remembers" "Zab"
             (Tdoc.visible_string (Controller.document recovered));
           Alcotest.(check bool)
             "replay re-emits the unsent request" true (r.Persist.emitted <> []);
           let caught, out = Controller.catch_up recovered !c0 in
           Alcotest.(check bool) "catch-up re-broadcasts it" true (out <> []);
           let validations =
             List.concat_map
               (fun m ->
                 let c, o = Controller.receive !c0 m in
                 c0 := c;
                 o)
               out
           in
           let caught =
             List.fold_left (fun c m -> fst (Controller.receive c m)) caught validations
           in
           Alcotest.(check string)
             "the edit reaches the donor" "Zab"
             (Tdoc.visible_string (Controller.document !c0));
           let report = Convergence.check [ !c0; caught ] in
           if not (Convergence.ok report) then
             Alcotest.failf "catch-up path diverged:@.%a" Convergence.pp report;
           Persist.close j));
  ]

let () =
  Alcotest.run "dce_store"
    [
      ("wal", wal_tests);
      ("wal-adversarial", wal_adversarial_tests);
      ("snapshot", snapshot_tests);
      ("store", store_tests);
      ("persist", persist_tests);
      ("recovery", recovery_tests);
    ]
