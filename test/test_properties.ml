(* Property tests over the whole stack: coordinate systems, log
   invariants, undo algebra, cursors, policy decision procedures, and
   controller-level invariants.  Complements the scenario tests with
   randomized coverage of the state spaces they sample pointwise. *)

open Dce_ot
open Dce_core
open Helpers

(* ----- Tdoc coordinate systems ----- *)

let tdoc_properties =
  [
    qtest "visible/model coordinate roundtrip" ~count:1000 gen_tdoc show_tdoc
      (fun doc ->
        let n = Tdoc.visible_length doc in
        List.for_all
          (fun v -> Tdoc.visible_of_model doc (Tdoc.model_of_visible doc v) = v)
          (List.init n Fun.id));
    qtest "model_of_visible is strictly increasing" ~count:500 gen_tdoc show_tdoc
      (fun doc ->
        let n = Tdoc.visible_length doc in
        let ms = List.init (n + 1) (Tdoc.model_of_visible doc) in
        let rec strict = function
          | a :: (b :: _ as rest) -> a < b && strict rest
          | _ -> true
        in
        strict ms);
    qtest "visible helpers build ops that apply cleanly" ~count:1000
      QCheck2.Gen.(
        gen_tdoc >>= fun d ->
        int_range 0 1000 >>= fun k -> return (d, k))
      (fun (d, k) -> Format.asprintf "%s k=%d" (show_tdoc d) k)
      (fun (doc, k) ->
        let n = Tdoc.visible_length doc in
        let op =
          if n = 0 then Tdoc.ins_visible doc 0 'q'
          else
            match k mod 3 with
            | 0 -> Tdoc.ins_visible doc (k mod (n + 1)) 'q'
            | 1 -> Tdoc.del_visible doc (k mod n)
            | _ -> Tdoc.up_visible doc (k mod n) 'Q'
        in
        let doc' = Tdoc.apply doc op in
        (* applying a visible-coordinate op changes visible length by the
           expected amount and never touches other cells *)
        match op with
        | Op.Ins _ -> Tdoc.visible_length doc' = n + 1
        | Op.Del _ -> Tdoc.visible_length doc' = n - 1
        | Op.Up _ -> Tdoc.visible_length doc' = n
        | _ -> false);
    qtest "apply_all = iterated apply" ~count:300
      QCheck2.Gen.(
        gen_tdoc >>= fun d ->
        let rec ops d acc n =
          if n = 0 then return (List.rev acc)
          else gen_valid_op ~pr:1 d >>= fun o -> ops (Tdoc.apply d o) (o :: acc) (n - 1)
        in
        int_range 0 8 >>= fun n -> ops d [] n >>= fun os -> return (d, os))
      (fun (d, os) ->
        Format.asprintf "%s +%d ops" (show_tdoc d) (List.length os))
      (fun (doc, ops) ->
        Tdoc.equal_model Char.equal (Tdoc.apply_all doc ops)
          (List.fold_left Tdoc.apply doc ops));
  ]

(* ----- Cursor ----- *)

let cursor_properties =
  [
    qtest "cursors stay within the visible document" ~count:1000
      QCheck2.Gen.(
        gen_tdoc >>= fun d ->
        gen_valid_op ~pr:1 d >>= fun o ->
        int_range 0 (Tdoc.visible_length d) >>= fun p -> return (d, o, p))
      (fun (d, o, p) ->
        Format.asprintf "%s op=%a cursor=%d" (show_tdoc d) pp_char_op o p)
      (fun (doc, o, p) ->
        let doc' = Tdoc.apply doc o in
        let p' = Cursor.transform_position doc p o in
        p' >= 0 && p' <= Tdoc.visible_length doc');
    qtest "cursor transformation is monotone" ~count:1000
      QCheck2.Gen.(
        gen_tdoc >>= fun d ->
        gen_valid_op ~pr:1 d >>= fun o ->
        let n = Tdoc.visible_length d in
        pair (int_range 0 n) (int_range 0 n) >>= fun (a, b) -> return (d, o, a, b))
      (fun (d, o, a, b) ->
        Format.asprintf "%s op=%a p=%d q=%d" (show_tdoc d) pp_char_op o a b)
      (fun (doc, o, a, b) ->
        let p = min a b and q = max a b in
        Cursor.transform_position doc p o <= Cursor.transform_position doc q o);
    qtest "a right-biased cursor keeps tracking its element" ~count:1000
      QCheck2.Gen.(
        gen_tdoc >>= fun d ->
        let n = Tdoc.visible_length d in
        if n = 0 then return None
        else
          int_range 0 (n - 1) >>= fun v ->
          gen_valid_op ~pr:1 d >>= fun o -> return (Some (d, v, o)))
      (function
        | None -> "empty"
        | Some (d, v, o) ->
          Format.asprintf "%s watching=%d op=%a" (show_tdoc d) v pp_char_op o)
      (function
        | None -> true
        | Some (doc, v, o) ->
          (* watch the element at visible position v: unless the op hides
             or overwrites that very cell, the (right-biased) transformed
             position still points at an element with the same content *)
          let m = Tdoc.model_of_visible doc v in
          let touches_cell = Op.pos o = Some m && not (Op.is_ins o) in
          let doc' = Tdoc.apply doc o in
          let v' = Cursor.transform_position doc v o in
          touches_cell
          || v' < Tdoc.visible_length doc'
             && Char.equal
                  (Tdoc.content (Tdoc.cell doc m))
                  (List.nth (Tdoc.visible_list doc') v'));
    qtest "selection never inverts" ~count:1000
      QCheck2.Gen.(
        gen_tdoc >>= fun d ->
        gen_valid_op ~pr:1 d >>= fun o ->
        let n = Tdoc.visible_length d in
        pair (int_range 0 n) (int_range 0 n) >>= fun (a, b) -> return (d, o, a, b))
      (fun (d, o, a, b) ->
        Format.asprintf "%s %a sel=[%d,%d)" (show_tdoc d) pp_char_op o a b)
      (fun (doc, o, a, b) ->
        let s = { Cursor.anchor = min a b; focus = max a b } in
        let s' = Cursor.transform_selection doc s o in
        s'.Cursor.anchor <= s'.Cursor.focus);
  ]

(* ----- Oplog invariants ----- *)

(* a site generating a random local history *)
let gen_local_history =
  let open QCheck2.Gen in
  let rec steps doc h ctx i n =
    if n = 0 then return (doc, h)
    else
      gen_user_op ~pr:1 doc >>= fun op ->
      let q =
        Request.make ~site:1 ~serial:i ~op ~ctx ~policy_version:0
          ~flag:Request.Tentative ()
      in
      steps (Tdoc.apply doc op) (Oplog.append_local q h) (Vclock.tick ctx 1) (i + 1)
        (n - 1)
  in
  gen_tdoc >>= fun doc ->
  int_range 0 10 >>= fun n -> steps doc Oplog.empty Vclock.empty 1 n

let oplog_properties =
  [
    qtest "append-only histories stay canonical" ~count:500 gen_local_history
      (fun (d, h) -> Format.asprintf "%s |H|=%d" (show_tdoc d) (Oplog.length h))
      (fun (_, h) -> Oplog.is_canonical h);
    qtest "undo leaves a log that replays to the post-undo document" ~count:500
      QCheck2.Gen.(
        gen_tdoc >>= fun doc0 ->
        let rec steps doc h ctx i n =
          if n = 0 then return (doc, h)
          else
            gen_user_op ~pr:1 doc >>= fun op ->
            let q =
              Request.make ~site:1 ~serial:i ~op ~ctx ~policy_version:0
                ~flag:Request.Tentative ()
            in
            steps (Tdoc.apply doc op) (Oplog.append_local q h) (Vclock.tick ctx 1)
              (i + 1) (n - 1)
        in
        int_range 1 8 >>= fun n ->
        steps doc0 Oplog.empty Vclock.empty 1 n >>= fun (doc, h) ->
        int_range 1 n >>= fun serial -> return (doc0, doc, h, serial))
      (fun (_, d, h, serial) ->
        Format.asprintf "%s |H|=%d undo #%d" (show_tdoc d) (Oplog.length h) serial)
      (fun (doc0, doc, h, serial) ->
        match Oplog.undo ~cancel_version:1 { Request.site = 1; serial } h with
        | None -> false
        | Some (op, h') ->
          let doc' = Tdoc.apply doc op in
          Tdoc.equal_model Char.equal doc' (Tdoc.apply_all doc0 (Oplog.ops h')));
    qtest "undo is idempotent per request" ~count:300 gen_local_history
      (fun (d, h) -> Format.asprintf "%s |H|=%d" (show_tdoc d) (Oplog.length h))
      (fun (_, h) ->
        match Oplog.requests h with
        | [] -> true
        | q :: _ -> (
            match Oplog.undo ~cancel_version:1 q.Request.id h with
            | None -> true
            | Some (_, h') -> Oplog.undo ~cancel_version:1 q.Request.id h' = None));
    qtest "compaction never changes the replayed document" ~count:300
      QCheck2.Gen.(
        gen_tdoc >>= fun doc0 ->
        let rec steps doc h ctx i n =
          if n = 0 then return (doc, h)
          else
            gen_user_op ~pr:1 doc >>= fun op ->
            let q =
              Request.make ~site:1 ~serial:i ~op ~ctx ~policy_version:0
                ~flag:Request.Valid ()
            in
            steps (Tdoc.apply doc op) (Oplog.append_local q h) (Vclock.tick ctx 1)
              (i + 1) (n - 1)
        in
        int_range 0 8 >>= fun n ->
        steps doc0 Oplog.empty Vclock.empty 1 n >>= fun (doc, h) ->
        int_range 0 (n + 1) >>= fun upto -> return (doc, h, upto))
      (fun (d, h, upto) ->
        Format.asprintf "%s |H|=%d upto=%d" (show_tdoc d) (Oplog.length h) upto)
      (fun (_, h, upto) ->
        let stable = Vclock.of_list [ (1, upto) ] in
        let h' = Oplog.compact ~stable ~stable_version:0 h in
        (* compaction only drops entries; live entries are untouched *)
        Oplog.live_length h' <= Oplog.length h
        && List.for_all
             (fun (q : char Request.t) -> Oplog.mem q.Request.id h')
             (Oplog.requests h));
    (* The log's id index must keep agreeing with a scan of the stored
       entries through every mutation: append, window-local integration
       (which permutes entries), undo (which appends a canceller and
       reflags), set_flag, and compaction (which shifts positions). *)
    qtest "id index agrees with entry scans through mixed workloads" ~count:500
      QCheck2.Gen.(
        gen_local_history >>= fun (_, h) ->
        let n = List.length (Oplog.requests h) in
        list_size (int_range 0 4) (int_range 0 n) >>= fun floors ->
        int_range 0 n >>= fun undo_serial ->
        int_range 0 n >>= fun validate_serial ->
        int_range 0 (n + 1) >>= fun compact_upto ->
        return (h, floors, undo_serial, validate_serial, compact_upto))
      (fun (h, floors, u, v, c) ->
        Format.asprintf "|H|=%d remotes=%d undo=%d validate=%d compact=%d"
          (Oplog.length h) (List.length floors) u v c)
      (fun (h, floors, undo_serial, validate_serial, compact_upto) ->
        (* integrate remote site-2 requests whose contexts cover random
           prefixes of the site-1 history, so the concurrency windows
           start at different depths and overlap each other *)
        let h, _ =
          List.fold_left
            (fun (h, serial) floor ->
              let ctx =
                Vclock.merge
                  (Vclock.of_list [ (1, floor) ])
                  (Vclock.of_list [ (2, serial - 1) ])
              in
              let q =
                Request.make ~site:2 ~serial ~op:(Op.ins ~pr:2 0 'z') ~ctx
                  ~policy_version:0 ~flag:Request.Tentative ()
              in
              let _, h = Oplog.integrate q h in
              (h, serial + 1))
            (h, 1) floors
        in
        let h =
          if validate_serial = 0 then h
          else Oplog.set_flag { Request.site = 1; serial = validate_serial }
              Request.Valid h
        in
        let h =
          if undo_serial = 0 then h
          else
            match
              Oplog.undo ~cancel_version:1 { Request.site = 1; serial = undo_serial } h
            with
            | Some (_, h) -> h
            | None -> h
        in
        let h =
          Oplog.compact ~stable:(Vclock.of_list [ (1, compact_upto) ])
            ~stable_version:0 h
        in
        let scan_normal =
          List.filter_map
            (fun (e : char Oplog.entry) ->
              match e.Oplog.role with
              | Oplog.Normal -> Some e.Oplog.req
              | Oplog.Canceller _ -> None)
            (Oplog.entries h)
        in
        Oplog.length h = List.length (Oplog.entries h)
        && List.for_all
             (fun (q : char Request.t) ->
               Oplog.mem q.Request.id h
               &&
               match Oplog.find q.Request.id h with
               | Some q' ->
                 Request.id_equal q'.Request.id q.Request.id
                 && q'.Request.flag = q.Request.flag
                 && Op.equal Char.equal q'.Request.op q.Request.op
               | None -> false)
             scan_normal
        && Oplog.find { Request.site = 9; serial = 1 } h = None
        && (not (Oplog.mem { Request.site = 9; serial = 1 } h))
        && Oplog.tentative_requests h
           = List.filter
               (fun (q : char Request.t) -> q.Request.flag = Request.Tentative)
               scan_normal);
  ]

(* ----- Policy / Admin_log cross-checks ----- *)

let gen_small_policy =
  let open QCheck2.Gen in
  let gen_subject = oneof [ return Subject.Any; map (fun u -> Subject.User u) (int_range 1 3) ] in
  let gen_right = oneofl [ Right.Insert; Right.Delete; Right.Update ] in
  let gen_auth =
    pair (pair gen_subject gen_right) bool >|= fun ((s, r), pos) ->
    if pos then Auth.grant [ s ] [ Docobj.Whole ] [ r ] else Auth.deny [ s ] [ Docobj.Whole ] [ r ]
  in
  list_size (int_range 0 6) gen_auth >|= fun auths -> Policy.make ~users:[ 0; 1; 2; 3 ] auths

let policy_properties =
  [
    qtest "first-match check equals the reference fold" ~count:1000
      QCheck2.Gen.(
        gen_small_policy >>= fun p ->
        pair (int_range 0 4) (oneofl [ Right.Insert; Right.Delete; Right.Update ])
        >>= fun (u, r) -> return (p, u, r))
      (fun (_, u, r) -> Format.asprintf "user=%d right=%a" u Right.pp r)
      (fun (p, u, r) ->
        let reference =
          Policy.is_user p u
          &&
          let rec go = function
            | [] -> false
            | a :: rest ->
              if
                Auth.matches
                  ~member:(fun g v -> Policy.member p g v)
                  ~resolve:(fun n -> Policy.resolve p n)
                  a ~user:u ~right:r ~pos:(Some 0)
              then not (Auth.is_restrictive a)
              else go rest
          in
          go (Policy.auths p)
        in
        Policy.check p ~user:u ~right:r ~pos:(Some 0) = reference);
    qtest "first_denial agrees with checking every version" ~count:500
      QCheck2.Gen.(
        gen_small_policy >>= fun p0 ->
        list_size (int_range 0 6)
          (pair (pair (int_range 1 3) (oneofl [ Right.Insert; Right.Delete; Right.Update ])) bool)
        >>= fun actions ->
        pair (int_range 1 3) (oneofl [ Right.Insert; Right.Delete; Right.Update ])
        >>= fun probe -> return (p0, actions, probe))
      (fun (_, actions, (u, r)) ->
        Format.asprintf "%d actions, probe user=%d %a" (List.length actions) u Right.pp r)
      (fun (p0, actions, (u, r)) ->
        (* build an admin log of denies/grants *)
        let l = Admin_log.create ~admin:0 p0 in
        let l, _ =
          List.fold_left
            (fun (l, v) ((target, right), grant) ->
              let auth =
                if grant then Auth.grant [ Subject.User target ] [ Docobj.Whole ] [ right ]
                else Auth.deny [ Subject.User target ] [ Docobj.Whole ] [ right ]
              in
              let req =
                {
                  Admin_op.admin = 0;
                  version = v;
                  op = Admin_op.Add_auth (0, auth);
                  ctx = Vclock.empty;
                }
              in
              match Admin_log.append l req with
              | Ok l -> (l, v + 1)
              | Error _ -> (l, v))
            (l, 1) actions
        in
        let fast = Admin_log.first_denial l ~from_version:0 ~user:u ~right:r ~pos:(Some 0) in
        let brute =
          List.find_opt
            (fun v ->
              not
                (Policy.check (Option.get (Admin_log.policy_at l v)) ~user:u ~right:r
                   ~pos:(Some 0)))
            (List.init (Admin_log.version l + 1) Fun.id)
        in
        fast = brute);
  ]

(* ----- Controller invariants ----- *)

let controller_properties =
  [
    qtest "a denied generation leaves the controller untouched" ~count:300
      QCheck2.Gen.(int_range 0 1000)
      string_of_int
      (fun k ->
        let policy =
          Policy.make ~users:[ 0; 1 ]
            [ Auth.deny [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Insert ];
              Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
        in
        let c =
          Controller.create ~eq:Char.equal ~site:1 ~admin:0 ~policy
            (Tdoc.of_string "abc")
        in
        match Controller.generate c (Op.ins (k mod 4) 'x') with
        | c', Controller.Denied _ ->
          Tdoc.equal_model Char.equal (Controller.document c) (Controller.document c')
          && Oplog.length (Controller.oplog c') = 0
        | _ -> false);
    qtest "versions are monotone under any message replay" ~count:200
      QCheck2.Gen.(list_size (int_range 0 20) (int_range 0 1000))
      (fun l -> Printf.sprintf "%d msgs" (List.length l))
      (fun choices ->
        (* feed a user controller an arbitrary mix of (possibly
           duplicated, out of order) admin messages *)
        let policy =
          Policy.make ~users:[ 0; 1 ] [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
        in
        let a =
          Controller.create ~eq:Char.equal ~site:0 ~admin:0 ~policy (Tdoc.of_string "x")
        in
        let rec mk_admin a n acc =
          if n = 0 then List.rev acc
          else
            match Controller.admin_update a (Admin_op.Add_user (100 + n)) with
            | Ok (a, m) -> mk_admin a (n - 1) (m :: acc)
            | Error _ -> List.rev acc
        in
        let msgs = Array.of_list (mk_admin a 5 []) in
        let c =
          Controller.create ~eq:Char.equal ~site:1 ~admin:0 ~policy (Tdoc.of_string "x")
        in
        let _, ok =
          List.fold_left
            (fun (c, ok) k ->
              let before = Controller.version c in
              let c, _ = Controller.receive c msgs.(k mod Array.length msgs) in
              (c, ok && Controller.version c >= before))
            (c, true) choices
        in
        ok);
    qtest "compaction at arbitrary points is invisible to a never-compacted twin"
      ~count:120
      QCheck2.Gen.(list_size (int_range 8 60) (int_range 0 100_000))
      (fun l -> Printf.sprintf "%d choices" (List.length l))
      (fun choices ->
        (* Two fleets run the SAME session in lockstep — same generations,
           same delivery schedule.  The [twin] fleet additionally absorbs
           beacons and compacts its window at points chosen by the random
           stream; [plain] never compacts.  Compaction is pure garbage
           collection, so at quiescence every twin must be
           content-fingerprint-identical to its plain double — and, with
           every peer's beacon in hand, must compact its window to zero. *)
        let nsites = 3 in
        let policy =
          Policy.make ~users:[ 0; 1; 2 ]
            [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
        in
        let mk site =
          Controller.create ~eq:Char.equal ~site ~admin:0 ~policy (Tdoc.of_string "seed")
        in
        let plain = Array.init nsites mk in
        let twin = Array.init nsites mk in
        (* pending.(dst): messages awaiting delivery at dst, oldest first *)
        let pending = Array.make nsites [] in
        let enqueue src msgs =
          List.iter
            (fun m ->
              for dst = 0 to nsites - 1 do
                if dst <> src then pending.(dst) <- pending.(dst) @ [ m ]
              done)
            msgs
        in
        let deliver dst =
          match pending.(dst) with
          | [] -> ()
          | m :: rest ->
            pending.(dst) <- rest;
            let p, out = Controller.receive plain.(dst) m in
            let t, _ = Controller.receive twin.(dst) m in
            plain.(dst) <- p;
            twin.(dst) <- t;
            enqueue dst out
        in
        let generate site k =
          let d = Controller.document plain.(site) in
          let pos = k mod (Tdoc.visible_length d + 1) in
          let op = Tdoc.ins_visible d pos (Char.chr (Char.code 'a' + (k mod 26))) in
          match Controller.generate plain.(site) op with
          | p, Controller.Accepted m ->
            (* the twin holds the same state, so the same op is accepted
               there and produces the same request *)
            let t, _ = Controller.generate twin.(site) op in
            plain.(site) <- p;
            twin.(site) <- t;
            enqueue site [ m ]
          | _, Controller.Denied _ -> ()
        in
        let beacon_and_compact site =
          for peer = 0 to nsites - 1 do
            if peer <> site then begin
              let clock, version = Controller.beacon twin.(peer) in
              twin.(site) <-
                Controller.receive_beacon twin.(site)
                  ~peer:(Controller.site twin.(peer))
                  ~clock ~version
            end
          done;
          twin.(site) <- Controller.compact twin.(site)
        in
        List.iter
          (fun k ->
            let site = k mod nsites in
            match (k / nsites) mod 3 with
            | 0 -> generate site (k / 9)
            | 1 -> deliver site
            | _ -> beacon_and_compact site)
          choices;
        (* drain to quiescence: everyone delivers everything *)
        let rec drain () =
          if Array.exists (fun q -> q <> []) pending then begin
            for dst = 0 to nsites - 1 do
              deliver dst
            done;
            drain ()
          end
        in
        drain ();
        (* a final full beacon exchange lets every twin compact to zero *)
        for site = 0 to nsites - 1 do
          beacon_and_compact site
        done;
        let fp c = Dce_wire.Proto.content_fingerprint Dce_wire.Proto.char_codec c in
        Array.for_all Fun.id
          (Array.init nsites (fun i ->
               String.equal (fp plain.(i)) (fp twin.(i))
               && Tdoc.equal_model Char.equal
                    (Controller.document plain.(i))
                    (Controller.document twin.(i))
               && Vclock.equal (Controller.clock plain.(i)) (Controller.clock twin.(i))
               && Controller.version plain.(i) = Controller.version twin.(i)
               && Controller.window_len twin.(i) = 0)));
  ]

(* ----- exhaustive small-scope transformation properties -----

   The QCheck properties above (and in test_ot.ml) sample these spaces;
   here the same TP1/TP2/inversion statements are checked over EVERY
   document and concurrent operation set up to the bound — documents of
   model length <= 2 (length <= 3 for the pair properties in the slow
   case) over the alphabet {a, b} with hide counts <= 1.  Small-scope
   exhaustiveness and randomized depth are complementary: neither
   subsumes the other. *)

let enum_exhaustive ?bounds name f =
  Alcotest.test_case name `Quick (fun () ->
      let o = f ?bounds () in
      match o.Dce_check.Enum.failed with
      | None -> ()
      | Some c -> Alcotest.fail c)

let len3 = { Dce_check.Enum.default with Dce_check.Enum.max_len = 3 }

let enum_properties =
  [
    enum_exhaustive "TP1 holds on ALL docs (len<=2, {a,b}, hide<=1)"
      Dce_check.Enum.tp1;
    enum_exhaustive "TP2 holds on ALL docs (len<=2, {a,b}, hide<=1)"
      Dce_check.Enum.tp2;
    enum_exhaustive "IT/ET inversion holds on ALL docs (len<=2, {a,b}, hide<=1)"
      Dce_check.Enum.inversion;
    enum_exhaustive ~bounds:len3 "TP1 holds on ALL docs (len<=3)" Dce_check.Enum.tp1;
    enum_exhaustive ~bounds:len3 "IT/ET inversion holds on ALL docs (len<=3)"
      Dce_check.Enum.inversion;
  ]

let () =
  Alcotest.run "dce_properties"
    [
      ("tdoc", tdoc_properties);
      ("cursor", cursor_properties);
      ("oplog", oplog_properties);
      ("policy", policy_properties);
      ("controller", controller_properties);
      ("enum", enum_properties);
    ]
