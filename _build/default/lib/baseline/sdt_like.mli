(** A state-recomputation baseline with SDT-class integration cost.

    The paper's Fig. 7 compares its processing times against SDT and ABT
    (Li & Li 2008), reporting that those algorithms blow the 100 ms
    interactivity budget at log sizes where the paper's stays within it.
    We do not re-implement SDT; this module is an honest {e cost-model
    stand-in}: a correct-by-construction algorithm (deterministic total
    order + full replay) whose integration cost is quadratic in the log
    length — the published asymptotic class of SDT's
    state-difference-based integration.  See DESIGN §2.

    Convergence is trivial here (every site replays the same total
    order); what the benchmark measures is the cost shape. *)

open Dce_ot

type t

val create : site:int -> string -> t

val generate : t -> char Op.t -> t * char Request.t

val receive : t -> char Request.t -> t
(** Requires causal readiness (deliver in a causally-consistent order);
    integration replays the full history: O(|H|²) transformations. *)

val log_length : t -> int
val text : t -> string

val preload : t -> char Request.t list -> t
(** Install a history without replaying it (the cached document becomes
    stale).  Benchmark-only: lets the harness measure a single {!receive}
    — which replays everything anyway — on a large history without
    paying the quadratic cost once per construction step. *)
