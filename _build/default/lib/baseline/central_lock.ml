open Dce_sim

type config = {
  clients : int;
  rtt : int;
  check_cost : int;
  op_interval : int * int;
  duration : int;
}

type stats = {
  operations : int;
  mean_response : float;
  p95_response : int;
  max_response : int;
  server_utilization : float;
}

let simulate cfg ~seed =
  let rng = ref (Rng.of_int seed) in
  let draw (lo, hi) =
    let x, r = Rng.in_range !rng lo hi in
    rng := r;
    x
  in
  (* generate each client's issue times *)
  let issues = ref [] in
  for _ = 1 to cfg.clients do
    let t = ref (draw cfg.op_interval) in
    while !t <= cfg.duration do
      issues := !t :: !issues;
      t := !t + draw cfg.op_interval
    done
  done;
  let issues = List.sort compare !issues in
  (* serve in arrival order: arrival = issue + rtt/2, serialized checks *)
  let free_at = ref 0 in
  let busy = ref 0 in
  let responses =
    List.map
      (fun issue ->
        let arrival = issue + (cfg.rtt / 2) in
        let start = max arrival !free_at in
        let finish = start + cfg.check_cost in
        free_at := finish;
        busy := !busy + cfg.check_cost;
        finish + (cfg.rtt / 2) - issue)
      issues
  in
  let n = List.length responses in
  if n = 0 then
    {
      operations = 0;
      mean_response = 0.;
      p95_response = 0;
      max_response = 0;
      server_utilization = 0.;
    }
  else
    let sorted = List.sort compare responses in
    let total = List.fold_left ( + ) 0 responses in
    let p95 = List.nth sorted (min (n - 1) (n * 95 / 100)) in
    {
      operations = n;
      mean_response = float_of_int total /. float_of_int n;
      p95_response = p95;
      max_response = List.nth sorted (n - 1);
      server_utilization = float_of_int !busy /. float_of_int (max 1 !free_at);
    }

let pp_stats ppf s =
  Format.fprintf ppf
    "ops=%d mean=%.1fms p95=%dms max=%dms server-busy=%.0f%%" s.operations
    s.mean_response s.p95_response s.max_response (100. *. s.server_utilization)
