(** The pessimistic strawman: access control on a central server.

    The paper's introduction motivates replication by the latency of the
    standard design, where a single server stores the access data
    structure, and {e every} operation — local or not — must lock it,
    be checked, and come back before the user sees their own edit.  This
    module simulates that design: clients at a configurable RTT from the
    server issue operations at a configurable rate; the server serializes
    checks (the lock) at a configurable per-check cost.

    The benchmark compares the resulting user-perceived response times
    with the optimistic model's (a local policy check, microseconds) and
    regenerates the motivation numbers (DESIGN E9). *)

type config = {
  clients : int;
  rtt : int;  (** round trip to the server, virtual ms *)
  check_cost : int;  (** server-side lock+check time per operation, virtual ms *)
  op_interval : int * int;  (** per-client wait between operations *)
  duration : int;
}

type stats = {
  operations : int;
  mean_response : float;  (** virtual ms from issue to grant *)
  p95_response : int;
  max_response : int;
  server_utilization : float;  (** fraction of time the lock was held *)
}

val simulate : config -> seed:int -> stats

val pp_stats : Format.formatter -> stats -> unit
