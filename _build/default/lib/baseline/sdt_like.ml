open Dce_ot

(* Total order on requests: (Lamport stamp of the causal context, site).
   Causally-later requests sort later; concurrent ones deterministically. *)
let order (a : char Request.t) (b : char Request.t) =
  let la = Vclock.sum a.Request.ctx and lb = Vclock.sum b.Request.ctx in
  match compare la lb with
  | 0 -> compare a.Request.id.Request.site b.Request.id.Request.site
  | c -> c

type t = {
  site : int;
  serial : int;
  clock : Vclock.t;
  initial : char Document.Array_doc.t;
  known : char Request.t list; (* sorted by [order] *)
  doc : char Document.Array_doc.t; (* cached replay result *)
}

let create ~site text =
  let initial = Document.Str.of_string text in
  { site; serial = 0; clock = Vclock.empty; initial; known = []; doc = initial }

let everything_goes _ _ = true

(* Full replay: transform each request against the transformed forms of
   the concurrent requests already applied, in total order. *)
let replay initial known =
  let doc, _ =
    List.fold_left
      (fun (doc, done_) (q : char Request.t) ->
        let concurrent_ops =
          List.filter_map
            (fun (q', op') ->
              if Request.happened_before q' q then None else Some op')
            done_
        in
        let op = Positional.it_list q.Request.op concurrent_ops in
        (Document.Array_doc.apply ~eq:everything_goes doc op, done_ @ [ (q, op) ]))
      (initial, []) known
  in
  doc

let insert_sorted q known =
  let rec go = function
    | [] -> [ q ]
    | q' :: rest -> if order q q' <= 0 then q :: q' :: rest else q' :: go rest
  in
  go known

let generate t op =
  let op = Op.with_stamp ~site:t.site ~stamp:(Vclock.sum t.clock + 1) op in
  let serial = t.serial + 1 in
  let q =
    Request.make ~site:t.site ~serial ~op ~ctx:t.clock ~policy_version:0
      ~flag:Request.Valid ()
  in
  let known = insert_sorted q t.known in
  let doc = replay t.initial known in
  ({ t with serial; clock = Vclock.tick t.clock t.site; known; doc }, q)

let receive t q =
  if List.exists (fun q' -> Request.id_equal q'.Request.id q.Request.id) t.known then t
  else
    let known = insert_sorted q t.known in
    let doc = replay t.initial known in
    { t with known; doc; clock = Vclock.tick t.clock q.Request.id.Request.site }

let log_length t = List.length t.known

let text t = Document.Str.to_string t.doc

let preload t qs =
  let known = List.fold_left (fun known q -> insert_sorted q known) t.known qs in
  let clock =
    List.fold_left (fun c (q : char Request.t) -> Vclock.tick c q.Request.id.Request.site)
      t.clock qs
  in
  { t with known; clock }
