lib/baseline/sdt_like.mli: Dce_ot Op Request
