lib/baseline/positional.ml: Char Dce_ot Document Fun List Op String
