lib/baseline/central_lock.ml: Dce_sim Format List Rng
