lib/baseline/abt_like.mli: Dce_ot Op Request
