lib/baseline/naive.ml: Admin_op Auth Char Controller Dce_core Dce_ot Docobj Format List Op Policy Right String Subject Tdoc
