lib/baseline/naive.mli: Controller Dce_core Format Subject
