lib/baseline/central_lock.mli: Format
