lib/baseline/positional.mli: Dce_ot Document Op
