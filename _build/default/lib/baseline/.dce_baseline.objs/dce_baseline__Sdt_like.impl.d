lib/baseline/sdt_like.ml: Dce_ot Document List Op Positional Request Vclock
