lib/baseline/abt_like.ml: Array Dce_ot Document List Op Positional Request Vclock
