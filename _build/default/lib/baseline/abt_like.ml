open Dce_ot

type t = {
  site : int;
  serial : int;
  clock : Vclock.t;
  doc : char Document.Array_doc.t;
  log : char Op.t list; (* canonical: insertions before deletions *)
}

let create ~site text =
  { site; serial = 0; clock = Vclock.empty; doc = Document.Str.of_string text; log = [] }

let everything_goes _ _ = true

(* Positional exclusion for the only pair re-canonization needs. *)
let et_ins_del (i : char Op.t) (d : char Op.t) =
  match i, d with
  | Op.Ins i1, Op.Del d2 ->
    if i1.pos <= d2.pos then Op.Ins i1 else Op.Ins { i1 with pos = i1.pos + 1 }
  | o, _ -> o

(* Re-canonize the whole log from scratch: repeatedly bubble every
   insertion leftwards past the deletion immediately before it.  This is
   the deliberate O(|H|²) pass. *)
let recanonize log =
  let arr = Array.of_list log in
  let n = Array.length arr in
  let swapped = ref true in
  while !swapped do
    swapped := false;
    for i = 0 to n - 2 do
      match arr.(i), arr.(i + 1) with
      | (Op.Del _ as d), (Op.Ins _ as ins) ->
        let ins' = et_ins_del ins d in
        let d' = Positional.it d ins' in
        arr.(i) <- ins';
        arr.(i + 1) <- d';
        swapped := true
      | _ -> ()
    done
  done;
  Array.to_list arr

let generate t op =
  let op = Op.with_stamp ~site:t.site ~stamp:(Vclock.sum t.clock + 1) op in
  let serial = t.serial + 1 in
  let q =
    Request.make ~site:t.site ~serial ~op ~ctx:t.clock ~policy_version:0
      ~flag:Request.Valid ()
  in
  let doc = Document.Array_doc.apply ~eq:everything_goes t.doc op in
  let log = recanonize (t.log @ [ op ]) in
  ({ t with serial; clock = Vclock.tick t.clock t.site; doc; log }, q)

let receive t q =
  (* benchmark setting: the incoming request is concurrent with the whole
     local log *)
  let op = Positional.it_list q.Request.op t.log in
  let doc = Document.Array_doc.apply ~eq:everything_goes t.doc op in
  let log = recanonize (t.log @ [ op ]) in
  { t with doc; log; clock = Vclock.tick t.clock q.Request.id.Request.site }

let log_length t = List.length t.log

let text t = Document.Str.to_string t.doc

let preload t ops = { t with log = recanonize (t.log @ ops) }
