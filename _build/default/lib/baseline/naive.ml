open Dce_ot
open Dce_core

type report = {
  scenario : string;
  site_texts : (Subject.user * string) list;
  diverged : bool;
  illegal_effect_somewhere : bool;
  legal_rejected : bool;
}

let adm = 0
let s1 = 1
let s2 = 2

let all_rights users =
  Policy.make ~users [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]

let vis c = Tdoc.visible_string (Controller.document c)

let mk features policy =
  ( Controller.create ~eq:Char.equal ~features ~site:adm ~admin:adm ~policy
      (Tdoc.of_string "abc"),
    Controller.create ~eq:Char.equal ~features ~site:s1 ~admin:adm ~policy
      (Tdoc.of_string "abc"),
    Controller.create ~eq:Char.equal ~features ~site:s2 ~admin:adm ~policy
      (Tdoc.of_string "abc") )

let gen c op =
  match Controller.generate c op with
  | c, Controller.Accepted m -> (c, m)
  | _, Controller.Denied r -> failwith ("scenario generation denied: " ^ r)

let admin c op =
  match Controller.admin_update c op with
  | Ok (c, m) -> (c, m)
  | Error e -> failwith ("scenario admin_update failed: " ^ e)

let recv c m = fst (Controller.receive c m)

let report scenario sites ~illegal ~legal_rejected =
  let texts = List.map (fun c -> (Controller.site c, vis c)) sites in
  let diverged =
    match texts with
    | [] -> false
    | (_, t0) :: rest -> List.exists (fun (_, t) -> t <> t0) rest
  in
  {
    scenario;
    site_texts = texts;
    diverged;
    illegal_effect_somewhere = List.exists (fun (_, t) -> illegal t) texts;
    legal_rejected = List.exists (fun (_, t) -> legal_rejected t) texts;
  }

(* Fig. 2: s1 inserts 'x' concurrently with the revocation of its
   insertion right.  The insertion is illegal under the final policy;
   every trace of 'x' is a hole. *)
let fig2 features =
  let a, u1, u2 = mk features (all_rights [ adm; s1; s2 ]) in
  let u1, q = gen u1 (Op.ins 0 'x') in
  let a, r =
    admin a
      (Admin_op.Add_auth
         (0, Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Insert ]))
  in
  let a = recv a q in
  let u2 = recv u2 q in
  let u2 = recv u2 r in
  let u1 = recv u1 r in
  report "Fig.2 (revocation concurrent with insertion)" [ a; u1; u2 ]
    ~illegal:(fun t -> String.contains t 'x')
    ~legal_rejected:(fun _ -> false)

(* Fig. 3: s2's deletion of 'a' falls inside a revoke-then-regrant
   window; it must be rejected everywhere.  A missing 'a' is a hole. *)
let fig3 features =
  let policy =
    Policy.make ~users:[ adm; s1; s2 ]
      [ Auth.grant [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Delete ] ]
  in
  let a, u1, u2 = mk features policy in
  let u2, q = gen u2 (Op.del 0 'a') in
  let a, r1 = admin a (Admin_op.Del_auth 0) in
  (* the deletion reaches the administrator while the right is revoked *)
  let a = recv a q in
  let a, r2 =
    admin a
      (Admin_op.Add_auth
         (0, Auth.grant [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Delete ]))
  in
  (* s1 sees revoke, regrant, then the deletion *)
  let u1 = recv (recv u1 r1) r2 in
  let u1 = recv u1 q in
  let u2 = recv (recv u2 r1) r2 in
  report "Fig.3 (revoke-then-regrant window)" [ a; u1; u2 ]
    ~illegal:(fun t -> not (String.contains t 'a'))
    ~legal_rejected:(fun _ -> false)

(* Fig. 4: the administrator validates s1's insertion, then revokes.
   The insertion is legal; a site without 'x' wrongly rejected it. *)
let fig4 features =
  let a, u1, u2 = mk features (all_rights [ adm; s1; s2 ]) in
  let u1, q = gen u1 (Op.ins 0 'x') in
  let a, validations = Controller.receive a q in
  let a, r =
    admin a
      (Admin_op.Add_auth
         (0, Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Insert ]))
  in
  (* the revocation overtakes the insertion on the way to s2 *)
  let u2 = recv u2 r in
  let u2 = List.fold_left recv u2 validations in
  let u2 = recv u2 q in
  let u1 = List.fold_left recv u1 validations in
  let u1 = recv u1 r in
  report "Fig.4 (revocation overtakes a validated insertion)" [ a; u1; u2 ]
    ~illegal:(fun _ -> false)
    ~legal_rejected:(fun t -> not (String.contains t 'x'))

let holes r = r.diverged || r.illegal_effect_somewhere || r.legal_rejected

let pp ppf r =
  Format.fprintf ppf "@[<v>%s@ " r.scenario;
  List.iter (fun (u, t) -> Format.fprintf ppf "  site %d: %S@ " u t) r.site_texts;
  Format.fprintf ppf "  diverged: %b, illegal effect: %b, legal rejected: %b@]"
    r.diverged r.illegal_effect_somewhere r.legal_rejected
