(** The paper's §4 security holes, reproduced on demand.

    Each function replays one of the paper's scenarios (Figs. 2–4) under
    a chosen feature set ({!Dce_core.Controller.features}) and reports
    what happened.  With [Controller.secure] every report is clean; with
    the corresponding mechanism disabled the hole manifests — documents
    diverge, an illegal operation survives somewhere, or a legal
    operation is wrongly rejected.  Used by the ablation tests, the
    ablation benchmark and the [revocation_scenarios] example. *)

open Dce_core

type report = {
  scenario : string;
  site_texts : (Subject.user * string) list;  (** final visible documents *)
  diverged : bool;
  illegal_effect_somewhere : bool;
      (** some site's final text still contains the revoked edit *)
  legal_rejected : bool;
      (** some site rejected or undid an edit the administrator had
          validated *)
}

val fig2 : Controller.features -> report
(** Insertion concurrent with its own revocation.  Hole without
    [retroactive_undo]: sites that executed the insertion keep it while
    the administrator does not. *)

val fig3 : Controller.features -> report
(** Deletion overlapping a revoke-then-regrant window.  Hole without
    [interval_check]: late receivers accept a request every other site
    rejected. *)

val fig4 : Controller.features -> report
(** Revocation overtaking a validated insertion.  Hole without
    [validation]: the overtaken site rejects a legal insertion. *)

val holes : report -> bool
(** Any of the three hole indicators. *)

val pp : Format.formatter -> report -> unit
