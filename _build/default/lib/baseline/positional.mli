(** Positional transformation functions (Ellis-Gibbs / Ressel style).

    The transformation rules the 2009-era algorithms the paper cites
    (SDT, ABT, SOCT2…) are built on: deletions physically remove
    elements, so every operation shifts positions.  These rules satisfy
    TP1 but {e provably cannot} satisfy TP2 — the reason the main library
    uses the tombstone rules instead (DESIGN §2).  They are kept here for
    the baseline algorithms and for the test demonstrating the classic
    TP2 counterexample. *)

open Dce_ot

val it : 'e Op.t -> 'e Op.t -> 'e Op.t
(** Inclusion transformation on plain positional documents
    ({!Dce_ot.Document}).  Concurrent insertions at one position are
    ordered by [pr]; concurrent deletions of one element collapse to
    [Nop]. *)

val it_list : 'e Op.t -> 'e Op.t list -> 'e Op.t

val tp2_counterexample :
  unit -> (char Document.Array_doc.t * char Op.t * char Op.t * char Op.t) option
(** A concrete (document, o1, o2, o3) witnessing a TP2 violation of
    {!it}, found by exhaustive search over small cases; [None] if the
    rules were (impossibly) clean.  Used by tests and the README to show
    {e why} the substrate choice matters. *)
