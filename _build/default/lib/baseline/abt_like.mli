(** A canonical-log baseline with ABT-class integration cost.

    Cost-model stand-in for ABT (Li & Li 2008) in the paper's Fig. 7
    comparison, in the same spirit as {!Sdt_like}: a log kept in
    insertions-before-deletions canonical form, but re-canonized {e from
    scratch} after every integration (ABT maintains admissibility with a
    quadratic pass over the history), so receive costs O(|H|²)
    transpositions against our incremental O(|H|).  See DESIGN §2.

    Intended for benchmark workloads where delivered requests are
    concurrent with the receiver's whole log (the Fig. 7 measurement
    setup); it is not a general-purpose engine. *)

open Dce_ot

type t

val create : site:int -> string -> t
val generate : t -> char Op.t -> t * char Request.t
val receive : t -> char Request.t -> t
val log_length : t -> int
val text : t -> string

val preload : t -> char Op.t list -> t
(** Install a log (assumed executed; one re-canonization pass is run).
    Benchmark-only, like {!Sdt_like.preload}. *)
