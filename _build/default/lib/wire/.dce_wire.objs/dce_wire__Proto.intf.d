lib/wire/proto.mli: Admin_op Codec Controller Dce_core Dce_ot Op Policy Request Vclock
