lib/wire/codec.ml: Array Buffer Char Int32 Lazy List Printf Stdlib String
