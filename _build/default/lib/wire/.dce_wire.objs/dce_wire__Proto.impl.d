lib/wire/proto.ml: Admin_op Auth Char Codec Controller Dce_core Dce_ot Docobj Fun Op Oplog Policy Printf Request Right Subject Tdoc Vclock
