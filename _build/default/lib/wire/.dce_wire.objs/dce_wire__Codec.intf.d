lib/wire/codec.mli: Buffer Stdlib
