lib/sim/workload.mli: Net
