lib/sim/convergence.ml: Char Controller Dce_core Dce_ot Format List Oplog Policy Request Right Tdoc
