lib/sim/convergence.mli: Controller Dce_core Format
