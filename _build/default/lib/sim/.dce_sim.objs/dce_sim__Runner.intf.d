lib/sim/runner.mli: Dce_core Format Workload
