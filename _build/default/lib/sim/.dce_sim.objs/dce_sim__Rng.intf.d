lib/sim/rng.mli:
