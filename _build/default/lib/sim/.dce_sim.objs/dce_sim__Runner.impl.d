lib/sim/runner.ml: Admin_op Array Auth Char Controller Dce_core Dce_ot Docobj Fmt Format Fun List Net Op Oplog Option Policy Request Right Rng Subject Tdoc Workload
