lib/sim/net.ml: List Map Option Rng
