lib/sim/workload.ml: Net
