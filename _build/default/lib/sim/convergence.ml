open Dce_ot
open Dce_core

type report = {
  documents_agree : bool;
  versions_agree : bool;
  policies_agree : bool;
  queues_empty : bool;
  no_tentative_left : bool;
  flags_agree : bool;
}

(* Policies are compared by their observable behaviour on the finite
   relevant domain: registered users × rights × positions-of-interest
   (authorization lists can differ syntactically after permissive
   deletions while still deciding identically). *)
let policies_equal a b =
  let users = List.sort_uniq compare (Policy.users a @ Policy.users b) in
  List.for_all
    (fun u ->
      List.for_all
        (fun r ->
          List.for_all
            (fun pos -> Policy.check a ~user:u ~right:r ~pos = Policy.check b ~user:u ~right:r ~pos)
            [ None; Some 0; Some 1; Some 5; Some 50 ])
        Right.all)
    users
  && Policy.auth_count a = Policy.auth_count b

let check controllers =
  match controllers with
  | [] ->
    {
      documents_agree = true;
      versions_agree = true;
      policies_agree = true;
      queues_empty = true;
      no_tentative_left = true;
      flags_agree = true;
    }
  | c0 :: rest ->
    let documents_agree =
      List.for_all
        (fun c ->
          Tdoc.equal_model Char.equal (Controller.document c0) (Controller.document c))
        rest
    in
    let versions_agree =
      List.for_all (fun c -> Controller.version c = Controller.version c0) rest
    in
    let policies_agree =
      List.for_all (fun c -> policies_equal (Controller.policy c0) (Controller.policy c)) rest
    in
    let queues_empty =
      List.for_all
        (fun c -> Controller.pending_coop c = 0 && Controller.pending_admin c = 0)
        controllers
    in
    let no_tentative_left =
      List.for_all (fun c -> Controller.tentative c = []) controllers
    in
    let flags_agree =
      (* logs may have been garbage-collected at different points, so
         compare the fates of the requests two sites both still store *)
      let flags c =
        List.map
          (fun (q : char Request.t) -> (q.Request.id, q.Request.flag))
          (Oplog.requests (Controller.oplog c))
      in
      let f0 = flags c0 in
      List.for_all
        (fun c ->
          List.for_all
            (fun (id, flag) ->
              match List.assoc_opt id f0 with
              | Some flag0 -> flag = flag0
              | None -> true)
            (flags c))
        rest
    in
    {
      documents_agree;
      versions_agree;
      policies_agree;
      queues_empty;
      no_tentative_left;
      flags_agree;
    }

let ok r =
  r.documents_agree && r.versions_agree && r.policies_agree && r.queues_empty
  && r.no_tentative_left && r.flags_agree

let pp ppf r =
  let b ppf v = Format.pp_print_string ppf (if v then "yes" else "NO") in
  Format.fprintf ppf
    "@[<v>documents agree: %a@ versions agree: %a@ policies agree: %a@ queues empty: \
     %a@ no tentative left: %a@ flags agree: %a@]"
    b r.documents_agree b r.versions_agree b r.policies_agree b r.queues_empty b
    r.no_tentative_left b r.flags_agree
