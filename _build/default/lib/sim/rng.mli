(** Deterministic pseudo-random numbers (splitmix64).

    Every simulation is a pure function of its seed: the same seed always
    produces the same schedule, message delays and workload, across runs
    and machines — which is what makes failing property tests replayable.
    The state is explicit and immutable. *)

type t

val make : int64 -> t
val of_int : int -> t

val next : t -> int64 * t

val int : t -> int -> int * t
(** [int r bound]: uniform in [[0, bound)]; [bound > 0]. *)

val in_range : t -> int -> int -> int * t
(** [in_range r lo hi]: uniform in [[lo, hi]] inclusive. *)

val float : t -> float -> float * t
(** [float r bound]: uniform in [[0, bound)]. *)

val bool : t -> float -> bool * t
(** [bool r p]: [true] with probability [p]. *)

val pick : t -> 'a list -> 'a * t
(** Uniform choice; raises [Invalid_argument] on an empty list. *)

val weighted : t -> (int * 'a) list -> 'a * t
(** Choice weighted by the integer weights (all non-negative, sum > 0). *)

val split : t -> t * t
(** Two independent generators. *)
