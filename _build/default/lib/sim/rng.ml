type t = int64

let golden_gamma = 0x9E3779B97F4A7C15L

let make seed = seed
let of_int n = Int64.of_int n

(* splitmix64 output function *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  let t = Int64.add t golden_gamma in
  (mix t, t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let x, t = next t in
  (Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound)), t)

let in_range t lo hi =
  if lo > hi then invalid_arg "Rng.in_range: empty range";
  let x, t = int t (hi - lo + 1) in
  (lo + x, t)

let float t bound =
  let x, t = next t in
  let u = Int64.to_float (Int64.shift_right_logical x 11) /. 9007199254740992.0 in
  (u *. bound, t)

let bool t p =
  let x, t = float t 1.0 in
  (x < p, t)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l ->
    let i, t = int t (List.length l) in
    (List.nth l i, t)

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: weights sum to zero";
  let x, t = int t total in
  let rec go x = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, v) :: rest -> if x < w then v else go (x - w) rest
  in
  (go x choices, t)

let split t =
  let a, t = next t in
  let b, _ = next t in
  (make a, make b)
