type op_mix = { ins : int; del : int; up : int }

let mix ins del up =
  if ins < 0 || del < 0 || up < 0 || ins + del + up = 0 then
    invalid_arg "Workload.mix: invalid weights";
  { ins; del; up }

type profile = {
  users : int;
  duration : int;
  edit_interval : int * int;
  op_mix : op_mix;
  admin_interval : (int * int) option;
  revoke_bias : float;
  handoff_prob : float;
  compact_every : int option;
  latency : Net.latency;
  fifo : bool;
  initial_text : string;
}

let default =
  {
    users = 3;
    duration = 2_000;
    edit_interval = (20, 120);
    op_mix = mix 5 3 2;
    admin_interval = None;
    revoke_bias = 0.5;
    handoff_prob = 0.;
    compact_every = None;
    latency = Net.Uniform (5, 80);
    fifo = false;
    initial_text = "the quick brown fox";
  }

let with_admin = { default with admin_interval = Some (100, 400); revoke_bias = 0.6 }
