(** Workload profiles: the knobs the paper's evaluation (and ours) turns.

    A profile describes a whole collaborative session statistically; the
    runner ({!Runner}) samples it deterministically from a seed.  Editing
    behaviour is modelled per site as a renewal process (wait a random
    interval, make an edit) with a weighted operation mix — the paper's
    Fig. 7 varies exactly this mix (percentage of insertions).  The
    administrator, when enabled, alternates between restrictive actions
    (adding negative authorizations, removing them) at its own rate. *)

type op_mix = { ins : int; del : int; up : int }
(** Relative weights; e.g. [{ins = 100; del = 0; up = 0}] is the paper's
    "100% INS" workload. *)

val mix : int -> int -> int -> op_mix

type profile = {
  users : int;  (** number of non-administrator users (sites 1..users) *)
  duration : int;  (** virtual time during which sites edit *)
  edit_interval : int * int;  (** min/max wait between two edits of a site *)
  op_mix : op_mix;
  admin_interval : (int * int) option;
      (** when set, the administrator toggles authorizations at this rate *)
  revoke_bias : float;
      (** probability that an administrator action is restrictive (the
          rest remove a previously added negative authorization) *)
  handoff_prob : float;
      (** probability that an administrator action is instead a
          [Transfer_admin] to a random user (delegation extension) *)
  compact_every : int option;
      (** when set, every site garbage-collects its log after this many
          deliveries (log-GC extension) *)
  latency : Net.latency;
  fifo : bool;
  initial_text : string;
}

val default : profile
(** 3 users, mixed operations, moderate latency, no administrator
    activity. *)

val with_admin : profile
(** [default] plus administrator activity (the adversarial schedule the
    security property tests use). *)
