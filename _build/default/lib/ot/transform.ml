open Op

(* Inclusion transformation in the tombstone model.  Only insertions
   shift positions: deletions hide cells in place, updates add tagged
   writes in place, and their undos retract in place.  Content conflicts
   are resolved by the cells themselves (hide counters, write tags), so
   no transformation case needs to produce Nop or rewrite elements —
   which is what makes the rule set satisfy TP1 and TP2 and keeps every
   operation retractable (see op.mli). *)

let shift_after_ins p ins_pos = if p < ins_pos then p else p + 1

let reposition o pos =
  match o with
  | Del d -> Del { d with pos }
  | Undel d -> Undel { d with pos }
  | Up u -> Up { u with pos }
  | Unup u -> Unup { u with pos }
  | Ins _ | Nop -> assert false

let it o1 o2 =
  match o1, o2 with
  | Nop, _ -> Nop
  | o1, Nop -> o1
  | Ins i1, Ins i2 ->
    if i1.pos < i2.pos then o1
    else if i1.pos > i2.pos then Ins { i1 with pos = i1.pos + 1 }
    else if i1.pr > i2.pr then Ins { i1 with pos = i1.pos + 1 }
    else o1
  | Ins _, (Del _ | Undel _ | Up _ | Unup _) -> o1
  | (Del _ | Undel _ | Up _ | Unup _), Ins i2 ->
    let p = Option.get (pos o1) in
    reposition o1 (shift_after_ins p i2.pos)
  | (Del _ | Undel _ | Up _ | Unup _), (Del _ | Undel _ | Up _ | Unup _) -> o1

(* Exclusion transformation: [et o1 o2] rewrites [o1] — defined on a state
   that includes [o2]'s effect — as if [o2] had never executed.  Inverts
   [it] on every reachable pair. *)
let unshift_after_ins p ins_pos = if p <= ins_pos then p else p - 1

let et o1 o2 =
  match o1, o2 with
  | Nop, _ -> Nop
  | o1, Nop -> o1
  | Ins i1, Ins i2 -> if i1.pos <= i2.pos then o1 else Ins { i1 with pos = i1.pos - 1 }
  | Ins _, (Del _ | Undel _ | Up _ | Unup _) -> o1
  | (Del _ | Undel _ | Up _ | Unup _), Ins i2 ->
    let p = Option.get (pos o1) in
    reposition o1 (unshift_after_ins p i2.pos)
  | (Del _ | Undel _ | Up _ | Unup _), (Del _ | Undel _ | Up _ | Unup _) -> o1

let it_list o ops = List.fold_left it o ops
