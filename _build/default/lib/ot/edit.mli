(** Composite edits: the cut/copy/paste layer.

    The paper notes (§3.1) that combinations of the three primitive
    operations "enable us to define more complex ones, such as cut/copy
    and paste, that are intensively used in professional text editors".
    This module is that combination layer: a high-level edit in visible
    coordinates compiles to the sequence of primitive operations that
    realises it, each built against the document state its predecessors
    produce — ready to feed one by one to
    [Engine.generate]/[Controller.generate], which is exactly how a front
    end issues a paste (the requests chain causally, so remote sites
    replay them atomically in order). *)

type 'e t =
  | Insert_text of { at : int; elts : 'e list }
      (** splice a run of elements at a visible position *)
  | Delete_range of { at : int; len : int }
      (** remove [len] visible elements starting at [at] (cut) *)
  | Replace_range of { at : int; len : int; elts : 'e list }
      (** cut + paste in one gesture (e.g. typing over a selection) *)

val insert_string : int -> string -> char t
val replace_string : at:int -> len:int -> string -> char t

val copy : 'e Tdoc.t -> at:int -> len:int -> 'e list
(** The visible elements of the range — a clipboard. *)

val compile : 'e Tdoc.t -> 'e t -> ('e Op.t list, string) result
(** The primitive operations realising the edit, each in the model
    coordinates of the state left by the previous ones.  Fails on
    out-of-range positions. *)

val preview : 'e Tdoc.t -> 'e t -> ('e Tdoc.t, string) result
(** The document after the edit (compile + apply; for tests and UIs). *)
