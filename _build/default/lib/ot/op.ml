type tag = { stamp : int; site : int }

let compare_tag a b =
  match compare a.stamp b.stamp with 0 -> compare a.site b.site | c -> c

type 'e t =
  | Ins of { pos : int; elt : 'e; pr : int }
  | Del of { pos : int; elt : 'e }
  | Undel of { pos : int; elt : 'e }
  | Up of { pos : int; before : 'e; after : 'e; tag : tag }
  | Unup of { pos : int; value : 'e; tag : tag }
  | Nop

let check_pos name pos = if pos < 0 then invalid_arg ("Op." ^ name ^ ": negative position")

let ins ?(pr = 0) pos elt =
  check_pos "ins" pos;
  Ins { pos; elt; pr }

let del pos elt =
  check_pos "del" pos;
  Del { pos; elt }

let undel pos elt =
  check_pos "undel" pos;
  Undel { pos; elt }

let up ?(tag = { stamp = 0; site = 0 }) pos before after =
  check_pos "up" pos;
  Up { pos; before; after; tag }

let unup ~tag pos value =
  check_pos "unup" pos;
  Unup { pos; value; tag }

let is_nop = function Nop -> true | _ -> false
let is_ins = function Ins _ -> true | _ -> false
let is_del = function Del _ -> true | _ -> false
let is_undel = function Undel _ -> true | _ -> false
let is_up = function Up _ -> true | _ -> false
let is_unup = function Unup _ -> true | _ -> false

let pos = function
  | Ins { pos; _ } | Del { pos; _ } | Undel { pos; _ } | Up { pos; _ } | Unup { pos; _ }
    ->
    Some pos
  | Nop -> None

let with_stamp ~site ~stamp = function
  | Ins i -> Ins { i with pr = site }
  | Up u -> Up { u with tag = { stamp; site } }
  | (Del _ | Undel _ | Unup _ | Nop) as o -> o

let inverse = function
  | Ins { pos; elt; _ } -> Del { pos; elt }
  | Del { pos; elt } -> Undel { pos; elt }
  | Undel { pos; elt } -> Del { pos; elt }
  | Up { pos; after; tag; _ } -> Unup { pos; value = after; tag }
  | Unup { pos; value; tag } -> Up { pos; before = value; after = value; tag }
  | Nop -> Nop

let equal eq_elt a b =
  match a, b with
  | Ins a, Ins b -> a.pos = b.pos && a.pr = b.pr && eq_elt a.elt b.elt
  | Del a, Del b -> a.pos = b.pos && eq_elt a.elt b.elt
  | Undel a, Undel b -> a.pos = b.pos && eq_elt a.elt b.elt
  | Up a, Up b ->
    a.pos = b.pos && compare_tag a.tag b.tag = 0 && eq_elt a.before b.before
    && eq_elt a.after b.after
  | Unup a, Unup b -> a.pos = b.pos && compare_tag a.tag b.tag = 0 && eq_elt a.value b.value
  | Nop, Nop -> true
  | (Ins _ | Del _ | Undel _ | Up _ | Unup _ | Nop), _ -> false

let pp_tag ppf { stamp; site } = Format.fprintf ppf "%d.%d" stamp site

let pp pp_elt ppf = function
  | Ins { pos; elt; pr } -> Format.fprintf ppf "Ins(%d, %a)@%d" pos pp_elt elt pr
  | Del { pos; elt } -> Format.fprintf ppf "Del(%d, %a)" pos pp_elt elt
  | Undel { pos; elt } -> Format.fprintf ppf "Undel(%d, %a)" pos pp_elt elt
  | Up { pos; before; after; tag } ->
    Format.fprintf ppf "Up(%d, %a -> %a)#%a" pos pp_elt before pp_elt after pp_tag tag
  | Unup { pos; value; tag } ->
    Format.fprintf ppf "Unup(%d, %a)#%a" pos pp_elt value pp_tag tag
  | Nop -> Format.pp_print_string ppf "Nop"

let to_string elt_to_string o =
  let pp_elt ppf e = Format.pp_print_string ppf (elt_to_string e) in
  Format.asprintf "%a" (pp pp_elt) o
