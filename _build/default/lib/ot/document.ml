exception Edit_conflict of string

module type S = sig
  type 'e t

  val empty : unit -> 'e t
  val of_list : 'e list -> 'e t
  val to_list : 'e t -> 'e list
  val length : 'e t -> int
  val get : 'e t -> int -> 'e
  val apply : ?eq:('e -> 'e -> bool) -> 'e t -> 'e Op.t -> 'e t
  val apply_all : ?eq:('e -> 'e -> bool) -> 'e t -> 'e Op.t list -> 'e t
  val equal : ('e -> 'e -> bool) -> 'e t -> 'e t -> bool
  val pp : (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e t -> unit
end

let conflict fmt = Format.kasprintf (fun s -> raise (Edit_conflict s)) fmt

let check_expected ~eq ~what ~pos ~found ~expected =
  if not (eq found expected) then
    conflict "%s at position %d: unexpected element" what pos

module Array_doc = struct
  type 'e t = 'e array

  let empty () = [||]
  let of_list = Array.of_list
  let to_list = Array.to_list
  let length = Array.length
  let get doc i = doc.(i)

  let apply ?(eq = ( = )) doc op =
    match op with
    | Op.Nop -> doc
    | Op.Ins { pos; elt; _ } | Op.Undel { pos; elt } ->
      let n = Array.length doc in
      if pos < 0 || pos > n then invalid_arg "Array_doc.apply: Ins out of bounds";
      Array.init (n + 1) (fun i ->
          if i < pos then doc.(i) else if i = pos then elt else doc.(i - 1))
    | Op.Del { pos; elt } ->
      let n = Array.length doc in
      if pos < 0 || pos >= n then invalid_arg "Array_doc.apply: Del out of bounds";
      check_expected ~eq ~what:"Del" ~pos ~found:doc.(pos) ~expected:elt;
      Array.init (n - 1) (fun i -> if i < pos then doc.(i) else doc.(i + 1))
    | Op.Up { pos; before; after; _ } ->
      let n = Array.length doc in
      if pos < 0 || pos >= n then invalid_arg "Array_doc.apply: Up out of bounds";
      check_expected ~eq ~what:"Up" ~pos ~found:doc.(pos) ~expected:before;
      Array.init n (fun i -> if i = pos then after else doc.(i))
    | Op.Unup { pos; value; _ } ->
      let n = Array.length doc in
      if pos < 0 || pos >= n then invalid_arg "Array_doc.apply: Unup out of bounds";
      Array.init n (fun i -> if i = pos then value else doc.(i))

  let apply_all ?eq doc ops = List.fold_left (fun d o -> apply ?eq d o) doc ops

  let equal eq_elt a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (eq_elt a.(i) b.(i) && go (i + 1)) in
    go 0

  let pp pp_elt ppf doc =
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_elt)
      (Array.to_list doc)
end

(* A gap buffer: elements live in [buf.(0 .. gap_start-1)] and
   [buf.(gap_end .. cap-1)]; the gap in between absorbs edits.  Moving the
   gap costs the distance moved, so localised edits are amortised O(1). *)
module Gap_doc = struct
  type 'e buffer = {
    mutable buf : 'e option array;
    mutable gap_start : int;
    mutable gap_end : int;
  }

  type 'e t = 'e buffer

  let initial_capacity = 16

  let make_buf cap = Array.make cap None

  let empty () = { buf = make_buf initial_capacity; gap_start = 0; gap_end = initial_capacity }

  let length d = Array.length d.buf - (d.gap_end - d.gap_start)

  let of_list l =
    let n = List.length l in
    let cap = max initial_capacity (2 * n) in
    let buf = make_buf cap in
    List.iteri (fun i e -> buf.(i) <- Some e) l;
    { buf; gap_start = n; gap_end = cap }

  let unsafe_get d i =
    let phys = if i < d.gap_start then i else i + (d.gap_end - d.gap_start) in
    match d.buf.(phys) with
    | Some e -> e
    | None -> assert false

  let get d i =
    if i < 0 || i >= length d then invalid_arg "Gap_doc.get: out of bounds";
    unsafe_get d i

  let to_list d = List.init (length d) (unsafe_get d)

  let move_gap d pos =
    if pos < d.gap_start then begin
      let shift = d.gap_start - pos in
      Array.blit d.buf pos d.buf (d.gap_end - shift) shift;
      Array.fill d.buf pos (min shift (d.gap_end - shift - pos)) None;
      d.gap_start <- pos;
      d.gap_end <- d.gap_end - shift
    end
    else if pos > d.gap_start then begin
      let shift = pos - d.gap_start in
      Array.blit d.buf d.gap_end d.buf d.gap_start shift;
      let clear_from = max (d.gap_start + shift) d.gap_end in
      Array.fill d.buf clear_from (d.gap_end + shift - clear_from) None;
      d.gap_start <- d.gap_start + shift;
      d.gap_end <- d.gap_end + shift
    end

  let grow d =
    let len = length d in
    let cap = max initial_capacity (2 * Array.length d.buf) in
    let buf = make_buf cap in
    for i = 0 to len - 1 do
      buf.(i) <- Some (unsafe_get d i)
    done;
    d.buf <- buf;
    d.gap_start <- len;
    d.gap_end <- cap

  let insert d pos elt =
    if pos < 0 || pos > length d then invalid_arg "Gap_doc.apply: Ins out of bounds";
    if d.gap_start = d.gap_end then grow d;
    move_gap d pos;
    d.buf.(d.gap_start) <- Some elt;
    d.gap_start <- d.gap_start + 1

  let delete ~eq d pos expected =
    if pos < 0 || pos >= length d then invalid_arg "Gap_doc.apply: Del out of bounds";
    check_expected ~eq ~what:"Del" ~pos ~found:(unsafe_get d pos) ~expected;
    move_gap d (pos + 1);
    d.gap_start <- d.gap_start - 1;
    d.buf.(d.gap_start) <- None

  let update ~eq d pos before after =
    if pos < 0 || pos >= length d then invalid_arg "Gap_doc.apply: Up out of bounds";
    check_expected ~eq ~what:"Up" ~pos ~found:(unsafe_get d pos) ~expected:before;
    let phys = if pos < d.gap_start then pos else pos + (d.gap_end - d.gap_start) in
    d.buf.(phys) <- Some after

  (* The interface is persistent; mutation happens in place and the same
     buffer is returned.  Callers that need snapshots use [of_list/to_list]. *)
  let apply ?(eq = ( = )) d op =
    (match op with
     | Op.Nop -> ()
     | Op.Ins { pos; elt; _ } | Op.Undel { pos; elt } -> insert d pos elt
     | Op.Del { pos; elt } -> delete ~eq d pos elt
     | Op.Up { pos; before; after; _ } -> update ~eq d pos before after
     | Op.Unup { pos; value; _ } ->
       let found = unsafe_get d pos in
       update ~eq d pos found value);
    d

  let apply_all ?eq d ops = List.fold_left (fun d o -> apply ?eq d o) d ops

  let equal eq_elt a b =
    length a = length b
    &&
    let rec go i = i >= length a || (eq_elt (unsafe_get a i) (unsafe_get b i) && go (i + 1)) in
    go 0

  let pp pp_elt ppf d =
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_elt)
      (to_list d)
end

module Str = struct
  type t = char Array_doc.t

  let of_string s = Array_doc.of_list (List.init (String.length s) (String.get s))
  let to_string d = String.init (Array_doc.length d) (Array_doc.get d)
  let apply d o = Array_doc.apply ~eq:Char.equal d o
  let apply_all d ops = Array_doc.apply_all ~eq:Char.equal d ops
end
