(** Plain linear documents (positional semantics).

    The paper models the shared object as a list whose element type is a
    parameter (a character, a paragraph, an XML node…).  This module
    provides {e positional} document stores where [Del] physically removes
    its element ([Undel] re-inserts it): the semantics used by the
    positional baseline algorithms ([Dce_baseline]) and by front ends that
    render visible state.  The OT engine itself executes on the tombstone
    model, {!Tdoc}.

    Two implementations behind the same interface:

    - {!Array_doc}: a persistent array-backed document.  Simple and
      immutable; the oracle used by the test suite.
    - {!Gap_doc}: a mutable gap buffer with amortised O(1) edits near the
      cursor; used by the benchmarks.  The interface is persistent but the
      same buffer is returned: snapshot with [to_list] when needed.

    Both raise [Invalid_argument] on out-of-bounds positions and
    [Edit_conflict] when a [Del]/[Up] finds an unexpected element (that
    situation signals a transformation bug, never a user error). *)

exception Edit_conflict of string

module type S = sig
  type 'e t

  val empty : unit -> 'e t
  val of_list : 'e list -> 'e t
  val to_list : 'e t -> 'e list
  val length : 'e t -> int
  val get : 'e t -> int -> 'e

  val apply : ?eq:('e -> 'e -> bool) -> 'e t -> 'e Op.t -> 'e t
  (** [apply doc o] executes cooperative operation [o].  [eq] (default
      structural equality) checks [Del]/[Up] expectations; a mismatch
      raises {!Edit_conflict}. *)

  val apply_all : ?eq:('e -> 'e -> bool) -> 'e t -> 'e Op.t list -> 'e t
  val equal : ('e -> 'e -> bool) -> 'e t -> 'e t -> bool
  val pp : (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e t -> unit
end

module Array_doc : S

module Gap_doc : S

(** Convenience functions for the common character-document case. *)
module Str : sig
  type t = char Array_doc.t

  val of_string : string -> t
  val to_string : t -> string
  val apply : t -> char Op.t -> t
  val apply_all : t -> char Op.t list -> t
end
