type role = Normal | Canceller of Request.id

type 'e entry = { req : 'e Request.t; role : role }

(* Entries in execution order, plus the per-site serial floor below
   which entries have been compacted away.  The list is rebuilt on
   integration; all public operations are on the order of the log
   length. *)
type 'e t = { entries : 'e entry list; compacted : Vclock.t }

let empty = { entries = []; compacted = Vclock.empty }

let length h = List.length h.entries

let live_length = length

let entries h = h.entries

let of_entries ~compacted entries = { entries; compacted }

let compacted_upto h = h.compacted

let requests h =
  List.filter_map
    (fun e -> match e.role with Normal -> Some e.req | Canceller _ -> None)
    h.entries

let ops h = List.map (fun e -> e.req.Request.op) h.entries

let find id h =
  List.find_map
    (fun e ->
      match e.role with
      | Normal when Request.id_equal e.req.Request.id id -> Some e.req
      | Normal | Canceller _ -> None)
    h.entries

let mem id h =
  Vclock.dominates_event h.compacted ~site:id.Request.site ~count:id.Request.serial
  || Option.is_some (find id h)

let set_flag id flag h =
  {
    h with
    entries =
      List.map
        (fun e ->
          match e.role with
          | Normal when Request.id_equal e.req.Request.id id ->
            { e with req = { e.req with Request.flag } }
          | Normal | Canceller _ -> e)
        h.entries;
  }

let tentative_requests h =
  List.filter (fun (q : _ Request.t) -> q.Request.flag = Request.Tentative) (requests h)

let broadcast_form (q : 'e Request.t) h =
  let rec last_normal acc = function
    | [] -> acc
    | { role = Normal; req } :: rest -> last_normal (Some req.Request.id) rest
    | { role = Canceller _; _ } :: rest -> last_normal acc rest
  in
  { q with Request.dep = last_normal None h.entries }

(* Adjacent transposition: given consecutive entries [a; b], produce
   [b'; a'] with the same combined effect.  [b'] excludes [a]'s effect;
   [a'] re-includes [b']'s. *)
let transpose a b =
  let b_op = Transform.et b.req.Request.op a.req.Request.op in
  let a_op = Transform.it a.req.Request.op b_op in
  ( { b with req = { b.req with Request.op = b_op } },
    { a with req = { a.req with Request.op = a_op } } )

(* Canonize: bubble the entry at index [i] (an insertion) backwards past
   the deletion/update entries before it, stopping at the first insertion
   or Nop-carrying entry. *)
let canonize_last arr =
  let movable op = Op.is_del op || Op.is_undel op || Op.is_up op in
  let rec bubble i =
    if i > 0 && Op.is_ins arr.(i).req.Request.op && movable arr.(i - 1).req.Request.op
    then begin
      let b', a' = transpose arr.(i - 1) arr.(i) in
      arr.(i - 1) <- b';
      arr.(i) <- a';
      bubble (i - 1)
    end
  in
  bubble (Array.length arr - 1)

let append_entry_canonized h entry =
  let arr = Array.of_list (h.entries @ [ entry ]) in
  canonize_last arr;
  { h with entries = Array.to_list arr }

let append_local q h = append_entry_canonized h { req = q; role = Normal }

(* Does the request [q] causally include entry [e]?  Normal entries are
   classified by the vector clock.  A canceller is part of [q]'s context
   iff its target is and the administrative cut that created it
   (recorded as the canceller request's [policy_version]) is below [q]'s
   generation version — see DESIGN §4.4 and the .mli. *)
let in_context_of (q : _ Request.t) e =
  match e.role with
  | Normal ->
    Vclock.dominates_event q.Request.ctx ~site:e.req.Request.id.Request.site
      ~count:e.req.Request.id.Request.serial
  | Canceller target ->
    Vclock.dominates_event q.Request.ctx ~site:target.Request.site
      ~count:target.Request.serial
    && q.Request.policy_version >= e.req.Request.policy_version

(* SOCT2-style separation: reorder the log so that every entry in [q]'s
   causal context comes before every entry concurrent with [q], by
   bubbling context entries leftwards with adjacent transpositions.
   Returns the reordered array and the index of the first concurrent
   entry. *)
let separate q h =
  let arr = Array.of_list h.entries in
  let n = Array.length arr in
  let boundary = ref 0 in
  for i = 0 to n - 1 do
    if in_context_of q arr.(i) then begin
      (* move arr.(i) down to !boundary *)
      let e = ref arr.(i) in
      for j = i downto !boundary + 1 do
        let b', a' = transpose arr.(j - 1) !e in
        arr.(j) <- a';
        e := b'
      done;
      arr.(!boundary) <- !e;
      incr boundary
    end
  done;
  (arr, !boundary)

let transform_against arr from q_op =
  let op = ref q_op in
  for i = from to Array.length arr - 1 do
    op := Transform.it !op arr.(i).req.Request.op
  done;
  !op

let integrate q h =
  let arr, boundary = separate q h in
  let op = transform_against arr boundary q.Request.op in
  let entry = { req = { q with Request.op }; role = Normal } in
  let h' = append_entry_canonized { h with entries = Array.to_list arr } entry in
  (op, h')

let canceller_of ~cancel_version (q : 'e Request.t) op =
  {
    req = { q with Request.op; Request.policy_version = cancel_version;
            Request.flag = Request.Invalid };
    role = Canceller q.Request.id;
  }

let undo ~cancel_version id h =
  let rec split acc = function
    | [] -> None
    | ({ role = Normal; req } as e) :: rest when Request.id_equal req.Request.id id ->
      if req.Request.flag = Request.Invalid then None
      else Some (List.rev acc, e, rest)
    | e :: rest -> split (e :: acc) rest
  in
  match split [] h.entries with
  | None -> None
  | Some (before, e, after) ->
    let inv =
      List.fold_left
        (fun op e' -> Transform.it op e'.req.Request.op)
        (Op.inverse e.req.Request.op) after
    in
    let e' = { e with req = { e.req with Request.flag = Request.Invalid } } in
    let cancel = canceller_of ~cancel_version e.req inv in
    Some (inv, { h with entries = before @ (e' :: after) @ [ cancel ] })

(* Rejecting a request = integrating it and undoing it on the spot: the
   request's cells enter the model (as tombstones, net visible effect
   zero), so later requests that causally include it still find their
   generation context in the log.  Both returned operations must be
   executed on the document, in order. *)
let append_rejected ~cancel_version q h =
  let op, h = integrate { q with Request.flag = Request.Tentative } h in
  match undo ~cancel_version q.Request.id h with
  | Some (inv, h) -> ((op, inv), h)
  | None -> assert false

let causally_ready (q : _ Request.t) h =
  List.for_all
    (fun (site, count) -> count = 0 || mem { Request.site; Request.serial = count } h)
    (Vclock.to_list q.Request.ctx)

let is_canonical h =
  let rec go seen_du = function
    | [] -> true
    | e :: rest ->
      let op = e.req.Request.op in
      if Op.is_ins op && seen_du then false
      else go (seen_du || Op.is_del op || Op.is_up op) rest
  in
  go false h.entries

(* Compaction: drop the longest stable prefix (see the .mli for the
   soundness argument). *)
let compact ~stable ~stable_version h =
  let droppable e =
    match e.role with
    | Normal ->
      e.req.Request.flag <> Request.Tentative
      && Vclock.dominates_event stable ~site:e.req.Request.id.Request.site
           ~count:e.req.Request.id.Request.serial
    | Canceller target ->
      e.req.Request.policy_version <= stable_version
      && Vclock.dominates_event stable ~site:target.Request.site
           ~count:target.Request.serial
  in
  let rec go compacted = function
    | e :: rest when droppable e ->
      let compacted =
        match e.role with
        | Normal ->
          let site = e.req.Request.id.Request.site in
          let serial = e.req.Request.id.Request.serial in
          if Vclock.get compacted site < serial then
            Vclock.merge compacted (Vclock.of_list [ (site, serial) ])
          else compacted
        | Canceller _ -> compacted
      in
      go compacted rest
    | rest -> (compacted, rest)
  in
  let compacted, entries = go h.compacted h.entries in
  { entries; compacted }

let pp pp_elt ppf h =
  let pp_entry ppf e =
    match e.role with
    | Normal -> Request.pp pp_elt ppf e.req
    | Canceller id ->
      Format.fprintf ppf "undo(%a)[%a]" Request.pp_id id (Op.pp pp_elt) e.req.Request.op
  in
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_entry)
    h.entries
