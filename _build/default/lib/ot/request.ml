type id = { site : Vclock.site; serial : int }

type flag = Tentative | Valid | Invalid

type 'e t = {
  id : id;
  dep : id option;
  op : 'e Op.t;
  gen_op : 'e Op.t;
  ctx : Vclock.t;
  policy_version : int;
  flag : flag;
}

let make ~site ~serial ?dep ~op ~ctx ~policy_version ~flag () =
  { id = { site; serial }; dep; op; gen_op = op; ctx; policy_version; flag }

let clock_after q = Vclock.tick q.ctx q.id.site

let happened_before a b =
  Vclock.dominates_event b.ctx ~site:a.id.site ~count:a.id.serial

let concurrent a b = (not (happened_before a b)) && not (happened_before b a)

let id_equal a b = a.site = b.site && a.serial = b.serial

let pp_id ppf { site; serial } = Format.fprintf ppf "%d.%d" site serial

let pp_flag ppf f =
  Format.pp_print_string ppf
    (match f with Tentative -> "tentative" | Valid -> "valid" | Invalid -> "invalid")

let pp pp_elt ppf q =
  Format.fprintf ppf "@[<h>q%a%a[%a, v%d, %a]@]" pp_id q.id
    (fun ppf -> function
      | None -> Format.pp_print_string ppf ""
      | Some d -> Format.fprintf ppf "<-%a" pp_id d)
    q.dep (Op.pp pp_elt) q.op q.policy_version pp_flag q.flag
