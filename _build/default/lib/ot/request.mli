(** Cooperative requests (paper §5.1).

    A cooperative request [q] wraps an editing operation with the metadata
    the control algorithm needs: [(c, r, a, o, v, f)] in the paper's
    notation —

    - [site] ([q.c]): the issuing site;
    - [serial] ([q.r]): per-site serial number; [(site, serial)] is the
      request identity;
    - [dep] ([q.a]): identity of the cooperative request this one directly
      depends on ([None] for context-free requests), per the dependency
      relation of the coordination framework;
    - [op] ([q.o]): the cooperative operation;
    - [policy_version] ([q.v]): version of the policy copy that granted
      the operation at generation time;
    - [flag] ([q.f]): [Tentative] until validated by the administrator,
      then [Valid]; [Invalid] when rejected by a receiver's administrative
      log or undone by a restrictive administrative operation.

    In addition each request carries the issuing site's vector clock
    {e before} the request (the request's causal context), used by
    receivers to decide causal readiness and concurrency. *)

type id = { site : Vclock.site; serial : int }

type flag = Tentative | Valid | Invalid

type 'e t = {
  id : id;
  dep : id option;
  op : 'e Op.t;
      (** current form: rewritten by transformation as the request is
          integrated, transposed or cancelled *)
  gen_op : 'e Op.t;
      (** generation form: the operation exactly as issued, never
          rewritten — identical at every site, which is what lets access
          checks and retroactive enforcement decide identically
          everywhere (see [Dce_core.Checker]) *)
  ctx : Vclock.t;  (** causal context: clock of the issuing site before this request *)
  policy_version : int;
  flag : flag;
}

val make :
  site:Vclock.site ->
  serial:int ->
  ?dep:id ->
  op:'e Op.t ->
  ctx:Vclock.t ->
  policy_version:int ->
  flag:flag ->
  unit ->
  'e t
(** [gen_op] is initialised to [op]. *)

val clock_after : 'e t -> Vclock.t
(** The issuing site's clock after this request: [tick ctx id.site]. *)

val happened_before : 'e t -> 'e t -> bool
(** [happened_before a b]: [a] is in [b]'s causal past. *)

val concurrent : 'e t -> 'e t -> bool

val id_equal : id -> id -> bool
val pp_id : Format.formatter -> id -> unit
val pp_flag : Format.formatter -> flag -> unit
val pp : (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e t -> unit
