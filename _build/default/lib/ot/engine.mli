(** A plain OT collaboration site, without any access control.

    This is the paper's underlying coordination framework (§4.1, ref [4])
    exposed on its own: each site owns a (tombstone) document replica and
    a cooperative log, generates requests locally, and integrates remote
    requests in any causally-consistent order.  The secured controller
    ([Dce_core.Controller]) layers the policy machinery on top of the
    same log services.

    Remote requests may arrive in any order; the engine buffers those that
    are not yet causally ready and drains the buffer after every
    successful integration. *)

type 'e t

val create : ?eq:('e -> 'e -> bool) -> site:Vclock.site -> 'e Tdoc.t -> 'e t
(** [create ~site doc] starts a site with identity [site] and initial
    document state [doc] (the common [D0]).  [site] doubles as the
    priority stamped on generated operations, so site identities must be
    distinct. *)

val site : 'e t -> Vclock.site
val document : 'e t -> 'e Tdoc.t
val visible : 'e t -> 'e list
val log : 'e t -> 'e Oplog.t
val clock : 'e t -> Vclock.t

val pending : 'e t -> int
(** Number of buffered, not-yet-causally-ready remote requests. *)

val generate : 'e t -> 'e Op.t -> 'e t * 'e Request.t
(** Execute a local model-coordinate operation (build it with the
    [Tdoc.*_visible] helpers) and return the request to broadcast
    (already in broadcast form, ComputeBF applied). *)

val receive : 'e t -> 'e Request.t -> 'e t
(** Accept a remote request: integrate it if causally ready (then drain
    the buffer), otherwise buffer it.  Duplicate deliveries (requests
    already in the log) are ignored. *)
