(** Vector clocks over dynamic site sets.

    The paper's coordination framework avoids vector timestamps by tracking
    direct dependencies (a dependency tree); we carry those dependency
    identifiers too (see {!Request}), but use vector clocks as the ground
    truth for the happened-before relation.  Clocks are maps from site
    identifiers to counters, so sites can join and leave at any time
    without fixed-width vectors (DESIGN §4.3). *)

type site = int

type t

val empty : t

val get : t -> site -> int
(** [get c s] is [s]'s counter, [0] if absent. *)

val tick : t -> site -> t
(** Increment [s]'s counter. *)

val merge : t -> t -> t
(** Pointwise maximum. *)

val meet : t -> t -> t
(** Pointwise minimum (a site missing from either clock counts as 0 and
    disappears from the result).  The meet of what every group member
    has seen is the stability frontier used for log compaction. *)

val leq : t -> t -> bool
(** [leq a b]: every counter of [a] is [<=] the corresponding counter of
    [b] — i.e. [a] happened before or equals [b]. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val dominates_event : t -> site:site -> count:int -> bool
(** [dominates_event c ~site ~count]: the event numbered [count] issued by
    [site] is covered by [c]. *)

val sum : t -> int
(** Total number of events covered: a Lamport-style scalar ([a] happened
    before [b] implies [sum a < sum b] for the clocks of successive
    requests). *)

val to_list : t -> (site * int) list
val of_list : (site * int) list -> t
val pp : Format.formatter -> t -> unit
