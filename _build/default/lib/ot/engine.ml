type 'e t = {
  site : Vclock.site;
  eq : 'e -> 'e -> bool;
  doc : 'e Tdoc.t;
  log : 'e Oplog.t;
  clock : Vclock.t;
  serial : int;
  buffer : 'e Request.t list;
}

let create ?(eq = ( = )) ~site doc =
  { site; eq; doc; log = Oplog.empty; clock = Vclock.empty; serial = 0; buffer = [] }

let site t = t.site
let document t = t.doc
let visible t = Tdoc.visible_list t.doc
let log t = t.log
let clock t = t.clock
let pending t = List.length t.buffer

let generate t op =
  let op = Op.with_stamp ~site:t.site ~stamp:(Vclock.sum t.clock + 1) op in
  let serial = t.serial + 1 in
  let q =
    Request.make ~site:t.site ~serial ~op ~ctx:t.clock ~policy_version:0
      ~flag:Request.Valid ()
  in
  let q = Oplog.broadcast_form q t.log in
  let doc = Tdoc.apply ~eq:t.eq t.doc op in
  let log = Oplog.append_local q t.log in
  let clock = Vclock.tick t.clock t.site in
  ({ t with doc; log; clock; serial }, q)

let integrate t q =
  let op, log = Oplog.integrate q t.log in
  let doc = Tdoc.apply ~eq:t.eq t.doc op in
  let clock = Vclock.tick t.clock q.Request.id.Request.site in
  { t with doc; log; clock }

(* Drain the buffer to a fixed point: after each integration another
   buffered request may have become ready. *)
let rec drain t =
  let ready, waiting = List.partition (fun q -> Oplog.causally_ready q t.log) t.buffer in
  match ready with
  | [] -> t
  | _ ->
    let t = List.fold_left integrate { t with buffer = waiting } ready in
    drain t

let receive t q =
  if Oplog.mem q.Request.id t.log then t
  else if Oplog.causally_ready q t.log then drain (integrate t q)
  else { t with buffer = q :: t.buffer }
