type site = int

module M = Map.Make (Int)

type t = int M.t

let empty = M.empty

let get c s = match M.find_opt s c with Some n -> n | None -> 0

let tick c s = M.add s (get c s + 1) c

let merge a b = M.union (fun _ x y -> Some (max x y)) a b

let meet a b =
  M.merge
    (fun _ x y -> match x, y with Some x, Some y -> Some (min x y) | _ -> None)
    a b

let leq a b = M.for_all (fun s n -> n <= get b s) a

let equal a b = leq a b && leq b a

let concurrent a b = (not (leq a b)) && not (leq b a)

let dominates_event c ~site ~count = get c site >= count

let sum c = M.fold (fun _ n acc -> acc + n) c 0

let to_list c = M.bindings c

let of_list l = List.fold_left (fun acc (s, n) -> M.add s n acc) M.empty l

let pp ppf c =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (s, n) -> Format.fprintf ppf "%d:%d" s n))
    (to_list c)
