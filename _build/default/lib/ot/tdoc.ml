type 'e write = { wtag : Op.tag; value : 'e; retracted : int }

type 'e cell = { elt : 'e; writes : 'e write list; hidden : int }

type 'e t = 'e cell array

let empty = [||]

let fresh_cell elt = { elt; writes = []; hidden = 0 }

let of_list l = Array.of_list (List.map fresh_cell l)

let of_string s = of_list (List.init (String.length s) (String.get s))

let of_cells cells = Array.of_list cells

let model_length = Array.length

let content c =
  let best =
    List.fold_left
      (fun acc w ->
        if w.retracted > 0 then acc
        else
          match acc with
          | Some b when Op.compare_tag b.wtag w.wtag >= 0 -> acc
          | _ -> Some w)
      None c.writes
  in
  match best with Some w -> w.value | None -> c.elt

let history c = c.elt :: List.map (fun w -> w.value) c.writes

let visible_length d =
  Array.fold_left (fun n c -> if c.hidden = 0 then n + 1 else n) 0 d

let cell d i = d.(i)

let visible_list d =
  Array.fold_right (fun c acc -> if c.hidden = 0 then content c :: acc else acc) d []

let visible_string d =
  let b = Buffer.create (Array.length d) in
  Array.iter (fun c -> if c.hidden = 0 then Buffer.add_char b (content c)) d;
  Buffer.contents b

let model_list d = Array.to_list d

let model_of_visible d v =
  if v < 0 then invalid_arg "Tdoc.model_of_visible: negative position";
  let n = Array.length d in
  let rec go i seen =
    if seen = v && (i >= n || d.(i).hidden = 0) then i
    else if i >= n then invalid_arg "Tdoc.model_of_visible: beyond visible length"
    else go (i + 1) (if d.(i).hidden = 0 then seen + 1 else seen)
  in
  go 0 0

let visible_of_model d m =
  let m = min m (Array.length d) in
  let count = ref 0 in
  for i = 0 to m - 1 do
    if d.(i).hidden = 0 then incr count
  done;
  !count

let conflict fmt = Format.kasprintf (fun s -> raise (Document.Edit_conflict s)) fmt

let check_history ~eq ~what ~pos c expected =
  if not (List.exists (eq expected) (history c)) then
    conflict "%s at model position %d: element never present in the cell" what pos

let apply ?(eq = ( = )) d op =
  let n = Array.length d in
  let in_range what pos =
    if pos < 0 || pos >= n then
      invalid_arg (Printf.sprintf "Tdoc.apply: %s position %d out of range" what pos)
  in
  let update_cell pos f =
    let d' = Array.copy d in
    d'.(pos) <- f d.(pos);
    d'
  in
  match op with
  | Op.Nop -> d
  | Op.Ins { pos; elt; _ } ->
    if pos < 0 || pos > n then invalid_arg "Tdoc.apply: Ins position out of range";
    Array.init (n + 1) (fun i ->
        if i < pos then d.(i) else if i = pos then fresh_cell elt else d.(i - 1))
  | Op.Del { pos; elt } ->
    in_range "Del" pos;
    check_history ~eq ~what:"Del" ~pos d.(pos) elt;
    update_cell pos (fun c -> { c with hidden = c.hidden + 1 })
  | Op.Undel { pos; elt } ->
    in_range "Undel" pos;
    check_history ~eq ~what:"Undel" ~pos d.(pos) elt;
    if d.(pos).hidden = 0 then invalid_arg "Tdoc.apply: Undel of a visible cell";
    update_cell pos (fun c -> { c with hidden = c.hidden - 1 })
  | Op.Up { pos; before; after; tag } ->
    in_range "Up" pos;
    check_history ~eq ~what:"Up" ~pos d.(pos) before;
    if List.exists (fun w -> Op.compare_tag w.wtag tag = 0) d.(pos).writes then
      conflict "Up at model position %d: duplicate write tag" pos;
    update_cell pos (fun c ->
        { c with writes = { wtag = tag; value = after; retracted = 0 } :: c.writes })
  | Op.Unup { pos; tag; _ } ->
    in_range "Unup" pos;
    if not (List.exists (fun w -> Op.compare_tag w.wtag tag = 0) d.(pos).writes) then
      conflict "Unup at model position %d: unknown write tag" pos;
    update_cell pos (fun c ->
        {
          c with
          writes =
            List.map
              (fun w ->
                if Op.compare_tag w.wtag tag = 0 then
                  { w with retracted = w.retracted + 1 }
                else w)
              c.writes;
        })

let apply_all ?eq d ops = List.fold_left (fun d o -> apply ?eq d o) d ops

let ins_visible ?pr d v elt = Op.ins ?pr (model_of_visible d v) elt

let visible_cell_pos d v =
  let m = model_of_visible d v in
  if m >= Array.length d || d.(m).hidden <> 0 then
    invalid_arg "Tdoc: no visible cell at this position";
  m

let del_visible d v =
  let m = visible_cell_pos d v in
  Op.del m (content d.(m))

let up_visible ?tag d v after =
  let m = visible_cell_pos d v in
  Op.up ?tag m (content d.(m)) after

let equal_visible eq a b =
  let la = visible_list a and lb = visible_list b in
  List.length la = List.length lb && List.for_all2 eq la lb

let equal_cell eq a b =
  eq (content a) (content b)
  && a.hidden = b.hidden
  &&
  let norm c =
    List.sort (fun x y -> Op.compare_tag x.wtag y.wtag) c.writes
  in
  let wa = norm a and wb = norm b in
  List.length wa = List.length wb
  && List.for_all2
       (fun x y ->
         Op.compare_tag x.wtag y.wtag = 0 && eq x.value y.value
         && x.retracted = y.retracted)
       wa wb

let equal_model eq a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (equal_cell eq a.(i) b.(i) && go (i + 1)) in
  go 0

let pp pp_elt ppf d =
  let pp_cell ppf c =
    if c.hidden = 0 then pp_elt ppf (content c)
    else Format.fprintf ppf "(%a/%d)" pp_elt (content c) c.hidden
  in
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_cell)
    (Array.to_list d)
