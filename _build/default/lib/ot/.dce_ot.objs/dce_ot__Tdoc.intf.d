lib/ot/tdoc.mli: Format Op
