lib/ot/transform.mli: Op
