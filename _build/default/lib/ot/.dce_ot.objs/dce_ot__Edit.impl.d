lib/ot/edit.ml: List Printf Result String Tdoc
