lib/ot/request.mli: Format Op Vclock
