lib/ot/engine.ml: List Op Oplog Request Tdoc Vclock
