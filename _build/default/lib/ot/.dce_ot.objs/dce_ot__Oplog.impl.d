lib/ot/oplog.ml: Array Format List Op Option Request Transform Vclock
