lib/ot/document.ml: Array Char Format List Op String
