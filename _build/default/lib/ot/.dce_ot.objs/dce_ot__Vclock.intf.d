lib/ot/vclock.mli: Format
