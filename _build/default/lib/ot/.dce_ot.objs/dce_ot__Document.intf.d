lib/ot/document.mli: Format Op
