lib/ot/tdoc.ml: Array Buffer Document Format List Op Printf String
