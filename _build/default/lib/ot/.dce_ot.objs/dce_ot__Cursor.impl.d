lib/ot/cursor.ml: Format List Op Tdoc
