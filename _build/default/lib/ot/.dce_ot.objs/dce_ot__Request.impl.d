lib/ot/request.ml: Format Op Vclock
