lib/ot/vclock.ml: Format Int List Map
