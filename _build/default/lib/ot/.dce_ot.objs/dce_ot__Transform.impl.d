lib/ot/transform.ml: List Op Option
