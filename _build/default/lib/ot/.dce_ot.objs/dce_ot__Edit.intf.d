lib/ot/edit.mli: Op Tdoc
