lib/ot/oplog.mli: Format Op Request Vclock
