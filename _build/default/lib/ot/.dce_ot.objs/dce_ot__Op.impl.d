lib/ot/op.ml: Format
