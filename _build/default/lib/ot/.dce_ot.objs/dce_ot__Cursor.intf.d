lib/ot/cursor.mli: Format Op Tdoc
