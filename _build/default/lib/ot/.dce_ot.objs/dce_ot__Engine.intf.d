lib/ot/engine.mli: Op Oplog Request Tdoc Vclock
