lib/ot/op.mli: Format
