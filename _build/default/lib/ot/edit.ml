type 'e t =
  | Insert_text of { at : int; elts : 'e list }
  | Delete_range of { at : int; len : int }
  | Replace_range of { at : int; len : int; elts : 'e list }

let insert_string at s = Insert_text { at; elts = List.init (String.length s) (String.get s) }

let replace_string ~at ~len s =
  Replace_range { at; len; elts = List.init (String.length s) (String.get s) }

let check_range doc at len =
  let n = Tdoc.visible_length doc in
  if at < 0 || len < 0 || at + len > n then
    Error (Printf.sprintf "range [%d, %d) outside the visible document (length %d)" at (at + len) n)
  else Ok ()

let copy doc ~at ~len =
  match check_range doc at len with
  | Error _ -> []
  | Ok () ->
    List.filteri (fun i _ -> i >= at && i < at + len) (Tdoc.visible_list doc)

(* Build the operations one by one, each against the document produced by
   its predecessors (deleting [len] elements = deleting at the same
   visible position [len] times; inserting advances the position). *)
let compile doc edit =
  let deletions doc at len =
    let rec go doc acc k =
      if k = 0 then Ok (doc, List.rev acc)
      else
        let op = Tdoc.del_visible doc at in
        go (Tdoc.apply doc op) (op :: acc) (k - 1)
    in
    go doc [] len
  in
  let insertions doc at elts =
    let rec go doc acc i = function
      | [] -> Ok (doc, List.rev acc)
      | e :: rest ->
        let op = Tdoc.ins_visible doc (at + i) e in
        go (Tdoc.apply doc op) (op :: acc) (i + 1) rest
    in
    go doc [] 0 elts
  in
  match edit with
  | Insert_text { at; elts } ->
    let n = Tdoc.visible_length doc in
    if at < 0 || at > n then Error (Printf.sprintf "position %d outside [0, %d]" at n)
    else Result.map snd (insertions doc at elts)
  | Delete_range { at; len } ->
    (match check_range doc at len with
     | Error _ as e -> e
     | Ok () -> Result.map snd (deletions doc at len))
  | Replace_range { at; len; elts } ->
    (match check_range doc at len with
     | Error _ as e -> e
     | Ok () ->
       (match deletions doc at len with
        | Error _ as e -> e
        | Ok (doc, dels) ->
          (match insertions doc at elts with
           | Error _ as e -> e
           | Ok (_, inss) -> Ok (dels @ inss))))

let preview doc edit =
  match compile doc edit with
  | Error _ as e -> e
  | Ok ops -> Ok (Tdoc.apply_all doc ops)
