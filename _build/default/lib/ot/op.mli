(** Cooperative editing operations on a linear document (paper, Def. 1).

    The paper's operations are [Ins(p,e)], [Del(p,e)] and [Up(p,e,e')] on a
    list of elements.  Our transformation layer uses the {e tombstone}
    (TTF) model of Oster, Urso, Molli and Imine (the same research group's
    provably TP2-correct substrate — DESIGN §2): a deletion does not
    physically remove its element, it hides it.  Operation positions refer
    to the {e model} document, which includes hidden elements; the
    user-visible document is the projection that drops them (see {!Tdoc}).

    Two further choices make every effect {e retractable}, which is what
    the paper's optimistic security needs (illegal operations are undone
    after the fact, in any order relative to concurrent work):

    - hides are counted, so concurrent deletions of one element and their
      undos commute ([Undel] is the inverse of [Del]);
    - an update adds a {e tagged write} to its cell rather than
      overwriting it; the cell displays the write with the greatest tag
      and undoing an update retracts its write ([Unup] is the inverse of
      [Up]).  Tags are (Lamport stamp, site) pairs: a write that causally
      follows another always has a greater tag, and concurrent writes are
      ordered deterministically — so concurrent updates of one element
      commute too, and undoing the winning one reveals the other.

    Users generate [Ins]/[Del]/[Up]; [Undel]/[Unup] exist only as
    inverses produced by the undo machinery.

    [pr] on insertions is the issuing site's priority, breaking position
    ties between concurrent insertions. *)

type tag = { stamp : int; site : int }
(** Totally ordered by [(stamp, site)]; [stamp] is a Lamport stamp. *)

type 'e t =
  | Ins of { pos : int; elt : 'e; pr : int }
      (** Insert a fresh (visible) element at model position [pos]. *)
  | Del of { pos : int; elt : 'e }
      (** Hide the element at model position [pos].  [elt] is the display
          value the issuer saw (a sanity check, see {!Tdoc.apply}). *)
  | Undel of { pos : int; elt : 'e }
      (** Drop one hide mark from the element at model position [pos]. *)
  | Up of { pos : int; before : 'e; after : 'e; tag : tag }
      (** Write [after] to the cell at model position [pos]; [before] is
          the display value the issuer saw. *)
  | Unup of { pos : int; value : 'e; tag : tag }
      (** Retract the write [tag] from the cell at model position [pos]. *)
  | Nop  (** Identity. *)

val compare_tag : tag -> tag -> int

val ins : ?pr:int -> int -> 'e -> 'e t
val del : int -> 'e -> 'e t
val undel : int -> 'e -> 'e t
val up : ?tag:tag -> int -> 'e -> 'e -> 'e t
val unup : tag:tag -> int -> 'e -> 'e t

val is_nop : _ t -> bool
val is_ins : _ t -> bool
val is_del : _ t -> bool
val is_undel : _ t -> bool
val is_up : _ t -> bool
val is_unup : _ t -> bool

val pos : _ t -> int option
(** Model position affected, [None] for [Nop]. *)

val with_stamp : site:int -> stamp:int -> 'e t -> 'e t
(** Stamp a freshly generated operation with its issuer's identity:
    sets [pr] on [Ins] and [tag = {stamp; site}] on [Up]; other
    operations are unchanged. *)

val inverse : 'e t -> 'e t
(** The operation cancelling [o] on a state where [o] has just been
    applied: [inverse (Ins p e) = Del p e], [inverse (Del p e) = Undel p e],
    [inverse (Up p _ e τ) = Unup p e τ], and back. *)

val equal : ('e -> 'e -> bool) -> 'e t -> 'e t -> bool
val pp : (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e t -> unit
val to_string : ('e -> string) -> 'e t -> string
