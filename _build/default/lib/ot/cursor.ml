type selection = { anchor : int; focus : int }

(* How the operation changes the visible sequence: an element appears at
   a visible position, disappears from one, or nothing moves. *)
type visible_effect = Appears of int | Disappears of int | Still

let effect_of doc op =
  match op with
  | Op.Nop | Op.Up _ | Op.Unup _ -> Still
  | Op.Ins { pos; _ } -> Appears (Tdoc.visible_of_model doc pos)
  | Op.Del { pos; _ } ->
    if (Tdoc.cell doc pos).Tdoc.hidden = 0 then
      Disappears (Tdoc.visible_of_model doc pos)
    else Still (* already a tombstone: stacking a hide moves nothing *)
  | Op.Undel { pos; _ } ->
    if (Tdoc.cell doc pos).Tdoc.hidden = 1 then
      Appears (Tdoc.visible_of_model doc pos)
    else Still (* still hidden after this undel *)

let transform_position doc p op =
  match effect_of doc op with
  | Appears v -> if v <= p then p + 1 else p
  | Disappears v -> if v < p then p - 1 else p
  | Still -> p

let transform_position_left_biased doc p op =
  match effect_of doc op with
  | Appears v -> if v < p then p + 1 else p
  | Disappears v -> if v < p then p - 1 else p
  | Still -> p

let transform_selection doc { anchor; focus } op =
  if anchor <= focus then
    {
      anchor = transform_position_left_biased doc anchor op;
      focus = transform_position doc focus op;
    }
  else
    {
      anchor = transform_position doc anchor op;
      focus = transform_position_left_biased doc focus op;
    }

let transform_through doc p ops =
  let _, p =
    List.fold_left
      (fun (doc, p) op -> (Tdoc.apply doc op, transform_position doc p op))
      (doc, p) ops
  in
  p

let pp_selection ppf { anchor; focus } = Format.fprintf ppf "[%d,%d)" anchor focus
