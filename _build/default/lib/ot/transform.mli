(** Inclusion and exclusion transformation (tombstone model).

    [it o1 o2] (the paper's [IT]) rewrites [o1] — defined on some model
    state [D] — so that it can be executed on [Do(o2, D)] while preserving
    [o1]'s intention.  Both operations must be defined on the same state
    (concurrent operations from the same context).

    [et o1 o2] ([ET]) is the converse: [o1] is defined on a state that
    {e includes} [o2]'s effect, and the result is [o1] rewritten as if
    [o2] had never executed.  It inverts [it] on every pair reachable in
    the log algorithms ({!Oplog}).

    The rules follow the TTF transformation functions of Oster, Urso,
    Molli and Imine (CSCW 2006): deletions hide elements instead of
    removing them, so only insertions shift positions — which is what
    makes the function set satisfy both convergence conditions TP1 and
    TP2 (purely positional rule sets provably cannot; DESIGN §2 and §4.1).

    Tie-breaking: concurrent [Ins]/[Ins] at the same position order by the
    site priority [pr] (higher priority ends up after); concurrent
    [Up]/[Up] of the same element resolve to the higher-priority update,
    the loser becoming [Nop].  Concurrent operations never carry the same
    priority (priorities are site identifiers).

    Verified properties (see [test/test_ot.ml]):
    - TP1: [Do(o1; it o2 o1) = Do(o2; it o1 o2)] on every valid state;
    - TP2: [it_list o [o1; it o2 o1] = it_list o [o2; it o1 o2]];
    - inversion: [it (et o1' o2) o2 = o1'] for reachable pairs. *)

val it : 'e Op.t -> 'e Op.t -> 'e Op.t
val et : 'e Op.t -> 'e Op.t -> 'e Op.t

val it_list : 'e Op.t -> 'e Op.t list -> 'e Op.t
(** [it_list o ops] folds [it] left-to-right: transforms [o] against the
    sequence [ops] (each op defined on the state produced by its
    predecessors). *)
