(** Cursor and selection transformation.

    Editor front ends keep user cursors and selections in {e visible}
    coordinates — a cursor at position [p] sits between the [p]-th and
    [(p+1)]-th visible elements — while operations execute in model
    coordinates.  Transformation therefore needs the document state
    {e before} the operation: it maps the operation's model position to a
    visible one and checks whether visibility actually changes (hiding an
    already-hidden cell moves nothing; revealing one inserts a visible
    element).

    [Up]/[Unup] rewrite content in place and never move cursors. *)

type selection = { anchor : int; focus : int }

val transform_position : 'e Tdoc.t -> int -> 'e Op.t -> int
(** [transform_position doc p o]: the visible position [p] after [o]
    executes on [doc].  An element appearing at exactly [p] pushes the
    cursor right (the common "remote text appears before my cursor"
    convention). *)

val transform_position_left_biased : 'e Tdoc.t -> int -> 'e Op.t -> int
(** Same, but an element appearing at exactly [p] leaves the cursor in
    place. *)

val transform_selection : 'e Tdoc.t -> selection -> 'e Op.t -> selection
(** Anchor is left-biased, focus right-biased, so a selection swallows
    remote insertions that land strictly inside it but not at its
    edges.  Orientation (anchor before or after focus) is preserved. *)

val transform_through : 'e Tdoc.t -> int -> 'e Op.t list -> int
(** Fold {!transform_position} through a sequence of operations, applying
    each to track the evolving document. *)

val pp_selection : Format.formatter -> selection -> unit
