(** A whole collaboration group with instantaneous delivery.

    Convenience wrapper for demos, examples and tests that do not care
    about network asynchrony: every message produced by a site is
    delivered to all other sites immediately (including the cascade of
    validations the administrator produces).  For delayed, reordered or
    scripted delivery, drive {!Controller} sites through [Dce_sim].

    Sites are addressed by their user identifier; the administrator is a
    site like any other except for {!admin_update}. *)

open Dce_ot

type 'e t

val create :
  ?eq:('e -> 'e -> bool) ->
  admin:Subject.user ->
  users:Subject.user list ->
  policy:Policy.t ->
  'e Tdoc.t ->
  'e t
(** [users] must not contain [admin]; identifiers must be distinct. *)

val sites : 'e t -> Subject.user list
val controller : 'e t -> Subject.user -> 'e Controller.t

val generate : 'e t -> Subject.user -> 'e Op.t -> ('e t, string) result
(** Generate at one site and deliver everywhere. *)

val admin_update : 'e t -> Admin_op.t -> ('e t, string) result

val converged : 'e t -> bool
(** All documents have equal models (hence equal visible states), all
    queues are empty. *)

val document : 'e t -> Subject.user -> 'e Tdoc.t
val visible_string : char t -> Subject.user -> string
