(** Subjects of authorizations (paper §3.2): a user, a named group of
    users, or every user.  Group membership lives in the policy state and
    is resolved at check time, so re-assigning a user to a group takes
    effect without touching the authorization list. *)

type user = int

type t =
  | Any  (** the paper's [All] *)
  | User of user
  | Group of string

val matches : member:(string -> user -> bool) -> t -> user -> bool
(** [matches ~member s u]: does subject [s] cover user [u]?  [member g u]
    resolves group membership. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
