(** Authorizations (paper, Def. 2): a quadruple [(S, O, R, ω)] mapping a
    set of subjects and a set of objects to a set of signed rights.  The
    sign ["+"] grants, ["−"] revokes; negative authorizations exist to
    shadow later positive ones under the first-match semantics of
    {!Policy}. *)

type sign = Positive | Negative

type t = {
  subjects : Subject.t list;
  objects : Docobj.t list;
  rights : Right.t list;
  sign : sign;
}

val make :
  subjects:Subject.t list ->
  objects:Docobj.t list ->
  rights:Right.t list ->
  sign ->
  t
(** Raises [Invalid_argument] if any component list is empty (an
    authorization that can never match is a policy-authoring error). *)

val grant : Subject.t list -> Docobj.t list -> Right.t list -> t
val deny : Subject.t list -> Docobj.t list -> Right.t list -> t

val matches :
  member:(string -> Subject.user -> bool) ->
  resolve:(string -> Docobj.t option) ->
  t ->
  user:Subject.user ->
  right:Right.t ->
  pos:int option ->
  bool
(** Does this authorization apply to [user] exercising [right] at
    position [pos]?  (Whether it then grants or denies is its {!sign}.) *)

val is_restrictive : t -> bool
(** [sign = Negative]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
