type t = {
  initial : Policy.t;
  initial_admin : Subject.user;
  (* newest first; entry i has version (length - i) and carries the
     snapshot and administrator the request produced *)
  entries : (Admin_op.request * Policy.t * Subject.user) list;
  version : int;
}

let create ~admin p =
  { initial = p; initial_admin = admin; entries = []; version = 0 }

let version t = t.version

let current t = match t.entries with [] -> t.initial | (_, p, _) :: _ -> p

let initial t = t.initial

let current_admin t =
  match t.entries with [] -> t.initial_admin | (_, _, a) :: _ -> a

let initial_admin t = t.initial_admin

let append t (r : Admin_op.request) =
  if r.Admin_op.version <> t.version + 1 then
    Error
      (Printf.sprintf "administrative request out of order: got v%d, expected v%d"
         r.Admin_op.version (t.version + 1))
  else if r.Admin_op.admin <> current_admin t then
    Error
      (Printf.sprintf "administrative request from %d, but %d holds the role"
         r.Admin_op.admin (current_admin t))
  else
    match Admin_op.apply (current t) r.Admin_op.op with
    | Error e -> Error e
    | Ok p ->
      let admin =
        match r.Admin_op.op with Admin_op.Transfer_admin u -> u | _ -> current_admin t
      in
      Ok { t with entries = (r, p, admin) :: t.entries; version = t.version + 1 }

let policy_at t v =
  if v < 0 || v > t.version then None
  else if v = 0 then Some t.initial
  else
    (* entries are newest first: version v is at index (version - v) *)
    match List.nth_opt t.entries (t.version - v) with
    | Some (_, p, _) -> Some p
    | None -> None

let admin_at t v =
  if v < 0 || v > t.version then None
  else if v = 0 then Some t.initial_admin
  else
    match List.nth_opt t.entries (t.version - v) with
    | Some (_, _, a) -> Some a
    | None -> None

let request_at t v =
  if v < 1 || v > t.version then None
  else
    match List.nth_opt t.entries (t.version - v) with
    | Some (r, _, _) -> Some r
    | None -> None

let requests t = List.rev_map (fun (r, _, _) -> r) t.entries

let restrictive_since t v =
  List.filter
    (fun (r : Admin_op.request) ->
      r.Admin_op.version > v && Admin_op.is_restrictive r.Admin_op.op)
    (requests t)

let first_denial t ~from_version ~user ~right ~pos =
  (* Grants can only be withdrawn by restrictive requests, so it is
     enough to check the starting version and the version produced by
     each restrictive request in the interval. *)
  let granted v =
    match policy_at t v with
    | Some p -> Policy.check p ~user ~right ~pos
    | None -> false
  in
  if from_version > t.version then None
  else if not (granted from_version) then Some from_version
  else
    List.find_map
      (fun (r : Admin_op.request) ->
        if granted r.Admin_op.version then None else Some r.Admin_op.version)
      (restrictive_since t from_version)

let pp ppf t =
  Format.fprintf ppf "@[<v>L (version %d):@ %a@]" t.version
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Admin_op.pp_request)
    (requests t)
