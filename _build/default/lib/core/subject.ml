type user = int

type t = Any | User of user | Group of string

let matches ~member s u =
  match s with
  | Any -> true
  | User u' -> u = u'
  | Group g -> member g u

let equal a b =
  match a, b with
  | Any, Any -> true
  | User a, User b -> a = b
  | Group a, Group b -> String.equal a b
  | (Any | User _ | Group _), _ -> false

let pp ppf = function
  | Any -> Format.pp_print_string ppf "All"
  | User u -> Format.fprintf ppf "s%d" u
  | Group g -> Format.fprintf ppf "g:%s" g
