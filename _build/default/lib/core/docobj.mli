(** Protected objects (paper §3.2): the whole shared document, a single
    element, a contiguous zone of elements, or a named object from the
    policy's object registry ([AddObj]/[DelObj]) that resolves to one of
    the former.

    Positions are generation-context model positions: an authorization's
    zone is compared against the position the operation carried when its
    issuer generated it, which is the one value all sites agree on (see
    {!Checker}).  Zone-scoped authorizations therefore protect regions of
    the document as they were when the policy was written — the paper's
    model never transforms authorization zones, and neither do we; pin
    down regions with named objects if the policy is long-lived. *)

type t =
  | Whole  (** the paper's [Doc] *)
  | Element of int
  | Zone of { lo : int; hi : int }  (** inclusive bounds *)
  | Named of string

val matches : resolve:(string -> t option) -> t -> pos:int option -> bool
(** [matches ~resolve o ~pos]: does object [o] cover an operation at
    position [pos]?  [Whole] covers everything, including position-less
    operations; [resolve] looks named objects up in the registry (an
    unresolvable name covers nothing, so deleting an object silently
    disables the authorizations that mention it).  Named objects resolve
    through one level only. *)

val zone : int -> int -> t
(** [zone lo hi]; raises [Invalid_argument] if [lo > hi] or [lo < 0]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
