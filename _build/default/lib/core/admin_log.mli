(** The administrative log [L] (paper §4.2, second scenario).

    Every site stores the administrative requests it has applied, in
    version order, together with a policy snapshot per version (snapshots
    share structure, so this costs O(1) extra per request).  The log
    answers the question the paper's [Check_Remote] needs: {e was this
    access granted at every policy version between its generation and
    now?} — and, when not, at which version it first stopped being
    granted (the canonical cancellation version used to classify undo
    entries consistently across sites, see [Dce_ot.Oplog]). *)

type t

val create : admin:Subject.user -> Policy.t -> t
(** [create ~admin p]: [p] is the initial policy, version 0, and [admin]
    holds the administrator role until a [Transfer_admin] applies. *)

val version : t -> int
val current : t -> Policy.t
val initial : t -> Policy.t

val current_admin : t -> Subject.user
(** Holder of the administrator role at the current version. *)

val initial_admin : t -> Subject.user

val admin_at : t -> int -> Subject.user option
(** Holder of the administrator role at a given version — the identity a
    cooperative request generated under that version should be compared
    against. *)

val append : t -> Admin_op.request -> (t, string) result
(** Apply the next administrative request.  Fails if the request's
    version is not [version t + 1], if its issuer is not the current
    administrator (an impostor — the paper assumes an authenticated
    network, so this is defence in depth), or if the operation does not
    apply to the current policy. *)

val policy_at : t -> int -> Policy.t option
(** Snapshot at a given version ([None] if beyond the current version). *)

val request_at : t -> int -> Admin_op.request option
(** The request that produced a given version (≥ 1). *)

val requests : t -> Admin_op.request list
(** All applied requests, oldest first. *)

val restrictive_since : t -> int -> Admin_op.request list
(** Restrictive requests with version in [(v, current)]. *)

val first_denial :
  t -> from_version:int -> user:Subject.user -> right:Right.t -> pos:int option ->
  int option
(** [first_denial l ~from_version ~user ~right ~pos]: the smallest
    version [v >= from_version] whose policy denies the access, or [None]
    if every version in [[from_version, version l]] grants it.  This is
    the paper's remote check: a cooperative request is accepted iff the
    result is [None], and otherwise the returned version is its canonical
    cancellation version. *)

val pp : Format.formatter -> t -> unit
