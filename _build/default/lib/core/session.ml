open Dce_ot

type 'e t = {
  eq : 'e -> 'e -> bool;
  admin : Subject.user;
  controllers : (Subject.user * 'e Controller.t) list;
}

let create ?(eq = ( = )) ~admin ~users ~policy doc =
  if List.mem admin users then invalid_arg "Session.create: admin listed in users";
  let all = admin :: users in
  if List.length (List.sort_uniq compare all) <> List.length all then
    invalid_arg "Session.create: duplicate site identifiers";
  {
    eq;
    admin;
    controllers =
      List.map (fun u -> (u, Controller.create ~eq ~site:u ~admin ~policy doc)) all;
  }

let sites t = List.map fst t.controllers

let controller t u =
  match List.assoc_opt u t.controllers with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Session: no site %d" u)

let set t u c = { t with controllers = List.map (fun (v, c') -> if v = u then (v, c) else (v, c')) t.controllers }

(* Deliver [msg] from [src] to every other site, then recursively deliver
   whatever those deliveries emitted (validations). *)
let rec deliver t src msg =
  List.fold_left
    (fun t (u, _) ->
      if u = src then t
      else
        let c, emitted = Controller.receive (controller t u) msg in
        let t = set t u c in
        List.fold_left (fun t m -> deliver t u m) t emitted)
    t t.controllers

let generate t u op =
  match Controller.generate (controller t u) op with
  | c, Controller.Accepted msg -> Ok (deliver (set t u c) u msg)
  | _, Controller.Denied reason -> Error reason

let admin_update t op =
  match Controller.admin_update (controller t t.admin) op with
  | Error e -> Error e
  | Ok (c, msg) -> Ok (deliver (set t t.admin c) t.admin msg)

let converged t =
  match t.controllers with
  | [] -> true
  | (_, c0) :: rest ->
    let d0 = Controller.document c0 in
    List.for_all
      (fun (_, c) ->
        Tdoc.equal_model t.eq d0 (Controller.document c)
        && Controller.pending_coop c = 0
        && Controller.pending_admin c = 0)
      rest
    && Controller.pending_coop c0 = 0
    && Controller.pending_admin c0 = 0

let document t u = Controller.document (controller t u)

let visible_string t u = Tdoc.visible_string (document t u)
