type sign = Positive | Negative

type t = {
  subjects : Subject.t list;
  objects : Docobj.t list;
  rights : Right.t list;
  sign : sign;
}

let make ~subjects ~objects ~rights sign =
  if subjects = [] || objects = [] || rights = [] then
    invalid_arg "Auth.make: empty component";
  { subjects; objects; rights; sign }

let grant subjects objects rights = make ~subjects ~objects ~rights Positive
let deny subjects objects rights = make ~subjects ~objects ~rights Negative

let matches ~member ~resolve a ~user ~right ~pos =
  List.exists (fun s -> Subject.matches ~member s user) a.subjects
  && List.exists (fun r -> Right.equal r right) a.rights
  && List.exists (fun o -> Docobj.matches ~resolve o ~pos) a.objects

let is_restrictive a = a.sign = Negative

let equal a b =
  a.sign = b.sign
  && List.length a.subjects = List.length b.subjects
  && List.for_all2 Subject.equal a.subjects b.subjects
  && List.length a.objects = List.length b.objects
  && List.for_all2 Docobj.equal a.objects b.objects
  && a.rights = b.rights

let pp ppf a =
  let sep ppf () = Format.pp_print_string ppf "," in
  Format.fprintf ppf "<{%a}, {%a}, {%a}, %s>"
    (Format.pp_print_list ~pp_sep:sep Subject.pp)
    a.subjects
    (Format.pp_print_list ~pp_sep:sep Docobj.pp)
    a.objects
    (Format.pp_print_list ~pp_sep:sep Right.pp)
    a.rights
    (match a.sign with Positive -> "+" | Negative -> "-")
