(** The shared policy object (paper §3.2, Def. 2 and 3).

    A policy state is the triple [(P, S, O)]: an indexed list of
    authorizations [P], the registered subjects [S] (users plus named
    groups), and the registered named objects [O].  Checking uses
    {e first-match} semantics: the authorizations are scanned from index
    0 and the first one that matches the access decides — positive grants,
    negative denies.  If no authorization matches, or the user is not
    registered, the access is denied (negative authorizations exist only
    to shadow later positive ones and accelerate rejection, as in the
    paper).

    The policy value itself is immutable; versioning is handled by
    {!Admin_log}, which stores one snapshot per version (cheap thanks to
    structural sharing). *)

type t

val empty : t
(** No users, no groups, no objects, no authorizations: everything is
    denied. *)

val make :
  ?users:Subject.user list ->
  ?groups:(string * Subject.user list) list ->
  ?objects:(string * Docobj.t) list ->
  Auth.t list ->
  t

(* {2 State} *)

val users : t -> Subject.user list
val groups : t -> (string * Subject.user list) list
val objects : t -> (string * Docobj.t) list
val is_user : t -> Subject.user -> bool
val member : t -> string -> Subject.user -> bool
val resolve : t -> string -> Docobj.t option
val auths : t -> Auth.t list
val auth_count : t -> int

(* {2 Checking} *)

val check : t -> user:Subject.user -> right:Right.t -> pos:int option -> bool
(** First-match over the authorization list; default deny; unregistered
    users always denied. *)

val check_op : t -> user:Subject.user -> 'e Dce_ot.Op.t -> bool
(** {!check} on the right and position the operation exercises.  [Nop]
    and [Undel] (no associated right) are always allowed. *)

(* {2 Mutation (administrator only, via administrative operations)} *)

val add_user : t -> Subject.user -> (t, string) result
val del_user : t -> Subject.user -> (t, string) result
val add_to_group : t -> string -> Subject.user -> (t, string) result
(** Creates the group if needed; the user must be registered. *)

val del_from_group : t -> string -> Subject.user -> (t, string) result
val add_obj : t -> string -> Docobj.t -> (t, string) result
val del_obj : t -> string -> (t, string) result

val add_auth : t -> int -> Auth.t -> (t, string) result
(** Insert at index [p] (0 = highest precedence); [p] may equal the
    current length to append. *)

val del_auth : t -> int -> (t, string) result

val pp : Format.formatter -> t -> unit
