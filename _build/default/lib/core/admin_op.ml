type t =
  | Add_user of Subject.user
  | Del_user of Subject.user
  | Add_to_group of string * Subject.user
  | Del_from_group of string * Subject.user
  | Add_obj of string * Docobj.t
  | Del_obj of string
  | Add_auth of int * Auth.t
  | Del_auth of int
  | Validate of Dce_ot.Request.id
  | Transfer_admin of Subject.user

let is_restrictive = function
  | Add_auth (_, a) -> Auth.is_restrictive a
  | Del_auth _ | Del_user _ | Del_from_group _ | Del_obj _ -> true
  | Add_user _ | Add_to_group _ | Add_obj _ | Validate _ | Transfer_admin _ -> false

let apply policy = function
  | Add_user u -> Policy.add_user policy u
  | Del_user u -> Policy.del_user policy u
  | Add_to_group (g, u) -> Policy.add_to_group policy g u
  | Del_from_group (g, u) -> Policy.del_from_group policy g u
  | Add_obj (n, o) -> Policy.add_obj policy n o
  | Del_obj n -> Policy.del_obj policy n
  | Add_auth (p, a) -> Policy.add_auth policy p a
  | Del_auth p -> Policy.del_auth policy p
  | Validate _ -> Ok policy
  | Transfer_admin u ->
    if Policy.is_user policy u then Ok policy
    else Error (Printf.sprintf "cannot transfer administration to unregistered user %d" u)

type request = { admin : Subject.user; version : int; op : t; ctx : Dce_ot.Vclock.t }

let pp ppf = function
  | Add_user u -> Format.fprintf ppf "AddUser(%d)" u
  | Del_user u -> Format.fprintf ppf "DelUser(%d)" u
  | Add_to_group (g, u) -> Format.fprintf ppf "AddToGroup(%s, %d)" g u
  | Del_from_group (g, u) -> Format.fprintf ppf "DelFromGroup(%s, %d)" g u
  | Add_obj (n, o) -> Format.fprintf ppf "AddObj(%s, %a)" n Docobj.pp o
  | Del_obj n -> Format.fprintf ppf "DelObj(%s)" n
  | Add_auth (p, a) -> Format.fprintf ppf "AddAuth(%d, %a)" p Auth.pp a
  | Del_auth p -> Format.fprintf ppf "DelAuth(%d)" p
  | Validate id -> Format.fprintf ppf "Validate(q%a)" Dce_ot.Request.pp_id id
  | Transfer_admin u -> Format.fprintf ppf "TransferAdmin(%d)" u

let pp_request ppf { admin; version; op; ctx = _ } =
  Format.fprintf ppf "r[adm%d, v%d, %a]" admin version pp op
