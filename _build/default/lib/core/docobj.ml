type t = Whole | Element of int | Zone of { lo : int; hi : int } | Named of string

let zone lo hi =
  if lo < 0 || lo > hi then invalid_arg "Docobj.zone: invalid bounds";
  Zone { lo; hi }

let matches ~resolve o ~pos =
  let concrete = function
    | Whole -> true
    | Element p -> (match pos with Some q -> p = q | None -> false)
    | Zone { lo; hi } -> (match pos with Some q -> lo <= q && q <= hi | None -> false)
    | Named _ -> false
  in
  match o with
  | Named name -> (match resolve name with Some o' -> concrete o' | None -> false)
  | o -> concrete o

let equal a b =
  match a, b with
  | Whole, Whole -> true
  | Element a, Element b -> a = b
  | Zone a, Zone b -> a.lo = b.lo && a.hi = b.hi
  | Named a, Named b -> String.equal a b
  | (Whole | Element _ | Zone _ | Named _), _ -> false

let pp ppf = function
  | Whole -> Format.pp_print_string ppf "Doc"
  | Element p -> Format.fprintf ppf "elt(%d)" p
  | Zone { lo; hi } -> Format.fprintf ppf "zone[%d,%d]" lo hi
  | Named n -> Format.fprintf ppf "obj:%s" n
