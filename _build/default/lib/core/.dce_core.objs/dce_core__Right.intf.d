lib/core/right.mli: Dce_ot Format
