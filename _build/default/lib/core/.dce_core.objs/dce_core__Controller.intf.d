lib/core/controller.mli: Admin_log Admin_op Dce_ot Op Oplog Policy Request Subject Tdoc Vclock
