lib/core/docobj.ml: Format String
