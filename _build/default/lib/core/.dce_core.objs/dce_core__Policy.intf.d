lib/core/policy.mli: Auth Dce_ot Docobj Format Right Subject
