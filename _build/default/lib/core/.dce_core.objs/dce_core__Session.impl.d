lib/core/session.ml: Controller Dce_ot List Printf Subject Tdoc
