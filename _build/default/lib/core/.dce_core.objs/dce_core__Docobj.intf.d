lib/core/docobj.mli: Format
