lib/core/policy.ml: Auth Dce_ot Docobj Format Int List Map Option Printf Right Set String
