lib/core/right.ml: Dce_ot Format
