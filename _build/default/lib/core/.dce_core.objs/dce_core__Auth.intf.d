lib/core/auth.mli: Docobj Format Right Subject
