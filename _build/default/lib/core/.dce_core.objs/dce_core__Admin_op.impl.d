lib/core/admin_op.ml: Auth Dce_ot Docobj Format Policy Printf Subject
