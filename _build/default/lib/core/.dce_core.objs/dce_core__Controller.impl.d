lib/core/controller.ml: Admin_log Admin_op Dce_ot List Op Oplog Option Policy Request Right Subject Tdoc Vclock
