lib/core/admin_log.mli: Admin_op Format Policy Right Subject
