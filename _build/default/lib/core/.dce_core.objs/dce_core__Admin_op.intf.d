lib/core/admin_op.mli: Auth Dce_ot Docobj Format Policy Subject
