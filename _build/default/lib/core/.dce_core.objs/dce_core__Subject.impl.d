lib/core/subject.ml: Format String
