lib/core/admin_log.ml: Admin_op Format List Policy Printf Subject
