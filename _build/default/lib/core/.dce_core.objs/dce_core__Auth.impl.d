lib/core/auth.ml: Docobj Format List Right Subject
