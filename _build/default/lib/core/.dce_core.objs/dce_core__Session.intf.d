lib/core/session.mli: Admin_op Controller Dce_ot Op Policy Subject Tdoc
