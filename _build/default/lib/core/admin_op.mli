(** Administrative operations and requests (paper Def. 3 and §5.1).

    Only the administrator issues administrative operations.  An
    administrative request [r = (id, o, v)] carries the administrator's
    identity, the operation, and the policy version it produces: requests
    are {e totally ordered} by version, and every site applies request
    [v] only on top of version [v-1].

    [Validate] is the paper's third mechanism (§4.2, third scenario): an
    operation that does not modify the policy but consumes a version
    number, emitted by the administrator for every remote cooperative
    request it accepts.  Because versions are totally ordered, a
    restrictive operation the administrator issues {e after} validating a
    request can never be applied before that request anywhere — so legal
    operations are never blocked by an overtaking revocation.

    An operation is {e restrictive} (paper Def. 3) if applying it can
    withdraw an access some user previously had: adding a negative
    authorization, deleting an authorization, removing a user or group
    member, or deleting a named object.  Restrictive requests trigger the
    retroactive undo of the tentative cooperative requests they concern
    (Algorithm 4). *)

type t =
  | Add_user of Subject.user
  | Del_user of Subject.user
  | Add_to_group of string * Subject.user
  | Del_from_group of string * Subject.user
  | Add_obj of string * Docobj.t
  | Del_obj of string
  | Add_auth of int * Auth.t
  | Del_auth of int
  | Validate of Dce_ot.Request.id
  | Transfer_admin of Subject.user
      (** Delegation (the paper's §7 future work, in its simplest sound
          form): hand the administrator role to another registered user.
          Administrative requests stay totally ordered — there is never
          more than one administrator per version — so none of the
          paper's single-administrator reasoning is disturbed; the
          receiving user issues versions from the next one on. *)

val is_restrictive : t -> bool

val apply : Policy.t -> t -> (Policy.t, string) result
(** [Validate] leaves the policy unchanged. *)

type request = {
  admin : Subject.user;
  version : int;
  op : t;
  ctx : Dce_ot.Vclock.t;
      (** the issuer's vector clock when the request was issued; carried
          so receivers can bound the issuer's integration progress (used
          by the log-compaction stability frontier, never by the
          algorithm itself) *)
}
(** [version] is the policy version this request {e produces}: the first
    administrative request of a session has version 1. *)

val pp : Format.formatter -> t -> unit
val pp_request : Format.formatter -> request -> unit
