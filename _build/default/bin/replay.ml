(* replay: seeded random-session fuzzer and convergence checker.

   Runs whole adversarial sessions (random edits + random policy
   changes + random delivery schedules) through the simulator and checks
   the convergence/security oracles at quiescence.  Every run is a pure
   function of its seed, so a reported violation is a ready-made
   reproduction recipe.

     dune exec bin/replay.exe -- --seeds 500
     dune exec bin/replay.exe -- --seed 90 --trace     # replay one, verbose
     dune exec bin/replay.exe -- --no-undo --seeds 50  # watch the holes appear

   Exits non-zero if any oracle is violated (CI-friendly). *)

open Dce_sim

let run_one profile features trace seed =
  let trace = if trace then Some Format.std_formatter else None in
  match Runner.run ?trace ~features profile ~seed with
  | result ->
    let report = Convergence.check result.Runner.controllers in
    if Convergence.ok report then `Ok result.Runner.stats
    else `Violation (Format.asprintf "%a" Convergence.pp report)
  | exception e -> `Crash (Printexc.to_string e)

let main users duration seed seeds trace fifo max_latency handoff compact no_undo
    no_interval no_validation =
  let features =
    {
      Dce_core.Controller.retroactive_undo = not no_undo;
      interval_check = not no_interval;
      validation = not no_validation;
    }
  in
  let profile =
    {
      Workload.with_admin with
      users;
      duration;
      fifo;
      latency = Net.Uniform (1, max_latency);
      handoff_prob = (if handoff then 0.25 else 0.);
      compact_every = (if compact then Some 4 else None);
    }
  in
  let seed_list =
    match seed with Some s -> [ s ] | None -> List.init seeds (fun i -> i)
  in
  let bad = ref 0 in
  let total_stats = ref None in
  List.iter
    (fun s ->
      match run_one profile features trace s with
      | `Ok stats ->
        total_stats := Some stats;
        if trace then Format.printf "seed %d: ok@.%a@." s Runner.pp_stats stats
      | `Violation report ->
        incr bad;
        Format.printf "seed %d: ORACLE VIOLATION@.%s@." s report
      | `Crash msg ->
        incr bad;
        Format.printf "seed %d: CRASH: %s@." s msg)
    seed_list;
  Format.printf "%d run(s), %d violation(s)@." (List.length seed_list) !bad;
  (match (!total_stats, trace) with
   | Some stats, false ->
     Format.printf "last run stats:@.%a@." Runner.pp_stats stats
   | _ -> ());
  if !bad > 0 then 1 else 0

open Cmdliner

let users = Arg.(value & opt int 3 & info [ "users" ] ~doc:"Non-admin users.")
let duration = Arg.(value & opt int 2000 & info [ "duration" ] ~doc:"Virtual ms of editing.")
let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Run one specific seed.")
let seeds = Arg.(value & opt int 100 & info [ "seeds" ] ~doc:"Number of seeds (0..n-1).")
let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print every simulated event.")
let fifo = Arg.(value & flag & info [ "fifo" ] ~doc:"FIFO links (no per-link reordering).")

let max_latency =
  Arg.(value & opt int 300 & info [ "max-latency" ] ~doc:"Maximum message delay (ms).")

let handoff =
  Arg.(value & flag
       & info [ "handoff" ] ~doc:"Let the administrator delegate the role mid-session.")

let compact =
  Arg.(value & flag
       & info [ "compact" ] ~doc:"Garbage-collect logs during the session.")

let no_undo =
  Arg.(value & flag & info [ "no-undo" ] ~doc:"Disable retroactive undo (Fig. 2 hole).")

let no_interval =
  Arg.(value & flag
       & info [ "no-interval-check" ] ~doc:"Disable administrative log checks (Fig. 3 hole).")

let no_validation =
  Arg.(value & flag & info [ "no-validation" ] ~doc:"Disable validation (Fig. 4 hole).")

let cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Randomized convergence and security checker")
    Term.(
      const main $ users $ duration $ seed $ seeds $ trace $ fifo $ max_latency
      $ handoff $ compact $ no_undo $ no_interval $ no_validation)

let () = exit (Cmd.eval' cmd)
