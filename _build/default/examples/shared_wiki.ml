(* A wiki page edited by a moderated community, over a lossy-ordering
   network.

     dune exec examples/shared_wiki.exe

   This example exercises the richer policy features on an asynchronous
   session driven site-by-site (messages delivered out of order):

   - groups: "editors" may change anything, "commenters" may only
     insert, and membership changes take effect without touching the
     authorization list;
   - named objects: the administrator pins down a protected zone
     ("title") that only editors may touch;
   - dynamic membership: a commenter is promoted mid-session;
   - retroactive enforcement: a vandal's edits are undone everywhere
     when the administrator removes them from the group. *)

open Dce_ot
open Dce_core

let adm = 0
let editor = 1
let commenter = 2
let vandal = 3

type net = {
  mutable sites : (int * char Controller.t) list;
  mutable wire : (int * char Controller.message) list; (* destination, message *)
}

let controller net u = List.assoc u net.sites

let set net u c = net.sites <- List.map (fun (v, c') -> if v = u then (v, c) else (v, c')) net.sites

let post net src msgs =
  List.iter
    (fun m -> List.iter (fun (u, _) -> if u <> src then net.wire <- net.wire @ [ (u, m) ]) net.sites)
    msgs

let edit net who op =
  match Controller.generate (controller net who) op with
  | c, Controller.Accepted m ->
    set net who c;
    post net who [ m ]
  | _, Controller.Denied reason -> Printf.printf "  site %d denied locally: %s\n" who reason

let admin net op =
  match Controller.admin_update (controller net adm) op with
  | Ok (c, m) ->
    set net adm c;
    post net adm [ m ]
  | Error e -> Printf.printf "  admin error: %s\n" e

(* deliver the k-th in-flight message (simulating reordering) *)
let deliver_nth net k =
  let rec take i acc = function
    | [] -> None
    | m :: rest when i = 0 -> Some (m, List.rev_append acc rest)
    | m :: rest -> take (i - 1) (m :: acc) rest
  in
  match take k [] net.wire with
  | None -> ()
  | Some ((dst, m), rest) ->
    net.wire <- rest;
    let c, emitted = Controller.receive (controller net dst) m in
    set net dst c;
    post net dst emitted

let flush ?(seed = 7) net =
  let rng = ref (Dce_sim.Rng.of_int seed) in
  while net.wire <> [] do
    let k, r = Dce_sim.Rng.int !rng (List.length net.wire) in
    rng := r;
    deliver_nth net k
  done

(* deliver everything except messages bound for [slow] (a laggy link) *)
let flush_except net slow =
  let rec go () =
    match List.find_index (fun (dst, _) -> dst <> slow) net.wire with
    | Some k ->
      deliver_nth net k;
      go ()
    | None -> ()
  in
  go ()

let show net =
  List.iter
    (fun (u, c) ->
      Printf.printf "  site %d: %S%s\n" u
        (Tdoc.visible_string (Controller.document c))
        (if u = adm then " (admin)" else ""))
    net.sites

let () =
  let policy =
    Policy.make
      ~users:[ adm; editor; commenter; vandal ]
      ~groups:[ ("editors", [ adm; editor ]); ("commenters", [ commenter; vandal ]) ]
      ~objects:[ ("title", Docobj.zone 0 4) ]
      [
        (* only editors may touch the title zone *)
        Auth.deny [ Subject.Group "commenters" ] [ Docobj.Named "title" ] Right.all;
        Auth.grant [ Subject.Group "editors" ] [ Docobj.Whole ] Right.all;
        Auth.grant [ Subject.Group "commenters" ] [ Docobj.Whole ] [ Right.Insert ];
      ]
  in
  let doc0 = Tdoc.of_string "wiki: ocaml is great" in
  let net =
    {
      sites =
        List.map
          (fun u -> (u, Controller.create ~eq:Char.equal ~site:u ~admin:adm ~policy doc0))
          [ adm; editor; commenter; vandal ];
      wire = [];
    }
  in
  print_endline "initial page:";
  show net;

  print_endline "\nthe editor retitles (allowed), the commenter tries to (denied):";
  edit net editor (Tdoc.up_visible (Controller.document (controller net editor)) 0 'W');
  edit net commenter (Op.up 1 'i' 'I');
  flush net;
  show net;

  print_endline "\nthe commenter appends a comment (inserts are allowed):";
  let append who text =
    String.iter
      (fun ch ->
        let d = Controller.document (controller net who) in
        edit net who (Tdoc.ins_visible d (Tdoc.visible_length d) ch))
      text
  in
  append commenter " +1";
  flush net;
  show net;

  print_endline
    "\nthe vandal sprays garbage; the spray reaches the other users but is\n\
     still in flight to the administrator (tentative everywhere):";
  append vandal " xxxx";
  flush_except net adm;
  show net;

  print_endline
    "\nmeanwhile the administrator expels the vandal from \"commenters\": a\n\
     restrictive change, concurrent with the spray.  The administrator\n\
     rejects the late-arriving spray, and every other site undoes it:";
  admin net (Admin_op.Del_from_group ("commenters", vandal));
  flush net;
  show net;

  print_endline "\nthe commenter is promoted to \"editors\" and fixes the title:";
  admin net (Admin_op.Del_from_group ("commenters", commenter));
  admin net (Admin_op.Add_to_group ("editors", commenter));
  flush net;
  edit net commenter (Tdoc.up_visible (Controller.document (controller net commenter)) 1 'I');
  flush net;
  show net;

  (* convergence check across all four replicas *)
  let docs = List.map (fun (_, c) -> Controller.document c) net.sites in
  let d0 = List.hd docs in
  assert (List.for_all (Tdoc.equal_model Char.equal d0) docs);
  print_endline "\nall four replicas converged."
