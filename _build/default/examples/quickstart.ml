(* Quickstart: a three-user secured editing session in a few lines.

     dune exec examples/quickstart.exe

   One administrator (site 0) and two users share a document and a
   replicated policy.  Users edit optimistically — their operations are
   checked against their *local* policy copy, no round trip — and the
   administrator changes rights mid-session.  [Session] delivers
   messages instantly; see shared_wiki.ml for the asynchronous,
   reordered-delivery version. *)

open Dce_ot
open Dce_core

let adm = 0
let alice = 1
let bob = 2

let show s msg =
  Printf.printf "%-38s %S\n" msg (Session.visible_string s adm)

let edit s who op =
  match Session.generate s who op with
  | Ok s -> s
  | Error reason ->
    Printf.printf "  -> denied: %s\n" reason;
    s

let () =
  (* everyone registered; everyone may do everything (first-match list
     with a single catch-all grant) *)
  let policy =
    Policy.make ~users:[ adm; alice; bob ]
      [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  let s =
    Session.create ~eq:Char.equal ~admin:adm ~users:[ alice; bob ] ~policy
      (Tdoc.of_string "hello world")
  in
  show s "initial document:";

  (* Alice capitalises, Bob punctuates; ops are built in visible
     coordinates with the Tdoc helpers *)
  let s = edit s alice (Tdoc.up_visible (Session.document s alice) 0 'H') in
  let s = edit s bob (Tdoc.ins_visible (Session.document s bob) 11 '!') in
  show s "after Alice's update and Bob's insert:";

  (* the administrator revokes Bob's insertion right; the policy change
     replicates to every site *)
  let s =
    Result.get_ok
      (Session.admin_update s
         (Admin_op.Add_auth
            (0, Auth.deny [ Subject.User bob ] [ Docobj.Whole ] [ Right.Insert ])))
  in
  Printf.printf "administrator revoked Bob's insert right\n";

  (* Bob's next insert is refused by his *local* policy copy — no server
     involved *)
  let s = edit s bob (Tdoc.ins_visible (Session.document s bob) 12 '?') in

  (* but Bob may still delete *)
  let s = edit s bob (Tdoc.del_visible (Session.document s bob) 11) in
  show s "after Bob's (allowed) delete:";

  assert (Session.converged s);
  Printf.printf "all %d replicas converged.\n" (List.length (Session.sites s))
