(* Why replicate the policy at all?  The latency showdown.

     dune exec examples/latency_showdown.exe

   The classical design keeps the access data structure on one server:
   every keystroke must lock it, be checked, and return before the
   editor can show the user their own edit.  The paper's model checks a
   local replica instead.  This example puts real numbers on the gap:
   the central server is simulated (RTT + serialized checks), the
   optimistic check is measured for real on a loaded controller. *)

open Dce_ot
open Dce_core
open Dce_baseline

let () =
  (* measure the real optimistic path: local check + execution on a
     session with an established history *)
  let policy =
    Policy.make ~users:[ 0; 1 ] [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  let c =
    Controller.create ~eq:Char.equal ~site:1 ~admin:0 ~policy
      (Tdoc.of_string (String.make 2000 'x'))
  in
  let c =
    List.fold_left
      (fun c i ->
        match Controller.generate c (Op.ins (i mod 100) 'y') with
        | c, Controller.Accepted _ -> c
        | _, Controller.Denied r -> failwith r)
      c
      (List.init 1500 Fun.id)
  in
  let reps = 300 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    match Controller.generate c (Op.ins 0 'z') with
    | _, Controller.Accepted _ -> ()
    | _, Controller.Denied r -> failwith r
  done;
  let optimistic = (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps in
  Printf.printf "optimistic local check+execute (|H|=1500): %.3f ms\n\n" optimistic;

  Printf.printf "central-lock server (5 ms per check, editors typing every 100-400 ms):\n";
  Printf.printf "%10s %8s | %10s %8s %8s\n" "rtt(ms)" "users" "mean(ms)" "p95(ms)" "speedup";
  List.iter
    (fun (rtt, clients) ->
      let s =
        Central_lock.simulate
          { Central_lock.clients; rtt; check_cost = 5; op_interval = (100, 400);
            duration = 120_000 }
          ~seed:42
      in
      Printf.printf "%10d %8d | %10.1f %8d %7.0fx\n" rtt clients
        s.Central_lock.mean_response s.Central_lock.p95_response
        (s.Central_lock.mean_response /. optimistic))
    [ (25, 5); (50, 5); (100, 5); (100, 30); (200, 30); (200, 100) ];
  Printf.printf
    "\nthe paper's point: with a replicated policy, responsiveness is back to\n\
     single-user editor levels, and adding users costs the server nothing.\n"
