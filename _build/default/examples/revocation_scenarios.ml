(* The paper's coordination puzzles, replayed live.

     dune exec examples/revocation_scenarios.exe

   Section 4 of the paper motivates its three mechanisms with three
   scenarios in which "naive coordination" between document updates and
   policy updates opens security holes.  This example replays each
   scenario twice — once with the corresponding mechanism disabled
   (reproducing the hole) and once with the full algorithm (closing it)
   — plus the plain OT convergence scenario of Fig. 1. *)

open Dce_ot
open Dce_core
open Dce_baseline

let rule () = print_endline (String.make 72 '-')

let play name description scenario broken =
  rule ();
  Printf.printf "%s\n%s\n\n" name description;
  let bad = scenario broken in
  Printf.printf "with the mechanism DISABLED:\n%s\n"
    (Format.asprintf "%a" Naive.pp bad);
  assert (Naive.holes bad);
  let good = scenario Controller.secure in
  Printf.printf "\nwith the full algorithm:\n%s\n"
    (Format.asprintf "%a" Naive.pp good);
  assert (not (Naive.holes good))

let fig1 () =
  rule ();
  print_endline "Fig.1 - why transformation is needed at all";
  print_endline
    "two sites edit \"efecte\" concurrently: site 1 inserts 'f' at 1,\n\
     site 2 deletes the final 'e'.  Naively replaying remote operations\n\
     as-is diverges; transforming them converges to \"effect\".\n";
  let doc = Tdoc.of_string "efecte" in
  let o1 = Op.ins ~pr:1 1 'f' in
  let o2 = Op.del 5 'e' in
  (* naive: apply the remote operation untransformed *)
  let naive1 = Tdoc.apply ~eq:(fun _ _ -> true) (Tdoc.apply doc o1) o2 in
  let naive2 = Tdoc.apply ~eq:(fun _ _ -> true) (Tdoc.apply doc o2) o1 in
  Printf.printf "naive:       site1=%S  site2=%S  (diverged!)\n"
    (Tdoc.visible_string naive1) (Tdoc.visible_string naive2);
  (* transformed *)
  let t1 = Tdoc.apply (Tdoc.apply doc o1) (Transform.it o2 o1) in
  let t2 = Tdoc.apply (Tdoc.apply doc o2) (Transform.it o1 o2) in
  Printf.printf "transformed: site1=%S  site2=%S\n" (Tdoc.visible_string t1)
    (Tdoc.visible_string t2)

let () =
  fig1 ();
  play "Fig.2 - a revocation concurrent with an insertion"
    "s1 inserts 'x' while the administrator concurrently revokes s1's\n\
     insertion right.  Without retroactive enforcement, sites that saw\n\
     the insertion keep it and the administrator does not: divergence,\n\
     and an illegal edit survives."
    Naive.fig2
    { Controller.secure with Controller.retroactive_undo = false };
  play "Fig.3 - a revoke-then-regrant window"
    "s2 deletes 'a' under the old policy; the administrator revokes and\n\
     then re-grants the deletion right.  Sites that check the request\n\
     against their *current* policy accept what everyone else rejected:\n\
     the administrative log is needed to check against the interval."
    Naive.fig3
    { Controller.secure with Controller.interval_check = false };
  play "Fig.4 - a revocation overtaking a validated insertion"
    "the administrator accepts s1's insertion, then revokes s1's right.\n\
     If the revocation reaches s2 before the insertion, s2 wrongly\n\
     rejects a legal edit.  Validation totally orders the revocation\n\
     after the insertion, so s2 defers it."
    Naive.fig4
    { Controller.secure with Controller.validation = false };
  rule ();
  print_endline "all three holes reproduced and closed."
