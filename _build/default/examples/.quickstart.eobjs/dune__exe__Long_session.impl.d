examples/long_session.ml: Controller Convergence Dce_core Dce_ot Dce_sim Dce_wire Format List Net Printf Runner String Workload
