examples/latency_showdown.mli:
