examples/revocation_scenarios.ml: Controller Dce_baseline Dce_core Dce_ot Format Naive Op Printf String Tdoc Transform
