examples/quickstart.ml: Admin_op Auth Char Dce_core Dce_ot Docobj List Policy Printf Result Right Session Subject Tdoc
