examples/shared_wiki.ml: Admin_op Auth Char Controller Dce_core Dce_ot Dce_sim Docobj List Op Policy Printf Right String Subject Tdoc
