examples/latency_showdown.ml: Auth Central_lock Char Controller Dce_baseline Dce_core Dce_ot Docobj Fun List Op Policy Printf Right String Subject Tdoc Unix
