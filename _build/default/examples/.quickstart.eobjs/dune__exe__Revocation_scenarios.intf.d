examples/revocation_scenarios.mli:
