examples/shared_wiki.mli:
