examples/quickstart.mli:
