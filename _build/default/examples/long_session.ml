(* A long-running moderated session: delegation + log garbage collection.

     dune exec examples/long_session.exe

   The paper's §7 lists two open problems this library implements: log
   garbage collection (local logs "increase rapidly during collaboration
   sessions") and delegation of the administrative role.  This example
   runs the same long adversarial session twice — with and without GC —
   and compares log sizes and serialized state sizes (the practical cost
   a deployment would feel), while the administrator role hops between
   users throughout. *)

open Dce_core
open Dce_sim

let profile =
  {
    Workload.with_admin with
    users = 3;
    duration = 20_000;
    edit_interval = (15, 80);
    admin_interval = Some (150, 500);
    revoke_bias = 0.5;
    handoff_prob = 0.2;
    latency = Net.Uniform (5, 150);
  }

let report label r =
  let open Runner in
  Printf.printf "%s\n" label;
  Printf.printf "  %s\n"
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "site %d: %d live log entries"
              (Controller.site c)
              (Dce_ot.Oplog.live_length (Controller.oplog c)))
          r.controllers));
  let bytes =
    List.fold_left
      (fun acc c ->
        acc + String.length (Dce_wire.Proto.Char_proto.encode_state (Controller.dump c)))
      0 r.controllers
  in
  Printf.printf "  total serialized state: %d KiB\n" (bytes / 1024);
  Printf.printf "  final administrator: site %d\n"
    (Controller.admin (List.hd r.controllers));
  Format.printf "  %a@." Runner.pp_stats r.stats;
  r

let () =
  Printf.printf "running %d virtual seconds of moderated editing (seed 11)...\n\n"
    (profile.Workload.duration / 1000);
  let plain = report "without log GC:" (Runner.run profile ~seed:11) in
  print_newline ();
  let gc =
    report "with log GC (compact every 8 deliveries):"
      (Runner.run { profile with Workload.compact_every = Some 8 } ~seed:11)
  in
  print_newline ();
  (* same session, same final text — GC is observably free *)
  let text r =
    Dce_ot.Tdoc.visible_string
      (Controller.document (List.hd r.Runner.controllers))
  in
  assert (String.equal (text plain) (text gc));
  assert (Convergence.ok (Convergence.check plain.Runner.controllers));
  assert (Convergence.ok (Convergence.check gc.Runner.controllers));
  Printf.printf
    "both runs converged to the same %d-character document; GC changed\n\
     nothing except the bill.\n"
    (String.length (text plain))
