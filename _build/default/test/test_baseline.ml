(* Tests for the baselines: the positional transformation's TP2 failure
   (why the substrate choice matters), the cost-model baselines'
   behaviour, the central-lock latency model, and the naive-controller
   ablations reproducing the paper's security holes. *)

open Dce_ot
open Dce_core
open Dce_baseline

(* ----- positional transformation ----- *)

let positional_tests =
  [
    Alcotest.test_case "TP1 holds on the paper's Fig.1 pair" `Quick (fun () ->
        let doc = Document.Str.of_string "efecte" in
        let o1 = Op.ins ~pr:1 1 'f' and o2 = Op.del 5 'e' in
        let left = Document.Str.apply (Document.Str.apply doc o1) (Positional.it o2 o1) in
        let right = Document.Str.apply (Document.Str.apply doc o2) (Positional.it o1 o2) in
        Alcotest.(check string) "converge" "effect" (Document.Str.to_string left);
        Alcotest.(check string) "same" (Document.Str.to_string left)
          (Document.Str.to_string right));
    Alcotest.test_case "TP2 counterexample exists (the dOPT puzzle)" `Quick (fun () ->
        match Positional.tp2_counterexample () with
        | None -> Alcotest.fail "positional rules unexpectedly satisfy TP2"
        | Some (_, o1, o2, o3) ->
          let via12 = Positional.it_list o3 [ o1; Positional.it o2 o1 ] in
          let via21 = Positional.it_list o3 [ o2; Positional.it o1 o2 ] in
          Alcotest.(check bool) "really violates" false
            (Op.equal Char.equal via12 via21));
    Alcotest.test_case "tombstone rules pass the same exhaustive search" `Quick
      (fun () ->
        (* the same small search space that breaks the positional rules
           finds nothing against the tombstone rules *)
        let docs = [ "ab"; "abc" ] in
        let ops doc =
          let n = String.length doc in
          List.concat_map (fun p -> [ `I (p, 'x'); `I (p, 'y') ]) (List.init (n + 1) Fun.id)
          @ List.map (fun p -> `D p) (List.init n Fun.id)
        in
        let realize doc pr = function
          | `I (p, c) -> Op.ins ~pr p c
          | `D p -> Op.del p doc.[p]
        in
        List.iter
          (fun doc ->
            let all = ops doc in
            List.iter
              (fun s1 ->
                List.iter
                  (fun s2 ->
                    List.iter
                      (fun s3 ->
                        let o1 = realize doc 1 s1
                        and o2 = realize doc 2 s2
                        and o3 = realize doc 3 s3 in
                        let via12 = Transform.it_list o3 [ o1; Transform.it o2 o1 ] in
                        let via21 = Transform.it_list o3 [ o2; Transform.it o1 o2 ] in
                        if not (Op.equal Char.equal via12 via21) then
                          Alcotest.failf "tombstone TP2 violated on %S" doc)
                      all)
                  all)
              all)
          docs);
  ]

(* ----- SDT-like / ABT-like ----- *)

let exchange_two generate_receive =
  (* two sites, two concurrent edits, full exchange *)
  generate_receive ()

let sdt_tests =
  [
    Alcotest.test_case "two concurrent edits converge" `Quick (fun () ->
        exchange_two (fun () ->
            let a = Sdt_like.create ~site:1 "abc" in
            let b = Sdt_like.create ~site:2 "abc" in
            let a, qa = Sdt_like.generate a (Op.ins 0 'x') in
            let b, qb = Sdt_like.generate b (Op.ins 3 'z') in
            let a = Sdt_like.receive a qb in
            let b = Sdt_like.receive b qa in
            Alcotest.(check string) "a" "xabcz" (Sdt_like.text a);
            Alcotest.(check string) "b" (Sdt_like.text a) (Sdt_like.text b)));
    Alcotest.test_case "duplicate delivery ignored" `Quick (fun () ->
        let a = Sdt_like.create ~site:1 "abc" in
        let b = Sdt_like.create ~site:2 "abc" in
        let _, qa = Sdt_like.generate a (Op.ins 0 'x') in
        let b = Sdt_like.receive b qa in
        let b = Sdt_like.receive b qa in
        Alcotest.(check string) "once" "xabc" (Sdt_like.text b);
        Alcotest.(check int) "log" 1 (Sdt_like.log_length b));
    Alcotest.test_case "sequential edits replay in causal order" `Quick (fun () ->
        let a = Sdt_like.create ~site:1 "" in
        let b = Sdt_like.create ~site:2 "" in
        let a, q1 = Sdt_like.generate a (Op.ins 0 'h') in
        let a, q2 = Sdt_like.generate a (Op.ins 1 'i') in
        let b = Sdt_like.receive (Sdt_like.receive b q1) q2 in
        Alcotest.(check string) "hi" "hi" (Sdt_like.text b);
        Alcotest.(check string) "same" (Sdt_like.text a) (Sdt_like.text b));
  ]

let abt_tests =
  [
    Alcotest.test_case "two concurrent edits converge" `Quick (fun () ->
        let a = Abt_like.create ~site:1 "abc" in
        let b = Abt_like.create ~site:2 "abc" in
        let a, qa = Abt_like.generate a (Op.ins 0 'x') in
        let b, qb = Abt_like.generate b (Op.del 2 'c') in
        let a = Abt_like.receive a qb in
        let b = Abt_like.receive b qa in
        Alcotest.(check string) "a" "xab" (Abt_like.text a);
        Alcotest.(check string) "b" (Abt_like.text a) (Abt_like.text b));
    Alcotest.test_case "log is kept canonical" `Quick (fun () ->
        let a = Abt_like.create ~site:1 "abcdef" in
        let a, _ = Abt_like.generate a (Op.del 1 'b') in
        let a, _ = Abt_like.generate a (Op.ins 0 'x') in
        let a, _ = Abt_like.generate a (Op.del 3 'd') in
        let a, _ = Abt_like.generate a (Op.ins 1 'y') in
        Alcotest.(check int) "log length" 4 (Abt_like.log_length a);
        Alcotest.(check string) "text" "xyacef" (Abt_like.text a));
  ]

(* ----- central lock ----- *)

let central_tests =
  [
    Alcotest.test_case "response time floor is rtt + check" `Quick (fun () ->
        let cfg =
          {
            Central_lock.clients = 1;
            rtt = 100;
            check_cost = 5;
            op_interval = (200, 400);
            duration = 10_000;
          }
        in
        let s = Central_lock.simulate cfg ~seed:1 in
        Alcotest.(check bool) "ops happened" true (s.Central_lock.operations > 0);
        Alcotest.(check bool) "mean >= floor" true (s.Central_lock.mean_response >= 105.));
    Alcotest.test_case "contention grows response times" `Quick (fun () ->
        let base =
          {
            Central_lock.clients = 2;
            rtt = 80;
            check_cost = 10;
            op_interval = (50, 150);
            duration = 20_000;
          }
        in
        let light = Central_lock.simulate base ~seed:3 in
        let heavy = Central_lock.simulate { base with clients = 40 } ~seed:3 in
        Alcotest.(check bool) "heavier is slower" true
          (heavy.Central_lock.mean_response > light.Central_lock.mean_response);
        Alcotest.(check bool) "server saturates" true
          (heavy.Central_lock.server_utilization > light.Central_lock.server_utilization));
    Alcotest.test_case "deterministic for a seed" `Quick (fun () ->
        let cfg =
          {
            Central_lock.clients = 5;
            rtt = 60;
            check_cost = 3;
            op_interval = (40, 200);
            duration = 5_000;
          }
        in
        Alcotest.(check bool) "equal" true
          (Central_lock.simulate cfg ~seed:9 = Central_lock.simulate cfg ~seed:9));
  ]

(* ----- naive controller ablations (the paper's holes) ----- *)

let secure = Controller.secure

let naive_tests =
  [
    Alcotest.test_case "secure controller closes all three holes" `Quick (fun () ->
        List.iter
          (fun f ->
            let r = f secure in
            if Naive.holes r then
              Alcotest.failf "unexpected hole:@.%a" Naive.pp r)
          [ Naive.fig2; Naive.fig3; Naive.fig4 ]);
    Alcotest.test_case "no retroactive undo -> Fig.2 hole" `Quick (fun () ->
        let r = Naive.fig2 { secure with Controller.retroactive_undo = false } in
        Alcotest.(check bool) "diverged" true r.Naive.diverged;
        Alcotest.(check bool) "illegal effect" true r.Naive.illegal_effect_somewhere);
    Alcotest.test_case "no interval check -> Fig.3 hole" `Quick (fun () ->
        let r = Naive.fig3 { secure with Controller.interval_check = false } in
        Alcotest.(check bool) "hole" true (Naive.holes r));
    Alcotest.test_case "no validation -> Fig.4 hole (legal edit rejected)" `Quick
      (fun () ->
        let r = Naive.fig4 { secure with Controller.validation = false } in
        Alcotest.(check bool) "legal rejected" true r.Naive.legal_rejected);
    Alcotest.test_case "fully naive controller is broken on all three" `Quick (fun () ->
        List.iter
          (fun f ->
            let r = f Controller.naive in
            if not (Naive.holes r) then
              Alcotest.failf "expected a hole:@.%a" Naive.pp r)
          [ Naive.fig2; Naive.fig3; Naive.fig4 ]);
  ]

let () =
  Alcotest.run "dce_baseline"
    [
      ("positional", positional_tests);
      ("sdt_like", sdt_tests);
      ("abt_like", abt_tests);
      ("central_lock", central_tests);
      ("naive", naive_tests);
    ]
