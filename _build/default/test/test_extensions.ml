(* Tests for the extensions beyond the paper's core algorithm: log
   garbage collection (its §7 future work), administrative delegation
   (Transfer_admin), late join (Controller.fork), and the defence-in-depth
   drop of illegitimate administrative traffic. *)

open Dce_ot
open Dce_core

let adm = 0
let s1 = 1
let s2 = 2

let all_rights users =
  Policy.make ~users [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]

module C = Controller

let doc0 = Tdoc.of_string "abc"

let mk ?(policy = all_rights [ adm; s1; s2 ]) site =
  C.create ~eq:Char.equal ~site ~admin:adm ~policy doc0

let ok_gen c op =
  match C.generate c op with
  | c, C.Accepted m -> (c, m)
  | _, C.Denied r -> Alcotest.failf "denied: %s" r

let ok_admin c op =
  match C.admin_update c op with
  | Ok (c, m) -> (c, m)
  | Error e -> Alcotest.failf "admin_update: %s" e

let recv c m = fst (C.receive c m)

let vis c = Tdoc.visible_string (C.document c)

let models_agree cs =
  match cs with
  | [] -> true
  | c0 :: rest ->
    List.for_all (fun c -> Tdoc.equal_model Char.equal (C.document c0) (C.document c)) rest

(* ----- Oplog compaction ----- *)

let mk_req ?(site = 1) ~serial ~ctx ?(flag = Request.Valid) op =
  Request.make ~site ~serial ~op ~ctx ~policy_version:0 ~flag ()

let oplog_compaction_tests =
  [
    Alcotest.test_case "stable prefix is dropped, identity is remembered" `Quick
      (fun () ->
        let h = Oplog.empty in
        let h = Oplog.append_local (mk_req ~serial:1 ~ctx:Vclock.empty (Op.ins 0 'a')) h in
        let h =
          Oplog.append_local
            (mk_req ~serial:2 ~ctx:(Vclock.of_list [ (1, 1) ]) (Op.ins 1 'b'))
            h
        in
        let stable = Vclock.of_list [ (1, 2) ] in
        let h' = Oplog.compact ~stable ~stable_version:0 h in
        Alcotest.(check int) "emptied" 0 (Oplog.live_length h');
        Alcotest.(check bool) "mem survives compaction" true
          (Oplog.mem { Request.site = 1; serial = 2 } h');
        (* a request depending on the dropped ones is still causally ready *)
        let q = mk_req ~site:2 ~serial:1 ~ctx:(Vclock.of_list [ (1, 2) ]) (Op.ins 0 'z') in
        Alcotest.(check bool) "ready over the gap" true (Oplog.causally_ready q h'));
    Alcotest.test_case "only a prefix is dropped" `Quick (fun () ->
        let h = Oplog.empty in
        let h = Oplog.append_local (mk_req ~serial:1 ~ctx:Vclock.empty (Op.ins 0 'a')) h in
        (* a concurrent remote request, not yet stable *)
        let remote = mk_req ~site:2 ~serial:1 ~ctx:Vclock.empty (Op.ins 0 'z') in
        let _, h = Oplog.integrate remote h in
        let h =
          Oplog.append_local
            (mk_req ~serial:2 ~ctx:(Vclock.of_list [ (1, 1); (2, 1) ]) (Op.ins 1 'b'))
            h
        in
        (* site 1's requests are stable, site 2's are not *)
        let stable = Vclock.of_list [ (1, 2) ] in
        let h' = Oplog.compact ~stable ~stable_version:0 h in
        (* q1.1 leads the log and drops; the remote entry blocks the rest *)
        Alcotest.(check int) "two entries left" 2 (Oplog.live_length h');
        Alcotest.(check bool) "later stable entry kept" true
          (Oplog.find { Request.site = 1; serial = 2 } h' <> None));
    Alcotest.test_case "tentative entries are never dropped" `Quick (fun () ->
        let h =
          Oplog.append_local
            (mk_req ~serial:1 ~ctx:Vclock.empty ~flag:Request.Tentative (Op.ins 0 'a'))
            Oplog.empty
        in
        let stable = Vclock.of_list [ (1, 5) ] in
        let h' = Oplog.compact ~stable ~stable_version:99 h in
        Alcotest.(check int) "kept" 1 (Oplog.live_length h'));
  ]

(* ----- Controller-level compaction ----- *)

let controller_compaction_tests =
  [
    Alcotest.test_case "frontier rises only with evidence from every peer" `Quick
      (fun () ->
        let a = mk adm and u1 = mk s1 in
        let u1, m = ok_gen u1 (Op.ins 0 'x') in
        let a, _ = C.receive a m in
        (* the administrator has seen nothing from s2 yet: frontier empty *)
        Alcotest.(check int) "frontier floor" 0
          (Vclock.get (C.stable_frontier a) s1);
        ignore u1;
        (* a message from s2 whose context includes s1's request raises it *)
        let u2 = mk s2 in
        let u2 = recv u2 m in
        let u2, m2 = ok_gen u2 (Tdoc.ins_visible (C.document u2) 0 'y') in
        let a, _ = C.receive a m2 in
        ignore u2;
        Alcotest.(check int) "frontier sees s1 via s2" 1
          (Vclock.get (C.stable_frontier a) s1));
    Alcotest.test_case "compacted session still converges with late traffic" `Quick
      (fun () ->
        (* s1 and s2 edit in rounds with full exchange; the administrator
           compacts aggressively; a final burst still integrates *)
        let a = ref (mk adm) and u1 = ref (mk s1) and u2 = ref (mk s2) in
        let exchange msgs =
          List.iter
            (fun (src, m) ->
              List.iter
                (fun (site, c) ->
                  if site <> src then begin
                    let c', out = C.receive !c m in
                    c := c';
                    (* validations from the admin flow everywhere *)
                    List.iter
                      (fun m' ->
                        List.iter
                          (fun (site', c'') ->
                            if site' <> adm then c'' := fst (C.receive !c'' m'))
                          [ (adm, a); (s1, u1); (s2, u2) ])
                      out
                  end)
                [ (adm, a); (s1, u1); (s2, u2) ])
            msgs
        in
        for round = 0 to 9 do
          let c1, m1 = ok_gen !u1 (Tdoc.ins_visible (C.document !u1) 0 'k') in
          u1 := c1;
          let c2, m2 =
            ok_gen !u2 (Tdoc.ins_visible (C.document !u2) (round mod 3) 'w')
          in
          u2 := c2;
          exchange [ (s1, m1); (s2, m2) ];
          a := C.compact !a;
          u1 := C.compact !u1;
          u2 := C.compact !u2
        done;
        let uncompacted_length = 20 (* 2 requests per round *) in
        Alcotest.(check bool) "admin log actually shrank" true
          (Oplog.live_length (C.oplog !a) < uncompacted_length);
        Alcotest.(check bool) "converged" true (models_agree [ !a; !u1; !u2 ]);
        (* a fresh remote request still lands after compaction *)
        let c1, m = ok_gen !u1 (Tdoc.ins_visible (C.document !u1) 2 'z') in
        u1 := c1;
        exchange [ (s1, m) ];
        Alcotest.(check bool) "late traffic ok" true (models_agree [ !a; !u1; !u2 ]));
  ]

(* ----- administrative delegation ----- *)

let handoff_tests =
  [
    Alcotest.test_case "role moves; old administrator loses it" `Quick (fun () ->
        let a = mk adm and u1 = mk s1 in
        let a, m = ok_admin a (Admin_op.Transfer_admin s1) in
        Alcotest.(check bool) "a no longer admin" false (C.is_admin a);
        Alcotest.(check int) "role holder" s1 (C.admin a);
        let u1 = recv u1 m in
        Alcotest.(check bool) "u1 now admin" true (C.is_admin u1);
        (* the new administrator can change the policy; the old cannot *)
        let u1, _ =
          ok_admin u1
            (Admin_op.Add_auth
               (0, Auth.deny [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Insert ]))
        in
        Alcotest.(check int) "version advanced" 2 (C.version u1);
        Alcotest.(check bool) "old admin rejected" true
          (Result.is_error (C.admin_update a (Admin_op.Add_user 9))));
    Alcotest.test_case "transfer to an unregistered user is refused" `Quick (fun () ->
        let a = mk adm in
        Alcotest.(check bool) "refused" true
          (Result.is_error (C.admin_update a (Admin_op.Transfer_admin 42))));
    Alcotest.test_case "new administrator validates the backlog" `Quick (fun () ->
        (* s2's request reaches s1 BEFORE the transfer: when the role
           lands on s1, the request must still end up validated *)
        let a = mk adm and u1 = mk s1 and u2 = mk s2 in
        let u2, q = ok_gen u2 (Op.ins 0 'x') in
        let u1 = recv u1 q in
        Alcotest.(check int) "tentative at future admin" 1 (List.length (C.tentative u1));
        let _, transfer = ok_admin a (Admin_op.Transfer_admin s1) in
        let u1, emitted = C.receive u1 transfer in
        Alcotest.(check int) "backlog validation emitted" 1 (List.length emitted);
        Alcotest.(check int) "validated locally" 0 (List.length (C.tentative u1));
        (* the validation reaches the issuer too *)
        let u2 = recv u2 transfer in
        let u2 = List.fold_left recv u2 emitted in
        Alcotest.(check int) "validated at issuer" 0 (List.length (C.tentative u2)));
    Alcotest.test_case "requests are attributed to the administrator of their version"
      `Quick (fun () ->
        (* the old administrator's edit, generated before the transfer,
           still bypasses checks at sites that apply the transfer first *)
        let a = mk adm and u1 = mk s1 and u2 = mk s2 in
        let a, edit = ok_gen a (Op.ins 0 'x') in
        let a, transfer = ok_admin a (Admin_op.Transfer_admin s1) in
        ignore a;
        let u2 = recv (recv u2 transfer) edit in
        Alcotest.(check string) "applied" "xabc" (vis u2);
        ignore u1);
    Alcotest.test_case "impostor administrative requests are dropped" `Quick (fun () ->
        let u1 = mk s1 in
        let impostor =
          { Admin_op.admin = s2; version = 1; op = Admin_op.Add_user 9; ctx = Vclock.empty }
        in
        let u1 = recv u1 (C.Admin impostor) in
        Alcotest.(check int) "version unchanged" 0 (C.version u1);
        Alcotest.(check int) "not queued" 0 (C.pending_admin u1);
        (* the real administrator's v1 still applies afterwards *)
        let a = mk adm in
        let _, m = ok_admin a (Admin_op.Add_user 9) in
        let u1 = recv u1 m in
        Alcotest.(check int) "real one applied" 1 (C.version u1));
  ]

(* ----- late join ----- *)

let fork_tests =
  [
    Alcotest.test_case "a forked site joins mid-session and converges" `Quick (fun () ->
        let s3 = 3 in
        let a = mk adm and u1 = mk s1 in
        (* some history *)
        let u1, m1 = ok_gen u1 (Op.ins 0 'x') in
        let a, out = C.receive a m1 in
        let v1 = match out with [ m ] -> m | _ -> Alcotest.fail "validation" in
        let u1 = recv u1 v1 in
        (* register the newcomer, then bootstrap it from s1's state *)
        let a, reg = ok_admin a (Admin_op.Add_user s3) in
        let u1 = recv u1 reg in
        let u3 = C.fork ~site:s3 u1 in
        Alcotest.(check string) "inherited document" "xabc" (vis u3);
        Alcotest.(check int) "inherited version" (C.version u1) (C.version u3);
        (* the newcomer edits; everyone integrates *)
        let u3, m3 = ok_gen u3 (Tdoc.ins_visible (C.document u3) 4 '!') in
        let a, out3 = C.receive a m3 in
        let v3 = match out3 with [ m ] -> m | _ -> Alcotest.fail "validation" in
        let u1 = recv (recv u1 m3) v3 in
        let u3 = recv u3 v3 in
        Alcotest.(check string) "newcomer's edit everywhere" "xabc!" (vis a);
        Alcotest.(check bool) "models agree" true (models_agree [ a; u1; u3 ]));
    Alcotest.test_case "a forked site starts its own serial numbering" `Quick (fun () ->
        let u1 = mk ~policy:(all_rights [ adm; s1; s2; 3 ]) s1 in
        let u1, _ = ok_gen u1 (Op.ins 0 'x') in
        let u3 = C.fork ~site:3 u1 in
        (* its first request must carry serial 1 for site 3 *)
        match C.generate u3 (Op.ins 0 'y') with
        | _, C.Accepted (C.Coop q) ->
          Alcotest.(check int) "site" 3 q.Request.id.Request.site;
          Alcotest.(check int) "serial" 1 q.Request.id.Request.serial
        | _ -> Alcotest.fail "expected acceptance");
  ]

(* ----- composite edits (cut/copy/paste) ----- *)

let edit_tests =
  [
    Alcotest.test_case "replace_range = cut + paste" `Quick (fun () ->
        let d = Tdoc.of_string "hello cruel world" in
        match Edit.preview d (Edit.replace_string ~at:6 ~len:5 "kind") with
        | Error e -> Alcotest.fail e
        | Ok d' ->
          Alcotest.(check string) "replaced" "hello kind world" (Tdoc.visible_string d'));
    Alcotest.test_case "copy yields the clipboard" `Quick (fun () ->
        let d = Tdoc.of_string "abcdef" in
        Alcotest.(check (list char)) "clipboard" [ 'c'; 'd'; 'e' ]
          (Edit.copy d ~at:2 ~len:3));
    Alcotest.test_case "copy/paste across tombstones" `Quick (fun () ->
        let d = Tdoc.apply (Tdoc.of_string "abcdef") (Op.del 2 'c') in
        (* visible "abdef": copy "bde", paste at the end *)
        let clip = Edit.copy d ~at:1 ~len:3 in
        Alcotest.(check (list char)) "clip" [ 'b'; 'd'; 'e' ] clip;
        match Edit.preview d (Edit.Insert_text { at = 5; elts = clip }) with
        | Error e -> Alcotest.fail e
        | Ok d' -> Alcotest.(check string) "pasted" "abdefbde" (Tdoc.visible_string d'));
    Alcotest.test_case "out-of-range edits are refused" `Quick (fun () ->
        let d = Tdoc.of_string "abc" in
        Alcotest.(check bool) "delete" true
          (Result.is_error (Edit.compile d (Edit.Delete_range { at = 1; len = 5 })));
        Alcotest.(check bool) "insert" true
          (Result.is_error (Edit.compile d (Edit.insert_string 7 "x"))));
    Alcotest.test_case "a composite edit travels as a causal run of requests" `Quick
      (fun () ->
        let a = mk adm and u1 = mk s1 in
        let doc = C.document u1 in
        let ops =
          Result.get_ok (Edit.compile doc (Edit.replace_string ~at:0 ~len:2 "XY"))
        in
        match C.generate_edit u1 ops with
        | Error e -> Alcotest.fail e
        | Ok (u1, msgs) ->
          Alcotest.(check string) "locally applied" "XYc" (vis u1);
          (* deliver the run in order; the admin converges *)
          let a = List.fold_left (fun a m -> fst (C.receive a m)) a msgs in
          Alcotest.(check string) "remote" "XYc" (vis a);
          Alcotest.(check bool) "models" true (models_agree [ a; u1 ]));
    Alcotest.test_case "a composite edit is denied atomically" `Quick (fun () ->
        (* s1 may insert but not delete: a replace (delete+insert) must be
           refused entirely, leaving no partial effect *)
        let policy =
          Policy.make ~users:[ adm; s1 ]
            [
              Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Delete ];
              Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all;
            ]
        in
        let u1 = mk ~policy s1 in
        let ops =
          Result.get_ok
            (Edit.compile (C.document u1) (Edit.replace_string ~at:0 ~len:1 "Z"))
        in
        (match C.generate_edit u1 ops with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected denial");
        Alcotest.(check string) "untouched" "abc" (vis u1);
        (* a pure insertion composite still goes through *)
        let ops =
          Result.get_ok (Edit.compile (C.document u1) (Edit.insert_string 3 "!!"))
        in
        match C.generate_edit u1 ops with
        | Ok (u1, _) -> Alcotest.(check string) "inserted" "abc!!" (vis u1)
        | Error e -> Alcotest.fail e);
  ]

(* ----- read-right rendering filter ----- *)

let read_tests =
  [
    Alcotest.test_case "unreadable zones are redacted, not removed" `Quick (fun () ->
        let policy =
          Policy.make ~users:[ adm; s1 ]
            [
              Auth.deny [ Subject.User s1 ] [ Docobj.zone 0 2 ] [ Right.Read ];
              Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all;
            ]
        in
        let u1 = mk ~policy s1 in
        let rendered = C.readable u1 in
        Alcotest.(check int) "same length" 3 (List.length rendered);
        Alcotest.(check (list (option char))) "head redacted"
          [ None; None; None ]
          (List.filteri (fun i _ -> i < 3) rendered);
        (* the administrator reads everything *)
        let a = mk ~policy adm in
        Alcotest.(check bool) "admin sees all" true
          (List.for_all Option.is_some (C.readable a)));
    Alcotest.test_case "a user without the read right sees only redactions" `Quick
      (fun () ->
        let policy =
          Policy.make ~users:[ adm; s1 ]
            [
              Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Read ];
              Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all;
            ]
        in
        let u1 = mk ~policy s1 in
        Alcotest.(check bool) "all redacted" true
          (List.for_all Option.is_none (C.readable u1));
        (* ...but can still edit (write without read, as in classified
           append-only logs) *)
        match C.generate u1 (Op.ins 0 'x') with
        | _, C.Accepted _ -> ()
        | _, C.Denied r -> Alcotest.failf "write should still pass: %s" r);
  ]

(* ----- element genericity: paragraph documents ----- *)

let paragraph_tests =
  [
    Alcotest.test_case "the whole stack runs on paragraph elements" `Quick (fun () ->
        (* the paper: "an element may be regarded as a character, a
           paragraph, a page, an XML node" — same controller, string
           elements *)
        let policy = all_rights [ adm; s1 ] in
        let doc0 = Tdoc.of_list [ "# Title"; "Intro paragraph."; "The end." ] in
        let a =
          C.create ~eq:String.equal ~site:adm ~admin:adm ~policy doc0
        in
        let u1 = C.create ~eq:String.equal ~site:s1 ~admin:adm ~policy doc0 in
        let u1, m =
          match C.generate u1 (Tdoc.ins_visible (C.document u1) 2 "New section!") with
          | c, C.Accepted m -> (c, m)
          | _, C.Denied r -> Alcotest.failf "denied: %s" r
        in
        let a, out = C.receive a m in
        let u1 = List.fold_left (fun c m -> fst (C.receive c m)) u1 out in
        Alcotest.(check (list string)) "paragraphs"
          [ "# Title"; "Intro paragraph."; "New section!"; "The end." ]
          (Tdoc.visible_list (C.document a));
        Alcotest.(check bool) "converged" true
          (Tdoc.equal_model String.equal (C.document a) (C.document u1));
        (* the wire handles them too, via the string element codec *)
        let encoded =
          Dce_wire.Proto.encode_message Dce_wire.Proto.string_codec m
        in
        match Dce_wire.Proto.decode_message Dce_wire.Proto.string_codec encoded with
        | Ok (C.Coop q) ->
          Alcotest.(check bool) "wire roundtrip" true
            (Request.id_equal q.Request.id
               (match m with C.Coop q' -> q'.Request.id | _ -> assert false))
        | _ -> Alcotest.fail "wire roundtrip failed");
  ]

let () =
  Alcotest.run "dce_extensions"
    [
      ("oplog compaction", oplog_compaction_tests);
      ("controller compaction", controller_compaction_tests);
      ("delegation", handoff_tests);
      ("late join", fork_tests);
      ("composite edits", edit_tests);
      ("read filter", read_tests);
      ("paragraph elements", paragraph_tests);
    ]
