(* Tests for the access-control core: policy machinery unit tests plus
   the paper's four coordination scenarios (Figs. 2-5) as integration
   tests over the controller. *)

open Dce_ot
open Dce_core

let adm = 0
let s1 = 1
let s2 = 2

let all_rights_policy users =
  Policy.make ~users [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]

(* ----- Right ----- *)

let right_tests =
  [
    Alcotest.test_case "of_op" `Quick (fun () ->
        Alcotest.(check bool) "ins" true (Right.of_op (Op.ins 0 'a') = Some Right.Insert);
        Alcotest.(check bool) "del" true (Right.of_op (Op.del 0 'a') = Some Right.Delete);
        Alcotest.(check bool) "up" true
          (Right.of_op (Op.up 0 'a' 'b') = Some Right.Update);
        Alcotest.(check bool) "undel exempt" true (Right.of_op (Op.undel 0 'a') = None);
        Alcotest.(check bool) "nop exempt" true (Right.of_op Op.Nop = None));
    Alcotest.test_case "paper notation roundtrip" `Quick (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check bool) "roundtrip" true
              (Right.of_string (Right.to_string r) = Some r))
          Right.all;
        Alcotest.(check bool) "unknown" true (Right.of_string "xR" = None));
  ]

(* ----- Subject / Docobj / Auth ----- *)

let no_groups _ _ = false
let no_named _ = None

let subject_tests =
  [
    Alcotest.test_case "matching" `Quick (fun () ->
        Alcotest.(check bool) "any" true (Subject.matches ~member:no_groups Subject.Any 7);
        Alcotest.(check bool) "user" true
          (Subject.matches ~member:no_groups (Subject.User 7) 7);
        Alcotest.(check bool) "other user" false
          (Subject.matches ~member:no_groups (Subject.User 7) 8);
        let member g u = g = "editors" && u = 7 in
        Alcotest.(check bool) "group member" true
          (Subject.matches ~member (Subject.Group "editors") 7);
        Alcotest.(check bool) "group non-member" false
          (Subject.matches ~member (Subject.Group "editors") 8));
  ]

let docobj_tests =
  [
    Alcotest.test_case "whole covers everything" `Quick (fun () ->
        Alcotest.(check bool) "pos" true
          (Docobj.matches ~resolve:no_named Docobj.Whole ~pos:(Some 5));
        Alcotest.(check bool) "no pos" true
          (Docobj.matches ~resolve:no_named Docobj.Whole ~pos:None));
    Alcotest.test_case "element and zone" `Quick (fun () ->
        Alcotest.(check bool) "element hit" true
          (Docobj.matches ~resolve:no_named (Docobj.Element 3) ~pos:(Some 3));
        Alcotest.(check bool) "element miss" false
          (Docobj.matches ~resolve:no_named (Docobj.Element 3) ~pos:(Some 4));
        let z = Docobj.zone 2 5 in
        Alcotest.(check bool) "zone lo" true (Docobj.matches ~resolve:no_named z ~pos:(Some 2));
        Alcotest.(check bool) "zone hi" true (Docobj.matches ~resolve:no_named z ~pos:(Some 5));
        Alcotest.(check bool) "zone out" false
          (Docobj.matches ~resolve:no_named z ~pos:(Some 6));
        Alcotest.(check bool) "zone no pos" false
          (Docobj.matches ~resolve:no_named z ~pos:None));
    Alcotest.test_case "invalid zone rejected" `Quick (fun () ->
        (try
           ignore (Docobj.zone 5 2);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "named objects resolve through the registry" `Quick (fun () ->
        let resolve = function "intro" -> Some (Docobj.zone 0 9) | _ -> None in
        Alcotest.(check bool) "resolved" true
          (Docobj.matches ~resolve (Docobj.Named "intro") ~pos:(Some 4));
        Alcotest.(check bool) "dangling covers nothing" false
          (Docobj.matches ~resolve (Docobj.Named "gone") ~pos:(Some 4)));
  ]

let auth_tests =
  [
    Alcotest.test_case "empty components rejected" `Quick (fun () ->
        (try
           ignore
             (Auth.make ~subjects:[] ~objects:[ Docobj.Whole ] ~rights:Right.all
                Auth.Positive);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "matches is conjunction over components" `Quick (fun () ->
        let a =
          Auth.grant
            [ Subject.User 1; Subject.User 2 ]
            [ Docobj.zone 0 3 ]
            [ Right.Insert; Right.Delete ]
        in
        let m = Auth.matches ~member:no_groups ~resolve:no_named a in
        Alcotest.(check bool) "hit" true (m ~user:2 ~right:Right.Insert ~pos:(Some 1));
        Alcotest.(check bool) "wrong user" false (m ~user:3 ~right:Right.Insert ~pos:(Some 1));
        Alcotest.(check bool) "wrong right" false (m ~user:2 ~right:Right.Update ~pos:(Some 1));
        Alcotest.(check bool) "wrong pos" false (m ~user:2 ~right:Right.Insert ~pos:(Some 9)));
  ]

(* ----- Policy ----- *)

let policy_tests =
  [
    Alcotest.test_case "default deny" `Quick (fun () ->
        let p = Policy.make ~users:[ 1 ] [] in
        Alcotest.(check bool) "denied" false
          (Policy.check p ~user:1 ~right:Right.Insert ~pos:None));
    Alcotest.test_case "unregistered user denied even with Any grant" `Quick (fun () ->
        let p =
          Policy.make ~users:[ 1 ] [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
        in
        Alcotest.(check bool) "registered" true
          (Policy.check p ~user:1 ~right:Right.Insert ~pos:None);
        Alcotest.(check bool) "unregistered" false
          (Policy.check p ~user:9 ~right:Right.Insert ~pos:None));
    Alcotest.test_case "first match wins: negative shadows positive" `Quick (fun () ->
        let p =
          Policy.make ~users:[ 1 ]
            [
              Auth.deny [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Delete ];
              Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all;
            ]
        in
        Alcotest.(check bool) "delete denied" false
          (Policy.check p ~user:1 ~right:Right.Delete ~pos:(Some 0));
        Alcotest.(check bool) "insert granted" true
          (Policy.check p ~user:1 ~right:Right.Insert ~pos:(Some 0)));
    Alcotest.test_case "positive shadows later negative (re-grant)" `Quick (fun () ->
        let p =
          Policy.make ~users:[ 1 ]
            [
              Auth.grant [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Delete ];
              Auth.deny [ Subject.Any ] [ Docobj.Whole ] Right.all;
            ]
        in
        Alcotest.(check bool) "granted" true
          (Policy.check p ~user:1 ~right:Right.Delete ~pos:(Some 0)));
    Alcotest.test_case "group rights follow membership changes" `Quick (fun () ->
        let p =
          Policy.make ~users:[ 1; 2 ]
            ~groups:[ ("editors", [ 1 ]) ]
            [ Auth.grant [ Subject.Group "editors" ] [ Docobj.Whole ] [ Right.Insert ] ]
        in
        Alcotest.(check bool) "member" true
          (Policy.check p ~user:1 ~right:Right.Insert ~pos:None);
        Alcotest.(check bool) "non-member" false
          (Policy.check p ~user:2 ~right:Right.Insert ~pos:None);
        let p = Result.get_ok (Policy.add_to_group p "editors" 2) in
        Alcotest.(check bool) "added" true
          (Policy.check p ~user:2 ~right:Right.Insert ~pos:None);
        let p = Result.get_ok (Policy.del_from_group p "editors" 1) in
        Alcotest.(check bool) "removed" false
          (Policy.check p ~user:1 ~right:Right.Insert ~pos:None));
    Alcotest.test_case "del_user also leaves groups" `Quick (fun () ->
        let p =
          Policy.make ~users:[ 1 ] ~groups:[ ("g", [ 1 ]) ]
            [ Auth.grant [ Subject.Group "g" ] [ Docobj.Whole ] Right.all ]
        in
        let p = Result.get_ok (Policy.del_user p 1) in
        Alcotest.(check bool) "gone" false (Policy.member p "g" 1));
    Alcotest.test_case "auth index management" `Quick (fun () ->
        let a1 = Auth.grant [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Insert ] in
        let a2 = Auth.deny [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Insert ] in
        let p = Policy.make ~users:[ 1 ] [ a1 ] in
        (* inserting the negative at index 0 shadows the grant *)
        let p' = Result.get_ok (Policy.add_auth p 0 a2) in
        Alcotest.(check bool) "shadowed" false
          (Policy.check p' ~user:1 ~right:Right.Insert ~pos:None);
        (* appending it instead leaves the grant effective *)
        let p'' = Result.get_ok (Policy.add_auth p 1 a2) in
        Alcotest.(check bool) "still granted" true
          (Policy.check p'' ~user:1 ~right:Right.Insert ~pos:None);
        Alcotest.(check bool) "bad index" true (Result.is_error (Policy.add_auth p 5 a2));
        let p3 = Result.get_ok (Policy.del_auth p' 0) in
        Alcotest.(check bool) "unshadowed" true
          (Policy.check p3 ~user:1 ~right:Right.Insert ~pos:None);
        Alcotest.(check bool) "del bad index" true (Result.is_error (Policy.del_auth p3 7)));
    Alcotest.test_case "check_op exempts undel and nop" `Quick (fun () ->
        let p = Policy.make ~users:[ 1 ] [] in
        Alcotest.(check bool) "undel" true (Policy.check_op p ~user:1 (Op.undel 0 'a'));
        Alcotest.(check bool) "nop" true (Policy.check_op p ~user:1 Op.Nop);
        Alcotest.(check bool) "ins" false (Policy.check_op p ~user:1 (Op.ins 0 'a')));
    Alcotest.test_case "named object scoping" `Quick (fun () ->
        let p =
          Policy.make ~users:[ 1 ]
            ~objects:[ ("intro", Docobj.zone 0 4) ]
            [ Auth.grant [ Subject.User 1 ] [ Docobj.Named "intro" ] [ Right.Update ] ]
        in
        Alcotest.(check bool) "inside" true
          (Policy.check p ~user:1 ~right:Right.Update ~pos:(Some 2));
        Alcotest.(check bool) "outside" false
          (Policy.check p ~user:1 ~right:Right.Update ~pos:(Some 7));
        let p = Result.get_ok (Policy.del_obj p "intro") in
        Alcotest.(check bool) "dangling" false
          (Policy.check p ~user:1 ~right:Right.Update ~pos:(Some 2)));
  ]

(* ----- Admin_op / Admin_log ----- *)

let mk_reqs ops =
  List.mapi (fun i op -> { Admin_op.admin = adm; version = i + 1; op; ctx = Vclock.empty }) ops

let admin_log_tests =
  [
    Alcotest.test_case "restrictive classification" `Quick (fun () ->
        let neg = Auth.deny [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Insert ] in
        let pos = Auth.grant [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Insert ] in
        Alcotest.(check bool) "neg auth" true
          (Admin_op.is_restrictive (Admin_op.Add_auth (0, neg)));
        Alcotest.(check bool) "pos auth" false
          (Admin_op.is_restrictive (Admin_op.Add_auth (0, pos)));
        Alcotest.(check bool) "del auth" true (Admin_op.is_restrictive (Admin_op.Del_auth 0));
        Alcotest.(check bool) "del user" true (Admin_op.is_restrictive (Admin_op.Del_user 1));
        Alcotest.(check bool) "add user" false (Admin_op.is_restrictive (Admin_op.Add_user 1));
        Alcotest.(check bool) "validate" false
          (Admin_op.is_restrictive (Admin_op.Validate { Request.site = 1; serial = 1 })));
    Alcotest.test_case "versions are totally ordered" `Quick (fun () ->
        let l = Admin_log.create ~admin:adm (all_rights_policy [ adm; s1 ]) in
        let r1 = { Admin_op.admin = adm; version = 1; op = Admin_op.Add_user 5; ctx = Vclock.empty } in
        let r3 = { Admin_op.admin = adm; version = 3; op = Admin_op.Add_user 6; ctx = Vclock.empty } in
        Alcotest.(check bool) "skip rejected" true (Result.is_error (Admin_log.append l r3));
        let l = Result.get_ok (Admin_log.append l r1) in
        Alcotest.(check int) "version" 1 (Admin_log.version l);
        Alcotest.(check bool) "replay rejected" true
          (Result.is_error (Admin_log.append l r1)));
    Alcotest.test_case "policy_at reconstructs every version" `Quick (fun () ->
        let p0 = all_rights_policy [ adm; s1 ] in
        let l = Admin_log.create ~admin:adm p0 in
        let l =
          List.fold_left
            (fun l r -> Result.get_ok (Admin_log.append l r))
            l
            (mk_reqs
               [
                 Admin_op.Add_auth
                   (0, Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Delete ]);
                 Admin_op.Del_auth 0;
               ])
        in
        let granted v =
          Policy.check
            (Option.get (Admin_log.policy_at l v))
            ~user:s1 ~right:Right.Delete ~pos:(Some 0)
        in
        Alcotest.(check bool) "v0" true (granted 0);
        Alcotest.(check bool) "v1" false (granted 1);
        Alcotest.(check bool) "v2" true (granted 2);
        Alcotest.(check bool) "beyond" true (Admin_log.policy_at l 3 = None));
    Alcotest.test_case "first_denial finds the revocation inside the interval" `Quick
      (fun () ->
        (* Fig. 3's core: revoke then re-grant; a request from version 0
           must be denied even though the current policy grants it. *)
        let p0 =
          Policy.make ~users:[ adm; s1; s2 ]
            [ Auth.grant [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Delete ] ]
        in
        let l = Admin_log.create ~admin:adm p0 in
        let l =
          List.fold_left
            (fun l r -> Result.get_ok (Admin_log.append l r))
            l
            (mk_reqs
               [
                 Admin_op.Del_auth 0;
                 Admin_op.Add_auth
                   (0, Auth.grant [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Delete ]);
               ])
        in
        Alcotest.(check (option int))
          "denied at v1" (Some 1)
          (Admin_log.first_denial l ~from_version:0 ~user:s2 ~right:Right.Delete
             ~pos:(Some 0));
        Alcotest.(check (option int))
          "clean from v2" None
          (Admin_log.first_denial l ~from_version:2 ~user:s2 ~right:Right.Delete
             ~pos:(Some 0)));
    Alcotest.test_case "restrictive_since filters" `Quick (fun () ->
        let l = Admin_log.create ~admin:adm (all_rights_policy [ adm; s1 ]) in
        let l =
          List.fold_left
            (fun l r -> Result.get_ok (Admin_log.append l r))
            l
            (mk_reqs [ Admin_op.Add_user 9; Admin_op.Del_user 9; Admin_op.Add_user 10 ])
        in
        Alcotest.(check int) "one restrictive after v0" 1
          (List.length (Admin_log.restrictive_since l 0));
        Alcotest.(check int) "none after v2" 0
          (List.length (Admin_log.restrictive_since l 2)));
  ]

(* ----- Controller scenarios (paper Figs. 2-5) ----- *)

module C = Controller

let doc0 = Tdoc.of_string "abc"

(* generate and return (controller, broadcast message, request id) *)
let ok_gen c op =
  match C.generate c op with
  | c, C.Accepted (C.Coop q as m) -> (c, m, q.Request.id)
  | c, C.Accepted m -> ignore c; ignore m; Alcotest.fail "expected a cooperative message"
  | _, C.Denied r -> Alcotest.failf "generation unexpectedly denied: %s" r

let ok_admin c op =
  match C.admin_update c op with
  | Ok (c, m) -> (c, m)
  | Error e -> Alcotest.failf "admin_update failed: %s" e

(* deliver a message expecting no emitted follow-ups *)
let recv c m =
  let c, out = C.receive c m in
  Alcotest.(check int) "no emitted messages" 0 (List.length out);
  c

(* deliver to the administrator, returning emitted validations *)
let recv_admin c m = C.receive c m

let vis c = Tdoc.visible_string (C.document c)

let check_converged name cs =
  match cs with
  | [] -> ()
  | c0 :: rest ->
    List.iteri
      (fun i c ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: site %d model agrees" name i)
          true
          (Tdoc.equal_model Char.equal (C.document c0) (C.document c));
        Alcotest.(check int) (name ^ ": coop queue empty") 0 (C.pending_coop c);
        Alcotest.(check int) (name ^ ": admin queue empty") 0 (C.pending_admin c);
        Alcotest.(check int) (name ^ ": versions agree") (C.version c0) (C.version c))
      rest

let flag_of c id =
  match Dce_ot.Oplog.find id (C.oplog c) with
  | Some q -> q.Request.flag
  | None -> Alcotest.failf "request not found in log"

(* Fig. 2: a revocation concurrent with an insertion.  Without
   retroactive enforcement sites diverge; with it, everyone converges to
   the revoked state "abc". *)
let fig2 () =
  let policy = all_rights_policy [ adm; s1; s2 ] in
  let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
  let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
  let u2 = C.create ~eq:Char.equal ~site:s2 ~admin:adm ~policy doc0 in
  let u1, q, qid = ok_gen u1 (Op.ins 0 'x') in
  Alcotest.(check string) "s1 optimistic" "xabc" (vis u1);
  let a, r =
    ok_admin a
      (Admin_op.Add_auth
         (0, Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Insert ]))
  in
  let a, out = recv_admin a q in
  Alcotest.(check int) "no validation for an illegal request" 0 (List.length out);
  Alcotest.(check string) "adm ignored it" "abc" (vis a);
  let u2 = recv u2 q in
  Alcotest.(check string) "s2 optimistic" "xabc" (vis u2);
  let u2 = recv u2 r in
  Alcotest.(check string) "s2 after revocation" "abc" (vis u2);
  let u1 = recv u1 r in
  Alcotest.(check string) "s1 after revocation" "abc" (vis u1);
  check_converged "fig2" [ a; u1; u2 ];
  List.iter
    (fun c ->
      Alcotest.(check bool) "insertion invalid everywhere" true
        (flag_of c qid = Request.Invalid))
    [ a; u1; u2 ];
  match C.generate u1 (Op.ins 0 'y') with
  | _, C.Denied _ -> ()
  | _, C.Accepted _ -> Alcotest.fail "s1 should be denied locally"

(* Fig. 3: revocation followed by re-grant; a deletion generated under
   version 0 must be rejected by every site because of the intervening
   revocation, even where the current policy grants it again. *)
let fig3 () =
  let policy =
    Policy.make ~users:[ adm; s1; s2 ]
      [ Auth.grant [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Delete ] ]
  in
  let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
  let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
  let u2 = C.create ~eq:Char.equal ~site:s2 ~admin:adm ~policy doc0 in
  let u2, q, qid = ok_gen u2 (Op.del 0 'a') in
  Alcotest.(check string) "s2 optimistic" "bc" (vis u2);
  let a, r1 = ok_admin a (Admin_op.Del_auth 0) in
  let a, r2 =
    ok_admin a
      (Admin_op.Add_auth
         (0, Auth.grant [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Delete ]))
  in
  let a, out = recv_admin a q in
  Alcotest.(check int) "not validated" 0 (List.length out);
  Alcotest.(check string) "adm rejected" "abc" (vis a);
  let u1 = recv (recv u1 r1) r2 in
  let u1 = recv u1 q in
  Alcotest.(check string) "s1 rejected" "abc" (vis u1);
  let u2 = recv u2 r1 in
  Alcotest.(check string) "s2 restored" "abc" (vis u2);
  let u2 = recv u2 r2 in
  check_converged "fig3" [ a; u1; u2 ];
  List.iter
    (fun c ->
      Alcotest.(check bool) "deletion invalid everywhere" true
        (flag_of c qid = Request.Invalid))
    [ a; u1; u2 ]

(* Fig. 4: a revocation that causally follows a legal insertion must not
   overtake it.  The validation mechanism defers the revocation at sites
   that have not yet integrated the insertion. *)
let fig4 () =
  let policy = all_rights_policy [ adm; s1; s2 ] in
  let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
  let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
  let u2 = C.create ~eq:Char.equal ~site:s2 ~admin:adm ~policy doc0 in
  let u1, q, qid = ok_gen u1 (Op.ins 0 'x') in
  let a, out = recv_admin a q in
  let valid_msg = match out with [ m ] -> m | _ -> Alcotest.fail "expected validation" in
  Alcotest.(check string) "adm accepted" "xabc" (vis a);
  let a, r =
    ok_admin a
      (Admin_op.Add_auth
         (0, Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Insert ]))
  in
  (* s2 receives the revocation FIRST: it must wait (it needs version 1,
     the validation), so the legal insertion is not blocked *)
  let u2 = recv u2 r in
  Alcotest.(check int) "revocation deferred" 1 (C.pending_admin u2);
  let u2 = recv u2 valid_msg in
  Alcotest.(check int) "validation deferred too" 2 (C.pending_admin u2);
  Alcotest.(check string) "nothing applied yet" "abc" (vis u2);
  let u2 = recv u2 q in
  Alcotest.(check string) "insertion survives at s2" "xabc" (vis u2);
  Alcotest.(check int) "queues drained" 0 (C.pending_admin u2);
  Alcotest.(check bool) "valid at s2" true (flag_of u2 qid = Request.Valid);
  let u1 = recv (recv u1 valid_msg) r in
  Alcotest.(check string) "insertion survives at s1" "xabc" (vis u1);
  check_converged "fig4" [ a; u1; u2 ]

(* Fig. 5: the paper's full worked example; all three sites converge to
   "ayc", the illegal deletion of s1 is invalidated everywhere, and all
   other requests are validated. *)
let fig5 () =
  let policy = all_rights_policy [ adm; s1; s2 ] in
  let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
  let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
  let u2 = C.create ~eq:Char.equal ~site:s2 ~admin:adm ~policy doc0 in
  (* three concurrent requests (paper positions are 1-based) *)
  let a, q0, id0 = ok_gen a (Op.ins 1 'y') in
  let u1, q1, id1 = ok_gen u1 (Op.del 1 'b') in
  let u2, q2, id2 = ok_gen u2 (Op.ins 2 'x') in
  (* administrator integrates and validates q2 then q1 *)
  let a, out2 = recv_admin a q2 in
  let v_q2 = match out2 with [ m ] -> m | _ -> Alcotest.fail "expected validation" in
  let a, out1 = recv_admin a q1 in
  let v_q1 = match out1 with [ m ] -> m | _ -> Alcotest.fail "expected validation" in
  Alcotest.(check string) "adm ayxc" "ayxc" (vis a);
  (* s1 integrates q2 then q0 and deletes 'a' *)
  let u1 = recv (recv u1 q2) q0 in
  Alcotest.(check string) "s1 ayxc" "ayxc" (vis u1);
  let u1, q3, id3 = ok_gen u1 (Tdoc.del_visible (C.document u1) 0) in
  Alcotest.(check string) "s1 yxc" "yxc" (vis u1);
  (* s2 integrates q1 and deletes 'x' *)
  let u2 = recv u2 q1 in
  Alcotest.(check string) "s2 axc after q1" "axc" (vis u2);
  let u2, q4, id4 = ok_gen u2 (Tdoc.del_visible (C.document u2) 1) in
  Alcotest.(check string) "s2 ac" "ac" (vis u2);
  (* the administrator revokes s1's deletion right *)
  let a, r =
    ok_admin a
      (Admin_op.Add_auth
         (0, Auth.deny [ Subject.User s1 ] [ Docobj.Whole ] [ Right.Delete ]))
  in
  (* q3 reaches the administrator after the revocation: ignored *)
  let a, out3 = recv_admin a q3 in
  Alcotest.(check int) "q3 not validated" 0 (List.length out3);
  Alcotest.(check string) "adm still ayxc" "ayxc" (vis a);
  (* q4 is legal: validated *)
  let a, out4 = recv_admin a q4 in
  let v_q4 = match out4 with [ m ] -> m | _ -> Alcotest.fail "expected validation" in
  Alcotest.(check string) "adm ayc" "ayc" (vis a);
  (* s1 catches up: validations, revocation (undoes q3), then q4 *)
  let u1 = recv (recv u1 v_q2) v_q1 in
  let u1 = recv u1 r in
  Alcotest.(check string) "s1 restored to ayxc" "ayxc" (vis u1);
  let u1 = recv u1 q4 in
  let u1 = recv u1 v_q4 in
  Alcotest.(check string) "s1 ayc" "ayc" (vis u1);
  (* s2 catches up: q0, validations, revocation, then the dead q3 *)
  let u2 = recv u2 q0 in
  Alcotest.(check string) "s2 ayc" "ayc" (vis u2);
  let u2 = recv (recv u2 v_q2) v_q1 in
  let u2 = recv u2 r in
  let u2 = recv u2 q3 in
  Alcotest.(check string) "s2 still ayc" "ayc" (vis u2);
  let u2 = recv u2 v_q4 in
  check_converged "fig5" [ a; u1; u2 ];
  List.iter
    (fun (c, name) ->
      Alcotest.(check bool) (name ^ ": q3 invalid") true
        (flag_of c id3 = Request.Invalid);
      List.iter
        (fun id ->
          Alcotest.(check bool) (name ^ ": valid") true
            (flag_of c id = Request.Valid))
        [ id0; id1; id2; id4 ])
    [ (a, "adm"); (u1, "s1"); (u2, "s2") ]

(* ----- Controller unit behaviours ----- *)

let controller_unit_tests =
  [
    Alcotest.test_case "local check denies before execution" `Quick (fun () ->
        let policy = Policy.make ~users:[ adm; s1 ] [] in
        let c = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
        (match C.generate c (Op.ins 0 'x') with
         | _, C.Denied _ -> ()
         | _ -> Alcotest.fail "expected denial");
        Alcotest.(check string) "unchanged" "abc" (vis c));
    Alcotest.test_case "users cannot issue administrative requests" `Quick (fun () ->
        let c =
          C.create ~eq:Char.equal ~site:s1 ~admin:adm
            ~policy:(all_rights_policy [ adm; s1 ])
            doc0
        in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (C.admin_update c (Admin_op.Add_user 9))));
    Alcotest.test_case "duplicate messages ignored" `Quick (fun () ->
        let policy = all_rights_policy [ adm; s1 ] in
        let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
        let u = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
        let _, q, _qid = ok_gen u (Op.ins 0 'x') in
        let a, _ = recv_admin a q in
        let a, out = recv_admin a q in
        Alcotest.(check int) "no second validation" 0 (List.length out);
        Alcotest.(check string) "applied once" "xabc" (vis a));
    Alcotest.test_case "admin requests apply in version order" `Quick (fun () ->
        let policy = all_rights_policy [ adm; s1 ] in
        let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
        let u = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
        let a, m1 = ok_admin a (Admin_op.Add_user 7) in
        let _, m2 = ok_admin a (Admin_op.Add_user 8) in
        let u = recv u m2 in
        Alcotest.(check int) "v2 deferred" 1 (C.pending_admin u);
        Alcotest.(check int) "version still 0" 0 (C.version u);
        let u = recv u m1 in
        Alcotest.(check int) "both applied" 2 (C.version u);
        Alcotest.(check int) "queue empty" 0 (C.pending_admin u));
    Alcotest.test_case "tentative then validated" `Quick (fun () ->
        let policy = all_rights_policy [ adm; s1; s2 ] in
        let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
        let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
        let u2 = C.create ~eq:Char.equal ~site:s2 ~admin:adm ~policy doc0 in
        let u1, q, _qid = ok_gen u1 (Op.ins 0 'x') in
        Alcotest.(check int) "tentative at issuer" 1 (List.length (C.tentative u1));
        let u2 = recv u2 q in
        Alcotest.(check int) "tentative at peer" 1 (List.length (C.tentative u2));
        let _, out = recv_admin a q in
        let v = match out with [ m ] -> m | _ -> Alcotest.fail "expected validation" in
        let u1 = recv u1 v and u2 = recv u2 v in
        Alcotest.(check int) "validated at issuer" 0 (List.length (C.tentative u1));
        Alcotest.(check int) "validated at peer" 0 (List.length (C.tentative u2)));
    Alcotest.test_case "restrictive op leaves unconcerned tentatives alone" `Quick
      (fun () ->
        let policy = all_rights_policy [ adm; s1; s2 ] in
        let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
        let u1, _, _ = ok_gen u1 (Op.ins 0 'x') in
        let r =
          {
            Admin_op.admin = adm;
            version = 1;
            op =
              Admin_op.Add_auth
                (0, Auth.deny [ Subject.User s2 ] [ Docobj.Whole ] Right.all);
            ctx = Vclock.empty;
          }
        in
        let u1 = recv u1 (C.Admin r) in
        Alcotest.(check string) "untouched" "xabc" (vis u1);
        Alcotest.(check int) "still tentative" 1 (List.length (C.tentative u1)));
    Alcotest.test_case "del_user revokes everything retroactively" `Quick (fun () ->
        let policy = all_rights_policy [ adm; s1; s2 ] in
        let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
        let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
        let u1, q, _qid = ok_gen u1 (Op.ins 0 'x') in
        let a, r = ok_admin a (Admin_op.Del_user s1) in
        let a, out = recv_admin a q in
        Alcotest.(check int) "not validated" 0 (List.length out);
        Alcotest.(check string) "ignored at adm" "abc" (vis a);
        let u1 = recv u1 r in
        Alcotest.(check string) "undone at s1" "abc" (vis u1);
        check_converged "del_user" [ a; u1 ]);
    Alcotest.test_case "zone-scoped revocation only undoes ops inside the zone" `Quick
      (fun () ->
        let policy = all_rights_policy [ adm; s1; s2 ] in
        let a = C.create ~eq:Char.equal ~site:adm ~admin:adm ~policy doc0 in
        let u1 = C.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy doc0 in
        (* two tentative inserts at positions 0 and 3 *)
        let u1, _qa, ida = ok_gen u1 (Op.ins 0 'x') in
        let u1, _qb, _idb = ok_gen u1 (Tdoc.ins_visible (C.document u1) 4 'z') in
        Alcotest.(check string) "both applied" "xabcz" (vis u1);
        (* revoke insertion in the head zone only *)
        let _, r =
          ok_admin a
            (Admin_op.Add_auth
               (0, Auth.deny [ Subject.User s1 ] [ Docobj.zone 0 1 ] [ Right.Insert ]))
        in
        let u1 = recv u1 r in
        Alcotest.(check string) "only head insert undone" "abcz" (vis u1);
        Alcotest.(check bool) "qa invalid" true
          (flag_of u1 ida = Request.Invalid));
  ]

(* ----- Session (synchronous wrapper) ----- *)

let session_tests =
  [
    Alcotest.test_case "synchronous session end to end" `Quick (fun () ->
        let policy = all_rights_policy [ adm; s1; s2 ] in
        let s = Session.create ~eq:Char.equal ~admin:adm ~users:[ s1; s2 ] ~policy doc0 in
        let s = Result.get_ok (Session.generate s s1 (Op.ins 0 'x')) in
        let s = Result.get_ok (Session.generate s s2 (Op.ins 4 'z')) in
        Alcotest.(check bool) "converged" true (Session.converged s);
        Alcotest.(check string) "content" "xabcz" (Session.visible_string s adm);
        List.iter
          (fun u ->
            Alcotest.(check int) "no tentative" 0
              (List.length (Controller.tentative (Session.controller s u))))
          (Session.sites s));
    Alcotest.test_case "revocation mid-session" `Quick (fun () ->
        let policy = all_rights_policy [ adm; s1; s2 ] in
        let s = Session.create ~eq:Char.equal ~admin:adm ~users:[ s1; s2 ] ~policy doc0 in
        let s =
          Result.get_ok
            (Session.admin_update s
               (Admin_op.Add_auth
                  (0, Auth.deny [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Delete ])))
        in
        (match Session.generate s s2 (Op.del 0 'a') with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "s2 should be denied locally");
        let s = Result.get_ok (Session.generate s s2 (Op.ins 3 '!')) in
        Alcotest.(check string) "insert still fine" "abc!" (Session.visible_string s adm));
  ]

let () =
  Alcotest.run "dce_core"
    [
      ("right", right_tests);
      ("subject", subject_tests);
      ("docobj", docobj_tests);
      ("auth", auth_tests);
      ("policy", policy_tests);
      ("admin_log", admin_log_tests);
      ( "scenarios",
        [
          Alcotest.test_case "Fig.2: concurrent revocation is enforced retroactively"
            `Quick fig2;
          Alcotest.test_case "Fig.3: the administrative log catches stale requests"
            `Quick fig3;
          Alcotest.test_case "Fig.4: validation stops overtaking revocations" `Quick fig4;
          Alcotest.test_case "Fig.5: full worked example converges to ayc" `Quick fig5;
        ] );
      ("controller", controller_unit_tests);
      ("session", session_tests);
    ]
