(* Shared test utilities: generators for tombstone documents, operations
   and multi-site scenarios, plus Alcotest testables. *)

open Dce_ot

let op_testable = Alcotest.testable (Op.pp Fmt.char) (Op.equal Char.equal)

let tdoc_testable = Alcotest.testable (Tdoc.pp Fmt.char) (Tdoc.equal_model Char.equal)

let tdoc_visible_testable =
  Alcotest.testable (Tdoc.pp Fmt.char) (Tdoc.equal_visible Char.equal)

(* ----- QCheck generators ----- *)

let gen_char = QCheck2.Gen.char_range 'a' 'z'

(* write tags must be unique per generated update *)
let stamp_counter = ref 0

let fresh_tag pr =
  incr stamp_counter;
  { Op.stamp = !stamp_counter; site = pr }

(* A tombstone document with a sprinkling of hidden cells, as arises after
   some editing. *)
let gen_tdoc =
  let open QCheck2.Gen in
  list_size (int_range 0 12) (pair gen_char (int_range 0 2))
  >|= fun cells ->
  Tdoc.apply_all
    (Tdoc.of_list (List.map fst cells))
    (List.concat
       (List.mapi
          (fun i (c, hide) -> List.init hide (fun _ -> Op.del i c))
          cells))

(* A random operation valid on the model of [doc], issued with priority
   [pr].  Covers insertions anywhere, deletions of any cell (hidden cells
   included: hide counts stack), updates of any cell, and un-deletions of
   hidden cells. *)
let gen_valid_op ~pr doc =
  let open QCheck2.Gen in
  let n = Tdoc.model_length doc in
  let ins = map2 (fun p e -> Op.ins ~pr p e) (int_range 0 n) gen_char in
  if n = 0 then ins
  else
    let hidden =
      List.filter (fun i -> (Tdoc.cell doc i).Tdoc.hidden > 0) (List.init n Fun.id)
    in
    let cell_op =
      int_range 0 (n - 1) >>= fun p ->
      let elt = (Tdoc.cell doc p).Tdoc.elt in
      frequency
        [ (2, return (Op.del p elt)); (2, map (fun e -> Op.up ~tag:(fresh_tag pr) p elt e) gen_char) ]
    in
    let cases = [ (3, ins); (4, cell_op) ] in
    let cases =
      match hidden with
      | [] -> cases
      | _ ->
        ( 1,
          oneofl hidden >|= fun p -> Op.undel p (Tdoc.cell doc p).Tdoc.elt )
        :: cases
    in
    frequency cases

(* Operations a user can actually issue: Ins/Del/Up (Undel and Unup are
   system-only inverses).  Request histories must use this generator. *)
let gen_user_op ~pr doc =
  let open QCheck2.Gen in
  let n = Tdoc.model_length doc in
  let ins = map2 (fun p e -> Op.ins ~pr p e) (int_range 0 n) gen_char in
  if n = 0 then ins
  else
    let cell_op =
      int_range 0 (n - 1) >>= fun p ->
      let c = Tdoc.cell doc p in
      frequency
        [ (2, return (Op.del p c.Tdoc.elt));
          (2, map (fun e -> Op.up ~tag:(fresh_tag pr) p (Tdoc.content c) e) gen_char) ]
    in
    frequency [ (3, ins); (4, cell_op) ]

(* A non-insertion operation on a non-empty model: what Canonize moves
   insertions across. *)
let gen_valid_non_ins_op ~pr doc =
  let open QCheck2.Gen in
  let n = Tdoc.model_length doc in
  assert (n > 0);
  int_range 0 (n - 1) >>= fun p ->
  let c = Tdoc.cell doc p in
  let base =
    [ (2, return (Op.del p c.Tdoc.elt));
      (2, map (fun e -> Op.up ~tag:(fresh_tag pr) p (Tdoc.content c) e) gen_char) ]
  in
  let cases =
    if c.Tdoc.hidden > 0 then (1, return (Op.undel p c.Tdoc.elt)) :: base else base
  in
  frequency cases

(* Two concurrent [Undel]s of the same cell cannot arise in the protocol
   (each request is cancelled by exactly one administrative cut), so
   generated concurrent sets exclude them. *)
let compatible ops =
  let undel_pos =
    List.filter_map (function Op.Undel { pos; _ } -> Some pos | _ -> None) ops
  in
  List.length undel_pos = List.length (List.sort_uniq compare undel_pos)

(* A document together with concurrent ops on it, from distinct sites. *)
let gen_doc_two_ops =
  let open QCheck2.Gen in
  let rec gen () =
    gen_tdoc >>= fun doc ->
    gen_valid_op ~pr:1 doc >>= fun o1 ->
    gen_valid_op ~pr:2 doc >>= fun o2 ->
    if compatible [ o1; o2 ] then return (doc, o1, o2) else gen ()
  in
  gen ()

let gen_doc_three_ops =
  let open QCheck2.Gen in
  let rec gen () =
    gen_tdoc >>= fun doc ->
    gen_valid_op ~pr:1 doc >>= fun o1 ->
    gen_valid_op ~pr:2 doc >>= fun o2 ->
    gen_valid_op ~pr:3 doc >>= fun o3 ->
    if compatible [ o1; o2; o3 ] then return (doc, o1, o2, o3) else gen ()
  in
  gen ()

let pp_char_op = Op.pp Fmt.char

let show_tdoc d = Format.asprintf "%a" (Tdoc.pp Fmt.char) d

let print_doc_two_ops (doc, o1, o2) =
  Format.asprintf "doc=%s o1=%a o2=%a" (show_tdoc doc) pp_char_op o1 pp_char_op o2

let print_doc_three_ops (doc, o1, o2, o3) =
  Format.asprintf "doc=%s o1=%a o2=%a o3=%a" (show_tdoc doc) pp_char_op o1 pp_char_op o2
    pp_char_op o3

(* Run a qcheck property as an alcotest case. *)
let qtest ?(count = 1000) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)
