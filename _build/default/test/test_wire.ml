(* Tests for the wire format: primitive and domain roundtrips, framing
   integrity, hostile-input fuzzing, and full session save/restore. *)

open Dce_ot
open Dce_core
open Dce_wire
open Helpers

let adm = 0
let s1 = 1
let s2 = 2

(* ----- primitives ----- *)

let roundtrip put get v = Codec.of_string get (Codec.to_string put v)

let codec_tests =
  [
    qtest "varint roundtrip" ~count:1000
      QCheck2.Gen.(oneof [ int_range 0 1000; map abs int ])
      string_of_int
      (fun n -> roundtrip Codec.put_varint Codec.get_varint n = Ok n);
    qtest "zig-zag int roundtrip" ~count:1000 QCheck2.Gen.int string_of_int
      (fun n -> roundtrip Codec.put_int Codec.get_int n = Ok n);
    qtest "string roundtrip" ~count:500 QCheck2.Gen.(string_size (int_range 0 64))
      (Printf.sprintf "%S")
      (fun s -> roundtrip Codec.put_string Codec.get_string s = Ok s);
    qtest "list roundtrip" ~count:500
      QCheck2.Gen.(list_size (int_range 0 20) int)
      (fun l -> Printf.sprintf "%d elems" (List.length l))
      (fun l ->
        roundtrip (Codec.put_list Codec.put_int) (Codec.get_list Codec.get_int) l = Ok l);
    Alcotest.test_case "option roundtrip" `Quick (fun () ->
        Alcotest.(check bool) "some" true
          (roundtrip (Codec.put_option Codec.put_int) (Codec.get_option Codec.get_int)
             (Some 42)
           = Ok (Some 42));
        Alcotest.(check bool) "none" true
          (roundtrip (Codec.put_option Codec.put_int) (Codec.get_option Codec.get_int)
             None
           = Ok None));
    Alcotest.test_case "negative varint rejected at encode" `Quick (fun () ->
        (try
           ignore (Codec.to_string Codec.put_varint (-1));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "crc32 known vector" `Quick (fun () ->
        Alcotest.(check int32) "123456789" 0xCBF43926l (Codec.crc32 "123456789"));
    Alcotest.test_case "truncated input is an error, not an exception" `Quick (fun () ->
        let s = Codec.to_string Codec.put_string "hello world" in
        let t = String.sub s 0 (String.length s - 3) in
        Alcotest.(check bool) "error" true
          (Result.is_error (Codec.of_string Codec.get_string t)));
    Alcotest.test_case "trailing garbage is an error" `Quick (fun () ->
        let s = Codec.to_string Codec.put_varint 7 ^ "junk" in
        Alcotest.(check bool) "error" true
          (Result.is_error (Codec.of_string Codec.get_varint s)));
  ]

let framing_tests =
  [
    Alcotest.test_case "frame / unframe roundtrip" `Quick (fun () ->
        let payload = "the payload \x00\xff bytes" in
        Alcotest.(check bool) "ok" true (Codec.unframe (Codec.frame payload) = Ok payload));
    Alcotest.test_case "bit flip is detected" `Quick (fun () ->
        let framed = Bytes.of_string (Codec.frame "some payload") in
        let i = Bytes.length framed - 3 in
        Bytes.set framed i (Char.chr (Char.code (Bytes.get framed i) lxor 0x20));
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Codec.unframe (Bytes.to_string framed))));
    Alcotest.test_case "bad magic rejected" `Quick (fun () ->
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Codec.unframe "NOPE rest")));
    Alcotest.test_case "length mismatch rejected" `Quick (fun () ->
        let framed = Codec.frame "payload" in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Codec.unframe (framed ^ "x"))));
  ]

(* ----- domain roundtrips ----- *)

let gen_request =
  let open QCheck2.Gen in
  gen_tdoc >>= fun doc ->
  gen_valid_op ~pr:2 doc >>= fun op ->
  pair (int_range 1 5) (int_range 1 20) >>= fun (site, serial) ->
  list_size (int_range 0 4) (pair (int_range 1 5) (int_range 1 9)) >>= fun ctx ->
  pair (int_range 0 9) (oneofl [ Request.Tentative; Request.Valid; Request.Invalid ])
  >|= fun (v, flag) ->
  Request.make ~site ~serial ~op ~ctx:(Vclock.of_list ctx) ~policy_version:v ~flag ()

let request_equal (a : char Request.t) (b : char Request.t) =
  Request.id_equal a.Request.id b.Request.id
  && a.Request.dep = b.Request.dep
  && Op.equal Char.equal a.Request.op b.Request.op
  && Op.equal Char.equal a.Request.gen_op b.Request.gen_op
  && Vclock.equal a.Request.ctx b.Request.ctx
  && a.Request.policy_version = b.Request.policy_version
  && a.Request.flag = b.Request.flag

let domain_tests =
  [
    qtest "operation roundtrip" ~count:1000
      QCheck2.Gen.(gen_tdoc >>= fun d -> gen_valid_op ~pr:3 d)
      (Format.asprintf "%a" pp_char_op)
      (fun op ->
        match
          roundtrip (Proto.put_op Proto.char_codec) (Proto.get_op Proto.char_codec) op
        with
        | Ok op' -> Op.equal Char.equal op op'
        | Error _ -> false);
    qtest "request roundtrip (framed message)" ~count:500 gen_request
      (fun q -> Format.asprintf "%a" (Request.pp Fmt.char) q)
      (fun q ->
        match Proto.Char_proto.decode_message (Proto.Char_proto.encode_message (Controller.Coop q)) with
        | Ok (Controller.Coop q') -> request_equal q q'
        | _ -> false);
    Alcotest.test_case "policy roundtrip preserves decisions" `Quick (fun () ->
        let p =
          Policy.make ~users:[ 0; 1; 2 ]
            ~groups:[ ("editors", [ 1 ]) ]
            ~objects:[ ("intro", Docobj.zone 0 4) ]
            [
              Auth.deny [ Subject.Group "editors" ] [ Docobj.Named "intro" ] [ Right.Update ];
              Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all;
            ]
        in
        match roundtrip Proto.put_policy Proto.get_policy p with
        | Error e -> Alcotest.fail e
        | Ok p' ->
          List.iter
            (fun u ->
              List.iter
                (fun r ->
                  List.iter
                    (fun pos ->
                      Alcotest.(check bool) "same decision"
                        (Policy.check p ~user:u ~right:r ~pos)
                        (Policy.check p' ~user:u ~right:r ~pos))
                    [ None; Some 0; Some 2; Some 7 ])
                Right.all)
            [ 0; 1; 2; 9 ]);
    Alcotest.test_case "admin request roundtrip (all constructors)" `Quick (fun () ->
        List.iteri
          (fun i op ->
            let r =
              { Admin_op.admin = 0; version = i + 1; op; ctx = Vclock.of_list [ (1, i) ] }
            in
            match
              roundtrip Proto.put_admin_request Proto.get_admin_request r
            with
            | Ok r' ->
              Alcotest.(check string) "same printed form"
                (Format.asprintf "%a" Admin_op.pp_request r)
                (Format.asprintf "%a" Admin_op.pp_request r')
            | Error e -> Alcotest.fail e)
          [
            Admin_op.Add_user 4;
            Admin_op.Del_user 4;
            Admin_op.Add_to_group ("g", 2);
            Admin_op.Del_from_group ("g", 2);
            Admin_op.Add_obj ("o", Docobj.zone 1 3);
            Admin_op.Del_obj "o";
            Admin_op.Add_auth (0, Auth.grant [ Subject.User 1 ] [ Docobj.Whole ] [ Right.Insert ]);
            Admin_op.Del_auth 0;
            Admin_op.Validate { Request.site = 1; serial = 7 };
            Admin_op.Transfer_admin 2;
          ]);
  ]

(* ----- fuzzing: hostile bytes never raise ----- *)

let fuzz_tests =
  [
    qtest "decode_message never raises on random bytes" ~count:2000
      QCheck2.Gen.(string_size (int_range 0 200))
      (fun s -> Printf.sprintf "%d bytes" (String.length s))
      (fun s ->
        match Proto.Char_proto.decode_message s with Ok _ | Error _ -> true);
    qtest "decode_state never raises on random bytes" ~count:2000
      QCheck2.Gen.(string_size (int_range 0 300))
      (fun s -> Printf.sprintf "%d bytes" (String.length s))
      (fun s -> match Proto.Char_proto.decode_state s with Ok _ | Error _ -> true);
    qtest "decode_message never raises on corrupted valid frames" ~count:1000
      QCheck2.Gen.(
        gen_request >>= fun q ->
        pair (int_range 0 10_000) (int_range 0 255) >|= fun (at, with_) ->
        let s = Bytes.of_string (Proto.Char_proto.encode_message (Controller.Coop q)) in
        let at = at mod Bytes.length s in
        Bytes.set s at (Char.chr with_);
        Bytes.to_string s)
      (fun s -> Printf.sprintf "%d bytes" (String.length s))
      (fun s ->
        match Proto.Char_proto.decode_message s with Ok _ | Error _ -> true);
  ]

(* ----- session save / restore ----- *)

let all_rights users =
  Policy.make ~users [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]

let persistence_tests =
  [
    Alcotest.test_case "a mid-session controller survives the wire" `Quick (fun () ->
        (* run a small session with tentative requests, queues, policy
           changes; then dump/encode/decode/load and compare *)
        let policy = all_rights [ adm; s1; s2 ] in
        let a = Controller.create ~eq:Char.equal ~site:adm ~admin:adm ~policy (Tdoc.of_string "abc") in
        let u1 = Controller.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy (Tdoc.of_string "abc") in
        let u1, m1 =
          match Controller.generate u1 (Op.ins 0 'x') with
          | c, Controller.Accepted m -> (c, m)
          | _ -> Alcotest.fail "denied"
        in
        let a, _ = Controller.receive a m1 in
        let a, m2 =
          match Controller.admin_update a (Admin_op.Add_user 9) with
          | Ok (a, m) -> (a, m)
          | Error e -> Alcotest.fail e
        in
        let u1, _ = Controller.receive u1 m2 in
        (* round-trip u1 *)
        let encoded = Proto.Char_proto.encode_state (Controller.dump u1) in
        (match Proto.Char_proto.decode_state encoded with
         | Error e -> Alcotest.fail e
         | Ok state -> (
             match Controller.load ~eq:Char.equal state with
             | Error e -> Alcotest.fail e
             | Ok u1' ->
               Alcotest.(check string) "document"
                 (Tdoc.visible_string (Controller.document u1))
                 (Tdoc.visible_string (Controller.document u1'));
               Alcotest.(check bool) "model equal" true
                 (Tdoc.equal_model Char.equal (Controller.document u1)
                    (Controller.document u1'));
               Alcotest.(check int) "version" (Controller.version u1)
                 (Controller.version u1');
               Alcotest.(check int) "tentative preserved"
                 (List.length (Controller.tentative u1))
                 (List.length (Controller.tentative u1'));
               (* the restored site keeps working: next edit converges *)
               let u1', m3 =
                 match
                   Controller.generate u1'
                     (Tdoc.ins_visible (Controller.document u1') 0 'y')
                 with
                 | c, Controller.Accepted m -> (c, m)
                 | _ -> Alcotest.fail "denied after restore"
               in
               let a, _ = Controller.receive a m3 in
               Alcotest.(check string) "peers still converge"
                 (Tdoc.visible_string (Controller.document a))
                 (Tdoc.visible_string (Controller.document u1')))));
    Alcotest.test_case "tampered administrative history is rejected on load" `Quick
      (fun () ->
        let policy = all_rights [ adm; s1 ] in
        let a = Controller.create ~eq:Char.equal ~site:adm ~admin:adm ~policy (Tdoc.of_string "abc") in
        let a, _ =
          match Controller.admin_update a (Admin_op.Add_user 9) with
          | Ok x -> x
          | Error e -> Alcotest.fail e
        in
        let state = Controller.dump a in
        (* forge: replay the same version twice *)
        let forged =
          {
            state with
            Controller.st_admin_requests =
              state.Controller.st_admin_requests @ state.Controller.st_admin_requests;
          }
        in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Controller.load ~eq:Char.equal forged)));
    Alcotest.test_case "save / restore through a file" `Quick (fun () ->
        let policy = all_rights [ adm; s1 ] in
        let c = Controller.create ~eq:Char.equal ~site:s1 ~admin:adm ~policy (Tdoc.of_string "hello") in
        let c =
          match Controller.generate c (Op.ins 5 '!') with
          | c, Controller.Accepted _ -> c
          | _ -> Alcotest.fail "denied"
        in
        let path = Filename.temp_file "dce_state" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Proto.Char_proto.save path c;
            match Proto.Char_proto.restore path with
            | Error e -> Alcotest.fail e
            | Ok c' ->
              Alcotest.(check string) "restored" "hello!"
                (Tdoc.visible_string (Controller.document c'))));
  ]

(* ----- a whole session through the wire ----- *)

let channel_tests =
  [
    Alcotest.test_case "every message of a session survives encode/decode" `Quick
      (fun () ->
        (* run the Fig.5-style exchange, but every broadcast literally
           crosses the byte channel *)
        let policy = all_rights [ adm; s1; s2 ] in
        let mk site =
          Controller.create ~eq:Char.equal ~site ~admin:adm ~policy
            (Tdoc.of_string "abc")
        in
        let sites = ref [ (adm, mk adm); (s1, mk s1); (s2, mk s2) ] in
        let set u c = sites := List.map (fun (v, c') -> if v = u then (v, c) else (v, c')) !sites in
        let rec broadcast src m =
          let bytes = Proto.Char_proto.encode_message m in
          List.iter
            (fun (u, _) ->
              if u <> src then begin
                match Proto.Char_proto.decode_message bytes with
                | Error e -> Alcotest.fail e
                | Ok m' ->
                  let c, out = Controller.receive (List.assoc u !sites) m' in
                  set u c;
                  List.iter (broadcast u) out
              end)
            !sites
        in
        let gen u op =
          match Controller.generate (List.assoc u !sites) op with
          | c, Controller.Accepted m ->
            set u c;
            broadcast u m
          | _, Controller.Denied r -> Alcotest.fail r
        in
        gen s1 (Op.ins 0 'x');
        gen s2 (Op.ins 4 'z');
        (match
           Controller.admin_update (List.assoc adm !sites)
             (Admin_op.Add_auth
                (0, Auth.deny [ Subject.User s2 ] [ Docobj.Whole ] [ Right.Insert ]))
         with
         | Ok (c, m) ->
           set adm c;
           broadcast adm m
         | Error e -> Alcotest.fail e);
        let docs = List.map (fun (_, c) -> Controller.document c) !sites in
        Alcotest.(check string) "content" "xabcz"
          (Tdoc.visible_string (List.hd docs));
        Alcotest.(check bool) "all equal" true
          (List.for_all (Tdoc.equal_model Char.equal (List.hd docs)) docs));
  ]

let () =
  Alcotest.run "dce_wire"
    [
      ("codec", codec_tests);
      ("framing", framing_tests);
      ("domain", domain_tests);
      ("fuzz", fuzz_tests);
      ("persistence", persistence_tests);
      ("channel", channel_tests);
    ]
