(** The concurrency-control algorithm (paper §5, Algorithms 1–4).

    A controller is one site of a secured collaborative editing session:
    it owns the two replicated objects — the shared document and the
    policy object — plus the cooperative log [H], the administrative log
    [L], and the two receive queues [F] (cooperative) and [Q]
    (administrative).  One distinguished site is the administrator.

    {2 Local generation (Algorithm 2)}

    {!generate} checks the operation against the {e local} policy copy —
    no round trip, the point of the whole model — executes it, and
    returns the request to broadcast.  The administrator's own requests
    are born [Valid]; users' are [Tentative] until the administrator
    validates them.

    {2 Reception (Algorithms 3 and 4)}

    {!receive} accepts any message in any order and applies everything
    that is ready, to a fixed point:

    - an administrative request applies only at [version + 1]
      (administrative requests are totally ordered), and a [Validate]
      additionally waits until the request it validates is in [H] — the
      paper's fix for the overtaking-revocation hole (Fig. 4);
    - a cooperative request applies when causally ready and its
      generation version is reached; it is then checked against the
      administrative interval it missed ({!Admin_log.first_denial}) — the
      paper's fix for the stale-context hole (Fig. 3).  Accepted requests
      are transformed and executed (ComputeFF); denied ones are recorded
      with no visible effect.  When this site is the administrator,
      accepted remote requests are validated and a [Validate] request is
      emitted (returned in the message list — broadcast them!).

    A restrictive administrative request retroactively undoes the
    tentative requests that the new policy no longer grants — the paper's
    optimistic-security enforcement (Fig. 2).  Retroactive decisions
    (remote checks and undo selection) evaluate the request's
    {e generation form} [gen_op], which is identical at every site, so
    all sites decide identically.

    The administrator mutates the policy with {!admin_update}.

    Malformed traffic — a duplicate, an administrative request that does
    not apply, or one from a site that does not hold the administrator
    role — is silently dropped; Byzantine behaviour beyond that is out of
    scope (the paper assumes an authenticated, reliable network). *)

open Dce_ot

type 'e message =
  | Coop of 'e Request.t
  | Admin of Admin_op.request

type 'e t

(* {2 Construction} *)

type features = {
  retroactive_undo : bool;
      (** restrictive administrative requests undo concerned tentative
          requests (the fix for Fig. 2) *)
  interval_check : bool;
      (** remote requests are checked against the administrative interval
          they missed, not just the current policy (the fix for Fig. 3) *)
  validation : bool;
      (** the administrator validates accepted remote requests, totally
          ordering revocations after them (the fix for Fig. 4) *)
}

val secure : features
(** All three mechanisms on: the paper's algorithm. *)

val naive : features
(** All three mechanisms off: the strawman whose security holes §4
    demonstrates.  Only useful to reproduce the holes — see
    [Dce_baseline.Naive]. *)

val create :
  ?eq:('e -> 'e -> bool) ->
  ?features:features ->
  ?trace:Dce_obs.Trace.sink ->
  ?metrics:Dce_obs.Metrics.t ->
  site:Subject.user ->
  admin:Subject.user ->
  policy:Policy.t ->
  'e Tdoc.t ->
  'e t
(** All sites of a session must be created with the same initial policy
    and document ([D0]), the same [admin], the same [features] (default
    {!secure}), and pairwise distinct [site] identifiers.

    [trace] (default [Dce_obs.Trace.null]) receives a structured
    telemetry event at every security decision point — generation,
    local checks, interval re-checks, retroactive undo, validation,
    invalidation, integration, administrative application — each
    stamped with this site's id, vector clock and policy version.  With
    the null sink the instrumentation costs one branch per decision.

    [metrics] attaches live meters alongside the trace sink: counters
    [controller.generated] / [delivered] / [validated] / [invalidated] /
    [denied_local] / [admin_applied] / [undone] / [dups] at the
    corresponding decision points, and level gauges
    [controller.pending_coop] / [pending_admin] / [oplog_live] /
    [doc_visible] / [policy_version] refreshed after each transition.
    Omitted, every update is a dead branch, like the null sink. *)

val with_metrics : Dce_obs.Metrics.t -> 'e t -> 'e t
(** Re-attach live meters (see {!create}) to a controller that came out
    of {!load} or a state-transfer constructor — meters, like trace
    sinks, are process-local and not part of persisted state.  The
    level gauges are refreshed immediately. *)

val fork : site:Subject.user -> 'e t -> 'e t
(** Late join (the paper's dynamic-groups requirement): bootstrap a new
    site from a state transfer of an existing one.  The new controller
    shares the donor's document, logs, policy and clock, and issues its
    own requests under the fresh [site] identifier (which must be new to
    the group; register it with [Add_user] for its operations to be
    granted).  The donor's receive queues travel along, so any snapshot
    works, even mid-stream. *)

val rejoin : site:Subject.user -> 'e t -> 'e t
(** {!fork}, except [site]'s request numbering resumes from what the
    donor has already integrated from [site] instead of restarting at
    zero.  This is the reconnect path: a site that crashed or lost its
    link re-bootstraps from a relay snapshot and keeps issuing fresh
    serials, so peers do not drop its new requests as duplicates.
    Tentative requests the site generated but never got onto the wire
    are not in the snapshot and are lost — the price of rejoining from
    someone else's state. *)

(* {2 Observation} *)

val site : 'e t -> Subject.user

val admin : 'e t -> Subject.user
(** Current holder of the administrator role (changes on
    [Transfer_admin]). *)

val is_admin : 'e t -> bool
val document : 'e t -> 'e Tdoc.t
val visible : 'e t -> 'e list
val policy : 'e t -> Policy.t
val version : 'e t -> int
val oplog : 'e t -> 'e Oplog.t
val admin_log : 'e t -> Admin_log.t
val clock : 'e t -> Vclock.t

val pending_coop : 'e t -> int
val pending_admin : 'e t -> int

val tentative : 'e t -> 'e Request.t list
(** Requests executed locally but not yet validated by the administrator
    (always empty at the administrator's site). *)

(* {2 The algorithm} *)

type 'e outcome = Accepted of 'e message | Denied of string

val generate : 'e t -> 'e Op.t -> 'e t * 'e outcome
(** Algorithm 2.  On [Accepted m], broadcast [m] to every other site. *)

val generate_edit : 'e t -> 'e Op.t list -> ('e t * 'e message list, string) result
(** Issue a composite edit (a [Dce_ot.Edit.compile] result: each
    operation built against the state its predecessors produce) as a
    causally-chained run of requests.  Atomic with respect to the local
    check: every operation's right is verified against the local policy
    copy before any is executed, so a composite is accepted or denied as
    a whole.  Broadcast all returned messages, in order. *)

val readable : 'e t -> 'e option list
(** The visible document as this site's user may {e read} it under the
    local policy copy: [None] redacts elements whose position falls
    under a negative read authorization.  Read enforcement is local and
    {e not} retroactive — the paper explicitly leaves optimistic read
    control to future work (§7); this is the pragmatic rendering-time
    filter a front end needs meanwhile. *)

val admin_update : 'e t -> Admin_op.t -> ('e t * 'e message, string) result
(** Algorithm 4, generation side.  Fails on non-administrator sites and
    on operations that do not apply to the current policy.  On success,
    broadcast the message. *)

val receive : 'e t -> 'e message -> 'e t * 'e message list
(** Algorithms 3 and 4, reception side.  The returned messages (the
    administrator's validations) must be broadcast. *)

(* {2 Persistence}

   A transparent dump of the full site state, for serialization
   ([Dce_wire]) and session save/restore.  {!load} revalidates what can
   be revalidated: the administrative log is replayed from the initial
   policy, so a tampered policy history is rejected. *)

type 'e state = {
  st_site : Subject.user;
  st_features : features;
  st_doc : 'e Dce_ot.Tdoc.cell list;
  st_oplog : 'e Dce_ot.Oplog.entry list;
  st_compacted : Dce_ot.Vclock.t;
  st_clock : Dce_ot.Vclock.t;
  st_serial : int;
  st_initial_policy : Policy.t;
  st_initial_admin : Subject.user;
  st_admin_requests : Admin_op.request list;
  st_coop_queue : 'e Dce_ot.Request.t list;
  st_admin_queue : Admin_op.request list;
  st_peer_integrated : (Subject.user * (Dce_ot.Vclock.t * int)) list;
      (** stability bookkeeping (see {!stable_frontier}) — preserved so a
          reloaded site keeps its compaction progress *)
  st_peer_admin_hint : (Subject.user * (Dce_ot.Vclock.t * int)) list;
  st_peer_beacon : (Subject.user * (Dce_ot.Vclock.t * int)) list;
}

val dump : 'e t -> 'e state

val load :
  ?eq:('e -> 'e -> bool) ->
  ?trace:Dce_obs.Trace.sink ->
  ?metrics:Dce_obs.Metrics.t ->
  'e state ->
  ('e t, string) result

val catch_up : 'e t -> 'e t -> 'e t * 'e message list
(** [catch_up t donor]: bring a recovered site up to date from a peer's
    snapshot {e without} abandoning local state — the durable
    alternative to {!rejoin}.  The donor's history (administrative log,
    cooperative log in broadcast form, receive queues) is replayed
    through this site's own {!receive}, so duplicates drop out and every
    security decision is re-derived locally rather than trusted.  The
    returned messages must be broadcast: they carry this site's requests
    the donor had not yet seen — exactly the traffic {!rejoin}
    documents as lost — plus, when this site holds the administrator
    role, validations for the backlog that accumulated while it was
    down.  Symmetric: if the {e donor} is the stale side, the replay
    no-ops and the returned messages heal the donor instead.

    If the donor's log is compacted {e past} this site's clock, a replay
    would be silently incomplete (the donor dropped entries we lack for
    good), so [catch_up] detects it and falls back to adopting the
    donor's state wholesale ({!rejoin} semantics) — except that, unlike
    a bare [rejoin], this site's own unacknowledged requests are
    re-fed and re-broadcast, so nothing of ours the group might miss is
    lost.  Messages parked in the local receive queues are other sites'
    traffic and are redelivered by their origins. *)

(* {2 Log garbage collection (paper §7's future work)}

   Local logs grow for the whole session; the paper lists their garbage
   collection as an open problem.  We implement the classic stable-prefix
   answer.  Each controller passively tracks, from the traffic it
   receives, a lower bound on what every other group member has already
   integrated (their requests' causal contexts) and on their policy
   versions.  The pointwise minimum over the group is the {e stability
   frontier}: everything below it is in the causal past of any message
   that can still arrive, so the log's stable prefix can be dropped
   without affecting any future transformation.  See
   [Dce_ot.Oplog.compact] for the exact rule. *)

val stable_frontier : 'e t -> Dce_ot.Vclock.t
(** Requests every registered group member is known to have integrated.
    Conservative: a peer that has neither sent traffic nor a
    {!beacon} pins the frontier down. *)

val stable_version : 'e t -> int
(** A policy version every registered group member is known to have
    reached. *)

val beacon : 'e t -> Dce_ot.Vclock.t * int
(** This site's stability advertisement: its own delivery clock and
    policy version.  Periodically broadcast it (even — especially — when
    idle) so peers' frontiers advance past this site; see
    {!receive_beacon}. *)

val receive_beacon :
  'e t -> peer:Subject.user -> clock:Dce_ot.Vclock.t -> version:int -> 'e t
(** Absorb a peer's {!beacon}.  Monotone (clocks merge, versions max), so
    stale, duplicated or reordered beacons are no-ops, and idempotent.
    Like an administrative hint, a beacon bounds the peer's future
    requests only once every edit of the peer's own that it counts has
    been integrated here — until then one of those edits may still be in
    flight with an older context.  A silent peer's beacon counts none of
    its own edits, so it always applies: this is what unpins the frontier
    from peers that never write. *)

val window_len : 'e t -> int
(** Live entries in the cooperative log — the concurrency window |H| that
    bounds transformation cost.  Exposed as gauge
    [controller.window_len]. *)

val compacted_upto : 'e t -> Dce_ot.Vclock.t
(** The compaction cut: per-site serial floor below which log entries
    have been dropped.  Exposed (as its event count sum) as gauge
    [controller.compacted_upto]. *)

val stable_lag : 'e t -> int
(** Events integrated here but not yet known stable — the distance
    between this site's clock and its stability frontier (sums of event
    counts).  What compaction cannot yet reclaim.  Exposed as gauge
    [controller.stable_lag], refreshed on {!compact}. *)

val compact : ?limit:Dce_ot.Vclock.t -> 'e t -> 'e t
(** Drop the stable prefix of the cooperative log.  Safe to call at any
    time; typically after {!receive}.  The document (including
    tombstones) is untouched.  [limit] clamps the cut (pointwise meet):
    journaled sessions pass their last durable snapshot's clock so the
    compaction cut never outruns the durability cut — crash replay must
    find every entry it needs either in the snapshot or the WAL. *)

(* {2 Delta catch-up}

   The wire-level complement to compaction: a joiner that presents a
   clock at or above the donor's compaction cut gets only the log suffix
   and policy delta it lacks, instead of an O(n x |H|) full-state
   snapshot. *)

type 'e delta = {
  dl_clock : Dce_ot.Vclock.t;  (** donor's delivery clock at emission *)
  dl_version : int;  (** donor's policy version *)
  dl_compacted : Dce_ot.Vclock.t;  (** donor's compaction cut *)
  dl_admin : Admin_op.request list;
      (** administrative suffix, version ascending *)
  dl_coop : 'e Dce_ot.Request.t list;
      (** cooperative suffix in broadcast form, donor log order *)
  dl_coop_queue : 'e Dce_ot.Request.t list;  (** donor's parked traffic *)
  dl_admin_queue : Admin_op.request list;
}

val delta_since :
  'e t -> clock:Dce_ot.Vclock.t -> version:int -> 'e delta option
(** [delta_since donor ~clock ~version]: the suffix a joiner that has
    integrated exactly [clock] / [version] still lacks.  [None] when the
    donor's log is compacted past [clock] — the dropped entries cannot be
    resent, so the joiner needs a full snapshot ({!catch_up} on an
    encoded state). *)

val apply_delta : 'e t -> 'e delta -> ('e t * 'e message list, string) result
(** Replay a donor's {!delta_since} result through this site's own
    {!receive} (same re-derivation discipline as {!catch_up}) and return
    the messages to broadcast (unacknowledged local requests, admin
    backlog validations).  [Error] if the delta's cut is above this
    site's clock — the receiver-side guard against a donor that compacted
    concurrently with the handshake; fall back to a full snapshot. *)
