type t = Read | Insert | Delete | Update

let all = [ Read; Insert; Delete; Update ]

let of_op = function
  | Dce_ot.Op.Ins _ -> Some Insert
  | Dce_ot.Op.Del _ -> Some Delete
  | Dce_ot.Op.Up _ -> Some Update
  | Dce_ot.Op.Undel _ | Dce_ot.Op.Unup _ | Dce_ot.Op.Nop -> None

let equal = ( = )
let compare = compare

let count = 4

let index = function Read -> 0 | Insert -> 1 | Delete -> 2 | Update -> 3

let of_index = function
  | 0 -> Read
  | 1 -> Insert
  | 2 -> Delete
  | 3 -> Update
  | i -> invalid_arg (Printf.sprintf "Right.of_index: %d" i)

let to_string = function
  | Read -> "rR"
  | Insert -> "iR"
  | Delete -> "dR"
  | Update -> "uR"

let of_string = function
  | "rR" -> Some Read
  | "iR" -> Some Insert
  | "dR" -> Some Delete
  | "uR" -> Some Update
  | _ -> None

let pp ppf r = Format.pp_print_string ppf (to_string r)
