open Dce_ot

type 'e message =
  | Coop of 'e Request.t
  | Admin of Admin_op.request

type features = {
  retroactive_undo : bool;
  interval_check : bool;
  validation : bool;
}

let secure = { retroactive_undo = true; interval_check = true; validation = true }

let naive = { retroactive_undo = false; interval_check = false; validation = false }

module User_map = Map.Make (Int)

(* Optional live meters: counters at every security decision point and
   level gauges refreshed after each state transition.  When no registry
   is supplied, handles point into a shared disabled registry and every
   update is a single dead branch — same always-compiled-in contract as
   the trace sink. *)
module M = Dce_obs.Metrics

type meters = {
  reg : M.t;
  m_generated : M.counter;
  m_denied_local : M.counter;
  m_delivered : M.counter;
  m_invalidated : M.counter;
  m_validated : M.counter;
  m_admin_applied : M.counter;
  m_undone : M.counter;
  m_dups : M.counter;
  g_pending_coop : M.gauge;
  g_pending_admin : M.gauge;
  g_oplog : M.gauge;
  g_doc : M.gauge;
  g_version : M.gauge;
  g_window : M.gauge;
  g_compacted : M.gauge;
  g_stable_lag : M.gauge;
}

let disabled_registry = lazy (M.create ~enabled:false ())

let meters_of metrics =
  let reg =
    match metrics with Some m -> m | None -> Lazy.force disabled_registry
  in
  {
    reg;
    m_generated = M.counter reg "controller.generated";
    m_denied_local = M.counter reg "controller.denied_local";
    m_delivered = M.counter reg "controller.delivered";
    m_invalidated = M.counter reg "controller.invalidated";
    m_validated = M.counter reg "controller.validated";
    m_admin_applied = M.counter reg "controller.admin_applied";
    m_undone = M.counter reg "controller.undone";
    m_dups = M.counter reg "controller.dups";
    g_pending_coop = M.gauge reg "controller.pending_coop";
    g_pending_admin = M.gauge reg "controller.pending_admin";
    g_oplog = M.gauge reg "controller.oplog_live";
    g_doc = M.gauge reg "controller.doc_visible";
    g_version = M.gauge reg "controller.policy_version";
    g_window = M.gauge reg "controller.window_len";
    g_compacted = M.gauge reg "controller.compacted_upto";
    g_stable_lag = M.gauge reg "controller.stable_lag";
  }

type 'e t = {
  site : Subject.user;
  features : features;
  eq : 'e -> 'e -> bool;
  trace : Dce_obs.Trace.sink;
  doc : 'e Tdoc.t;
  oplog : 'e Oplog.t;
  clock : Vclock.t;
  serial : int;
  admin_log : Admin_log.t; (* carries the policy, its version and L *)
  coop_queue : 'e Request.t list; (* F *)
  admin_queue : Admin_op.request list; (* Q *)
  n_coop_queue : int; (* cached List.length coop_queue *)
  n_admin_queue : int; (* cached List.length admin_queue *)
  (* stability bookkeeping for log compaction: per peer, the clock and
     policy version of its last request integrated HERE (sound: per-site
     serials integrate in order, so nothing older can arrive fresh), and
     the issue clock/version of its latest administrative request (a
     stronger bound, usable once the issuer's own edits are caught up) *)
  peer_integrated : (Vclock.t * int) User_map.t;
  peer_admin_hint : (Vclock.t * int) User_map.t;
  (* explicit stability beacons: per peer, the latest (delivery clock,
     policy version) it advertised over the wire.  Beacons let silent
     peers advance the frontier; they merge monotonically so stale or
     reordered beacons are no-ops. *)
  peer_beacon : (Vclock.t * int) User_map.t;
  (* true while [catch_up] replays a donor's history: the administrator
     must not mint fresh validations for requests whose settled fate is
     already recorded in the history being replayed *)
  replay : bool;
  m : meters;
}

let create ?(eq = ( = )) ?(features = secure) ?(trace = Dce_obs.Trace.null)
    ?metrics ~site ~admin ~policy doc =
  {
    site;
    features;
    eq;
    trace;
    doc;
    oplog = Oplog.empty;
    clock = Vclock.empty;
    serial = 0;
    admin_log = Admin_log.create ~admin policy;
    coop_queue = [];
    admin_queue = [];
    n_coop_queue = 0;
    n_admin_queue = 0;
    peer_integrated = User_map.empty;
    peer_admin_hint = User_map.empty;
    peer_beacon = User_map.empty;
    replay = false;
    m = meters_of metrics;
  }

let fork ~site t =
  {
    t with
    site;
    serial = 0;
    peer_integrated = User_map.empty;
    peer_admin_hint = User_map.empty;
    peer_beacon = User_map.empty;
  }

let rejoin ~site t = { (fork ~site t) with serial = Vclock.get t.clock site }

let site t = t.site
let admin t = Admin_log.current_admin t.admin_log
let is_admin t = t.site = admin t
let document t = t.doc
let visible t = Tdoc.visible_list t.doc
let policy t = Admin_log.current t.admin_log
let version t = Admin_log.version t.admin_log
let oplog t = t.oplog
let admin_log t = t.admin_log
let clock t = t.clock
let pending_coop t = t.n_coop_queue
let pending_admin t = t.n_admin_queue
let tentative t = Oplog.tentative_requests t.oplog

(* refresh the level gauges; returns [t] so call sites can tail it *)
let note_levels t =
  M.set t.m.g_pending_coop t.n_coop_queue;
  M.set t.m.g_pending_admin t.n_admin_queue;
  M.set t.m.g_oplog (Oplog.live_length t.oplog);
  M.set t.m.g_doc (Tdoc.visible_length t.doc);
  M.set t.m.g_version (version t);
  if M.enabled t.m.reg then begin
    M.set t.m.g_window (Oplog.live_length t.oplog);
    M.set t.m.g_compacted (Vclock.sum (Oplog.compacted_upto t.oplog))
  end;
  t

(* Meters, like trace sinks, are process-local and not part of persisted
   state: re-attach them after a [load]/restore. *)
let with_metrics metrics t = note_levels { t with m = meters_of (Some metrics) }

(* Telemetry: every security decision point emits a structured event
   stamped with this site's id, vector clock and policy version.  [ev]
   costs one load and branch when the sink is null; call sites whose
   payload is expensive to build (formatted strings) must guard on
   [Trace.enabled] themselves. *)
let ev t kind =
  if Dce_obs.Trace.enabled t.trace then
    Dce_obs.Trace.emit t.trace ~site:t.site ~clock:t.clock ~version:(version t) kind

type 'e outcome = Accepted of 'e message | Denied of string

(* ----- stability tracking (for log compaction, paper §7) -----

   A dropped entry must be in the causal past of every request this site
   may still integrate for the first time.  For a peer [w], first-time
   arrivals have serial greater than the last [w]-request integrated
   here (causal readiness forces per-site order; older copies are
   duplicates), so their context dominates that request's clock — the
   always-sound bound.  An administrative request from [w] carries [w]'s
   issue clock, a stronger bound; it applies to [w]'s future cooperative
   requests only once every [w]-edit counted in it has been integrated
   here (otherwise one of those very edits may still be in flight). *)

let note_integrated t (q : 'e Request.t) =
  let peer = q.Request.id.Request.site in
  let bound = (Request.clock_after q, q.Request.policy_version) in
  { t with peer_integrated = User_map.add peer bound t.peer_integrated }

let note_admin_hint t (r : Admin_op.request) =
  let bound = (r.Admin_op.ctx, r.Admin_op.version) in
  { t with peer_admin_hint = User_map.add r.Admin_op.admin bound t.peer_admin_hint }

(* A wire beacon from [w] advertises [w]'s own delivery clock, so like an
   admin hint it bounds [w]'s future requests only once every [w]-edit it
   counts has been integrated here; until then one of those edits may
   still be in flight with an older context.  A silent peer's beacon has
   [get clock w = 0], so the gate always passes and the frontier advances
   past peers that never edit — the whole point of the protocol. *)
let apply_hint u (base_clock, base_version) = function
  | Some (hint_clock, hint_version)
    when Vclock.get hint_clock u <= Vclock.get base_clock u ->
    (Vclock.merge base_clock hint_clock, max base_version hint_version)
  | _ -> (base_clock, base_version)

let peer_bound t u =
  let base =
    Option.value ~default:(Vclock.empty, 0) (User_map.find_opt u t.peer_integrated)
  in
  let base = apply_hint u base (User_map.find_opt u t.peer_admin_hint) in
  apply_hint u base (User_map.find_opt u t.peer_beacon)

let group_peers t =
  List.filter (fun u -> u <> t.site) (Policy.users (Admin_log.current t.admin_log))

let stable_frontier t =
  List.fold_left (fun acc u -> Vclock.meet acc (fst (peer_bound t u))) t.clock
    (group_peers t)

let stable_version t =
  List.fold_left
    (fun acc u -> min acc (snd (peer_bound t u)))
    (Admin_log.version t.admin_log)
    (group_peers t)

let receive_beacon t ~peer ~clock ~version =
  if peer = t.site then t
  else
    let clock, version =
      match User_map.find_opt peer t.peer_beacon with
      | Some (old_clock, old_version) ->
        (Vclock.merge old_clock clock, max old_version version)
      | None -> (clock, version)
    in
    { t with peer_beacon = User_map.add peer (clock, version) t.peer_beacon }

(* What this site advertises to peers: its own delivery clock and policy
   version.  Everything counted here has been integrated locally. *)
let beacon t = (t.clock, version t)

let window_len t = Oplog.live_length t.oplog
let compacted_upto t = Oplog.compacted_upto t.oplog

let stable_lag t =
  Vclock.sum t.clock - Vclock.sum (stable_frontier t)

(* [limit] clamps the cut (used by journaled sessions so compaction never
   outruns the durable snapshot: replay after a crash starts from the
   snapshot and must find every entry it needs either in the snapshot or
   the WAL — an entry dropped below the snapshot cut satisfies that, one
   dropped above it would not). *)
let compact ?limit t =
  let stable = stable_frontier t in
  let stable =
    match limit with None -> stable | Some l -> Vclock.meet stable l
  in
  M.set t.m.g_stable_lag (Vclock.sum t.clock - Vclock.sum stable);
  note_levels
    { t with oplog = Oplog.compact ~stable ~stable_version:(stable_version t) t.oplog }

(* ----- Algorithm 2: local generation ----- *)

let generate t op =
  let op = Op.with_stamp ~site:t.site ~stamp:(Vclock.sum t.clock + 1) op in
  if not (Policy.check_op (policy t) ~user:t.site op) then begin
    ev t (Dce_obs.Trace.Check_local { granted = false });
    M.incr t.m.m_denied_local;
    (t, Denied "denied by the local policy copy")
  end
  else begin
    ev t (Dce_obs.Trace.Check_local { granted = true });
    let serial = t.serial + 1 in
    let flag = if is_admin t then Request.Valid else Request.Tentative in
    let q =
      Request.make ~site:t.site ~serial ~op ~ctx:t.clock ~policy_version:(version t)
        ~flag ()
    in
    let q = Oplog.broadcast_form q t.oplog in
    let doc = Tdoc.apply ~eq:t.eq t.doc op in
    let oplog = Oplog.append_local q t.oplog in
    let clock = Vclock.tick t.clock t.site in
    let t = { t with doc; oplog; clock; serial } in
    ev t
      (Dce_obs.Trace.Generate
         { request = q.Request.id; valid = flag = Request.Valid });
    M.incr t.m.m_generated;
    (note_levels t, Accepted (Coop q))
  end

(* A composite edit: pre-check every operation, then execute the run.
   Positions in later operations assume the earlier ones applied, which
   is exactly what sequential generation produces. *)
let generate_edit t ops =
  if
    List.for_all (fun op -> Policy.check_op (policy t) ~user:t.site op) ops
  then
    let t, msgs =
      List.fold_left
        (fun (t, msgs) op ->
          match generate t op with
          | t, Accepted m -> (t, m :: msgs)
          | _, Denied reason ->
            invalid_arg ("Controller.generate_edit: mid-run denial: " ^ reason))
        (t, []) ops
    in
    Ok (t, List.rev msgs)
  else Error "composite edit denied by the local policy copy"

let readable t =
  let p = policy t in
  (* walk the model to keep per-cell positions, but emit visible cells only *)
  List.concat
    (List.mapi
       (fun m c ->
         if c.Tdoc.hidden <> 0 then []
         else if Policy.check p ~user:t.site ~right:Right.Read ~pos:(Some m) then
           [ Some (Tdoc.content c) ]
         else [ None ])
       (Tdoc.model_list t.doc))

(* ----- Algorithm 4: administrative requests ----- *)

(* Retroactive enforcement: undo every tentative request the new policy
   no longer grants.  Decisions look at [gen_op] (identical everywhere),
   so every site undoes the same requests at the same version. *)
let enforce t r =
  if (not t.features.retroactive_undo) || not (Admin_op.is_restrictive r.Admin_op.op)
  then t
  else
    let p = policy t in
    List.fold_left
      (fun t (qt : 'e Request.t) ->
        if Policy.check_op p ~user:qt.Request.id.Request.site qt.Request.gen_op then t
        else
          match
            Oplog.undo ~cancel_version:r.Admin_op.version qt.Request.id t.oplog
          with
          | None -> t
          | Some (op, oplog) ->
            let t = { t with oplog; doc = Tdoc.apply ~eq:t.eq t.doc op } in
            ev t
              (Dce_obs.Trace.Retroactive_undo
                 { request = qt.Request.id; cancel_version = r.Admin_op.version });
            M.incr t.m.m_undone;
            t)
      t (tentative t)

(* Apply the next administrative request.  Returns the follow-up
   administrative operations this site must itself issue: when the
   administrator role lands on us, every request validated-by-integration
   is still flagged tentative here, and a request that arrived before the
   transfer would otherwise never be validated by anyone — so the new
   administrator validates its whole tentative backlog. *)
let apply_admin t (r : Admin_op.request) =
  match Admin_log.append t.admin_log r with
  | Error e -> Error e
  | Ok admin_log ->
    let t = { t with admin_log } in
    M.incr t.m.m_admin_applied;
    if Dce_obs.Trace.enabled t.trace then
      ev t
        (Dce_obs.Trace.Admin_apply
           {
             op = Format.asprintf "%a" Admin_op.pp r.Admin_op.op;
             restrictive = Admin_op.is_restrictive r.Admin_op.op;
           });
    (match r.Admin_op.op with
     | Admin_op.Validate id ->
       (* only upgrade tentative requests: an Invalid entry stays
          invalid (the situation cannot arise for honest traffic) *)
       let t =
         match Oplog.find id t.oplog with
         | Some q when q.Request.flag = Request.Tentative ->
           let t = { t with oplog = Oplog.set_flag id Request.Valid t.oplog } in
           ev t (Dce_obs.Trace.Validate id);
           M.incr t.m.m_validated;
           t
         | Some _ | None -> t
       in
       Ok (t, [])
     | Admin_op.Transfer_admin u when u = t.site && t.features.validation && not t.replay ->
       let backlog =
         List.map (fun (q : 'e Request.t) -> Admin_op.Validate q.Request.id) (tentative t)
       in
       Ok (t, backlog)
     | _ -> Ok (enforce t r, []))

(* issue one administrative request from this site, folding in any
   follow-up validations it triggers *)
let rec issue_admin t op =
  let r = { Admin_op.admin = t.site; version = version t + 1; op; ctx = t.clock } in
  match apply_admin t r with
  | Error e -> Error e
  | Ok (t, follow_ups) ->
    List.fold_left
      (fun acc op ->
        match acc with
        | Error _ as e -> e
        | Ok (t, msgs) ->
          (match issue_admin t op with
           | Error e -> Error e
           | Ok (t, more) -> Ok (t, msgs @ more)))
      (Ok (t, [ Admin r ]))
      follow_ups

let admin_update t op =
  if not (is_admin t) then Error "only the administrator can modify the policy"
  else
    match issue_admin t op with
    | Error e -> Error e
    | Ok (t, [ m ]) -> Ok (note_levels t, m)
    | Ok (_, _) -> assert false (* user-issued operations trigger no follow-ups *)

(* ----- Algorithm 3: remote cooperative requests ----- *)

let integrate_coop t (q : 'e Request.t) =
  let from_admin =
    Admin_log.admin_at t.admin_log q.Request.policy_version
    = Some q.Request.id.Request.site
  in
  let denial =
    if from_admin then None
    else if not t.features.interval_check then
      (* naive variant: check against the current policy copy only
         (the Fig. 3 hole) *)
      if Policy.check_op (policy t) ~user:q.Request.id.Request.site q.Request.gen_op
      then None
      else Some (version t)
    else
      match Right.of_op q.Request.gen_op with
      | None -> None
      | Some right ->
        Admin_log.first_denial t.admin_log ~from_version:q.Request.policy_version
          ~user:q.Request.id.Request.site ~right ~pos:(Op.pos q.Request.gen_op)
  in
  (if t.features.interval_check && not from_admin then
     match Right.of_op q.Request.gen_op with
     | None -> ()
     | Some _ ->
       ev t
         (Dce_obs.Trace.Interval_recheck
            {
              request = q.Request.id;
              from_version = q.Request.policy_version;
              to_version = version t;
              denied_at = denial;
            }));
  let t = note_integrated t q in
  match denial with
  | Some cancel_version ->
    let (op1, op2), oplog = Oplog.append_rejected ~cancel_version q t.oplog in
    let doc = Tdoc.apply ~eq:t.eq (Tdoc.apply ~eq:t.eq t.doc op1) op2 in
    let clock = Vclock.tick t.clock q.Request.id.Request.site in
    let t = { t with doc; oplog; clock } in
    ev t (Dce_obs.Trace.Invalidate { request = q.Request.id; cancel_version });
    M.incr t.m.m_invalidated;
    (t, [])
  | None ->
    let q, emitted =
      if is_admin t && not from_admin && t.features.validation && not t.replay then
        ({ q with Request.flag = Request.Valid }, [ Admin_op.Validate q.Request.id ])
      else (q, [])
    in
    let op, oplog = Oplog.integrate q t.oplog in
    let doc = Tdoc.apply ~eq:t.eq t.doc op in
    let clock = Vclock.tick t.clock q.Request.id.Request.site in
    let t = { t with doc; oplog; clock } in
    ev t
      (Dce_obs.Trace.Deliver
         {
           request = q.Request.id;
           gen_version = q.Request.policy_version;
           valid = q.Request.flag = Request.Valid;
         });
    M.incr t.m.m_delivered;
    (* the administrator's validation consumes the next version number
       and is broadcast *)
    List.fold_left
      (fun (t, msgs) op ->
        match issue_admin t op with
        | Ok (t, ms) -> (t, msgs @ ms)
        | Error e ->
          (* Validate always applies *)
          invalid_arg ("Controller: validation failed: " ^ e))
      (t, []) emitted

let coop_ready t (q : 'e Request.t) =
  q.Request.policy_version <= version t && Oplog.causally_ready q t.oplog

let admin_ready t (r : Admin_op.request) =
  r.Admin_op.version = version t + 1
  &&
  match r.Admin_op.op with
  | Admin_op.Validate id -> Oplog.mem id t.oplog
  | _ -> true

(* Apply everything that is ready, to a fixed point.  Administrative
   requests are tried first: they unblock version-gated cooperative
   requests. *)
let rec drain (t, msgs) =
  let ready_admin, rest_admin = List.partition (admin_ready t) t.admin_queue in
  match ready_admin with
  | r :: deferred ->
    let t =
      {
        t with
        admin_queue = deferred @ rest_admin;
        n_admin_queue = t.n_admin_queue - 1;
      }
    in
    (match apply_admin t r with
     | Ok (t, follow_ups) ->
       let t, more =
         List.fold_left
           (fun (t, acc) op ->
             match issue_admin t op with
             | Ok (t, ms) -> (t, acc @ ms)
             | Error e -> invalid_arg ("Controller: validation failed: " ^ e))
           (t, []) follow_ups
       in
       drain (t, msgs @ more)
     | Error _ ->
       (* malformed or illegitimate administrative traffic (an impostor,
          or an operation that does not apply): drop it — the paper
          assumes an authenticated network, this is defence in depth *)
       drain (t, msgs))
  | [] ->
    let ready_coop, waiting = List.partition (coop_ready t) t.coop_queue in
    (match ready_coop with
     | [] -> (t, msgs)
     | _ ->
       let t =
         {
           t with
           coop_queue = waiting;
           n_coop_queue = t.n_coop_queue - List.length ready_coop;
         }
       in
       let t, more =
         List.fold_left
           (fun (t, acc) q ->
             let t, m = integrate_coop t q in
             (t, acc @ m))
           (t, []) ready_coop
       in
       drain (t, msgs @ more))

type 'e state = {
  st_site : Subject.user;
  st_features : features;
  st_doc : 'e Tdoc.cell list;
  st_oplog : 'e Oplog.entry list;
  st_compacted : Vclock.t;
  st_clock : Vclock.t;
  st_serial : int;
  st_initial_policy : Policy.t;
  st_initial_admin : Subject.user;
  st_admin_requests : Admin_op.request list;
  st_coop_queue : 'e Request.t list;
  st_admin_queue : Admin_op.request list;
  st_peer_integrated : (Subject.user * (Vclock.t * int)) list;
  st_peer_admin_hint : (Subject.user * (Vclock.t * int)) list;
  st_peer_beacon : (Subject.user * (Vclock.t * int)) list;
}

let dump t =
  {
    st_site = t.site;
    st_features = t.features;
    st_doc = Tdoc.model_list t.doc;
    st_oplog = Oplog.entries t.oplog;
    st_compacted = Oplog.compacted_upto t.oplog;
    st_clock = t.clock;
    st_serial = t.serial;
    st_initial_policy = Admin_log.initial t.admin_log;
    st_initial_admin = Admin_log.initial_admin t.admin_log;
    st_admin_requests = Admin_log.requests t.admin_log;
    st_coop_queue = t.coop_queue;
    st_admin_queue = t.admin_queue;
    st_peer_integrated = User_map.bindings t.peer_integrated;
    st_peer_admin_hint = User_map.bindings t.peer_admin_hint;
    st_peer_beacon = User_map.bindings t.peer_beacon;
  }

let load ?(eq = ( = )) ?(trace = Dce_obs.Trace.null) ?metrics s =
  let rec replay l = function
    | [] -> Ok l
    | r :: rest -> (
        match Admin_log.append l r with
        | Ok l -> replay l rest
        | Error e -> Error ("corrupt administrative history: " ^ e))
  in
  match
    replay (Admin_log.create ~admin:s.st_initial_admin s.st_initial_policy)
      s.st_admin_requests
  with
  | Error _ as e -> e
  | Ok admin_log ->
    Ok
      {
        site = s.st_site;
        features = s.st_features;
        eq;
        trace;
        doc = Tdoc.of_cells s.st_doc;
        oplog = Oplog.of_entries ~compacted:s.st_compacted s.st_oplog;
        clock = s.st_clock;
        serial = s.st_serial;
        admin_log;
        coop_queue = s.st_coop_queue;
        admin_queue = s.st_admin_queue;
        n_coop_queue = List.length s.st_coop_queue;
        n_admin_queue = List.length s.st_admin_queue;
        peer_integrated =
          User_map.of_seq (List.to_seq s.st_peer_integrated);
        peer_admin_hint = User_map.of_seq (List.to_seq s.st_peer_admin_hint);
        peer_beacon = User_map.of_seq (List.to_seq s.st_peer_beacon);
        replay = false;
        m = meters_of metrics;
      }

let receive t msg =
  match msg with
  | Coop q ->
    let dup =
      Oplog.mem q.Request.id t.oplog
      || List.exists (fun q' -> Request.id_equal q'.Request.id q.Request.id) t.coop_queue
    in
    ev t (Dce_obs.Trace.Receive { coop = true; dup });
    if dup then begin
      M.incr t.m.m_dups;
      (t, [])
    end
    else
      let t, msgs =
        drain
          ( { t with coop_queue = q :: t.coop_queue; n_coop_queue = t.n_coop_queue + 1 },
            [] )
      in
      (note_levels t, msgs)
  | Admin r ->
    let t = note_admin_hint t r in
    let dup =
      r.Admin_op.version <= version t
      || List.exists (fun r' -> r'.Admin_op.version = r.Admin_op.version) t.admin_queue
    in
    ev t (Dce_obs.Trace.Receive { coop = false; dup });
    if dup then begin
      M.incr t.m.m_dups;
      (t, [])
    end
    else
      let t, msgs =
        drain
          ( {
              t with
              admin_queue = r :: t.admin_queue;
              n_admin_queue = t.n_admin_queue + 1;
            },
            [] )
      in
      (note_levels t, msgs)

(* ----- reconnection by replay (the durable alternative to [rejoin]) ----- *)

(* A stored request's broadcast form: the generation-context operation
   with the flag it was born with (the administrator's own requests are
   born valid; everything else starts tentative and is settled by the
   validations and denials the receiver derives itself). *)
let born_copy admin_log (q : 'e Request.t) =
  let born_valid =
    Admin_log.admin_at admin_log q.Request.policy_version
    = Some q.Request.id.Request.site
  in
  {
    q with
    Request.op = q.Request.gen_op;
    flag = (if born_valid then Request.Valid else Request.Tentative);
  }

let normal_requests oplog =
  List.filter_map
    (fun (e : 'e Oplog.entry) ->
      match e.Oplog.role with
      | Oplog.Canceller _ -> None (* derived: every site re-derives its own *)
      | Oplog.Normal -> Some e.Oplog.req)
    (Oplog.entries oplog)

(* Feed a list of history messages through [receive] in replay mode:
   duplicates are dropped, the rest queues until causally ready, and
   every security decision (interval checks, rejections, undo) is taken
   by this site's own algorithm rather than trusted from the donor. *)
let replay_history t history =
  let t, replayed =
    List.fold_left
      (fun (t, acc) m ->
        let t, ms = receive t m in
        (t, acc @ ms))
      ({ t with replay = true }, [])
      history
  in
  ({ t with replay = false }, replayed)

(* Requests of ours a donor at [donor_clock]/[donor_version] never saw:
   put them back on the wire (receivers deduplicate, so over-sending is
   harmless). *)
let unacked_by t ~donor_clock ~donor_version =
  let unacked_admin =
    Admin_log.requests t.admin_log
    |> List.filter (fun (r : Admin_op.request) ->
           r.Admin_op.admin = t.site && r.Admin_op.version > donor_version)
    |> List.map (fun r -> Admin r)
  in
  let donor_floor = Vclock.get donor_clock t.site in
  let unacked_coop =
    normal_requests t.oplog
    |> List.filter (fun (q : 'e Request.t) ->
           q.Request.id.Request.site = t.site
           && q.Request.id.Request.serial > donor_floor)
    |> List.map (fun q -> Coop (born_copy t.admin_log q))
  in
  unacked_admin @ unacked_coop

(* If the administrator role sits here, requests that reached the group
   while this site was down are still tentative everywhere: validate the
   backlog now (same obligation as an admin transfer). *)
let validate_backlog t =
  if is_admin t && t.features.validation then
    List.fold_left
      (fun (t, acc) (q : 'e Request.t) ->
        match issue_admin t (Admin_op.Validate q.Request.id) with
        | Ok (t, ms) -> (t, acc @ ms)
        | Error _ -> (t, acc))
      (t, []) (tentative t)
  else (t, [])

let catch_up t donor =
  if Vclock.leq (Oplog.compacted_upto donor.oplog) t.clock then begin
    (* Reconstruct the donor's whole (remaining) history as ordinary
       messages and push it through [receive].  Administrative requests
       go first so the version sequence — and with it the administrator
       identity at every point — is settled before cooperative traffic
       integrates.  Sound even though the donor's log is compacted: every
       dropped entry is below the donor's cut, which our own clock
       dominates, so we already hold it. *)
    let history =
      List.map (fun r -> Admin r) (Admin_log.requests donor.admin_log)
      @ List.map
          (fun q -> Coop (born_copy donor.admin_log q))
          (normal_requests donor.oplog)
      @ List.map (fun q -> Coop q) (List.rev donor.coop_queue)
      @ List.map (fun r -> Admin r) (List.rev donor.admin_queue)
    in
    let t, replayed = replay_history t history in
    (* our serial counter must clear everything the group has already seen
       from us, or fresh requests would be dropped as duplicates *)
    let t = { t with serial = max t.serial (Vclock.get t.clock t.site) } in
    let unacked =
      unacked_by t ~donor_clock:donor.clock
        ~donor_version:(Admin_log.version donor.admin_log)
    in
    let t, validations = validate_backlog t in
    (note_levels t, replayed @ unacked @ validations)
  end
  else begin
    (* The donor compacted past this site's clock: entries we lack were
       dropped from the donor's log for good, so a replay would be
       silently incomplete.  Adopt the donor's state wholesale instead
       (rejoin semantics), then re-feed and re-broadcast our own
       unacknowledged requests — the only part of our divergent state
       the group may not already hold.  Messages parked in our queues are
       other sites' traffic; their origins (or any donor) redeliver them. *)
    let unacked =
      unacked_by t ~donor_clock:donor.clock
        ~donor_version:(Admin_log.version donor.admin_log)
    in
    let fresh = rejoin ~site:t.site donor in
    let fresh =
      {
        fresh with
        eq = t.eq;
        trace = t.trace;
        m = t.m;
        features = t.features;
        serial = max t.serial fresh.serial;
      }
    in
    let fresh, refed = replay_history fresh unacked in
    let fresh, validations = validate_backlog fresh in
    (note_levels fresh, refed @ unacked @ validations)
  end

(* ----- delta catch-up: ship only the suffix a joiner lacks ----- *)

type 'e delta = {
  dl_clock : Vclock.t;
  dl_version : int;
  dl_compacted : Vclock.t;
  dl_admin : Admin_op.request list;
  dl_coop : 'e Request.t list;
  dl_coop_queue : 'e Request.t list;
  dl_admin_queue : Admin_op.request list;
}

let delta_since donor ~clock ~version =
  (* Only offered when the joiner's clock dominates the donor's cut:
     below the cut the donor has dropped entries it cannot resend, and a
     joiner that lacks any of them needs the full snapshot.  At or above
     it, the joiner's clock counts exactly what it has integrated, so
     the entries it does not count are exactly what it lacks. *)
  if not (Vclock.leq (Oplog.compacted_upto donor.oplog) clock) then None
  else
    let dl_admin =
      List.filter
        (fun (r : Admin_op.request) -> r.Admin_op.version > version)
        (Admin_log.requests donor.admin_log)
    in
    let dl_coop =
      normal_requests donor.oplog
      |> List.filter (fun (q : 'e Request.t) ->
             not
               (Vclock.dominates_event clock ~site:q.Request.id.Request.site
                  ~count:q.Request.id.Request.serial))
      |> List.map (born_copy donor.admin_log)
    in
    Some
      {
        dl_clock = donor.clock;
        dl_version = Admin_log.version donor.admin_log;
        dl_compacted = Oplog.compacted_upto donor.oplog;
        dl_admin;
        dl_coop;
        dl_coop_queue = List.rev donor.coop_queue;
        dl_admin_queue = List.rev donor.admin_queue;
      }

let apply_delta t (d : 'e delta) =
  if not (Vclock.leq d.dl_compacted t.clock) then
    Error "delta starts past this site's clock: full snapshot required"
  else begin
    let history =
      List.map (fun r -> Admin r) d.dl_admin
      @ List.map (fun q -> Coop q) d.dl_coop
      @ List.map (fun q -> Coop q) d.dl_coop_queue
      @ List.map (fun r -> Admin r) d.dl_admin_queue
    in
    let t, replayed = replay_history t history in
    let t = { t with serial = max t.serial (Vclock.get t.clock t.site) } in
    let unacked = unacked_by t ~donor_clock:d.dl_clock ~donor_version:d.dl_version in
    let t, validations = validate_backlog t in
    Ok (note_levels t, replayed @ unacked @ validations)
  end
