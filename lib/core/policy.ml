module ISet = Set.Make (Int)
module SMap = Map.Make (String)

type t = {
  users : ISet.t;
  groups : ISet.t SMap.t;
  objects : Docobj.t SMap.t;
  auths : Auth.t list;
}

let empty = { users = ISet.empty; groups = SMap.empty; objects = SMap.empty; auths = [] }

let make ?(users = []) ?(groups = []) ?(objects = []) auths =
  {
    users = ISet.of_list users;
    groups =
      List.fold_left (fun m (g, us) -> SMap.add g (ISet.of_list us) m) SMap.empty groups;
    objects = List.fold_left (fun m (n, o) -> SMap.add n o m) SMap.empty objects;
    auths;
  }

let users t = ISet.elements t.users

let groups t = List.map (fun (g, s) -> (g, ISet.elements s)) (SMap.bindings t.groups)

let objects t = SMap.bindings t.objects

let is_user t u = ISet.mem u t.users

let member t g u =
  match SMap.find_opt g t.groups with Some s -> ISet.mem u s | None -> false

let resolve t n = SMap.find_opt n t.objects
let auths t = t.auths
let auth_count t = List.length t.auths

let check t ~user ~right ~pos =
  is_user t user
  &&
  let member g u = member t g u and resolve n = resolve t n in
  let rec first_match = function
    | [] -> false (* default deny *)
    | a :: rest ->
      if Auth.matches ~member ~resolve a ~user ~right ~pos then not (Auth.is_restrictive a)
      else first_match rest
  in
  first_match t.auths

let check_op t ~user op =
  match Right.of_op op with
  | None -> true
  | Some right -> check t ~user ~right ~pos:(Dce_ot.Op.pos op)

type verdict = Unregistered | Default_deny | Matched of int

let explain t ~user ~right ~pos =
  if not (is_user t user) then Unregistered
  else
    let member g u = member t g u and resolve n = resolve t n in
    let rec go i = function
      | [] -> Default_deny
      | a :: rest ->
        if Auth.matches ~member ~resolve a ~user ~right ~pos then Matched i
        else go (i + 1) rest
    in
    go 0 t.auths

let auth_at t i = List.nth_opt t.auths i

let verdict_allows t = function
  | Unregistered | Default_deny -> false
  | Matched i ->
    (match auth_at t i with Some a -> not (Auth.is_restrictive a) | None -> false)

let add_user t u =
  if ISet.mem u t.users then Error (Printf.sprintf "user %d already registered" u)
  else Ok { t with users = ISet.add u t.users }

(* Deletion deliberately does NOT rewrite the authorization list, even
   though auths may still name the deleted user/object (see the .mli):
   [Add_auth]/[Del_auth] address authorizations by index, so a silent
   rewrite here would shift indices under concurrently issued
   administrative requests.  The dangling references are inert —
   unregistered users fail [check] before any auth is consulted, and an
   unresolvable [Named] object matches nothing — and are surfaced by the
   static analyzer (dcepolicy dangling-reference lints). *)
let del_user t u =
  if not (ISet.mem u t.users) then Error (Printf.sprintf "user %d not registered" u)
  else
    Ok
      {
        t with
        users = ISet.remove u t.users;
        groups = SMap.map (ISet.remove u) t.groups;
      }

let add_to_group t g u =
  if not (ISet.mem u t.users) then Error (Printf.sprintf "user %d not registered" u)
  else
    let s = Option.value ~default:ISet.empty (SMap.find_opt g t.groups) in
    if ISet.mem u s then Error (Printf.sprintf "user %d already in group %s" u g)
    else Ok { t with groups = SMap.add g (ISet.add u s) t.groups }

let del_from_group t g u =
  match SMap.find_opt g t.groups with
  | None -> Error (Printf.sprintf "no group %s" g)
  | Some s ->
    if not (ISet.mem u s) then Error (Printf.sprintf "user %d not in group %s" u g)
    else Ok { t with groups = SMap.add g (ISet.remove u s) t.groups }

let add_obj t n o =
  if SMap.mem n t.objects then Error (Printf.sprintf "object %s already registered" n)
  else Ok { t with objects = SMap.add n o t.objects }

let del_obj t n =
  if not (SMap.mem n t.objects) then Error (Printf.sprintf "no object %s" n)
  else Ok { t with objects = SMap.remove n t.objects }

let add_auth t p a =
  let n = List.length t.auths in
  if p < 0 || p > n then Error (Printf.sprintf "authorization index %d out of [0,%d]" p n)
  else
    let rec insert i = function
      | rest when i = 0 -> a :: rest
      | x :: rest -> x :: insert (i - 1) rest
      | [] -> assert false
    in
    Ok { t with auths = insert p t.auths }

let del_auth t p =
  let n = List.length t.auths in
  if p < 0 || p >= n then
    Error (Printf.sprintf "authorization index %d out of [0,%d)" p n)
  else
    let rec remove i = function
      | _ :: rest when i = 0 -> rest
      | x :: rest -> x :: remove (i - 1) rest
      | [] -> assert false
    in
    Ok { t with auths = remove p t.auths }

let pp ppf t =
  Format.fprintf ppf "@[<v>users: {%a}@ "
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (ISet.elements t.users);
  SMap.iter
    (fun g s ->
      Format.fprintf ppf "group %s: {%a}@ " g
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        (ISet.elements s))
    t.groups;
  SMap.iter (fun n o -> Format.fprintf ppf "object %s = %a@ " n Docobj.pp o) t.objects;
  List.iteri (fun i a -> Format.fprintf ppf "P%d: %a@ " i Auth.pp a) t.auths;
  Format.fprintf ppf "@]"
