(** The shared policy object (paper §3.2, Def. 2 and 3).

    A policy state is the triple [(P, S, O)]: an indexed list of
    authorizations [P], the registered subjects [S] (users plus named
    groups), and the registered named objects [O].  Checking uses
    {e first-match} semantics: the authorizations are scanned from index
    0 and the first one that matches the access decides — positive grants,
    negative denies.  If no authorization matches, or the user is not
    registered, the access is denied (negative authorizations exist only
    to shadow later positive ones and accelerate rejection, as in the
    paper).

    The policy value itself is immutable; versioning is handled by
    {!Admin_log}, which stores one snapshot per version (cheap thanks to
    structural sharing). *)

type t

val empty : t
(** No users, no groups, no objects, no authorizations: everything is
    denied. *)

val make :
  ?users:Subject.user list ->
  ?groups:(string * Subject.user list) list ->
  ?objects:(string * Docobj.t) list ->
  Auth.t list ->
  t

(* {2 State} *)

val users : t -> Subject.user list
val groups : t -> (string * Subject.user list) list
val objects : t -> (string * Docobj.t) list
val is_user : t -> Subject.user -> bool
val member : t -> string -> Subject.user -> bool
val resolve : t -> string -> Docobj.t option
val auths : t -> Auth.t list
val auth_count : t -> int

(* {2 Checking} *)

val check : t -> user:Subject.user -> right:Right.t -> pos:int option -> bool
(** First-match over the authorization list; default deny; unregistered
    users always denied. *)

val check_op : t -> user:Subject.user -> 'e Dce_ot.Op.t -> bool
(** {!check} on the right and position the operation exercises.  [Nop]
    and [Undel] (no associated right) are always allowed. *)

type verdict =
  | Unregistered  (** denied before any authorization is consulted *)
  | Default_deny  (** registered, but no authorization matched *)
  | Matched of int  (** index of the first-match authorization that decided *)

val explain : t -> user:Subject.user -> right:Right.t -> pos:int option -> verdict
(** Like {!check}, but tells {e which} rule decided — the witness hook
    the static analyzer ([Dce_analysis]) validates its findings against:
    a claimed shadowing/conflict witness must replay to exactly the
    predicted [Matched] index. *)

val verdict_allows : t -> verdict -> bool
(** The boolean {!check} would return for this verdict:
    [Matched i] allows iff authorization [i] is positive. *)

val auth_at : t -> int -> Auth.t option
(** The authorization at an index ([P]'s priority order, 0 first). *)

(* {2 Mutation (administrator only, via administrative operations)} *)

val add_user : t -> Subject.user -> (t, string) result

val del_user : t -> Subject.user -> (t, string) result
(** Unregisters the user and removes them from every group.
    {b Dangling references are retained by design}: authorizations that
    name the deleted user stay in [P] untouched.  Rewriting the list
    here would renumber authorization indices, and [Add_auth]/[Del_auth]
    requests from concurrent administrators address rules {e by index} —
    a silent shift would make them land on the wrong rule.  The retained
    references are inert (an unregistered user is denied before [P] is
    consulted) and are reported by the [dcepolicy] dangling-reference
    lint so an administrator can garbage-collect them with explicit
    [Del_auth] requests. *)

val add_to_group : t -> string -> Subject.user -> (t, string) result
(** Creates the group if needed; the user must be registered. *)

val del_from_group : t -> string -> Subject.user -> (t, string) result
val add_obj : t -> string -> Docobj.t -> (t, string) result

val del_obj : t -> string -> (t, string) result
(** Same retention policy as {!del_user}: authorizations that reference
    the deleted object by name keep their [Named] entry.  An
    unresolvable name matches no access (so the rule silently narrows or
    dies), which is exactly what the [dcepolicy] dangling-object and
    never-matches lints exist to surface. *)

val add_auth : t -> int -> Auth.t -> (t, string) result
(** Insert at index [p] (0 = highest precedence); [p] may equal the
    current length to append. *)

val del_auth : t -> int -> (t, string) result

val pp : Format.formatter -> t -> unit
