(** Binary encoding primitives.

    A small, dependency-free codec layer: little-endian varints (LEB128),
    length-prefixed strings, composites, and a framing header with a
    CRC-32 checksum.  Encoders write to a [Buffer]; decoders consume a
    [string] through an explicit cursor and {e never raise} — any
    malformed, truncated or corrupt input yields [Error] (fuzz-tested in
    [test/test_wire.ml]), which is what lets network input be parsed
    without trusting it. *)

type encoder = Buffer.t

type decoder

type 'a result = ('a, string) Stdlib.result

(* {2 Encoding} *)

val to_string : (encoder -> 'a -> unit) -> 'a -> string

val put_varint : encoder -> int -> unit
(** Non-negative integers only (raises [Invalid_argument] otherwise —
    an encoding-side programming error, not an input error). *)

val put_int : encoder -> int -> unit
(** Zig-zag encoded: any OCaml int. *)

val put_bool : encoder -> bool -> unit
val put_char : encoder -> char -> unit
val put_string : encoder -> string -> unit
val put_list : (encoder -> 'a -> unit) -> encoder -> 'a list -> unit
val put_option : (encoder -> 'a -> unit) -> encoder -> 'a option -> unit
val put_pair : (encoder -> 'a -> unit) -> (encoder -> 'b -> unit) -> encoder -> 'a * 'b -> unit

(* {2 Decoding} *)

val decoder_of_string : string -> decoder
val of_string : (decoder -> 'a result) -> string -> 'a result
(** Runs the decoder and additionally fails on trailing garbage. *)

val get_varint : decoder -> int result
val get_int : decoder -> int result
val get_bool : decoder -> bool result
val get_char : decoder -> char result
val get_string : decoder -> string result
val get_list : (decoder -> 'a result) -> decoder -> 'a list result
val get_option : (decoder -> 'a result) -> decoder -> 'a option result
val get_pair : (decoder -> 'a result) -> (decoder -> 'b result) -> decoder -> ('a * 'b) result

val ( let* ) : 'a result -> ('a -> 'b result) -> 'b result

(* {2 Framing} *)

val frame : string -> string
(** Wrap a payload: magic, format version, length, CRC-32, payload. *)

val unframe : string -> string result
(** Check magic/version/length/checksum and return the payload.  The
    input must be exactly one frame; for byte streams use
    {!unframe_prefix}. *)

type frame_error =
  | Truncated  (** The buffer ends mid-frame: wait for more bytes. *)
  | Corrupt of string
      (** The bytes can never become a valid frame (bad magic, version,
          oversized length, checksum…): drop the connection. *)

val unframe_prefix :
  ?max_payload:int -> string -> pos:int -> (string * int, frame_error) Stdlib.result
(** Decode one frame starting at [pos] of a byte stream: [Ok (payload,
    next)] consumes bytes [pos..next-1].  This is the incremental entry
    point a stream reader needs — [Truncated] means the stream has not
    yet delivered the rest of the frame, [Corrupt] that it never will.
    [max_payload] bounds the declared payload length before any
    buffering happens, so a hostile length prefix cannot force
    unbounded memory. *)

val unframe_prefix_bytes :
  ?max_payload:int ->
  Bytes.t ->
  pos:int ->
  stop:int ->
  (string * int, frame_error) Stdlib.result
(** {!unframe_prefix} over a [Bytes.t] window [pos..stop-1], reading
    the header and payload in place.  This is what a stream reader with
    a mutable receive buffer wants: the only allocation is the returned
    payload, so probing a partially-received frame after every socket
    read costs O(header) instead of a copy of everything buffered.
    Raises [Invalid_argument] if the range is out of bounds. *)

val crc32 : string -> int32

(* {2 Telemetry} *)

val set_metrics : Dce_obs.Metrics.t option -> unit
(** Route per-frame telemetry into a registry: histograms
    [wire.encode_bytes] / [wire.decode_bytes] (framed sizes) and
    [wire.encode_ns] / [wire.decode_ns] (wall-clock framing time).
    [None] (the default) disables instrumentation — one branch per
    frame. *)
