type encoder = Buffer.t

type decoder = { src : string; mutable pos : int }

type 'a result = ('a, string) Stdlib.result

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

(* ----- encoding ----- *)

let to_string enc v =
  let b = Buffer.create 64 in
  enc b v;
  Buffer.contents b

(* raw LEB128 over the 63-bit pattern; [lsr] makes this safe for values
   whose top (sign) bit is set *)
let put_raw b n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_varint b n =
  if n < 0 then invalid_arg "Codec.put_varint: negative";
  put_raw b n

(* zig-zag over the full OCaml int range *)
let put_int b n = put_raw b ((n lsl 1) lxor (n asr 62))

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let put_char b c = Buffer.add_char b c

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let put_list enc b l =
  put_varint b (List.length l);
  List.iter (enc b) l

let put_option enc b = function
  | None -> put_bool b false
  | Some v ->
    put_bool b true;
    enc b v

let put_pair enc_a enc_b b (x, y) =
  enc_a b x;
  enc_b b y

(* ----- decoding ----- *)

let decoder_of_string src = { src; pos = 0 }

let remaining d = String.length d.src - d.pos

let get_byte d =
  if remaining d < 1 then Error "unexpected end of input"
  else begin
    let c = d.src.[d.pos] in
    d.pos <- d.pos + 1;
    Ok (Char.code c)
  end

let max_varint_bytes = 9 (* 63 bits *)

let get_raw d =
  let rec go acc shift bytes =
    if bytes > max_varint_bytes then Error "varint too long"
    else
      let* byte = get_byte d in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then Ok acc else go acc (shift + 7) (bytes + 1)
  in
  go 0 0 1

let get_varint d =
  let* n = get_raw d in
  if n < 0 then Error "varint overflow" else Ok n

let get_int d =
  let* zz = get_raw d in
  Ok ((zz lsr 1) lxor (-(zz land 1)))

let get_bool d =
  let* byte = get_byte d in
  match byte with
  | 0 -> Ok false
  | 1 -> Ok true
  | _ -> Error "invalid boolean"

let get_char d =
  let* byte = get_byte d in
  Ok (Char.chr byte)

let get_string d =
  let* len = get_varint d in
  if len > remaining d then Error "string length exceeds input"
  else begin
    let s = String.sub d.src d.pos len in
    d.pos <- d.pos + len;
    Ok s
  end

let get_list get d =
  let* len = get_varint d in
  if len > remaining d then Error "list length exceeds input"
  else
    let rec go acc n =
      if n = 0 then Ok (List.rev acc)
      else
        let* x = get d in
        go (x :: acc) (n - 1)
    in
    go [] len

let get_option get d =
  let* present = get_bool d in
  if not present then Ok None
  else
    let* v = get d in
    Ok (Some v)

let get_pair get_a get_b d =
  let* a = get_a d in
  let* b = get_b d in
  Ok (a, b)

let of_string get s =
  let d = decoder_of_string s in
  let* v = get d in
  if remaining d <> 0 then Error "trailing garbage" else Ok v

(* ----- CRC-32 (IEEE 802.3) ----- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ----- telemetry -----

   Optional per-frame instrumentation: payload sizes and wall-clock
   encode/decode times into a metrics registry.  Off ([None]) the cost
   is one load and branch per frame. *)

type instruments = {
  enc_bytes : Dce_obs.Metrics.histogram;
  dec_bytes : Dce_obs.Metrics.histogram;
  enc_ns : Dce_obs.Metrics.histogram;
  dec_ns : Dce_obs.Metrics.histogram;
}

let instr : instruments option ref = ref None

let set_metrics = function
  | None -> instr := None
  | Some m ->
    instr :=
      Some
        {
          enc_bytes = Dce_obs.Metrics.histogram m "wire.encode_bytes";
          dec_bytes = Dce_obs.Metrics.histogram m "wire.decode_bytes";
          enc_ns = Dce_obs.Metrics.histogram m "wire.encode_ns";
          dec_ns = Dce_obs.Metrics.histogram m "wire.decode_ns";
        }

(* ----- framing ----- *)

let magic = "DCE1"
let format_version = 1

let frame_raw payload =
  let b = Buffer.create (String.length payload + 16) in
  Buffer.add_string b magic;
  put_varint b format_version;
  put_varint b (String.length payload);
  let crc = crc32 payload in
  put_varint b (Int32.to_int (Int32.logand crc 0xFFFFl));
  put_varint b (Int32.to_int (Int32.shift_right_logical crc 16));
  Buffer.add_string b payload;
  Buffer.contents b

let frame payload =
  match !instr with
  | None -> frame_raw payload
  | Some i ->
    let t0 = Dce_obs.Clock.now_ns () in
    let s = frame_raw payload in
    Dce_obs.Metrics.observe i.enc_ns (Dce_obs.Clock.now_ns () - t0);
    Dce_obs.Metrics.observe i.enc_bytes (String.length s);
    s

type frame_error = Truncated | Corrupt of string

(* A varint read that distinguishes running off the end of the buffer
   (the stream may simply not have delivered the rest of the frame yet)
   from a malformed encoding (the peer is broken or hostile). *)
let stream_varint buf ~pos ~stop =
  let rec go acc shift bytes pos =
    if bytes > max_varint_bytes then Error (Corrupt "varint too long")
    else if pos >= stop then Error Truncated
    else
      let byte = Char.code (Bytes.get buf pos) in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then
        if acc < 0 then Error (Corrupt "varint overflow") else Ok (acc, pos + 1)
      else go acc (shift + 7) (bytes + 1) (pos + 1)
  in
  go 0 0 1 pos

let ( let+ ) r f = match r with Ok x -> f x | Error _ as e -> e

let unframe_prefix_bytes ?max_payload buf ~pos ~stop =
  if pos < 0 || pos > stop || stop > Bytes.length buf then
    invalid_arg "Codec.unframe_prefix_bytes: bad range";
  let avail = stop - pos in
  let magic_ok =
    let n = min avail 4 in
    let rec eq i = i >= n || (Bytes.get buf (pos + i) = magic.[i] && eq (i + 1)) in
    eq 0
  in
  if not magic_ok then Error (Corrupt "bad magic")
  else if avail < 4 then Error Truncated
  else
    let+ version, pos = stream_varint buf ~pos:(pos + 4) ~stop in
    if version <> format_version then
      Error (Corrupt (Printf.sprintf "unsupported format version %d" version))
    else
      let+ len, pos = stream_varint buf ~pos ~stop in
      (match max_payload with
       | Some m when len > m ->
         Error (Corrupt (Printf.sprintf "frame payload of %d bytes exceeds limit %d" len m))
       | _ ->
         let+ crc_lo, pos = stream_varint buf ~pos ~stop in
         let+ crc_hi, pos = stream_varint buf ~pos ~stop in
         if stop - pos < len then Error Truncated
         else begin
           let payload = Bytes.sub_string buf pos len in
           let crc = crc32 payload in
           if
             crc_lo = Int32.to_int (Int32.logand crc 0xFFFFl)
             && crc_hi = Int32.to_int (Int32.shift_right_logical crc 16)
           then Ok (payload, pos + len)
           else Error (Corrupt "checksum mismatch")
         end)

let unframe_prefix ?max_payload s ~pos =
  (* unsafe_of_string is sound: unframe_prefix_bytes only reads *)
  unframe_prefix_bytes ?max_payload
    (Bytes.unsafe_of_string s)
    ~pos ~stop:(String.length s)

let unframe_raw s =
  match unframe_prefix s ~pos:0 with
  | Ok (payload, stop) ->
    if stop = String.length s then Ok payload else Error "length mismatch"
  | Error Truncated -> Error "truncated frame"
  | Error (Corrupt e) -> Error e

let unframe s =
  match !instr with
  | None -> unframe_raw s
  | Some i ->
    let t0 = Dce_obs.Clock.now_ns () in
    let r = unframe_raw s in
    Dce_obs.Metrics.observe i.dec_ns (Dce_obs.Clock.now_ns () - t0);
    (match r with
     | Ok _ -> Dce_obs.Metrics.observe i.dec_bytes (String.length s)
     | Error _ -> ());
    r
