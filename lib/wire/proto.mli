(** Wire format for every message and state the system exchanges.

    Serializers are parameterized by an element codec, so any element
    type a deployment instantiates the editor with (characters,
    paragraphs, XML nodes…) can go on the wire; {!Char_proto} is the
    ready-made character instance the examples and tools use.

    Every [decode_*] goes through {!Codec.unframe} (magic, version,
    checksum) and the never-raising decoding layer, then through the
    domain constructors' own validation — so a hostile byte string can be
    fed to them directly.  [Controller.load] additionally replays the
    administrative history, rejecting tampered policies. *)

open Dce_ot
open Dce_core

type 'e elt_codec = {
  put : Codec.encoder -> 'e -> unit;
  get : Codec.decoder -> 'e Codec.result;
}

val char_codec : char elt_codec
val string_codec : string elt_codec

(* {2 Unframed component codecs (composable)} *)

val put_vclock : Codec.encoder -> Vclock.t -> unit
val get_vclock : Codec.decoder -> Vclock.t Codec.result

val put_op : 'e elt_codec -> Codec.encoder -> 'e Op.t -> unit
val get_op : 'e elt_codec -> Codec.decoder -> 'e Op.t Codec.result

val put_request : 'e elt_codec -> Codec.encoder -> 'e Request.t -> unit
val get_request : 'e elt_codec -> Codec.decoder -> 'e Request.t Codec.result

val put_policy : Codec.encoder -> Policy.t -> unit
val get_policy : Codec.decoder -> Policy.t Codec.result

val put_admin_op : Codec.encoder -> Admin_op.t -> unit
val get_admin_op : Codec.decoder -> Admin_op.t Codec.result

val put_admin_request : Codec.encoder -> Admin_op.request -> unit
val get_admin_request : Codec.decoder -> Admin_op.request Codec.result

(** {2 Origin stamps}

    A small tracing header a sender can prepend to any message: origin
    site, origin wall clock (nanoseconds since the epoch) and a
    per-process trace id.  Stamps survive relaying (the relay fans out
    the original bytes), so a receiver can measure end-to-end
    propagation latency as [Clock.now_ns () - s_ns] — modulo clock skew
    between hosts, which the offline [trace.exe merge] analysis
    normalizes away.  {!get_message} skips stamps transparently:
    stamped and unstamped encodings (including pre-stamp journal
    records) share one wire format. *)

type stamp = { s_site : int; s_ns : int; s_tid : int }

val stamp_now : site:int -> unit -> stamp
(** A fresh stamp for [site]: current {!Dce_obs.Clock.now_ns} and the
    next value of a process-local trace-id counter. *)

val put_message :
  ?stamp:stamp -> 'e elt_codec -> Codec.encoder -> 'e Controller.message -> unit

val get_message : 'e elt_codec -> Codec.decoder -> 'e Controller.message Codec.result
(** Decode a message, discarding any origin stamp. *)

val get_message_stamped :
  'e elt_codec ->
  Codec.decoder ->
  (stamp option * 'e Controller.message) Codec.result

(* {2 Framed top-level encodings} *)

val encode_message : ?stamp:stamp -> 'e elt_codec -> 'e Controller.message -> string
val decode_message : 'e elt_codec -> string -> 'e Controller.message Codec.result

val decode_message_stamped :
  'e elt_codec -> string -> (stamp option * 'e Controller.message) Codec.result

val encode_state : 'e elt_codec -> 'e Controller.state -> string
val decode_state : 'e elt_codec -> string -> 'e Controller.state Codec.result

val fingerprint : 'e elt_codec -> 'e Controller.t -> string
(** A stable hex digest of the controller's full serialized state
    ({!encode_state} of {!Controller.dump}).  Two controllers with equal
    fingerprints hold byte-identical persisted state — the recovery
    oracle's definition of "replayed to exactly the pre-crash state". *)

val content_fingerprint : 'e elt_codec -> 'e Controller.t -> string
(** A site-independent hex digest of the converged content: the visible
    document, the policy and the policy version.  Unlike {!fingerprint}
    it ignores the local site id, serials and peer tables, so replicas
    of the same session held by {e different} sites (e.g. two federated
    relays) compare equal exactly when they have converged. *)

(** {2 Stability beacons}

    One site's advertisement of what it has integrated
    ({!Controller.beacon}); a {e frontier} is a batch of them — what a
    hub knows about its whole membership.  Encoded framed so they travel
    as opaque payloads inside relay envelopes. *)

type beacon = { b_site : int; b_clock : Vclock.t; b_version : int }

val put_beacon : Codec.encoder -> beacon -> unit
val get_beacon : Codec.decoder -> beacon Codec.result
val encode_frontier : beacon list -> string
val decode_frontier : string -> beacon list Codec.result

(** {2 Delta catch-up blobs}

    {!Controller.delta_since} results on the wire: the log suffix and
    policy delta a resuming joiner lacks, instead of a full-state
    snapshot. *)

val put_delta : 'e elt_codec -> Codec.encoder -> 'e Controller.delta -> unit
val get_delta : 'e elt_codec -> Codec.decoder -> 'e Controller.delta Codec.result
val encode_delta : 'e elt_codec -> 'e Controller.delta -> string
val decode_delta : 'e elt_codec -> string -> 'e Controller.delta Codec.result

(** Character documents, the common instantiation. *)
module Char_proto : sig
  val encode_message : ?stamp:stamp -> char Controller.message -> string
  val decode_message : string -> char Controller.message Codec.result

  val decode_message_stamped :
    string -> (stamp option * char Controller.message) Codec.result
  val encode_state : char Controller.state -> string
  val decode_state : string -> char Controller.state Codec.result
  val encode_delta : char Controller.delta -> string
  val decode_delta : string -> char Controller.delta Codec.result

  val save : string -> char Controller.t -> unit
  (** Write a controller snapshot to a file. *)

  val restore :
    ?trace:Dce_obs.Trace.sink -> string -> (char Controller.t, string) result
  (** Read a controller back ({!Controller.load} validation included);
      [trace] re-attaches a sink, since sinks are process-local and not
      part of the persisted state. *)
end
