open Dce_ot
open Dce_core
open Codec

type 'e elt_codec = {
  put : Codec.encoder -> 'e -> unit;
  get : Codec.decoder -> 'e Codec.result;
}

let char_codec = { put = put_char; get = get_char }
let string_codec = { put = put_string; get = get_string }

(* ----- Vclock ----- *)

let put_vclock b c = put_list (put_pair put_varint put_varint) b (Vclock.to_list c)

let get_vclock d =
  let* l = get_list (get_pair get_varint get_varint) d in
  Ok (Vclock.of_list l)

(* ----- Op ----- *)

let put_tag b { Op.stamp; site } =
  put_varint b stamp;
  put_varint b site

let get_tag d =
  let* stamp = get_varint d in
  let* site = get_varint d in
  Ok { Op.stamp; site }

let put_op ec b = function
  | Op.Ins { pos; elt; pr } ->
    put_char b 'I';
    put_varint b pos;
    ec.put b elt;
    put_varint b pr
  | Op.Del { pos; elt } ->
    put_char b 'D';
    put_varint b pos;
    ec.put b elt
  | Op.Undel { pos; elt } ->
    put_char b 'R';
    put_varint b pos;
    ec.put b elt
  | Op.Up { pos; before; after; tag } ->
    put_char b 'U';
    put_varint b pos;
    ec.put b before;
    ec.put b after;
    put_tag b tag
  | Op.Unup { pos; value; tag } ->
    put_char b 'V';
    put_varint b pos;
    ec.put b value;
    put_tag b tag
  | Op.Nop -> put_char b 'N'

let get_op ec d =
  let* kind = get_char d in
  match kind with
  | 'I' ->
    let* pos = get_varint d in
    let* elt = ec.get d in
    let* pr = get_varint d in
    Ok (Op.ins ~pr pos elt)
  | 'D' ->
    let* pos = get_varint d in
    let* elt = ec.get d in
    Ok (Op.del pos elt)
  | 'R' ->
    let* pos = get_varint d in
    let* elt = ec.get d in
    Ok (Op.undel pos elt)
  | 'U' ->
    let* pos = get_varint d in
    let* before = ec.get d in
    let* after = ec.get d in
    let* tag = get_tag d in
    Ok (Op.up ~tag pos before after)
  | 'V' ->
    let* pos = get_varint d in
    let* value = ec.get d in
    let* tag = get_tag d in
    Ok (Op.unup ~tag pos value)
  | 'N' -> Ok Op.Nop
  | c -> Error (Printf.sprintf "unknown operation kind %C" c)

(* ----- Request ----- *)

let put_id b { Request.site; serial } =
  put_varint b site;
  put_varint b serial

let get_id d =
  let* site = get_varint d in
  let* serial = get_varint d in
  Ok { Request.site; serial }

let put_flag b f =
  put_char b
    (match f with
     | Request.Tentative -> 'T'
     | Request.Valid -> 'V'
     | Request.Invalid -> 'X')

let get_flag d =
  let* c = get_char d in
  match c with
  | 'T' -> Ok Request.Tentative
  | 'V' -> Ok Request.Valid
  | 'X' -> Ok Request.Invalid
  | c -> Error (Printf.sprintf "unknown request flag %C" c)

let put_request ec b (q : _ Request.t) =
  put_id b q.Request.id;
  put_option put_id b q.Request.dep;
  put_op ec b q.Request.op;
  put_op ec b q.Request.gen_op;
  put_vclock b q.Request.ctx;
  put_varint b q.Request.policy_version;
  put_flag b q.Request.flag

let get_request ec d =
  let* id = get_id d in
  let* dep = get_option get_id d in
  let* op = get_op ec d in
  let* gen_op = get_op ec d in
  let* ctx = get_vclock d in
  let* policy_version = get_varint d in
  let* flag = get_flag d in
  let q =
    Request.make ~site:id.Request.site ~serial:id.Request.serial ?dep ~op ~ctx
      ~policy_version ~flag ()
  in
  Ok { q with Request.gen_op }

(* ----- Policy components ----- *)

let put_subject b = function
  | Subject.Any -> put_char b 'A'
  | Subject.User u ->
    put_char b 'U';
    put_varint b u
  | Subject.Group g ->
    put_char b 'G';
    put_string b g

let get_subject d =
  let* c = get_char d in
  match c with
  | 'A' -> Ok Subject.Any
  | 'U' ->
    let* u = get_varint d in
    Ok (Subject.User u)
  | 'G' ->
    let* g = get_string d in
    Ok (Subject.Group g)
  | c -> Error (Printf.sprintf "unknown subject kind %C" c)

let put_docobj b = function
  | Docobj.Whole -> put_char b 'W'
  | Docobj.Element p ->
    put_char b 'E';
    put_varint b p
  | Docobj.Zone { lo; hi } ->
    put_char b 'Z';
    put_varint b lo;
    put_varint b hi
  | Docobj.Named n ->
    put_char b 'N';
    put_string b n

let get_docobj d =
  let* c = get_char d in
  match c with
  | 'W' -> Ok Docobj.Whole
  | 'E' ->
    let* p = get_varint d in
    Ok (Docobj.Element p)
  | 'Z' ->
    let* lo = get_varint d in
    let* hi = get_varint d in
    if lo > hi then Error "invalid zone bounds" else Ok (Docobj.zone lo hi)
  | 'N' ->
    let* n = get_string d in
    Ok (Docobj.Named n)
  | c -> Error (Printf.sprintf "unknown object kind %C" c)

let put_right b r = put_string b (Right.to_string r)

let get_right d =
  let* s = get_string d in
  match Right.of_string s with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "unknown right %S" s)

let put_auth b (a : Auth.t) =
  put_list put_subject b a.Auth.subjects;
  put_list put_docobj b a.Auth.objects;
  put_list put_right b a.Auth.rights;
  put_bool b (a.Auth.sign = Auth.Positive)

let get_auth d =
  let* subjects = get_list get_subject d in
  let* objects = get_list get_docobj d in
  let* rights = get_list get_right d in
  let* positive = get_bool d in
  if subjects = [] || objects = [] || rights = [] then
    Error "authorization with an empty component"
  else
    Ok (Auth.make ~subjects ~objects ~rights (if positive then Auth.Positive else Auth.Negative))

let put_policy b p =
  put_list put_varint b (Policy.users p);
  put_list (put_pair put_string (put_list put_varint)) b (Policy.groups p);
  put_list (put_pair put_string put_docobj) b (Policy.objects p);
  put_list put_auth b (Policy.auths p)

let get_policy d =
  let* users = get_list get_varint d in
  let* groups = get_list (get_pair get_string (get_list get_varint)) d in
  let* objects = get_list (get_pair get_string get_docobj) d in
  let* auths = get_list get_auth d in
  Ok (Policy.make ~users ~groups ~objects auths)

(* ----- Admin ----- *)

let put_admin_op b = function
  | Admin_op.Add_user u ->
    put_char b 'u';
    put_varint b u
  | Admin_op.Del_user u ->
    put_char b 'U';
    put_varint b u
  | Admin_op.Add_to_group (g, u) ->
    put_char b 'g';
    put_string b g;
    put_varint b u
  | Admin_op.Del_from_group (g, u) ->
    put_char b 'G';
    put_string b g;
    put_varint b u
  | Admin_op.Add_obj (n, o) ->
    put_char b 'o';
    put_string b n;
    put_docobj b o
  | Admin_op.Del_obj n ->
    put_char b 'O';
    put_string b n
  | Admin_op.Add_auth (p, a) ->
    put_char b 'a';
    put_varint b p;
    put_auth b a
  | Admin_op.Del_auth p ->
    put_char b 'A';
    put_varint b p
  | Admin_op.Validate id ->
    put_char b 'v';
    put_id b id
  | Admin_op.Transfer_admin u ->
    put_char b 't';
    put_varint b u

let get_admin_op d =
  let* c = get_char d in
  match c with
  | 'u' ->
    let* u = get_varint d in
    Ok (Admin_op.Add_user u)
  | 'U' ->
    let* u = get_varint d in
    Ok (Admin_op.Del_user u)
  | 'g' ->
    let* g = get_string d in
    let* u = get_varint d in
    Ok (Admin_op.Add_to_group (g, u))
  | 'G' ->
    let* g = get_string d in
    let* u = get_varint d in
    Ok (Admin_op.Del_from_group (g, u))
  | 'o' ->
    let* n = get_string d in
    let* o = get_docobj d in
    Ok (Admin_op.Add_obj (n, o))
  | 'O' ->
    let* n = get_string d in
    Ok (Admin_op.Del_obj n)
  | 'a' ->
    let* p = get_varint d in
    let* a = get_auth d in
    Ok (Admin_op.Add_auth (p, a))
  | 'A' ->
    let* p = get_varint d in
    Ok (Admin_op.Del_auth p)
  | 'v' ->
    let* id = get_id d in
    Ok (Admin_op.Validate id)
  | 't' ->
    let* u = get_varint d in
    Ok (Admin_op.Transfer_admin u)
  | c -> Error (Printf.sprintf "unknown administrative operation %C" c)

let put_admin_request b (r : Admin_op.request) =
  put_varint b r.Admin_op.admin;
  put_varint b r.Admin_op.version;
  put_admin_op b r.Admin_op.op;
  put_vclock b r.Admin_op.ctx

let get_admin_request d =
  let* admin = get_varint d in
  let* version = get_varint d in
  let* op = get_admin_op d in
  let* ctx = get_vclock d in
  Ok { Admin_op.admin; version; op; ctx }

(* ----- Messages ----- *)

(* An optional origin stamp rides in front of the message kind byte:
   'S', then origin site, origin wall-clock (ns since the epoch, fits
   the 63-bit varint range until ~2262) and a per-process trace id.
   Decoders that don't care ({!get_message}) skip it transparently, so
   stamped and unstamped messages — including pre-stamp journal records
   — share one wire format. *)

type stamp = { s_site : int; s_ns : int; s_tid : int }

let tid_counter = ref 0

let stamp_now ~site () =
  incr tid_counter;
  { s_site = site; s_ns = Dce_obs.Clock.now_ns (); s_tid = !tid_counter }

let put_stamp b s =
  put_char b 'S';
  put_varint b s.s_site;
  put_varint b s.s_ns;
  put_varint b s.s_tid

let put_message ?stamp ec b m =
  (match stamp with Some s -> put_stamp b s | None -> ());
  match m with
  | Controller.Coop q ->
    put_char b 'C';
    put_request ec b q
  | Controller.Admin r ->
    put_char b 'M';
    put_admin_request b r

let get_message_stamped ec d =
  let* c = get_char d in
  let* stamp, c =
    if c = 'S' then
      let* s_site = get_varint d in
      let* s_ns = get_varint d in
      let* s_tid = get_varint d in
      let* c = get_char d in
      Ok (Some { s_site; s_ns; s_tid }, c)
    else Ok (None, c)
  in
  match c with
  | 'C' ->
    let* q = get_request ec d in
    Ok (stamp, Controller.Coop q)
  | 'M' ->
    let* r = get_admin_request d in
    Ok (stamp, Controller.Admin r)
  | c -> Error (Printf.sprintf "unknown message kind %C" c)

let get_message ec d =
  let* _, m = get_message_stamped ec d in
  Ok m

let encode_message ?stamp ec m = frame (to_string (put_message ?stamp ec) m)

let decode_message ec s =
  let* payload = unframe s in
  of_string (get_message ec) payload

let decode_message_stamped ec s =
  let* payload = unframe s in
  of_string (get_message_stamped ec) payload

(* ----- Controller state ----- *)

let put_write ec b (w : _ Tdoc.write) =
  put_tag b w.Tdoc.wtag;
  ec.put b w.Tdoc.value;
  put_varint b w.Tdoc.retracted

let get_write ec d =
  let* wtag = get_tag d in
  let* value = ec.get d in
  let* retracted = get_varint d in
  Ok { Tdoc.wtag; value; retracted }

let put_cell ec b (c : _ Tdoc.cell) =
  ec.put b c.Tdoc.elt;
  put_list (put_write ec) b c.Tdoc.writes;
  put_varint b c.Tdoc.hidden

let get_cell ec d =
  let* elt = ec.get d in
  let* writes = get_list (get_write ec) d in
  let* hidden = get_varint d in
  Ok { Tdoc.elt; writes; hidden }

let put_entry ec b (e : _ Oplog.entry) =
  (match e.Oplog.role with
   | Oplog.Normal -> put_char b 'n'
   | Oplog.Canceller id ->
     put_char b 'c';
     put_id b id);
  put_request ec b e.Oplog.req

let get_entry ec d =
  let* c = get_char d in
  let* role =
    match c with
    | 'n' -> Ok Oplog.Normal
    | 'c' ->
      let* id = get_id d in
      Ok (Oplog.Canceller id)
    | c -> Error (Printf.sprintf "unknown log entry role %C" c)
  in
  let* req = get_request ec d in
  Ok { Oplog.role; req }

let put_features b (f : Controller.features) =
  put_bool b f.Controller.retroactive_undo;
  put_bool b f.Controller.interval_check;
  put_bool b f.Controller.validation

let get_features d =
  let* retroactive_undo = get_bool d in
  let* interval_check = get_bool d in
  let* validation = get_bool d in
  Ok { Controller.retroactive_undo; interval_check; validation }

let put_state ec b (s : _ Controller.state) =
  put_varint b s.Controller.st_site;
  put_features b s.Controller.st_features;
  put_list (put_cell ec) b s.Controller.st_doc;
  put_list (put_entry ec) b s.Controller.st_oplog;
  put_vclock b s.Controller.st_compacted;
  put_vclock b s.Controller.st_clock;
  put_varint b s.Controller.st_serial;
  put_policy b s.Controller.st_initial_policy;
  put_varint b s.Controller.st_initial_admin;
  put_list put_admin_request b s.Controller.st_admin_requests;
  put_list (put_request ec) b s.Controller.st_coop_queue;
  put_list put_admin_request b s.Controller.st_admin_queue;
  let put_bound = put_pair put_varint (put_pair put_vclock put_varint) in
  put_list put_bound b s.Controller.st_peer_integrated;
  put_list put_bound b s.Controller.st_peer_admin_hint;
  put_list put_bound b s.Controller.st_peer_beacon

let get_state ec d =
  let* st_site = get_varint d in
  let* st_features = get_features d in
  let* st_doc = get_list (get_cell ec) d in
  let* st_oplog = get_list (get_entry ec) d in
  let* st_compacted = get_vclock d in
  let* st_clock = get_vclock d in
  let* st_serial = get_varint d in
  let* st_initial_policy = get_policy d in
  let* st_initial_admin = get_varint d in
  let* st_admin_requests = get_list get_admin_request d in
  let* st_coop_queue = get_list (get_request ec) d in
  let* st_admin_queue = get_list get_admin_request d in
  let get_bound = get_pair get_varint (get_pair get_vclock get_varint) in
  let* st_peer_integrated = get_list get_bound d in
  let* st_peer_admin_hint = get_list get_bound d in
  let* st_peer_beacon = get_list get_bound d in
  Ok
    {
      Controller.st_site;
      st_features;
      st_doc;
      st_oplog;
      st_compacted;
      st_clock;
      st_serial;
      st_initial_policy;
      st_initial_admin;
      st_admin_requests;
      st_coop_queue;
      st_admin_queue;
      st_peer_integrated;
      st_peer_admin_hint;
      st_peer_beacon;
    }

let encode_state ec s = frame (to_string (put_state ec) s)

let decode_state ec s =
  let* payload = unframe s in
  of_string (get_state ec) payload

let fingerprint ec c =
  Digest.to_hex (Digest.string (encode_state ec (Controller.dump c)))

let content_fingerprint ec c =
  (* Covers what every converged replica must agree on — the visible
     document, the policy and the policy version — and nothing
     site-local (site id, serials, peer tables), so two relays hosting
     the same session under different relay sites compare equal. *)
  let b = Buffer.create 256 in
  put_list ec.put b (Controller.visible c);
  put_policy b (Controller.policy c);
  put_varint b (Controller.version c);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ----- stability beacons (frontier gossip) ----- *)

type beacon = { b_site : int; b_clock : Vclock.t; b_version : int }

let put_beacon b (x : beacon) =
  put_varint b x.b_site;
  put_vclock b x.b_clock;
  put_varint b x.b_version

let get_beacon d =
  let* b_site = get_varint d in
  let* b_clock = get_vclock d in
  let* b_version = get_varint d in
  Ok { b_site; b_clock; b_version }

let encode_frontier f = frame (to_string (put_list put_beacon) f)

let decode_frontier s =
  let* payload = unframe s in
  of_string (get_list get_beacon) payload

(* ----- delta catch-up blobs ----- *)

let put_delta ec b (d : _ Controller.delta) =
  put_vclock b d.Controller.dl_clock;
  put_varint b d.Controller.dl_version;
  put_vclock b d.Controller.dl_compacted;
  put_list put_admin_request b d.Controller.dl_admin;
  put_list (put_request ec) b d.Controller.dl_coop;
  put_list (put_request ec) b d.Controller.dl_coop_queue;
  put_list put_admin_request b d.Controller.dl_admin_queue

let get_delta ec d =
  let* dl_clock = get_vclock d in
  let* dl_version = get_varint d in
  let* dl_compacted = get_vclock d in
  let* dl_admin = get_list get_admin_request d in
  let* dl_coop = get_list (get_request ec) d in
  let* dl_coop_queue = get_list (get_request ec) d in
  let* dl_admin_queue = get_list get_admin_request d in
  Ok
    {
      Controller.dl_clock;
      dl_version;
      dl_compacted;
      dl_admin;
      dl_coop;
      dl_coop_queue;
      dl_admin_queue;
    }

let encode_delta ec d = frame (to_string (put_delta ec) d)

let decode_delta ec s =
  let* payload = unframe s in
  of_string (get_delta ec) payload

module Char_proto = struct
  let encode_message ?stamp m = encode_message ?stamp char_codec m
  let decode_message = decode_message char_codec
  let decode_message_stamped = decode_message_stamped char_codec
  let encode_state = encode_state char_codec
  let decode_state = decode_state char_codec
  let encode_delta = encode_delta char_codec
  let decode_delta = decode_delta char_codec

  let save path c =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (encode_state (Controller.dump c)))

  let restore ?trace path =
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match decode_state data with
    | Error _ as e -> e
    | Ok state -> Controller.load ~eq:Char.equal ?trace state
end
