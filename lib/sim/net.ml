type latency = Fixed of int | Uniform of int * int

module Key = struct
  (* deliveries ordered by (time, sequence) *)
  type t = int * int

  let compare = compare
end

module Q = Map.Make (Key)

type 'm t = {
  fifo : bool;
  latency : latency;
  drop : float; (* per-message loss probability; breaks §3.3, chaos only *)
  dup : float; (* per-message duplication probability *)
  sites : int list;
  queue : (int * int * 'm) Q.t; (* key -> destination, enqueue time, message *)
  seq : int;
  last_on_link : ((int * int) * int) list; (* (src,dst) -> last delivery time *)
  dropped : int;
  duplicated : int;
}

let create ?(fifo = false) ?(drop = 0.) ?(dup = 0.) ~latency ~sites () =
  if drop < 0. || drop > 1. || dup < 0. || dup > 1. then
    invalid_arg "Net.create: probabilities must lie in [0,1]";
  {
    fifo;
    latency;
    drop;
    dup;
    sites;
    queue = Q.empty;
    seq = 0;
    last_on_link = [];
    dropped = 0;
    duplicated = 0;
  }

let dropped t = t.dropped
let duplicated t = t.duplicated

let draw_latency t rng =
  match t.latency with
  | Fixed d -> (d, rng)
  | Uniform (lo, hi) -> Rng.in_range rng lo hi

let enqueue_one t rng ~now ~src ~dst m =
  let d, rng = draw_latency t rng in
  let at = now + d in
  let at, last_on_link =
    if not t.fifo then (at, t.last_on_link)
    else
      let key = (src, dst) in
      let prev = Option.value ~default:min_int (List.assoc_opt key t.last_on_link) in
      let at = max at prev in
      (at, (key, at) :: List.remove_assoc key t.last_on_link)
  in
  ( {
      t with
      queue = Q.add (at, t.seq) (dst, now, m) t.queue;
      seq = t.seq + 1;
      last_on_link;
    },
    rng )

let send t rng ~now ~src ~dst m =
  let lose, rng = if t.drop > 0. then Rng.bool rng t.drop else (false, rng) in
  if lose then ({ t with dropped = t.dropped + 1 }, rng)
  else
    let t, rng = enqueue_one t rng ~now ~src ~dst m in
    let again, rng = if t.dup > 0. then Rng.bool rng t.dup else (false, rng) in
    if again then
      let t, rng = enqueue_one t rng ~now ~src ~dst m in
      ({ t with duplicated = t.duplicated + 1 }, rng)
    else (t, rng)

let broadcast t rng ~now ~src m =
  List.fold_left
    (fun (t, rng) dst -> if dst = src then (t, rng) else send t rng ~now ~src ~dst m)
    (t, rng) t.sites

type 'm delivery = { at : int; dst : int; sent_at : int; msg : 'm }

let pop_delivery t =
  match Q.min_binding_opt t.queue with
  | None -> None
  | Some (((time, _) as key), (dst, sent_at, m)) ->
    Some ({ at = time; dst; sent_at; msg = m }, { t with queue = Q.remove key t.queue })

let pop t =
  match pop_delivery t with
  | None -> None
  | Some (d, t) -> Some ((d.at, d.dst, d.msg), t)

let peek_time t =
  match Q.min_binding_opt t.queue with Some (((time, _), _)) -> Some time | None -> None

let in_flight t = Q.cardinal t.queue

let partition_heal t ~now =
  let queue, seq =
    Q.fold
      (fun _ v (q, seq) -> (Q.add (now, seq) v q, seq + 1))
      t.queue (Q.empty, t.seq)
  in
  { t with queue; seq }
