type latency = Fixed of int | Uniform of int * int

module Key = struct
  (* deliveries ordered by (time, sequence) *)
  type t = int * int

  let compare = compare
end

module Q = Map.Make (Key)

type 'm t = {
  fifo : bool;
  latency : latency;
  sites : int list;
  queue : (int * int * 'm) Q.t; (* key -> destination, enqueue time, message *)
  seq : int;
  last_on_link : ((int * int) * int) list; (* (src,dst) -> last delivery time *)
}

let create ?(fifo = false) ~latency ~sites () =
  { fifo; latency; sites; queue = Q.empty; seq = 0; last_on_link = [] }

let draw_latency t rng =
  match t.latency with
  | Fixed d -> (d, rng)
  | Uniform (lo, hi) -> Rng.in_range rng lo hi

let send t rng ~now ~src ~dst m =
  let d, rng = draw_latency t rng in
  let at = now + d in
  let at, last_on_link =
    if not t.fifo then (at, t.last_on_link)
    else
      let key = (src, dst) in
      let prev = Option.value ~default:min_int (List.assoc_opt key t.last_on_link) in
      let at = max at prev in
      (at, (key, at) :: List.remove_assoc key t.last_on_link)
  in
  ( {
      t with
      queue = Q.add (at, t.seq) (dst, now, m) t.queue;
      seq = t.seq + 1;
      last_on_link;
    },
    rng )

let broadcast t rng ~now ~src m =
  List.fold_left
    (fun (t, rng) dst -> if dst = src then (t, rng) else send t rng ~now ~src ~dst m)
    (t, rng) t.sites

type 'm delivery = { at : int; dst : int; sent_at : int; msg : 'm }

let pop_delivery t =
  match Q.min_binding_opt t.queue with
  | None -> None
  | Some (((time, _) as key), (dst, sent_at, m)) ->
    Some ({ at = time; dst; sent_at; msg = m }, { t with queue = Q.remove key t.queue })

let pop t =
  match pop_delivery t with
  | None -> None
  | Some (d, t) -> Some ((d.at, d.dst, d.msg), t)

let peek_time t =
  match Q.min_binding_opt t.queue with Some (((time, _), _)) -> Some time | None -> None

let in_flight t = Q.cardinal t.queue

let partition_heal t ~now =
  let queue, seq =
    Q.fold
      (fun _ v (q, seq) -> (Q.add (now, seq) v q, seq + 1))
      t.queue (Q.empty, t.seq)
  in
  { t with queue; seq }
