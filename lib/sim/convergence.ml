open Dce_ot
open Dce_core

type report = {
  documents_agree : bool;
  versions_agree : bool;
  policies_agree : bool;
  queues_empty : bool;
  no_tentative_left : bool;
  flags_agree : bool;
}

let trivial =
  {
    documents_agree = true;
    versions_agree = true;
    policies_agree = true;
    queues_empty = true;
    no_tentative_left = true;
    flags_agree = true;
  }

(* Positions a policy decision can depend on in practice: the probe set
   used to compare policies by observable behaviour. *)
let probe_positions = [ None; Some 0; Some 1; Some 5; Some 50 ]

(* Policies are compared by their observable behaviour on the finite
   relevant domain: registered users × rights × positions-of-interest
   (authorization lists can differ syntactically after permissive
   deletions while still deciding identically). *)
let policies_equal a b =
  let users = List.sort_uniq compare (Policy.users a @ Policy.users b) in
  List.for_all
    (fun u ->
      List.for_all
        (fun r ->
          List.for_all
            (fun pos -> Policy.check a ~user:u ~right:r ~pos = Policy.check b ~user:u ~right:r ~pos)
            probe_positions)
        Right.all)
    users
  && Policy.auth_count a = Policy.auth_count b

(* logs may have been garbage-collected at different points, so compare
   the fates of the requests two sites both still store *)
let flags c =
  List.map
    (fun (q : char Request.t) -> (q.Request.id, q.Request.flag))
    (Oplog.requests (Controller.oplog c))

let check controllers =
  match controllers with
  (* Degenerate sessions are trivially convergent: nothing to compare an
     empty group against, and a single site always agrees with itself.
     Explicit so callers need not rely on fold behaviour over [rest]. *)
  | [] | [ _ ] -> trivial
  | c0 :: rest ->
    let documents_agree =
      List.for_all
        (fun c ->
          Tdoc.equal_model Char.equal (Controller.document c0) (Controller.document c))
        rest
    in
    let versions_agree =
      List.for_all (fun c -> Controller.version c = Controller.version c0) rest
    in
    let policies_agree =
      List.for_all (fun c -> policies_equal (Controller.policy c0) (Controller.policy c)) rest
    in
    let queues_empty =
      List.for_all
        (fun c -> Controller.pending_coop c = 0 && Controller.pending_admin c = 0)
        controllers
    in
    let no_tentative_left =
      List.for_all (fun c -> Controller.tentative c = []) controllers
    in
    let flags_agree =
      let f0 = flags c0 in
      List.for_all
        (fun c ->
          List.for_all
            (fun (id, flag) ->
              match List.assoc_opt id f0 with
              | Some flag0 -> flag = flag0
              | None -> true)
            (flags c))
        rest
    in
    {
      documents_agree;
      versions_agree;
      policies_agree;
      queues_empty;
      no_tentative_left;
      flags_agree;
    }

let ok r =
  r.documents_agree && r.versions_agree && r.policies_agree && r.queues_empty
  && r.no_tentative_left && r.flags_agree

let pp ppf r =
  let b ppf v = Format.pp_print_string ppf (if v then "yes" else "NO") in
  Format.fprintf ppf
    "@[<v>documents agree: %a@ versions agree: %a@ policies agree: %a@ queues empty: \
     %a@ no tentative left: %a@ flags agree: %a@]"
    b r.documents_agree b r.versions_agree b r.policies_agree b r.queues_empty b
    r.no_tentative_left b r.flags_agree

(* ----- diagnosis: name the first divergent site pair and what differs ----- *)

(* The first element of [rest] that disagrees with [c0] under [differs],
   paired with what makes them disagree. *)
let first_divergent c0 rest differs =
  List.find_map (fun c -> Option.map (fun w -> (c, w)) (differs c0 c)) rest

let doc_diff c0 c =
  let m0 = Tdoc.model_list (Controller.document c0) in
  let m = Tdoc.model_list (Controller.document c) in
  let cell_pp ppf (cell : char Tdoc.cell) =
    Format.fprintf ppf "%c%s" cell.Tdoc.elt
      (if cell.Tdoc.hidden > 0 then Printf.sprintf "(hidden x%d)" cell.Tdoc.hidden
       else "")
  in
  let rec first_cell i = function
    | [], [] -> None
    | a :: _, [] ->
      Some (Format.asprintf "model cell %d: %a vs <absent>" i cell_pp a)
    | [], b :: _ ->
      Some (Format.asprintf "model cell %d: <absent> vs %a" i cell_pp b)
    | a :: ra, b :: rb ->
      (* the same equality [check] uses: write lists are in arrival
         order, which legitimately differs across converged sites *)
      if Tdoc.equal_cell Char.equal a b then first_cell (i + 1) (ra, rb)
      else Some (Format.asprintf "model cell %d: %a vs %a" i cell_pp a cell_pp b)
  in
  match first_cell 0 (m0, m) with
  | None -> None
  | Some frag ->
    Some
      (Format.asprintf "documents differ at %s; visible %S vs %S" frag
         (Tdoc.visible_string (Controller.document c0))
         (Tdoc.visible_string (Controller.document c)))

let policy_diff c0 c =
  let a = Controller.policy c0 and b = Controller.policy c in
  if policies_equal a b then None
  else
    let users = List.sort_uniq compare (Policy.users a @ Policy.users b) in
    let probe =
      List.find_map
        (fun u ->
          List.find_map
            (fun r ->
              List.find_map
                (fun pos ->
                  let da = Policy.check a ~user:u ~right:r ~pos
                  and db = Policy.check b ~user:u ~right:r ~pos in
                  if da = db then None
                  else
                    Some
                      (Format.asprintf
                         "decision for user %d, right %a, pos %s: %b vs %b" u
                         Right.pp r
                         (match pos with None -> "-" | Some p -> string_of_int p)
                         da db))
                probe_positions)
            Right.all)
        users
    in
    (match probe with
     | Some d -> Some ("policies differ: " ^ d)
     | None ->
       Some
         (Printf.sprintf "policies differ: %d vs %d authorizations (same decisions)"
            (Policy.auth_count a) (Policy.auth_count b)))

let version_diff c0 c =
  if Controller.version c0 = Controller.version c then None
  else
    Some
      (Printf.sprintf "policy versions differ: %d vs %d" (Controller.version c0)
         (Controller.version c))

let flag_diff c0 c =
  let f0 = flags c0 in
  List.find_map
    (fun (id, flag) ->
      match List.assoc_opt id f0 with
      | Some flag0 when flag <> flag0 ->
        Some
          (Format.asprintf "request q%a is %a vs %a" Request.pp_id id Request.pp_flag
             flag0 Request.pp_flag flag)
      | _ -> None)
    (flags c)

let explain controllers =
  match controllers with
  | [] | [ _ ] -> None
  | c0 :: rest ->
    let pair_diag differs prefix =
      Option.map
        (fun (c, what) ->
          Format.asprintf "%ssites %d and %d: %s" prefix (Controller.site c0)
            (Controller.site c) what)
        (first_divergent c0 rest differs)
    in
    let site_diag pred describe prefix =
      Option.map
        (fun c -> Format.asprintf "%ssite %d: %s" prefix (Controller.site c) (describe c))
        (List.find_opt pred controllers)
    in
    let checks =
      [
        (fun () -> pair_diag doc_diff "");
        (fun () -> pair_diag version_diff "");
        (fun () -> pair_diag policy_diff "");
        (fun () ->
          site_diag
            (fun c -> Controller.pending_coop c > 0 || Controller.pending_admin c > 0)
            (fun c ->
              Printf.sprintf "%d cooperative and %d administrative requests still queued"
                (Controller.pending_coop c) (Controller.pending_admin c))
            "");
        (fun () ->
          site_diag
            (fun c -> Controller.tentative c <> [])
            (fun c ->
              Format.asprintf "tentative requests left: %a"
                (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                   (fun ppf (q : char Request.t) -> Request.pp_id ppf q.Request.id))
                (Controller.tentative c))
            "");
        (fun () -> pair_diag flag_diff "");
      ]
    in
    List.find_map (fun f -> f ()) checks

let pp_diff ppf controllers =
  match explain controllers with
  | None -> Format.pp_print_string ppf "all oracles hold"
  | Some msg -> Format.pp_print_string ppf msg
