open Dce_ot
open Dce_core

type stats = {
  edits_generated : int;
  edits_denied_locally : int;
  admin_requests : int;
  restrictive_requests : int;
  messages_delivered : int;
  invalidated : int;
  validated : int;
  crashes : int;
}

type crash = { site : int; at : int; restart_at : int }

type result = {
  controllers : char Controller.t list;
  stats : stats;
  final_time : int;
}

type state = {
  controllers : char Controller.t array; (* index = site id *)
  net : char Controller.message Net.t;
  rng : Rng.t;
  time : int;
  next_edit : int array; (* per site; sites 1..n are users, 0 is admin *)
  next_admin : int option;
  stats : stats;
}

let zero_stats =
  {
    edits_generated = 0;
    edits_denied_locally = 0;
    admin_requests = 0;
    restrictive_requests = 0;
    messages_delivered = 0;
    invalidated = 0;
    validated = 0;
    crashes = 0;
  }

(* Sample an operation in visible coordinates from the profile's mix.
   Deletions and updates need a non-empty visible document. *)
let sample_op rng (m : Workload.op_mix) doc =
  let n = Tdoc.visible_length doc in
  let letter rng =
    let i, rng = Rng.int rng 26 in
    (Char.chr (97 + i), rng)
  in
  let choice, rng =
    if n = 0 then (`Ins, rng)
    else
      Rng.weighted rng [ (m.Workload.ins, `Ins); (m.Workload.del, `Del); (m.Workload.up, `Up) ]
  in
  match choice with
  | `Ins ->
    let p, rng = Rng.int rng (n + 1) in
    let c, rng = letter rng in
    (Tdoc.ins_visible doc p c, rng)
  | `Del ->
    let p, rng = Rng.int rng n in
    (Tdoc.del_visible doc p, rng)
  | `Up ->
    let p, rng = Rng.int rng n in
    let c, rng = letter rng in
    (Tdoc.up_visible doc p (Char.uppercase_ascii c), rng)

(* The simulated administrator toggles per-user denials: a restrictive
   action inserts a negative authorization for one user and one right at
   the top of the policy; a permissive action removes one of the negative
   authorizations currently present. *)
let sample_admin_op rng ~revoke_bias ~handoff_prob ~users policy =
  let handoff, rng = Rng.bool rng handoff_prob in
  if handoff then
    let u, rng = Rng.pick rng users in
    (Admin_op.Transfer_admin u, rng)
  else
  let negatives =
    List.filteri (fun _ a -> Auth.is_restrictive a) (Policy.auths policy)
  in
  let indices_of_negatives =
    List.filteri (fun _ _ -> true) (Policy.auths policy)
    |> List.mapi (fun i a -> (i, a))
    |> List.filter (fun (_, a) -> Auth.is_restrictive a)
    |> List.map fst
  in
  let restrictive, rng = Rng.bool rng revoke_bias in
  if restrictive || negatives = [] then begin
    let u, rng = Rng.pick rng users in
    let right, rng = Rng.pick rng [ Right.Insert; Right.Delete; Right.Update ] in
    (Admin_op.Add_auth (0, Auth.deny [ Subject.User u ] [ Docobj.Whole ] [ right ]), rng)
  end
  else
    let i, rng = Rng.pick rng indices_of_negatives in
    (Admin_op.Del_auth i, rng)

let pp_msg ppf = function
  | Controller.Coop q -> Request.pp Fmt.char ppf q
  | Controller.Admin r -> Admin_op.pp_request ppf r

module M = Dce_obs.Metrics
module T = Dce_obs.Trace

let run ?trace ?(features = Controller.secure) ?policy ?sink ?metrics
    ?(crashes = []) (p : Workload.profile) ~seed =
  let tr fmt =
    match trace with
    | None -> Format.ifprintf Format.std_formatter fmt
    | Some ppf -> Format.fprintf ppf fmt
  in
  let nsites = p.Workload.users + 1 in
  let sites = List.init nsites Fun.id in
  let users = List.tl sites in
  let policy =
    match policy with
    | Some pol -> pol
    | None ->
      Policy.make ~users:sites [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  (* Telemetry.  The registry mirrors the returned [stats]; the
     [invalidated]/[validated] fields are derived from the controller's
     own trace events at site 0 (not hand-kept counts), so the stats and
     the telemetry stream cannot disagree. *)
  let metrics = match metrics with Some m -> m | None -> M.create () in
  let m_invalidated = M.counter metrics "controller.invalidated"
  and m_validated = M.counter metrics "controller.validated"
  and m_denied_local = M.counter metrics "controller.denied_local"
  and m_edits = M.counter metrics "sim.edits_generated"
  and m_delivered = M.counter metrics "net.delivered"
  and m_latency = M.histogram metrics "net.latency_vms"
  and m_queue = M.histogram metrics "net.queue_depth"
  and m_deliver_ns = M.histogram metrics "sim.deliver_ns"
  and m_generate_ns = M.histogram metrics "sim.generate_ns" in
  let invalidated = ref 0 and validated = ref 0 in
  let counting =
    T.callback (fun e ->
        if e.T.site = 0 then
          match e.T.kind with
          | T.Invalidate _ | T.Retroactive_undo _ ->
            incr invalidated;
            M.incr m_invalidated
          | T.Validate _ | T.Deliver { valid = true; _ } | T.Generate { valid = true; _ }
            ->
            incr validated;
            M.incr m_validated
          | _ -> ())
  in
  let sink = match sink with None -> counting | Some s -> T.tee counting s in
  let doc0 = Tdoc.of_string p.Workload.initial_text in
  let controllers =
    Array.init nsites (fun i ->
        Controller.create ~eq:Char.equal ~features ~trace:sink ~site:i ~admin:0 ~policy
          doc0)
  in
  let broadcast_from st src msgs =
    List.fold_left
      (fun st m ->
        (let c = st.controllers.(src) in
         T.emit sink ~site:src ~clock:(Controller.clock c)
           ~version:(Controller.version c)
           (T.Broadcast
              {
                targets = nsites - 1;
                coop = (match m with Controller.Coop _ -> true | Controller.Admin _ -> false);
              }));
        let net, rng = Net.broadcast st.net st.rng ~now:st.time ~src m in
        { st with net; rng })
      st msgs
  in
  let rng = Rng.of_int seed in
  let schedule rng (lo, hi) now =
    let d, rng = Rng.in_range rng lo hi in
    (now + d, rng)
  in
  let rng, next_edit =
    let r = ref rng in
    let arr =
      Array.init nsites (fun i ->
          if i = 0 then max_int (* the administrator does not edit in profiles *)
          else begin
            let t, r' = schedule !r p.Workload.edit_interval 0 in
            r := r';
            t
          end)
    in
    (!r, arr)
  in
  let next_admin, rng =
    match p.Workload.admin_interval with
    | None -> (None, rng)
    | Some iv ->
      let t, rng = schedule rng iv 0 in
      (Some t, rng)
  in
  let st =
    ref
      {
        controllers;
        net = Net.create ~fifo:p.Workload.fifo ~latency:p.Workload.latency ~sites ();
        rng;
        time = 0;
        next_edit;
        next_admin;
        stats = zero_stats;
      }
  in
  (* Crash-restart fault injection.  A crash captures the site's full
     serialized state — the same bytes a [Dce_store] snapshot would hold
     — and marks the site down; its restart decodes and [Controller.load]s
     that state (so the round trip itself is under test) and re-delivers
     the messages that arrived while it was down, the way a durable
     relay would.  Anything wrong with the serialization surfaces as a
     [Failure] here, never as silent divergence. *)
  let down = Array.make nsites false in
  let blobs = Array.make nsites None in
  let parked : char Controller.message list array = Array.make nsites [] in
  let pending_crashes =
    ref (List.sort (fun a b -> compare a.at b.at) crashes)
  in
  let pending_restarts = ref [] in
  let deliver_one (d : _ Net.delivery) =
    let s = !st in
    let time = d.Net.at and dst = d.Net.dst and msg = d.Net.msg in
    if down.(dst) then begin
      (* held for redelivery at restart *)
      parked.(dst) <- msg :: parked.(dst);
      st := { s with time }
    end
    else begin
    tr "t=%d DELIVER to %d: %a@." time dst pp_msg msg;
    M.observe m_latency (d.Net.at - d.Net.sent_at);
    M.observe m_queue (Net.in_flight s.net);
    let t0 = if M.enabled metrics then Dce_obs.Clock.now_ns () else 0 in
    let c, emitted = Controller.receive s.controllers.(dst) msg in
    if M.enabled metrics then M.observe m_deliver_ns (Dce_obs.Clock.now_ns () - t0);
    M.incr m_delivered;
    let c =
      match p.Workload.compact_every with
      | Some every when (s.stats.messages_delivered + 1) mod every = 0 ->
        (* a compaction round models the live protocol's cadence: first
           absorb a stability beacon from every up site (their current
           clock and policy version — what the wire's Beacon frame
           carries), then cut at the causally-stable frontier.  Without
           the beacons, sites that delivered everything but generated
           nothing recently would pin the frontier at their last edit. *)
        let c = ref c in
        Array.iteri
          (fun peer_site peer ->
            if peer_site <> dst && not down.(peer_site) then begin
              let clock, version = Controller.beacon peer in
              c :=
                Controller.receive_beacon !c ~peer:(Controller.site peer) ~clock
                  ~version
            end)
          s.controllers;
        Controller.compact !c
      | _ -> c
    in
    tr "  -> site %d doc=%S version=%d@." dst
      (Tdoc.visible_string (Controller.document c))
      (Controller.version c);
    s.controllers.(dst) <- c;
    let s = { s with time; stats = { s.stats with messages_delivered = s.stats.messages_delivered + 1 } } in
    st := broadcast_from s dst emitted
    end
  in
  let do_crash site =
    let s = !st in
    if not down.(site) then begin
      let c = s.controllers.(site) in
      tr "t=%d CRASH site %d@." s.time site;
      T.emit sink ~site ~clock:(Controller.clock c)
        ~version:(Controller.version c)
        (T.Net { peer = site; action = "crash"; detail = "" });
      blobs.(site) <-
        Some (Dce_wire.Proto.encode_state Dce_wire.Proto.char_codec (Controller.dump c));
      down.(site) <- true;
      s.next_edit.(site) <- max_int;
      st := { s with stats = { s.stats with crashes = s.stats.crashes + 1 } }
    end
  in
  let do_restart site =
    let s = !st in
    if down.(site) then begin
      let c =
        match blobs.(site) with
        | None -> failwith "sim restart: no state captured at crash"
        | Some blob -> (
          match
            Dce_wire.Proto.decode_state Dce_wire.Proto.char_codec blob
          with
          | Error e -> failwith ("sim restart: state does not decode: " ^ e)
          | Ok state -> (
            match Controller.load ~eq:Char.equal ~trace:sink state with
            | Error e -> failwith ("sim restart: state does not load: " ^ e)
            | Ok c -> c))
      in
      down.(site) <- false;
      blobs.(site) <- None;
      s.controllers.(site) <- c;
      tr "t=%d RESTART site %d@." s.time site;
      T.emit sink ~site ~clock:(Controller.clock c)
        ~version:(Controller.version c)
        (T.Net { peer = site; action = "restart"; detail = "" });
      (* redeliver what arrived while the site was down *)
      let held = List.rev parked.(site) in
      parked.(site) <- [];
      List.iter
        (fun msg ->
          let s = !st in
          let c, emitted = Controller.receive s.controllers.(site) msg in
          s.controllers.(site) <- c;
          M.incr m_delivered;
          let s =
            {
              s with
              stats =
                {
                  s.stats with
                  messages_delivered = s.stats.messages_delivered + 1;
                };
            }
          in
          st := broadcast_from s site emitted)
        held;
      if site <> 0 then begin
        let s = !st in
        let t, rng = schedule s.rng p.Workload.edit_interval s.time in
        s.next_edit.(site) <- (if t <= p.Workload.duration then t else max_int);
        st := { s with rng }
      end
    end
  in
  let do_edit i =
    let s = !st in
    let c = s.controllers.(i) in
    let op, rng = sample_op s.rng p.Workload.op_mix (Controller.document c) in
    let s = { s with rng } in
    tr "t=%d EDIT site %d: %a@." s.time i (Op.pp Fmt.char) op;
    let t0 = if M.enabled metrics then Dce_obs.Clock.now_ns () else 0 in
    let outcome = Controller.generate c op in
    if M.enabled metrics then M.observe m_generate_ns (Dce_obs.Clock.now_ns () - t0);
    let s =
      match outcome with
      | c, Controller.Accepted m ->
        tr "  -> accepted, doc=%S@." (Tdoc.visible_string (Controller.document c));
        s.controllers.(i) <- c;
        M.incr m_edits;
        let s =
          { s with stats = { s.stats with edits_generated = s.stats.edits_generated + 1 } }
        in
        broadcast_from s i [ m ]
      | _, Controller.Denied _ ->
        M.incr m_denied_local;
        {
          s with
          stats =
            { s.stats with edits_denied_locally = s.stats.edits_denied_locally + 1 };
        }
    in
    (* reschedule *)
    let t, rng = schedule s.rng p.Workload.edit_interval s.time in
    s.next_edit.(i) <- (if t <= p.Workload.duration then t else max_int);
    st := { s with rng }
  in
  let do_admin () =
    let s = !st in
    (* the administrator role may have been delegated: act from the site
       that currently believes it holds it (possibly none, mid-handoff) *)
    let holder = ref None in
    Array.iteri
      (fun i c ->
        if !holder = None && (not down.(i)) && Controller.is_admin c then
          holder := Some i)
      s.controllers;
    match !holder with
    | None ->
      (* role in flight: try again shortly, or give up past the horizon *)
      let t, rng = schedule s.rng (10, 30) s.time in
      st :=
        { s with rng; next_admin = (if t <= p.Workload.duration then Some t else None) }
    | Some i ->
    let c = s.controllers.(i) in
    let op, rng =
      sample_admin_op s.rng ~revoke_bias:p.Workload.revoke_bias
        ~handoff_prob:p.Workload.handoff_prob ~users (Controller.policy c)
    in
    let s = { s with rng } in
    tr "t=%d ADMIN(site %d): %a@." s.time i Admin_op.pp op;
    let s =
      match Controller.admin_update c op with
      | Ok (c, m) ->
        tr "  -> version %d, doc=%S@." (Controller.version c)
          (Tdoc.visible_string (Controller.document c));
        s.controllers.(i) <- c;
        let restrictive = if Admin_op.is_restrictive op then 1 else 0 in
        let s =
          {
            s with
            stats =
              {
                s.stats with
                admin_requests = s.stats.admin_requests + 1;
                restrictive_requests = s.stats.restrictive_requests + restrictive;
              };
          }
        in
        broadcast_from s i [ m ]
      | Error _ -> s
    in
    let next_admin, rng =
      match p.Workload.admin_interval with
      | None -> (None, s.rng)
      | Some iv ->
        let t, rng = schedule s.rng iv s.time in
        ((if t <= p.Workload.duration then Some t else None), rng)
    in
    st := { s with next_admin; rng }
  in
  (* main loop: next event among edits, admin actions, deliveries,
     crashes and restarts (restarts win ties so a site is back up before
     anything else happens at the same instant) *)
  let rec loop () =
    let s = !st in
    let next_edit_time = Array.fold_left min max_int s.next_edit in
    let next_admin_time = Option.value ~default:max_int s.next_admin in
    let next_delivery = Option.value ~default:max_int (Net.peek_time s.net) in
    let next_crash_time =
      match !pending_crashes with [] -> max_int | c :: _ -> c.at
    in
    let next_restart_time =
      match !pending_restarts with [] -> max_int | (t, _) :: _ -> t
    in
    let t =
      min
        (min (min next_edit_time next_admin_time) next_delivery)
        (min next_crash_time next_restart_time)
    in
    if t = max_int then ()
    else if t = next_restart_time then begin
      match !pending_restarts with
      | [] -> ()
      | (_, site) :: rest ->
        pending_restarts := rest;
        st := { s with time = t };
        do_restart site;
        loop ()
    end
    else if t = next_crash_time then begin
      match !pending_crashes with
      | [] -> ()
      | c :: rest ->
        pending_crashes := rest;
        pending_restarts :=
          List.sort compare ((c.restart_at, c.site) :: !pending_restarts);
        st := { s with time = t };
        do_crash c.site;
        loop ()
    end
    else if t = next_delivery then begin
      match Net.pop_delivery s.net with
      | None -> ()
      | Some (d, net) ->
        st := { s with net; time = t };
        deliver_one d;
        loop ()
    end
    else if t = next_admin_time then begin
      st := { s with time = t };
      do_admin ();
      loop ()
    end
    else begin
      let i = ref 0 in
      Array.iteri (fun j tj -> if tj = t then i := j) s.next_edit;
      st := { s with time = t };
      do_edit !i;
      loop ()
    end
  in
  loop ();
  let s = !st in
  {
    controllers = Array.to_list s.controllers;
    stats = { s.stats with invalidated = !invalidated; validated = !validated };
    final_time = s.time;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>edits generated: %d@ denied locally: %d@ admin requests: %d (restrictive %d)@ \
     messages delivered: %d@ invalidated: %d@ validated: %d@ crashes: %d@]"
    s.edits_generated s.edits_denied_locally s.admin_requests s.restrictive_requests
    s.messages_delivered s.invalidated s.validated s.crashes
