(** Discrete-event execution of a workload over secured controllers.

    The runner owns one {!Dce_core.Controller} per site (site 0 is the
    administrator), a simulated {!Net}, and a virtual clock.  It samples
    the workload profile deterministically from the seed, interleaves
    local edits, administrative actions and message deliveries in
    time order, and finally flushes the network so the session reaches
    quiescence.  The result carries the final controllers plus counters;
    feed it to {!Convergence} for the oracles. *)

type stats = {
  edits_generated : int;
  edits_denied_locally : int;  (** rejected by the issuer's local policy copy *)
  admin_requests : int;
  restrictive_requests : int;
  messages_delivered : int;
  invalidated : int;
      (** requests invalidated at site 0, derived from the controller's
          trace events ([invalidate] + [retroactive_undo]) — never
          hand-incremented, so these counts cannot drift from the
          telemetry stream *)
  validated : int;  (** likewise: [validate] + born/delivered-valid events at site 0 *)
  crashes : int;  (** fault injections that actually fired *)
}

type crash = { site : int; at : int; restart_at : int }
(** Kill [site] at virtual time [at] and bring it back at [restart_at].
    The crash captures the site's fully serialized state (the bytes a
    [Dce_store] snapshot would persist); the restart decodes and reloads
    it — putting the round trip itself under test — and re-delivers the
    messages that arrived while the site was down, as a durable relay
    would.  While down the site generates nothing, and the simulated
    administrator never acts from a down site.  A serialization defect
    raises [Failure] instead of diverging silently. *)

type result = {
  controllers : char Dce_core.Controller.t list;  (** site order: admin first *)
  stats : stats;
  final_time : int;
}

val run :
  ?trace:Format.formatter ->
  ?features:Dce_core.Controller.features ->
  ?policy:Dce_core.Policy.t ->
  ?sink:Dce_obs.Trace.sink ->
  ?metrics:Dce_obs.Metrics.t ->
  ?crashes:crash list ->
  Workload.profile ->
  seed:int ->
  result
(** [features] (default [Controller.secure]) selects which of the
    paper's three mechanisms are active — disable some to reproduce the
    §4 security holes (see [Dce_baseline.Naive] and the ablation bench).
    [policy] defaults to "everyone may do everything" over the profile's
    sites, which is what lets a restrictive administrator bite.

    [sink] receives every controller trace event of every site plus the
    runner's own [broadcast] events.  [metrics] (default: a private
    registry) accumulates counters mirroring {!stats} and histograms for
    network latency, queue depth and wall-clock per-delivery /
    per-generation timings ([net.latency_vms], [net.queue_depth],
    [sim.deliver_ns], [sim.generate_ns]). *)

val pp_stats : Format.formatter -> stats -> unit
