(** Simulated broadcast network.

    Reliable, authenticated point-to-point links between every pair of
    sites — the paper's §3.3 assumption — with configurable latency and,
    optionally, per-link FIFO ordering.  Without FIFO, messages travelling
    on the same link may overtake one another (random latencies), which is
    exactly the reordering the control algorithm must tolerate.

    Time is a virtual integer clock (think milliseconds).  The network is
    a priority queue of in-flight messages; {!pop} yields the next
    delivery in (time, insertion) order, so simulations are deterministic
    given the RNG seed. *)

type latency = Fixed of int | Uniform of int * int
(** Per-message delay model; [Uniform (lo, hi)] is inclusive. *)

type 'm t

val create :
  ?fifo:bool -> ?drop:float -> ?dup:float -> latency:latency -> sites:int list ->
  unit -> 'm t
(** [fifo] (default [false]) forces per-link FIFO delivery by clamping
    each delivery time to be no earlier than the previous one on the same
    link.  [drop] / [dup] (default [0.]) lose or duplicate each message
    with the given probability, deterministically from the RNG the caller
    threads — dropping violates the paper's reliable-broadcast assumption
    (§3.3), so it is for robustness experiments only (e.g. showing which
    oracles survive lossy gossip and which require the assumption).
    Raises [Invalid_argument] outside [[0,1]]. *)

val dropped : 'm t -> int
(** Messages lost to [drop] so far. *)

val duplicated : 'm t -> int
(** Extra copies enqueued by [dup] so far. *)

val broadcast : 'm t -> Rng.t -> now:int -> src:int -> 'm -> 'm t * Rng.t
(** Enqueue a copy for every site except [src]. *)

val send : 'm t -> Rng.t -> now:int -> src:int -> dst:int -> 'm -> 'm t * Rng.t

val pop : 'm t -> ((int * int * 'm) * 'm t) option
(** Next delivery: [(time, destination, message)]. *)

type 'm delivery = {
  at : int;  (** delivery time *)
  dst : int;
  sent_at : int;  (** enqueue time; [at - sent_at] is the link latency *)
  msg : 'm;
}

val pop_delivery : 'm t -> ('m delivery * 'm t) option
(** {!pop} with the full delivery record — telemetry wants the latency
    actually experienced, which under FIFO clamping can exceed the drawn
    delay. *)

val peek_time : 'm t -> int option
val in_flight : 'm t -> int

val partition_heal : 'm t -> now:int -> 'm t
(** Re-stamp every in-flight delivery to occur at [now] (used to model a
    partition healing: everything that was queued floods in at once). *)
