(** Oracles over a quiescent session.

    These are the paper's correctness criteria, checkable after a
    simulation flushes: every site holds the same document and policy, no
    request is left tentative, and all sites agree on every request's
    fate.  A violation means a security hole of exactly the kind the
    paper's Figs. 2–4 illustrate. *)

open Dce_core

type report = {
  documents_agree : bool;  (** equal models (hence equal visible texts) *)
  versions_agree : bool;
  policies_agree : bool;  (** same decisions: compared structurally *)
  queues_empty : bool;
  no_tentative_left : bool;
  flags_agree : bool;  (** every request has the same flag at every site *)
}

val check : char Controller.t list -> report
(** Degenerate groups (empty and single-site lists) are trivially
    convergent and yield an all-true report. *)

val ok : report -> bool

val pp : Format.formatter -> report -> unit

val explain : char Controller.t list -> string option
(** When the oracles are violated, a one-line diagnosis naming the first
    divergent site pair and the differing fragment — the first model cell
    where the documents part ways (with both visible texts), the first
    policy decision that disagrees, the site with queued or tentative
    requests, or the first request whose fate the sites dispute.  [None]
    when every oracle holds (and always for degenerate groups). *)

val pp_diff : Format.formatter -> char Controller.t list -> unit
(** {!explain}, or ["all oracles hold"]. *)
