module P = Dce_core.Policy
module R = Dce_core.Right
module L = Dce_core.Admin_log
module J = Dce_obs.Json

type region = At_none | Range of int * int option

type change = {
  users : Dce_core.Subject.user list;
  right : R.t;
  region : region;
  before : bool;
  after : bool;
}

let policies a b =
  let classes = Classes.build [ a; b ] in
  let ea, _ = Engine.build ~classes a in
  let eb, _ = Engine.build ~classes b in
  let changes = ref [] in
  for k = 0 to Classes.count classes - 1 do
    let users = Classes.members classes k in
    List.iter
      (fun r ->
        let none_allow e =
          match Engine.cell_none e ~klass:k ~right:r with
          | Some (_, al) -> al
          | None -> false
        in
        let bn = none_allow ea and an = none_allow eb in
        if bn <> an then
          changes :=
            { users; right = r; region = At_none; before = bn; after = an }
            :: !changes;
        let ra = Engine.cell_ranges ea ~klass:k ~right:r
        and rb = Engine.cell_ranges eb ~klass:k ~right:r in
        if ra <> [] || rb <> [] then begin
          (* boundary positions of either side; the decision pair is
             constant between consecutive boundaries *)
          let bounds =
            List.sort_uniq compare
              (List.concat_map
                 (fun (lo, hi, _, _) ->
                   lo :: (match hi with Some h -> [ h + 1 ] | None -> []))
                 (ra @ rb))
          in
          let eval e p =
            match Engine.decision e ~klass:k ~right:r ~pos:(Some p) with
            | Some (_, al) -> al
            | None -> false
          in
          let rec segs = function
            | [] -> []
            | [ lo ] -> [ (lo, None) ]
            | lo :: (next :: _ as rest) -> (lo, Some (next - 1)) :: segs rest
          in
          let pending = ref None in
          let flush () =
            match !pending with
            | Some (lo, hi, bf, af) ->
              changes :=
                { users; right = r; region = Range (lo, hi); before = bf; after = af }
                :: !changes;
              pending := None
            | None -> ()
          in
          List.iter
            (fun (lo, hi) ->
              let bf = eval ea lo and af = eval eb lo in
              if bf <> af then
                match !pending with
                | Some (plo, Some ph, pbf, paf) when ph + 1 = lo && pbf = bf && paf = af
                  ->
                  pending := Some (plo, hi, bf, af)
                | Some _ ->
                  flush ();
                  pending := Some (lo, hi, bf, af)
                | None -> pending := Some (lo, hi, bf, af)
              else flush ())
            (segs bounds);
          flush ()
        end)
      R.all
  done;
  List.rev !changes

let trajectory log =
  let rec go v acc =
    if v > L.version log then List.rev acc
    else
      let a = Option.get (L.policy_at log (v - 1)) in
      let b = Option.get (L.policy_at log v) in
      let r = Option.get (L.request_at log v) in
      go (v + 1) ((r, policies a b) :: acc)
  in
  go 1 []

let affects changes ~user ~right ~pos =
  List.exists
    (fun c ->
      R.equal c.right right
      && List.mem user c.users
      &&
      match (c.region, pos) with
      | At_none, None -> true
      | Range (lo, hi), Some p ->
        lo <= p && (match hi with Some h -> p <= h | None -> true)
      | At_none, Some _ | Range _, None -> false)
    changes

let pp_region ppf = function
  | At_none -> Format.pp_print_string ppf "@-"
  | Range (lo, Some hi) when lo = hi -> Format.fprintf ppf "@@%d" lo
  | Range (lo, Some hi) -> Format.fprintf ppf "@@[%d,%d]" lo hi
  | Range (lo, None) -> Format.fprintf ppf "@@[%d,inf)" lo

let pp_users ppf = function
  | [ u ] -> Format.fprintf ppf "s%d" u
  | us when List.length us <= 6 ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      us
  | us -> Format.fprintf ppf "{%d users}" (List.length us)

let pp_change ppf c =
  Format.fprintf ppf "%a %a %a: %s -> %s" pp_users c.users R.pp c.right pp_region
    c.region
    (if c.before then "allow" else "deny")
    (if c.after then "allow" else "deny")

let change_to_json c =
  J.Obj
    [
      ("users", J.List (List.map (fun u -> J.Int u) c.users));
      ("right", J.String (R.to_string c.right));
      ( "region",
        match c.region with
        | At_none -> J.Null
        | Range (lo, hi) ->
          J.Obj
            [
              ("lo", J.Int lo);
              ("hi", match hi with Some h -> J.Int h | None -> J.Null);
            ] );
      ("before", J.Bool c.before);
      ("after", J.Bool c.after);
    ]
