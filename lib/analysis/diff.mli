(** Semantic diff: exactly which decisions changed between two policies.

    Both policies are indexed against one shared class partition
    (refined over the union of their subjects), then compared cell by
    cell.  The result enumerates the full changed region — every
    (user set, right, position range) whose allow/deny outcome differs —
    so a revocation storm or delegation edit gets a reviewable
    blast-radius summary instead of a textual rule diff. *)

type region =
  | At_none  (** the distinguished no-position access *)
  | Range of int * int option  (** positions [lo..hi], [None] unbounded *)

type change = {
  users : Dce_core.Subject.user list;  (** every member of the class *)
  right : Dce_core.Right.t;
  region : region;
  before : bool;  (** allowed under the first policy? *)
  after : bool;
}

val policies : Dce_core.Policy.t -> Dce_core.Policy.t -> change list
(** Deterministic order: class, then right, then position. *)

val trajectory :
  Dce_core.Admin_log.t -> (Dce_core.Admin_op.request * change list) list
(** Blast radius of every administrative step: the decision changes
    between consecutive versions of the log, oldest first. *)

val affects : change list -> user:Dce_core.Subject.user -> right:Dce_core.Right.t ->
  pos:int option -> bool
(** Does the changed region contain this access?  (Test helper: the
    diff is exact iff [affects] agrees with checking both policies.) *)

val pp_change : Format.formatter -> change -> unit
val change_to_json : change -> Dce_obs.Json.t
