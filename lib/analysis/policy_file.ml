module P = Dce_core.Policy
module S = Dce_core.Subject
module O = Dce_core.Docobj
module R = Dce_core.Right
module A = Dce_core.Auth
module Op = Dce_core.Admin_op
module L = Dce_core.Admin_log

type t = { initial_admin : S.user; initial : P.t; steps : Op.t list }

let ( let* ) = Result.bind

let err ln fmt = Format.kasprintf (fun m -> Error (Printf.sprintf "line %d: %s" ln m)) fmt

let int_of ln what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> err ln "%s: expected an integer, got %S" what s

let split_commas s = String.split_on_char ',' s

let parse_subject ln tok =
  if tok = "*" then Ok S.Any
  else if String.length tok > 1 && tok.[0] = 'u' then
    let* u = int_of ln "subject" (String.sub tok 1 (String.length tok - 1)) in
    Ok (S.User u)
  else
    match String.index_opt tok ':' with
    | Some 1 when tok.[0] = 'g' && String.length tok > 2 ->
      Ok (S.Group (String.sub tok 2 (String.length tok - 2)))
    | _ -> err ln "bad subject %S (want *, uN or g:NAME)" tok

let parse_right ln tok =
  match tok with
  | "read" -> Ok R.Read
  | "insert" -> Ok R.Insert
  | "delete" -> Ok R.Delete
  | "update" -> Ok R.Update
  | _ -> (
    match R.of_string tok with
    | Some r -> Ok r
    | None -> err ln "bad right %S (want read/insert/delete/update)" tok)

let parse_object ln tok =
  if tok = "doc" then Ok O.Whole
  else
    match String.index_opt tok ':' with
    | Some i -> (
      let head = String.sub tok 0 i
      and rest = String.sub tok (i + 1) (String.length tok - i - 1) in
      match head with
      | "elt" ->
        let* p = int_of ln "elt position" rest in
        Ok (O.Element p)
      | "obj" -> if rest = "" then err ln "empty object name" else Ok (O.Named rest)
      | "zone" -> (
        match String.index_opt rest '-' with
        | Some j ->
          let* lo = int_of ln "zone lo" (String.sub rest 0 j) in
          let* hi =
            int_of ln "zone hi" (String.sub rest (j + 1) (String.length rest - j - 1))
          in
          if lo < 0 || hi < lo then err ln "bad zone %S" tok else Ok (O.zone lo hi)
        | None -> err ln "bad zone %S (want zone:LO-HI)" tok)
      | _ -> err ln "bad object %S" tok)
    | None -> err ln "bad object %S (want doc, elt:N, zone:LO-HI or obj:NAME)" tok

let parse_list ln what parse_one tok =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: _ -> err ln "empty %s in %S" what tok
    | x :: rest ->
      let* v = parse_one ln x in
      go (v :: acc) rest
  in
  if tok = "" then err ln "empty %s list" what else go [] (split_commas tok)

let parse_auth ln sign fields =
  match fields with
  | [ subjects; rights; objects ] ->
    let* subjects = parse_list ln "subject" parse_subject subjects in
    let* rights = parse_list ln "right" parse_right rights in
    let* objects = parse_list ln "object" parse_object objects in
    Ok (A.make ~subjects ~objects ~rights sign)
  | _ -> err ln "want: %s SUBJECTS RIGHTS OBJECTS"
           (match sign with A.Positive -> "allow" | A.Negative -> "deny")

let parse_step ln fields =
  match fields with
  | [ "adduser"; u ] ->
    let* u = int_of ln "user" u in
    Ok (Op.Add_user u)
  | [ "deluser"; u ] ->
    let* u = int_of ln "user" u in
    Ok (Op.Del_user u)
  | [ "joingroup"; g; u ] ->
    let* u = int_of ln "user" u in
    Ok (Op.Add_to_group (g, u))
  | [ "leavegroup"; g; u ] ->
    let* u = int_of ln "user" u in
    Ok (Op.Del_from_group (g, u))
  | [ "addobj"; name; o ] ->
    let* o = parse_object ln o in
    Ok (Op.Add_obj (name, o))
  | [ "delobj"; name ] -> Ok (Op.Del_obj name)
  | "addauth" :: idx :: sign :: rest ->
    let* idx = int_of ln "auth index" idx in
    let* sign =
      match sign with
      | "allow" -> Ok A.Positive
      | "deny" -> Ok A.Negative
      | s -> err ln "bad sign %S (want allow or deny)" s
    in
    let* a = parse_auth ln sign rest in
    Ok (Op.Add_auth (idx, a))
  | [ "delauth"; idx ] ->
    let* idx = int_of ln "auth index" idx in
    Ok (Op.Del_auth idx)
  | [ "transferadmin"; u ] ->
    let* u = int_of ln "user" u in
    Ok (Op.Transfer_admin u)
  | w :: _ -> err ln "unknown step %S" w
  | [] -> err ln "empty step"

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse content =
  let lines = String.split_on_char '\n' content in
  let admin = ref 0 in
  let users = ref [] and groups = ref [] and objects = ref [] and auths = ref [] in
  let steps = ref [] in
  let in_steps = ref false in
  let rec go ln = function
    | [] -> Ok ()
    | line :: rest ->
      let line =
        String.trim
          (String.map (function '\t' -> ' ' | c -> c) (strip_comment line))
      in
      let* () =
        if line = "" then Ok ()
        else if line = "---" then begin
          in_steps := true;
          Ok ()
        end
        else
          let fields =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
          in
          if !in_steps then
            let* op = parse_step ln fields in
            steps := op :: !steps;
            Ok ()
          else
            match fields with
            | [ "admin"; u ] ->
              let* u = int_of ln "admin" u in
              admin := u;
              Ok ()
            | "user" :: us ->
              let* us =
                List.fold_left
                  (fun acc u ->
                    let* acc = acc in
                    let* u = int_of ln "user" u in
                    Ok (u :: acc))
                  (Ok []) us
              in
              if us = [] then err ln "user: want at least one id"
              else begin
                users := us @ !users;
                Ok ()
              end
            | "group" :: name :: us ->
              let* us =
                List.fold_left
                  (fun acc u ->
                    let* acc = acc in
                    let* u = int_of ln "group member" u in
                    Ok (u :: acc))
                  (Ok []) us
              in
              groups := (name, List.rev us) :: !groups;
              Ok ()
            | [ "object"; name; o ] ->
              let* o = parse_object ln o in
              objects := (name, o) :: !objects;
              Ok ()
            | "allow" :: fields ->
              let* a = parse_auth ln A.Positive fields in
              auths := a :: !auths;
              Ok ()
            | "deny" :: fields ->
              let* a = parse_auth ln A.Negative fields in
              auths := a :: !auths;
              Ok ()
            | w :: _ -> err ln "unknown directive %S" w
            | [] -> Ok ()
      in
      go (ln + 1) rest
  in
  let* () = go 1 lines in
  Ok
    {
      initial_admin = !admin;
      initial =
        P.make ~users:(List.rev !users) ~groups:(List.rev !groups)
          ~objects:(List.rev !objects) (List.rev !auths);
      steps = List.rev !steps;
    }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> parse content
  | exception Sys_error e -> Error e

let log_of t =
  List.fold_left
    (fun acc op ->
      let* log = acc in
      match
        L.append log
          {
            Op.admin = L.current_admin log;
            version = L.version log + 1;
            op;
            ctx = Dce_ot.Vclock.empty;
          }
      with
      | Ok log -> Ok log
      | Error e ->
        Error (Format.asprintf "step %d (%a): %s" (L.version log + 1) Op.pp op e))
    (Ok (L.create ~admin:t.initial_admin t.initial))
    t.steps

let final_policy t =
  let* log = log_of t in
  Ok (L.current log)

let subject_str = function
  | S.Any -> "*"
  | S.User u -> Printf.sprintf "u%d" u
  | S.Group g -> "g:" ^ g

let right_str = function
  | R.Read -> "read"
  | R.Insert -> "insert"
  | R.Delete -> "delete"
  | R.Update -> "update"

let object_str = function
  | O.Whole -> "doc"
  | O.Element p -> Printf.sprintf "elt:%d" p
  | O.Zone { lo; hi } -> Printf.sprintf "zone:%d-%d" lo hi
  | O.Named n -> "obj:" ^ n

let print_policy p =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match P.users p with
   | [] -> ()
   | us -> line "user %s" (String.concat " " (List.map string_of_int us)));
  List.iter
    (fun (g, us) ->
      line "group %s %s" g (String.concat " " (List.map string_of_int us)))
    (P.groups p);
  List.iter (fun (n, o) -> line "object %s %s" n (object_str o)) (P.objects p);
  List.iter
    (fun (a : A.t) ->
      line "%s %s %s %s"
        (match a.sign with A.Positive -> "allow" | A.Negative -> "deny")
        (String.concat "," (List.map subject_str a.subjects))
        (String.concat "," (List.map right_str a.rights))
        (String.concat "," (List.map object_str a.objects)))
    (P.auths p);
  Buffer.contents buf
