(** The analyzer entry point: one engine build pass plus integrity
    lints, every finding validated against the real checker. *)

type report = {
  policy : Dce_core.Policy.t;
  engine : Engine.t;
  fates : Engine.fate array;
  findings : Findings.t list;  (** rule order; conflicts deduplicated *)
}

val run : ?classes:Classes.t -> Dce_core.Policy.t -> report

val errors : report -> Findings.t list
(** Confirmed findings of severity [`Error] — the CLI's exit-1 set. *)

val warnings : report -> Findings.t list
val refuted : report -> Findings.t list
(** Findings whose witness replay disagreed with the claim.  Always
    empty unless the symbolic engine has a bug; the CLI treats any entry
    as an internal error. *)

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Dce_obs.Json.t
