module P = Dce_core.Policy
module R = Dce_core.Right
module S = Dce_core.Subject
module O = Dce_core.Docobj
module IntSet = Set.Make (Int)

type witness = { klass : int; right : R.t; pos : int option }

type overlap = {
  earlier : int;
  earlier_allows : bool;
  same_sign : bool;
  at : witness;
}

type fate = {
  rule : int;
  allows : bool;
  empty : bool;
  live : witness option;
  overlaps : overlap list;
  overlaps_truncated : bool;
  deciders : int list;
}

(* mutable cell during the build pass *)
type seg = { slo : int; shi : int option; srule : int; sallow : bool }
type bcell = { mutable none_dec : (int * bool) option; mutable segs : seg list }

(* frozen cell: struct-of-arrays, [chi] uses [max_int] for "unbounded" *)
type cell = {
  cnone : (int * bool) option;
  clo : int array;
  chi : int array;
  crule : int array;
  callow : bool array;
}

type t = { policy : P.t; classes : Classes.t; cells : cell array array }

let policy t = t.policy
let classes t = t.classes

let denote_object p o =
  let concrete = function
    | O.Whole -> (true, Iset.full)
    | O.Element q -> (false, if q < 0 then Iset.empty else Iset.point q)
    | O.Zone { lo; hi } -> (false, Iset.range lo (Some hi))
    | O.Named _ -> (false, Iset.empty) (* a name resolving to a name matches nothing *)
  in
  match o with
  | O.Named n -> (
    match P.resolve p n with Some o' -> concrete o' | None -> (false, Iset.empty))
  | o -> concrete o

let denote_subject classes p = function
  | S.Any -> Classes.classes_where classes (P.is_user p)
  | S.User u ->
    if P.is_user p u then Option.to_list (Classes.class_of_user classes u) else []
  | S.Group g -> Classes.classes_where classes (fun u -> P.member p g u)

(* Keep one overlap per distinct earlier decider; cap the recorded
   deciders so a Whole-document rule landing on thousands of earlier
   segments stays cheap.  The cap only loses precision on the
   subsumed-vs-shadowed distinction, never on liveness. *)
let decider_cap = 64

type fb = {
  mutable fempty : bool;
  mutable flive : witness option;
  mutable foverlaps : overlap list; (* reversed *)
  mutable fdeciders : IntSet.t;
  mutable ftrunc : bool;
}

let build ?classes:shared policy =
  let classes =
    match shared with Some c -> c | None -> Classes.build [ policy ]
  in
  let nclasses = Classes.count classes in
  let bcells =
    Array.init nclasses (fun _ ->
        Array.init R.count (fun _ -> { none_dec = None; segs = [] }))
  in
  let auths = Array.of_list (P.auths policy) in
  let fbs =
    Array.map
      (fun _ ->
        {
          fempty = false;
          flive = None;
          foverlaps = [];
          fdeciders = IntSet.empty;
          ftrunc = false;
        })
      auths
  in
  Array.iteri
    (fun i (a : Dce_core.Auth.t) ->
      let fb = fbs.(i) in
      let allow = not (Dce_core.Auth.is_restrictive a) in
      let klasses =
        List.sort_uniq compare (List.concat_map (denote_subject classes policy) a.subjects)
      in
      let rights =
        List.sort_uniq (fun r1 r2 -> compare (R.index r1) (R.index r2)) a.rights
      in
      let none, dom =
        List.fold_left
          (fun (n, d) o ->
            let n', d' = denote_object policy o in
            (n || n', Iset.union d d'))
          (false, Iset.empty) a.objects
      in
      if klasses = [] || (Iset.is_empty dom && not none) then fb.fempty <- true
      else
        List.iter
          (fun k ->
            List.iter
              (fun r ->
                let cell = bcells.(k).(R.index r) in
                let record_overlap earlier eallow pos =
                  if not (IntSet.mem earlier fb.fdeciders) then
                    if IntSet.cardinal fb.fdeciders >= decider_cap then
                      fb.ftrunc <- true
                    else begin
                      fb.fdeciders <- IntSet.add earlier fb.fdeciders;
                      fb.foverlaps <-
                        {
                          earlier;
                          earlier_allows = eallow;
                          same_sign = eallow = allow;
                          at = { klass = k; right = r; pos };
                        }
                        :: fb.foverlaps
                    end
                in
                if not (Iset.is_empty dom) then begin
                  List.iter
                    (fun s ->
                      let o =
                        Iset.inter dom [ { Iset.lo = s.slo; hi = s.shi } ]
                      in
                      match Iset.min_elt o with
                      | Some p -> record_overlap s.srule s.sallow (Some p)
                      | None -> ())
                    cell.segs;
                  let free =
                    Iset.diff dom
                      (List.map (fun s -> { Iset.lo = s.slo; hi = s.shi }) cell.segs)
                  in
                  (match Iset.min_elt free with
                   | Some p ->
                     if fb.flive = None then
                       fb.flive <- Some { klass = k; right = r; pos = Some p }
                   | None -> ());
                  match
                    List.map
                      (fun ({ Iset.lo; hi } : Iset.itv) ->
                        { slo = lo; shi = hi; srule = i; sallow = allow })
                      free
                  with
                  | [] -> ()
                  | newsegs ->
                    cell.segs <-
                      List.merge (fun a b -> compare a.slo b.slo) cell.segs newsegs
                end;
                if none then
                  match cell.none_dec with
                  | None ->
                    if fb.flive = None then
                      fb.flive <- Some { klass = k; right = r; pos = None };
                    cell.none_dec <- Some (i, allow)
                  | Some (e, ea) -> record_overlap e ea None)
              rights)
          klasses)
    auths;
  let freeze (b : bcell) =
    let n = List.length b.segs in
    let clo = Array.make n 0
    and chi = Array.make n 0
    and crule = Array.make n 0
    and callow = Array.make n false in
    List.iteri
      (fun j s ->
        clo.(j) <- s.slo;
        chi.(j) <- (match s.shi with Some h -> h | None -> max_int);
        crule.(j) <- s.srule;
        callow.(j) <- s.sallow)
      b.segs;
    { cnone = b.none_dec; clo; chi; crule; callow }
  in
  let cells = Array.map (Array.map freeze) bcells in
  let fates =
    Array.mapi
      (fun i (a : Dce_core.Auth.t) ->
        let fb = fbs.(i) in
        {
          rule = i;
          allows = not (Dce_core.Auth.is_restrictive a);
          empty = fb.fempty;
          live = fb.flive;
          overlaps = List.rev fb.foverlaps;
          overlaps_truncated = fb.ftrunc;
          deciders = IntSet.elements fb.fdeciders;
        })
      auths
  in
  ({ policy; classes; cells }, fates)

let lookup cell p =
  let n = Array.length cell.clo in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if cell.clo.(mid) <= p then begin
        res := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !res >= 0 && p <= cell.chi.(!res) then
      Some (cell.crule.(!res), cell.callow.(!res))
    else None
  end

let decision t ~klass ~right ~pos =
  let cell = t.cells.(klass).(R.index right) in
  match pos with None -> cell.cnone | Some p -> lookup cell p

let check t ~user ~right ~pos =
  P.is_user t.policy user
  &&
  match Classes.class_of_user t.classes user with
  | None -> false
  | Some k -> (
    match decision t ~klass:k ~right ~pos with
    | Some (_, allow) -> allow
    | None -> false)

let cell_ranges t ~klass ~right =
  let cell = t.cells.(klass).(R.index right) in
  List.init (Array.length cell.clo) (fun j ->
      ( cell.clo.(j),
        (if cell.chi.(j) = max_int then None else Some cell.chi.(j)),
        cell.crule.(j),
        cell.callow.(j) ))

let cell_none t ~klass ~right = (t.cells.(klass).(R.index right)).cnone

let seg_count t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc c -> acc + Array.length c.clo) acc row)
    0 t.cells
