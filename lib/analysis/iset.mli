(** Sets of document positions as sorted disjoint integer intervals.

    This is the positional axis of the analyzer's symbolic decision
    domain.  Positions live in [[0, +inf)]: a [Docobj.Whole] object
    denotes the full ray, so intervals carry an optional upper bound
    ([None] = unbounded).  The representation is canonical — sorted,
    disjoint, adjacent runs coalesced — so structural equality is
    semantic equality.

    The distinguished "no position" access ([pos = None] in
    {!Dce_core.Policy.check}) is {e not} part of this type; the engine
    tracks that single extra point separately. *)

type itv = { lo : int; hi : int option }
(** The closed interval [[lo, hi]]; [hi = None] means unbounded. *)

type t = itv list
(** Canonical form (sorted by [lo], disjoint, non-adjacent).  Exposed so
    the engine can walk intervals directly; build values only with the
    constructors below. *)

val empty : t
val full : t
(** [[0, +inf)]. *)

val range : int -> int option -> t
(** [range lo hi] is [[lo, hi]]; raises [Invalid_argument] if [lo < 0]
    or [hi < lo]. *)

val point : int -> t

val is_empty : t -> bool
val mem : int -> t -> bool
val min_elt : t -> int option
(** Smallest member, [None] on empty — the canonical witness position. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
