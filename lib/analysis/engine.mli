(** The indexed decision engine and its build-time byproducts.

    The engine materializes first-match semantics: for every subject
    class × right it keeps the positions axis as sorted disjoint
    segments, each labelled with the {e deciding} rule (the first-match
    winner) and its sign.  Building it is one pass over the
    authorization list in priority order — each rule claims whatever
    part of its denotation is still undecided; whatever is already
    claimed is recorded as an overlap with the earlier decider.

    That single pass yields both artifacts of this PR:

    - an O(log segments) {!check} that agrees exactly with the flat
      first-match scan of {!Dce_core.Policy.check} (the indexed policy
      store of ROADMAP item 4), and
    - per-rule {!fate}s — did any access survive to the rule (with a
      concrete witness), and which earlier rules captured the rest —
      from which shadowing, subsumption and order-sensitivity findings
      are derived without ever enumerating accesses. *)

type witness = {
  klass : int;  (** subject class (see {!Classes}) *)
  right : Dce_core.Right.t;
  pos : int option;  (** [None] is the distinguished no-position access *)
}

type overlap = {
  earlier : int;  (** rule that already decided part of this rule's domain *)
  earlier_allows : bool;
  same_sign : bool;  (** [false] = this pair is an order-sensitive conflict *)
  at : witness;  (** a concrete access in the captured region *)
}

type fate = {
  rule : int;
  allows : bool;
  empty : bool;  (** denotation matches no access at all (never-matching rule) *)
  live : witness option;
      (** an access that survives to this rule under first-match;
          [None] (with [empty = false]) means the rule is dead *)
  overlaps : overlap list;  (** one per distinct earlier decider, discovery order *)
  overlaps_truncated : bool;  (** more distinct deciders existed than were kept *)
  deciders : int list;  (** distinct earlier deciders, ascending *)
}

type t

val build : ?classes:Classes.t -> Dce_core.Policy.t -> t * fate array
(** Pass [classes] to index several policies against one shared
    partition (semantic diff); it must have been built over a policy
    list including this one. *)

val policy : t -> Dce_core.Policy.t
val classes : t -> Classes.t

val check : t -> user:int -> right:Dce_core.Right.t -> pos:int option -> bool
(** Indexed equivalent of {!Dce_core.Policy.check}: registration test,
    class lookup, binary search.  Agreement with the flat scan is
    enforced by QCheck in [test_analysis] and asserted in the bench. *)

val decision :
  t -> klass:int -> right:Dce_core.Right.t -> pos:int option -> (int * bool) option
(** The (deciding rule, allows) at a point of the symbolic domain;
    [None] = default deny. *)

val cell_ranges :
  t -> klass:int -> right:Dce_core.Right.t -> (int * int option * int * bool) list
(** The decided segments [(lo, hi, rule, allows)] of one cell, ascending
    ([hi = None] unbounded) — the raw material of the semantic diff. *)

val cell_none : t -> klass:int -> right:Dce_core.Right.t -> (int * bool) option

val seg_count : t -> int
(** Total segments over all cells (index size measure). *)
