(** The subject axis of the decision domain.

    Concrete users are partitioned into equivalence classes: two users
    land in the same class when no authorization of any of the supplied
    policies can tell them apart — they have the same registration
    status and the same group memberships in every policy, and neither
    is named individually by any authorization.  A policy over 100k
    users but a handful of groups collapses to a handful of classes, so
    the analyzer's per-class work is bounded by the policy's own
    vocabulary, not by the user population.

    Building over {e several} policies (semantic diff needs two) refines
    the partition across all of them at once, so one class can be used
    to index decision cells of every policy involved. *)

type t

val build : Dce_core.Policy.t list -> t
(** Partition the union of the policies' registered users.  Users named
    by an authorization ([Subject.User u]) get singleton classes;
    unregistered named users get no class at all (they are denied before
    the authorization list is consulted). *)

val count : t -> int
val rep : t -> int -> Dce_core.Subject.user
(** Canonical representative (smallest member) — the user every witness
    access is phrased in terms of. *)

val members : t -> int -> Dce_core.Subject.user list
val size : t -> int -> int
val class_of_user : t -> Dce_core.Subject.user -> int option

val classes_where : t -> (Dce_core.Subject.user -> bool) -> int list
(** Classes whose representative satisfies a predicate.  Sound whenever
    the predicate cannot distinguish members of one class — registration
    and group-membership tests against the policies used to {!build}. *)
