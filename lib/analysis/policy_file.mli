(** A small text format for policies and admin-log trajectories, so
    [dcepolicy] can lint committed example policies and diff admin
    histories without a live session.

    {v
    # initial policy: one directive per line, auths in priority order
    admin 0
    user 1 2 3
    group eng 1 2
    object intro zone:0-9
    deny  g:eng        delete        zone:3-5
    allow u1,u2        insert,delete doc
    allow *            read          obj:intro
    ---
    # after ---, each line is one administrative step (one log version)
    deluser 3
    addauth 0 deny u1 insert doc
    delauth 2
    v}

    Subjects: [*] (any), [uN], [g:NAME] — comma-separated lists.
    Rights: [read]/[insert]/[delete]/[update] (or the paper's
    [rR]/[iR]/[dR]/[uR]) — comma-separated.  Objects: [doc], [elt:N],
    [zone:LO-HI], [obj:NAME] — comma-separated.  [#] starts a comment.

    Steps: [adduser N], [deluser N], [joingroup G N], [leavegroup G N],
    [addobj NAME OBJ], [delobj NAME], [addauth IDX allow|deny S R O],
    [delauth IDX], [transferadmin N]. *)

type t = {
  initial_admin : Dce_core.Subject.user;
  initial : Dce_core.Policy.t;
  steps : Dce_core.Admin_op.t list;
}

val parse : string -> (t, string) result
(** Parse file contents; errors carry a line number. *)

val load : string -> (t, string) result
(** [parse] on a file path. *)

val log_of : t -> (Dce_core.Admin_log.t, string) result
(** Replay the steps through a real {!Dce_core.Admin_log} (version
    checks included), producing the trajectory the differ walks. *)

val final_policy : t -> (Dce_core.Policy.t, string) result
(** The policy after every step ([initial] when there are none). *)

val print_policy : Dce_core.Policy.t -> string
(** Render a policy back in this format.  [parse] of the result yields a
    structurally equal policy (round-trip tested). *)
