module P = Dce_core.Policy
module R = Dce_core.Right
module J = Dce_obs.Json

type witness = {
  user : Dce_core.Subject.user;
  right : R.t;
  pos : int option;
  expect : bool;
}

type kind =
  | Shadowed of { rule : int; by : int }
  | Subsumed of { rule : int; by : int }
  | Never_matches of { rule : int }
  | Conflict of { earlier : int; later : int }
  | Dangling_user of { rule : int; user : int }
  | Dangling_group of { rule : int; group : string }
  | Dangling_object of { rule : int; name : string }

type status = Confirmed | Refuted of string

type t = {
  kind : kind;
  witness : witness option;
  detail : string;
  status : status;
}

let severity = function
  | Shadowed _ | Subsumed _ | Never_matches _ | Conflict _ -> `Error
  | Dangling_user _ | Dangling_group _ | Dangling_object _ -> `Warning

let kind_name = function
  | Shadowed _ -> "shadowed"
  | Subsumed _ -> "subsumed"
  | Never_matches _ -> "never-matches"
  | Conflict _ -> "conflict"
  | Dangling_user _ -> "dangling-user"
  | Dangling_group _ -> "dangling-group"
  | Dangling_object _ -> "dangling-object"

let rule_of = function
  | Shadowed { rule; _ }
  | Subsumed { rule; _ }
  | Never_matches { rule }
  | Dangling_user { rule; _ }
  | Dangling_group { rule; _ }
  | Dangling_object { rule; _ } -> rule
  | Conflict { later; _ } -> later

let pp_verdict ppf = function
  | P.Unregistered -> Format.pp_print_string ppf "unregistered"
  | P.Default_deny -> Format.pp_print_string ppf "default-deny"
  | P.Matched i -> Format.fprintf ppf "matched P%d" i

(* The claim each kind makes about its witness, beyond the boolean:
   which verdict must [Policy.explain] return? *)
let expected_verdict kind =
  match kind with
  | Shadowed { by; _ } | Subsumed { by; _ } -> Some (P.Matched by)
  | Conflict { earlier; _ } -> Some (P.Matched earlier)
  | Dangling_user _ -> Some P.Unregistered
  | Never_matches _ | Dangling_group _ | Dangling_object _ -> None

let validate policy f =
  match f.witness with
  | None -> f
  | Some w ->
    let v = P.explain policy ~user:w.user ~right:w.right ~pos:w.pos in
    let allow = P.verdict_allows policy v in
    let verdict_ok =
      match expected_verdict f.kind with Some ev -> v = ev | None -> true
    in
    if allow = w.expect && verdict_ok then { f with status = Confirmed }
    else
      { f with
        status =
          Refuted
            (Format.asprintf
               "witness replay disagrees: policy %s the access via %a, analyzer \
                claimed %s%t"
               (if allow then "allows" else "denies")
               pp_verdict v
               (if w.expect then "allow" else "deny")
               (fun ppf ->
                 match expected_verdict f.kind with
                 | Some ev -> Format.fprintf ppf " via %a" pp_verdict ev
                 | None -> ()))
      }

let pp_witness ppf (w : witness) =
  Format.fprintf ppf "s%d %a %s -> %s" w.user R.pp w.right
    (match w.pos with Some p -> Printf.sprintf "@%d" p | None -> "@-")
    (if w.expect then "allow" else "deny")

let pp ppf f =
  let sev = match severity f.kind with `Error -> "error" | `Warning -> "warning" in
  (match f.kind with
   | Shadowed { rule; by } -> Format.fprintf ppf "%s: P%d shadowed (first captured by P%d)" sev rule by
   | Subsumed { rule; by } -> Format.fprintf ppf "%s: P%d subsumed by P%d" sev rule by
   | Never_matches { rule } -> Format.fprintf ppf "%s: P%d never matches" sev rule
   | Conflict { earlier; later } ->
     Format.fprintf ppf "%s: P%d/P%d order-sensitive conflict" sev earlier later
   | Dangling_user { rule; user } ->
     Format.fprintf ppf "%s: P%d names unregistered user %d" sev rule user
   | Dangling_group { rule; group } ->
     Format.fprintf ppf "%s: P%d names missing/empty group %s" sev rule group
   | Dangling_object { rule; name } ->
     Format.fprintf ppf "%s: P%d names unresolvable object %s" sev rule name);
  if f.detail <> "" then Format.fprintf ppf " — %s" f.detail;
  (match f.witness with
   | Some w -> Format.fprintf ppf " [witness %a]" pp_witness w
   | None -> ());
  match f.status with
  | Confirmed -> Format.fprintf ppf " CONFIRMED"
  | Refuted why -> Format.fprintf ppf " REFUTED (%s)" why

let to_json f =
  let base =
    [
      ("kind", J.String (kind_name f.kind));
      ("rule", J.Int (rule_of f.kind));
      ( "severity",
        J.String (match severity f.kind with `Error -> "error" | `Warning -> "warning") );
      ("detail", J.String f.detail);
      ( "status",
        match f.status with
        | Confirmed -> J.String "confirmed"
        | Refuted why -> J.String ("refuted: " ^ why) );
    ]
  in
  let extra =
    match f.kind with
    | Shadowed { by; _ } | Subsumed { by; _ } -> [ ("by", J.Int by) ]
    | Conflict { earlier; later } ->
      [ ("earlier", J.Int earlier); ("later", J.Int later) ]
    | Dangling_user { user; _ } -> [ ("user", J.Int user) ]
    | Dangling_group { group; _ } -> [ ("group", J.String group) ]
    | Dangling_object { name; _ } -> [ ("object", J.String name) ]
    | Never_matches _ -> []
  in
  let witness =
    match f.witness with
    | None -> []
    | Some w ->
      [
        ( "witness",
          J.Obj
            [
              ("user", J.Int w.user);
              ("right", J.String (R.to_string w.right));
              ("pos", match w.pos with Some p -> J.Int p | None -> J.Null);
              ("expect_allow", J.Bool w.expect);
            ] );
      ]
  in
  J.Obj (base @ extra @ witness)
