type itv = { lo : int; hi : int option }
type t = itv list

let empty = []
let full = [ { lo = 0; hi = None } ]

let range lo hi =
  if lo < 0 then invalid_arg "Iset.range: negative lo";
  (match hi with
   | Some h when h < lo -> invalid_arg "Iset.range: hi < lo"
   | _ -> ());
  [ { lo; hi } ]

let point p = range p (Some p)
let is_empty t = t = []

(* upper-bound comparisons, [None] = +inf *)
let hi_before_lo hi lo = match hi with Some h -> h < lo | None -> false
let hi_min a b =
  match (a, b) with
  | Some x, Some y -> Some (min x y)
  | Some _, None -> a
  | None, _ -> b

let mem p t = List.exists (fun i -> i.lo <= p && not (hi_before_lo i.hi p)) t
let min_elt = function [] -> None | i :: _ -> Some i.lo

(* coalesce a lo-sorted list: merge overlapping or adjacent intervals *)
let coalesce l =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest -> (
      match acc with
      | cur :: acc'
        when (match cur.hi with None -> true | Some h -> x.lo <= h + 1) ->
        let hi =
          match (cur.hi, x.hi) with
          | None, _ | _, None -> None
          | Some a, Some b -> Some (max a b)
        in
        go ({ lo = cur.lo; hi } :: acc') rest
      | _ -> go (x :: acc) rest)
  in
  go [] l

let union a b = coalesce (List.merge (fun x y -> compare x.lo y.lo) a b)

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: xs, y :: ys ->
      let lo = max x.lo y.lo in
      let hi = hi_min x.hi y.hi in
      let acc = if hi_before_lo hi lo then acc else { lo; hi } :: acc in
      (match (x.hi, y.hi) with
       | Some hx, Some hy ->
         if hx < hy then go xs b acc
         else if hy < hx then go a ys acc
         else go xs ys acc
       | Some _, None -> go xs b acc
       | None, Some _ -> go a ys acc
       | None, None -> List.rev acc)
  in
  go a b []

let diff a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ -> List.rev acc
    | _, [] -> List.rev_append acc a
    | x :: xs, y :: ys ->
      if hi_before_lo y.hi x.lo then go a ys acc (* y entirely before x *)
      else if hi_before_lo x.hi y.lo then go xs b (x :: acc) (* x entirely before y *)
      else
        (* they overlap: keep the part of x left of y, then continue with
           the part of x right of y (if any) *)
        let acc =
          if x.lo < y.lo then { lo = x.lo; hi = Some (y.lo - 1) } :: acc else acc
        in
        (match y.hi with
         | None -> go xs b acc
         | Some hy -> (
           match x.hi with
           | Some hx when hx <= hy -> go xs b acc
           | _ -> go ({ lo = hy + 1; hi = x.hi } :: xs) ys acc))
  in
  go a b []

let subset a b = is_empty (diff a b)
let equal (a : t) (b : t) = a = b

let pp ppf t =
  let pp_itv ppf i =
    match i.hi with
    | Some h when h = i.lo -> Format.fprintf ppf "{%d}" i.lo
    | Some h -> Format.fprintf ppf "[%d,%d]" i.lo h
    | None -> Format.fprintf ppf "[%d,inf)" i.lo
  in
  if t = [] then Format.pp_print_string ppf "{}"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "+")
      pp_itv ppf t
