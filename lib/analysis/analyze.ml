module P = Dce_core.Policy
module R = Dce_core.Right
module S = Dce_core.Subject
module O = Dce_core.Docobj
module J = Dce_obs.Json

type report = {
  policy : P.t;
  engine : Engine.t;
  fates : Engine.fate array;
  findings : Findings.t list;
}

let witness_of_engine classes (at : Engine.witness) ~expect : Findings.witness =
  { user = Classes.rep classes at.klass; right = at.right; pos = at.pos; expect }

(* why does a rule match nothing?  (diagnostic detail only) *)
let empty_reason policy (a : Dce_core.Auth.t) =
  let subject_live = function
    | S.Any -> P.users policy <> []
    | S.User u -> P.is_user policy u
    | S.Group g -> List.exists (fun u -> P.member policy g u) (P.users policy)
  in
  let object_live o =
    let concrete = function
      | O.Whole -> true
      | O.Element q -> q >= 0
      | O.Zone _ -> true
      | O.Named _ -> false
    in
    match o with
    | O.Named n -> (
      match P.resolve policy n with Some o' -> concrete o' | None -> false)
    | o -> concrete o
  in
  if not (List.exists subject_live a.subjects) then
    "its subjects match no registered user"
  else if not (List.exists object_live a.objects) then
    "its objects denote no position"
  else "its domain is empty"

let fate_findings policy classes ~has_dangling (fates : Engine.fate array) =
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  Array.iter
    (fun (f : Engine.fate) ->
      let auth = Option.get (P.auth_at policy f.rule) in
      if f.empty then begin
        (* a rule emptied by a dangling reference is already reported by
           the (by-design, warning-level) dangling lint — only flag rules
           that match nothing for some other reason *)
        if not (has_dangling f.rule) then
          emit
            {
              Findings.kind = Never_matches { rule = f.rule };
              witness = None;
              detail = empty_reason policy auth;
              status = Findings.Confirmed;
            }
      end
      else begin
        (if f.live = None then
           match f.overlaps with
           | [] -> () (* unreachable: a dead non-empty rule overlaps something *)
           | first :: _ ->
             let witness =
               Some (witness_of_engine classes first.at ~expect:first.earlier_allows)
             in
             let kind, detail =
               match f.deciders with
               | [ j ] when not f.overlaps_truncated ->
                 let same =
                   (not (Dce_core.Auth.is_restrictive auth)) = first.earlier_allows
                 in
                 if same then
                   ( Findings.Subsumed { rule = f.rule; by = j },
                     Printf.sprintf
                       "every access it matches is already decided the same way by \
                        P%d: deleting it changes nothing" j )
                 else
                   ( Findings.Shadowed { rule = f.rule; by = j },
                     Printf.sprintf
                       "every access it matches is decided (oppositely) by P%d: the \
                        rule can never take effect" j )
               | _ ->
                 ( Findings.Shadowed { rule = f.rule; by = first.earlier },
                   Printf.sprintf
                     "no access survives to it under first-match (%d earlier rule(s) \
                      cover its domain%s)"
                     (List.length f.deciders)
                     (if f.overlaps_truncated then ", truncated" else "") )
             in
             emit { Findings.kind; witness; detail; status = Findings.Confirmed });
        List.iter
          (fun (o : Engine.overlap) ->
            if not o.same_sign then
              emit
                {
                  Findings.kind = Conflict { earlier = o.earlier; later = f.rule };
                  witness =
                    Some (witness_of_engine classes o.at ~expect:o.earlier_allows);
                  detail =
                    Printf.sprintf
                      "signs disagree on an overlapping domain: swapping P%d and P%d \
                       flips the witness to %s"
                      o.earlier f.rule
                      (if o.earlier_allows then "deny" else "allow");
                  status = Findings.Confirmed;
                })
          f.overlaps
      end)
    fates;
  List.rev !acc

let lint_findings policy =
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  List.iteri
    (fun i (a : Dce_core.Auth.t) ->
      let first_right = List.hd a.rights in
      List.iter
        (function
          | S.User u when not (P.is_user policy u) ->
            emit
              {
                Findings.kind = Dangling_user { rule = i; user = u };
                witness =
                  Some
                    {
                      Findings.user = u;
                      right = first_right;
                      pos = None;
                      expect = false;
                    };
                detail =
                  "the user is not registered (deleted?): the reference is inert \
                   until a re-registration resurrects it";
                status = Findings.Confirmed;
              }
          | S.Group g
            when not (List.exists (fun u -> P.member policy g u) (P.users policy)) ->
            emit
              {
                Findings.kind = Dangling_group { rule = i; group = g };
                witness = None;
                detail =
                  (let exists = List.mem_assoc g (P.groups policy) in
                   let what = if exists then "is empty" else "does not exist" in
                   if Dce_core.Auth.is_restrictive a then
                     Printf.sprintf "group %s %s" g what
                   else
                     Printf.sprintf
                       "group %s %s but is still granted rights: the grant is dead \
                        until someone joins" g what);
                status = Findings.Confirmed;
              }
          | _ -> ())
        (List.sort_uniq compare a.subjects);
      List.iter
        (function
          | O.Named n when P.resolve policy n = None ->
            emit
              {
                Findings.kind = Dangling_object { rule = i; name = n };
                witness = None;
                detail = "the named object is not registered (deleted?)";
                status = Findings.Confirmed;
              }
          | _ -> ())
        (List.sort_uniq compare a.objects))
    (P.auths policy);
  List.rev !acc

let run ?classes policy =
  let engine, fates = Engine.build ?classes policy in
  let classes = Engine.classes engine in
  let lints = lint_findings policy in
  let dangling = Hashtbl.create 7 in
  List.iter
    (fun (f : Findings.t) ->
      match f.kind with
      | Dangling_user { rule; _ }
      | Dangling_group { rule; _ }
      | Dangling_object { rule; _ } -> Hashtbl.replace dangling rule ()
      | _ -> ())
    lints;
  let has_dangling rule = Hashtbl.mem dangling rule in
  let findings = fate_findings policy classes ~has_dangling fates @ lints in
  let findings = List.map (Findings.validate policy) findings in
  { policy; engine; fates; findings }

let errors r =
  List.filter
    (fun (f : Findings.t) ->
      f.status = Findings.Confirmed && Findings.severity f.kind = `Error)
    r.findings

let warnings r =
  List.filter
    (fun (f : Findings.t) ->
      f.status = Findings.Confirmed && Findings.severity f.kind = `Warning)
    r.findings

let refuted r =
  List.filter (fun (f : Findings.t) -> f.status <> Findings.Confirmed) r.findings

let pp_report ppf r =
  let n_err = List.length (errors r)
  and n_warn = List.length (warnings r)
  and n_ref = List.length (refuted r) in
  Format.fprintf ppf
    "@[<v>policy: %d rule(s), %d user(s), %d group(s), %d object(s)@ index: %d \
     class(es), %d segment(s)@ "
    (P.auth_count r.policy)
    (List.length (P.users r.policy))
    (List.length (P.groups r.policy))
    (List.length (P.objects r.policy))
    (Classes.count (Engine.classes r.engine))
    (Engine.seg_count r.engine);
  List.iter (fun f -> Format.fprintf ppf "%a@ " Findings.pp f) r.findings;
  Format.fprintf ppf "findings: %d error(s), %d warning(s)%s@]" n_err n_warn
    (if n_ref > 0 then Printf.sprintf ", %d REFUTED (analyzer bug!)" n_ref else "")

let report_to_json r =
  J.Obj
    [
      ("rules", J.Int (P.auth_count r.policy));
      ("classes", J.Int (Classes.count (Engine.classes r.engine)));
      ("segments", J.Int (Engine.seg_count r.engine));
      ("errors", J.Int (List.length (errors r)));
      ("warnings", J.Int (List.length (warnings r)));
      ("refuted", J.Int (List.length (refuted r)));
      ("findings", J.List (List.map Findings.to_json r.findings));
    ]
