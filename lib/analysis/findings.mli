(** Analyzer findings and the witness-validation loop.

    Every positional finding carries a concrete witness access and a
    claim about it: which rule decides it ({!Dce_core.Policy.explain})
    and whether it is allowed ({!Dce_core.Policy.check}).  {!validate}
    replays the witness through the {e real} first-match checker; only a
    finding whose replay matches its claim is [Confirmed].  A bug in the
    symbolic engine therefore produces [Refuted] findings — visible and
    alarming — never a confirmed false report. *)

type witness = {
  user : Dce_core.Subject.user;
  right : Dce_core.Right.t;
  pos : int option;
  expect : bool;  (** the decision the analyzer claims the policy makes *)
}

type kind =
  | Shadowed of { rule : int; by : int }
      (** no access survives to [rule]; [by] decides the witness *)
  | Subsumed of { rule : int; by : int }
      (** shadowed by the single same-sign rule [by]: pure redundancy *)
  | Never_matches of { rule : int }
      (** the rule's denotation is empty — it matches no access at all *)
  | Conflict of { earlier : int; later : int }
      (** signs disagree on an overlapping domain and the order matters:
          swapping the two rules would change the witness's decision *)
  | Dangling_user of { rule : int; user : int }
      (** the rule names an unregistered user (e.g. after [del_user]) *)
  | Dangling_group of { rule : int; group : string }
      (** the rule names a group that is missing or empty *)
  | Dangling_object of { rule : int; name : string }
      (** the rule names an object that does not resolve (after [del_obj]) *)

type status =
  | Confirmed
  | Refuted of string  (** witness replay disagreed — engine bug, never hidden *)

type t = {
  kind : kind;
  witness : witness option;  (** [None] for structural lints with no access *)
  detail : string;
  status : status;
}

val severity : kind -> [ `Error | `Warning ]
(** Dead and order-sensitive rules are errors (the policy does not mean
    what it says); dangling references are warnings (retained by design,
    see {!Dce_core.Policy.del_user}). *)

val validate : Dce_core.Policy.t -> t -> t
(** Replay the witness through [Policy.explain]/[Policy.check] and set
    the status.  Witness-less findings are confirmed structurally by
    their constructors. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Dce_obs.Json.t
