module P = Dce_core.Policy
module IntSet = Set.Make (Int)

type t = {
  class_of : (int, int) Hashtbl.t;
  reps : int array;
  members : int array array;
}

(* A user's discriminator: either "named individually somewhere" (own
   class) or the per-policy (registered?, groups containing u) vector.
   No authorization can distinguish two users with equal keys. *)
type key =
  | Named of int
  | Profile of (bool * string list) list

let build policies =
  let named = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun (a : Dce_core.Auth.t) ->
          List.iter
            (function
              | Dce_core.Subject.User u -> Hashtbl.replace named u ()
              | Dce_core.Subject.Any | Dce_core.Subject.Group _ -> ())
            a.subjects)
        (P.auths p))
    policies;
  let universe =
    List.fold_left
      (fun s p -> List.fold_left (fun s u -> IntSet.add u s) s (P.users p))
      IntSet.empty policies
  in
  let group_names = List.map (fun p -> List.map fst (P.groups p)) policies in
  let key u =
    if Hashtbl.mem named u then Named u
    else
      Profile
        (List.map2
           (fun p gs ->
             (P.is_user p u, List.filter (fun g -> P.member p g u) gs))
           policies group_names)
  in
  let buckets = Hashtbl.create 64 in
  IntSet.iter
    (fun u ->
      let k = key u in
      let l = try Hashtbl.find buckets k with Not_found -> [] in
      Hashtbl.replace buckets k (u :: l))
    universe;
  let classes =
    List.sort compare
      (Hashtbl.fold (fun _ us acc -> List.sort compare us :: acc) buckets [])
  in
  let n = List.length classes in
  let members = Array.make n [||] in
  let reps = Array.make n 0 in
  let class_of = Hashtbl.create (max 16 (IntSet.cardinal universe)) in
  List.iteri
    (fun i us ->
      let arr = Array.of_list us in
      members.(i) <- arr;
      reps.(i) <- arr.(0);
      Array.iter (fun u -> Hashtbl.replace class_of u i) arr)
    classes;
  { class_of; reps; members }

let count t = Array.length t.reps
let rep t i = t.reps.(i)
let members t i = Array.to_list t.members.(i)
let size t i = Array.length t.members.(i)
let class_of_user t u = Hashtbl.find_opt t.class_of u

let classes_where t f =
  let acc = ref [] in
  for i = count t - 1 downto 0 do
    if f t.reps.(i) then acc := i :: !acc
  done;
  !acc
