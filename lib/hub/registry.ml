type 'e factory =
  string -> ('e Dce_core.Controller.t * 'e Dce_store.Persist.t option, string) result

type 'e t = {
  tbl : (string, 'e Session.t) Hashtbl.t;
  factory : 'e factory;
  max_docs : int;
}

let create ?(max_docs = 4096) ~factory () = { tbl = Hashtbl.create 16; factory; max_docs }

let find t name = Hashtbl.find_opt t.tbl name

let count t = Hashtbl.length t.tbl

let open_doc t name =
  match Doc_name.validate name with
  | Error e -> Error e
  | Ok name -> (
    match Hashtbl.find_opt t.tbl name with
    | Some s -> Ok s
    | None ->
      if Hashtbl.length t.tbl >= t.max_docs then
        Error (Printf.sprintf "registry full (%d documents)" t.max_docs)
      else (
        match t.factory name with
        | Error e -> Error (Printf.sprintf "cannot open %S: %s" name e)
        | Ok (controller, journal) ->
          let s = Session.create ~name ~controller ~journal in
          Hashtbl.add t.tbl name s;
          Ok s))

let docs t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.tbl []
  |> List.sort (fun a b -> compare (Session.name a) (Session.name b))

let names t = List.map Session.name (docs t)
