(** One hosted document session: the per-doc half of the hub.

    A session owns the document's replica (its {!Dce_core.Controller}
    with the hosted relay site), its optional durability journal and its
    member list — which connection is attached as which site, speaking
    which protocol dialect.  All stepping, fan-out and policy lives in
    {!Hub}; this module is plain state so the registry and the hub can
    share it without a dependency cycle. *)

type dialect =
  | V1  (** greeted with [Hello]: bare [Msg]/[Snapshot] frames *)
  | V2  (** greeted with [Attach]: [Doc_msg]/[Doc_snapshot] frames *)

type member = { conn : Dce_netd.Conn.t; site : int; dialect : dialect }

type 'e t

val create :
  name:string ->
  controller:'e Dce_core.Controller.t ->
  journal:'e Dce_store.Persist.t option ->
  'e t

val name : 'e t -> string
val controller : 'e t -> 'e Dce_core.Controller.t
val set_controller : 'e t -> 'e Dce_core.Controller.t -> unit
val journal : 'e t -> 'e Dce_store.Persist.t option
val members : 'e t -> member list
val live_members : 'e t -> member list
val member_count : 'e t -> int
val connected_sites : 'e t -> int list

val find_site : 'e t -> site:int -> member option
(** The live member attached as [site], if any. *)

val member_of_conn : 'e t -> Dce_netd.Conn.t -> member option

val add_member : 'e t -> member -> bool
(** Returns [true] when this site has been a member before (a
    reconnect, for telemetry). *)

val remove_conn : 'e t -> Dce_netd.Conn.t -> bool
(** Drop every membership held by this connection; [true] if any. *)

val note_frontier :
  'e t -> site:int -> clock:Dce_ot.Vclock.t -> version:int -> unit
(** Absorb one site's stability advertisement: merge it (monotonically)
    into the per-doc frontier table and feed it to the hosted
    controller's {!Dce_core.Controller.receive_beacon}.  Sources: member
    [Beacon] frames, upstream aggregate beacons, and the hub's own
    periodic self-report. *)

val frontier : 'e t -> (int * (Dce_ot.Vclock.t * int)) list
(** The aggregate gossip table, site-ascending — what the hub fans to v2
    members and reports upstream. *)
