(** The session registry: document name → hosted {!Session}.

    Sessions are created lazily through the [factory] — the hub's
    policy hook for building (or recovering from disk) the controller
    and optional journal of a document it has not hosted before.  The
    factory runs at most once per name; [max_docs] bounds how many
    sessions one hub will host, so a hostile peer attaching to random
    names (when the hub allows auto-creation at all) cannot grow the
    process without bound. *)

type 'e factory =
  string -> ('e Dce_core.Controller.t * 'e Dce_store.Persist.t option, string) result

type 'e t

val create : ?max_docs:int -> factory:'e factory -> unit -> 'e t
(** [max_docs] defaults to 4096. *)

val open_doc : 'e t -> string -> ('e Session.t, string) result
(** The session for [name], running the factory if the name is new.
    Errors: invalid name ({!Doc_name.validate}), registry full, or a
    factory failure — the caller decides whether that drops a peer
    (unknown doc, auto-create off) or is fatal (startup). *)

val find : 'e t -> string -> 'e Session.t option
(** Lookup only — never creates. *)

val docs : 'e t -> 'e Session.t list
(** All hosted sessions, sorted by name. *)

val names : 'e t -> string list
val count : 'e t -> int
