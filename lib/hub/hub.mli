(** The multi-document hub: many hosted sessions, one event loop.

    Where the old single-session relay owned one controller and a flat
    connection list, a hub owns a {!Registry} of named {!Session}s and a
    set of multiplexed connections, stepped together from one
    {!Evloop}-based loop that tolerates thousands of fds.  Per
    connection the wire dialect is fixed by the greeting: a v1 [Hello]
    attaches the peer to the hub's default document and speaks bare
    [Msg]/[Snapshot] frames (full backward compatibility with old
    clients), a v2 [Attach] speaks [Doc_msg]/[Doc_snapshot] and may
    attach the same socket to any number of documents.

    Replication per document is the relay discipline unchanged: apply
    to the hosted controller first (semantically invalid input drops
    the peer as [Corrupt], and is never relayed), journal before any
    external effect, then fan the original bytes verbatim to the
    document's other members.

    Federation: given [~upstream:(host, port)], the hub is a {e leaf}
    that attaches to its home hub through one {!Upstream} link, per
    hosted document.  Local frames are forwarded up, frames fanned down
    by the home are applied and rebroadcast to local members, and every
    forwarded frame carries the hub id of the first relay that accepted
    it — a frame arriving with our own id already went around a loop
    and is dropped.  Requires a nonzero, topology-unique [hub_id]. *)

type config = {
  heartbeat_ms : int;
  idle_timeout_ms : int;
  max_outbox : int;
  max_frame : int;
  hub_id : int;  (** 0 = standalone; federation requires nonzero *)
  default_doc : string;  (** what a v1 [Hello] attaches to *)
  auto_create : bool;
      (** open unknown docs on [Attach] via the factory; off, an
          unknown name drops the peer as [Corrupt] *)
  max_docs : int;  (** registry bound, see {!Registry.create} *)
  beacon_ms : int;
      (** cadence of the per-doc aggregate stability [Beacon] fanned to
          v2 members and reported up the federation link *)
  compact_ms : int;
      (** cadence of automatic {!Dce_core.Controller.compact} on every
          hosted session; journaled sessions checkpoint first so the
          compaction cut never outruns the durability cut *)
}

val default_config : config
(** 5s heartbeat, 30s idle timeout, 4 MiB outbox, 8 MiB frames,
    [hub_id = 0], default doc ["main"], no auto-create, 4096 docs,
    5s beacon and compaction cadences. *)

type 'e t

val create :
  ?config:config ->
  ?metrics:Dce_obs.Metrics.t ->
  ?trace:Dce_obs.Trace.sink ->
  ?addr:Unix.inet_addr ->
  ?upstream:string * int ->
  ?seed:int ->
  ?chaos:int * Dce_netd.Faults.config ->
  ?eq:('e -> 'e -> bool) ->
  codec:'e Dce_wire.Proto.elt_codec ->
  factory:'e Registry.factory ->
  docs:string list ->
  port:int ->
  unit ->
  'e t
(** Bind and listen (port 0 picks a free port, see {!port}); [docs] are
    opened through the factory immediately, further names on demand
    (auto-create or the default doc).  [upstream] makes this hub a
    federation leaf; [seed] fixes its reconnect jitter and [eq] is the
    element equality used when loading upstream snapshots.  Raises
    [Failure] when a pre-opened doc's factory fails and
    [Invalid_argument] on a misconfigured federation (zero hub id, no
    documents). *)

val port : 'e t -> int
val hub_id : 'e t -> int
val default_doc : 'e t -> string

val docs : 'e t -> string list
(** Hosted document names, sorted. *)

val controller : ?doc:string -> 'e t -> 'e Dce_core.Controller.t
(** The hosted replica of [doc] (default: the default document).
    Raises [Invalid_argument] for unknown names. *)

val connected_sites : ?doc:string -> 'e t -> int list
val member_count : ?doc:string -> 'e t -> int

val conn_count : 'e t -> int
(** Live connections (an idle multiplexed socket counts once). *)

val outbox_bytes : 'e t -> int
(** Total bytes queued for write across live connections — the
    backpressure level exported as a gauge by [dced]. *)

val upstream_connected : 'e t -> bool

val upstream_health : 'e t -> Upstream.health option
(** [None] for a standalone hub. *)

val journal_errors : 'e t -> int
(** Journal append/checkpoint failures since start (cumulative).
    Durability degradations, not availability: the sessions kept
    running. *)

val max_stable_lag : 'e t -> int
(** Worst {!Dce_core.Controller.stable_lag} across hosted docs. *)

val healthz : ?max_lag:int -> 'e t -> unit -> Dce_obs.Json.t
(** Health report for {!Dce_netd.Admin}: status ["ok"], or ["degraded"]
    (served as a 503) with a ["reasons"] list when the federation link
    is down, any journal write has failed, or the stability lag exceeds
    [max_lag] (default 100k events). *)

val step : ?timeout_ms:int -> 'e t -> unit
(** One event-loop turn over every session: accept, poll (via
    {!Evloop.wait}, blocking at most [timeout_ms]), read and dispatch,
    flush, pump the federation link, heartbeat, reap. *)

val run : ?tick_ms:int -> ?on_tick:('e t -> unit) -> 'e t -> unit
(** {!step} until {!shutdown}; [on_tick] runs once per loop turn
    (admin endpoints, stats, signal polling). *)

val kick : ?doc:string -> 'e t -> site:int -> bool
(** Disconnect the member attached as [site] ([doc] omitted: in every
    document).  [true] if anyone was kicked. *)

val stopped : 'e t -> bool

val shutdown : 'e t -> unit
(** Send [Bye] everywhere, close every socket and the listener, close
    the federation link.  Sessions (and their journals) are the
    caller's to checkpoint/close — the hub never owned them. *)
