/* poll(2) binding for Evloop.

   Unix.select tops out at FD_SETSIZE (1024) descriptors — one fd past
   that and fd_set construction is undefined behaviour.  A hub hosting
   thousands of member connections needs poll, which takes an explicit
   array and has no such cliff.

   The pollfd array is built in C-heap memory (not the OCaml heap)
   because the runtime lock is released around the poll call and a
   concurrent GC may move OCaml blocks while we sleep. */

#include <errno.h>
#include <poll.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

/* event/revent bits shared with evloop.ml */
#define DCE_RD 1
#define DCE_WR 2

CAMLprim value dce_evloop_poll(value v_fds, value v_events, value v_revents,
                               value v_timeout_ms)
{
  CAMLparam4(v_fds, v_events, v_revents, v_timeout_ms);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  if (n > 0) {
    pfds = calloc(n, sizeof *pfds);
    if (pfds == NULL) caml_failwith("evloop: out of memory");
  }
  for (mlsize_t i = 0; i < n; i++) {
    int ev = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short)(((ev & DCE_RD) ? POLLIN : 0) |
                             ((ev & DCE_WR) ? POLLOUT : 0));
  }
  caml_enter_blocking_section();
  int r = poll(pfds, (nfds_t)n, timeout);
  int saved_errno = errno;
  caml_leave_blocking_section();
  if (r < 0) {
    free(pfds);
    if (saved_errno == EINTR)
      CAMLreturn(Val_int(0)); /* spurious wakeup; the caller re-polls */
    char msg[128];
    snprintf(msg, sizeof msg, "evloop: poll: %s", strerror(saved_errno));
    caml_failwith(msg);
  }
  /* POLLHUP/POLLERR/POLLNVAL surface as readiness on whatever the
     caller asked for: the read/write handler then hits EOF or EPIPE and
     moves the connection to its closed state. */
  for (mlsize_t i = 0; i < n; i++) {
    short re = pfds[i].revents;
    int out = 0;
    if (re & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) out |= DCE_RD;
    if (re & (POLLOUT | POLLHUP | POLLERR | POLLNVAL)) out |= DCE_WR;
    Field(v_revents, i) = Val_int(out);
  }
  free(pfds);
  CAMLreturn(Val_int(r));
}
