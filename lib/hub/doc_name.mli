(** Document names: the keys of the hub's session registry.

    A valid name is 1–64 bytes of [A-Za-z0-9._-] not starting with ['.']
    or ['-'] — safe to use verbatim as a filesystem directory name (the
    per-doc durability layout), a metric label value and a wire string.
    Names arrive in [Attach] frames from untrusted peers, so the hub
    validates before touching the registry and drops the connection as
    [Corrupt] on failure. *)

val max_length : int

val validate : string -> (string, string) result
val valid : string -> bool
