module Obs = Dce_obs
module M = Obs.Metrics
module Proto = Dce_wire.Proto
module Vclock = Dce_ot.Vclock
module Controller = Dce_core.Controller
module Conn = Dce_netd.Conn
module Tele = Dce_netd.Tele
module Relay_proto = Dce_netd.Relay_proto
module Faults = Dce_netd.Faults
module Persist = Dce_store.Persist

type config = {
  heartbeat_ms : int;
  idle_timeout_ms : int;
  max_outbox : int;
  max_frame : int;
  hub_id : int;
  default_doc : string;
  auto_create : bool;
  max_docs : int;
  beacon_ms : int;
  compact_ms : int;
}

let default_config =
  {
    heartbeat_ms = 5_000;
    idle_timeout_ms = 30_000;
    max_outbox = 4 * 1024 * 1024;
    max_frame = 8 * 1024 * 1024;
    hub_id = 0;
    default_doc = "main";
    auto_create = false;
    max_docs = 4096;
    beacon_ms = 5_000;
    compact_ms = 5_000;
  }

(* Per-connection mux state.  Which docs a connection is attached to
   (and as which site) is tracked here for routing and teardown; the
   per-doc member lists used for fan-out live in the sessions. *)
type conn_state = {
  conn : Conn.t;
  mutable v1 : bool; (* greeted with the single-doc Hello *)
  mutable atts : (string * int) list; (* doc name -> site *)
}

type 'e t = {
  cfg : config;
  tele : Tele.t;
  reg : M.t; (* per-doc labeled series; disabled registry when unmetered *)
  trace : Obs.Trace.sink;
  codec : 'e Proto.elt_codec;
  eq : 'e -> 'e -> bool;
  listen_fd : Unix.file_descr;
  port : int;
  registry : 'e Registry.t;
  upstream : Upstream.t option;
  (* chaos runs: seeded fault plans for every accepted member
     connection (and the federation link), reproducible from one seed *)
  chaos : (int * Faults.config) option;
  mutable conn_seq : int;
  mutable conns : conn_state list;
  mutable stopped : bool;
  mutable last_beacon_ms : float;
  mutable last_compact_ms : float;
  mutable journal_errors : int;
}

let trace_s t s peer action detail =
  if Obs.Trace.enabled t.trace then begin
    let c = Session.controller s in
    Obs.Trace.emit t.trace ~site:(Controller.site c) ~clock:(Controller.clock c)
      ~version:(Controller.version c)
      (Obs.Trace.Net { peer; action; detail })
  end

let member_gauge t doc = M.gauge t.reg (M.with_label "hub.members" ~key:"doc" ~value:doc)

let doc_frames t doc = M.counter t.reg (M.with_label "hub.frames" ~key:"doc" ~value:doc)

let update_doc_gauges t s =
  M.set (member_gauge t (Session.name s)) (Session.member_count s);
  M.set (M.gauge t.reg "hub.docs") (Registry.count t.registry)

let create ?(config = default_config) ?metrics ?(trace = Obs.Trace.null)
    ?(addr = Unix.inet_addr_loopback) ?upstream:up ?seed ?chaos ?(eq = ( = )) ~codec
    ~factory ~docs ~port () =
  (match up with
   | Some _ when config.hub_id = 0 ->
     invalid_arg "Hub.create: federation requires a nonzero hub_id"
   | _ -> ());
  let registry = Registry.create ~max_docs:config.max_docs ~factory () in
  List.iter
    (fun d ->
      match Registry.open_doc registry d with
      | Ok _ -> ()
      | Error e -> failwith ("Hub.create: " ^ e))
    docs;
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let upstream =
    Option.map
      (fun (host, uport) ->
        let site =
          match Registry.docs registry with
          | s :: _ -> Controller.site (Session.controller s)
          | [] -> invalid_arg "Hub.create: federation requires at least one document"
        in
        let faults =
          Option.map
            (fun (cseed, cfg) -> Faults.create ~config:cfg ~seed:cseed ~label:"upstream" ())
            chaos
        in
        let u = Upstream.create ?metrics ?seed ?faults ~host ~port:uport ~site () in
        List.iter
          (fun s -> Upstream.attach u ~doc:(Session.name s))
          (Registry.docs registry);
        u)
      up
  in
  let t =
    {
      cfg = config;
      tele = Tele.make ?metrics ();
      reg = (match metrics with Some m -> m | None -> M.create ~enabled:false ());
      trace;
      codec;
      eq;
      listen_fd = fd;
      port;
      registry;
      upstream;
      chaos;
      conn_seq = 0;
      conns = [];
      stopped = false;
      last_beacon_ms = 0.;
      last_compact_ms = 0.;
      journal_errors = 0;
    }
  in
  List.iter (update_doc_gauges t) (Registry.docs registry);
  t

let port t = t.port
let hub_id t = t.cfg.hub_id
let default_doc t = t.cfg.default_doc
let docs t = Registry.names t.registry
let stopped t = t.stopped
let upstream_connected t =
  match t.upstream with Some u -> Upstream.connected u | None -> false

let upstream_health t = Option.map Upstream.health t.upstream
let journal_errors t = t.journal_errors

let max_stable_lag t =
  List.fold_left
    (fun acc s -> max acc (Controller.stable_lag (Session.controller s)))
    0 (Registry.docs t.registry)

(* One JSON health report for the admin plane: a not-"ok" status makes
   {!Dce_netd.Admin} serve /healthz as a 503, so plain HTTP probes see
   degradation without parsing the body.  [max_lag] bounds the tolerated
   stability lag (events integrated but not yet known stable, the bytes
   compaction cannot reclaim) across hosted docs. *)
let healthz ?(max_lag = 100_000) t () =
  let lag = max_stable_lag t in
  let problems = ref [] in
  let note p = problems := p :: !problems in
  (match upstream_health t with
   | Some (Upstream.Degraded { reason; since_ms }) ->
     note
       (Printf.sprintf "upstream degraded for %.0fms: %s"
          (Obs.Clock.now_ms () -. since_ms)
          reason)
   | Some Upstream.Healthy | None -> ());
  if t.journal_errors > 0 then
    note (Printf.sprintf "%d journal error(s)" t.journal_errors);
  if lag > max_lag then note (Printf.sprintf "stable lag %d over limit %d" lag max_lag);
  let reasons =
    match !problems with
    | [] -> []
    | ps -> [ ("reasons", Obs.Json.List (List.map (fun p -> Obs.Json.String p) (List.rev ps))) ]
  in
  Obs.Json.Obj
    ([
       ("status", Obs.Json.String (if !problems = [] then "ok" else "degraded"));
       ("role", Obs.Json.String "hub");
       ("docs", Obs.Json.Int (List.length (Registry.names t.registry)));
       ("stable_lag", Obs.Json.Int lag);
       ("journal_errors", Obs.Json.Int t.journal_errors);
     ]
     @ reasons)

let session t doc =
  match Registry.find t.registry doc with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Hub: unknown document %S" doc)

let the_doc t doc = match doc with Some d -> d | None -> t.cfg.default_doc

let controller ?doc t = Session.controller (session t (the_doc t doc))

let connected_sites ?doc t = Session.connected_sites (session t (the_doc t doc))

let member_count ?doc t = Session.member_count (session t (the_doc t doc))

let conn_count t = List.length (List.filter (fun cs -> Conn.alive cs.conn) t.conns)

let outbox_bytes t =
  List.fold_left
    (fun acc cs -> if Conn.alive cs.conn then acc + Conn.outbox_bytes cs.conn else acc)
    0 t.conns

(* ------------------------------------------------------------------ *)
(* Attach / fan-out                                                   *)

(* [resume] is a v2 joiner's presented resume point.  When the hosted
   log still covers it, the state transfer is a delta — the suffix the
   joiner lacks — instead of the full O(n x |H|) snapshot encode; when
   the log has compacted past it (or there is no resume point), the
   full snapshot is the sound fallback. *)
let greeting_frames t s dialect doc ~resume =
  let ctrl = Session.controller s in
  let relay_site = Controller.site ctrl in
  let full () = Proto.encode_state t.codec (Controller.dump ctrl) in
  match dialect with
  | Session.V1 ->
    [ Relay_proto.Welcome { relay_site; heartbeat_ms = t.cfg.heartbeat_ms };
      Relay_proto.Snapshot (full ());
    ]
  | Session.V2 ->
    let transfer =
      match
        Option.bind resume (fun (clock, version) ->
            Controller.delta_since ctrl ~clock ~version)
      with
      | Some d ->
        M.incr (M.counter t.reg "hub.deltas");
        Relay_proto.Doc_delta { doc; delta = Proto.encode_delta t.codec d }
      | None -> Relay_proto.Doc_snapshot { doc; state = full () }
    in
    [ Relay_proto.Attached { doc; relay_site; heartbeat_ms = t.cfg.heartbeat_ms };
      transfer;
    ]

let attach ?resume t cs ~dialect ~session:s ~site =
  let doc = Session.name s in
  (* a site reconnecting through a fresh socket supersedes its old,
     possibly half-dead attachment; the old connection is closed once it
     holds no other attachment *)
  (match Session.find_site s ~site with
   | Some m when m.Session.conn != cs.conn ->
     ignore (Session.remove_conn s m.Session.conn);
     (match List.find_opt (fun c' -> c'.conn == m.Session.conn) t.conns with
      | Some c' ->
        c'.atts <- List.filter (fun (d, _) -> d <> doc) c'.atts;
        if c'.atts = [] then Conn.mark_closed c'.conn Conn.Superseded
      | None -> ())
   | _ -> ());
  cs.atts <- cs.atts @ [ (doc, site) ];
  let again = Session.add_member s { Session.conn = cs.conn; site; dialect } in
  M.incr t.tele.Tele.connects;
  if again then M.incr t.tele.Tele.reconnects;
  trace_s t s site (if again then "reconnect" else "connect") (Conn.peer cs.conn);
  List.iter
    (fun frame -> Conn.send cs.conn (Relay_proto.encode frame))
    (greeting_frames t s dialect doc ~resume);
  M.incr t.tele.Tele.snapshots;
  trace_s t s site "snapshot" "";
  update_doc_gauges t s

(* Journal an integrated message and checkpoint on cadence.  Journal
   errors degrade durability, not availability: the live session keeps
   running and the failure is surfaced through the trace. *)
let journal_received t s m =
  match Session.journal s with
  | None -> ()
  | Some j -> (
    Persist.record j (Persist.Received m);
    match Persist.maybe_checkpoint j (Session.controller s) with
    | Ok did -> if did then trace_s t s (Controller.site (Session.controller s)) "checkpoint" ""
    | Error e ->
      t.journal_errors <- t.journal_errors + 1;
      trace_s t s (Controller.site (Session.controller s)) "journal_error" e)

let fan_frame s ~except ~origin bytes =
  let doc = Session.name s in
  let v1 = lazy (Relay_proto.encode (Relay_proto.Msg bytes)) in
  let v2 = lazy (Relay_proto.encode (Relay_proto.Doc_msg { doc; origin; msg = bytes })) in
  List.iter
    (fun (m : Session.member) ->
      let skip = match except with Some c -> m.Session.conn == c | None -> false in
      if not skip then
        Conn.send m.Session.conn
          (Lazy.force (match m.Session.dialect with Session.V1 -> v1 | Session.V2 -> v2)))
    (Session.members s)

let forward_up t ~from_upstream ~doc ~origin bytes =
  match t.upstream with
  | Some u when not from_upstream -> Upstream.send u ~doc ~origin bytes
  | _ -> ()

(* Apply one replication frame to a session and propagate it: fan the
   original bytes verbatim to the doc's other members (v1 members get
   the bare [Msg] dialect), forward up the federation link unless the
   frame came down it, and fan any validations the hosted controller
   emitted.  [src = None] marks frames from upstream. *)
let route t ~session:s ~src ~origin ~from_upstream bytes =
  let doc = Session.name s in
  if t.cfg.hub_id <> 0 && origin = t.cfg.hub_id then
    (* our own frame came back around the federation graph: drop it *)
    M.incr (M.counter t.reg "hub.loop_drops")
  else
    match Proto.decode_message_stamped t.codec bytes with
    | Error e -> (
      match src with
      | Some c -> Conn.mark_closed c (Conn.Corrupt ("bad message: " ^ e))
      | None -> Option.iter (fun u -> Upstream.close u) t.upstream)
    | Ok (stamp, m) -> (
      (match stamp with
       | Some st -> M.observe t.tele.Tele.e2e_ns (Obs.Clock.now_ns () - st.Proto.s_ns)
       | None -> ());
      (* [decode_message] validates the encoding only; applying the
         message is what checks its semantics.  A well-framed op with an
         out-of-range position or a fabricated serial/context must drop
         the peer, not the daemon — and must not be relayed. *)
      match Controller.receive (Session.controller s) m with
      | ctrl, emitted ->
        Session.set_controller s ctrl;
        journal_received t s m;
        M.incr t.tele.Tele.relayed;
        M.incr (doc_frames t doc);
        let origin = if origin <> 0 then origin else t.cfg.hub_id in
        fan_frame s ~except:src ~origin bytes;
        forward_up t ~from_upstream ~doc ~origin bytes;
        List.iter
          (fun em ->
            let eb = Proto.encode_message t.codec em in
            fan_frame s ~except:None ~origin:t.cfg.hub_id eb;
            (* emitted frames are local productions: they go up even
               when the triggering frame came down *)
            forward_up t ~from_upstream:false ~doc ~origin:t.cfg.hub_id eb)
          emitted
      | exception e ->
        let detail =
          match e with
          | Invalid_argument m | Failure m | Dce_ot.Document.Edit_conflict m -> m
          | e -> Printexc.to_string e
        in
        (match src with
         | Some c -> Conn.mark_closed c (Conn.Corrupt ("rejected message: " ^ detail))
         | None -> Option.iter (fun u -> Upstream.close u) t.upstream))

(* ------------------------------------------------------------------ *)
(* Member dispatch                                                    *)

let corrupt conn why = Conn.mark_closed conn (Conn.Corrupt why)

let open_for_attach t name =
  match Doc_name.validate name with
  | Error e -> Error e
  | Ok name -> (
    match Registry.find t.registry name with
    | Some s -> Ok s
    | None ->
      if not (t.cfg.auto_create || name = t.cfg.default_doc) then
        Error (Printf.sprintf "unknown document %S" name)
      else (
        match Registry.open_doc t.registry name with
        | Ok s ->
          Option.iter (fun u -> Upstream.attach u ~doc:name) t.upstream;
          update_doc_gauges t s;
          Ok s
        | Error e -> Error e))

let dispatch t cs payload =
  match Relay_proto.decode payload with
  | Error e -> corrupt cs.conn ("bad envelope: " ^ e)
  | Ok msg -> (
    match msg with
    | Relay_proto.Hello { site } ->
      if cs.atts <> [] || cs.v1 then corrupt cs.conn "duplicate hello"
      else (
        cs.v1 <- true;
        match open_for_attach t t.cfg.default_doc with
        | Ok s -> attach t cs ~dialect:Session.V1 ~session:s ~site
        | Error e -> corrupt cs.conn e)
    | Relay_proto.Attach { doc; site } ->
      if cs.v1 then corrupt cs.conn "attach on a v1 connection"
      else if List.mem_assoc doc cs.atts then corrupt cs.conn ("duplicate attach: " ^ doc)
      else (
        match open_for_attach t doc with
        | Ok s -> attach t cs ~dialect:Session.V2 ~session:s ~site
        | Error e -> corrupt cs.conn e)
    | Relay_proto.Attach_at { doc; site; resume } ->
      if cs.v1 then corrupt cs.conn "attach on a v1 connection"
      else if List.mem_assoc doc cs.atts then corrupt cs.conn ("duplicate attach: " ^ doc)
      else (
        match Proto.decode_frontier resume with
        | Error e -> corrupt cs.conn ("bad resume point: " ^ e)
        | Ok entries -> (
          match open_for_attach t doc with
          | Ok s ->
            (* the presented clock is also a stability advertisement:
               absorb it before choosing the transfer *)
            List.iter
              (fun (b : Proto.beacon) ->
                Session.note_frontier s ~site:b.Proto.b_site ~clock:b.Proto.b_clock
                  ~version:b.Proto.b_version)
              entries;
            let resume =
              match entries with
              | [ b ] when b.Proto.b_site = site ->
                Some (b.Proto.b_clock, b.Proto.b_version)
              | _ -> None (* malformed resume blob: serve the snapshot *)
            in
            attach ?resume t cs ~dialect:Session.V2 ~session:s ~site
          | Error e -> corrupt cs.conn e))
    | Relay_proto.Beacon { doc; frontier } -> (
      if cs.v1 then corrupt cs.conn "beacon on a v1 connection"
      else
        match List.mem_assoc doc cs.atts with
        | false -> corrupt cs.conn ("beacon for unattached document " ^ doc)
        | true -> (
          match Proto.decode_frontier frontier with
          | Error e -> corrupt cs.conn ("bad frontier: " ^ e)
          | Ok entries ->
            let s = session t doc in
            List.iter
              (fun (b : Proto.beacon) ->
                Session.note_frontier s ~site:b.Proto.b_site ~clock:b.Proto.b_clock
                  ~version:b.Proto.b_version)
              entries))
    | Relay_proto.Detach { doc } -> (
      if cs.v1 then corrupt cs.conn "detach on a v1 connection"
      else
        match List.mem_assoc doc cs.atts with
        | false -> corrupt cs.conn ("detach without attach: " ^ doc)
        | true ->
          cs.atts <- List.filter (fun (d, _) -> d <> doc) cs.atts;
          (match Registry.find t.registry doc with
           | Some s ->
             ignore (Session.remove_conn s cs.conn);
             (* a conn can re-attach later; sessions keep running *)
             update_doc_gauges t s
           | None -> ()))
    | Relay_proto.Msg bytes -> (
      match cs.atts with
      | [ (doc, _site) ] when cs.v1 ->
        route t ~session:(session t doc) ~src:(Some cs.conn) ~origin:0
          ~from_upstream:false bytes
      | _ when not cs.v1 -> corrupt cs.conn "single-doc message on a multi-doc connection"
      | _ -> corrupt cs.conn "message before hello")
    | Relay_proto.Doc_msg { doc; origin; msg } -> (
      if cs.v1 then corrupt cs.conn "multi-doc message on a v1 connection"
      else
        match List.mem_assoc doc cs.atts with
        | false -> corrupt cs.conn ("message for unattached document " ^ doc)
        | true ->
          route t ~session:(session t doc) ~src:(Some cs.conn) ~origin
            ~from_upstream:false msg)
    | Relay_proto.Ping -> Conn.send cs.conn (Relay_proto.encode Relay_proto.Pong)
    | Relay_proto.Pong -> ()
    | Relay_proto.Bye _ -> Conn.mark_closed cs.conn (Conn.Local "bye")
    | Relay_proto.Welcome _ | Relay_proto.Snapshot _ | Relay_proto.Attached _
    | Relay_proto.Doc_snapshot _ | Relay_proto.Doc_delta _ ->
      corrupt cs.conn "server-only envelope from a client")

(* ------------------------------------------------------------------ *)
(* Federation events                                                  *)

(* A session-state push to every member — the same resynchronization a
   late joiner gets, used after a federation merge brings in history
   that was never fanned out as frames. *)
let resync_members t s =
  let doc = Session.name s in
  let state = Proto.encode_state t.codec (Controller.dump (Session.controller s)) in
  List.iter
    (fun (m : Session.member) ->
      let frame =
        match m.Session.dialect with
        | Session.V1 -> Relay_proto.Snapshot state
        | Session.V2 -> Relay_proto.Doc_snapshot { doc; state }
      in
      Conn.send m.Session.conn (Relay_proto.encode frame);
      M.incr t.tele.Tele.snapshots)
    (Session.members s)

let handle_upstream_event t = function
  | Upstream.Up_connected | Upstream.Up_disconnected _ -> ()
  | Upstream.Up_beacon { doc; frontier } -> (
    match Registry.find t.registry doc with
    | None -> ()
    | Some s -> (
      match Proto.decode_frontier frontier with
      | Error _ -> Option.iter Upstream.close t.upstream
      | Ok entries ->
        List.iter
          (fun (b : Proto.beacon) ->
            Session.note_frontier s ~site:b.Proto.b_site ~clock:b.Proto.b_clock
              ~version:b.Proto.b_version)
          entries))
  | Upstream.Up_msg { doc; origin; msg } -> (
    match Registry.find t.registry doc with
    | None -> () (* a doc we never attached: ignore *)
    | Some s -> route t ~session:s ~src:None ~origin ~from_upstream:true msg)
  | Upstream.Up_snapshot { doc; state } -> (
    match Registry.find t.registry doc with
    | None -> ()
    | Some s -> (
      match Proto.decode_state t.codec state with
      | Error _ -> Option.iter Upstream.close t.upstream
      | Ok st -> (
        match Controller.load ~eq:t.eq st with
        | Error _ -> Option.iter Upstream.close t.upstream
        | Ok donor ->
          (* heal, don't replace: the donor's history replays through
             this replica's own [receive], duplicates drop out, and the
             returned messages are local requests the home had not seen
             — push those up so the healing is symmetric *)
          let donor_clock = Controller.clock donor in
          let donor_version = Controller.version donor in
          let merged, out = Controller.catch_up (Session.controller s) donor in
          (* [catch_up]'s re-feed covers only requests this replica
             generated, and a relay replica generates none — after a
             home restart the snapshot it sends is *behind* us and
             nothing else on this link will ever resend the history it
             lost.  Push up the whole suffix the donor lacks, whatever
             its origin: receivers deduplicate, so over-sending is
             safe, and security is re-derived at the home as always.
             Impossible only once our log has compacted past the
             donor's clock; then the home stays degraded until a member
             re-broadcasts (counted below). *)
          let heal =
            if Vclock.leq (Controller.clock merged) donor_clock then []
            else
              match
                Controller.delta_since merged ~clock:donor_clock
                  ~version:donor_version
              with
              | Some d ->
                List.map (fun r -> Controller.Admin r) d.Controller.dl_admin
                @ List.map (fun q -> Controller.Coop q) d.Controller.dl_coop
              | None ->
                trace_s t s (Controller.site merged) "heal_impossible"
                  "upstream behind our compaction cut";
                []
          in
          Session.set_controller s merged;
          List.iter
            (fun m ->
              forward_up t ~from_upstream:false ~doc ~origin:t.cfg.hub_id
                (Proto.encode_message t.codec m))
            (heal @ out);
          (* the merge bypassed the per-message journal path; cut a
             checkpoint so recovery keeps the merged history *)
          (match Session.journal s with
           | Some j -> ignore (Persist.checkpoint j merged)
           | None -> ());
          (* members may lack whatever the merge brought in *)
          resync_members t s)))

(* ------------------------------------------------------------------ *)

let rec accept_all t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, sockaddr ->
    let peer =
      match sockaddr with
      | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      | Unix.ADDR_UNIX p -> p
    in
    let faults =
      (* label by arrival order, not peer address: the plan for the k-th
         accepted connection is then a pure function of the seed *)
      Option.map
        (fun (cseed, cfg) ->
          t.conn_seq <- t.conn_seq + 1;
          Faults.create ~config:cfg ~seed:cseed
            ~label:(Printf.sprintf "member-%d" t.conn_seq)
            ())
        t.chaos
    in
    let conn =
      Conn.create ~max_outbox:t.cfg.max_outbox ~max_frame:t.cfg.max_frame ?faults
        ~tele:t.tele ~peer fd
    in
    t.conns <- t.conns @ [ { conn; v1 = false; atts = [] } ];
    accept_all t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let heartbeats t =
  let now = Obs.Clock.now_ms () in
  List.iter
    (fun cs ->
      let c = cs.conn in
      if Conn.alive c then
        if now -. Conn.last_recv_ms c > float_of_int t.cfg.idle_timeout_ms then
          Conn.mark_closed c Conn.Idle
        else if now -. Conn.last_send_ms c > float_of_int t.cfg.heartbeat_ms then
          Conn.send c (Relay_proto.encode Relay_proto.Ping))
    t.conns

(* ------------------------------------------------------------------ *)
(* Stability protocol: beacon fan-out and window compaction           *)

let doc_window_gauges t s =
  let doc = Session.name s in
  let ctrl = Session.controller s in
  let g name v = M.set (M.gauge t.reg (M.with_label name ~key:"doc" ~value:doc)) v in
  g "hub.window_len" (Controller.window_len ctrl);
  g "hub.compacted_upto" (Vclock.sum (Controller.compacted_upto ctrl));
  g "hub.stable_lag" (Controller.stable_lag ctrl)

(* Fan the per-doc aggregate frontier — every member's latest
   advertisement plus the hub's own — to v2 members and up the
   federation link.  Gossip converges because [note_frontier] merges
   monotonically at every hop; echoes (the home fanning our own report
   back) are idempotent no-ops. *)
let beacon_session t s =
  let ctrl = Session.controller s in
  let clock, version = Controller.beacon ctrl in
  Session.note_frontier s ~site:(Controller.site ctrl) ~clock ~version;
  let entries =
    List.map
      (fun (site, (clock, version)) ->
        { Proto.b_site = site; b_clock = clock; b_version = version })
      (Session.frontier s)
  in
  let doc = Session.name s in
  let blob = Proto.encode_frontier entries in
  let frame = lazy (Relay_proto.encode (Relay_proto.Beacon { doc; frontier = blob })) in
  List.iter
    (fun (m : Session.member) ->
      match m.Session.dialect with
      | Session.V2 -> Conn.send m.Session.conn (Lazy.force frame)
      | Session.V1 -> () (* a v1 peer would drop the unknown tag *))
    (Session.members s);
  Option.iter (fun u -> Upstream.send_beacon u ~doc blob) t.upstream

(* Compact one session's log behind its stability frontier.  For a
   journaled session the cut is clamped to the durability cut — and when
   the frontier has advanced past the last durable snapshot, a fresh
   checkpoint is taken first so the clamp does not hold compaction back.
   A journaled session with no snapshot yet is never compacted. *)
let compact_session t s =
  let ctrl = Session.controller s in
  (match Session.journal s with
   | None -> Session.set_controller s (Controller.compact ctrl)
   | Some j ->
     let limit =
       let fresh_enough cut = Vclock.leq (Controller.stable_frontier ctrl) cut in
       match Persist.checkpoint_clock j with
       | Some cut when fresh_enough cut -> Some cut
       | _ -> (
         match Persist.checkpoint j ctrl with
         | Ok () ->
           trace_s t s (Controller.site ctrl) "checkpoint" "pre-compaction";
           Persist.checkpoint_clock j
         | Error e ->
           t.journal_errors <- t.journal_errors + 1;
           trace_s t s (Controller.site ctrl) "journal_error" e;
           Persist.checkpoint_clock j)
     in
     match limit with
     | Some limit -> Session.set_controller s (Controller.compact ~limit ctrl)
     | None -> ());
  doc_window_gauges t s

let stability t =
  let now = Obs.Clock.now_ms () in
  if now -. t.last_beacon_ms >= float_of_int t.cfg.beacon_ms then begin
    t.last_beacon_ms <- now;
    List.iter (beacon_session t) (Registry.docs t.registry)
  end;
  if now -. t.last_compact_ms >= float_of_int t.cfg.compact_ms then begin
    t.last_compact_ms <- now;
    List.iter (compact_session t) (Registry.docs t.registry)
  end

let reap t =
  let dead, live = List.partition (fun cs -> not (Conn.alive cs.conn)) t.conns in
  t.conns <- live;
  List.iter
    (fun cs ->
      let reason = Option.value ~default:Conn.Eof (Conn.closed_reason cs.conn) in
      M.incr t.tele.Tele.disconnects;
      let action =
        match reason with
        | Conn.Corrupt _ -> "frame_error"
        | Conn.Overflow -> "overflow"
        | Conn.Idle -> "idle"
        | _ -> "disconnect"
      in
      List.iter
        (fun (doc, site) ->
          match Registry.find t.registry doc with
          | Some s ->
            ignore (Session.remove_conn s cs.conn);
            trace_s t s site action (Conn.reason_string reason);
            update_doc_gauges t s
          | None -> ())
        cs.atts;
      (* best-effort flush of anything already queued (e.g. a Pong),
         then close *)
      Conn.flush cs.conn;
      Conn.shutdown cs.conn)
    dead

let step ?(timeout_ms = 0) t =
  if not t.stopped then begin
    accept_all t;
    let read =
      t.listen_fd
      :: List.filter_map
           (fun cs -> if Conn.alive cs.conn then Some (Conn.fd cs.conn) else None)
           t.conns
    in
    let read =
      match t.upstream with
      | Some u -> ( match Upstream.fd u with Some fd -> fd :: read | None -> read)
      | None -> read
    in
    let write =
      List.filter_map
        (fun cs -> if Conn.wants_write cs.conn then Some (Conn.fd cs.conn) else None)
        t.conns
    in
    let write =
      match t.upstream with
      | Some u when Upstream.wants_write u -> (
        match Upstream.fd u with Some fd -> fd :: write | None -> write)
      | _ -> write
    in
    let rd, wr = Evloop.wait ~timeout_ms ~read ~write () in
    if List.memq t.listen_fd rd then accept_all t;
    List.iter
      (fun cs ->
        if List.memq (Conn.fd cs.conn) rd then
          List.iter (dispatch t cs) (Conn.handle_readable cs.conn))
      t.conns;
    List.iter
      (fun cs -> if List.memq (Conn.fd cs.conn) wr then Conn.handle_writable cs.conn)
      t.conns;
    (match t.upstream with
     | Some u -> List.iter (handle_upstream_event t) (Upstream.step ~timeout_ms:0 u)
     | None -> ());
    heartbeats t;
    stability t;
    reap t
  end

let kick ?doc t ~site =
  let docs = match doc with Some d -> [ d ] | None -> Registry.names t.registry in
  let found = ref false in
  List.iter
    (fun d ->
      match Registry.find t.registry d with
      | None -> ()
      | Some s -> (
        match Session.find_site s ~site with
        | Some m ->
          found := true;
          Conn.mark_closed m.Session.conn (Conn.Local "kicked")
        | None -> ()))
    docs;
  !found

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Option.iter Upstream.close t.upstream;
    List.iter
      (fun cs ->
        Conn.send cs.conn (Relay_proto.encode (Relay_proto.Bye "hub shutting down"));
        Conn.handle_writable cs.conn;
        Conn.shutdown cs.conn)
      t.conns;
    t.conns <- [];
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

let run ?(tick_ms = 200) ?on_tick t =
  while not t.stopped do
    step ~timeout_ms:tick_ms t;
    match on_tick with None -> () | Some f -> f t
  done
