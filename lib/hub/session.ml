module Controller = Dce_core.Controller
module Vclock = Dce_ot.Vclock
module Conn = Dce_netd.Conn
module Persist = Dce_store.Persist
module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type dialect = V1 | V2

type member = { conn : Conn.t; site : int; dialect : dialect }

type 'e t = {
  name : string;
  journal : 'e Persist.t option;
  mutable ctrl : 'e Controller.t;
  mutable members : member list;
  mutable seen : IntSet.t; (* sites that joined at least once *)
  (* per-site stability gossip: the latest (clock, version) each site
     advertised, merged monotonically.  This is what the hub fans back
     out as the aggregate frontier and reports upstream — knowledge
     relayed on behalf of sites that are not directly connected here. *)
  mutable frontier : (Vclock.t * int) IntMap.t;
}

let create ~name ~controller ~journal =
  {
    name;
    journal;
    ctrl = controller;
    members = [];
    seen = IntSet.empty;
    frontier = IntMap.empty;
  }

let name t = t.name
let controller t = t.ctrl
let set_controller t c = t.ctrl <- c
let journal t = t.journal
let members t = t.members

let live_members t = List.filter (fun m -> Conn.alive m.conn) t.members

let member_count t = List.length (live_members t)

let connected_sites t =
  List.sort compare (List.map (fun m -> m.site) (live_members t))

let find_site t ~site =
  List.find_opt (fun m -> m.site = site && Conn.alive m.conn) t.members

let member_of_conn t conn =
  List.find_opt (fun m -> m.conn == conn) t.members

let add_member t member =
  t.members <- t.members @ [ member ];
  let again = IntSet.mem member.site t.seen in
  t.seen <- IntSet.add member.site t.seen;
  again

let remove_conn t conn =
  let gone, kept = List.partition (fun m -> m.conn == conn) t.members in
  t.members <- kept;
  gone <> []

(* Absorb one site's advertisement (monotone: clocks merge, versions
   max, so stale or duplicated gossip is a no-op) and feed it to the
   hub's own controller so its frontier advances too. *)
let note_frontier t ~site ~clock ~version =
  let clock, version =
    match IntMap.find_opt site t.frontier with
    | Some (old_clock, old_version) ->
      (Vclock.merge old_clock clock, max old_version version)
    | None -> (clock, version)
  in
  t.frontier <- IntMap.add site (clock, version) t.frontier;
  t.ctrl <- Controller.receive_beacon t.ctrl ~peer:site ~clock ~version

let frontier t = IntMap.bindings t.frontier
