module Controller = Dce_core.Controller
module Conn = Dce_netd.Conn
module Persist = Dce_store.Persist
module IntSet = Set.Make (Int)

type dialect = V1 | V2

type member = { conn : Conn.t; site : int; dialect : dialect }

type 'e t = {
  name : string;
  journal : 'e Persist.t option;
  mutable ctrl : 'e Controller.t;
  mutable members : member list;
  mutable seen : IntSet.t; (* sites that joined at least once *)
}

let create ~name ~controller ~journal =
  { name; journal; ctrl = controller; members = []; seen = IntSet.empty }

let name t = t.name
let controller t = t.ctrl
let set_controller t c = t.ctrl <- c
let journal t = t.journal
let members t = t.members

let live_members t = List.filter (fun m -> Conn.alive m.conn) t.members

let member_count t = List.length (live_members t)

let connected_sites t =
  List.sort compare (List.map (fun m -> m.site) (live_members t))

let find_site t ~site =
  List.find_opt (fun m -> m.site = site && Conn.alive m.conn) t.members

let member_of_conn t conn =
  List.find_opt (fun m -> m.conn == conn) t.members

let add_member t member =
  t.members <- t.members @ [ member ];
  let again = IntSet.mem member.site t.seen in
  t.seen <- IntSet.add member.site t.seen;
  again

let remove_conn t conn =
  let gone, kept = List.partition (fun m -> m.conn == conn) t.members in
  t.members <- kept;
  gone <> []
