(** Readiness polling without the [Unix.select] cliff.

    [Unix.select] is limited to [FD_SETSIZE] (1024) file descriptors;
    passing an fd whose {e number} is ≥ 1024 corrupts the fd_set.  A hub
    hosting thousands of member connections from one event loop needs
    [poll(2)], which takes an explicit array and scales to the process
    fd limit — this module is the thin binding, used by {!Hub},
    {!Upstream} and the daemons' loops.

    The interface mirrors the [select] idiom the rest of the repo uses:
    pass the fds you want readable/writable, get back the ready
    subsets.  [EINTR] (and a timeout expiring) returns two empty lists —
    callers always re-poll on the next tick.  Error conditions on a
    socket ([POLLERR]/[POLLHUP]/[POLLNVAL]) are reported as readiness so
    the owner's read/write handler observes the failure and retires the
    connection. *)

val wait :
  ?timeout_ms:int ->
  read:Unix.file_descr list ->
  write:Unix.file_descr list ->
  unit ->
  Unix.file_descr list * Unix.file_descr list
(** [(readable, writable)] among the given fds.  An fd may appear in
    both input lists (one underlying pollfd entry is used).
    [timeout_ms] defaults to 0 (pure poll); [-1] would block forever, so
    callers pass an explicit tick instead. *)

val sleep_ms : int -> unit
(** Sleep via an empty poll — a [select]-free [Unix.sleepf] for loops
    that have nothing to watch this tick. *)
