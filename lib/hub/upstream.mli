(** The federation link: a leaf hub's connection to its home hub.

    A leaf attaches upstream as a quasi-client, one [Attach] per hosted
    document over a single multiplexed socket, using the leaf's hosted
    relay site as its member site at the home hub.  Local frames are
    forwarded up with {!send}; frames fanned down by the home arrive as
    {!event}s for the hub to apply and rebroadcast to local members.
    Reconnection is jittered exponential {!Dce_netd.Backoff}, and every
    reconnect re-attaches all docs — each [Doc_snapshot] reply then
    heals the leaf's replica ({!Dce_core.Controller.catch_up}), exactly
    like a late-joining client.

    Like {!Dce_netd.Client} this owns the transport only; the hub holds
    the controllers and drives {!step} from its event loop. *)

type event =
  | Up_connected  (** TCP up; all docs re-attached *)
  | Up_snapshot of { doc : string; state : string }
  | Up_msg of { doc : string; origin : int; msg : string }
  | Up_beacon of { doc : string; frontier : string }
      (** the home hub's aggregate stability gossip for [doc] (a
          [Proto.encode_frontier] blob) — absorb it into the local
          session so the leaf's frontier covers sites attached
          elsewhere in the federation *)
  | Up_disconnected of string

type config = {
  heartbeat_ms : int;
  idle_timeout_ms : int;
  max_outbox : int;
  max_frame : int;
  backoff_base_ms : int;
  backoff_max_ms : int;
  max_buffer : int;
      (** byte bound on the degraded-mode up-forward buffer (default
          1 MiB); overflow falls back to snapshot healing *)
}

val default_config : config

type health =
  | Healthy
  | Degraded of { reason : string; since_ms : float }
      (** the link is down: [reason] is the last failure, [since_ms]
          when the degradation began.  Local members keep editing;
          up-forwarded frames buffer (bounded) until reconnect. *)

type t

val create :
  ?config:config ->
  ?metrics:Dce_obs.Metrics.t ->
  ?seed:int ->
  ?faults:Dce_netd.Faults.t ->
  host:string ->
  port:int ->
  site:int ->
  unit ->
  t
(** [site] is the member site this leaf presents at the home hub — its
    own hosted relay site, so supersede-on-reconnect works upstream
    too.  Does not touch the network; the first {!step} connects. *)

val attach : t -> doc:string -> unit
(** Add [doc] to the attached set (idempotent).  Sent immediately when
    live, and re-sent on every reconnect. *)

val send : t -> doc:string -> origin:int -> string -> unit
(** Queue a [Proto.encode_message] blob for [doc].  When the link is
    down the frame is buffered (bounded by [max_buffer]) and flushed
    right after the reconnect re-attach burst; overflow drops the frame
    — counted in {!buffer_dropped} — and the snapshot heals the gap. *)

val send_beacon : t -> doc:string -> string -> unit
(** Queue a [Proto.encode_frontier] blob for [doc] — this leaf's
    aggregate stability report.  Dropped when the link is down: beacons
    are periodic, the next cadence resends. *)

val step : ?timeout_ms:int -> t -> event list
(** Advance the link: progress the non-blocking connect, read,
    dispatch, flush, heartbeat, or wait out the backoff. *)

val connected : t -> bool
val stopped : t -> bool

val health : t -> health
(** [Degraded] from the first connect failure or disconnect until the
    next successful re-attach. *)

val buffered_bytes : t -> int
(** Bytes currently held in the degraded-mode up-forward buffer. *)

val buffer_dropped : t -> int
(** Frames dropped because the degraded-mode buffer was full
    (cumulative). *)

val fd : t -> Unix.file_descr option
(** For embedding in the hub's {!Evloop} set ([None] during backoff). *)

val wants_write : t -> bool

val close : t -> unit
(** Send [Bye], close, stop reconnecting. *)
