let max_length = 64

let valid_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '-'

let validate name =
  let n = String.length name in
  if n = 0 then Error "empty document name"
  else if n > max_length then
    Error (Printf.sprintf "document name longer than %d bytes" max_length)
  else if name.[0] = '.' || name.[0] = '-' then
    Error "document name may not start with '.' or '-'"
  else if String.for_all valid_char name then Ok name
  else Error "document name: allowed characters are A-Z a-z 0-9 . _ -"

let valid name = Result.is_ok (validate name)
