module Obs = Dce_obs
module M = Obs.Metrics
module Conn = Dce_netd.Conn
module Tele = Dce_netd.Tele
module Backoff = Dce_netd.Backoff
module Relay_proto = Dce_netd.Relay_proto
module Faults = Dce_netd.Faults

type event =
  | Up_connected
  | Up_snapshot of { doc : string; state : string }
  | Up_msg of { doc : string; origin : int; msg : string }
  | Up_beacon of { doc : string; frontier : string }
  | Up_disconnected of string

type config = {
  heartbeat_ms : int;
  idle_timeout_ms : int;
  max_outbox : int;
  max_frame : int;
  backoff_base_ms : int;
  backoff_max_ms : int;
  max_buffer : int;
}

let default_config =
  {
    heartbeat_ms = 5_000;
    idle_timeout_ms = 30_000;
    max_outbox = 4 * 1024 * 1024;
    max_frame = 8 * 1024 * 1024;
    backoff_base_ms = 200;
    backoff_max_ms = 30_000;
    max_buffer = 1024 * 1024;
  }

type health = Healthy | Degraded of { reason : string; since_ms : float }

type phase =
  | Waiting of float (* reconnect at this wall-clock ms *)
  | Connecting of Unix.file_descr
  | Live of Conn.t
  | Stopped

type t = {
  cfg : config;
  tele : Tele.t;
  host : string;
  port : int;
  site : int;
  backoff : Backoff.t;
  faults : Faults.t option;
  mutable phase : phase;
  mutable docs : string list; (* to (re)attach, in attach order *)
  mutable was_live : bool;
  (* degraded mode: while the link is down, up-forwarded frames are kept
     (bounded) and flushed after the reconnect re-attach, so a short
     upstream outage loses nothing; overflow falls back to snapshot
     healing and is counted *)
  buffer : (string * int * string) Queue.t; (* doc, origin, msg *)
  mutable buffer_bytes : int;
  mutable buffer_dropped : int;
  mutable health : health;
}

let now_ms = Obs.Clock.now_ms

let create ?(config = default_config) ?metrics ?seed ?faults ~host ~port ~site () =
  {
    cfg = config;
    tele = Tele.make ?metrics ();
    host;
    port;
    site;
    backoff =
      Backoff.create ~base_ms:config.backoff_base_ms ~max_ms:config.backoff_max_ms ?seed
        ();
    faults;
    phase = Waiting 0.;
    docs = [];
    was_live = false;
    buffer = Queue.create ();
    buffer_bytes = 0;
    buffer_dropped = 0;
    health = Healthy;
  }

let connected t = match t.phase with Live _ -> true | _ -> false
let stopped t = match t.phase with Stopped -> true | _ -> false
let health t = t.health
let buffered_bytes t = t.buffer_bytes
let buffer_dropped t = t.buffer_dropped

let degrade t reason =
  match t.health with
  | Degraded _ -> ()
  | Healthy -> t.health <- Degraded { reason; since_ms = now_ms () }

let conn t = match t.phase with Live c -> Some c | _ -> None

let fd t =
  match t.phase with
  | Connecting fd -> Some fd
  | Live c -> Some (Conn.fd c)
  | Waiting _ | Stopped -> None

let wants_write t =
  match t.phase with
  | Connecting _ -> true
  | Live c -> Conn.wants_write c
  | Waiting _ | Stopped -> false

let attach t ~doc =
  if not (List.mem doc t.docs) then begin
    t.docs <- t.docs @ [ doc ];
    match t.phase with
    | Live c ->
      Conn.send c (Relay_proto.encode (Relay_proto.Attach { doc; site = t.site }))
    | _ -> ()
  end

let send t ~doc ~origin msg =
  match t.phase with
  | Live c -> Conn.send c (Relay_proto.encode (Relay_proto.Doc_msg { doc; origin; msg }))
  | Stopped -> ()
  | Waiting _ | Connecting _ ->
    (* degraded: keep editing locally, hold the up-forward until the
       link returns; a bounded buffer, so a long partition degrades to
       snapshot healing instead of growing the heap *)
    let cost = String.length msg + String.length doc + 16 in
    if t.buffer_bytes + cost > t.cfg.max_buffer then
      t.buffer_dropped <- t.buffer_dropped + 1
    else begin
      Queue.add (doc, origin, msg) t.buffer;
      t.buffer_bytes <- t.buffer_bytes + cost
    end

(* Report this hub's aggregate frontier for [doc] up the tree, so the
   home hub's stability view covers sites it has never seen directly. *)
let send_beacon t ~doc frontier =
  match t.phase with
  | Live c -> Conn.send c (Relay_proto.encode (Relay_proto.Beacon { doc; frontier }))
  | _ -> ()

let resolve t =
  try Unix.inet_addr_of_string t.host
  with Failure _ -> (
    match Unix.getaddrinfo t.host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ -> raise Not_found)

let fail t reason =
  degrade t reason;
  let was_live = match t.phase with Live _ -> true | _ -> false in
  (match t.phase with
   | Live c -> Conn.shutdown c
   | Connecting fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | _ -> ());
  let delay = Backoff.next t.backoff in
  t.phase <- Waiting (now_ms () +. float_of_int delay);
  if was_live then [ Up_disconnected reason ] else []

(* The link is Live as soon as TCP is up: every hosted doc is attached
   in one burst and the per-doc [Doc_snapshot] replies stream back as
   ordinary events. *)
let go_live t fd =
  let conn =
    Conn.create ~max_outbox:t.cfg.max_outbox ~max_frame:t.cfg.max_frame
      ?faults:t.faults ~tele:t.tele
      ~peer:(Printf.sprintf "upstream %s:%d" t.host t.port)
      fd
  in
  List.iter
    (fun doc ->
      Conn.send conn (Relay_proto.encode (Relay_proto.Attach { doc; site = t.site })))
    t.docs;
  (* the outage backlog rides right behind the re-attach burst, in
     order; what the buffer had to drop is healed by the snapshot
     replies *)
  while not (Queue.is_empty t.buffer) do
    let doc, origin, msg = Queue.pop t.buffer in
    Conn.send conn (Relay_proto.encode (Relay_proto.Doc_msg { doc; origin; msg }))
  done;
  t.buffer_bytes <- 0;
  t.health <- Healthy;
  Conn.handle_writable conn;
  t.phase <- Live conn;
  if t.was_live then M.incr t.tele.Tele.reconnects else M.incr t.tele.Tele.connects;
  t.was_live <- true;
  Backoff.reset t.backoff;
  [ Up_connected ]

let start_connect t =
  match resolve t with
  | exception _ -> fail t (Printf.sprintf "cannot resolve %s" t.host)
  | addr -> (
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    match Unix.connect fd (Unix.ADDR_INET (addr, t.port)) with
    | () -> go_live t fd
    | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
      t.phase <- Connecting fd;
      []
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail t ("connect: " ^ Unix.error_message e))

let corrupt t why =
  (match conn t with
   | Some c -> Conn.mark_closed c (Conn.Corrupt why)
   | None -> ());
  []

let dispatch t payload =
  match Relay_proto.decode payload with
  | Error e -> corrupt t ("bad envelope: " ^ e)
  | Ok msg -> (
    match msg with
    | Relay_proto.Attached _ -> []
    | Relay_proto.Doc_snapshot { doc; state } ->
      M.incr t.tele.Tele.snapshots;
      [ Up_snapshot { doc; state } ]
    | Relay_proto.Doc_msg { doc; origin; msg } -> [ Up_msg { doc; origin; msg } ]
    | Relay_proto.Beacon { doc; frontier } -> [ Up_beacon { doc; frontier } ]
    | Relay_proto.Doc_delta _ ->
      (* hubs always bootstrap from full snapshots (they never present a
         resume point), so a delta here is protocol abuse *)
      corrupt t "unsolicited delta on a federation link"
    | Relay_proto.Ping ->
      (match conn t with
       | Some c -> Conn.send c (Relay_proto.encode Relay_proto.Pong)
       | None -> ());
      []
    | Relay_proto.Pong -> []
    | Relay_proto.Bye reason -> (
      match conn t with
      | Some c ->
        Conn.mark_closed c (Conn.Local ("upstream: " ^ reason));
        []
      | None -> [])
    | Relay_proto.Welcome _ | Relay_proto.Snapshot _ | Relay_proto.Msg _ ->
      corrupt t "v1 envelope on a federation link"
    | Relay_proto.Hello _ | Relay_proto.Attach _ | Relay_proto.Attach_at _
    | Relay_proto.Detach _ ->
      corrupt t "client-only envelope from upstream")

let pump_conn t c timeout_ms =
  let fd = Conn.fd c in
  let write = if Conn.wants_write c then [ fd ] else [] in
  let rd, wr = Evloop.wait ~timeout_ms ~read:[ fd ] ~write () in
  let events = if rd <> [] then List.concat_map (dispatch t) (Conn.handle_readable c) else [] in
  if wr <> [] then Conn.handle_writable c;
  let now = now_ms () in
  if Conn.alive c then
    if now -. Conn.last_recv_ms c > float_of_int t.cfg.idle_timeout_ms then
      Conn.mark_closed c Conn.Idle
    else if now -. Conn.last_send_ms c > float_of_int t.cfg.heartbeat_ms then
      Conn.send c (Relay_proto.encode Relay_proto.Ping);
  match Conn.closed_reason c with
  | None -> events
  | Some reason ->
    M.incr t.tele.Tele.disconnects;
    events @ fail t (Conn.reason_string reason)

let step ?(timeout_ms = 0) t =
  match t.phase with
  | Stopped -> []
  | Waiting until ->
    if now_ms () >= until then start_connect t
    else begin
      Evloop.sleep_ms timeout_ms;
      []
    end
  | Connecting fd -> (
    let _, wr = Evloop.wait ~timeout_ms ~read:[] ~write:[ fd ] () in
    if wr = [] then []
    else
      match Unix.getsockopt_error fd with
      | None -> go_live t fd
      | Some e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail t ("connect: " ^ Unix.error_message e))
  | Live c -> pump_conn t c timeout_ms

let close t =
  (match t.phase with
   | Live c ->
     Conn.send c (Relay_proto.encode (Relay_proto.Bye "leaf closing"));
     Conn.handle_writable c;
     Conn.shutdown c
   | Connecting fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | _ -> ());
  t.phase <- Stopped
