(* Readiness via poll(2): see evloop_stubs.c for why not Unix.select. *)

let rd_bit = 1 (* shared with evloop_stubs.c *)
let wr_bit = 2

external poll_fds : int array -> int array -> int array -> int -> int
  = "dce_evloop_poll"

(* Unix.file_descr is physically an int on Unix systems; this library
   is Unix-only (it forks, binds loopback sockets, ...) so the
   representation change is safe. *)
let fd_int (fd : Unix.file_descr) : int = Obj.magic fd

let wait ?(timeout_ms = 0) ~read ~write () =
  (* one pollfd per distinct fd, with the union of the requested bits *)
  let tbl : (int, Unix.file_descr * int) Hashtbl.t = Hashtbl.create 64 in
  let add bit fd =
    let k = fd_int fd in
    match Hashtbl.find_opt tbl k with
    | Some (_, bits) -> Hashtbl.replace tbl k (fd, bits lor bit)
    | None -> Hashtbl.add tbl k (fd, bit)
  in
  List.iter (add rd_bit) read;
  List.iter (add wr_bit) write;
  let n = Hashtbl.length tbl in
  let fds = Array.make n 0
  and events = Array.make n 0
  and revents = Array.make n 0
  and handles = Array.make n Unix.stdin in
  let i = ref 0 in
  Hashtbl.iter
    (fun k (fd, bits) ->
      fds.(!i) <- k;
      events.(!i) <- bits;
      handles.(!i) <- fd;
      incr i)
    tbl;
  let ready = poll_fds fds events revents timeout_ms in
  if ready <= 0 then ([], [])
  else begin
    let rd = ref [] and wr = ref [] in
    for i = 0 to n - 1 do
      if revents.(i) land rd_bit <> 0 && events.(i) land rd_bit <> 0 then
        rd := handles.(i) :: !rd;
      if revents.(i) land wr_bit <> 0 && events.(i) land wr_bit <> 0 then
        wr := handles.(i) :: !wr
    done;
    (!rd, !wr)
  end

let sleep_ms ms = if ms > 0 then ignore (wait ~timeout_ms:ms ~read:[] ~write:[] ())
