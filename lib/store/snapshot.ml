module Codec = Dce_wire.Codec

let filename gen = Printf.sprintf "snap-%010d.snap" gen

let parse_filename name =
  match Scanf.sscanf_opt name "snap-%d.snap" Fun.id with
  | Some g when name = filename g -> Some g
  | _ -> None

let generations ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map parse_filename
    |> List.sort compare

let fsync_dir dir =
  (* persist the rename itself; not all filesystems need this, the ones
     that do lose the file on power-off without it *)
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write ~dir ~gen blob =
  let final = Filename.concat dir (filename gen) in
  let tmp = final ^ ".tmp" in
  match Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "snapshot: cannot create %s: %s" tmp (Unix.error_message e))
  | fd -> (
    try
      let framed = Codec.frame blob in
      let len = String.length framed in
      let rec go off =
        if off < len then go (off + Unix.write_substring fd framed off (len - off))
      in
      go 0;
      Unix.fsync fd;
      Unix.close fd;
      Unix.rename tmp final;
      fsync_dir dir;
      Ok ()
    with Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "snapshot: cannot write %s: %s" final (Unix.error_message e)))

let load ~dir ~gen =
  let path = Filename.concat dir (filename gen) in
  match open_in_bin path with
  | exception Sys_error e -> Error ("snapshot: " ^ e)
  | ic -> (
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Codec.unframe data with
    | Ok blob -> Ok blob
    | Error e -> Error (Printf.sprintf "snapshot: %s is corrupt: %s" path e))

let load_latest ~dir =
  let rec newest_valid = function
    | [] -> None
    | gen :: older -> (
      match load ~dir ~gen with
      | Ok blob -> Some (gen, blob)
      | Error _ -> newest_valid older)
  in
  newest_valid (List.rev (generations ~dir))

let prune ~dir ~keep =
  let keep = max keep 2 in
  let gens = generations ~dir in
  let drop = max 0 (List.length gens - keep) in
  List.iteri
    (fun i gen ->
      if i < drop then
        try Sys.remove (Filename.concat dir (filename gen)) with Sys_error _ -> ())
    gens
