module Codec = Dce_wire.Codec

let filename gen = Printf.sprintf "snap-%010d.snap" gen

let parse_filename name =
  match Scanf.sscanf_opt name "snap-%d.snap" Fun.id with
  | Some g when name = filename g -> Some g
  | _ -> None

let generations ?(io = Io.fs) ~dir () =
  io.Io.list_dir dir |> List.filter_map parse_filename |> List.sort compare

let write ?(io = Io.fs) ~dir ~gen blob =
  match io.Io.atomic_write ~dir ~name:(filename gen) (Codec.frame blob) with
  | Ok () -> Ok ()
  | Error e -> Error ("snapshot: " ^ e)

let load ?(io = Io.fs) ~dir ~gen () =
  let path = Filename.concat dir (filename gen) in
  match io.Io.read_file path with
  | Error e -> Error ("snapshot: " ^ e)
  | Ok data -> (
    match Codec.unframe data with
    | Ok blob -> Ok blob
    | Error e -> Error (Printf.sprintf "snapshot: %s is corrupt: %s" path e))

let load_latest ?(io = Io.fs) ~dir () =
  let rec newest_valid = function
    | [] -> None
    | gen :: older -> (
      match load ~io ~dir ~gen () with
      | Ok blob -> Some (gen, blob)
      | Error _ -> newest_valid older)
  in
  newest_valid (List.rev (generations ~io ~dir ()))

let prune ?(io = Io.fs) ~dir ~keep () =
  let keep = max keep 2 in
  let gens = generations ~io ~dir () in
  let drop = max 0 (List.length gens - keep) in
  List.iteri
    (fun i gen -> if i < drop then io.Io.remove (Filename.concat dir (filename gen)))
    gens
