module Codec = Dce_wire.Codec

type fsync_policy = Always | Interval of int | Never

type recovery = {
  records : string list;
  valid_bytes : int;
  truncated_bytes : int;
}

type t = {
  path : string;
  fsync : fsync_policy;
  mutable log : Io.log option;
  mutable written : int; (* appends since open *)
  mutable unsynced : int; (* appends since the last fsync *)
  mutable size : int;
}

(* Scan the whole file and keep the longest prefix of valid frames.
   [Truncated] at the tail is the normal signature of a crash mid-write;
   [Corrupt] anywhere means bit rot or a torn overwrite — either way
   everything from the first bad byte on is dropped, because records
   after a gap cannot be trusted to align with frame boundaries. *)
let scan data =
  let stop = String.length data in
  let rec go pos acc =
    if pos >= stop then (List.rev acc, pos)
    else
      match Codec.unframe_prefix data ~pos with
      | Ok (payload, next) -> go next (payload :: acc)
      | Error (Codec.Truncated | Codec.Corrupt _) -> (List.rev acc, pos)
  in
  go 0 []

let openfile ?(fsync = Interval 64) ?(io = Io.fs) path =
  match io.Io.open_log path with
  | Error e -> Error (Printf.sprintf "wal: cannot open %s: %s" path e)
  | Ok (data, log) -> (
    try
      let records, valid_bytes = scan data in
      let truncated_bytes = String.length data - valid_bytes in
      if truncated_bytes > 0 then log.Io.log_truncate valid_bytes;
      Ok
        ( { path; fsync; log = Some log; written = 0; unsynced = 0; size = valid_bytes },
          { records; valid_bytes; truncated_bytes } )
    with
    | Unix.Unix_error (e, _, _) ->
      log.Io.log_close ();
      Error (Printf.sprintf "wal: cannot recover %s: %s" path (Unix.error_message e))
    | Io.Io_error e ->
      log.Io.log_close ();
      Error (Printf.sprintf "wal: cannot recover %s: %s" path e))

let live t =
  match t.log with
  | Some log -> log
  | None -> invalid_arg "Wal: log is closed"

let append t payload =
  let log = live t in
  let framed = Codec.frame payload in
  log.Io.log_append framed;
  t.size <- t.size + String.length framed;
  t.written <- t.written + 1;
  t.unsynced <- t.unsynced + 1;
  match t.fsync with
  | Always ->
    log.Io.log_fsync ();
    t.unsynced <- 0
  | Interval n when t.unsynced >= n ->
    log.Io.log_fsync ();
    t.unsynced <- 0
  | Interval _ | Never -> ()

let sync t =
  match t.log with
  | None -> ()
  | Some log ->
    log.Io.log_fsync ();
    t.unsynced <- 0

let records_written t = t.written
let size_bytes t = t.size
let path t = t.path

let close t =
  match t.log with
  | None -> ()
  | Some log ->
    (match t.fsync with
     | Never -> ()
     | Always | Interval _ -> (
       try log.Io.log_fsync () with Unix.Unix_error _ | Io.Io_error _ -> ()));
    log.Io.log_close ();
    t.log <- None
