module Codec = Dce_wire.Codec

type fsync_policy = Always | Interval of int | Never

type recovery = {
  records : string list;
  valid_bytes : int;
  truncated_bytes : int;
}

type t = {
  path : string;
  fsync : fsync_policy;
  mutable fd : Unix.file_descr option;
  mutable written : int; (* appends since open *)
  mutable unsynced : int; (* appends since the last fsync *)
  mutable size : int;
}

(* Scan the whole file and keep the longest prefix of valid frames.
   [Truncated] at the tail is the normal signature of a crash mid-write;
   [Corrupt] anywhere means bit rot or a torn overwrite — either way
   everything from the first bad byte on is dropped, because records
   after a gap cannot be trusted to align with frame boundaries. *)
let scan data =
  let stop = String.length data in
  let rec go pos acc =
    if pos >= stop then (List.rev acc, pos)
    else
      match Codec.unframe_prefix data ~pos with
      | Ok (payload, next) -> go next (payload :: acc)
      | Error (Codec.Truncated | Codec.Corrupt _) -> (List.rev acc, pos)
  in
  go 0 []

let read_all fd =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  let rec fill off =
    if off < len then
      match Unix.read fd buf off (len - off) with
      | 0 -> off (* shrank underneath us; keep what we got *)
      | n -> fill (off + n)
    else off
  in
  let got = fill 0 in
  Bytes.sub_string buf 0 got

let openfile ?(fsync = Interval 64) path =
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "wal: cannot open %s: %s" path (Unix.error_message e))
  | fd -> (
    try
      let data = read_all fd in
      let records, valid_bytes = scan data in
      let truncated_bytes = String.length data - valid_bytes in
      if truncated_bytes > 0 then Unix.ftruncate fd valid_bytes;
      ignore (Unix.lseek fd valid_bytes Unix.SEEK_SET);
      Ok
        ( { path; fsync; fd = Some fd; written = 0; unsynced = 0; size = valid_bytes },
          { records; valid_bytes; truncated_bytes } )
    with Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "wal: cannot recover %s: %s" path (Unix.error_message e)))

let live t =
  match t.fd with
  | Some fd -> fd
  | None -> invalid_arg "Wal: log is closed"

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let append t payload =
  let fd = live t in
  let framed = Codec.frame payload in
  write_all fd framed;
  t.size <- t.size + String.length framed;
  t.written <- t.written + 1;
  t.unsynced <- t.unsynced + 1;
  match t.fsync with
  | Always ->
    Unix.fsync fd;
    t.unsynced <- 0
  | Interval n when t.unsynced >= n ->
    Unix.fsync fd;
    t.unsynced <- 0
  | Interval _ | Never -> ()

let sync t =
  match t.fd with
  | None -> ()
  | Some fd ->
    Unix.fsync fd;
    t.unsynced <- 0

let records_written t = t.written
let size_bytes t = t.size
let path t = t.path

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (match t.fsync with
     | Never -> ()
     | Always | Interval _ -> ( try Unix.fsync fd with Unix.Unix_error _ -> ()));
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None
