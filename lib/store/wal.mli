(** Append-only write-ahead log with CRC-framed records.

    One file, a sequence of {!Dce_wire.Codec.frame} records (magic,
    format version, length, CRC-32, payload).  Appends go straight to
    the backend — no userspace buffering — so a [kill -9] can lose at
    most the record currently being written; {!openfile} scans the file
    on open, keeps the longest valid record prefix and truncates
    whatever follows (a torn tail from a crash mid-write, or tail
    corruption), which makes recovery [load snapshot + replay records]
    regardless of how the previous process died.

    Durability against power loss is governed by the fsync policy:
    [Always] syncs after every append (every acknowledged record
    survives power-off), [Interval n] syncs every [n] appends (bounded
    loss window, near-[Never] throughput), [Never] leaves it to the
    kernel (process crashes lose nothing — the page cache survives
    [kill -9] — but power loss may).  See DESIGN §11 for the trade-off
    numbers.

    All file access goes through an {!Io.t} backend: the default is the
    real filesystem; {!Io.Mem} runs the identical recovery code against
    a deterministic in-memory world with fault injection. *)

type fsync_policy = Always | Interval of int | Never

type recovery = {
  records : string list;  (** valid record payloads, oldest first *)
  valid_bytes : int;  (** file size of the kept prefix *)
  truncated_bytes : int;
      (** bytes dropped from the tail (0 = the file was clean) *)
}

type t

val openfile : ?fsync:fsync_policy -> ?io:Io.t -> string -> (t * recovery, string) result
(** Open (creating if absent) the log at this path, validate every
    record, truncate the file after the last valid one and position for
    appending.  [fsync] defaults to [Interval 64]; [io] to the real
    filesystem.  [Error] only on I/O failure — corruption is never an
    error, it is recovered from. *)

val append : t -> string -> unit
(** Frame and write one record, then sync according to the policy.
    Raises [Unix.Unix_error] (filesystem backend) or {!Io.Io_error}
    (in-memory faults) on I/O failure — callers own the disk-full
    policy — and [Invalid_argument] on a closed log. *)

val sync : t -> unit
(** Force an fsync now regardless of policy (no-op on a clean log). *)

val records_written : t -> int
(** Appends since open (recovered records not included). *)

val size_bytes : t -> int
(** Current file size, valid prefix plus appends. *)

val path : t -> string

val close : t -> unit
(** Sync (unless the policy is [Never]) and close.  Idempotent. *)
