exception Io_error of string

type log = {
  log_append : string -> unit;
  log_fsync : unit -> unit;
  log_truncate : int -> unit;
  log_close : unit -> unit;
}

type t = {
  mkdir_p : string -> unit;
  list_dir : string -> string list;
  remove : string -> unit;
  read_file : string -> (string, string) result;
  atomic_write : dir:string -> name:string -> string -> (unit, string) result;
  open_log : string -> (string * log, string) result;
}

(* ----- the filesystem backend ----- *)

let rec fs_mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    fs_mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fs_list_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names -> Array.to_list names

let fs_remove path = try Sys.remove path with Sys_error _ -> ()

let fs_read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Ok
      (Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic)))

let fs_write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let fsync_dir dir =
  (* persist the rename itself; not all filesystems need this, the ones
     that do lose the file on power-off without it *)
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let fs_atomic_write ~dir ~name data =
  let final = Filename.concat dir name in
  let tmp = final ^ ".tmp" in
  match
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot create %s: %s" tmp (Unix.error_message e))
  | fd -> (
    try
      fs_write_all fd data;
      Unix.fsync fd;
      Unix.close fd;
      Unix.rename tmp final;
      fsync_dir dir;
      Ok ()
    with Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "cannot write %s: %s" final (Unix.error_message e)))

let fs_read_fd fd =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  let rec fill off =
    if off < len then
      match Unix.read fd buf off (len - off) with
      | 0 -> off (* shrank underneath us; keep what we got *)
      | n -> fill (off + n)
    else off
  in
  let got = fill 0 in
  Bytes.sub_string buf 0 got

let fs_open_log path =
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match fs_read_fd fd with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
    | data ->
      let closed = ref false in
      Ok
        ( data,
          {
            log_append = (fun s -> fs_write_all fd s);
            log_fsync = (fun () -> Unix.fsync fd);
            log_truncate =
              (fun n ->
                Unix.ftruncate fd n;
                ignore (Unix.lseek fd n Unix.SEEK_SET));
            log_close =
              (fun () ->
                if not !closed then begin
                  closed := true;
                  try Unix.close fd with Unix.Unix_error _ -> ()
                end);
          } ))

let fs =
  {
    mkdir_p = fs_mkdir_p;
    list_dir = fs_list_dir;
    remove = fs_remove;
    read_file = fs_read_file;
    atomic_write = fs_atomic_write;
    open_log = fs_open_log;
  }

(* ----- the deterministic in-memory backend ----- *)

module Mem = struct
  type file = { mutable data : string; mutable synced : int }

  type faults = {
    mutable fail_fsync_after : int;
    mutable short_append_after : int;
    mutable fail_atomic_write_after : int;
  }

  type world = {
    files : (string, file) Hashtbl.t;
    dirs : (string, unit) Hashtbl.t;
    f : faults;
    (* bumped by [crash]; log handles remember the epoch they were
       opened in and refuse to touch a later world *)
    mutable epoch : int;
  }

  type image = {
    i_files : (string * string * int) list;  (* path, data, synced *)
    i_dirs : string list;
    i_faults : int * int * int;
    i_epoch : int;
  }

  let create () =
    {
      files = Hashtbl.create 8;
      dirs = Hashtbl.create 4;
      f = { fail_fsync_after = 0; short_append_after = 0; fail_atomic_write_after = 0 };
      epoch = 0;
    }

  let faults w = w.f

  (* countdown firing: the k-th matching operation fails, then disarms *)
  let fires get set =
    match get () with
    | 0 -> false
    | 1 ->
      set 0;
      true
    | n ->
      set (n - 1);
      false

  let set_file w path data =
    Hashtbl.replace w.files path { data; synced = String.length data }

  let get_file w path =
    Option.map (fun f -> f.data) (Hashtbl.find_opt w.files path)

  let files w =
    Hashtbl.fold (fun p f acc -> (p, f.data) :: acc) w.files []
    |> List.sort compare

  let mem_mkdir_p w dir = Hashtbl.replace w.dirs dir ()

  let mem_list_dir w dir =
    Hashtbl.fold
      (fun p _ acc -> if Filename.dirname p = dir then Filename.basename p :: acc else acc)
      w.files []

  let mem_remove w path = Hashtbl.remove w.files path

  let mem_read_file w path =
    match Hashtbl.find_opt w.files path with
    | Some f -> Ok f.data
    | None -> Error (path ^ ": no such file")

  let mem_atomic_write w ~dir ~name data =
    if fires
         (fun () -> w.f.fail_atomic_write_after)
         (fun n -> w.f.fail_atomic_write_after <- n)
    then Error (Printf.sprintf "cannot write %s: injected fault" name)
    else begin
      set_file w (Filename.concat dir name) data;
      Ok ()
    end

  let mem_open_log w path =
    let f =
      match Hashtbl.find_opt w.files path with
      | Some f -> f
      | None ->
        let f = { data = ""; synced = 0 } in
        Hashtbl.replace w.files path f;
        f
    in
    let epoch = w.epoch in
    let alive what =
      if w.epoch <> epoch then raise (Io_error (what ^ ": log handle died in a crash"))
    in
    Ok
      ( f.data,
        {
          log_append =
            (fun s ->
              alive "append";
              if fires
                   (fun () -> w.f.short_append_after)
                   (fun n -> w.f.short_append_after <- n)
              then begin
                f.data <- f.data ^ String.sub s 0 (String.length s / 2);
                raise (Io_error "append: injected short write")
              end
              else f.data <- f.data ^ s);
          log_fsync =
            (fun () ->
              alive "fsync";
              if fires
                   (fun () -> w.f.fail_fsync_after)
                   (fun n -> w.f.fail_fsync_after <- n)
              then raise (Io_error "fsync: injected fault")
              else f.synced <- String.length f.data);
          log_truncate =
            (fun n ->
              alive "truncate";
              f.data <- String.sub f.data 0 (min n (String.length f.data));
              f.synced <- min f.synced (String.length f.data));
          log_close = (fun () -> ());
        } )

  let io w =
    {
      mkdir_p = mem_mkdir_p w;
      list_dir = mem_list_dir w;
      remove = mem_remove w;
      read_file = mem_read_file w;
      atomic_write = mem_atomic_write w;
      open_log = mem_open_log w;
    }

  let crash ?(power_loss = false) ?(keep_torn = 0) w =
    w.epoch <- w.epoch + 1;
    if power_loss then
      Hashtbl.iter
        (fun _ f ->
          let keep = min (String.length f.data) (f.synced + keep_torn) in
          f.data <- String.sub f.data 0 keep;
          f.synced <- min f.synced keep)
        w.files

  let corrupt_file w path =
    match Hashtbl.find_opt w.files path with
    | Some f when String.length f.data > 0 ->
      let i = String.length f.data / 2 in
      let b = Bytes.of_string f.data in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      f.data <- Bytes.to_string b;
      true
    | Some _ | None -> false

  let snapshot w =
    {
      i_files =
        Hashtbl.fold (fun p f acc -> (p, f.data, f.synced) :: acc) w.files []
        |> List.sort compare;
      i_dirs = Hashtbl.fold (fun d () acc -> d :: acc) w.dirs [] |> List.sort compare;
      i_faults = (w.f.fail_fsync_after, w.f.short_append_after, w.f.fail_atomic_write_after);
      i_epoch = w.epoch;
    }

  let restore img =
    let w = create () in
    List.iter (fun (p, data, synced) -> Hashtbl.replace w.files p { data; synced }) img.i_files;
    List.iter (fun d -> Hashtbl.replace w.dirs d ()) img.i_dirs;
    let a, b, c = img.i_faults in
    w.f.fail_fsync_after <- a;
    w.f.short_append_after <- b;
    w.f.fail_atomic_write_after <- c;
    w.epoch <- img.i_epoch;
    w

  let image_fingerprint img =
    let buf = Buffer.create 256 in
    List.iter
      (fun (p, data, synced) ->
        Buffer.add_string buf p;
        Buffer.add_char buf '\x00';
        Buffer.add_string buf (string_of_int synced);
        Buffer.add_char buf '\x00';
        Buffer.add_string buf (Digest.string data);
        Buffer.add_char buf '\x00')
      img.i_files;
    let a, b, c = img.i_faults in
    Buffer.add_string buf (Printf.sprintf "f%d.%d.%d" a b c);
    Digest.string (Buffer.contents buf)
end
