open Dce_core
module Codec = Dce_wire.Codec
module Proto = Dce_wire.Proto

type 'e record =
  | Generated of 'e Dce_ot.Op.t
  | Admin_cmd of Admin_op.t
  | Received of 'e Controller.message

let put_record ec b = function
  | Generated op ->
    Codec.put_char b 'G';
    Proto.put_op ec b op
  | Admin_cmd op ->
    Codec.put_char b 'A';
    Proto.put_admin_op b op
  | Received m ->
    Codec.put_char b 'R';
    Proto.put_message ec b m

let get_record ec d =
  let ( let* ) = Codec.( let* ) in
  let* c = Codec.get_char d in
  match c with
  | 'G' ->
    let* op = Proto.get_op ec d in
    Ok (Generated op)
  | 'A' ->
    let* op = Proto.get_admin_op d in
    Ok (Admin_cmd op)
  | 'R' ->
    let* m = Proto.get_message ec d in
    Ok (Received m)
  | c -> Error (Printf.sprintf "unknown journal record kind %C" c)

let encode_record ec r = Codec.to_string (put_record ec) r

let decode_record ec s = Codec.of_string (get_record ec) s

type 'e t = {
  ec : 'e Proto.elt_codec;
  store : Store.t;
  mutable has_snapshot : bool;
  (* clock of the newest durable snapshot — the durability cut.  Log
     compaction must never outrun it: crash replay starts from the
     snapshot and re-drives the WAL through [receive], so any log entry
     above this clock must still be resendable by the snapshot state. *)
  mutable checkpoint_clock : Dce_ot.Vclock.t option;
}

type 'e recovery = {
  controller : 'e Controller.t option;
  replayed : int;
  truncated_bytes : int;
  emitted : 'e Controller.message list;
}

(* Re-drive one journaled input through the entry point that produced
   it.  [generate] and [admin_update] are pure functions of controller
   state, so a record that was accepted live is accepted identically on
   replay; one that was denied live no-ops again — either way the record
   is harmless and the outcome deterministic. *)
let replay_record (c, emitted) = function
  | Generated op -> (
    match Controller.generate c op with
    | c, Controller.Accepted m -> (c, m :: emitted)
    | c, Controller.Denied _ -> (c, emitted))
  | Admin_cmd op -> (
    match Controller.admin_update c op with
    | Ok (c, m) -> (c, m :: emitted)
    | Error _ -> (c, emitted))
  | Received m ->
    let c, out = Controller.receive c m in
    (c, List.rev_append out emitted)

let opendir ?config ?io ?(eq = ( = )) ?(trace = Dce_obs.Trace.null) ~codec dir =
  match Store.opendir ?config ?io dir with
  | Error e -> Error e
  | Ok (store, recovered) -> (
    let t =
      {
        ec = codec;
        store;
        has_snapshot = recovered.Store.snapshot <> None;
        checkpoint_clock = None;
      }
    in
    match recovered.Store.snapshot with
    | None ->
      if recovered.Store.wal_records <> [] then begin
        Store.close store;
        Error
          (Printf.sprintf
             "store %s: %d log records but no snapshot to replay them onto"
             dir
             (List.length recovered.Store.wal_records))
      end
      else
        Ok
          ( t,
            {
              controller = None;
              replayed = 0;
              truncated_bytes = recovered.Store.wal_truncated_bytes;
              emitted = [];
            } )
    | Some blob -> (
      let loaded =
        match Proto.decode_state codec blob with
        | Error e -> Error ("snapshot: " ^ e)
        | Ok state -> Controller.load ~eq ~trace state
      in
      match loaded with
      | Error e ->
        Store.close store;
        Error (Printf.sprintf "store %s: %s" dir e)
      | Ok c -> (
        t.checkpoint_clock <- Some (Controller.clock c);
        let rec replay acc n = function
          | [] -> Ok (acc, n)
          | raw :: rest -> (
            match decode_record codec raw with
            | Error e ->
              Error (Printf.sprintf "store %s: log record %d: %s" dir n e)
            | Ok r -> replay (replay_record acc r) (n + 1) rest)
        in
        match replay (c, []) 0 recovered.Store.wal_records with
        | Error e ->
          Store.close store;
          Error e
        | Ok ((c, emitted), replayed) ->
          Ok
            ( t,
              {
                controller = Some c;
                replayed;
                truncated_bytes = recovered.Store.wal_truncated_bytes;
                emitted = List.rev emitted;
              } ))))

let record t r =
  if not t.has_snapshot then
    invalid_arg "Persist.record: checkpoint an initial state first";
  Store.append t.store (encode_record t.ec r)

let checkpoint t c =
  match Store.checkpoint t.store (Proto.encode_state t.ec (Controller.dump c)) with
  | Ok () ->
    t.has_snapshot <- true;
    t.checkpoint_clock <- Some (Controller.clock c);
    Ok ()
  | Error _ as e -> e

let checkpoint_clock t = t.checkpoint_clock

let maybe_checkpoint t c =
  if Store.should_checkpoint t.store then
    match checkpoint t c with Ok () -> Ok true | Error e -> Error e
  else Ok false

let fingerprint t c = Proto.fingerprint t.ec c

let generation t = Store.generation t.store
let records_since_checkpoint t = Store.records_since_checkpoint t.store
let wal_size_bytes t = Store.wal_size_bytes t.store
let dir t = Store.dir t.store
let sync t = Store.sync t.store
let close t = Store.close t.store
