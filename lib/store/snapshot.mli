(** Atomic full-state snapshots, one file per generation.

    A snapshot is a single CRC-framed blob written to [snap-<gen>.snap]
    through {!Io.t}'s [atomic_write] (the filesystem backend does the
    classic tmp + fsync + rename dance), so a crash at any point leaves
    either the previous generation or the complete new one — never a
    half-written file under the final name.  {!load_latest} walks
    generations newest-first and skips anything that does not
    frame-check, so a corrupted latest snapshot silently falls back to
    the one before it (which is why {!prune} always keeps at least the
    two most recent generations).

    Every function takes an optional [io] backend, defaulting to the
    real filesystem. *)

val write : ?io:Io.t -> dir:string -> gen:int -> string -> (unit, string) result
(** Atomically persist [blob] as generation [gen]. *)

val load : ?io:Io.t -> dir:string -> gen:int -> unit -> (string, string) result
(** Read and frame-check one specific generation. *)

val load_latest : ?io:Io.t -> dir:string -> unit -> (int * string) option
(** The newest generation whose file exists and frame-checks, with its
    payload.  [None] if the directory holds no usable snapshot. *)

val generations : ?io:Io.t -> dir:string -> unit -> int list
(** All generations present on disk (valid or not), ascending. *)

val prune : ?io:Io.t -> dir:string -> keep:int -> unit -> unit
(** Delete all but the [max keep 2] newest generations (best-effort). *)

val filename : int -> string
(** [snap-<gen>.snap], exposed for tooling and fault injection. *)
