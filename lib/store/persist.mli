(** The controller journal: crash recovery by command-log replay.

    A {!t} couples a {!Store} directory with a site's controller: every
    input that mutates the controller — a locally generated operation,
    a local administrative command, a received message — is appended to
    the write-ahead log as a {!record}, and the full serialized state
    ([Dce_wire.Proto.encode_state]) is checkpointed as a snapshot every
    [snapshot_every] records.  Recovery ({!opendir}) loads the newest
    valid snapshot and replays the log's records through the very same
    code paths that produced them ([generate] / [admin_update] /
    [receive] are deterministic functions of controller state), so the
    recovered site reaches {e exactly} its pre-crash state — fingerprint
    equality, not just convergence — and the messages the replay emits
    are returned for (idempotent) re-broadcast.

    Journal the inputs in arrival order.  Record a {!Received} message
    {e after} [Controller.receive] accepts it — a hostile message that
    makes [receive] raise must never enter the log, or recovery itself
    would crash replaying it.  The narrow window this leaves (integrated
    but not yet logged when the process dies) is covered by the sender's
    idempotent re-broadcast: peers deduplicate, so receiving it twice is
    harmless and receiving it zero-then-once is just delivery.  Locally
    generated traffic may be recorded after acceptance but must be
    recorded {e before} it is broadcast — otherwise a crash leaves the
    group holding a request its own origin site no longer remembers. *)

open Dce_core

type 'e record =
  | Generated of 'e Dce_ot.Op.t
      (** input to [Controller.generate] (replays to the same request) *)
  | Admin_cmd of Admin_op.t  (** input to [Controller.admin_update] *)
  | Received of 'e Controller.message  (** input to [Controller.receive] *)

val encode_record : 'e Dce_wire.Proto.elt_codec -> 'e record -> string

val decode_record :
  'e Dce_wire.Proto.elt_codec -> string -> ('e record, string) result

type 'e t

type 'e recovery = {
  controller : 'e Controller.t option;
      (** [None]: the store is empty — build the initial controller and
          {!checkpoint} it before the first {!record} call *)
  replayed : int;  (** log records re-applied on top of the snapshot *)
  truncated_bytes : int;  (** torn/corrupt log tail dropped on open *)
  emitted : 'e Controller.message list;
      (** messages the replay (re-)emitted; re-broadcast them — peers
          deduplicate, and any that died with the process are exactly
          the ones that must go out again *)
}

val opendir :
  ?config:Store.config ->
  ?io:Io.t ->
  ?eq:('e -> 'e -> bool) ->
  ?trace:Dce_obs.Trace.sink ->
  codec:'e Dce_wire.Proto.elt_codec ->
  string ->
  ('e t * 'e recovery, string) result
(** Open (creating if needed) the store directory and recover.  Fails
    if the snapshot does not decode, its administrative history does
    not validate ([Controller.load]), or a CRC-valid log record is
    semantically undecodable — all three mean software rot, not a torn
    write, and deserve a loud stop. *)

val record : 'e t -> 'e record -> unit
(** Append one input to the log (fsync per the store's policy).
    Raises [Invalid_argument] on a fresh store with no checkpoint yet:
    a log with no base snapshot cannot be replayed. *)

val checkpoint : 'e t -> 'e Controller.t -> (unit, string) result
(** Serialize [c] and cut a new store generation. *)

val maybe_checkpoint : 'e t -> 'e Controller.t -> (bool, string) result
(** {!checkpoint} iff the log has absorbed [snapshot_every] records
    since the last one; returns whether it did. *)

val checkpoint_clock : 'e t -> Dce_ot.Vclock.t option
(** The clock of the newest durable snapshot (set by {!checkpoint} and
    by {!opendir} recovery; [None] on a fresh store) — the durability
    cut.  Pass it as [Controller.compact ~limit] so log compaction never
    outruns what a crash replay can rebuild: replay starts from the
    snapshot, and every entry above this clock must still exist
    somewhere the WAL's [receive] records can find it. *)

val fingerprint : 'e t -> 'e Controller.t -> string
(** [Dce_wire.Proto.fingerprint] under this journal's codec. *)

val generation : 'e t -> int
val records_since_checkpoint : 'e t -> int
val wal_size_bytes : 'e t -> int
val dir : 'e t -> string

val sync : 'e t -> unit
val close : 'e t -> unit
