(** Pluggable I/O backend for the durable store.

    {!Wal}, {!Snapshot} and {!Store} perform all file and directory
    operations through a value of type {!t}, so the same recovery code
    runs against the real filesystem ({!fs}) or against a deterministic
    in-memory world ({!Mem}) that can inject the faults a disk throws at
    a process — torn tails, short writes, failed fsyncs, corrupted
    snapshots — without touching disk.  The model checker rebuilds
    controllers through the real [Persist] replay path over {!Mem}
    images; the unit tests drive the same faults one at a time.

    The contract mirrors POSIX as the store uses it:

    - {!field:t.open_log} opens (creating if absent) an append-only log
      and returns its current contents in one step, so recovery scans a
      stable view and the returned {!log} handle appends at the end.
    - {!field:t.atomic_write} persists a whole file all-or-nothing (the
      filesystem backend does the tmp + fsync + rename + directory-fsync
      dance); a crash leaves either the old file or the complete new
      one.
    - Log appends and fsyncs may fail; the filesystem backend lets
      [Unix.Unix_error] escape (callers own the disk-full policy) while
      the in-memory backend raises {!Io_error} when a fault fires. *)

exception Io_error of string
(** Raised by in-memory fault injection on appends and fsyncs (the
    filesystem backend raises [Unix.Unix_error] instead — catch both at
    daemon level). *)

type log = {
  log_append : string -> unit;  (** write bytes at the end *)
  log_fsync : unit -> unit;  (** make appended bytes durable *)
  log_truncate : int -> unit;
      (** drop everything past this byte offset and position the append
          cursor there (torn-tail recovery) *)
  log_close : unit -> unit;  (** idempotent; no implicit fsync *)
}

type t = {
  mkdir_p : string -> unit;
  list_dir : string -> string list;
      (** basenames, unsorted; [[]] when the directory is absent *)
  remove : string -> unit;  (** best-effort; absent is fine *)
  read_file : string -> (string, string) result;
      (** whole contents; [Error] when absent or unreadable *)
  atomic_write : dir:string -> name:string -> string -> (unit, string) result;
  open_log : string -> (string * log, string) result;
      (** open-or-create for appending; returns current contents *)
}

val fs : t
(** The real filesystem, with exactly the syscalls the store used before
    this interface existed. *)

(** The deterministic in-memory backend.

    A {!Mem.world} is a mutable set of files, each with a durable
    ([synced]) prefix tracked across fsyncs; {!Mem.crash} applies crash
    semantics to it.  {!Mem.snapshot}/{!Mem.restore} convert between the
    mutable world and an immutable {!Mem.image} value, which is what the
    model checker stores in its search nodes: every branch of the DFS
    restores its own private world, so sibling schedules never see each
    other's writes. *)
module Mem : sig
  type world

  type image
  (** A pure value: compare, hash and store freely. *)

  (** Fault arming.  Each [*_after k] field is a countdown: the [k]-th
      subsequent matching operation fails (once), then the field
      disarms.  [0] means never. *)
  type faults = {
    mutable fail_fsync_after : int;  (** that fsync raises {!Io_error} *)
    mutable short_append_after : int;
        (** that log append writes only half the bytes, then raises —
            leaving a torn tail in place *)
    mutable fail_atomic_write_after : int;
        (** that atomic_write returns [Error] with nothing written *)
  }

  val create : unit -> world
  val io : world -> t
  val faults : world -> faults

  val set_file : world -> string -> string -> unit
  (** Plant raw bytes (fully synced) — for adversarial corruption
      tests. *)

  val get_file : world -> string -> string option

  val files : world -> (string * string) list
  (** Path-sorted [(path, contents)] dump. *)

  val crash : ?power_loss:bool -> ?keep_torn:int -> world -> unit
  (** Kill the process this world belonged to: every open {!log} handle
      goes dead (later appends raise {!Io_error}).  With [power_loss]
      (default [false] — a [kill -9], where the page cache survives)
      every file is also cut back to its durable prefix, plus up to
      [keep_torn] bytes (default [0]) of the unsynced tail — a torn
      fragment for recovery to chew on. *)

  val corrupt_file : world -> string -> bool
  (** Flip a byte in the middle of the file ([false]: absent/empty). *)

  val snapshot : world -> image
  val restore : image -> world

  val image_fingerprint : image -> string
  (** Canonical digest of files, durable prefixes and fault state. *)
end
