(** The durable store: snapshot generations plus a write-ahead log.

    A store directory holds, per generation [g], an atomic full-state
    snapshot [snap-g.snap] ({!Snapshot}) and the log of records applied
    since it was cut, [wal-g.log] ({!Wal}).  Recovery is therefore
    always [latest valid snapshot + bounded WAL replay]: {!opendir}
    picks the newest snapshot that frame-checks, opens that
    generation's log with torn-tail truncation, and hands both back.
    A corrupt newest snapshot falls back to the previous generation
    {e and its} log — which is why checkpointing keeps two generations
    around ([keep_generations], min 2).

    The caller owns record semantics (this layer moves opaque strings)
    and drives checkpoints: {!checkpoint} writes the new snapshot
    first, then switches to a fresh empty log, then prunes — a crash
    between any two of those steps recovers to a consistent state. *)

type config = {
  fsync : Wal.fsync_policy;  (** applied to the active log *)
  snapshot_every : int;
      (** {!should_checkpoint} after this many appends (min 1) *)
  keep_generations : int;  (** snapshots retained by {!checkpoint} (min 2) *)
}

val default_config : config
(** [Interval 64] fsync, checkpoint every 1024 records, keep 2
    generations. *)

val fsync_policy_of_string : string -> (Wal.fsync_policy, string) result
(** ["always"], ["never"], or ["interval:N"] — the CLI spelling. *)

val fsync_policy_to_string : Wal.fsync_policy -> string

type recovered = {
  generation : int;
  snapshot : string option;  (** [None]: empty store, start from scratch *)
  wal_records : string list;  (** to replay on top, oldest first *)
  wal_truncated_bytes : int;  (** torn/corrupt tail dropped on open *)
}

type t

val opendir : ?config:config -> ?io:Io.t -> string -> (t * recovered, string) result
(** Open (creating the directory if needed) and recover.  [io] defaults
    to the real filesystem; pass an {!Io.Mem} backend to run the same
    recovery fault-injected without touching disk. *)

val append : t -> string -> unit
(** Append one record to the active generation's log (write-ahead:
    call before applying the record in memory). *)

val should_checkpoint : t -> bool
(** The active log has absorbed [snapshot_every] records. *)

val checkpoint : t -> string -> (unit, string) result
(** Cut a new generation: write [blob] as the next snapshot, switch
    appends to its (empty) log, prune old generations.  On [Error] the
    store keeps appending to the current generation — a failed
    checkpoint loses nothing. *)

val generation : t -> int
val records_since_checkpoint : t -> int
val wal_size_bytes : t -> int
val dir : t -> string

val sync : t -> unit
(** Force-fsync the active log. *)

val close : t -> unit
(** Idempotent. *)
