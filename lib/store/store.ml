type config = {
  fsync : Wal.fsync_policy;
  snapshot_every : int;
  keep_generations : int;
}

let default_config = { fsync = Wal.Interval 64; snapshot_every = 1024; keep_generations = 2 }

let fsync_policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Wal.Always
  | "never" -> Ok Wal.Never
  | s -> (
    match Scanf.sscanf_opt s "interval:%d" Fun.id with
    | Some n when n > 0 -> Ok (Wal.Interval n)
    | _ -> Error (Printf.sprintf "bad fsync policy %S (always, never or interval:N)" s))

let fsync_policy_to_string = function
  | Wal.Always -> "always"
  | Wal.Never -> "never"
  | Wal.Interval n -> Printf.sprintf "interval:%d" n

type recovered = {
  generation : int;
  snapshot : string option;
  wal_records : string list;
  wal_truncated_bytes : int;
}

type t = {
  cfg : config;
  io : Io.t;
  dir : string;
  mutable generation : int;
  mutable wal : Wal.t;
}

let wal_name gen = Printf.sprintf "wal-%010d.log" gen

let wal_path dir gen = Filename.concat dir (wal_name gen)

let opendir ?(config = default_config) ?(io = Io.fs) dir =
  match io.Io.mkdir_p dir with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "store: cannot create %s: %s" dir (Unix.error_message e))
  | exception Io.Io_error e ->
    Error (Printf.sprintf "store: cannot create %s: %s" dir e)
  | () ->
    let generation, snapshot =
      match Snapshot.load_latest ~io ~dir () with
      | Some (gen, blob) -> (gen, Some blob)
      | None -> (0, None)
    in
    (match Wal.openfile ~fsync:config.fsync ~io (wal_path dir generation) with
     | Error _ as e -> e
     | Ok (wal, rec_) ->
       Ok
         ( { cfg = config; io; dir; generation; wal },
           {
             generation;
             snapshot;
             wal_records = rec_.Wal.records;
             wal_truncated_bytes = rec_.Wal.truncated_bytes;
           } ))

let append t record = Wal.append t.wal record

let should_checkpoint t = Wal.records_written t.wal >= max 1 t.cfg.snapshot_every

let checkpoint t blob =
  let next = t.generation + 1 in
  match Snapshot.write ~io:t.io ~dir:t.dir ~gen:next blob with
  | Error _ as e -> e
  | Ok () -> (
    (* the new generation's log must start empty: after a fallback
       recovery an abandoned wal-<next> from a previous life may exist,
       and its records are NOT part of snapshot <next> *)
    t.io.Io.remove (wal_path t.dir next);
    match Wal.openfile ~fsync:t.cfg.fsync ~io:t.io (wal_path t.dir next) with
    | Error _ as e -> e
    | Ok (wal, _) ->
      Wal.close t.wal;
      t.wal <- wal;
      t.generation <- next;
      Snapshot.prune ~io:t.io ~dir:t.dir ~keep:t.cfg.keep_generations ();
      (* A log is removable only once TWO retained snapshots supersede
         it: if every newer snapshot were to fail its frame check,
         recovery falls back past them to [snap-g + wal-g] (or, below
         the first checkpoint, to a bare replay of wal-0) — so the
         youngest two fallback targets keep their logs. *)
      let retained = Snapshot.generations ~io:t.io ~dir:t.dir () in
      let superseded g = List.length (List.filter (fun s -> s > g) retained) >= 2 in
      List.iter
        (fun name ->
          match Scanf.sscanf_opt name "wal-%d.log" Fun.id with
          | Some g when name = wal_name g && g <> next && superseded g ->
            t.io.Io.remove (Filename.concat t.dir name)
          | _ -> ())
        (t.io.Io.list_dir t.dir);
      Ok ())

let generation t = t.generation
let records_since_checkpoint t = Wal.records_written t.wal
let wal_size_bytes t = Wal.size_bytes t.wal
let dir t = t.dir
let sync t = Wal.sync t.wal
let close t = Wal.close t.wal
