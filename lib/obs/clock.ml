let source : (unit -> float) option ref = ref None

let set_source s = source := s

let raw () = match !source with None -> Unix.gettimeofday () | Some f -> f ()

let last = ref 0

let now_ns () =
  let t = int_of_float (raw () *. 1e9) in
  let t = if t <= !last then !last + 1 else t in
  last := t;
  t

(* The ms clock is clamped to be non-decreasing rather than strictly
   increasing: callers compare deltas against timeouts, and a frozen
   clock (wall time stepped backwards) must read as "no time elapsed",
   not accumulate artificial microseconds. *)
let last_ms = ref neg_infinity

let now_ms () =
  let t = raw () *. 1000. in
  if t < !last_ms then !last_ms
  else begin
    last_ms := t;
    t
  end
