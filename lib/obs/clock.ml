let last = ref 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let t = if t <= !last then !last + 1 else t in
  last := t;
  t
