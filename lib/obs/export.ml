(* Export plane: turn a Metrics registry into scrapeable artifacts.

   Three output shapes, one input:
   - Prometheus text exposition (via Metrics.dump) for /metrics;
   - a JSON snapshot (one object per scrape) for JSONL time series;
   - parsed expositions merged back into a local registry, which is how
     loadgen aggregates histograms scraped from child processes. *)

module M = Metrics

let started_ms = Clock.now_ms ()

(* ------------------------------------------------------------------ *)
(* Process / GC gauges                                                *)

let page_size = 4096

let rss_bytes () =
  (* /proc/self/statm: size resident shared ... (pages) *)
  let path = "/proc/self/statm" in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match String.split_on_char ' ' (input_line ic) with
          | _size :: resident :: _ -> Some (int_of_string resident * page_size)
          | _ -> None)
    with _ -> None

let update_process_stats m =
  let q = Gc.quick_stat () in
  M.set (M.gauge m "process.heap_words") q.Gc.heap_words;
  M.set (M.gauge m "process.top_heap_words") q.Gc.top_heap_words;
  M.set (M.gauge m "process.minor_collections") q.Gc.minor_collections;
  M.set (M.gauge m "process.major_collections") q.Gc.major_collections;
  M.set (M.gauge m "process.compactions") q.Gc.compactions;
  M.set (M.gauge m "process.uptime_ms") (int_of_float (Clock.now_ms () -. started_ms));
  match rss_bytes () with
  | Some b -> M.set (M.gauge m "process.rss_bytes") b
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Text exposition                                                    *)

let exposition ?(process_stats = true) m =
  if process_stats then update_process_stats m;
  M.dump m

(* ------------------------------------------------------------------ *)
(* JSON snapshots (one object per scrape; write one per line to get a
   JSONL time series)                                                 *)

let json_of_summary (s : M.summary) =
  let f v = Json.Float (if s.M.count = 0 then 0. else v) in
  Json.Obj
    [
      ("count", Json.Int s.M.count);
      ("sum", Json.Int s.M.sum);
      ("min", Json.Int s.M.min);
      ("max", Json.Int s.M.max);
      ("p50", f s.M.p50);
      ("p95", f s.M.p95);
      ("p99", f s.M.p99);
    ]

let snapshot ?now_ns m =
  let t_ns = match now_ns with Some t -> t | None -> Clock.now_ns () in
  Json.Obj
    [
      ("t_ns", Json.Int t_ns);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (M.counters m)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (M.gauges m)));
      ( "histograms",
        Json.Obj (List.map (fun (k, s) -> (k, json_of_summary s)) (M.histograms m)) );
    ]

let counter_deltas older newer =
  let tbl_of j =
    match Json.member "counters" j with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> match v with Json.Int n -> Some (k, n) | _ -> None)
        kvs
    | _ -> []
  in
  let old_kvs = tbl_of older in
  List.map
    (fun (k, v) ->
      let prev = match List.assoc_opt k old_kvs with Some p -> p | None -> 0 in
      (k, v - prev))
    (tbl_of newer)

type series = { oc : out_channel; interval_ms : int; mutable last_ms : float }

let series_create ~path ~interval_ms =
  { oc = open_out path; interval_ms; last_ms = 0. }

let series_tick s m =
  let now = Clock.now_ms () in
  if now -. s.last_ms >= float_of_int s.interval_ms then begin
    s.last_ms <- now;
    update_process_stats m;
    output_string s.oc (Json.to_string (snapshot m));
    output_char s.oc '\n';
    flush s.oc
  end

let series_close s = close_out s.oc

(* ------------------------------------------------------------------ *)
(* Parsing an exposition back                                         *)

type hist_samples = {
  hs_buckets : (int * int) list;  (* (inclusive upper bound, non-cumulative count) *)
  hs_inf : int;  (* observations above the last finite bucket *)
  hs_sum : int;
  hs_count : int;
}

type parsed = {
  p_counters : (string * int) list;
  p_gauges : (string * int) list;
  p_hists : (string * hist_samples) list;
}

type acc_hist = {
  mutable a_les : (float * int) list;  (* cumulative, as scraped *)
  mutable a_sum : int;
  mutable a_count : int;
}

let strip_suffix s suf =
  let n = String.length s and m = String.length suf in
  if n >= m && String.sub s (n - m) m = suf then Some (String.sub s 0 (n - m)) else None

let parse_exposition text =
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let counters = ref [] and gauges = ref [] in
  let hists : (string, acc_hist) Hashtbl.t = Hashtbl.create 16 in
  let hist_acc name =
    match Hashtbl.find_opt hists name with
    | Some a -> a
    | None ->
      let a = { a_les = []; a_sum = 0; a_count = 0 } in
      Hashtbl.add hists name a;
      a
  in
  let sample line =
    (* "name value", "name{doc=\"D\"} value" or
       "name_bucket{doc=\"D\",le=\"X\"} value".  Per-doc (and other)
       labels are part of the series identity: the name we record is
       the full labeled head, minus any [le] pair, so it maps straight
       back onto the {!Metrics.with_label} name that produced it. *)
    match String.index_opt line ' ' with
    | None -> ()
    | Some sp ->
      let head = String.sub line 0 sp in
      let value = String.sub line (sp + 1) (String.length line - sp - 1) in
      let bare, labels =
        match Metrics.split_labels head with
        | Some (base, pairs) -> (base, pairs)
        | None -> (head, [])
      in
      let le = List.assoc_opt "le" labels in
      let rest = List.filter (fun (k, _) -> k <> "le") labels in
      (* the labeled-series name with [le] removed, as with_label built it *)
      let series base =
        if rest = [] then base else base ^ Metrics.render_labels rest
      in
      match le with
      | Some le_str -> (
        match strip_suffix bare "_bucket" with
        | None -> ()
        | Some base ->
          let le = if le_str = "+Inf" then infinity else float_of_string le_str in
          let a = hist_acc (series base) in
          a.a_les <- (le, int_of_string (String.trim value)) :: a.a_les)
      | None -> (
        match (strip_suffix bare "_sum", strip_suffix bare "_count") with
        | Some base, _ when Hashtbl.mem hists (series base) ->
          (hist_acc (series base)).a_sum <- int_of_string (String.trim value)
        | _, Some base when Hashtbl.mem hists (series base) ->
          (hist_acc (series base)).a_count <- int_of_string (String.trim value)
        | _ -> (
          let v = int_of_string (String.trim value) in
          match Hashtbl.find_opt types bare with
          | Some "gauge" -> gauges := (series bare, v) :: !gauges
          | Some "histogram" -> ()
          | _ -> counters := (series bare, v) :: !counters))
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else if String.length line > 0 && line.[0] = '#' then begin
           match String.split_on_char ' ' line with
           | [ "#"; "TYPE"; name; kind ] -> Hashtbl.replace types name kind
           | _ -> ()
         end
         else try sample line with _ -> ());
  let p_hists =
    Hashtbl.fold
      (fun name a acc ->
        let finite, inf =
          List.partition (fun (le, _) -> le <> infinity) a.a_les
        in
        let finite = List.sort (fun (a, _) (b, _) -> compare a b) finite in
        let _, buckets =
          List.fold_left
            (fun (prev, out) (le, cum) -> (cum, (int_of_float le, cum - prev) :: out))
            (0, []) finite
        in
        let buckets = List.rev buckets in
        let finite_total = List.fold_left (fun s (_, c) -> s + c) 0 buckets in
        let inf_cum = match inf with (_, c) :: _ -> c | [] -> a.a_count in
        let hs_inf = max 0 (inf_cum - finite_total) in
        (name, { hs_buckets = buckets; hs_inf; hs_sum = a.a_sum; hs_count = a.a_count })
        :: acc)
      hists []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    p_counters = List.sort compare (List.rev !counters);
    p_gauges = List.sort compare (List.rev !gauges);
    p_hists;
  }

let merge_into m p =
  List.iter (fun (k, v) -> M.add (M.counter m k) v) p.p_counters;
  List.iter
    (fun (k, v) -> M.set (M.gauge m k) (M.gauge_value (M.gauge m k) + v))
    p.p_gauges;
  List.iter
    (fun (k, hs) ->
      let h = M.histogram m k in
      List.iter (fun (hi, c) -> M.observe_n h hi c) hs.hs_buckets;
      if hs.hs_inf > 0 then M.observe_n h max_int hs.hs_inf)
    p.p_hists
