open Dce_ot

type kind =
  | Generate of { request : Request.id; valid : bool }
  | Check_local of { granted : bool }
  | Broadcast of { targets : int; coop : bool }
  | Receive of { coop : bool; dup : bool }
  | Interval_recheck of {
      request : Request.id;
      from_version : int;
      to_version : int;
      denied_at : int option;
    }
  | Retroactive_undo of { request : Request.id; cancel_version : int }
  | Validate of Request.id
  | Invalidate of { request : Request.id; cancel_version : int }
  | Deliver of { request : Request.id; gen_version : int; valid : bool }
  | Admin_apply of { op : string; restrictive : bool }
  | Net of { peer : int; action : string; detail : string }

type event = {
  seq : int;
  t_ns : int;
  site : int;
  clock : Vclock.t;
  version : int;
  kind : kind;
}

let kind_name = function
  | Generate _ -> "generate"
  | Check_local _ -> "check_local"
  | Broadcast _ -> "broadcast"
  | Receive _ -> "receive"
  | Interval_recheck _ -> "interval_recheck"
  | Retroactive_undo _ -> "retroactive_undo"
  | Validate _ -> "validate"
  | Invalidate _ -> "invalidate"
  | Deliver _ -> "deliver"
  | Admin_apply _ -> "admin_apply"
  | Net _ -> "net"

(* ----- sinks ----- *)

type sink = { on : bool; send : event -> unit }

let null = { on = false; send = ignore }

let enabled s = s.on

let seq_counter = ref 0

let emit s ~site ~clock ~version kind =
  if s.on then begin
    incr seq_counter;
    s.send { seq = !seq_counter; t_ns = Clock.now_ns (); site; clock; version; kind }
  end

let callback f = { on = true; send = f }

let tee a b =
  {
    on = a.on || b.on;
    send =
      (fun e ->
        if a.on then a.send e;
        if b.on then b.send e);
  }

type ring = { buf : event option array; mutable next : int; mutable stored : int }

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  { buf = Array.make capacity None; next = 0; stored = 0 }

let ring_sink r =
  callback (fun e ->
      let cap = Array.length r.buf in
      r.buf.(r.next) <- Some e;
      r.next <- (r.next + 1) mod cap;
      if r.stored < cap then r.stored <- r.stored + 1)

let ring_events r =
  let cap = Array.length r.buf in
  let start = (r.next - r.stored + cap) mod cap in
  List.init r.stored (fun i ->
      match r.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

(* ----- JSONL ----- *)

let id_json (id : Request.id) =
  Json.Obj [ ("site", Json.Int id.Request.site); ("serial", Json.Int id.Request.serial) ]

let id_of_json j =
  match (Option.map Json.to_int (Json.member "site" j),
         Option.map Json.to_int (Json.member "serial" j))
  with
  | Some (Ok site), Some (Ok serial) -> Ok { Request.site; serial }
  | _ -> Error "malformed request id"

let kind_fields = function
  | Generate { request; valid } ->
    [ ("req", id_json request); ("valid", Json.Bool valid) ]
  | Check_local { granted } -> [ ("granted", Json.Bool granted) ]
  | Broadcast { targets; coop } ->
    [ ("targets", Json.Int targets); ("coop", Json.Bool coop) ]
  | Receive { coop; dup } -> [ ("coop", Json.Bool coop); ("dup", Json.Bool dup) ]
  | Interval_recheck { request; from_version; to_version; denied_at } ->
    [ ("req", id_json request);
      ("from_version", Json.Int from_version);
      ("to_version", Json.Int to_version);
    ]
    @ (match denied_at with None -> [] | Some v -> [ ("denied_at", Json.Int v) ])
  | Retroactive_undo { request; cancel_version } ->
    [ ("req", id_json request); ("cancel_version", Json.Int cancel_version) ]
  | Validate request -> [ ("req", id_json request) ]
  | Invalidate { request; cancel_version } ->
    [ ("req", id_json request); ("cancel_version", Json.Int cancel_version) ]
  | Deliver { request; gen_version; valid } ->
    [ ("req", id_json request);
      ("gen_version", Json.Int gen_version);
      ("valid", Json.Bool valid);
    ]
  | Admin_apply { op; restrictive } ->
    [ ("op", Json.String op); ("restrictive", Json.Bool restrictive) ]
  | Net { peer; action; detail } ->
    [ ("peer", Json.Int peer); ("action", Json.String action) ]
    @ (if detail = "" then [] else [ ("detail", Json.String detail) ])

let to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("t_ns", Json.Int e.t_ns);
       ("site", Json.Int e.site);
       ("clock",
        Json.List
          (List.map
             (fun (s, c) -> Json.List [ Json.Int s; Json.Int c ])
             (Vclock.to_list e.clock)));
       ("version", Json.Int e.version);
       ("event", Json.String (kind_name e.kind));
     ]
    @ kind_fields e.kind)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> ( match conv v with Ok _ as ok -> ok | Error e -> Error (name ^ ": " ^ e))

let req_field j = field "req" id_of_json j

let kind_of_json name j =
  match name with
  | "generate" ->
    let* request = req_field j in
    let* valid = field "valid" Json.to_bool j in
    Ok (Generate { request; valid })
  | "check_local" ->
    let* granted = field "granted" Json.to_bool j in
    Ok (Check_local { granted })
  | "broadcast" ->
    let* targets = field "targets" Json.to_int j in
    let* coop = field "coop" Json.to_bool j in
    Ok (Broadcast { targets; coop })
  | "receive" ->
    let* coop = field "coop" Json.to_bool j in
    let* dup = field "dup" Json.to_bool j in
    Ok (Receive { coop; dup })
  | "interval_recheck" ->
    let* request = req_field j in
    let* from_version = field "from_version" Json.to_int j in
    let* to_version = field "to_version" Json.to_int j in
    let* denied_at =
      match Json.member "denied_at" j with
      | None -> Ok None
      | Some v -> ( match Json.to_int v with Ok n -> Ok (Some n) | Error e -> Error e)
    in
    Ok (Interval_recheck { request; from_version; to_version; denied_at })
  | "retroactive_undo" ->
    let* request = req_field j in
    let* cancel_version = field "cancel_version" Json.to_int j in
    Ok (Retroactive_undo { request; cancel_version })
  | "validate" ->
    let* request = req_field j in
    Ok (Validate request)
  | "invalidate" ->
    let* request = req_field j in
    let* cancel_version = field "cancel_version" Json.to_int j in
    Ok (Invalidate { request; cancel_version })
  | "deliver" ->
    let* request = req_field j in
    let* gen_version = field "gen_version" Json.to_int j in
    let* valid = field "valid" Json.to_bool j in
    Ok (Deliver { request; gen_version; valid })
  | "admin_apply" ->
    let* op = field "op" Json.to_str j in
    let* restrictive = field "restrictive" Json.to_bool j in
    Ok (Admin_apply { op; restrictive })
  | "net" ->
    let* peer = field "peer" Json.to_int j in
    let* action = field "action" Json.to_str j in
    let* detail =
      match Json.member "detail" j with
      | None -> Ok ""
      | Some v -> Json.to_str v
    in
    Ok (Net { peer; action; detail })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let of_json j =
  let* seq = field "seq" Json.to_int j in
  let* t_ns = field "t_ns" Json.to_int j in
  let* site = field "site" Json.to_int j in
  let* version = field "version" Json.to_int j in
  let* clock =
    field "clock"
      (fun v ->
        let* entries = Json.to_list v in
        let rec go acc = function
          | [] -> Ok (Vclock.of_list (List.rev acc))
          | Json.List [ Json.Int s; Json.Int c ] :: rest -> go ((s, c) :: acc) rest
          | _ -> Error "malformed clock entry"
        in
        go [] entries)
      j
  in
  let* name = field "event" Json.to_str j in
  let* kind = kind_of_json name j in
  Ok { seq; t_ns; site; clock; version; kind }

let to_channel oc =
  callback (fun e ->
      output_string oc (Json.to_string (to_json e));
      output_char oc '\n')

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (to_channel oc))

let count_into m =
  callback (fun e -> Metrics.incr (Metrics.counter m ("trace." ^ kind_name e.kind)))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go acc (lineno + 1)
        | line -> (
            match Json.of_string line with
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
            | Ok j -> (
                match of_json j with
                | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
                | Ok ev -> go (ev :: acc) (lineno + 1)))
      in
      go [] 1)

let pp_kind ppf = function
  | Generate { request; valid } ->
    Format.fprintf ppf "generate %a%s" Request.pp_id request
      (if valid then " (valid)" else "")
  | Check_local { granted } ->
    Format.fprintf ppf "check_local %s" (if granted then "granted" else "denied")
  | Broadcast { targets; coop } ->
    Format.fprintf ppf "broadcast %s to %d peer(s)"
      (if coop then "coop" else "admin")
      targets
  | Receive { coop; dup } ->
    Format.fprintf ppf "receive %s%s"
      (if coop then "coop" else "admin")
      (if dup then " (duplicate)" else "")
  | Interval_recheck { request; from_version; to_version; denied_at } ->
    Format.fprintf ppf "interval_recheck %a v%d..v%d%a" Request.pp_id request
      from_version to_version
      (fun ppf -> function
        | None -> Format.fprintf ppf " ok"
        | Some v -> Format.fprintf ppf " denied@@v%d" v)
      denied_at
  | Retroactive_undo { request; cancel_version } ->
    Format.fprintf ppf "retroactive_undo %a @@v%d" Request.pp_id request cancel_version
  | Validate request -> Format.fprintf ppf "validate %a" Request.pp_id request
  | Invalidate { request; cancel_version } ->
    Format.fprintf ppf "invalidate %a @@v%d" Request.pp_id request cancel_version
  | Deliver { request; gen_version; valid } ->
    Format.fprintf ppf "deliver %a (gen v%d%s)" Request.pp_id request gen_version
      (if valid then ", valid" else "")
  | Admin_apply { op; restrictive } ->
    Format.fprintf ppf "admin_apply %s%s" op (if restrictive then " (restrictive)" else "")
  | Net { peer; action; detail } ->
    Format.fprintf ppf "net %s peer %d%s" action peer
      (if detail = "" then "" else " (" ^ detail ^ ")")

let pp_event ppf e =
  Format.fprintf ppf "[%d] site %d v%d %a" e.seq e.site e.version pp_kind e.kind
