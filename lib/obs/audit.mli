(** Offline causal-sanity checks over a trace.

    The paper's security argument hinges on integration order: requests
    integrate causally ready and in per-source serial order, local
    vector clocks only grow, interval re-checks cover exactly the
    administrative interval a request missed, and validations refer to
    requests already integrated.  Each check reads off trace events
    alone, so a JSONL trace from any run (simulator, p2pedit, bench)
    can be audited after the fact — the visibility model-checking work
    (Boucheneb & Imine 2008) argues these interleaving bugs need. *)

val causality : Trace.event list -> string list
(** All violations found (empty means the trace is causally sane):

    - per site, vector clocks are non-decreasing in emission order;
    - per (receiving site, source site), integrated serials
      ([deliver]/[invalidate] events) are strictly increasing;
    - every [deliver]/[invalidate] event's clock covers the request it
      integrates;
    - every [interval_recheck] runs forward ([from_version <=
      to_version]), ends at the site's current version, reports
      denials inside the interval, and matches the integrated
      request's generation version;
    - every [validate] event refers to a request previously integrated
      (or generated) at that site. *)

val pp_report : Format.formatter -> string list -> unit
