(** A minimal JSON value type, printer and parser.

    Just enough for the JSONL trace format ({!Trace}): no external
    dependency, no streaming, strings are byte strings (non-ASCII bytes
    are escaped as [\u00XX] on output and accepted back).  Round-trips
    every value this library emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors too. *)

val to_int : t -> (int, string) result
val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result
