(* Log-linear bucketing: values 0..7 map to buckets 0..7 (exact); larger
   values map to 8 sub-buckets per power of two, indexed by the exponent
   and the 3 bits below the leading one.  512 slots cover the whole
   non-negative int range (floor log2 <= 62). *)

let n_buckets = 512

let floor_log2 v =
  (* v > 0 *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of v =
  if v < 8 then v
  else
    let b = floor_log2 v in
    8 + ((b - 3) * 8) + ((v lsr (b - 3)) land 7)

(* inclusive value range covered by a bucket *)
let bucket_range k =
  if k < 8 then (k, k)
  else
    let b = 3 + ((k - 8) / 8) in
    let r = (k - 8) mod 8 in
    let width = 1 lsl (b - 3) in
    let lo = (1 lsl b) + (r * width) in
    (lo, lo + width - 1)

type hist = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type t = {
  mutable on : bool;
  counters_tbl : (string, int ref) Hashtbl.t;
  gauges_tbl : (string, int ref) Hashtbl.t;
  hists_tbl : (string, hist) Hashtbl.t;
}

type counter = { reg : t; cell : int ref }

type gauge = { greg : t; gcell : int ref }

type histogram = { hreg : t; h : hist }

let create ?(enabled = true) () =
  {
    on = enabled;
    counters_tbl = Hashtbl.create 16;
    gauges_tbl = Hashtbl.create 16;
    hists_tbl = Hashtbl.create 16;
  }

let enabled t = t.on
let set_enabled t v = t.on <- v

let counter t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some cell -> { reg = t; cell }
  | None ->
    let cell = ref 0 in
    Hashtbl.add t.counters_tbl name cell;
    { reg = t; cell }

let incr c = if c.reg.on then Stdlib.incr c.cell
let add c n = if c.reg.on then c.cell := !(c.cell) + n
let value c = !(c.cell)

let gauge t name =
  match Hashtbl.find_opt t.gauges_tbl name with
  | Some gcell -> { greg = t; gcell }
  | None ->
    let gcell = ref 0 in
    Hashtbl.add t.gauges_tbl name gcell;
    { greg = t; gcell }

let set g v = if g.greg.on then g.gcell := v
let gauge_value g = !(g.gcell)

let fresh_hist () =
  { buckets = Array.make n_buckets 0; h_count = 0; h_sum = 0; h_min = max_int; h_max = 0 }

let histogram t name =
  match Hashtbl.find_opt t.hists_tbl name with
  | Some h -> { hreg = t; h }
  | None ->
    let h = fresh_hist () in
    Hashtbl.add t.hists_tbl name h;
    { hreg = t; h }

let observe hg v =
  if hg.hreg.on then begin
    let h = hg.h in
    let v = if v < 0 then 0 else v in
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let observe_n hg v n =
  if hg.hreg.on && n > 0 then begin
    let h = hg.h in
    let v = if v < 0 then 0 else v in
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + n;
    h.h_count <- h.h_count + n;
    h.h_sum <- h.h_sum + (v * n);
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile_of_hist h p =
  if h.h_count = 0 then nan
  else begin
    let target =
      let r = int_of_float (ceil (p /. 100. *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let rec walk k acc =
      let acc = acc + h.buckets.(k) in
      if acc >= target then k else walk (k + 1) acc
    in
    let k = walk 0 0 in
    let lo, hi = bucket_range k in
    let mid = (float_of_int lo +. float_of_int hi) /. 2. in
    Float.min (float_of_int h.h_max) (Float.max (float_of_int h.h_min) mid)
  end

let percentile hg p = percentile_of_hist hg.h p

let summary_of_hist h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = (if h.h_count = 0 then 0 else h.h_min);
    max = h.h_max;
    p50 = percentile_of_hist h 50.;
    p95 = percentile_of_hist h 95.;
    p99 = percentile_of_hist h 99.;
  }

let summary hg = summary_of_hist hg.h

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = List.map (fun (k, cell) -> (k, !cell)) (sorted_bindings t.counters_tbl)
let gauges t = List.map (fun (k, cell) -> (k, !cell)) (sorted_bindings t.gauges_tbl)

let histograms t =
  List.map (fun (k, h) -> (k, summary_of_hist h)) (sorted_bindings t.hists_tbl)

let buckets_of_hist h =
  let acc = ref [] in
  for k = n_buckets - 1 downto 0 do
    if h.buckets.(k) > 0 then acc := (snd (bucket_range k), h.buckets.(k)) :: !acc
  done;
  !acc

let buckets hg = buckets_of_hist hg.h

let reset t =
  Hashtbl.iter (fun _ cell -> cell := 0) t.counters_tbl;
  Hashtbl.iter (fun _ cell -> cell := 0) t.gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- 0)
    t.hists_tbl

let pp ppf t =
  let cs = counters t and gs = gauges t and hs = histograms t in
  Format.fprintf ppf "@[<v>";
  if cs <> [] then begin
    Format.fprintf ppf "counters:@ ";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %12d@ " name v) cs
  end;
  if gs <> [] then begin
    Format.fprintf ppf "gauges:@ ";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %12d@ " name v) gs
  end;
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@ ";
    Format.fprintf ppf "  %-36s %10s %12s %12s %12s %12s@ " "name" "count" "p50" "p95"
      "p99" "max";
    List.iter
      (fun (name, s) ->
        Format.fprintf ppf "  %-36s %10d %12.1f %12.1f %12.1f %12d@ " name s.count s.p50
          s.p95 s.p99 s.max)
      hs
  end;
  if cs = [] && gs = [] && hs = [] then Format.fprintf ppf "(no metrics registered)@ ";
  Format.fprintf ppf "@]"

(* Prometheus-style text exposition.  Metric names are escaped to the
   legal charset ([a-zA-Z0-9_:], no leading digit); output is sorted by
   name within each family so two dumps of the same registry state are
   byte-identical and diff cleanly. *)

let escape_bare name =
  let n = String.length name in
  let b = Buffer.create (n + 1) in
  if n > 0 && name.[0] >= '0' && name.[0] <= '9' then Buffer.add_char b '_';
  String.iter
    (fun c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      Buffer.add_char b (if ok then c else '_'))
    name;
  Buffer.contents b

(* Label values travel inside double quotes, so the sanitized charset
   must exclude quotes, backslashes, braces, commas, [=] and whitespace
   — everything the exposition grammar uses as a delimiter. *)
let escape_label_value value =
  String.map
    (fun c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = '.' || c = ':' || c = '/' || c = '-'
      in
      if ok then c else '_')
    value

(* "base{k1=\"v1\",k2=\"v2\"}" -> Some (base, [(k1, v1); (k2, v2)]) *)
let split_labels name =
  let n = String.length name in
  match String.index_opt name '{' with
  | Some br when n > br + 1 && name.[n - 1] = '}' ->
    let inner = String.sub name (br + 1) (n - br - 2) in
    let pairs =
      String.split_on_char ',' inner
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | None -> None
             | Some eq ->
               let k = String.sub kv 0 eq in
               let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
               if String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"'
               then Some (k, String.sub v 1 (String.length v - 2))
               else None)
    in
    if List.exists (fun p -> p = None) pairs then None
    else Some (String.sub name 0 br, List.filter_map Fun.id pairs)
  | _ -> None

let render_labels pairs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v) pairs)
  ^ "}"

let with_label name ~key ~value =
  let key = escape_bare key and value = escape_label_value value in
  match split_labels name with
  | Some (base, pairs) -> base ^ render_labels (pairs @ [ (key, value) ])
  | None -> name ^ render_labels [ (key, value) ]

let escape_name name =
  match split_labels name with
  | Some (base, pairs) ->
    escape_bare base
    ^ render_labels
        (List.map (fun (k, v) -> (escape_bare k, escape_label_value v)) pairs)
  | None -> escape_bare name

let dump t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* TYPE declares the family, so labeled series (name{doc="a"},
     name{doc="b"}) share one TYPE line keyed on the bare name. *)
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem typed (kind ^ base)) then begin
      Hashtbl.add typed (kind ^ base) ();
      line "# TYPE %s %s\n" base kind
    end
  in
  let base_and_suffix n =
    match split_labels n with
    | Some (base, pairs) -> (base, render_labels pairs, pairs)
    | None -> (n, "", [])
  in
  List.iter
    (fun (name, v) ->
      let n = escape_name name in
      let base, suffix, _ = base_and_suffix n in
      type_line base "counter";
      line "%s%s %d\n" base suffix v)
    (counters t);
  List.iter
    (fun (name, v) ->
      let n = escape_name name in
      let base, suffix, _ = base_and_suffix n in
      type_line base "gauge";
      line "%s%s %d\n" base suffix v)
    (gauges t);
  List.iter
    (fun (name, h) ->
      let n = escape_name name in
      let base, suffix, pairs = base_and_suffix n in
      type_line base "histogram";
      let le v = render_labels (pairs @ [ ("le", v) ]) in
      let cum = ref 0 in
      List.iter
        (fun (hi, c) ->
          cum := !cum + c;
          line "%s_bucket%s %d\n" base (le (string_of_int hi)) !cum)
        (buckets_of_hist h);
      line "%s_bucket%s %d\n" base (le "+Inf") h.h_count;
      line "%s_sum%s %d\n" base suffix h.h_sum;
      line "%s_count%s %d\n" base suffix h.h_count)
    (sorted_bindings t.hists_tbl);
  Buffer.contents buf
