(** Metrics registry: named counters and log-scaled latency histograms.

    Handles are obtained once by name and then updated with a single
    branch plus an integer store — cheap enough for per-operation hot
    paths.  A registry created with [~enabled:false] (or one flipped off
    with {!set_enabled}) turns every update into a no-op, so
    instrumentation can stay compiled in permanently.

    Histograms are log-linear (HdrHistogram-style): exact buckets for
    values 0–7, then 8 sub-buckets per power of two, giving a relative
    quantile error bounded by 12.5% over the whole [int] range with a
    fixed 512-slot array and no allocation per observation.  Units are
    whatever the caller observes (this repo uses nanoseconds for
    timings, bytes for sizes, plain counts for depths). *)

type t

val create : ?enabled:bool -> unit -> t
(** A fresh registry; [enabled] defaults to [true]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter registered under [name], created on first use.  The same
    name always yields the same underlying cell. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {2 Gauges}

    A gauge is a named instantaneous level (queue depth, connection
    count, heap words): the last {!set} wins, and [reset] returns it to
    0.  Like counters, updates on a disabled registry are no-ops. *)

type gauge

val gauge : t -> string -> gauge
(** The gauge registered under [name], created on first use. *)

val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {2 Histograms} *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one value.  Negative values are clamped to 0. *)

val observe_n : histogram -> int -> int -> unit
(** [observe_n h v n] records the value [v] [n] times in one update —
    the building block for merging histograms scraped from other
    processes (replay each bucket's upper bound with its count).
    [n <= 0] is a no-op. *)

val buckets : histogram -> (int * int) list
(** Non-empty buckets as [(inclusive_upper_bound, count)] pairs in
    increasing bound order.  Feeding each pair back through
    {!observe_n} reproduces the same bucket array exactly (the upper
    bound of a bucket maps back to that bucket). *)

type summary = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : histogram -> summary

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in \[0;100\]: an estimate of the [p]-th
    percentile of the observed values (bucket midpoint, clamped to the
    exact observed min/max).  [nan] when empty. *)

(** {2 Reporting} *)

val counters : t -> (string * int) list
(** All registered counters, sorted by name. *)

val gauges : t -> (string * int) list
(** All registered gauges, sorted by name. *)

val histograms : t -> (string * summary) list

val reset : t -> unit
(** Zero every counter, gauge and histogram; registrations survive. *)

val pp : Format.formatter -> t -> unit
(** Tabular dump of every counter, gauge and histogram summary. *)

val with_label : string -> key:string -> value:string -> string
(** [with_label name ~key ~value] is the per-series name
    [name{key="value"}] — e.g. [with_label "hub.members" ~key:"doc"
    ~value:"notes"] = ["hub.members{doc=\"notes\"}"].  The result is an
    ordinary registry name (pass it to {!counter}/{!gauge}/{!histogram});
    {!dump} renders the label block Prometheus-style (one TYPE line per
    bare family, [le] appended after existing labels on histogram
    buckets) and {!Export.parse_exposition} maps it back to the same
    string.  [value] is sanitized to [[a-zA-Z0-9_.:/-]] so it can never
    break the exposition grammar; applying [with_label] to an already
    labeled name appends to its label block. *)

val split_labels : string -> (string * (string * string) list) option
(** [split_labels "name{k=\"v\",k2=\"v2\"}"] is
    [Some ("name", [("k","v"); ("k2","v2")])]; [None] when the name has
    no well-formed trailing label block. *)

val render_labels : (string * string) list -> string
(** Inverse of the label part of {!split_labels}:
    [render_labels [("k","v")]] is ["{k=\"v\"}"]. *)

val escape_name : string -> string
(** Map an internal metric name (e.g. ["netd.frames_in"]) onto the
    Prometheus-legal charset [[a-zA-Z0-9_:]]: every other byte becomes
    ['_'], and a leading digit gains a ['_'] prefix.  A well-formed
    trailing label block ([name{k="v",...}], as built by {!with_label})
    is preserved, with the keys and values sanitized in place. *)

val dump : t -> string
(** Prometheus text exposition of the whole registry: counters, gauges,
    then histograms (as cumulative [_bucket{le="..."}] series plus
    [_sum]/[_count]), each family sorted by name.  Names are passed
    through {!escape_name}; two dumps of identical registry state are
    byte-identical, so scraped snapshots diff cleanly. *)
