type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    (* valid JSON even for integral floats; nan/inf have no JSON form *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | String s -> add_escaped b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        add b v)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        add b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  add b v;
  Buffer.contents b

(* ----- parsing ----- *)

exception Fail of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Fail (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char b '"'; advance c
       | Some '\\' -> Buffer.add_char b '\\'; advance c
       | Some '/' -> Buffer.add_char b '/'; advance c
       | Some 'n' -> Buffer.add_char b '\n'; advance c
       | Some 'r' -> Buffer.add_char b '\r'; advance c
       | Some 't' -> Buffer.add_char b '\t'; advance c
       | Some 'b' -> Buffer.add_char b '\b'; advance c
       | Some 'f' -> Buffer.add_char b '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
         let hex = String.sub c.src c.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
         in
         c.pos <- c.pos + 4;
         (* byte strings: code points above 255 are replaced *)
         Buffer.add_char b (if code < 256 then Char.chr code else '?')
       | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char b ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage" else Ok v
  | exception Fail msg -> Error msg

(* ----- accessors ----- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function Int n -> Ok n | _ -> Error "expected an integer"
let to_bool = function Bool v -> Ok v | _ -> Error "expected a boolean"
let to_str = function String s -> Ok s | _ -> Error "expected a string"
let to_list = function List l -> Ok l | _ -> Error "expected a list"
