(** Structured trace events for the security-relevant lifecycle.

    Every decision the paper's three mechanisms take — local checks,
    interval re-checks against the administrative log, retroactive
    undo, validation — plus the surrounding plumbing (generation,
    broadcast, reception, integration, administrative application) is
    describable as one {!kind}.  An {!event} stamps the kind with the
    emitting site, its vector clock, its policy version, a process-wide
    sequence number and a monotonic wall-clock timestamp, which is
    enough to reconstruct per-site timelines and check causal sanity
    offline (see {!Audit} and [bin/trace]).

    Events flow into a pluggable {!sink}.  The {!null} sink is a
    compiled-in no-op: emit sites guard on {!enabled}, so a disabled
    build path costs one load and branch per decision point.  Other
    sinks: an in-memory ring buffer (crash forensics, tests), a JSONL
    channel (offline analysis), a callback, and {!tee} composition. *)

open Dce_ot

type kind =
  | Generate of { request : Request.id; valid : bool }
      (** A locally granted request entered the log ([valid] when born
          at the administrator). *)
  | Check_local of { granted : bool }  (** Algorithm 2's local policy check. *)
  | Broadcast of { targets : int; coop : bool }
      (** A message left the site for [targets] peers. *)
  | Receive of { coop : bool; dup : bool }
      (** A message reached the controller ([dup]: dropped as a
          duplicate). *)
  | Interval_recheck of {
      request : Request.id;
      from_version : int;
      to_version : int;
      denied_at : int option;
    }
      (** A remote request generated under policy [from_version] was
          re-checked against the administrative log up to [to_version]
          (the Fig. 3 mechanism); [denied_at] is the version of the
          first denying administrative request, if any. *)
  | Retroactive_undo of { request : Request.id; cancel_version : int }
      (** A tentative request was undone by the restrictive
          administrative request producing [cancel_version] (Fig. 2). *)
  | Validate of Request.id
      (** A tentative request was upgraded to valid (Fig. 4). *)
  | Invalidate of { request : Request.id; cancel_version : int }
      (** A remote request was denied on integration and recorded with
          no visible effect. *)
  | Deliver of { request : Request.id; gen_version : int; valid : bool }
      (** A remote request was accepted, transformed and executed on
          the local document. *)
  | Admin_apply of { op : string; restrictive : bool }
      (** An administrative request was applied; the event's [version]
          is the version it produced. *)
  | Net of { peer : int; action : string; detail : string }
      (** A transport-level lifecycle event ([Dce_netd]): [action] is
          one of [connect], [disconnect], [reconnect], [snapshot],
          [frame_error], [overflow], [idle], [give_up]; [peer] is the
          remote site id, [-1] before the peer has identified itself. *)

type event = {
  seq : int;  (** process-wide emission order *)
  t_ns : int;  (** monotonic wall clock, ns (see {!Clock}) *)
  site : int;
  clock : Vclock.t;  (** the site's vector clock at emission *)
  version : int;  (** the site's policy version at emission *)
  kind : kind;
}

val kind_name : kind -> string

(** {2 Sinks} *)

type sink

val null : sink
(** Drops everything; {!enabled} is [false]. *)

val enabled : sink -> bool

val emit : sink -> site:int -> clock:Vclock.t -> version:int -> kind -> unit
(** Stamp [seq]/[t_ns] and deliver.  A no-op on {!null}; callers on hot
    paths should still guard event construction with {!enabled}. *)

val callback : (event -> unit) -> sink

val tee : sink -> sink -> sink
(** Both sinks receive every event; enabled iff either is. *)

type ring

val ring : capacity:int -> ring
(** A bounded in-memory buffer keeping the most recent [capacity]
    events. *)

val ring_sink : ring -> sink
val ring_events : ring -> event list  (** Oldest first. *)

val to_channel : out_channel -> sink
(** One JSON object per line ({!to_json}); the caller owns the
    channel. *)

val with_file : string -> (sink -> 'a) -> 'a
(** [with_file path f]: truncate/create [path], run [f] with a JSONL
    sink on it, close (also on exception). *)

val count_into : Metrics.t -> sink
(** Increments the counter [trace.<kind>] of the registry for every
    event — per-event-type totals with no buffering. *)

(** {2 JSONL} *)

val to_json : event -> Json.t
val of_json : Json.t -> (event, string) result

val read_file : string -> (event list, string) result
(** Parse a JSONL trace; blank lines are skipped, the first malformed
    line is an error. *)

val pp_event : Format.formatter -> event -> unit
