open Dce_ot

module IntM = Map.Make (Int)

module PairM = Map.Make (struct
  type t = int * int

  let compare = compare
end)

module IdS = Set.Make (struct
  type t = int * Request.id

  let compare = compare
end)

let causality events =
  let events = List.sort (fun a b -> compare a.Trace.seq b.Trace.seq) events in
  let violations = ref [] in
  let bad fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  (* per-site last seen clock; per (dst, src) last integrated serial;
     per site, pending rechecks by request id; set of requests known
     integrated (or generated) per site *)
  let last_clock = ref IntM.empty in
  let last_serial = ref PairM.empty in
  let rechecks = ref PairM.empty (* (site, src) -> serial -> from_version *) in
  let known = ref IdS.empty in
  let integrated e (id : Request.id) gen_version =
    let site = e.Trace.site in
    let key = (site, id.Request.site) in
    let prev = Option.value ~default:0 (PairM.find_opt key !last_serial) in
    if id.Request.serial <= prev then
      bad "[seq %d] site %d integrated %a out of order (last serial from site %d was %d)"
        e.Trace.seq site Request.pp_id id id.Request.site prev
    else last_serial := PairM.add key id.Request.serial !last_serial;
    if
      not
        (Vclock.dominates_event e.Trace.clock ~site:id.Request.site
           ~count:id.Request.serial)
    then
      bad "[seq %d] site %d clock %a does not cover integrated request %a" e.Trace.seq
        site Vclock.pp e.Trace.clock Request.pp_id id;
    (match gen_version with
     | None -> ()
     | Some gv -> (
         match PairM.find_opt (site, id.Request.site) !rechecks with
         | Some m when IntM.mem id.Request.serial m ->
           let from_v = IntM.find id.Request.serial m in
           if from_v <> gv then
             bad
               "[seq %d] site %d re-checked %a from v%d but the request was generated \
                under v%d (wrong admin-log interval)"
               e.Trace.seq site Request.pp_id id from_v gv
         | _ -> ()));
    known := IdS.add (site, id) !known
  in
  List.iter
    (fun (e : Trace.event) ->
      let site = e.Trace.site in
      (match IntM.find_opt site !last_clock with
       | Some prev when not (Vclock.leq prev e.Trace.clock) ->
         bad "[seq %d] site %d clock went backwards: %a then %a" e.Trace.seq site
           Vclock.pp prev Vclock.pp e.Trace.clock
       | _ -> ());
      last_clock := IntM.add site e.Trace.clock !last_clock;
      match e.Trace.kind with
      | Trace.Generate { request; _ } -> known := IdS.add (site, request) !known
      | Trace.Interval_recheck { request; from_version; to_version; denied_at } ->
        if from_version > to_version then
          bad "[seq %d] site %d re-check interval runs backwards: v%d..v%d" e.Trace.seq
            site from_version to_version;
        if to_version <> e.Trace.version then
          bad "[seq %d] site %d re-check stops at v%d but the site is at v%d"
            e.Trace.seq site to_version e.Trace.version;
        (match denied_at with
         | Some v when v <= from_version || v > to_version ->
           bad "[seq %d] site %d denial at v%d outside the re-checked interval v%d..v%d"
             e.Trace.seq site v from_version to_version
         | _ -> ());
        let key = (site, request.Request.site) in
        let m = Option.value ~default:IntM.empty (PairM.find_opt key !rechecks) in
        rechecks := PairM.add key (IntM.add request.Request.serial from_version m) !rechecks
      | Trace.Deliver { request; gen_version; _ } ->
        integrated e request (Some gen_version)
      | Trace.Invalidate { request; _ } -> integrated e request None
      | Trace.Validate request ->
        if not (IdS.mem (site, request) !known) then
          bad "[seq %d] site %d validated %a before integrating it" e.Trace.seq site
            Request.pp_id request
      | Trace.Retroactive_undo { request; _ } ->
        if not (IdS.mem (site, request) !known) then
          bad "[seq %d] site %d undid %a before integrating it" e.Trace.seq site
            Request.pp_id request
      | Trace.Check_local _ | Trace.Broadcast _ | Trace.Receive _ | Trace.Admin_apply _
      | Trace.Net _ -> ())
    events;
  List.rev !violations

let pp_report ppf = function
  | [] -> Format.fprintf ppf "causality: OK"
  | vs ->
    Format.fprintf ppf "@[<v>causality: %d violation(s)@ " (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "  %s@ " v) vs;
    Format.fprintf ppf "@]"
