(** Export plane: scrapeable artifacts out of a {!Metrics} registry.

    One registry, three shapes:
    - {!exposition}: Prometheus-style text, served on [/metrics] by the
      daemons' admin sockets;
    - {!snapshot} / {!series_tick}: JSON objects, one per scrape,
      written one-per-line as a JSONL time series;
    - {!parse_exposition} / {!merge_into}: the inverse direction, used
      by [loadgen] to fold expositions scraped from child processes
      back into one local registry (histograms merge exactly at bucket
      granularity — see {!Metrics.observe_n}). *)

(** {2 Process / GC stats} *)

val update_process_stats : Metrics.t -> unit
(** Refresh the [process.*] gauges: OCaml GC figures from
    [Gc.quick_stat] (heap words, collection counts), resident set size
    from [/proc/self/statm] when that file exists (silently skipped
    elsewhere), and uptime. *)

(** {2 Rendering} *)

val exposition : ?process_stats:bool -> Metrics.t -> string
(** Text exposition of the registry ({!Metrics.dump}), refreshing the
    [process.*] gauges first unless [~process_stats:false]. *)

val snapshot : ?now_ns:int -> Metrics.t -> Json.t
(** One JSON object: [{t_ns, counters, gauges, histograms}], histogram
    values summarised as count/sum/min/max/p50/p95/p99. *)

val counter_deltas : Json.t -> Json.t -> (string * int) list
(** [counter_deltas older newer] diffs the ["counters"] members of two
    snapshots: for every counter in [newer], its increase over [older]
    (counters absent from [older] count from 0). *)

type series

val series_create : path:string -> interval_ms:int -> series
(** Open a JSONL time-series file (truncating [path]). *)

val series_tick : series -> Metrics.t -> unit
(** Append one {!snapshot} line if at least [interval_ms] has elapsed
    since the last write ({!Clock.now_ms} time); otherwise a no-op, so
    it is safe to call from a hot event loop. *)

val series_close : series -> unit

(** {2 Parsing} *)

type hist_samples = {
  hs_buckets : (int * int) list;
      (** [(inclusive upper bound, non-cumulative count)], increasing *)
  hs_inf : int;  (** observations above the last finite bucket *)
  hs_sum : int;
  hs_count : int;
}

type parsed = {
  p_counters : (string * int) list;
  p_gauges : (string * int) list;
  p_hists : (string * hist_samples) list;
}

val parse_exposition : string -> parsed
(** Parse a text exposition produced by {!exposition} (names come back
    in their escaped form).  Unparseable lines are skipped, families
    are sorted by name, cumulative [_bucket] series are de-cumulated. *)

val merge_into : Metrics.t -> parsed -> unit
(** Fold a parsed exposition into [m]: counters add, gauges sum, and
    histogram buckets replay through {!Metrics.observe_n} at their
    upper bounds (exact bucket-level merge; the merged [sum] is the
    bucket-bound approximation, within the usual 12.5% relative
    error). *)
