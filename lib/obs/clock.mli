(** Monotone wall-clock timestamps for telemetry.

    [Unix.gettimeofday] is not guaranteed monotone (NTP steps); trace
    analysis (latency deltas, per-site timelines) needs timestamps that
    never go backwards, so successive calls are clamped to be strictly
    increasing.  Resolution is whatever the OS gives, typically ~1 µs. *)

val now_ns : unit -> int
(** Current time in nanoseconds since the epoch, strictly increasing
    across calls within a process. *)
