(** Monotone timestamps for telemetry and network timers.

    [Unix.gettimeofday] is not guaranteed monotone (NTP steps); trace
    analysis (latency deltas, per-site timelines) and the network
    layer's heartbeat/idle timers both need timestamps that never go
    backwards, so successive calls are clamped against the last value
    handed out.  Resolution is whatever the OS gives, typically ~1 µs.

    For deterministic tests the raw time source can be replaced with
    {!set_source}: timer logic (heartbeats, idle timeouts, reconnect
    deadlines) can then be driven by a fake clock without sleeping. *)

val now_ns : unit -> int
(** Current time in nanoseconds since the epoch, strictly increasing
    across calls within a process. *)

val now_ms : unit -> float
(** Current time in milliseconds since the epoch, never decreasing
    across calls within a process — the network layer's timer source.
    A backwards step of the underlying wall clock (NTP) freezes this
    clock until real time catches up instead of rewinding it, so idle
    and heartbeat deadlines never fire spuriously. *)

val set_source : (unit -> float) option -> unit
(** Replace the raw time source ([Unix.gettimeofday], in seconds) that
    both {!now_ns} and {!now_ms} read — [None] restores the real clock.
    The monotone clamp stays in force: a source that steps backwards
    still yields non-decreasing timestamps.  Test instrumentation; not
    thread-safe. *)
