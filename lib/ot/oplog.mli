(** Cooperative logs: storage, canonization, integration, undo.

    Each site stores the cooperative requests it has executed in a log [H]
    (paper §5).  This module provides the paper's four log services:

    - {b ComputeBF} ({!broadcast_form}): the form of a freshly generated
      request to propagate, together with its direct dependency;
    - {b ComputeFF} ({!integrate}): transform a causally-ready remote
      request against the part of the log concurrent with it, reordering
      the log (SOCT2-style adjacent transpositions) so that the requests
      in the remote request's causal past come first;
    - {b Canonize} ({!append_local}/{!integrate}): keep insertion requests
      before deletion/update requests by transposing a newly appended
      insertion backwards past the deletion/update tail — the invariant
      the paper's convergence argument relies on, and the cost driver of
      its Fig. 7 ([O(|Hdu|)] per insertion);
    - {b Undo} ({!undo}): retroactively cancel a (tentative) request.

    {2 Undo and rejection as cancelling pairs}

    The paper's worked example (Fig. 5) keeps an undone request in the log
    together with its inverse, and stores requests rejected by the access
    control as flagged entries "with no effect on the local document
    state".  We realise both with one mechanism: a {e canceller} entry.

    - [undo q]: [q] keeps its executed form (so that later requests that
      causally include [q] still find their generation context in the
      log) and is flagged [Invalid]; a canceller entry carrying
      [inverse(q)] transformed to the end of the log is appended, and its
      operation is returned for execution on the document.  In the
      tombstone model the cancelled effect survives as hidden cells.
    - [append_rejected q]: integrate [q] flagged [Invalid], then cancel
      it on the spot — the two returned operations have net visible
      effect zero.

    Canceller entries belong to no request's causal context, so
    {!integrate} always classifies them as concurrent: a later request
    that causally includes an undone [q] is transformed against [q]'s
    canceller, which excludes [q]'s effect exactly when needed.

    {2 Representation}

    The log is a persistent stat tree of entries plus an id -> position
    index over normal entries: {!length} is O(1), {!find}/{!mem}/
    {!set_flag} are O(log H), {!tentative_requests} is O(T log H) for
    [T] tentative entries, and {!integrate}'s reorder + transform work
    touches only the {e concurrency window} — the log suffix after the
    longest prefix lying entirely in the remote request's causal
    context, which SOCT2 separation would leave in place anyway.
    Canonization's [O(|Hdu|)] transposition count is inherent (Fig. 7),
    but the bubble is batched: the movable suffix is reordered in a flat
    array and written back in one [O(|Hdu| + log H)] range walk rather
    than per-swap tree writes. *)

type role = Normal | Canceller of Request.id

type 'e entry = { req : 'e Request.t; role : role }

type 'e t

val empty : 'e t

val length : _ t -> int
(** O(1). *)

val entries : 'e t -> 'e entry list
(** All stored entries in execution order (O(H) bulk conversion, for
    wire snapshots and persistence). *)

val of_entries : compacted:Vclock.t -> 'e entry list -> 'e t
(** Rebuild a log from its parts (persistence tooling; see
    [Dce_wire]). *)

val requests : 'e t -> 'e Request.t list
(** Normal (non-canceller) requests, in log order. *)

val ops : 'e t -> 'e Op.t list
(** All operations in log order; replaying them from the initial document
    state reproduces the current state. *)

val find : Request.id -> 'e t -> 'e Request.t option
(** O(log H) via the id index. *)

val mem : Request.id -> 'e t -> bool
(** [mem id h]: a normal entry with identity [id] is present (or was
    compacted away).  O(log H). *)

val set_flag : Request.id -> Request.flag -> 'e t -> 'e t
(** O(log H); the log is unchanged if [id] is absent. *)

val tentative_requests : 'e t -> 'e Request.t list
(** Normal entries still flagged [Tentative], in log order — O(T log H)
    for [T] hits, settled entries are never visited. *)

val broadcast_form : 'e Request.t -> 'e t -> 'e Request.t
(** ComputeBF: stamp the request with its direct dependency (the most
    recent normal request in the log, [None] on an empty log).  The
    operation itself is already in generation-context form. *)

val append_local : 'e Request.t -> 'e t -> 'e t
(** Append a locally generated (and locally executed) request, then
    canonize. *)

val integrate : 'e Request.t -> 'e t -> 'e Op.t * 'e t
(** ComputeFF: separate the log into (causal past of [q]) ++ (concurrent
    with [q]) by adjacent transpositions, transform [q]'s operation
    against the concurrent part, append and canonize.  Returns the
    operation to execute on the local document. *)

val append_rejected :
  cancel_version:int -> 'e Request.t -> 'e t -> ('e Op.t * 'e Op.t) * 'e t
(** Store a request denied by access control: integrate it flagged
    [Invalid] and immediately cancel it.  Both returned operations must be
    executed on the document in order; their net visible effect is zero,
    but the request's cells enter the model as tombstones so later
    requests that causally include it keep a consistent context.
    [cancel_version] is the policy version of the earliest restrictive
    administrative request responsible — the version at which every other
    site cancels the same request, which is what lets cancellers be
    classified consistently (see the module comment). *)

val undo : cancel_version:int -> Request.id -> 'e t -> ('e Op.t * 'e t) option
(** Retroactively cancel the request: flag it [Invalid], append its
    canceller, and return the operation to execute on the document.
    [None] if the request is not in the log or already invalid. *)

val causally_ready : 'e Request.t -> 'e t -> bool
(** Every request in [q]'s causal context is present in the log.  (The
    policy-version precondition of the paper's Algorithm 3 is checked by
    the controller.) *)

val compact : stable:Vclock.t -> stable_version:int -> 'e t -> 'e t
(** Garbage-collect the log (the paper's §7 future work): drop the
    longest log {e prefix} of entries that are {e stable} — covered by
    [stable], a clock known to be dominated by what every site of the
    group has already integrated, and (for cancellers) created by an
    administrative request every site has already applied
    ([stable_version]).  Any request still in flight causally includes
    the dropped entries, so separation would put them at the very front
    untouched — dropping them changes nothing.  Only a prefix is
    dropped: a stable entry sitting {e behind} a live entry still takes
    part in transposition rewrites and must stay.  Tentative entries are
    never dropped (they may still be undone).  Cells in the tombstone
    document are untouched (positions must stay aligned).

    The log remembers how much was dropped per site, so
    {!causally_ready} and {!mem} keep answering correctly. *)

val compacted_upto : 'e t -> Vclock.t
(** Per-site serial floor below which entries have been dropped. *)

val live_length : 'e t -> int
(** Entries currently stored ({!length} counts these too; dropped
    entries are gone for good). *)

val is_canonical : 'e t -> bool
(** All insertion entries precede all deletion/update entries.  Holds for
    append-only histories; integration's causal reordering may break it
    globally (it is restored locally at each append). *)

val pp : (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e t -> unit
