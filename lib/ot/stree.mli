(** Persistent stat trees: balanced sequences with cached subtree stats.

    A stat tree is a height-balanced binary tree holding a sequence of
    elements addressed by integer index.  Every node caches two subtree
    statistics:

    - its {e size} (number of elements), giving O(log n) positional
      {!get}/{!set}/{!insert} and O(1) {!length};
    - its {e weight} — the sum of a caller-supplied integer measure over
      the subtree's elements — giving O(1) totals ({!weight}) and
      O(log n) order statistics over the measure ({!select}, {!rank}).

    With measure [1 if visible else 0] this is the classic
    visible-rank/model-rank index of tombstone sequence CRDTs (Treedoc
    and descendants): translating between model and visible coordinates
    becomes a tree descent instead of a linear scan.  With measure
    [1 if tentative else 0] it enumerates the tentative entries of a
    cooperative log without touching settled ones.

    The structure is persistent: every operation returns a new tree
    sharing all untouched nodes.  The measure is passed to each
    operation that builds nodes rather than stored, so [empty] stays a
    polymorphic constant; a tree must be used with one measure
    consistently or the cached weights are meaningless. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** O(1). *)

val weight : 'a t -> int
(** Sum of the measure over all elements.  O(1). *)

val get : 'a t -> int -> 'a
(** O(log n).  Raises [Invalid_argument] out of range. *)

val set : measure:('a -> int) -> 'a t -> int -> 'a -> 'a t
(** Replace the element at an index.  O(log n). *)

val update : measure:('a -> int) -> 'a t -> int -> ('a -> 'a) -> 'a t
(** [update ~measure t i f] replaces the element [x] at [i] by [f x] in
    one descent.  O(log n). *)

val set_range : measure:('a -> int) -> 'a t -> pos:int -> 'a array -> 'a t
(** [set_range ~measure t ~pos arr] replaces the [Array.length arr]
    elements starting at [pos] with the elements of [arr], in one walk.
    The tree shape is untouched — only the nodes whose span meets the
    range are rebuilt — so the cost is O(len + log n), against
    O(len log n) for [len] individual {!set}s.  Raises
    [Invalid_argument] if the range does not fit. *)

val insert : measure:('a -> int) -> 'a t -> int -> 'a -> 'a t
(** [insert ~measure t i x] inserts [x] before position [i]
    ([i = length t] appends).  O(log n). *)

val append : measure:('a -> int) -> 'a t -> 'a -> 'a t
(** [insert] at [length t].  O(log n). *)

val select : 'a t -> int -> int
(** [select t k] is the index of the element containing cumulative
    weight position [k]: the unique [i] with [rank t i <= k
    < rank t (i + 1)].  For 0/1 measures this is the index of the
    [k]-th element of measure 1.  O(log n).  Raises [Invalid_argument]
    unless [0 <= k < weight t]. *)

val rank : 'a t -> int -> int
(** [rank t i] is the summed measure of the elements strictly before
    index [i] ([0 <= i <= length t]).  O(log n). *)

val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val fold_range : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> pos:int -> len:int -> 'acc
(** Fold over the index range [\[pos, pos + len)].  O(len + log n).
    Raises [Invalid_argument] if the range is not contained in the
    sequence. *)

val fold_nonzero : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Left fold over the elements of nonzero measure only, skipping
    zero-weight subtrees wholesale: O(k log n) for [k] hits rather than
    O(n). *)

val prefix_length : ('a -> bool) -> 'a t -> int
(** Length of the longest prefix whose elements all satisfy the
    predicate.  Stops at the first failure: O(result + log n). *)

val to_list : 'a t -> 'a list
(** O(n). *)

val of_list : measure:('a -> int) -> 'a list -> 'a t
(** Perfectly balanced bulk build.  O(n). *)
