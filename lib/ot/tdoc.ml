type 'e write = { wtag : Op.tag; value : 'e; retracted : int }

type 'e cell = { elt : 'e; writes : 'e write list; hidden : int }

(* A stat tree of cells, with the measure "visible?": the cached subtree
   weight is the visible length, and select/rank implement the
   visible<->model coordinate translation in O(log n). *)
type 'e t = 'e cell Stree.t

let vis c = if c.hidden = 0 then 1 else 0

let empty = Stree.empty

let fresh_cell elt = { elt; writes = []; hidden = 0 }

let of_list l = Stree.of_list ~measure:vis (List.map fresh_cell l)

let of_string s = of_list (List.init (String.length s) (String.get s))

let of_cells cells = Stree.of_list ~measure:vis cells

let model_length = Stree.length

let visible_length = Stree.weight

let content c =
  let best =
    List.fold_left
      (fun acc w ->
        if w.retracted > 0 then acc
        else
          match acc with
          | Some b when Op.compare_tag b.wtag w.wtag >= 0 -> acc
          | _ -> Some w)
      None c.writes
  in
  match best with Some w -> w.value | None -> c.elt

let history c = c.elt :: List.map (fun w -> w.value) c.writes

let cell d i = Stree.get d i

(* visible cells are exactly the cells of nonzero measure, so both
   projections skip fully hidden subtrees *)
let visible_list d =
  List.rev (Stree.fold_nonzero (fun acc c -> content c :: acc) [] d)

let visible_string d =
  let b = Buffer.create (Stree.weight d) in
  Stree.fold_nonzero (fun () c -> Buffer.add_char b (content c)) () d;
  Buffer.contents b

let model_list = Stree.to_list

let model_of_visible d v =
  if v < 0 then invalid_arg "Tdoc.model_of_visible: negative position";
  let vl = visible_length d in
  if v < vl then Stree.select d v
  else if v = vl then model_length d
  else invalid_arg "Tdoc.model_of_visible: beyond visible length"

let visible_of_model d m =
  if m < 0 then invalid_arg "Tdoc.visible_of_model: negative position";
  Stree.rank d (min m (model_length d))

let conflict fmt = Format.kasprintf (fun s -> raise (Document.Edit_conflict s)) fmt

let check_history ~eq ~what ~pos c expected =
  if not (List.exists (eq expected) (history c)) then
    conflict "%s at model position %d: element never present in the cell" what pos

let apply ?(eq = ( = )) d op =
  let n = Stree.length d in
  let in_range what pos =
    if pos < 0 || pos >= n then
      invalid_arg (Printf.sprintf "Tdoc.apply: %s position %d out of range" what pos)
  in
  match op with
  | Op.Nop -> d
  | Op.Ins { pos; elt; _ } ->
    if pos < 0 || pos > n then invalid_arg "Tdoc.apply: Ins position out of range";
    Stree.insert ~measure:vis d pos (fresh_cell elt)
  | Op.Del { pos; elt } ->
    in_range "Del" pos;
    let c = Stree.get d pos in
    check_history ~eq ~what:"Del" ~pos c elt;
    Stree.set ~measure:vis d pos { c with hidden = c.hidden + 1 }
  | Op.Undel { pos; elt } ->
    in_range "Undel" pos;
    let c = Stree.get d pos in
    check_history ~eq ~what:"Undel" ~pos c elt;
    if c.hidden = 0 then invalid_arg "Tdoc.apply: Undel of a visible cell";
    Stree.set ~measure:vis d pos { c with hidden = c.hidden - 1 }
  | Op.Up { pos; before; after; tag } ->
    in_range "Up" pos;
    let c = Stree.get d pos in
    check_history ~eq ~what:"Up" ~pos c before;
    if List.exists (fun w -> Op.compare_tag w.wtag tag = 0) c.writes then
      conflict "Up at model position %d: duplicate write tag" pos;
    Stree.set ~measure:vis d pos
      { c with writes = { wtag = tag; value = after; retracted = 0 } :: c.writes }
  | Op.Unup { pos; tag; _ } ->
    in_range "Unup" pos;
    let c = Stree.get d pos in
    if not (List.exists (fun w -> Op.compare_tag w.wtag tag = 0) c.writes) then
      conflict "Unup at model position %d: unknown write tag" pos;
    Stree.set ~measure:vis d pos
      {
        c with
        writes =
          List.map
            (fun w ->
              if Op.compare_tag w.wtag tag = 0 then
                { w with retracted = w.retracted + 1 }
              else w)
            c.writes;
      }

let apply_all ?eq d ops = List.fold_left (fun d o -> apply ?eq d o) d ops

let ins_visible ?pr d v elt = Op.ins ?pr (model_of_visible d v) elt

let visible_cell_pos d v =
  let m = model_of_visible d v in
  if m >= Stree.length d || (Stree.get d m).hidden <> 0 then
    invalid_arg "Tdoc: no visible cell at this position";
  m

let del_visible d v =
  let m = visible_cell_pos d v in
  Op.del m (content (Stree.get d m))

let up_visible ?tag d v after =
  let m = visible_cell_pos d v in
  Op.up ?tag m (content (Stree.get d m)) after

let equal_visible eq a b =
  let la = visible_list a and lb = visible_list b in
  List.length la = List.length lb && List.for_all2 eq la lb

let equal_cell eq a b =
  eq (content a) (content b)
  && a.hidden = b.hidden
  &&
  let norm c =
    List.sort (fun x y -> Op.compare_tag x.wtag y.wtag) c.writes
  in
  let wa = norm a and wb = norm b in
  List.length wa = List.length wb
  && List.for_all2
       (fun x y ->
         Op.compare_tag x.wtag y.wtag = 0 && eq x.value y.value
         && x.retracted = y.retracted)
       wa wb

let equal_model eq a b =
  Stree.length a = Stree.length b
  &&
  let rec go = function
    | [], [] -> true
    | ca :: ra, cb :: rb -> equal_cell eq ca cb && go (ra, rb)
    | _ -> false
  in
  go (model_list a, model_list b)

let pp pp_elt ppf d =
  let pp_cell ppf c =
    if c.hidden = 0 then pp_elt ppf (content c)
    else Format.fprintf ppf "(%a/%d)" pp_elt (content c) c.hidden
  in
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_cell)
    (model_list d)
