(** Tombstone documents: the model state operations execute on.

    A tombstone document is a sequence of {e cells}.  Each cell holds:

    - its initial element (the one inserted, or from the initial state);
    - a set of tagged {e writes} (one per [Up] applied to it, possibly
      retracted by [Unup]); the cell's current {e content} is the value
      of the non-retracted write with the greatest tag, or the initial
      element when none remains;
    - a {e hide count}: [Del] increments it, [Undel] decrements it; the
      cell is visible iff the count is zero.

    Counters and tagged writes make all content effects commute, so
    concurrent deletions/updates of one element — and the retroactive
    undos the access-control layer performs — converge regardless of
    execution order.  The {e visible} document is the subsequence of
    visible cells' contents.

    Operation positions are {e model} positions (tombstones included).
    User intentions arrive in visible coordinates; {!ins_visible},
    {!del_visible} and {!up_visible} build the corresponding
    model-coordinate operations.

    The element expectations carried by [Del]/[Undel]/[Up] are checked
    {e loosely}: the expected element must appear in the cell's history
    (initial element or any write, retracted or not) — under concurrency
    the display value the issuer saw may have been any of these.  A miss
    raises {!Document.Edit_conflict} and signals a transformation bug,
    never a user error.

    The representation is a persistent stat tree ({!Stree}) with the
    measure "visible?": {!model_length} and {!visible_length} are O(1),
    {!cell}, {!apply} and the visible<->model coordinate translations
    are O(log n), and the visible projections skip fully hidden
    subtrees.  {!of_cells}/{!model_list} remain O(n) bulk converters
    for wire snapshots and persistence. *)

type 'e write = { wtag : Op.tag; value : 'e; retracted : int }

type 'e cell = { elt : 'e; writes : 'e write list; hidden : int }

type 'e t

val empty : 'e t
val of_list : 'e list -> 'e t
(** All cells visible, no writes. *)

val of_string : string -> char t

val model_length : 'e t -> int
(** Cells including tombstones.  O(1). *)

val visible_length : 'e t -> int
(** Cells with hide count zero.  O(1). *)

val cell : 'e t -> int -> 'e cell
(** Cell at a model position.  O(log n). *)

val content : 'e cell -> 'e
(** Current content: greatest non-retracted write, or the initial
    element. *)

val of_cells : 'e cell list -> 'e t
(** Rebuild a document from its cells (persistence tooling). *)

val visible_list : 'e t -> 'e list
val visible_string : char t -> string
val model_list : 'e t -> 'e cell list

val model_of_visible : 'e t -> int -> int
(** Model position of the [v]-th visible cell; [model_length] when [v]
    equals {!visible_length}.  Raises [Invalid_argument] on a negative
    position or beyond the visible length.  O(log n). *)

val visible_of_model : 'e t -> int -> int
(** Number of visible cells strictly before the given model position.
    Raises [Invalid_argument] on a negative position; positions beyond
    {!model_length} are clamped to it (returning {!visible_length}) —
    transformation can carry a generation-context position past the
    current end of a shorter context, and the visible rank of any such
    position is the whole visible document.  O(log n). *)

val apply : ?eq:('e -> 'e -> bool) -> 'e t -> 'e Op.t -> 'e t
(** Execute a model-coordinate operation.  Raises
    {!Document.Edit_conflict} on a failed history check, a duplicate
    write tag, or an [Unup] of an unknown tag; [Invalid_argument] on
    out-of-range positions and on [Undel] of a visible cell. *)

val apply_all : ?eq:('e -> 'e -> bool) -> 'e t -> 'e Op.t list -> 'e t

val ins_visible : ?pr:int -> 'e t -> int -> 'e -> 'e Op.t
val del_visible : 'e t -> int -> 'e Op.t
val up_visible : ?tag:Op.tag -> 'e t -> int -> 'e -> 'e Op.t

val equal_visible : ('e -> 'e -> bool) -> 'e t -> 'e t -> bool
(** Equality of the visible projections (the paper's convergence
    criterion). *)

val equal_cell : ('e -> 'e -> bool) -> 'e cell -> 'e cell -> bool
(** Cell equality as {!equal_model} sees it: contents, hide count, and
    the write {e set} — a cell's [writes] list is in arrival order,
    which legitimately differs across converged sites, so writes are
    compared sorted by tag. *)

val equal_model : ('e -> 'e -> bool) -> 'e t -> 'e t -> bool
(** Cell-wise equality: contents, hide counts, and write sets. *)

val pp : (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e t -> unit
(** Prints the model; tombstoned cells are bracketed. *)
