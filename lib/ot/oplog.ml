type role = Normal | Canceller of Request.id

type 'e entry = { req : 'e Request.t; role : role }

module Id_map = Map.Make (struct
  type t = int * int

  let compare (a : t) b = compare a b
end)

(* Entries in execution order in a stat tree (measure: tentative normal
   entries, so the tentative set enumerates without scanning settled
   entries), plus an id -> position index over normal entries.  Indexed
   positions are absolute — [base] counts entries dropped by compaction,
   so the tree position of id is [index(id) - base] and compaction never
   rewrites the index.  [compacted] is the per-site serial floor below
   which entries have been compacted away. *)
type 'e t = {
  entries : 'e entry Stree.t;
  index : int Id_map.t;
  base : int;
  compacted : Vclock.t;
}

let tentative e =
  match e.role with
  | Normal when e.req.Request.flag = Request.Tentative -> 1
  | Normal | Canceller _ -> 0

let key (id : Request.id) = (id.Request.site, id.Request.serial)

let index_set e pos index =
  match e.role with
  | Normal -> Id_map.add (key e.req.Request.id) pos index
  | Canceller _ -> index

let empty =
  { entries = Stree.empty; index = Id_map.empty; base = 0; compacted = Vclock.empty }

let length h = Stree.length h.entries

let live_length = length

let entries h = Stree.to_list h.entries

let of_entries ~compacted entries =
  let tree = Stree.of_list ~measure:tentative entries in
  let index, _ =
    List.fold_left
      (fun (index, i) e -> (index_set e i index, i + 1))
      (Id_map.empty, 0) entries
  in
  { entries = tree; index; base = 0; compacted }

let compacted_upto h = h.compacted

let requests h =
  List.filter_map
    (fun e -> match e.role with Normal -> Some e.req | Canceller _ -> None)
    (entries h)

let ops h = List.map (fun e -> e.req.Request.op) (entries h)

let find id h =
  match Id_map.find_opt (key id) h.index with
  | None -> None
  | Some pos -> Some (Stree.get h.entries (pos - h.base)).req

let mem id h =
  Vclock.dominates_event h.compacted ~site:id.Request.site ~count:id.Request.serial
  || Id_map.mem (key id) h.index

let set_flag id flag h =
  match Id_map.find_opt (key id) h.index with
  | None -> h
  | Some pos ->
    {
      h with
      entries =
        Stree.update ~measure:tentative h.entries (pos - h.base) (fun e ->
            { e with req = { e.req with Request.flag } });
    }

let tentative_requests h =
  (* exactly the nonzero-measure entries, all normal by construction *)
  List.rev (Stree.fold_nonzero (fun acc e -> e.req :: acc) [] h.entries)

let broadcast_form (q : 'e Request.t) h =
  let rec last_normal i =
    if i < 0 then None
    else
      let e = Stree.get h.entries i in
      match e.role with
      | Normal -> Some e.req.Request.id
      | Canceller _ -> last_normal (i - 1)
  in
  { q with Request.dep = last_normal (Stree.length h.entries - 1) }

(* Adjacent transposition: given consecutive entries [a; b], produce
   [b'; a'] with the same combined effect.  [b'] excludes [a]'s effect;
   [a'] re-includes [b']'s.  Only [op] is rewritten: identity, role,
   flag and policy version are untouched, which is what lets the
   id index and the context classification survive reorderings. *)
let transpose a b =
  let b_op = Transform.et b.req.Request.op a.req.Request.op in
  let a_op = Transform.it a.req.Request.op b_op in
  ( { b with req = { b.req with Request.op = b_op } },
    { a with req = { a.req with Request.op = a_op } } )

(* Canonize: bubble the entry at the end of the log (an insertion)
   backwards past the deletion/update entries before it, stopping at the
   first insertion or Nop-carrying entry.  The bubble is batched: the
   movable suffix is extracted once, transposed in a flat array, and
   written back with a single {!Stree.set_range} walk — O(k + log H)
   tree work for a bubble of extent [k], instead of two O(log H) tree
   writes per transposition. *)
let append_entry_canonized h entry =
  let movable op = Op.is_del op || Op.is_undel op || Op.is_up op in
  let pos = Stree.length h.entries in
  let entries = Stree.append ~measure:tentative h.entries entry in
  let index = index_set entry (h.base + pos) h.index in
  if not (Op.is_ins entry.req.Request.op) then { h with entries; index }
  else begin
    let k = ref 0 in
    while
      !k < pos && movable (Stree.get entries (pos - !k - 1)).req.Request.op
    do
      incr k
    done;
    if !k = 0 then { h with entries; index }
    else begin
      let lo = pos - !k in
      let w = !k + 1 in
      let window = Array.make w entry in
      let (_ : int) =
        Stree.fold_range
          (fun i e ->
            window.(i) <- e;
            i + 1)
          0 entries ~pos:lo ~len:w
      in
      let i = ref (w - 1) in
      while
        !i > 0
        && Op.is_ins window.(!i).req.Request.op
        && movable window.(!i - 1).req.Request.op
      do
        let b', a' = transpose window.(!i - 1) window.(!i) in
        window.(!i - 1) <- b';
        window.(!i) <- a';
        decr i
      done;
      let entries = Stree.set_range ~measure:tentative entries ~pos:lo window in
      let index = ref index in
      for j = 0 to w - 1 do
        index := index_set window.(j) (h.base + lo + j) !index
      done;
      { h with entries; index = !index }
    end
  end

let append_local q h = append_entry_canonized h { req = q; role = Normal }

(* Does the request [q] causally include entry [e]?  Normal entries are
   classified by the vector clock.  A canceller is part of [q]'s context
   iff its target is and the administrative cut that created it
   (recorded as the canceller request's [policy_version]) is below [q]'s
   generation version — see DESIGN §4.4 and the .mli.  Classification
   reads only fields that transposition preserves, so an entry's class
   with respect to a fixed [q] is stable under log reordering. *)
let in_context_of (q : _ Request.t) e =
  match e.role with
  | Normal ->
    Vclock.dominates_event q.Request.ctx ~site:e.req.Request.id.Request.site
      ~count:e.req.Request.id.Request.serial
  | Canceller target ->
    Vclock.dominates_event q.Request.ctx ~site:target.Request.site
      ~count:target.Request.serial
    && q.Request.policy_version >= e.req.Request.policy_version

(* ComputeFF, window-local.  Entries in the longest all-in-context
   prefix would be left in place by SOCT2 separation (context entries
   bubble leftwards, and there is nothing concurrent before them to
   bubble past), so only the suffix after that prefix — the concurrency
   window — is extracted, reordered and written back.  If the window
   contains no context entries (the common case: a remote request
   concurrent with the whole suffix), separation moves nothing and the
   write-back is skipped entirely. *)
let integrate q h =
  let n = Stree.length h.entries in
  let p = Stree.prefix_length (in_context_of q) h.entries in
  let entries, index, op =
    if p = n then (h.entries, h.index, q.Request.op)
    else begin
      let w = n - p in
      let window = Array.make w (Stree.get h.entries p) in
      let (_ : int) =
        Stree.fold_range
          (fun i e ->
            window.(i) <- e;
            i + 1)
          0 h.entries ~pos:p ~len:w
      in
      (* classification is stable under transposition, so the flags can
         be computed up front instead of mid-reorder *)
      let in_ctx = Array.map (in_context_of q) window in
      (* separate: bubble context entries down with adjacent
         transpositions; [boundary] = first concurrent position *)
      let boundary = ref 0 in
      for i = 0 to w - 1 do
        if in_ctx.(i) then begin
          let e = ref window.(i) in
          for j = i downto !boundary + 1 do
            let b', a' = transpose window.(j - 1) !e in
            window.(j) <- a';
            e := b'
          done;
          window.(!boundary) <- !e;
          incr boundary
        end
      done;
      let op = ref q.Request.op in
      for i = !boundary to w - 1 do
        op := Transform.it !op window.(i).req.Request.op
      done;
      if !boundary = 0 then (h.entries, h.index, !op)
      else begin
        (* the window really was permuted: write it back in one walk *)
        let entries = Stree.set_range ~measure:tentative h.entries ~pos:p window in
        let index = ref h.index in
        for i = 0 to w - 1 do
          index := index_set window.(i) (h.base + p + i) !index
        done;
        (entries, !index, !op)
      end
    end
  in
  let entry = { req = { q with Request.op }; role = Normal } in
  (op, append_entry_canonized { h with entries; index } entry)

let canceller_of ~cancel_version (q : 'e Request.t) op =
  {
    req = { q with Request.op; Request.policy_version = cancel_version;
            Request.flag = Request.Invalid };
    role = Canceller q.Request.id;
  }

let undo ~cancel_version id h =
  match Id_map.find_opt (key id) h.index with
  | None -> None
  | Some pos ->
    let i = pos - h.base in
    let e = Stree.get h.entries i in
    if e.req.Request.flag = Request.Invalid then None
    else
      let n = Stree.length h.entries in
      let inv =
        Stree.fold_range
          (fun op e' -> Transform.it op e'.req.Request.op)
          (Op.inverse e.req.Request.op)
          h.entries ~pos:(i + 1) ~len:(n - i - 1)
      in
      let entries =
        Stree.set ~measure:tentative h.entries i
          { e with req = { e.req with Request.flag = Request.Invalid } }
      in
      let cancel = canceller_of ~cancel_version e.req inv in
      let entries = Stree.append ~measure:tentative entries cancel in
      Some (inv, { h with entries })

(* Rejecting a request = integrating it and undoing it on the spot: the
   request's cells enter the model (as tombstones, net visible effect
   zero), so later requests that causally include it still find their
   generation context in the log.  Both returned operations must be
   executed on the document, in order. *)
let append_rejected ~cancel_version q h =
  let op, h = integrate { q with Request.flag = Request.Tentative } h in
  match undo ~cancel_version q.Request.id h with
  | Some (inv, h) -> ((op, inv), h)
  | None -> assert false

let causally_ready (q : _ Request.t) h =
  List.for_all
    (fun (site, count) -> count = 0 || mem { Request.site; Request.serial = count } h)
    (Vclock.to_list q.Request.ctx)

let is_canonical h =
  let ok, _ =
    Stree.fold_left
      (fun (ok, seen_du) e ->
        let op = e.req.Request.op in
        if (not ok) || (Op.is_ins op && seen_du) then (false, seen_du)
        else (true, seen_du || Op.is_del op || Op.is_up op))
      (true, false) h.entries
  in
  ok

(* Compaction: drop the longest stable prefix (see the .mli for the
   soundness argument).  Positions in the id index are absolute, so only
   the dropped ids leave the index — [base] absorbs the shift. *)
let compact ~stable ~stable_version h =
  let droppable e =
    match e.role with
    | Normal ->
      e.req.Request.flag <> Request.Tentative
      && Vclock.dominates_event stable ~site:e.req.Request.id.Request.site
           ~count:e.req.Request.id.Request.serial
    | Canceller target ->
      e.req.Request.policy_version <= stable_version
      && Vclock.dominates_event stable ~site:target.Request.site
           ~count:target.Request.serial
  in
  let k = Stree.prefix_length droppable h.entries in
  if k = 0 then h
  else
    let n = Stree.length h.entries in
    let dropped =
      List.rev (Stree.fold_range (fun acc e -> e :: acc) [] h.entries ~pos:0 ~len:k)
    in
    let compacted =
      List.fold_left
        (fun compacted e ->
          match e.role with
          | Normal ->
            let site = e.req.Request.id.Request.site in
            let serial = e.req.Request.id.Request.serial in
            if Vclock.get compacted site < serial then
              Vclock.merge compacted (Vclock.of_list [ (site, serial) ])
            else compacted
          | Canceller _ -> compacted)
        h.compacted dropped
    in
    let index =
      List.fold_left
        (fun index e ->
          match e.role with
          | Normal -> Id_map.remove (key e.req.Request.id) index
          | Canceller _ -> index)
        h.index dropped
    in
    let rest =
      List.rev
        (Stree.fold_range (fun acc e -> e :: acc) [] h.entries ~pos:k ~len:(n - k))
    in
    {
      entries = Stree.of_list ~measure:tentative rest;
      index;
      base = h.base + k;
      compacted;
    }

let pp pp_elt ppf h =
  let pp_entry ppf e =
    match e.role with
    | Normal -> Request.pp pp_elt ppf e.req
    | Canceller id ->
      Format.fprintf ppf "undo(%a)[%a]" Request.pp_id id (Op.pp pp_elt) e.req.Request.op
  in
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_entry)
    (entries h)
