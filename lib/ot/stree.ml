(* Height-balanced (AVL, stdlib-Map style) tree over a sequence indexed
   by position.  Each node caches the subtree height, size and weight
   (summed measure); rebalancing happens only on insertion, which
   changes a subtree height by at most one, so the two single/double
   rotation cases of [bal] suffice. *)

type 'a t =
  | Leaf
  | Node of { l : 'a t; v : 'a; r : 'a t; h : int; n : int; w : int }

let empty = Leaf

let is_empty = function Leaf -> true | Node _ -> false

let height = function Leaf -> 0 | Node { h; _ } -> h

let length = function Leaf -> 0 | Node { n; _ } -> n

let weight = function Leaf -> 0 | Node { w; _ } -> w

let mk ~measure l v r =
  Node
    {
      l;
      v;
      r;
      h = 1 + max (height l) (height r);
      n = length l + 1 + length r;
      w = weight l + measure v + weight r;
    }

(* Precondition (as in stdlib Map): [l] and [r] are balanced and their
   heights differ by at most 3. *)
let bal ~measure l v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Leaf -> assert false
    | Node { l = ll; v = lv; r = lr; _ } ->
      if height ll >= height lr then mk ~measure ll lv (mk ~measure lr v r)
      else (
        match lr with
        | Leaf -> assert false
        | Node { l = lrl; v = lrv; r = lrr; _ } ->
          mk ~measure (mk ~measure ll lv lrl) lrv (mk ~measure lrr v r))
  else if hr > hl + 2 then
    match r with
    | Leaf -> assert false
    | Node { l = rl; v = rv; r = rr; _ } ->
      if height rr >= height rl then mk ~measure (mk ~measure l v rl) rv rr
      else (
        match rl with
        | Leaf -> assert false
        | Node { l = rll; v = rlv; r = rlr; _ } ->
          mk ~measure (mk ~measure l v rll) rlv (mk ~measure rlr rv rr))
  else mk ~measure l v r

let get t i =
  if i < 0 || i >= length t then invalid_arg "Stree.get: index out of range";
  let rec go t i =
    match t with
    | Leaf -> assert false
    | Node { l; v; r; _ } ->
      let nl = length l in
      if i < nl then go l i else if i = nl then v else go r (i - nl - 1)
  in
  go t i

let update ~measure t i f =
  if i < 0 || i >= length t then invalid_arg "Stree.update: index out of range";
  let rec go t i =
    match t with
    | Leaf -> assert false
    | Node { l; v; r; _ } ->
      let nl = length l in
      if i < nl then mk ~measure (go l i) v r
      else if i = nl then mk ~measure l (f v) r
      else mk ~measure l v (go r (i - nl - 1))
  in
  go t i

let set ~measure t i x = update ~measure t i (fun _ -> x)

let set_range ~measure t ~pos arr =
  let len = Array.length arr in
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Stree.set_range: range out of bounds";
  if len = 0 then t
  else
    (* [lo] = global index of the first element of the subtree at hand.
       Subtrees disjoint from [pos, pos + len) are shared unchanged; the
       shape never changes, so no rebalancing is needed. *)
    let rec go t lo =
      match t with
      | Leaf -> t
      | Node { l; v; r; _ } ->
        if lo + length t <= pos || lo >= pos + len then t
        else
          let i = lo + length l in
          let l' = go l lo in
          let v' = if i >= pos && i < pos + len then arr.(i - pos) else v in
          let r' = go r (i + 1) in
          mk ~measure l' v' r'
    in
    go t 0

let insert ~measure t i x =
  if i < 0 || i > length t then invalid_arg "Stree.insert: index out of range";
  let rec go t i =
    match t with
    | Leaf -> mk ~measure Leaf x Leaf
    | Node { l; v; r; _ } ->
      let nl = length l in
      if i <= nl then bal ~measure (go l i) v r
      else bal ~measure l v (go r (i - nl - 1))
  in
  go t i

let append ~measure t x = insert ~measure t (length t) x

let select t k =
  if k < 0 || k >= weight t then invalid_arg "Stree.select: weight out of range";
  let rec go t k acc =
    match t with
    | Leaf -> assert false
    | Node { l; v = _; r; w; _ } ->
      let wl = weight l in
      if k < wl then go l k acc
      else
        let k = k - wl in
        let wv = w - wl - weight r in
        if k < wv then acc + length l else go r (k - wv) (acc + length l + 1)
  in
  go t k 0

let rank t i =
  if i < 0 || i > length t then invalid_arg "Stree.rank: index out of range";
  let rec go t i =
    match t with
    | Leaf -> 0
    | Node { l; v = _; r; w; _ } ->
      let nl = length l in
      if i <= nl then go l i
      else
        let wv = w - weight l - weight r in
        weight l + wv + go r (i - nl - 1)
  in
  go t i

let rec iter f = function
  | Leaf -> ()
  | Node { l; v; r; _ } ->
    iter f l;
    f v;
    iter f r

let rec fold_left f acc = function
  | Leaf -> acc
  | Node { l; v; r; _ } -> fold_left f (f (fold_left f acc l) v) r

let fold_range f acc t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Stree.fold_range: range out of bounds";
  (* indices [lo, hi) relative to the subtree at hand *)
  let rec go t lo hi acc =
    if lo >= hi then acc
    else
      match t with
      | Leaf -> acc
      | Node { l; v; r; _ } ->
        let nl = length l in
        let acc = if lo < min hi nl then go l lo (min hi nl) acc else acc in
        let acc = if lo <= nl && nl < hi then f acc v else acc in
        if hi > nl + 1 then go r (max 0 (lo - nl - 1)) (hi - nl - 1) acc else acc
  in
  go t pos (pos + len) acc

let rec fold_nonzero f acc = function
  | Leaf -> acc
  | Node { l; v; r; w; _ } ->
    if w = 0 then acc
    else
      let acc = fold_nonzero f acc l in
      let acc = if w - weight l - weight r <> 0 then f acc v else acc in
      fold_nonzero f acc r

let prefix_length p t =
  let count = ref 0 in
  (try iter (fun x -> if p x then incr count else raise Exit) t with Exit -> ());
  !count

let to_list t = List.rev (fold_left (fun acc x -> x :: acc) [] t)

let of_list ~measure l =
  let a = Array.of_list l in
  let rec build lo hi =
    if lo >= hi then Leaf
    else
      let mid = (lo + hi) / 2 in
      mk ~measure (build lo mid) a.(mid) (build (mid + 1) hi)
  in
  build 0 (Array.length a)
