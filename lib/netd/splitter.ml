module Codec = Dce_wire.Codec

type t = {
  mutable buf : Bytes.t;
  mutable start : int; (* first unconsumed byte *)
  mutable len : int; (* unconsumed bytes from [start] *)
  max_payload : int;
  mutable dead : string option;
}

let create ?(max_payload = 8 * 1024 * 1024) () =
  { buf = Bytes.create 4096; start = 0; len = 0; max_payload; dead = None }

let buffered t = t.len

let corrupt t = t.dead

let feed t src ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Splitter.feed: bad range";
  if t.dead = None && len > 0 then begin
    let cap = Bytes.length t.buf in
    if t.start + t.len + len > cap then begin
      (* compact, growing only if the live bytes really need it *)
      let need = t.len + len in
      let dst = if need > cap then Bytes.create (max need (2 * cap)) else t.buf in
      Bytes.blit t.buf t.start dst 0 t.len;
      t.buf <- dst;
      t.start <- 0
    end;
    Bytes.blit src off t.buf (t.start + t.len) len;
    t.len <- t.len + len
  end

let feed_string t s = feed t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let next t =
  match t.dead with
  | Some e -> Error e
  | None ->
    if t.len = 0 then Ok None
    else begin
      (* parse in place: no copy of the buffered window, only the
         returned payload is materialized *)
      match
        Codec.unframe_prefix_bytes ~max_payload:t.max_payload t.buf ~pos:t.start
          ~stop:(t.start + t.len)
      with
      | Ok (payload, next) ->
        t.len <- t.len - (next - t.start);
        t.start <- next;
        Ok (Some payload)
      | Error Codec.Truncated -> Ok None
      | Error (Codec.Corrupt e) ->
        t.dead <- Some e;
        Error e
    end
