(** Admin plane: a minimal non-blocking HTTP server for scraping a
    live daemon.

    Three read-only routes, one response per connection, then close:
    - [/metrics] — Prometheus text exposition of the process registry
      (process/GC gauges refreshed on each scrape);
    - [/healthz] — JSON from the [healthz] callback (default
      [{"status":"ok"}]); served as [503 Service Unavailable] whenever
      the callback's ["status"] field is present and not ["ok"], so
      plain HTTP probes see degradation without parsing the body;
    - [/sessions] — JSON from the [sessions] callback (default [{}]).

    The server owns no thread: the embedding daemon either adds {!fds}
    to its select read set or simply calls {!step} every loop tick —
    a step is one non-blocking accept plus a read/write attempt per
    open connection, cheap enough for hot loops.  Requests are bounded
    (4 KiB) and connections aged out (10 s), so a stuck scraper cannot
    pin resources. *)

type t

val create :
  ?addr:Unix.inet_addr ->
  ?metrics:Dce_obs.Metrics.t ->
  ?healthz:(unit -> Dce_obs.Json.t) ->
  ?sessions:(unit -> Dce_obs.Json.t) ->
  port:int ->
  unit ->
  t
(** Bind and listen on [addr] (default loopback) : [port] (0 picks an
    ephemeral port — read it back with {!port}).  Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int

val fds : t -> Unix.file_descr list
(** The listening socket plus any open scrape connections, for callers
    that select instead of polling. *)

val step : t -> unit
(** Accept, read, respond, flush, reap — all non-blocking. *)

val close : t -> unit
