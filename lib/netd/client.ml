module Obs = Dce_obs
module M = Obs.Metrics

type event =
  | Connected
  | Snapshot of string
  | Delta of string
  | Message of string
  | Beacon of string
  | Disconnected of string
  | Reconnecting of { attempt : int; delay_ms : int }
  | Gave_up of string

type config = {
  heartbeat_ms : int;
  idle_timeout_ms : int;
  max_outbox : int;
  max_frame : int;
  backoff_base_ms : int;
  backoff_max_ms : int;
  max_attempts : int option;
}

let default_config =
  {
    heartbeat_ms = 5_000;
    idle_timeout_ms = 30_000;
    max_outbox = 4 * 1024 * 1024;
    max_frame = 8 * 1024 * 1024;
    backoff_base_ms = 200;
    backoff_max_ms = 30_000;
    max_attempts = None;
  }

type phase =
  | Waiting of float (* reconnect at this wall-clock ms *)
  | Connecting of Unix.file_descr
  | Greeting of Conn.t (* hello sent, waiting for the snapshot *)
  | Live of Conn.t
  | Stopped

type t = {
  cfg : config;
  tele : Tele.t;
  trace : Obs.Trace.sink;
  host : string;
  port : int;
  site : int;
  doc : string option; (* None = v1 Hello dialect, Some = v2 Attach *)
  resume : unit -> (Dce_ot.Vclock.t * int) option;
  faults : Faults.t option;
  backoff : Backoff.t;
  mutable phase : phase;
  mutable failed_attempts : int; (* consecutive connect failures; see fail *)
  mutable was_live : bool; (* a future success is a reconnect, not a connect *)
  mutable stamp : unit -> Dce_ot.Vclock.t * int;
  mutable last_beacon_ms : float;
}

let now_ms = Dce_obs.Clock.now_ms

let create ?(config = default_config) ?metrics ?(trace = Obs.Trace.null) ?seed ?doc
    ?(resume = fun () -> None) ?faults ~host ~port ~site () =
  {
    cfg = config;
    tele = Tele.make ?metrics ();
    trace;
    host;
    port;
    site;
    doc;
    resume;
    faults;
    backoff =
      Backoff.create ~base_ms:config.backoff_base_ms ~max_ms:config.backoff_max_ms ?seed
        ();
    phase = Waiting 0.;
    failed_attempts = 0;
    was_live = false;
    stamp = (fun () -> (Dce_ot.Vclock.empty, 0));
    last_beacon_ms = 0.;
  }

let site t = t.site

let doc t = t.doc

let set_stamp t f = t.stamp <- f

let trace t action detail =
  if Obs.Trace.enabled t.trace then begin
    let clock, version = t.stamp () in
    Obs.Trace.emit t.trace ~site:t.site ~clock ~version
      (Obs.Trace.Net { peer = t.site; action; detail })
  end

let connected t = match t.phase with Live _ -> true | _ -> false

let stopped t = match t.phase with Stopped -> true | _ -> false

let fd t =
  match t.phase with
  | Connecting fd -> Some fd
  | Greeting c | Live c -> Some (Conn.fd c)
  | Waiting _ | Stopped -> None

let conn t = match t.phase with Greeting c | Live c -> Some c | _ -> None

let outbox_bytes t =
  match conn t with Some c -> Conn.outbox_bytes c | None -> 0

(* Sever the current connection as if the network cut it: the normal
   reap-and-reconnect path runs on the next [step], and the rejoin
   snapshot plus [Controller.catch_up] re-broadcast heal whatever a
   one-sided partition swallowed.  Chaos harnesses call this at the
   heal point; a no-op when not connected. *)
let drop_link ?(reason = "link dropped by harness") t =
  match conn t with
  | Some c -> Conn.mark_closed c (Conn.Local reason)
  | None -> ()

let send t bytes =
  match t.phase with
  | Live c ->
    let frame =
      match t.doc with
      | None -> Relay_proto.Msg bytes
      | Some doc -> Relay_proto.Doc_msg { doc; origin = 0; msg = bytes }
    in
    Conn.send c (Relay_proto.encode frame)
  | _ -> ()

let resolve t =
  try Unix.inet_addr_of_string t.host
  with Failure _ -> (
    match Unix.getaddrinfo t.host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ -> raise Not_found)

(* Transition to the backoff state after any failure.  Only a failed
   connection attempt (resolve/connect error, or a drop before the
   snapshot arrived) counts towards [max_attempts]; losing an
   established session schedules a reconnect with the counter freshly
   reset (it was zeroed when the snapshot made the session live). *)
let fail t reason =
  let was_established = match t.phase with Live _ -> true | _ -> false in
  (match t.phase with
   | Greeting c | Live c -> Conn.shutdown c
   | Connecting fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | _ -> ());
  if not was_established then t.failed_attempts <- t.failed_attempts + 1;
  match t.cfg.max_attempts with
  | Some m when (not was_established) && t.failed_attempts >= m ->
    t.phase <- Stopped;
    trace t "give_up" reason;
    [ Disconnected reason; Gave_up reason ]
  | _ ->
    let delay = Backoff.next t.backoff in
    t.phase <- Waiting (now_ms () +. float_of_int delay);
    trace t "disconnect" reason;
    [ Disconnected reason;
      Reconnecting { attempt = Backoff.attempt t.backoff; delay_ms = delay };
    ]

let greet t fd =
  let conn =
    Conn.create ~max_outbox:t.cfg.max_outbox ~max_frame:t.cfg.max_frame
      ?faults:t.faults ~tele:t.tele
      ~peer:(Printf.sprintf "%s:%d" t.host t.port)
      fd
  in
  let hello =
    match t.doc with
    | None -> Relay_proto.Hello { site = t.site }
    | Some doc -> (
      (* a client with recovered local state presents its resume point:
         the hub answers with a delta when its log still covers it, and
         a full snapshot otherwise *)
      match t.resume () with
      | Some (clock, version) ->
        let resume =
          Dce_wire.Proto.encode_frontier
            [ { Dce_wire.Proto.b_site = t.site; b_clock = clock; b_version = version } ]
        in
        Relay_proto.Attach_at { doc; site = t.site; resume }
      | None -> Relay_proto.Attach { doc; site = t.site })
  in
  Conn.send conn (Relay_proto.encode hello);
  Conn.handle_writable conn;
  t.phase <- Greeting conn;
  [ Connected ]

let start_connect t =
  match resolve t with
  | exception _ -> fail t (Printf.sprintf "cannot resolve %s" t.host)
  | addr -> (
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    match Unix.connect fd (Unix.ADDR_INET (addr, t.port)) with
    | () -> greet t fd
    | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
      t.phase <- Connecting fd;
      []
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail t ("connect: " ^ Unix.error_message e))

let dispatch t payload =
  match Relay_proto.decode payload with
  | Error e ->
    (match conn t with
     | Some c -> Conn.mark_closed c (Conn.Corrupt ("bad envelope: " ^ e))
     | None -> ());
    []
  | Ok msg -> (
    (* joining (or a server-initiated resync): the session is live.
       [what] is "snapshot" or "delta"; the matching event is returned. *)
    let go_live_with what event c s =
      t.phase <- Live c;
      if t.was_live then M.incr t.tele.Tele.reconnects else M.incr t.tele.Tele.connects;
      trace t (if t.was_live then "reconnect" else "connect") "";
      trace t what (string_of_int (String.length s) ^ " bytes");
      t.was_live <- true;
      Backoff.reset t.backoff;
      t.failed_attempts <- 0;
      [ event ]
    in
    let go_live c s = go_live_with "snapshot" (Snapshot s) c s in
    let corrupt why =
      (match conn t with
       | Some c -> Conn.mark_closed c (Conn.Corrupt why)
       | None -> ());
      []
    in
    match (msg, t.phase) with
    | Relay_proto.Snapshot s, (Greeting c | Live c) when t.doc = None -> go_live c s
    | Relay_proto.Snapshot _, (Greeting _ | Live _) ->
      corrupt "single-doc snapshot on a multi-doc session"
    | Relay_proto.Snapshot _, _ -> []
    | Relay_proto.Doc_snapshot { doc; state }, (Greeting c | Live c)
      when t.doc = Some doc ->
      go_live c state
    | Relay_proto.Doc_snapshot _, (Greeting _ | Live _) ->
      corrupt "snapshot for a document this client never attached"
    | Relay_proto.Doc_snapshot _, _ -> []
    | Relay_proto.Doc_delta { doc; delta }, (Greeting c | Live c)
      when t.doc = Some doc ->
      go_live_with "delta" (Delta delta) c delta
    | Relay_proto.Doc_delta _, (Greeting _ | Live _) ->
      corrupt "delta for a document this client never attached"
    | Relay_proto.Doc_delta _, _ -> []
    | Relay_proto.Beacon { doc; frontier }, Live _ when t.doc = Some doc ->
      [ Beacon frontier ]
    | Relay_proto.Beacon _, _ -> []
    | Relay_proto.Msg bytes, Live _ when t.doc = None -> [ Message bytes ]
    | Relay_proto.Msg _, Live _ -> corrupt "single-doc message on a multi-doc session"
    | Relay_proto.Msg _, _ -> corrupt "message before snapshot"
    | Relay_proto.Doc_msg { doc; msg; _ }, Live _ when t.doc = Some doc ->
      [ Message msg ]
    | Relay_proto.Doc_msg _, Live _ ->
      corrupt "message for a document this client never attached"
    | Relay_proto.Doc_msg _, _ -> corrupt "message before snapshot"
    | (Relay_proto.Welcome _ | Relay_proto.Attached _), _ -> []
    | Relay_proto.Ping, _ ->
      (match conn t with
       | Some c -> Conn.send c (Relay_proto.encode Relay_proto.Pong)
       | None -> ());
      []
    | Relay_proto.Pong, _ -> []
    | Relay_proto.Bye reason, _ ->
      (match conn t with
       | Some c -> Conn.mark_closed c (Conn.Local ("server: " ^ reason))
       | None -> ());
      []
    | ( ( Relay_proto.Hello _ | Relay_proto.Attach _ | Relay_proto.Attach_at _
        | Relay_proto.Detach _ ),
        _ ) ->
      corrupt "client-only envelope from server")

let pump_conn t c timeout_ms =
  let fd = Conn.fd c in
  let wrs = if Conn.wants_write c then [ fd ] else [] in
  let rd, wr, _ =
    try Unix.select [ fd ] wrs [] (float_of_int timeout_ms /. 1000.)
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  let events =
    if rd <> [] then List.concat_map (dispatch t) (Conn.handle_readable c) else []
  in
  if wr <> [] then Conn.handle_writable c;
  (* heartbeat / idle policy *)
  let now = now_ms () in
  if Conn.alive c then begin
    if now -. Conn.last_recv_ms c > float_of_int t.cfg.idle_timeout_ms then
      Conn.mark_closed c Conn.Idle
    else if now -. Conn.last_send_ms c > float_of_int t.cfg.heartbeat_ms then
      Conn.send c (Relay_proto.encode Relay_proto.Ping);
    (* stability beacon: the client's own delivery clock, on the
       heartbeat cadence, v2 sessions only (a v1 server would drop the
       connection on the unknown tag).  Sent even — especially — when
       idle: this is what lets the rest of the group compact past a
       silent editor.  Unlike the Ping above it is not suppressed by
       regular traffic, so the cadence holds under load too. *)
    match t.phase with
    | Live _
      when t.doc <> None
           && now -. t.last_beacon_ms > float_of_int t.cfg.heartbeat_ms -> (
      match t.doc with
      | Some doc ->
        let clock, version = t.stamp () in
        let frontier =
          Dce_wire.Proto.encode_frontier
            [ { Dce_wire.Proto.b_site = t.site; b_clock = clock; b_version = version } ]
        in
        Conn.send c (Relay_proto.encode (Relay_proto.Beacon { doc; frontier }));
        t.last_beacon_ms <- now
      | None -> ())
    | _ -> ()
  end;
  match Conn.closed_reason c with
  | None -> events
  | Some reason ->
    M.incr t.tele.Tele.disconnects;
    events @ fail t (Conn.reason_string reason)

let step ?(timeout_ms = 0) t =
  match t.phase with
  | Stopped -> []
  | Waiting until ->
    let now = now_ms () in
    if now >= until then start_connect t
    else begin
      let wait = min (float_of_int timeout_ms) (until -. now) in
      if wait > 0. then ignore (Unix.select [] [] [] (wait /. 1000.));
      []
    end
  | Connecting fd -> (
    let _, wr, _ =
      try Unix.select [] [ fd ] [] (float_of_int timeout_ms /. 1000.)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if wr = [] then []
    else
      match Unix.getsockopt_error fd with
      | None -> greet t fd
      | Some e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail t ("connect: " ^ Unix.error_message e))
  | Greeting c | Live c -> pump_conn t c timeout_ms

let close t =
  (match t.phase with
   | Greeting c | Live c ->
     Conn.send c (Relay_proto.encode (Relay_proto.Bye "client closing"));
     Conn.handle_writable c;
     Conn.shutdown c
   | Connecting fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | _ -> ());
  t.phase <- Stopped
