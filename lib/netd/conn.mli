(** One non-blocking framed connection.

    Wraps a connected socket with a read-side {!Splitter} and a bounded
    write-side outbox of framed chunks.  Nothing here blocks: the owner
    runs a [select] loop and calls {!handle_readable} /
    {!handle_writable} when the kernel says the socket is ready; partial
    reads and writes are the normal case and are resumed transparently.

    A connection never raises on hostile input or socket trouble — it
    transitions to a closed state carrying a {!close_reason}, and the
    owner reaps it.  Write backpressure is a disconnect-on-overflow
    policy: when the outbox would exceed its byte bound the peer is
    dropped (it will recover current state from a snapshot when it
    reconnects), so one stalled consumer cannot hold the process's
    memory hostage. *)

type close_reason =
  | Eof  (** orderly close from the peer *)
  | Overflow  (** outbox bound exceeded: the peer was not draining *)
  | Idle  (** no traffic within the idle timeout *)
  | Superseded  (** the same site opened a newer connection *)
  | Corrupt of string  (** the byte stream failed frame validation *)
  | Socket_error of string
  | Local of string  (** closed by this endpoint for [reason] *)

val reason_string : close_reason -> string

type t

val create :
  ?max_outbox:int ->
  ?max_frame:int ->
  ?faults:Faults.t ->
  tele:Tele.t ->
  peer:string ->
  Unix.file_descr ->
  t
(** Takes ownership of [fd]: sets it non-blocking (and [TCP_NODELAY]).
    [max_outbox] (default 4 MiB) bounds buffered unsent bytes;
    [max_frame] (default 8 MiB) bounds a single incoming frame.
    [faults] (chaos runs only) filters every outgoing frame through a
    seeded {!Faults} plan — drop, duplicate, delay, reorder, or
    partition-drop; held frames are released on later send/flush/poll
    activity. *)

val fd : t -> Unix.file_descr
val peer : t -> string

val send : t -> string -> unit
(** Frame a payload and queue it.  May flip the connection into the
    [Overflow] closed state instead; silently ignored once closed. *)

val handle_readable : t -> string list
(** Read once and return every complete frame payload now available.
    Sets the closed state on EOF, socket error or corrupt framing (the
    payloads extracted before the corruption are still returned). *)

val handle_writable : t -> unit
(** Flush as much of the outbox as the kernel accepts.  A no-op once
    the connection is marked closed. *)

val flush : t -> unit
(** Like {!handle_writable} but also runs on a connection already
    marked closed: a single best-effort push of whatever is queued (a
    final [Pong], [Bye] or kick notice) before {!shutdown}.  Whatever
    the kernel does not accept immediately is dropped. *)

val wants_write : t -> bool
(** Whether to put this socket in the [select] write set. *)

val alive : t -> bool
val closed_reason : t -> close_reason option

val mark_closed : t -> close_reason -> unit
(** First reason wins; the socket itself is closed by {!shutdown}. *)

val last_recv_ms : t -> float
val last_send_ms : t -> float
(** Wall-clock activity timestamps, for heartbeat/idle policies. *)

val outbox_bytes : t -> int

val shutdown : t -> unit
(** Close the file descriptor (idempotent, never raises). *)
