(** A site's connection to the relay, with automatic reconnection.

    The client owns the transport only; the session logic stays with the
    caller, which holds the controller.  The lifecycle surfaces as
    {!event}s returned from {!step}:

    - [Connected]: TCP is up and the [Hello] went out;
    - [Snapshot blob]: the relay's state transfer — decode it with
      [Proto.decode_state], load it, and {!Dce_core.Controller.rejoin}
      as your own site.  Emitted on every (re)join: reconnection is a
      resynchronization, not a resumption, because the relay has no way
      to know which fan-outs a dead socket actually delivered;
    - [Message blob]: a [Proto.encode_message] blob from another site;
    - [Disconnected] / [Reconnecting]: the link dropped (any reason:
      EOF, idle, corruption, backpressure) and a jittered exponential
      backoff is scheduled;
    - [Gave_up]: [max_attempts] exhausted; the client is inert.

    Single-threaded and non-blocking, like the hub: call {!step} from
    your own loop (it blocks at most [timeout_ms] in [select]), or
    [select] yourself on {!fd} and call {!step} when it fires. *)

type event =
  | Connected
  | Snapshot of string
  | Delta of string
      (** a [Proto.encode_delta] blob: the hub's answer to a resuming
          attach ({!create}'s [resume]) when its log still covers the
          presented point — decode with [Proto.decode_delta] and apply
          with {!Dce_core.Controller.apply_delta} instead of reloading a
          full snapshot.  Falls back to [Snapshot] otherwise. *)
  | Message of string
  | Beacon of string
      (** a [Proto.encode_frontier] blob: the hub's aggregate stability
          gossip for this document — feed each entry to
          {!Dce_core.Controller.receive_beacon} so the local frontier
          advances past silent peers and the log can compact. *)
  | Disconnected of string
  | Reconnecting of { attempt : int; delay_ms : int }
  | Gave_up of string

type config = {
  heartbeat_ms : int;
  idle_timeout_ms : int;
  max_outbox : int;
  max_frame : int;
  backoff_base_ms : int;
  backoff_max_ms : int;
  max_attempts : int option;
      (** [Some n]: emit [Gave_up] after exactly [n] consecutive failed
          connection attempts (resolve/connect errors, or a drop before
          the snapshot arrived).  The count resets when a session goes
          live, and the loss of a live session schedules a reconnect
          without counting as a failure.  [None]: retry forever. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?metrics:Dce_obs.Metrics.t ->
  ?trace:Dce_obs.Trace.sink ->
  ?seed:int ->
  ?doc:string ->
  ?resume:(unit -> (Dce_ot.Vclock.t * int) option) ->
  ?faults:Faults.t ->
  host:string ->
  port:int ->
  site:int ->
  unit ->
  t
(** Does not touch the network; the first {!step} starts connecting.
    [seed] fixes the backoff jitter (tests).  [doc] selects the wire
    dialect: omitted, the client greets with the v1 [Hello] and the hub
    attaches it to its default document; given, it greets with the v2
    [Attach doc] and exchanges [Doc_msg]/[Doc_snapshot] frames for that
    document.  Either way the {!event} surface is identical.

    [resume] (v2 only) is consulted at every (re)connect: return the
    local controller's clock and policy version to request a [Delta]
    instead of a full snapshot — the hub still answers [Snapshot] if its
    log is compacted past that point.  Return [None] (the default) when
    there is no local state to resume from.

    [faults] (chaos runs) injects the seeded fault plan into every
    connection this client opens — see {!Conn.create}. *)

val site : t -> int

val doc : t -> string option
(** The document requested at {!create} ([None] = the v1 dialect on the
    hub's default document). *)

val step : ?timeout_ms:int -> t -> event list
(** Advance the state machine: progress the non-blocking connect, read,
    dispatch, flush, heartbeat, or wait out the backoff. *)

val send : t -> string -> unit
(** Queue a [Proto.encode_message] blob for the relay to fan out.
    Dropped unless the session is live — locally generated requests
    issued while disconnected cannot reach anyone and are superseded by
    the snapshot on rejoin. *)

val connected : t -> bool
(** Live: the snapshot has been received. *)

val stopped : t -> bool
(** Closed or gave up; {!step} is a no-op. *)

val outbox_bytes : t -> int
(** Bytes queued for write on the current connection (0 when not
    connected) — the client-side backpressure level, exported as a
    gauge by the editor daemons. *)

val fd : t -> Unix.file_descr option
(** The socket, for embedding in an external [select] (e.g. together
    with stdin). [None] while waiting out a backoff. *)

val set_stamp : t -> (unit -> Dce_ot.Vclock.t * int) -> unit
(** How to stamp this client's [Net] trace events with a vector clock
    and policy version — point it at the live controller so traces stay
    causally auditable.  On v2 sessions the same source feeds the
    periodic stability beacon (sent on the heartbeat cadence, even when
    idle, so the rest of the group can compact past this site). *)

val drop_link : ?reason:string -> t -> unit
(** Sever the live connection as if the network cut it (no [Bye]); the
    normal reconnect path runs on the next {!step} and the rejoin
    snapshot heals the session.  Chaos harnesses use this as the heal
    point of a simulated partition.  No-op when not connected. *)

val close : t -> unit
(** Send [Bye], close, and stop reconnecting. *)
