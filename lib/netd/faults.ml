type config = {
  drop : float;
  dup : float;
  delay : float;
  delay_ms : int;
  reorder : float;
}

let none = { drop = 0.; dup = 0.; delay = 0.; delay_ms = 50; reorder = 0. }

let is_none c = c.drop = 0. && c.dup = 0. && c.delay = 0. && c.reorder = 0.

let to_string c =
  Printf.sprintf "drop=%g,dup=%g,delay=%g,delay_ms=%d,reorder=%g" c.drop c.dup c.delay
    c.delay_ms c.reorder

let of_string s =
  let parse acc kv =
    match acc with
    | Error _ -> acc
    | Ok c -> (
      match String.split_on_char '=' (String.trim kv) with
      | [ k; v ] -> (
        let prob () =
          match float_of_string_opt v with
          | Some p when p >= 0. && p <= 1. -> Ok p
          | _ -> Error (Printf.sprintf "faults: %s must be a probability in [0,1]" k)
        in
        match k with
        | "drop" -> Result.map (fun p -> { c with drop = p }) (prob ())
        | "dup" -> Result.map (fun p -> { c with dup = p }) (prob ())
        | "delay" -> Result.map (fun p -> { c with delay = p }) (prob ())
        | "reorder" -> Result.map (fun p -> { c with reorder = p }) (prob ())
        | "delay_ms" -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> Ok { c with delay_ms = n }
          | _ -> Error "faults: delay_ms must be a positive integer")
        | _ -> Error (Printf.sprintf "faults: unknown key %S" k))
      | _ -> Error (Printf.sprintf "faults: expected key=value, got %S" kv))
  in
  if String.trim s = "" then Ok none
  else List.fold_left parse (Ok none) (String.split_on_char ',' s)

type decision = Pass | Drop | Dup | Delay of int | Swap

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable part : bool;
  mutable n_drops : int;
  mutable n_dups : int;
  mutable n_delays : int;
}

let create ?(config = none) ~seed ~label () =
  {
    cfg = config;
    rng = Random.State.make [| seed; Hashtbl.hash label; 0x5eed |];
    part = false;
    n_drops = 0;
    n_dups = 0;
    n_delays = 0;
  }

let config t = t.cfg

(* One uniform draw decides the frame's fate: the [0,1] interval is
   split into adjacent bands, so decision frequencies match the
   configured probabilities and a single stream stays reproducible
   whatever the config. *)
let decide t =
  let c = t.cfg in
  if is_none c then Pass
  else begin
    let x = Random.State.float t.rng 1.0 in
    if x < c.drop then begin
      t.n_drops <- t.n_drops + 1;
      Drop
    end
    else if x < c.drop +. c.dup then begin
      t.n_dups <- t.n_dups + 1;
      Dup
    end
    else if x < c.drop +. c.dup +. c.delay then begin
      t.n_delays <- t.n_delays + 1;
      Delay (1 + Random.State.int t.rng (max 1 c.delay_ms))
    end
    else if x < c.drop +. c.dup +. c.delay +. c.reorder then begin
      t.n_delays <- t.n_delays + 1;
      Swap
    end
    else Pass
  end

let partitioned t = t.part
let set_partitioned t b = t.part <- b
let drops t = t.n_drops
let dups t = t.n_dups
let delays t = t.n_delays
let count_partition_drop t = t.n_drops <- t.n_drops + 1
