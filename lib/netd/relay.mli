(** The relay server: hosts a session and rebroadcasts between sites.

    One process ([bin/dced]) listens for TCP connections; each client
    identifies itself with a [Hello] carrying its site id, receives the
    current session state as a snapshot (late joiners and reconnecting
    sites need nothing else), and from then on every
    [Controller.message] it sends is fanned out to every other
    connected site.  The relay keeps its own controller — a passive,
    non-editing group member — current by receiving everything it
    relays; that controller is what snapshots are cut from.  If the
    relay happens to hold the administrator role, messages its
    controller emits on reception (validations) are fanned out too.

    Trust: the relay validates framing, the envelope and the message
    encoding (a malformed peer is disconnected, never a crash), but it
    does {e not} arbitrate the paper's security model — policy
    enforcement stays with every site's controller, exactly as in the
    peer-to-peer deployment.  The relay is a reliable-broadcast device,
    not a policy oracle.

    Single-threaded: {!step} runs one bounded [select] round, so the
    relay can be embedded cooperatively (tests, benchmarks) or driven
    forever with {!run}. *)

type config = {
  heartbeat_ms : int;  (** ping a connection silent this long *)
  idle_timeout_ms : int;  (** drop a connection silent this long *)
  max_outbox : int;  (** per-connection write buffer bound, bytes *)
  max_frame : int;  (** largest acceptable incoming frame, bytes *)
}

val default_config : config
(** 5 s heartbeat, 30 s idle timeout, 4 MiB outbox, 8 MiB frames. *)

type 'e t

val create :
  ?config:config ->
  ?metrics:Dce_obs.Metrics.t ->
  ?trace:Dce_obs.Trace.sink ->
  ?addr:Unix.inet_addr ->
  ?journal:'e Dce_store.Persist.t ->
  codec:'e Dce_wire.Proto.elt_codec ->
  controller:'e Dce_core.Controller.t ->
  port:int ->
  unit ->
  'e t
(** Bind and listen ([addr] defaults to loopback; [port] 0 picks an
    ephemeral port, see {!port}).  [controller] is the hosted session's
    initial state; create it with a site id outside the user range.
    With [journal], every message the hosted controller integrates is
    appended to the write-ahead log before it is fanned out, and the
    full state is checkpointed on the journal's cadence — restart the
    daemon on the same directory and the session (seqnos, late-joiner
    snapshots, validation state) survives.  The caller opens the
    journal, checkpoints the initial state if the store was empty, and
    closes it after {!shutdown}.
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val port : 'e t -> int
(** The actually bound port. *)

val controller : 'e t -> 'e Dce_core.Controller.t
(** The relay's current copy of the session. *)

val connected_sites : 'e t -> int list

val conn_count : 'e t -> int
(** Live connections (including peers still in the greeting phase). *)

val outbox_bytes : 'e t -> int
(** Bytes queued for write across all live connections — the relay's
    aggregate backpressure level, exported as a gauge by [dced]. *)

val step : ?timeout_ms:int -> 'e t -> unit
(** One event-loop round: accept, read/dispatch, flush, heartbeat,
    reap.  Blocks in [select] at most [timeout_ms] (default 0). *)

val run : ?tick_ms:int -> ?on_tick:('e t -> unit) -> 'e t -> unit
(** {!step} until {!shutdown} (e.g. from [on_tick] or a signal
    handler's effect on a flag the callback checks). *)

val kick : 'e t -> site:int -> bool
(** Drop a site's connection (it may reconnect).  [false] if not
    connected. *)

val stopped : 'e t -> bool

val shutdown : 'e t -> unit
(** Send [Bye] to every peer, close everything, stop {!run}. *)
