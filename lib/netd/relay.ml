module Obs = Dce_obs
module M = Obs.Metrics
module Proto = Dce_wire.Proto
module Controller = Dce_core.Controller
module IntSet = Set.Make (Int)

type config = {
  heartbeat_ms : int;
  idle_timeout_ms : int;
  max_outbox : int;
  max_frame : int;
}

let default_config =
  {
    heartbeat_ms = 5_000;
    idle_timeout_ms = 30_000;
    max_outbox = 4 * 1024 * 1024;
    max_frame = 8 * 1024 * 1024;
  }

type peer_state = Greeting | Joined of int

type 'e t = {
  cfg : config;
  tele : Tele.t;
  trace : Obs.Trace.sink;
  codec : 'e Proto.elt_codec;
  listen_fd : Unix.file_descr;
  port : int;
  journal : 'e Dce_store.Persist.t option;
  mutable ctrl : 'e Controller.t;
  mutable conns : (Conn.t * peer_state ref) list;
  mutable seen : IntSet.t; (* sites that joined at least once: reconnect detection *)
  mutable stopped : bool;
}

let trace t peer action detail =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~site:(Controller.site t.ctrl) ~clock:(Controller.clock t.ctrl)
      ~version:(Controller.version t.ctrl)
      (Obs.Trace.Net { peer; action; detail })

let create ?(config = default_config) ?metrics ?(trace = Obs.Trace.null)
    ?(addr = Unix.inet_addr_loopback) ?journal ~codec ~controller ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  {
    cfg = config;
    tele = Tele.make ?metrics ();
    trace;
    codec;
    listen_fd = fd;
    port;
    journal;
    ctrl = controller;
    conns = [];
    seen = IntSet.empty;
    stopped = false;
  }

let port t = t.port
let controller t = t.ctrl
let conn_count t = List.length (List.filter (fun (c, _) -> Conn.alive c) t.conns)

let outbox_bytes t =
  List.fold_left
    (fun acc (c, _) -> if Conn.alive c then acc + Conn.outbox_bytes c else acc)
    0 t.conns

let connected_sites t =
  List.sort compare
    (List.filter_map
       (fun (c, st) ->
         match !st with Joined s when Conn.alive c -> Some s | _ -> None)
       t.conns)

let site_of st = match !st with Greeting -> -1 | Joined s -> s

let fan_out t ~except bytes =
  let env = Relay_proto.encode (Relay_proto.Msg bytes) in
  List.iter
    (fun (c, st) ->
      match !st with
      | Joined s when except <> Some s -> Conn.send c env
      | _ -> ())
    t.conns

let join t conn st site =
  (* a site reconnecting through a fresh socket supersedes its old,
     possibly half-dead connection *)
  List.iter
    (fun (c, st') ->
      match !st' with
      | Joined s when s = site && c != conn -> Conn.mark_closed c Conn.Superseded
      | _ -> ())
    t.conns;
  st := Joined site;
  M.incr t.tele.Tele.connects;
  let again = IntSet.mem site t.seen in
  if again then M.incr t.tele.Tele.reconnects;
  t.seen <- IntSet.add site t.seen;
  trace t site (if again then "reconnect" else "connect") (Conn.peer conn);
  Conn.send conn
    (Relay_proto.encode
       (Relay_proto.Welcome
          { relay_site = Controller.site t.ctrl; heartbeat_ms = t.cfg.heartbeat_ms }));
  Conn.send conn
    (Relay_proto.encode
       (Relay_proto.Snapshot (Proto.encode_state t.codec (Controller.dump t.ctrl))));
  M.incr t.tele.Tele.snapshots;
  trace t site "snapshot" ""

(* Journal an integrated message and checkpoint on cadence.  Journal
   errors degrade durability, not availability: the live session keeps
   running and the failure is surfaced through the trace. *)
let journal_received t m =
  match t.journal with
  | None -> ()
  | Some j -> (
    Dce_store.Persist.record j (Dce_store.Persist.Received m);
    match Dce_store.Persist.maybe_checkpoint j t.ctrl with
    | Ok did -> if did then trace t (Controller.site t.ctrl) "checkpoint" ""
    | Error e -> trace t (Controller.site t.ctrl) "journal_error" e)

let dispatch t conn st payload =
  match Relay_proto.decode payload with
  | Error e -> Conn.mark_closed conn (Conn.Corrupt ("bad envelope: " ^ e))
  | Ok msg -> (
    match (msg, !st) with
    | Relay_proto.Hello { site }, Greeting -> join t conn st site
    | Relay_proto.Hello _, Joined _ ->
      Conn.mark_closed conn (Conn.Corrupt "duplicate hello")
    | Relay_proto.Msg bytes, Joined src -> (
      match Proto.decode_message_stamped t.codec bytes with
      | Error e -> Conn.mark_closed conn (Conn.Corrupt ("bad message: " ^ e))
      | Ok (stamp, m) -> (
        (match stamp with
         | Some s -> M.observe t.tele.Tele.e2e_ns (Obs.Clock.now_ns () - s.Proto.s_ns)
         | None -> ());
        (* [decode_message] validates the encoding only; applying the
           message is what checks its semantics.  A well-framed op with
           an out-of-range position or a fabricated serial/context must
           drop the peer, not the daemon — and must not be relayed. *)
        match Controller.receive t.ctrl m with
        | ctrl, emitted ->
          (* keep the hosted session current (this is what snapshots are
             cut from), journal the accepted input before it produces any
             external effect, then fan the original bytes out verbatim *)
          t.ctrl <- ctrl;
          journal_received t m;
          M.incr t.tele.Tele.relayed;
          fan_out t ~except:(Some src) bytes;
          List.iter
            (fun em -> fan_out t ~except:None (Proto.encode_message t.codec em))
            emitted
        | exception e ->
          let detail =
            match e with
            | Invalid_argument m | Failure m | Dce_ot.Document.Edit_conflict m -> m
            | e -> Printexc.to_string e
          in
          Conn.mark_closed conn (Conn.Corrupt ("rejected message: " ^ detail))))
    | Relay_proto.Msg _, Greeting ->
      Conn.mark_closed conn (Conn.Corrupt "message before hello")
    | Relay_proto.Ping, _ -> Conn.send conn (Relay_proto.encode Relay_proto.Pong)
    | Relay_proto.Pong, _ -> ()
    | Relay_proto.Bye _, _ -> Conn.mark_closed conn (Conn.Local "bye")
    | (Relay_proto.Welcome _ | Relay_proto.Snapshot _), _ ->
      Conn.mark_closed conn (Conn.Corrupt "server-only envelope from a client"))

let rec accept_all t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, sockaddr ->
    let peer =
      match sockaddr with
      | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      | Unix.ADDR_UNIX p -> p
    in
    let conn =
      Conn.create ~max_outbox:t.cfg.max_outbox ~max_frame:t.cfg.max_frame ~tele:t.tele
        ~peer fd
    in
    t.conns <- t.conns @ [ (conn, ref Greeting) ];
    accept_all t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let heartbeats t =
  let now = Dce_obs.Clock.now_ms () in
  List.iter
    (fun (c, _) ->
      if Conn.alive c then
        if now -. Conn.last_recv_ms c > float_of_int t.cfg.idle_timeout_ms then
          Conn.mark_closed c Conn.Idle
        else if now -. Conn.last_send_ms c > float_of_int t.cfg.heartbeat_ms then
          Conn.send c (Relay_proto.encode Relay_proto.Ping))
    t.conns

let reap t =
  let dead, live = List.partition (fun (c, _) -> not (Conn.alive c)) t.conns in
  t.conns <- live;
  List.iter
    (fun (c, st) ->
      let reason = Option.value ~default:Conn.Eof (Conn.closed_reason c) in
      M.incr t.tele.Tele.disconnects;
      let action =
        match reason with
        | Conn.Corrupt _ -> "frame_error"
        | Conn.Overflow -> "overflow"
        | Conn.Idle -> "idle"
        | _ -> "disconnect"
      in
      trace t (site_of st) action (Conn.reason_string reason);
      (* best-effort flush of anything already queued (e.g. a Pong),
         then close *)
      Conn.flush c;
      Conn.shutdown c)
    dead

let step ?(timeout_ms = 0) t =
  if not t.stopped then begin
    accept_all t;
    let rds =
      t.listen_fd
      :: List.filter_map
           (fun (c, _) -> if Conn.alive c then Some (Conn.fd c) else None)
           t.conns
    in
    let wrs =
      List.filter_map
        (fun (c, _) -> if Conn.wants_write c then Some (Conn.fd c) else None)
        t.conns
    in
    let rd, wr, _ =
      try Unix.select rds wrs [] (float_of_int timeout_ms /. 1000.)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.listen_fd rd then accept_all t;
    List.iter
      (fun (c, st) ->
        if List.mem (Conn.fd c) rd then
          List.iter (dispatch t c st) (Conn.handle_readable c))
      t.conns;
    List.iter
      (fun (c, _) -> if List.mem (Conn.fd c) wr then Conn.handle_writable c)
      t.conns;
    heartbeats t;
    reap t
  end

let kick t ~site =
  let found = ref false in
  List.iter
    (fun (c, st) ->
      match !st with
      | Joined s when s = site && Conn.alive c ->
        found := true;
        Conn.mark_closed c (Conn.Local "kicked")
      | _ -> ())
    t.conns;
  !found

let stopped t = t.stopped

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter
      (fun (c, _) ->
        Conn.send c (Relay_proto.encode (Relay_proto.Bye "relay shutting down"));
        Conn.handle_writable c;
        Conn.shutdown c)
      t.conns;
    t.conns <- [];
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

let run ?(tick_ms = 200) ?on_tick t =
  while not t.stopped do
    step ~timeout_ms:tick_ms t;
    match on_tick with None -> () | Some f -> f t
  done
