(** Jittered exponential backoff for reconnect scheduling.

    Delays double from [base_ms] up to [max_ms], and each draw is
    uniform in the upper half of the current cap, so a fleet of clients
    cut off by the same failure does not reconnect in lockstep. *)

type t

val create : ?base_ms:int -> ?max_ms:int -> ?seed:int -> unit -> t
(** Defaults: [base_ms = 200], [max_ms = 30_000].  [seed] makes the
    jitter deterministic (tests); otherwise it is self-initialized. *)

val next : t -> int
(** The next delay in milliseconds; advances the attempt counter. *)

val attempt : t -> int
(** Attempts drawn since the last {!reset}. *)

val reset : t -> unit
(** Call after a successful connection: the next failure starts over
    from [base_ms]. *)
