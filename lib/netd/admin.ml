(* Admin plane: a tiny non-blocking HTTP/1.1 server for scraping a live
   daemon.  Three read-only routes — /metrics (Prometheus text
   exposition of the process registry), /healthz and /sessions (JSON
   from caller callbacks) — one response per connection, then close.
   It shares the owner's event loop: callers either put [fds] into
   their select read set or just call [step] on every tick; a step
   costs one non-blocking accept plus a read attempt per open
   connection, so polling from a hot loop is fine. *)

module Obs = Dce_obs

let max_request = 4096
let max_conns = 32
let conn_ttl_ms = 10_000.

type http_conn = {
  fd : Unix.file_descr;
  born_ms : float;
  inbuf : Buffer.t;
  mutable out : string;  (* response bytes not yet written *)
  mutable responding : bool;
  mutable dead : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  metrics : Obs.Metrics.t;
  healthz : unit -> Obs.Json.t;
  sessions : unit -> Obs.Json.t;
  mutable conns : http_conn list;
  mutable closed : bool;
}

let default_healthz () = Obs.Json.Obj [ ("status", Obs.Json.String "ok") ]
let default_sessions () = Obs.Json.Obj []

let create ?(addr = Unix.inet_addr_loopback) ?metrics ?healthz ?sessions ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 16;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  {
    listen_fd = fd;
    port;
    metrics =
      (match metrics with Some m -> m | None -> Obs.Metrics.create ~enabled:false ());
    healthz = Option.value ~default:default_healthz healthz;
    sessions = Option.value ~default:default_sessions sessions;
    conns = [];
    closed = false;
  }

let port t = t.port

let fds t =
  if t.closed then []
  else t.listen_fd :: List.filter_map (fun c -> if c.dead then None else Some c.fd) t.conns

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let route t path =
  match path with
  | "/metrics" ->
    response ~status:"200 OK" ~content_type:"text/plain; version=0.0.4"
      (Obs.Export.exposition t.metrics)
  | "/healthz" ->
    (* a load balancer or probe only reads the status code: anything the
       callback reports as not-"ok" must be a non-200 *)
    let body = t.healthz () in
    let status =
      match body with
      | Obs.Json.Obj fields -> (
        match List.assoc_opt "status" fields with
        | Some (Obs.Json.String "ok") | None -> "200 OK"
        | Some _ -> "503 Service Unavailable")
      | _ -> "200 OK"
    in
    response ~status ~content_type:"application/json"
      (Obs.Json.to_string body ^ "\n")
  | "/sessions" ->
    response ~status:"200 OK" ~content_type:"application/json"
      (Obs.Json.to_string (t.sessions ()) ^ "\n")
  | _ -> response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"

(* "GET <path> HTTP/1.x" — anything else is a 400. *)
let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ "GET"; path; _http ] ->
    (* drop any query string: the routes take no parameters *)
    Some (match String.index_opt path '?' with
          | Some q -> String.sub path 0 q
          | None -> path)
  | _ -> None

let feed t c =
  let buf = Bytes.create 1024 in
  let rec drain () =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> c.dead <- true
    | n ->
      Buffer.add_subbytes c.inbuf buf 0 n;
      if Buffer.length c.inbuf > max_request then c.dead <- true else drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> c.dead <- true
  in
  drain ();
  if (not c.dead) && not c.responding then begin
    let data = Buffer.contents c.inbuf in
    (* headers complete once the blank line arrives ("\n\n" or
       "\n\r\n"); we only need the request line *)
    let complete =
      let n = String.length data in
      let rec find i =
        i < n - 1
        && (data.[i] = '\n'
            && (data.[i + 1] = '\n'
                || (i < n - 2 && data.[i + 1] = '\r' && data.[i + 2] = '\n'))
           || find (i + 1))
      in
      find 0
    in
    if complete then begin
      c.responding <- true;
      let first_line =
        match String.index_opt data '\r' with
        | Some i -> String.sub data 0 i
        | None -> (
          match String.index_opt data '\n' with
          | Some i -> String.sub data 0 i
          | None -> data)
      in
      c.out <-
        (match parse_request_line first_line with
         | Some path -> route t path
         | None ->
           response ~status:"400 Bad Request" ~content_type:"text/plain"
             "bad request\n")
    end
  end

let write_out c =
  if c.out <> "" then begin
    match Unix.write_substring c.fd c.out 0 (String.length c.out) with
    | n ->
      c.out <- String.sub c.out n (String.length c.out - n);
      if c.out = "" then c.dead <- true (* response done: close *)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> c.dead <- true
  end

let rec accept_all t =
  if List.length t.conns < max_conns then
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.conns <-
        t.conns
        @ [
            {
              fd;
              born_ms = Obs.Clock.now_ms ();
              inbuf = Buffer.create 256;
              out = "";
              responding = false;
              dead = false;
            };
          ];
      accept_all t
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()

let step t =
  if not t.closed then begin
    accept_all t;
    let now = Obs.Clock.now_ms () in
    List.iter
      (fun c ->
        if not c.dead then begin
          if not c.responding then feed t c;
          write_out c;
          if now -. c.born_ms > conn_ttl_ms then c.dead <- true
        end)
      t.conns;
    let dead, live = List.partition (fun c -> c.dead) t.conns in
    t.conns <- live;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) dead
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
    t.conns <- [];
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end
