(** The transport's metric handles, resolved once per endpoint.

    Counters: [netd.bytes_in]/[netd.bytes_out] (socket payload bytes),
    [netd.frames_in]/[netd.frames_out], [netd.framing_errors] (corrupt
    streams), [netd.connects]/[netd.disconnects]/[netd.reconnects]
    (connection lifecycle), [netd.snapshots] (late-join state
    transfers), [netd.relayed] (messages fanned out), [netd.overflows]
    (connections dropped by backpressure).  Histograms: [netd.flush_ns]
    (wall-clock time of a non-empty socket flush) and
    [e2e.propagation_ns] (origin-stamp to local integration latency of
    stamped messages; raw cross-host readings include clock skew). *)

type t = {
  bytes_in : Dce_obs.Metrics.counter;
  bytes_out : Dce_obs.Metrics.counter;
  frames_in : Dce_obs.Metrics.counter;
  frames_out : Dce_obs.Metrics.counter;
  framing_errors : Dce_obs.Metrics.counter;
  connects : Dce_obs.Metrics.counter;
  disconnects : Dce_obs.Metrics.counter;
  reconnects : Dce_obs.Metrics.counter;
  snapshots : Dce_obs.Metrics.counter;
  relayed : Dce_obs.Metrics.counter;
  overflows : Dce_obs.Metrics.counter;
  flush_ns : Dce_obs.Metrics.histogram;
  e2e_ns : Dce_obs.Metrics.histogram;
}

val make : ?metrics:Dce_obs.Metrics.t -> unit -> t
(** Without [metrics], handles point into a permanently disabled
    registry, so updates cost one branch. *)
