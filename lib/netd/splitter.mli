(** Incremental frame splitter: a byte stream in, whole
    {!Dce_wire.Codec} frame payloads out.

    TCP delivers arbitrary chunks; {!feed} buffers them and {!next}
    extracts complete frames as they become available, using
    {!Dce_wire.Codec.unframe_prefix} to distinguish "the rest has not
    arrived yet" from "this stream is corrupt".  Corruption is sticky:
    after the first corrupt frame the splitter refuses everything, since
    a stream with no synchronization points cannot be trusted past a bad
    checksum — the connection must be dropped (and re-established, which
    resets framing). *)

type t

val create : ?max_payload:int -> unit -> t
(** [max_payload] (default 8 MiB) bounds the declared payload size of a
    single frame; a larger declaration is treated as corruption before
    any of the payload is buffered. *)

val feed : t -> Bytes.t -> off:int -> len:int -> unit
(** Append a chunk read from the socket.  No-op once corrupt. *)

val feed_string : t -> string -> unit

val next : t -> (string option, string) result
(** [Ok (Some payload)]: one complete frame was consumed.  [Ok None]:
    need more bytes.  [Error reason]: the stream is corrupt (sticky). *)

val buffered : t -> int
(** Unconsumed bytes currently held. *)

val corrupt : t -> string option
