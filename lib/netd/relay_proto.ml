open Dce_wire.Codec

type t =
  | Hello of { site : int }
  | Welcome of { relay_site : int; heartbeat_ms : int }
  | Snapshot of string
  | Msg of string
  | Ping
  | Pong
  | Bye of string
  (* v2: multi-document multiplexing.  Old peers reject these tags as
     "unknown relay message kind" and drop the connection — which is the
     correct failure mode for a v1-only peer wired to a v2-only flow —
     while the hub speaks v1 to any connection that greeted with
     [Hello]. *)
  | Attach of { doc : string; site : int }
  | Attached of { doc : string; relay_site : int; heartbeat_ms : int }
  | Detach of { doc : string }
  | Doc_snapshot of { doc : string; state : string }
  | Doc_msg of { doc : string; origin : int; msg : string }
  (* v2 stability protocol.  [Attach_at] is [Attach] plus the joiner's
     resume point (an encoded [Proto] frontier beacon): the hub answers
     [Doc_delta] when its log still covers that point, [Doc_snapshot]
     otherwise.  [Beacon] carries an encoded frontier — one entry from a
     client, a whole membership aggregate from a hub — and flows both
     ways.  Payloads stay opaque strings here, like snapshots and
     messages, so this layer never depends on the document codec. *)
  | Attach_at of { doc : string; site : int; resume : string }
  | Doc_delta of { doc : string; delta : string }
  | Beacon of { doc : string; frontier : string }

let put b = function
  | Hello { site } ->
    put_char b 'H';
    put_varint b site
  | Welcome { relay_site; heartbeat_ms } ->
    put_char b 'W';
    put_varint b relay_site;
    put_varint b heartbeat_ms
  | Snapshot s ->
    put_char b 'S';
    put_string b s
  | Msg s ->
    put_char b 'M';
    put_string b s
  | Ping -> put_char b 'P'
  | Pong -> put_char b 'Q'
  | Bye reason ->
    put_char b 'B';
    put_string b reason
  | Attach { doc; site } ->
    put_char b 'A';
    put_string b doc;
    put_varint b site
  | Attached { doc; relay_site; heartbeat_ms } ->
    put_char b 'a';
    put_string b doc;
    put_varint b relay_site;
    put_varint b heartbeat_ms
  | Detach { doc } ->
    put_char b 'D';
    put_string b doc
  | Doc_snapshot { doc; state } ->
    put_char b 's';
    put_string b doc;
    put_string b state
  | Doc_msg { doc; origin; msg } ->
    put_char b 'm';
    put_string b doc;
    put_varint b origin;
    put_string b msg
  | Attach_at { doc; site; resume } ->
    put_char b 'J';
    put_string b doc;
    put_varint b site;
    put_string b resume
  | Doc_delta { doc; delta } ->
    put_char b 'e';
    put_string b doc;
    put_string b delta
  | Beacon { doc; frontier } ->
    put_char b 'F';
    put_string b doc;
    put_string b frontier

let get d =
  let* c = get_char d in
  match c with
  | 'H' ->
    let* site = get_varint d in
    Ok (Hello { site })
  | 'W' ->
    let* relay_site = get_varint d in
    let* heartbeat_ms = get_varint d in
    Ok (Welcome { relay_site; heartbeat_ms })
  | 'S' ->
    let* s = get_string d in
    Ok (Snapshot s)
  | 'M' ->
    let* s = get_string d in
    Ok (Msg s)
  | 'P' -> Ok Ping
  | 'Q' -> Ok Pong
  | 'B' ->
    let* reason = get_string d in
    Ok (Bye reason)
  | 'A' ->
    let* doc = get_string d in
    let* site = get_varint d in
    Ok (Attach { doc; site })
  | 'a' ->
    let* doc = get_string d in
    let* relay_site = get_varint d in
    let* heartbeat_ms = get_varint d in
    Ok (Attached { doc; relay_site; heartbeat_ms })
  | 'D' ->
    let* doc = get_string d in
    Ok (Detach { doc })
  | 's' ->
    let* doc = get_string d in
    let* state = get_string d in
    Ok (Doc_snapshot { doc; state })
  | 'm' ->
    let* doc = get_string d in
    let* origin = get_varint d in
    let* msg = get_string d in
    Ok (Doc_msg { doc; origin; msg })
  | 'J' ->
    let* doc = get_string d in
    let* site = get_varint d in
    let* resume = get_string d in
    Ok (Attach_at { doc; site; resume })
  | 'e' ->
    let* doc = get_string d in
    let* delta = get_string d in
    Ok (Doc_delta { doc; delta })
  | 'F' ->
    let* doc = get_string d in
    let* frontier = get_string d in
    Ok (Beacon { doc; frontier })
  | c -> Error (Printf.sprintf "unknown relay message kind %C" c)

let encode m = to_string put m

let decode s = of_string get s

let label = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Snapshot _ -> "snapshot"
  | Msg _ -> "msg"
  | Ping -> "ping"
  | Pong -> "pong"
  | Bye _ -> "bye"
  | Attach _ -> "attach"
  | Attached _ -> "attached"
  | Detach _ -> "detach"
  | Doc_snapshot _ -> "doc_snapshot"
  | Doc_msg _ -> "doc_msg"
  | Attach_at _ -> "attach_at"
  | Doc_delta _ -> "doc_delta"
  | Beacon _ -> "beacon"
