open Dce_wire.Codec

type t =
  | Hello of { site : int }
  | Welcome of { relay_site : int; heartbeat_ms : int }
  | Snapshot of string
  | Msg of string
  | Ping
  | Pong
  | Bye of string

let put b = function
  | Hello { site } ->
    put_char b 'H';
    put_varint b site
  | Welcome { relay_site; heartbeat_ms } ->
    put_char b 'W';
    put_varint b relay_site;
    put_varint b heartbeat_ms
  | Snapshot s ->
    put_char b 'S';
    put_string b s
  | Msg s ->
    put_char b 'M';
    put_string b s
  | Ping -> put_char b 'P'
  | Pong -> put_char b 'Q'
  | Bye reason ->
    put_char b 'B';
    put_string b reason

let get d =
  let* c = get_char d in
  match c with
  | 'H' ->
    let* site = get_varint d in
    Ok (Hello { site })
  | 'W' ->
    let* relay_site = get_varint d in
    let* heartbeat_ms = get_varint d in
    Ok (Welcome { relay_site; heartbeat_ms })
  | 'S' ->
    let* s = get_string d in
    Ok (Snapshot s)
  | 'M' ->
    let* s = get_string d in
    Ok (Msg s)
  | 'P' -> Ok Ping
  | 'Q' -> Ok Pong
  | 'B' ->
    let* reason = get_string d in
    Ok (Bye reason)
  | c -> Error (Printf.sprintf "unknown relay message kind %C" c)

let encode m = to_string put m

let decode s = of_string get s

let label = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Snapshot _ -> "snapshot"
  | Msg _ -> "msg"
  | Ping -> "ping"
  | Pong -> "pong"
  | Bye _ -> "bye"
