(** The session envelope spoken over a relay connection.

    Each value is one {!Dce_wire.Codec} frame payload.  [Snapshot] and
    [Msg] carry the {!Dce_wire.Proto} encodings ({!encode_state} /
    {!encode_message} output) verbatim as opaque strings: the relay fans
    [Msg] bytes out without re-encoding, and stays generic over the
    element type.

    {b v1 handshake (single document)}: the client sends [Hello] with
    its site id; the relay answers [Welcome] then [Snapshot] (the
    current session state, which is how late joiners and reconnecting
    sites catch up), after which both sides exchange [Msg] and keep the
    link alive with [Ping]/[Pong].  [Bye] announces an orderly close.
    A v1 connection is implicitly attached to the hub's default
    document.

    {b v2 handshake (multi-document)}: the client sends [Attach] naming
    a document; the hub answers [Attached] then [Doc_snapshot] for that
    document.  One connection can attach to several documents (send
    further [Attach] frames at any time) and carries [Doc_msg] frames
    tagged with the document name; [Detach] leaves one document without
    closing the socket.  [Doc_msg.origin] is the hub id of the relay
    that first accepted the message into the federation (0 = an
    ordinary editor); hubs drop frames whose origin equals their own id,
    which is what prevents forwarding loops between federated relays.
    [Ping]/[Pong]/[Bye] are shared with v1.

    Like every decoder in this repo, {!decode} never raises — the
    envelope is parsed from untrusted bytes. *)

type t =
  | Hello of { site : int }
  | Welcome of { relay_site : int; heartbeat_ms : int }
  | Snapshot of string  (** a [Proto.encode_state] blob *)
  | Msg of string  (** a [Proto.encode_message] blob *)
  | Ping
  | Pong
  | Bye of string
  | Attach of { doc : string; site : int }
      (** v2 hello: join [doc] as [site]; repeatable per connection *)
  | Attached of { doc : string; relay_site : int; heartbeat_ms : int }
      (** v2 welcome, answered per [Attach] *)
  | Detach of { doc : string }  (** leave one doc, keep the socket *)
  | Doc_snapshot of { doc : string; state : string }
      (** a [Proto.encode_state] blob for one document *)
  | Doc_msg of { doc : string; origin : int; msg : string }
      (** a [Proto.encode_message] blob routed to [doc]; [origin] is the
          federation loop guard (hub id of the first relay, 0 = editor)
          *)
  | Attach_at of { doc : string; site : int; resume : string }
      (** v2 resuming attach: like [Attach] plus the joiner's resume
          point, a [Proto.encode_frontier] blob holding one beacon (the
          joiner's own clock and policy version).  The hub answers
          [Attached] then [Doc_delta] when its log still covers that
          point, or [Doc_snapshot] when it compacted past it. *)
  | Doc_delta of { doc : string; delta : string }
      (** a [Proto.encode_delta] blob: the suffix a resuming joiner
          lacks, in place of a full [Doc_snapshot] *)
  | Beacon of { doc : string; frontier : string }
      (** a [Proto.encode_frontier] blob — stability gossip.  Clients
          send their own single-entry frontier on the heartbeat cadence;
          hubs fan the per-doc aggregate to members and report it
          upstream, which is what lets every replica's stability
          frontier advance past silent peers and compact its log. *)

val encode : t -> string
(** The frame payload (unframed; the connection layer frames it). *)

val decode : string -> (t, string) result

val label : t -> string
