(** The session envelope spoken over a relay connection.

    Each value is one {!Dce_wire.Codec} frame payload.  [Snapshot] and
    [Msg] carry the {!Dce_wire.Proto} encodings ({!encode_state} /
    {!encode_message} output) verbatim as opaque strings: the relay fans
    [Msg] bytes out without re-encoding, and stays generic over the
    element type.

    Handshake: the client sends [Hello] with its site id; the relay
    answers [Welcome] then [Snapshot] (the current session state, which
    is how late joiners and reconnecting sites catch up), after which
    both sides exchange [Msg] and keep the link alive with [Ping]/[Pong].
    [Bye] announces an orderly close.

    Like every decoder in this repo, {!decode} never raises — the
    envelope is parsed from untrusted bytes. *)

type t =
  | Hello of { site : int }
  | Welcome of { relay_site : int; heartbeat_ms : int }
  | Snapshot of string  (** a [Proto.encode_state] blob *)
  | Msg of string  (** a [Proto.encode_message] blob *)
  | Ping
  | Pong
  | Bye of string

val encode : t -> string
(** The frame payload (unframed; the connection layer frames it). *)

val decode : string -> (t, string) result

val label : t -> string
