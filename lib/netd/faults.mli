(** Deterministic network-fault injection at the {!Conn} boundary.

    A fault plan decides, per outgoing frame, whether the frame passes,
    is dropped, duplicated, delayed (released after a sampled number of
    milliseconds), or swapped behind the next frame (a minimal
    reordering that needs no timer).  Decisions are drawn from a
    process-local PRNG seeded from [(seed, label)], so one [--seed]
    reproduces the exact decision sequence of every labelled plan in
    the process — chaos runs are replayable.

    A plan also carries a {e partition} bit: while set, every outgoing
    frame on the plan's connection is silently dropped (counted), which
    models a peer-scoped network partition that heals when the bit is
    cleared.

    The plan never touches sockets and holds no frames itself — {!Conn}
    owns the held-frame buffers and asks the plan only for decisions,
    keeping the fault logic testable in isolation. *)

type config = {
  drop : float;  (** probability an outgoing frame is lost *)
  dup : float;  (** probability it is sent twice *)
  delay : float;  (** probability it is held for [delay_ms] *)
  delay_ms : int;  (** held-frame release delay bound (uniform 1..max) *)
  reorder : float;  (** probability it is swapped behind the next frame *)
}

val none : config
(** All probabilities zero: every frame passes. *)

val is_none : config -> bool

val of_string : string -> (config, string) result
(** Parse the CLI spelling: comma-separated [key=value] pairs over
    [drop], [dup], [delay], [delay_ms], [reorder] — e.g.
    ["dup=0.05,delay=0.2,delay_ms=40,reorder=0.1"].  Unlisted keys keep
    their {!none} value; probabilities must lie in [[0,1]]. *)

val to_string : config -> string

type decision =
  | Pass
  | Drop
  | Dup
  | Delay of int  (** hold the frame, release after this many ms *)
  | Swap  (** hold the frame, release it after the next frame *)

type t

val create : ?config:config -> seed:int -> label:string -> unit -> t
(** A plan whose decision stream is a pure function of
    [(config, seed, label)].  Use one plan per connection, labelled by
    the peer, so every link draws an independent reproducible stream. *)

val config : t -> config

val decide : t -> decision
(** Draw the next decision (and count it). *)

val partitioned : t -> bool
val set_partitioned : t -> bool -> unit

val drops : t -> int
(** Frames dropped, partition drops included. *)

val dups : t -> int

val delays : t -> int
(** Frames held back ([Delay] and [Swap] both count). *)

val count_partition_drop : t -> unit
(** Record a frame eaten by the partition bit (called by the owner,
    which is the one that sees the frame). *)
