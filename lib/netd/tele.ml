module M = Dce_obs.Metrics

type t = {
  bytes_in : M.counter;
  bytes_out : M.counter;
  frames_in : M.counter;
  frames_out : M.counter;
  framing_errors : M.counter;
  connects : M.counter;
  disconnects : M.counter;
  reconnects : M.counter;
  snapshots : M.counter;
  relayed : M.counter;
  overflows : M.counter;
  flush_ns : M.histogram;
  e2e_ns : M.histogram;
}

(* With no registry supplied, counters come from a disabled one, so
   every update is a load and a branch — no option checks on the hot
   path. *)
let disabled = lazy (M.create ~enabled:false ())

let make ?metrics () =
  let m = match metrics with Some m -> m | None -> Lazy.force disabled in
  {
    bytes_in = M.counter m "netd.bytes_in";
    bytes_out = M.counter m "netd.bytes_out";
    frames_in = M.counter m "netd.frames_in";
    frames_out = M.counter m "netd.frames_out";
    framing_errors = M.counter m "netd.framing_errors";
    connects = M.counter m "netd.connects";
    disconnects = M.counter m "netd.disconnects";
    reconnects = M.counter m "netd.reconnects";
    snapshots = M.counter m "netd.snapshots";
    relayed = M.counter m "netd.relayed";
    overflows = M.counter m "netd.overflows";
    flush_ns = M.histogram m "netd.flush_ns";
    e2e_ns = M.histogram m "e2e.propagation_ns";
  }
