type t = {
  base_ms : int;
  max_ms : int;
  mutable attempt : int;
  rng : Random.State.t;
}

let create ?(base_ms = 200) ?(max_ms = 30_000) ?seed () =
  if base_ms <= 0 then invalid_arg "Backoff.create: base_ms must be positive";
  let rng =
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  { base_ms; max_ms = max base_ms max_ms; attempt = 0; rng }

let attempt t = t.attempt

let next t =
  (* cap the exponent before shifting so a long outage cannot overflow *)
  let cap = min t.max_ms (t.base_ms * (1 lsl min t.attempt 20)) in
  t.attempt <- t.attempt + 1;
  (* "equal jitter": uniform in [cap/2, cap], so retries never
     synchronize across clients but the wait still grows geometrically *)
  (cap / 2) + Random.State.int t.rng ((cap / 2) + 1)

let reset t = t.attempt <- 0
